package core

import (
	"encoding/json"
	"testing"
	"time"

	"dnstime/internal/ipv4"
	"dnstime/internal/ntpclient"
)

// runBootJSON runs one boot-time attack and returns the marshalled result,
// so tests compare complete result bytes rather than cherry-picked fields.
func runBootJSON(t *testing.T, cfg LabConfig) string {
	t.Helper()
	res, err := RunBootTimeAttack(ntpclient.ProfileNTPd, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestLabPoolDirtyReuse is the reset-contract regression: it deliberately
// trashes a pooled laboratory between seeds — dragging its virtual clock
// forward, arming booby-trap events, registering a stray UDP handler, and
// burning ephemeral ports — then re-runs the same seed through the pool.
// The hard reset must erase every trace: the re-run's bytes must match a
// fresh-lab run (so no cross-seed state leakage and no RNG consumption
// drift), and no stale event may ever fire.
func TestLabPoolDirtyReuse(t *testing.T) {
	cfg := LabConfig{Seed: 7}
	SetLabPooling(false)
	want := runBootJSON(t, cfg)

	SetLabPooling(true)
	// Drain the poisoned-era pool when done, then restore the default.
	t.Cleanup(func() { SetLabPooling(false); SetLabPooling(true) })

	// Prime the pool with one released lab, then grab it for poisoning.
	_ = runBootJSON(t, cfg)
	labPool.mu.Lock()
	if len(labPool.labs) == 0 {
		labPool.mu.Unlock()
		t.Fatal("no lab returned to the pool after the run")
	}
	l := labPool.labs[len(labPool.labs)-1]
	labPool.mu.Unlock()

	// Booby trap: if Reset fails to clear pending events, the recycled
	// run's clock advance fires these and fails the test.
	l.Clock.After(30*time.Minute, func() {
		t.Error("stale pre-reset event fired inside a recycled lab")
	})
	l.Clock.RunFor(10 * time.Minute) // drag virtual time away from labEpoch
	l.Clock.After(2*time.Hour, func() {
		t.Error("stale post-advance event fired inside a recycled lab")
	})

	host := l.Net.Host(ResolverAddr)
	if host == nil {
		t.Fatal("resolver host missing from pooled lab")
	}
	for i := 0; i < 100; i++ {
		host.AllocPort() // skew the ephemeral port allocator
	}
	if err := host.HandleUDP(40000, func(ipv4.Addr, uint16, []byte) {
		t.Error("stale UDP handler from a recycled lab received traffic")
	}); err != nil {
		t.Fatal(err)
	}

	// The next acquire must take the poisoned lab (LIFO pool) and reset it
	// to a state observably identical to a fresh build.
	if got := runBootJSON(t, cfg); got != want {
		t.Errorf("poisoned pooled lab re-run differs from fresh lab:\n%s\nvs\n%s", got, want)
	}
}

// TestLabPoolReuseAcrossConfigs re-acquires one pooled lab under a
// different topology-bearing config and back: shrinking/growing the server
// population and switching path models through Reset must keep results
// byte-identical to fresh builds.
func TestLabPoolReuseAcrossConfigs(t *testing.T) {
	cfgA := LabConfig{Seed: 3}
	cfgB := LabConfig{Seed: 11, HonestServers: 7, EvilServers: 2}

	SetLabPooling(false)
	wantA := runBootJSON(t, cfgA)
	wantB := runBootJSON(t, cfgB)

	SetLabPooling(true)
	t.Cleanup(func() { SetLabPooling(false); SetLabPooling(true) })

	// A → B → A through one pooled lab: every hop reshapes the host set.
	if got := runBootJSON(t, cfgA); got != wantA {
		t.Errorf("pooled first run differs from fresh:\n%s\nvs\n%s", got, wantA)
	}
	if got := runBootJSON(t, cfgB); got != wantB {
		t.Errorf("pooled grown-config run differs from fresh:\n%s\nvs\n%s", got, wantB)
	}
	if got := runBootJSON(t, cfgA); got != wantA {
		t.Errorf("pooled shrunk-config run differs from fresh:\n%s\nvs\n%s", got, wantA)
	}
}
