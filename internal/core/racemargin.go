package core

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"time"

	"dnstime/internal/netem"
	"dnstime/internal/ntpclient"
	"dnstime/internal/scenario"
)

// The racemargin scenario puts the paper's off-path race in quantitative
// form: the boot-time attack is re-run across a sweep of the attacker's
// latency advantage over the victim's paths, under the near-attacker
// topology preset. Each margin m gives the attacker a one-way delay of
// NearAttackerVictimDelay − m (clamped at zero) while the victim network
// keeps the preset's conditions, so a campaign over racemargin
// aggregates into a success-rate-vs-margin table — at which point does
// racing from a worse network position break the attack. The default
// grid brackets the collapse threshold; its top margin (+28 ms)
// reproduces the near-attacker preset exactly.
func init() {
	scenario.Register(scenario.Scenario{
		Name:      "racemargin",
		Title:     "Race-margin sweep",
		PaperRef:  "beyond §IV-A",
		Impl:      "core.racemarginScenario",
		CLI:       "experiments campaigns -only racemargin",
		Params:    map[string]string{"client": "ntpd", "margins": "10-point grid", "topo": "near-attacker"},
		ParamKeys: []string{"client", "margin", "margins", "vic-net"},
		Order:     66,
		Run:       racemarginScenario,
	})
}

// defaultMarginSpec is the default margin grid (ascending attacker
// advantage): deep disadvantage where planting can never finish, the
// empirically bracketed collapse threshold, and the preset's native
// +28 ms advantage. fastMarginSpec is the Fast-mode subset — the
// threshold bracket plus one point per side.
const (
	defaultMarginSpec = "-8s,-4s,-2s,-1.5s,-1.2s,-1.1s,-1s,-500ms,0s,28ms"
	fastMarginSpec    = "-2s,-1.2s,-1.1s,28ms"
)

// parseMargins parses a comma-separated ascending margin grid. An empty
// (or all-whitespace) spec is rejected up front — strings.Split would
// otherwise yield one empty field and the error would misleadingly blame
// a "margin """ instead of the missing grid.
func parseMargins(spec string) ([]time.Duration, error) {
	if strings.TrimSpace(spec) == "" {
		return nil, errors.New("core: empty margin grid")
	}
	parts := strings.Split(spec, ",")
	margins := make([]time.Duration, 0, len(parts))
	for _, part := range parts {
		part = strings.TrimSpace(part)
		m, err := time.ParseDuration(part)
		if err != nil {
			return nil, fmt.Errorf("core: margin %q is not a duration", part)
		}
		if len(margins) > 0 && m <= margins[len(margins)-1] {
			return nil, fmt.Errorf("core: margins must be strictly ascending (%v after %v)", m, margins[len(margins)-1])
		}
		margins = append(margins, m)
	}
	return margins, nil
}

// marginOutcome is one margin's boot-time attack result: did the
// fragment planting land, did the clock shift, and how long the shift
// took (meaningful only when Shifted).
type marginOutcome struct {
	Poisoned, Shifted bool
	TimeToShift       time.Duration
}

// marginsFromParams resolves the margin/margins params into the grid one
// run sweeps: `margin=` selects exactly one point (the single-margin
// entry the adaptive search engine drives — see internal/search),
// `margins=` a comma-separated ascending grid, and neither falls back to
// the default (or Fast) spec. The two are mutually exclusive: a probe
// that silently ignored one of them would measure the wrong boundary.
func marginsFromParams(p scenario.Params, fast bool) ([]time.Duration, error) {
	single, haveSingle := p["margin"]
	if haveSingle {
		if _, both := p["margins"]; both {
			return nil, errors.New("core: params margin and margins are mutually exclusive")
		}
		m, err := time.ParseDuration(strings.TrimSpace(single))
		if err != nil {
			return nil, fmt.Errorf("core: margin %q is not a duration", single)
		}
		return []time.Duration{m}, nil
	}
	spec := defaultMarginSpec
	if fast {
		spec = fastMarginSpec
	}
	return parseMargins(p.Str("margins", spec))
}

// runRaceMargin executes the boot-time attack from one network position:
// the near-attacker preset with the attacker's advantage set to margin
// (and, when vicNet is non-empty, the victim side swapped for that
// profile). A run that cannot poison the cache is an unsuccessful
// outcome, not an error — "the attacker lost the race from this
// position" is the measurement.
func runRaceMargin(prof ntpclient.Profile, seed int64, margin time.Duration, vicNet string) (marginOutcome, error) {
	topo, err := raceTopology(margin, vicNet)
	if err != nil {
		return marginOutcome{}, err
	}
	res, err := RunBootTimeAttack(prof, LabConfig{Seed: seed, Topology: topo})
	switch {
	case errors.Is(err, ErrPoisoningFailed):
		return marginOutcome{}, nil
	case err != nil:
		return marginOutcome{}, fmt.Errorf("racemargin %s at margin %s: %w", prof.Name, margin, err)
	}
	return marginOutcome{Poisoned: true, Shifted: res.Shifted, TimeToShift: res.TimeToShift}, nil
}

// racemarginScenario runs the boot-time attack once per margin at the
// given seed. Params: client selects the victim profile, margins the
// grid (comma-separated ascending durations), margin a single point
// (the probe form the adaptive search engine sweeps), vic-net replaces
// the preset's fixed victim-side conditions with a netem profile (e.g.
// vic-net=lossy-wifi sweeps the margin against bursty victim loss).
// Success reports the outcome at the grid's largest margin. The tts_s
// metric is emitted only for shifted margins — an unshifted run has no
// time-to-shift — so campaign aggregates report it over the subset of
// seeds that shifted (MetricSummary.Samples carries that denominator).
func racemarginScenario(_ context.Context, seed int64, cfg scenario.Config) (scenario.Result, error) {
	prof, err := clientFromParams(cfg.Params)
	if err != nil {
		return scenario.Result{}, err
	}
	margins, err := marginsFromParams(cfg.Params, cfg.Fast)
	if err != nil {
		return scenario.Result{}, err
	}
	vicNet := cfg.Params.Str("vic-net", "")
	if vicNet != "" {
		if _, err := netem.Profile(vicNet); err != nil {
			return scenario.Result{}, fmt.Errorf("vic-net: %w", err)
		}
	}
	metrics := make(map[string]float64, 2*len(margins))
	topShifted := false
	for _, m := range margins {
		out, err := runRaceMargin(prof, seed, m, vicNet)
		if err != nil {
			return scenario.Result{}, err
		}
		key := m.String()
		metrics["poisoned/"+key] = boolMetric(out.Poisoned)
		metrics["shifted/"+key] = boolMetric(out.Shifted)
		topShifted = out.Shifted
		if out.Shifted {
			metrics["tts_s/"+key] = out.TimeToShift.Seconds()
		}
	}
	return scenario.Result{Success: scenario.Bool(topShifted), Metrics: metrics}, nil
}

// raceTopology builds one margin's lab topology: the near-attacker
// preset with the attacker's one-way delay moved to VictimDelay − margin
// (clamped at zero — the attacker cannot beat light) and, when vicNet is
// set, the victim side swapped for a fresh instance of that profile.
func raceTopology(margin time.Duration, vicNet string) (*netem.Topology, error) {
	topo, err := netem.TopologyPreset("near-attacker")
	if err != nil {
		return nil, err
	}
	if vicNet != "" {
		vic, err := netem.Profile(vicNet)
		if err != nil {
			return nil, err
		}
		topo.Default = vic
	}
	atk := netem.NearAttackerVictimDelay - margin
	if atk < 0 {
		atk = 0
	}
	fast := func() netem.PathModel { return &netem.Path{Delay: netem.Fixed(atk)} }
	topo.SetPath(netem.RoleAttacker, netem.RoleAny, fast)
	topo.SetPath(netem.RoleEvilServer, netem.RoleAny, fast)
	return topo, nil
}
