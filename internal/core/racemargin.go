package core

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"time"

	"dnstime/internal/netem"
	"dnstime/internal/scenario"
)

// The racemargin scenario puts the paper's off-path race in quantitative
// form: the boot-time attack is re-run across a sweep of the attacker's
// latency advantage over the victim's paths, under the near-attacker
// topology preset. Each margin m gives the attacker a one-way delay of
// NearAttackerVictimDelay − m (clamped at zero) while the victim network
// keeps the preset's conditions, so a campaign over racemargin
// aggregates into a success-rate-vs-margin table — at which point does
// racing from a worse network position break the attack. The default
// grid brackets the collapse threshold; its top margin (+28 ms)
// reproduces the near-attacker preset exactly.
func init() {
	scenario.Register(scenario.Scenario{
		Name:      "racemargin",
		Title:     "Race-margin sweep",
		PaperRef:  "beyond §IV-A",
		Impl:      "core.racemarginScenario",
		CLI:       "experiments campaigns -only racemargin",
		Params:    map[string]string{"client": "ntpd", "margins": "10-point grid", "topo": "near-attacker"},
		ParamKeys: []string{"client", "margins", "vic-net"},
		Order:     66,
		Run:       racemarginScenario,
	})
}

// defaultMarginSpec is the default margin grid (ascending attacker
// advantage): deep disadvantage where planting can never finish, the
// empirically bracketed collapse threshold, and the preset's native
// +28 ms advantage. fastMarginSpec is the Fast-mode subset — the
// threshold bracket plus one point per side.
const (
	defaultMarginSpec = "-8s,-4s,-2s,-1.5s,-1.2s,-1.1s,-1s,-500ms,0s,28ms"
	fastMarginSpec    = "-2s,-1.2s,-1.1s,28ms"
)

// parseMargins parses a comma-separated ascending margin grid.
func parseMargins(spec string) ([]time.Duration, error) {
	parts := strings.Split(spec, ",")
	margins := make([]time.Duration, 0, len(parts))
	for _, part := range parts {
		part = strings.TrimSpace(part)
		m, err := time.ParseDuration(part)
		if err != nil {
			return nil, fmt.Errorf("core: margin %q is not a duration", part)
		}
		if len(margins) > 0 && m <= margins[len(margins)-1] {
			return nil, fmt.Errorf("core: margins must be strictly ascending (%v after %v)", m, margins[len(margins)-1])
		}
		margins = append(margins, m)
	}
	if len(margins) == 0 {
		return nil, errors.New("core: empty margin grid")
	}
	return margins, nil
}

// racemarginScenario runs the boot-time attack once per margin at the
// given seed. Params: client selects the victim profile, margins the
// grid (comma-separated ascending durations), vic-net replaces the
// preset's fixed victim-side conditions with a netem profile (e.g.
// vic-net=lossy-wifi sweeps the margin against bursty victim loss). A
// run that cannot poison the cache counts as an unsuccessful margin, not
// an error — "the attacker lost the race from this position" is the
// measurement. Success reports the outcome at the grid's largest margin.
func racemarginScenario(_ context.Context, seed int64, cfg scenario.Config) (scenario.Result, error) {
	prof, err := clientFromParams(cfg.Params)
	if err != nil {
		return scenario.Result{}, err
	}
	spec := defaultMarginSpec
	if cfg.Fast {
		spec = fastMarginSpec
	}
	margins, err := parseMargins(cfg.Params.Str("margins", spec))
	if err != nil {
		return scenario.Result{}, err
	}
	vicNet := cfg.Params.Str("vic-net", "")
	if vicNet != "" {
		if _, err := netem.Profile(vicNet); err != nil {
			return scenario.Result{}, fmt.Errorf("vic-net: %w", err)
		}
	}
	metrics := make(map[string]float64, 2*len(margins))
	topShifted := false
	for _, m := range margins {
		topo, err := raceTopology(m, vicNet)
		if err != nil {
			return scenario.Result{}, err
		}
		res, err := RunBootTimeAttack(prof, LabConfig{Seed: seed, Topology: topo})
		key := m.String()
		switch {
		case errors.Is(err, ErrPoisoningFailed):
			metrics["poisoned/"+key] = 0
			metrics["shifted/"+key] = 0
			topShifted = false
		case err != nil:
			return scenario.Result{}, fmt.Errorf("racemargin %s at margin %s: %w", prof.Name, key, err)
		default:
			metrics["poisoned/"+key] = 1
			metrics["shifted/"+key] = boolMetric(res.Shifted)
			topShifted = res.Shifted
			if res.Shifted {
				metrics["tts_s/"+key] = res.TimeToShift.Seconds()
			}
		}
	}
	return scenario.Result{Success: scenario.Bool(topShifted), Metrics: metrics}, nil
}

// raceTopology builds one margin's lab topology: the near-attacker
// preset with the attacker's one-way delay moved to VictimDelay − margin
// (clamped at zero — the attacker cannot beat light) and, when vicNet is
// set, the victim side swapped for a fresh instance of that profile.
func raceTopology(margin time.Duration, vicNet string) (*netem.Topology, error) {
	topo, err := netem.TopologyPreset("near-attacker")
	if err != nil {
		return nil, err
	}
	if vicNet != "" {
		vic, err := netem.Profile(vicNet)
		if err != nil {
			return nil, err
		}
		topo.Default = vic
	}
	atk := netem.NearAttackerVictimDelay - margin
	if atk < 0 {
		atk = 0
	}
	fast := func() netem.PathModel { return &netem.Path{Delay: netem.Fixed(atk)} }
	topo.SetPath(netem.RoleAttacker, netem.RoleAny, fast)
	topo.SetPath(netem.RoleEvilServer, netem.RoleAny, fast)
	return topo, nil
}
