package core

import (
	"sync"
	"time"

	"dnstime/internal/obs"
)

// The lab pool recycles fully wired laboratories across campaign seeds.
// Building a lab allocates a clock, a network, a dozen hosts and their
// component servers; at campaign scale (thousands of seeds) that
// construction cost and allocation churn dominated the per-seed budget.
// Reset's hard contract (a reset lab is observably identical to a fresh
// one) makes reuse safe, and the engine equivalence suite holds it to
// byte-identical campaign output.
var labPool struct {
	mu       sync.Mutex
	labs     []*Lab
	disabled bool
}

// Pool effectiveness counters (obs.Default; exposed on the serve /metrics
// Prometheus view): hits are acquisitions served by recycling a pooled
// lab, misses built fresh, resets counts hard Reset calls on recycled
// labs (hits that then failed config validation fall back to a fresh
// build but still reset first).
var (
	poolHits = obs.Default.Counter("dnstime_labpool_hits_total",
		"Lab acquisitions served by recycling a pooled laboratory.")
	poolMisses = obs.Default.Counter("dnstime_labpool_misses_total",
		"Lab acquisitions that built a fresh laboratory (empty or disabled pool).")
	poolResets = obs.Default.Counter("dnstime_labpool_resets_total",
		"Hard resets performed on recycled laboratories.")
)

// labPoolMax bounds retained labs; beyond it released labs are dropped for
// the GC. Campaign workers are capped well below this.
const labPoolMax = 32

// acquireLab returns a laboratory configured exactly per cfg: a pooled lab
// hard-reset to cfg when one is available, otherwise a fresh build. Setup
// and reset wall time feeds the obs phase-timing breakdown reported by
// `experiments bench`.
func acquireLab(cfg LabConfig) (*Lab, error) {
	labPool.mu.Lock()
	if labPool.disabled || len(labPool.labs) == 0 {
		labPool.mu.Unlock()
		poolMisses.Inc()
		start := time.Now()
		l, err := NewLab(cfg)
		obs.ObservePhase(obs.PhaseSetup, time.Since(start))
		return l, err
	}
	n := len(labPool.labs)
	l := labPool.labs[n-1]
	labPool.labs[n-1] = nil
	labPool.labs = labPool.labs[:n-1]
	labPool.mu.Unlock()
	poolHits.Inc()
	poolResets.Inc()
	start := time.Now()
	err := l.Reset(cfg)
	obs.ObservePhase(obs.PhaseReset, time.Since(start))
	if err != nil {
		// Reset only fails on configs NewLab rejects too; surface the
		// identical error from the identical validation path.
		return NewLab(cfg)
	}
	return l, nil
}

// releaseLab returns a finished laboratory to the pool. The lab may carry
// arbitrary run state — the next acquire hard-resets it.
func releaseLab(l *Lab) {
	if l == nil {
		return
	}
	labPool.mu.Lock()
	if !labPool.disabled && len(labPool.labs) < labPoolMax {
		labPool.labs = append(labPool.labs, l)
	}
	labPool.mu.Unlock()
}

// SetLabPooling enables or disables lab reuse across experiment runs
// (enabled by default). Disabling drains the pool, so every subsequent run
// builds its lab from scratch — the reference behaviour the engine
// equivalence tests compare pooled output against.
func SetLabPooling(enabled bool) {
	labPool.mu.Lock()
	labPool.disabled = !enabled
	if !enabled {
		labPool.labs = nil
	}
	labPool.mu.Unlock()
}
