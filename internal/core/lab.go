// Package core wires the full attack laboratory of the paper — victim
// resolver, pool.ntp.org authoritative nameserver, honest and attacker NTP
// servers, NTP/Chronos clients and the off-path attacker — and implements
// the end-to-end experiments behind Tables I and II, the boot-time and
// run-time attacks (Section IV/V) and the Chronos attack (Section VI).
package core

import (
	"errors"
	"strconv"
	"time"

	"dnstime/internal/attack"
	"dnstime/internal/chronos"
	"dnstime/internal/dnsauth"
	"dnstime/internal/dnsres"
	"dnstime/internal/dnswire"
	"dnstime/internal/ipv4"
	"dnstime/internal/netem"
	"dnstime/internal/ntpclient"
	"dnstime/internal/ntpserv"
	"dnstime/internal/obs"
	"dnstime/internal/simclock"
	"dnstime/internal/simnet"
)

// Well-known lab addresses.
var (
	// NSAddr is the pool.ntp.org authoritative nameserver.
	NSAddr = ipv4.MustParseAddr("198.51.100.53")
	// ResolverAddr is the victim network's recursive resolver.
	ResolverAddr = ipv4.MustParseAddr("192.0.2.53")
	// AttackerAddr is the off-path attacker's vantage point.
	AttackerAddr = ipv4.MustParseAddr("203.0.113.66")
)

// PoolDomain is the NTP server-discovery domain.
const PoolDomain = "pool.ntp.org"

// Errors returned by the lab.
var (
	ErrPoisoningFailed = errors.New("core: cache poisoning did not take effect")
	ErrNotSynced       = errors.New("core: client failed to synchronise honestly")
)

// LabConfig sizes and parameterises the laboratory.
type LabConfig struct {
	// Seed drives every random choice (deterministic per seed).
	Seed int64
	// HonestServers is the honest pool size (default 8).
	HonestServers int
	// EvilServers is the number of attacker NTP servers (default 4).
	EvilServers int
	// EvilOffset is the time shift the attacker serves (default −500 s,
	// the paper's lab value).
	EvilOffset time.Duration
	// RateLimitHonest enables rate limiting on every honest server
	// (default true — the run-time attack's precondition; Section VII-A
	// found 38% of real pool servers behave this way).
	RateLimitHonest *bool
	// PadResponses is the nameserver's response padding (default 400 B:
	// large enough that every pool response carries a padding record whose
	// bytes land in the second fragment — the attacker's checksum slack).
	PadResponses int
	// PoolTTL is the pool record TTL (default 150 s, as measured).
	PoolTTL uint32
	// ResolverValidatesDNSSEC enables validation at the victim resolver
	// (default false; pool.ntp.org is unsigned so it would not help).
	ResolverValidatesDNSSEC bool
	// Path models the network conditions on every lab link — latency
	// distribution, loss, reordering (internal/netem; DESIGN.md §8). nil
	// keeps the default lab path: fixed 10 ms one-way, lossless. All link
	// randomness derives from Seed, so lossy labs stay deterministic per
	// seed. Stateful models must be fresh per lab (netem.Profile and
	// netem.FromSpec return fresh instances each call).
	Path netem.PathModel
	// Topology assigns path conditions by network position instead of
	// uniformly: a netem.Topology maps role pairs (attacker↔resolver,
	// client↔resolver, resolver↔nameserver, …) to path models, and the
	// lab compiles it into per-directed-link overrides as hosts join
	// (DESIGN.md §9). nil keeps the uniform Path on every link — the
	// byte-identical special case. Path and Topology are mutually
	// exclusive: fold a uniform path into Topology.Default instead.
	Topology *netem.Topology
	// Tracer receives the lab's virtual-time observability events: every
	// simnet packet event, every clock fire and the attacker's phase spans
	// (internal/obs; DESIGN.md §12). nil (the default) installs obs.Nop —
	// the hooks are then never wired, so untraced labs pay nothing. The
	// emitted sequence is deterministic per Seed, like everything else in
	// the lab.
	Tracer obs.Tracer
}

func (c *LabConfig) applyDefaults() {
	if c.HonestServers == 0 {
		c.HonestServers = 8
	}
	if c.EvilServers == 0 {
		c.EvilServers = 4
	}
	if c.EvilOffset == 0 {
		c.EvilOffset = -500 * time.Second
	}
	if c.RateLimitHonest == nil {
		t := true
		c.RateLimitHonest = &t
	}
	if c.PadResponses == 0 {
		c.PadResponses = 400
	}
	if c.PoolTTL == 0 {
		c.PoolTTL = 150
	}
	if c.Tracer == nil {
		c.Tracer = obs.Nop
	}
}

// Lab is a fully wired attack laboratory.
type Lab struct {
	Clock    *simclock.Clock
	Net      *simnet.Network
	Auth     *dnsauth.Server
	Resolver *dnsres.Resolver
	Honest   []*ntpserv.Server
	Evil     []*ntpserv.Server
	Eve      *attack.Attacker

	cfg        LabConfig
	topo       *netem.Compiler
	honestAddr []ipv4.Addr
	evilAddr   []ipv4.Addr
	nextClient byte
	seedStep   int64
}

// labEpoch is the virtual start time of every laboratory.
var labEpoch = time.Date(2020, 2, 1, 0, 0, 0, 0, time.UTC)

// netOptions translates the config's path/topology settings into network
// options plus the live topology compiler (nil without a topology).
func (c *LabConfig) netOptions() ([]simnet.Option, *netem.Compiler, error) {
	if c.Path != nil && c.Topology != nil {
		return nil, nil, errors.New("core: LabConfig.Path and Topology are mutually exclusive (set the uniform path as Topology.Default)")
	}
	// Link randomness (loss, jitter, reordering under non-default path
	// models) derives from the lab seed — never from a global or pinned
	// source — so campaigns replay byte-identically at any worker count.
	opts := []simnet.Option{simnet.WithSeed(c.Seed + 3)}
	if c.Tracer != nil && c.Tracer.Enabled() {
		opts = append(opts, simnet.WithTrace(traceNet(c.Tracer)))
	}
	var topo *netem.Compiler
	if c.Topology != nil {
		// The compiled model is live: every host the lab adds (including
		// clients attached mid-run) registers its role and receives the
		// topology's per-directed-link models.
		topo = c.Topology.Compiler()
		opts = append(opts, simnet.WithPathModel(topo.Model()))
	} else {
		opts = append(opts, simnet.WithPathModel(c.Path))
	}
	return opts, topo, nil
}

// NewLab builds the laboratory: nameserver serving pool.ntp.org backed by
// the honest servers, victim resolver, attacker servers and attacker host.
func NewLab(cfg LabConfig) (*Lab, error) {
	cfg.applyDefaults()
	opts, topo, err := cfg.netOptions()
	if err != nil {
		return nil, err
	}
	clk := simclock.New(labEpoch)
	l := &Lab{
		Clock: clk,
		Net:   simnet.New(clk, opts...),
		cfg:   cfg,
		topo:  topo,
	}
	if err := l.wire(); err != nil {
		return nil, err
	}
	return l, nil
}

// Reset rebuilds the laboratory in place for a new configuration, reusing
// the clock's event queue, the network's packet pools and the attached
// server hosts. The contract is hard: a reset lab is observably identical
// to NewLab(cfg) — same component wiring, same RNG streams (all derived
// from cfg.Seed), same virtual start time — which the engine equivalence
// suite enforces byte-for-byte. Client hosts from the previous run and
// servers beyond the new population are detached; in-flight events die with
// the clock reset.
func (l *Lab) Reset(cfg LabConfig) error {
	cfg.applyDefaults()
	opts, topo, err := cfg.netOptions()
	if err != nil {
		return err
	}
	// Clock first: every pending timer and ticker callback dies before any
	// component state is touched, so nothing fires mid-reset.
	l.Clock.Reset(labEpoch)
	l.Net.Reset(opts...)
	for i := byte(1); i <= l.nextClient; i++ {
		l.Net.RemoveHost(ipv4.Addr{192, 0, 2, 100 + i})
	}
	for i := cfg.HonestServers; i < len(l.honestAddr); i++ {
		l.Net.RemoveHost(l.honestAddr[i])
	}
	for i := cfg.EvilServers; i < len(l.evilAddr); i++ {
		l.Net.RemoveHost(l.evilAddr[i])
	}
	l.nextClient, l.seedStep = 0, 0
	l.Honest, l.Evil = l.Honest[:0], l.Evil[:0]
	l.honestAddr, l.evilAddr = l.honestAddr[:0], l.evilAddr[:0]
	l.cfg, l.topo = cfg, topo
	return l.wire()
}

// labDelegations is the victim resolver's delegation table. Shared across
// labs: the resolver only reads it.
var labDelegations = map[string]ipv4.Addr{"ntp.org": NSAddr}

// tracer returns the lab's Tracer (obs.Nop when tracing is off), for the
// experiment runners' phase spans.
func (l *Lab) tracer() obs.Tracer {
	if l.cfg.Tracer != nil {
		return l.cfg.Tracer
	}
	return obs.Nop
}

// traceNet bridges simnet's packet-trace hook onto the lab Tracer. Traced
// packets are pooled, so the adapter formats what it needs immediately
// and retains nothing.
func traceNet(tr obs.Tracer) func(simnet.TraceEvent) {
	return func(e simnet.TraceEvent) {
		p := e.Pkt
		tr.Event(e.Time, "net", e.Kind.String(),
			p.Src.String()+">"+p.Dst.String()+
				" id="+strconv.Itoa(int(p.ID))+
				" off="+strconv.Itoa(p.FragOff)+
				" len="+strconv.Itoa(p.TotalLen()))
	}
}

// wire attaches (or re-attaches) every lab component onto the clock and
// network, in the exact order NewLab always has: nameserver, resolver,
// attacker, honest servers, evil servers, pool. Components that survived a
// pool Reset still bound to their (hard-reset) hosts are reset in place
// rather than rebuilt — same observable state, but their RNGs, maps and
// scratch buffers are recycled instead of reallocated every seed.
func (l *Lab) wire() error {
	cfg := l.cfg
	if tr := cfg.Tracer; tr != nil && tr.Enabled() {
		// The clock hook dies with Clock.Reset, so both the fresh and the
		// pooled path install it here, before any event can fire.
		l.Clock.SetFireHook(func(at time.Time, seq uint64) {
			tr.Event(at, "clock", "fire", "seq="+strconv.FormatUint(seq, 10))
		})
	}
	authHost, err := l.labHost(NSAddr, netem.RoleNameserver, simnet.HostConfig{})
	if err != nil {
		return err
	}
	authCfg := dnsauth.Config{PadResponsesTo: cfg.PadResponses}
	if l.Auth != nil && l.Auth.Host() == authHost {
		err = l.Auth.Reset(authCfg)
	} else {
		l.Auth, err = dnsauth.New(authHost, authCfg)
	}
	if err != nil {
		return err
	}
	resHost, err := l.labHost(ResolverAddr, netem.RoleResolver, simnet.HostConfig{})
	if err != nil {
		return err
	}
	resCfg := dnsres.Config{
		Delegations:    labDelegations,
		ValidateDNSSEC: cfg.ResolverValidatesDNSSEC,
		RandSeed:       cfg.Seed + 1,
	}
	if l.Resolver != nil && l.Resolver.Host() == resHost {
		err = l.Resolver.Reset(resCfg)
	} else {
		l.Resolver, err = dnsres.New(resHost, resCfg)
	}
	if err != nil {
		return err
	}
	eveHost, err := l.labHost(AttackerAddr, netem.RoleAttacker, simnet.HostConfig{})
	if err != nil {
		return err
	}
	if l.Eve != nil && l.Eve.Host() == eveHost {
		l.Eve.Reset(cfg.Seed + 2)
	} else {
		l.Eve = attack.New(eveHost, cfg.Seed+2)
	}
	l.Eve.SetTracer(cfg.Tracer)
	for i := 0; i < cfg.HonestServers; i++ {
		if err := l.addHonest(); err != nil {
			return err
		}
	}
	for i := 0; i < cfg.EvilServers; i++ {
		if err := l.addEvil(); err != nil {
			return err
		}
	}
	// The pool answers with the full honest set per response, keeping the
	// template predictable (rotation-vs-prediction is an ablation in
	// internal/attack's tests and bench_test.go).
	l.Auth.AddPool(&dnsauth.Pool{
		Name:        PoolDomain,
		Addrs:       append([]ipv4.Addr(nil), l.honestAddr...),
		PerResponse: len(l.honestAddr),
		TTL:         cfg.PoolTTL,
	})
	return nil
}

// MustNewLab is NewLab for examples and benchmarks.
func MustNewLab(cfg LabConfig) *Lab {
	l, err := NewLab(cfg)
	if err != nil {
		panic(err)
	}
	return l
}

// Config returns the lab configuration (with defaults applied).
func (l *Lab) Config() LabConfig { return l.cfg }

// addHost attaches a host and, when the lab runs a topology, registers
// its network role so the compiled per-link models cover it.
func (l *Lab) addHost(addr ipv4.Addr, role netem.Role, hc simnet.HostConfig) (*simnet.Host, error) {
	host, err := l.Net.AddHost(addr, hc)
	if err != nil {
		return nil, err
	}
	if l.topo != nil {
		l.topo.Add(addr, role)
	}
	return host, nil
}

// labHost returns a ready host at addr: a host kept across a pool Reset is
// hard-reset to cfg (handlers, ports, caches, stats all cleared), otherwise
// a fresh one is attached. Both paths register the topology role.
func (l *Lab) labHost(addr ipv4.Addr, role netem.Role, hc simnet.HostConfig) (*simnet.Host, error) {
	if host := l.Net.Host(addr); host != nil {
		host.Reset(hc)
		if l.topo != nil {
			l.topo.Add(addr, role)
		}
		return host, nil
	}
	return l.addHost(addr, role, hc)
}

// HonestAddrs returns the honest NTP server addresses.
func (l *Lab) HonestAddrs() []ipv4.Addr { return append([]ipv4.Addr(nil), l.honestAddr...) }

// EvilAddrs returns the attacker NTP server addresses.
func (l *Lab) EvilAddrs() []ipv4.Addr { return append([]ipv4.Addr(nil), l.evilAddr...) }

// spareServer returns the server a previous wiring left in s's backing
// array at slot idx, provided it is still bound to host (lab Reset only
// truncates l.Honest/l.Evil, so the pointers survive between runs; a slot
// whose host was detached compares unequal and forces a rebuild).
func spareServer(s []*ntpserv.Server, idx int, host *simnet.Host) *ntpserv.Server {
	if idx < cap(s) {
		if sv := s[: idx+1 : cap(s)][idx]; sv != nil && sv.Host() == host {
			return sv
		}
	}
	return nil
}

func (l *Lab) addServer(list *[]*ntpserv.Server, addrs *[]ipv4.Addr, addr ipv4.Addr, role netem.Role, cfg ntpserv.Config) error {
	host, err := l.labHost(addr, role, simnet.HostConfig{})
	if err != nil {
		return err
	}
	s := spareServer(*list, len(*list), host)
	if s != nil {
		err = s.Reset(cfg)
	} else {
		s, err = ntpserv.New(host, cfg)
	}
	if err != nil {
		return err
	}
	*list = append(*list, s)
	*addrs = append(*addrs, addr)
	return nil
}

func (l *Lab) addHonest() error {
	addr := ipv4.Addr{10, 0, byte(len(l.honestAddr) >> 8), byte(len(l.honestAddr) + 1)}
	return l.addServer(&l.Honest, &l.honestAddr, addr, netem.RoleNTPServer, ntpserv.Config{
		RateLimit: ntpserv.RateLimitConfig{Enabled: *l.cfg.RateLimitHonest},
	})
}

func (l *Lab) addEvil() error {
	addr := ipv4.Addr{6, 6, byte(len(l.evilAddr) >> 8), byte(len(l.evilAddr) + 1)}
	return l.addServer(&l.Evil, &l.evilAddr, addr, netem.RoleEvilServer, ntpserv.Config{Offset: l.cfg.EvilOffset})
}

// GrowEvil adds attacker NTP servers until the lab has n (Chronos needs
// many).
func (l *Lab) GrowEvil(n int) error {
	for len(l.evilAddr) < n {
		if err := l.addEvil(); err != nil {
			return err
		}
	}
	return nil
}

// NewClient attaches a fresh NTP client host running the given profile.
func (l *Lab) NewClient(prof ntpclient.Profile, clockErr time.Duration) (*ntpclient.Client, error) {
	l.nextClient++
	l.seedStep++
	addr := ipv4.Addr{192, 0, 2, 100 + l.nextClient}
	host, err := l.addHost(addr, netem.RoleClient, simnet.HostConfig{})
	if err != nil {
		return nil, err
	}
	return ntpclient.New(host, prof, ResolverAddr, PoolDomain, clockErr, l.cfg.Seed+100+l.seedStep), nil
}

// NewChronos attaches a Chronos client host.
func (l *Lab) NewChronos(cfg chronos.Config) (*chronos.Client, error) {
	l.nextClient++
	addr := ipv4.Addr{192, 0, 2, 100 + l.nextClient}
	host, err := l.addHost(addr, netem.RoleClient, simnet.HostConfig{})
	if err != nil {
		return nil, err
	}
	if cfg.Seed == 0 {
		cfg.Seed = l.cfg.Seed + 500
	}
	return chronos.New(host, cfg, ResolverAddr, 0), nil
}

// Campaign is a running poisoning campaign (§IV-A option 3): every round it
// re-probes the nameserver's IPID, rebuilds spoofed second fragments and
// plants them in the resolver's defragmentation cache.
type Campaign struct {
	lab     *Lab
	ticker  *simclock.Ticker
	stopped bool
	// Rounds counts planting rounds.
	Rounds int
	// TTL overrides record TTLs in the spoofed fragments (0 keeps them).
	TTL uint32
}

// StartPoisonCampaign begins a planting campaign with the given round
// interval (the paper uses 30 s, matching the Linux defragmentation cache
// timeout).
func (l *Lab) StartPoisonCampaign(interval time.Duration, ttl uint32) *Campaign {
	c := &Campaign{lab: l, TTL: ttl}
	round := func() {
		if c.stopped {
			return
		}
		c.Rounds++
		c.plantOnce()
	}
	round()
	c.ticker = l.Clock.Tick(interval, round)
	return c
}

// Stop ends the campaign.
func (c *Campaign) Stop() {
	c.stopped = true
	c.ticker.Stop()
}

// plantOnce runs one §III round: fetch template, probe IPID, build spoofed
// fragments, inject.
func (c *Campaign) plantOnce() {
	l := c.lab
	if tr := l.tracer(); tr.Enabled() {
		tr.Event(l.Clock.Now(), "attack", "plant-round", "round="+strconv.Itoa(c.Rounds))
	}
	l.Eve.ForceFragmentation(NSAddr, ResolverAddr, 68)
	l.Eve.FetchTemplate(NSAddr, PoolDomain, func(template []byte, err error) {
		if err != nil {
			return
		}
		l.Eve.ProbeIPIDs(NSAddr, PoolDomain, 2, 200*time.Millisecond, func(ids []uint16, err error) {
			if err != nil {
				return
			}
			frags, err := l.Eve.BuildSpoofedFragments(attack.PoisonPlan{
				NS:        NSAddr,
				Resolver:  ResolverAddr,
				Template:  template,
				Malicious: l.evilAddr,
				TTL:       c.TTL,
				MTU:       68,
				IPIDs:     attack.PredictIPIDs(ids, 1, 16),
			})
			if err != nil {
				return
			}
			for _, f := range frags {
				l.Eve.Inject(f)
			}
		})
	})
}

// PoisonResolver performs one complete poisoning: plant, trigger the
// resolver's query from the attacker's own host (the open-resolver /
// shared-system trigger of §IV-A), and verify the malicious record landed.
// A round takes ≈3 s (ICMP + template fetch + two IPID probes + planting);
// up to five trigger attempts are made, re-planting between them.
func (l *Lab) PoisonResolver(ttl uint32) error {
	campaign := l.StartPoisonCampaign(30*time.Second, ttl)
	defer campaign.Stop()
	for attempt := 0; attempt < 5; attempt++ {
		// Let the current planting round finish.
		l.Clock.RunFor(5 * time.Second)
		l.Resolver.Evict(PoolDomain, dnswire.TypeA)
		l.Eve.TriggerOpenResolverQuery(ResolverAddr, PoolDomain)
		l.Clock.RunFor(5 * time.Second)
		if l.CachePoisoned() {
			return nil
		}
		// Wait out the rest of the round and try again.
		l.Clock.RunFor(25 * time.Second)
	}
	return ErrPoisoningFailed
}

// CachePoisoned reports whether the resolver's pool.ntp.org entry currently
// maps to an attacker server.
func (l *Lab) CachePoisoned() bool {
	entry, ok := l.Resolver.Peek(PoolDomain, dnswire.TypeA)
	if !ok {
		return false
	}
	evil := make(map[ipv4.Addr]bool, len(l.evilAddr))
	for _, a := range l.evilAddr {
		evil[a] = true
	}
	for _, rr := range entry.RRs {
		if rr.Type == dnswire.TypeA && evil[rr.Addr] {
			return true
		}
	}
	return false
}

// FloodAllHonest starts rate-limit-abuse floods against every honest server
// on behalf of victim; the returned stop function ends them.
func (l *Lab) FloodAllHonest(victim ipv4.Addr) func() {
	stops := make([]func(), 0, len(l.Honest))
	for _, s := range l.Honest {
		stops = append(stops, l.Eve.RateLimitFlood(s.Addr(), victim, 20*time.Second))
	}
	return func() {
		for _, stop := range stops {
			stop()
		}
	}
}

// isHonest reports whether addr is one of the lab's honest servers.
func (l *Lab) isHonest(addr ipv4.Addr) bool {
	for _, a := range l.honestAddr {
		if a == addr {
			return true
		}
	}
	return false
}

// evilRRSet builds the poisoned RRset used by the Chronos experiment.
func (l *Lab) evilRRSet(ttl uint32) []dnswire.RR {
	rrs := make([]dnswire.RR, 0, len(l.evilAddr))
	for _, a := range l.evilAddr {
		rrs = append(rrs, dnswire.RR{
			Name: PoolDomain, Type: dnswire.TypeA, Class: dnswire.ClassIN,
			TTL: ttl, Addr: a,
		})
	}
	return rrs
}

func waitUntil(clk *simclock.Clock, limit time.Duration, cond func() bool) (time.Duration, bool) {
	start := clk.Now()
	deadline := start.Add(limit)
	for !cond() {
		if !clk.Now().Before(deadline) {
			return limit, false
		}
		if !clk.Step() {
			return clk.Now().Sub(start), cond()
		}
	}
	return clk.Now().Sub(start), true
}
