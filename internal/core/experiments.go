package core

import (
	"fmt"
	"time"

	"dnstime/internal/chronos"
	"dnstime/internal/dnsauth"
	"dnstime/internal/dnswire"
	"dnstime/internal/ipv4"
	"dnstime/internal/ntpclient"
)

// shiftTolerance decides when the victim's clock counts as shifted: within
// 20% of the attacker's offset.
func shifted(offset, target time.Duration) bool {
	lo, hi := target-target/5, target+target/5
	if lo > hi {
		lo, hi = hi, lo
	}
	return offset >= lo && offset <= hi
}

// ---------------------------------------------------------------------------
// Boot-time attack (§IV-A, Figure 2).

// BootTimeResult reports one boot-time attack run.
type BootTimeResult struct {
	Profile     string
	Poisoned    bool          // cache poisoning landed before boot
	Shifted     bool          // the client accepted the attacker's time
	ClockOffset time.Duration // final clock error
	TimeToShift time.Duration // from client boot to the malicious step
	PlantRounds int           // §IV-A planting rounds used
}

// RunBootTimeAttack poisons the resolver before the client boots, then
// boots it and waits for the malicious time step.
func RunBootTimeAttack(prof ntpclient.Profile, cfg LabConfig) (BootTimeResult, error) {
	lab, err := acquireLab(cfg)
	if err != nil {
		return BootTimeResult{}, err
	}
	defer releaseLab(lab)
	tr := lab.tracer()
	res := BootTimeResult{Profile: prof.Name}
	poisonStart := lab.Clock.Now()
	if err := lab.PoisonResolver(86400); err != nil {
		tr.Span(poisonStart, lab.Clock.Now(), "run", "poison", "failed")
		return res, err
	}
	tr.Span(poisonStart, lab.Clock.Now(), "run", "poison", "ok")
	res.Poisoned = true

	client, err := lab.NewClient(prof, 0)
	if err != nil {
		return res, err
	}
	bootAt := lab.Clock.Now()
	if err := client.Start(); err != nil {
		return res, err
	}
	d, ok := waitUntil(lab.Clock, 45*time.Minute, func() bool {
		return shifted(client.ClockOffset(), lab.cfg.EvilOffset)
	})
	res.Shifted = ok
	res.ClockOffset = client.ClockOffset()
	res.TimeToShift = d
	tr.Span(bootAt, lab.Clock.Now(), "run", "boot-wait", traceOutcome(ok))
	return res, nil
}

// traceOutcome renders a success flag for span details without
// allocating.
func traceOutcome(ok bool) string {
	if ok {
		return "shifted"
	}
	return "not-shifted"
}

// ---------------------------------------------------------------------------
// Run-time attack (§IV-B, Figure 3; Table II).

// RuntimeScenario selects the upstream-discovery model.
type RuntimeScenario int

// Scenarios from §V-A2.
const (
	// ScenarioP1: the attacker knows all upstream addresses upfront (pool
	// enumeration or config-interface leak) and starves them concurrently.
	ScenarioP1 RuntimeScenario = iota + 1
	// ScenarioP2: the attacker discovers upstreams one at a time via the
	// victim's RefID and starves them sequentially.
	ScenarioP2
)

// String names the scenario.
func (s RuntimeScenario) String() string {
	if s == ScenarioP2 {
		return "P2"
	}
	return "P1"
}

// RuntimeResult reports one run-time attack.
type RuntimeResult struct {
	Profile     string
	Scenario    RuntimeScenario
	Synced      bool          // client synchronised honestly before attack
	Succeeded   bool          // clock shifted to the attacker's offset
	Duration    time.Duration // attack start → malicious step
	DNSLookups  int           // client DNS queries during the attack
	ClockOffset time.Duration
}

// RunRuntimeAttack boots a client, lets it synchronise honestly, then runs
// the §IV-B attack: continuous §III poisoning campaign plus rate-limit
// starvation of the client's upstream servers (concurrent in P1, RefID-
// discovered in P2), until the client re-queries DNS, associates to the
// attacker's servers and accepts the shifted time.
func RunRuntimeAttack(prof ntpclient.Profile, scenario RuntimeScenario, cfg LabConfig) (RuntimeResult, error) {
	lab, err := acquireLab(cfg)
	if err != nil {
		return RuntimeResult{}, err
	}
	defer releaseLab(lab)
	tr := lab.tracer()
	res := RuntimeResult{Profile: prof.Name, Scenario: scenario}

	client, err := lab.NewClient(prof, 30*time.Second)
	if err != nil {
		return res, err
	}
	syncStart := lab.Clock.Now()
	if err := client.Start(); err != nil {
		return res, err
	}
	// Honest convergence.
	if _, ok := waitUntil(lab.Clock, time.Hour, func() bool {
		return shifted(client.ClockOffset(), 0) || absd(client.ClockOffset()) < time.Second
	}); !ok {
		tr.Span(syncStart, lab.Clock.Now(), "run", "honest-sync", "failed")
		return res, ErrNotSynced
	}
	tr.Span(syncStart, lab.Clock.Now(), "run", "honest-sync", "ok")
	res.Synced = true
	lookupsBefore := client.DNSLookups
	attackStart := lab.Clock.Now()

	// Attack begins: keep the defragmentation cache loaded so the client's
	// eventual DNS re-query is answered with the attacker's servers.
	campaign := lab.StartPoisonCampaign(30*time.Second, 86400)
	defer campaign.Stop()

	victim := clientAddr(client)
	var stopFloods []func()
	defer func() {
		for _, stop := range stopFloods {
			stop()
		}
	}()

	switch scenario {
	case ScenarioP2:
		// Discover-and-starve loop: every minute, read the victim's RefID
		// and flood the revealed upstream.
		flooded := make(map[ipv4.Addr]bool)
		tick := lab.Clock.Tick(time.Minute, func() {
			lab.Eve.DiscoverUpstreamViaRefID(victim, func(up ipv4.Addr, err error) {
				if err != nil || flooded[up] || !lab.isHonest(up) {
					return
				}
				flooded[up] = true
				stopFloods = append(stopFloods, lab.Eve.RateLimitFlood(up, victim, 20*time.Second))
			})
		})
		defer tick.Stop()
	default:
		stopFloods = append(stopFloods, lab.FloodAllHonest(victim))
	}

	d, ok := waitUntil(lab.Clock, 4*time.Hour, func() bool {
		return shifted(client.ClockOffset(), lab.cfg.EvilOffset)
	})
	tr.Span(attackStart, lab.Clock.Now(), "run", "starve-attack", traceOutcome(ok))
	res.Succeeded = ok
	res.Duration = d
	res.DNSLookups = client.DNSLookups - lookupsBefore
	res.ClockOffset = client.ClockOffset()
	return res, nil
}

func clientAddr(c *ntpclient.Client) ipv4.Addr { return c.HostAddr() }

func absd(d time.Duration) time.Duration {
	if d < 0 {
		return -d
	}
	return d
}

// ---------------------------------------------------------------------------
// Table I: attack applicability matrix.

// Applicability marks a Table I cell.
type Applicability int

// Cell values.
const (
	No Applicability = iota
	Yes
	NotApplicable
)

// String renders the cell as in the paper.
func (a Applicability) String() string {
	switch a {
	case Yes:
		return "yes"
	case NotApplicable:
		return "n/a"
	default:
		return "no"
	}
}

// TableIRow is one row of Table I.
type TableIRow struct {
	Client   string
	UsagePct float64
	BootTime Applicability
	RunTime  Applicability
}

// RuntimeApplicability classifies a profile's run-time attack cell from
// its DNS-lookup behaviour (as in the paper's source-code analysis).
func RuntimeApplicability(prof ntpclient.Profile) Applicability {
	switch {
	case prof.OneShot:
		return NotApplicable
	case prof.RuntimeLookup:
		return Yes
	default:
		return No
	}
}

// TableI evaluates boot-time and run-time attacks against every client
// profile, reproducing Table I. Boot-time cells come from live attack runs;
// run-time cells come from RuntimeApplicability cross-checked by live runs
// in the tests.
func TableI(cfg LabConfig) ([]TableIRow, error) {
	var rows []TableIRow
	for _, pu := range ntpclient.AllProfiles() {
		row := TableIRow{Client: pu.Profile.Name, UsagePct: pu.UsagePct}
		boot, err := RunBootTimeAttack(pu.Profile, cfg)
		if err != nil {
			return nil, fmt.Errorf("table I %s: %w", pu.Profile.Name, err)
		}
		if boot.Shifted {
			row.BootTime = Yes
		}
		row.RunTime = RuntimeApplicability(pu.Profile)
		rows = append(rows, row)
	}
	return rows, nil
}

// ---------------------------------------------------------------------------
// Table II: run-time attack durations.

// TableIIRow is one row of Table II.
type TableIIRow struct {
	Client   string
	Scenario RuntimeScenario
	Duration time.Duration
	// PaperDuration is the paper's measured value for comparison.
	PaperDuration time.Duration
}

// TableII runs the four Table II experiments. Note: the paper's table
// prints "openntpd P1 84 minutes", but §V-A2 states openntpd does not
// support run-time DNS lookups and that the three practically evaluated
// clients were ntpd, chrony and systemd-timesyncd; we therefore run
// systemd-timesyncd for that row and record the discrepancy in
// EXPERIMENTS.md.
func TableII(cfg LabConfig) ([]TableIIRow, error) {
	var rows []TableIIRow
	for _, s := range tableIISpecs {
		r, err := RunRuntimeAttack(s.prof, s.scenario, cfg)
		if err != nil {
			return nil, fmt.Errorf("table II %s/%s: %w", s.prof.Name, s.scenario, err)
		}
		if !r.Succeeded {
			return nil, fmt.Errorf("table II %s/%s: attack did not complete", s.prof.Name, s.scenario)
		}
		rows = append(rows, TableIIRow{
			Client:        s.prof.Name,
			Scenario:      s.scenario,
			Duration:      r.Duration,
			PaperDuration: s.paper,
		})
	}
	return rows, nil
}

// tableIISpecs are the four Table II rows (client, discovery scenario,
// the paper's measured duration). The table2 scenario iterates the same
// list so the two views cannot drift.
var tableIISpecs = []struct {
	prof     ntpclient.Profile
	scenario RuntimeScenario
	paper    time.Duration
}{
	{ntpclient.ProfileNTPd, ScenarioP2, 47 * time.Minute},
	{ntpclient.ProfileNTPd, ScenarioP1, 17 * time.Minute},
	{ntpclient.ProfileSystemd, ScenarioP1, 84 * time.Minute},
	{ntpclient.ProfileChrony, ScenarioP1, 57 * time.Minute},
}

// ---------------------------------------------------------------------------
// Chronos attack (§VI-C, Figure 4).

// ChronosResult reports one Chronos attack run.
type ChronosResult struct {
	// N is the number of honest pool-generation queries completed before
	// poisoning landed.
	N int
	// Bound is the analytic maximum N for success (11 with the paper's
	// parameters).
	Bound int
	// PoolSize and EvilInPool describe the final generated pool.
	PoolSize   int
	EvilInPool int
	// ControlsPool: the 2/3 condition held.
	ControlsPool bool
	// Shifted: the Chronos clock accepted the attacker's time.
	Shifted     bool
	ClockOffset time.Duration
}

// RunChronosAttack lets the Chronos client complete n honest hourly pool
// queries, then poisons the resolver with spoofedAddrs attacker addresses
// and a TTL longer than the remaining pool-generation window (the §VI-C
// attack), and reports whether the client's clock shifted.
//
// The poisoned cache entry is installed via the resolver's OverrideCache
// experiment hook: the fragment-replacement vector demonstrated in
// internal/attack cannot change the answer *count* of a response (ANCOUNT
// lives in the first fragment), while §VI-C assumes the attacker fits up to
// 89 addresses into the spoofed response; EXPERIMENTS.md documents this
// substitution.
func RunChronosAttack(n, spoofedAddrs int, cfg LabConfig) (ChronosResult, error) {
	cfg.applyDefaults()
	cfg.EvilServers = spoofedAddrs
	lab, err := acquireLab(cfg)
	if err != nil {
		return ChronosResult{}, err
	}
	defer releaseLab(lab)
	perQuery := 4
	// The Chronos pool nameserver hands out 4 addresses per query (§VI-C);
	// override the lab's default all-at-once pool.
	lab.Auth.AddPool(&dnsauth.Pool{
		Name:        PoolDomain,
		Addrs:       lab.HonestAddrs(),
		PerResponse: perQuery,
		TTL:         lab.cfg.PoolTTL,
	})

	client, err := lab.NewChronos(chronos.Config{
		PoolDomain:    PoolDomain,
		QueryInterval: time.Hour,
		QueryCount:    24,
	})
	if err != nil {
		return ChronosResult{}, err
	}
	if err := client.Start(); err != nil {
		return ChronosResult{}, err
	}

	res := ChronosResult{N: n, Bound: chronos.AttackBound(perQuery, spoofedAddrs)}
	tr := lab.tracer()

	// Let n honest hourly queries complete.
	honestStart := lab.Clock.Now()
	lab.Clock.RunFor(time.Duration(n)*time.Hour + 30*time.Minute)
	tr.Span(honestStart, lab.Clock.Now(), "run", "honest-window", "")

	// Poisoning lands: attacker addresses with TTL > 24 h, so every
	// remaining hourly query is answered from cache.
	lab.Resolver.OverrideCache(PoolDomain, dnswire.TypeA, lab.evilRRSet(25*3600), 25*time.Hour)

	// Run out the 24-hour pool-generation window plus sampling time.
	poisonedStart := lab.Clock.Now()
	lab.Clock.RunFor(26 * time.Hour)
	tr.Span(poisonedStart, lab.Clock.Now(), "run", "poisoned-window", "")

	res.PoolSize = client.PoolSize()
	for _, a := range lab.evilAddr {
		if client.PoolContains(a) {
			res.EvilInPool++
		}
	}
	res.ControlsPool = chronos.ControlsPool(res.EvilInPool, res.PoolSize)
	res.Shifted = shifted(client.ClockOffset(), lab.cfg.EvilOffset)
	res.ClockOffset = client.ClockOffset()
	return res, nil
}
