package core

import (
	"fmt"

	"dnstime/internal/ntpclient"
	"dnstime/internal/scenario"
)

// The end-to-end attack experiments register themselves with the scenario
// registry (see internal/scenario): the headline boot-time, run-time and
// Chronos attacks plus the Table I and Table II matrices, all at the
// paper's default parameters. Profile- or scenario-specific variants stay
// available through the typed runners (RunBootTimeAttack, …) and the
// campaign.Spec engine.
func init() {
	scenario.Register(scenario.Scenario{
		Name:     "boot",
		Title:    "Boot-time attack",
		PaperRef: "§IV-A, Fig. 2",
		Impl:     "core.RunBootTimeAttack",
		CLI:      "ntpattack -mode boot",
		Params:   map[string]string{"client": "ntpd"},
		Order:    10,
		Run:      bootScenario,
	})
	scenario.Register(scenario.Scenario{
		Name:     "runtime",
		Title:    "Run-time attack",
		PaperRef: "§IV-B, Fig. 3",
		Impl:     "core.RunRuntimeAttack",
		CLI:      "ntpattack -mode runtime",
		Params:   map[string]string{"client": "ntpd", "scenario": "P1"},
		Order:    20,
		Run:      runtimeScenario,
	})
	scenario.Register(scenario.Scenario{
		Name:     "table1",
		Title:    "Table I client matrix",
		PaperRef: "§V-A1",
		Impl:     "core.TableI",
		CLI:      "experiments -only table1",
		Params:   map[string]string{"clients": "all 7"},
		Order:    30,
		Run:      tableIScenario,
	})
	scenario.Register(scenario.Scenario{
		Name:     "table2",
		Title:    "Table II attack durations",
		PaperRef: "§V-A2",
		Impl:     "core.TableII",
		CLI:      "experiments -only table2",
		Params:   map[string]string{"rows": "ntpd/P2 ntpd/P1 systemd/P1 chrony/P1"},
		Order:    40,
		Run:      tableIIScenario,
	})
	scenario.Register(scenario.Scenario{
		Name:     "chronos",
		Title:    "Chronos pool-poisoning attack",
		PaperRef: "§VI-C, Fig. 4",
		Impl:     "core.RunChronosAttack",
		CLI:      "ntpattack -mode chronos",
		Params:   map[string]string{"N": "5", "spoofed": "89"},
		Order:    60,
		Run:      chronosScenario,
	})
}

// bootScenario runs the §IV-A attack against the paper's headline ntpd
// profile.
func bootScenario(seed int64, _ scenario.Config) (scenario.Result, error) {
	res, err := RunBootTimeAttack(ntpclient.ProfileNTPd, LabConfig{Seed: seed})
	if err != nil {
		return scenario.Result{}, err
	}
	return scenario.Result{
		Success: scenario.Bool(res.Shifted),
		Metrics: map[string]float64{
			"tts_s":    res.TimeToShift.Seconds(),
			"offset_s": res.ClockOffset.Seconds(),
		},
	}, nil
}

// runtimeScenario runs the §IV-B attack against ntpd under Scenario P1.
func runtimeScenario(seed int64, _ scenario.Config) (scenario.Result, error) {
	res, err := RunRuntimeAttack(ntpclient.ProfileNTPd, ScenarioP1, LabConfig{Seed: seed})
	if err != nil {
		return scenario.Result{}, err
	}
	return scenario.Result{
		Success: scenario.Bool(res.Succeeded),
		Metrics: map[string]float64{
			"duration_s":  res.Duration.Seconds(),
			"dns_lookups": float64(res.DNSLookups),
			"offset_s":    res.ClockOffset.Seconds(),
		},
	}, nil
}

// tableIScenario runs one seed's whole Table I matrix: the boot-time
// attack against all seven client profiles. Per-client outcomes are keyed
// by profile name so a campaign over this scenario aggregates into the
// per-client Table I rows (see campaign.TableI).
func tableIScenario(seed int64, _ scenario.Config) (scenario.Result, error) {
	metrics := make(map[string]float64, 3*len(ntpclient.AllProfiles()))
	allShifted := true
	for _, pu := range ntpclient.AllProfiles() {
		boot, err := RunBootTimeAttack(pu.Profile, LabConfig{Seed: seed})
		if err != nil {
			return scenario.Result{}, fmt.Errorf("table I %s: %w", pu.Profile.Name, err)
		}
		success := 0.0
		if boot.Shifted {
			success = 1
		} else {
			allShifted = false
		}
		metrics["boot/"+pu.Profile.Name] = success
		metrics["tts_s/"+pu.Profile.Name] = boot.TimeToShift.Seconds()
		metrics["offset_s/"+pu.Profile.Name] = boot.ClockOffset.Seconds()
	}
	return scenario.Result{Success: scenario.Bool(allShifted), Metrics: metrics}, nil
}

// tableIIScenario runs one seed's four Table II run-time attack duration
// experiments.
func tableIIScenario(seed int64, _ scenario.Config) (scenario.Result, error) {
	rows, err := TableII(LabConfig{Seed: seed})
	if err != nil {
		return scenario.Result{}, err
	}
	metrics := make(map[string]float64, len(rows))
	for _, r := range rows {
		metrics["minutes/"+r.Client+"-"+r.Scenario.String()] = r.Duration.Minutes()
	}
	return scenario.Result{Success: scenario.Bool(true), Metrics: metrics}, nil
}

// chronosScenario runs the §VI-C attack with the paper's parameters:
// poisoning lands after N=5 honest pool queries, 89 spoofed addresses.
func chronosScenario(seed int64, _ scenario.Config) (scenario.Result, error) {
	res, err := RunChronosAttack(5, 89, LabConfig{Seed: seed})
	if err != nil {
		return scenario.Result{}, err
	}
	controls := 0.0
	if res.ControlsPool {
		controls = 1
	}
	return scenario.Result{
		Success: scenario.Bool(res.Shifted),
		Metrics: map[string]float64{
			"bound":         float64(res.Bound),
			"pool_size":     float64(res.PoolSize),
			"evil_in_pool":  float64(res.EvilInPool),
			"controls_pool": controls,
			"offset_s":      res.ClockOffset.Seconds(),
		},
	}, nil
}
