package core

import (
	"context"
	"fmt"

	"dnstime/internal/netem"
	"dnstime/internal/ntpclient"
	"dnstime/internal/scenario"
)

// netParamKeys are the network-condition params every lab-backed scenario
// accepts: a netem profile name plus optional scalar overrides (`-param
// net=wan`, `-param rtt=200ms`, `-param loss=0.02`; DESIGN.md §8) and the
// role-based topology spec (`-param topo=near-attacker`, `-param
// atk-net=lan`, `-param cli-net=lossy-wifi`; DESIGN.md §9).
var netParamKeys = []string{"net", "rtt", "loss", "topo", "atk-net", "cli-net"}

// labParamKeys are the LabConfig knobs every attack scenario accepts as
// campaign params (`experiments campaigns -param key=value`). Each maps
// onto one LabConfig field; absent params keep the lab defaults.
var labParamKeys = append([]string{
	"offset", "honest_servers", "evil_servers", "pad_b", "pool_ttl_s",
	"ratelimit", "dnssec",
}, netParamKeys...)

// pathFromParams resolves the net/rtt/loss params into a fresh per-run
// netem.PathModel (nil when none of the three is present — the default
// lab path).
func pathFromParams(p scenario.Params) (netem.PathModel, error) {
	profile := p.Str("net", "")
	rtt, err := p.Duration("rtt", 0)
	if err != nil {
		return nil, err
	}
	loss := float64(netem.NoLossOverride)
	if _, ok := p["loss"]; ok {
		// Validate the explicit value here: a raw -1 would otherwise
		// collide with the absent-param sentinel and silently keep the
		// profile's own loss model.
		if loss, err = p.Float("loss", 0); err != nil {
			return nil, err
		}
		if loss < 0 || loss > 1 {
			return nil, fmt.Errorf("core: param loss=%v must be a fraction in [0, 1]", loss)
		}
	}
	if profile == "" && rtt == 0 && loss == netem.NoLossOverride {
		return nil, nil
	}
	return netem.FromSpec(profile, rtt, loss)
}

// netFromParams resolves the full network-condition param surface into
// either a uniform PathModel (net/rtt/loss only — the §8 path) or a
// role-based Topology (topo/atk-net/cli-net present — the §9 path, with
// any uniform spec folded in as the topology default). Exactly one of
// the two returns non-nil; both nil means the default lab link.
func netFromParams(p scenario.Params) (netem.PathModel, *netem.Topology, error) {
	path, err := pathFromParams(p)
	if err != nil {
		return nil, nil, err
	}
	preset := p.Str("topo", "")
	atkNet := p.Str("atk-net", "")
	cliNet := p.Str("cli-net", "")
	if preset == "" && atkNet == "" && cliNet == "" {
		return path, nil, nil
	}
	topo, err := netem.TopologyFromSpec(preset, atkNet, cliNet, path)
	if err != nil {
		return nil, nil, err
	}
	return nil, topo, nil
}

// sizeParam reads a non-negative integer sizing param (0 keeps the lab
// default). Negative values are rejected here rather than flowing into
// LabConfig, whose applyDefaults only corrects the zero value — and a
// negative pool_ttl_s would otherwise wrap to a huge uint32 TTL.
func sizeParam(p scenario.Params, key string) (int, error) {
	n, err := p.Int(key, 0)
	if err != nil {
		return 0, err
	}
	if n < 0 {
		return 0, fmt.Errorf("core: param %s=%d must not be negative", key, n)
	}
	return n, nil
}

// labFromParams builds the per-run LabConfig from the generic scenario
// params, seeding it for the run. The caller threads cfg.Tracer itself
// (labConfig below does both).
func labFromParams(seed int64, p scenario.Params) (LabConfig, error) {
	cfg := LabConfig{Seed: seed}
	var err error
	if cfg.EvilOffset, err = p.Duration("offset", 0); err != nil {
		return cfg, err
	}
	if cfg.HonestServers, err = sizeParam(p, "honest_servers"); err != nil {
		return cfg, err
	}
	if cfg.EvilServers, err = sizeParam(p, "evil_servers"); err != nil {
		return cfg, err
	}
	if cfg.PadResponses, err = sizeParam(p, "pad_b"); err != nil {
		return cfg, err
	}
	ttl, err := sizeParam(p, "pool_ttl_s")
	if err != nil {
		return cfg, err
	}
	cfg.PoolTTL = uint32(ttl)
	if _, ok := p["ratelimit"]; ok {
		rl, err := p.Bool("ratelimit", true)
		if err != nil {
			return cfg, err
		}
		cfg.RateLimitHonest = &rl
	}
	if cfg.ResolverValidatesDNSSEC, err = p.Bool("dnssec", false); err != nil {
		return cfg, err
	}
	if cfg.Path, cfg.Topology, err = netFromParams(p); err != nil {
		return cfg, err
	}
	return cfg, nil
}

// clientFromParams resolves the "client" param against the Table I
// profiles, defaulting to the paper's headline ntpd profile.
func clientFromParams(p scenario.Params) (ntpclient.Profile, error) {
	return ntpclient.ProfileByName(p.Str("client", "ntpd"))
}

// labConfig builds the per-run LabConfig from the scenario Config: params
// plus the run's tracer, so a traced campaign run records its lab.
func labConfig(seed int64, cfg scenario.Config) (LabConfig, error) {
	lc, err := labFromParams(seed, cfg.Params)
	lc.Tracer = cfg.Tracer
	return lc, err
}

// The end-to-end attack experiments register themselves with the scenario
// registry (see internal/scenario): the headline boot-time, run-time and
// Chronos attacks plus the Table I and Table II matrices, all at the
// paper's default parameters. The attack scenarios are parameterisable
// (ParamKeys): any client profile, run-time scenario, target shift or lab
// sizing is an ordinary parameterised campaign, which is also how the
// deprecated campaign.Spec shim executes.
func init() {
	scenario.Register(scenario.Scenario{
		Name:      "boot",
		Title:     "Boot-time attack",
		PaperRef:  "§IV-A, Fig. 2",
		Impl:      "core.RunBootTimeAttack",
		CLI:       "ntpattack -mode boot",
		Params:    map[string]string{"client": "ntpd"},
		ParamKeys: append([]string{"client"}, labParamKeys...),
		Order:     10,
		Run:       bootScenario,
	})
	scenario.Register(scenario.Scenario{
		Name:      "runtime",
		Title:     "Run-time attack",
		PaperRef:  "§IV-B, Fig. 3",
		Impl:      "core.RunRuntimeAttack",
		CLI:       "ntpattack -mode runtime",
		Params:    map[string]string{"client": "ntpd", "scenario": "P1"},
		ParamKeys: append([]string{"client", "scenario"}, labParamKeys...),
		Order:     20,
		Run:       runtimeScenario,
	})
	scenario.Register(scenario.Scenario{
		Name:      "table1",
		Title:     "Table I client matrix",
		PaperRef:  "§V-A1",
		Impl:      "core.TableI",
		CLI:       "experiments -only table1",
		Params:    map[string]string{"clients": "all 7"},
		ParamKeys: netParamKeys,
		Order:     30,
		Run:       tableIScenario,
	})
	scenario.Register(scenario.Scenario{
		Name:      "table2",
		Title:     "Table II attack durations",
		PaperRef:  "§V-A2",
		Impl:      "core.TableII",
		CLI:       "experiments -only table2",
		Params:    map[string]string{"rows": "ntpd/P2 ntpd/P1 systemd/P1 chrony/P1"},
		ParamKeys: netParamKeys,
		Order:     40,
		Run:       tableIIScenario,
	})
	scenario.Register(scenario.Scenario{
		Name:      "chronos",
		Title:     "Chronos pool-poisoning attack",
		PaperRef:  "§VI-C, Fig. 4",
		Impl:      "core.RunChronosAttack",
		CLI:       "ntpattack -mode chronos",
		Params:    map[string]string{"N": "5", "spoofed": "89"},
		ParamKeys: append([]string{"N", "spoofed"}, labParamKeys...),
		Order:     60,
		Run:       chronosScenario,
	})
}

// bootScenario runs the §IV-A attack — by default against the paper's
// headline ntpd profile; params select any client profile and lab sizing.
func bootScenario(_ context.Context, seed int64, cfg scenario.Config) (scenario.Result, error) {
	prof, err := clientFromParams(cfg.Params)
	if err != nil {
		return scenario.Result{}, err
	}
	lab, err := labConfig(seed, cfg)
	if err != nil {
		return scenario.Result{}, err
	}
	res, err := RunBootTimeAttack(prof, lab)
	if err != nil {
		return scenario.Result{}, err
	}
	return scenario.Result{
		Success: scenario.Bool(res.Shifted),
		Metrics: map[string]float64{
			"tts_s":    res.TimeToShift.Seconds(),
			"offset_s": res.ClockOffset.Seconds(),
		},
	}, nil
}

// runtimeScenario runs the §IV-B attack — by default against ntpd under
// Scenario P1; params select the client profile, P1/P2 and lab sizing.
func runtimeScenario(_ context.Context, seed int64, cfg scenario.Config) (scenario.Result, error) {
	prof, err := clientFromParams(cfg.Params)
	if err != nil {
		return scenario.Result{}, err
	}
	rs := ScenarioP1
	switch name := cfg.Params.Str("scenario", "P1"); name {
	case "P1", "p1":
	case "P2", "p2":
		rs = ScenarioP2
	default:
		return scenario.Result{}, fmt.Errorf("core: unknown run-time scenario %q (want P1 or P2)", name)
	}
	lab, err := labConfig(seed, cfg)
	if err != nil {
		return scenario.Result{}, err
	}
	res, err := RunRuntimeAttack(prof, rs, lab)
	if err != nil {
		return scenario.Result{}, err
	}
	return scenario.Result{
		Success: scenario.Bool(res.Succeeded),
		Metrics: map[string]float64{
			"duration_s":  res.Duration.Seconds(),
			"dns_lookups": float64(res.DNSLookups),
			"offset_s":    res.ClockOffset.Seconds(),
		},
	}, nil
}

// tableIScenario runs one seed's whole Table I matrix: the boot-time
// attack against all seven client profiles. Per-client outcomes are keyed
// by profile name so a campaign over this scenario aggregates into the
// per-client Table I rows (see campaign.TableI). The net/rtt/loss params
// rerun the matrix under any netem path.
func tableIScenario(_ context.Context, seed int64, cfg scenario.Config) (scenario.Result, error) {
	metrics := make(map[string]float64, 3*len(ntpclient.AllProfiles()))
	allShifted := true
	for _, pu := range ntpclient.AllProfiles() {
		path, topo, err := netFromParams(cfg.Params)
		if err != nil {
			return scenario.Result{}, err
		}
		boot, err := RunBootTimeAttack(pu.Profile, LabConfig{Seed: seed, Path: path, Topology: topo, Tracer: cfg.Tracer})
		if err != nil {
			return scenario.Result{}, fmt.Errorf("table I %s: %w", pu.Profile.Name, err)
		}
		success := 0.0
		if boot.Shifted {
			success = 1
		} else {
			allShifted = false
		}
		metrics["boot/"+pu.Profile.Name] = success
		metrics["tts_s/"+pu.Profile.Name] = boot.TimeToShift.Seconds()
		metrics["offset_s/"+pu.Profile.Name] = boot.ClockOffset.Seconds()
	}
	return scenario.Result{Success: scenario.Bool(allShifted), Metrics: metrics}, nil
}

// tableIIScenario runs one seed's four Table II run-time attack duration
// experiments (under any netem path via the net/rtt/loss params). Each
// row gets a freshly built path model: stateful loss models must not
// carry state from one row's lab into the next (the netem one-model-
// per-lab rule), so the rows stay independent of each other's packet
// counts and match a standalone runtime run at the same seed and params.
func tableIIScenario(_ context.Context, seed int64, cfg scenario.Config) (scenario.Result, error) {
	metrics := make(map[string]float64, len(tableIISpecs))
	for _, s := range tableIISpecs {
		path, topo, err := netFromParams(cfg.Params)
		if err != nil {
			return scenario.Result{}, err
		}
		r, err := RunRuntimeAttack(s.prof, s.scenario, LabConfig{Seed: seed, Path: path, Topology: topo, Tracer: cfg.Tracer})
		if err != nil {
			return scenario.Result{}, fmt.Errorf("table II %s/%s: %w", s.prof.Name, s.scenario, err)
		}
		if !r.Succeeded {
			return scenario.Result{}, fmt.Errorf("table II %s/%s: attack did not complete", s.prof.Name, s.scenario)
		}
		metrics["minutes/"+s.prof.Name+"-"+s.scenario.String()] = r.Duration.Minutes()
	}
	return scenario.Result{Success: scenario.Bool(true), Metrics: metrics}, nil
}

// chronosScenario runs the §VI-C attack — by default with the paper's
// parameters (poisoning lands after N=5 honest pool queries, 89 spoofed
// addresses); params select N, spoofed and lab sizing.
func chronosScenario(_ context.Context, seed int64, cfg scenario.Config) (scenario.Result, error) {
	n, err := cfg.Params.Int("N", 5)
	if err != nil {
		return scenario.Result{}, err
	}
	spoofed, err := cfg.Params.Int("spoofed", 89)
	if err != nil {
		return scenario.Result{}, err
	}
	if n < 0 || spoofed < 0 {
		return scenario.Result{}, fmt.Errorf("core: chronos params N=%d spoofed=%d must not be negative", n, spoofed)
	}
	lab, err := labConfig(seed, cfg)
	if err != nil {
		return scenario.Result{}, err
	}
	res, err := RunChronosAttack(n, spoofed, lab)
	if err != nil {
		return scenario.Result{}, err
	}
	controls := 0.0
	if res.ControlsPool {
		controls = 1
	}
	return scenario.Result{
		Success: scenario.Bool(res.Shifted),
		Metrics: map[string]float64{
			"bound":         float64(res.Bound),
			"pool_size":     float64(res.PoolSize),
			"evil_in_pool":  float64(res.EvilInPool),
			"controls_pool": controls,
			"offset_s":      res.ClockOffset.Seconds(),
		},
	}, nil
}
