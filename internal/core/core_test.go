package core

import (
	"context"
	"testing"
	"time"

	"dnstime/internal/ntpclient"
	"dnstime/internal/scenario"
)

func TestPoisonResolverEndToEnd(t *testing.T) {
	lab, err := NewLab(LabConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if lab.CachePoisoned() {
		t.Fatal("cache poisoned before attack")
	}
	if err := lab.PoisonResolver(86400); err != nil {
		t.Fatalf("PoisonResolver: %v", err)
	}
	if !lab.CachePoisoned() {
		t.Fatal("CachePoisoned() false after successful poisoning")
	}
	if lab.Resolver.Host().ChecksumErrors != 0 {
		t.Errorf("resolver checksum errors: %d", lab.Resolver.Host().ChecksumErrors)
	}
}

func TestBootTimeAttackNTPd(t *testing.T) {
	res, err := RunBootTimeAttack(ntpclient.ProfileNTPd, LabConfig{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Poisoned {
		t.Fatal("poisoning did not land")
	}
	if !res.Shifted {
		t.Fatalf("boot-time attack failed: offset=%v", res.ClockOffset)
	}
	if res.TimeToShift <= 0 || res.TimeToShift > 45*time.Minute {
		t.Errorf("TimeToShift = %v", res.TimeToShift)
	}
}

func TestBootTimeAttackSystemd(t *testing.T) {
	res, err := RunBootTimeAttack(ntpclient.ProfileSystemd, LabConfig{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Shifted {
		t.Fatalf("systemd boot-time attack failed: offset=%v", res.ClockOffset)
	}
}

func TestRuntimeAttackP1NTPd(t *testing.T) {
	res, err := RunRuntimeAttack(ntpclient.ProfileNTPd, ScenarioP1, LabConfig{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Synced {
		t.Fatal("client never synced honestly")
	}
	if !res.Succeeded {
		t.Fatalf("P1 attack failed: offset=%v lookups=%d", res.ClockOffset, res.DNSLookups)
	}
	if res.DNSLookups == 0 {
		t.Error("no run-time DNS lookups recorded")
	}
	// Paper: 17 minutes. Accept the right order of magnitude.
	if res.Duration < 5*time.Minute || res.Duration > 60*time.Minute {
		t.Errorf("P1 duration = %v, want tens of minutes (paper: 17m)", res.Duration)
	}
}

func TestRuntimeAttackP2NTPd(t *testing.T) {
	res, err := RunRuntimeAttack(ntpclient.ProfileNTPd, ScenarioP2, LabConfig{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Succeeded {
		t.Fatalf("P2 attack failed: offset=%v", res.ClockOffset)
	}
	// P2 must be slower than P1 (sequential discovery).
	p1, err := RunRuntimeAttack(ntpclient.ProfileNTPd, ScenarioP1, LabConfig{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.Duration <= p1.Duration {
		t.Errorf("P2 (%v) should take longer than P1 (%v)", res.Duration, p1.Duration)
	}
}

func TestRuntimeAttackOpenNTPDFails(t *testing.T) {
	res, err := RunRuntimeAttack(ntpclient.ProfileOpenNTPD, ScenarioP1, LabConfig{Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	if res.Succeeded {
		t.Error("openntpd (no run-time DNS) should not be attackable at run-time")
	}
	if res.DNSLookups != 0 {
		t.Errorf("openntpd did %d run-time lookups", res.DNSLookups)
	}
}

func TestTableIMatchesPaper(t *testing.T) {
	rows, err := TableI(LabConfig{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]struct{ boot, run Applicability }{
		"NTPd":              {Yes, Yes},
		"openntpd":          {Yes, No},
		"chrony":            {Yes, Yes},
		"ntpdate":           {Yes, NotApplicable},
		"Android":           {Yes, Yes},
		"ntpclient":         {Yes, No},
		"systemd-timesyncd": {Yes, Yes},
	}
	if len(rows) != len(want) {
		t.Fatalf("rows = %d, want %d", len(rows), len(want))
	}
	for _, row := range rows {
		w, ok := want[row.Client]
		if !ok {
			t.Errorf("unexpected client %q", row.Client)
			continue
		}
		if row.BootTime != w.boot {
			t.Errorf("%s boot-time = %v, want %v", row.Client, row.BootTime, w.boot)
		}
		if row.RunTime != w.run {
			t.Errorf("%s run-time = %v, want %v", row.Client, row.RunTime, w.run)
		}
	}
}

func TestTableIIShape(t *testing.T) {
	if testing.Short() {
		t.Skip("four full run-time attacks")
	}
	rows, err := TableII(LabConfig{Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	byKey := map[string]time.Duration{}
	for _, r := range rows {
		byKey[r.Client+"/"+r.Scenario.String()] = r.Duration
	}
	p1 := byKey["NTPd/P1"]
	p2 := byKey["NTPd/P2"]
	if p1 == 0 || p2 == 0 {
		t.Fatalf("missing NTPd rows: %v", byKey)
	}
	if p2 <= p1 {
		t.Errorf("NTPd P2 (%v) should exceed P1 (%v), as in the paper (47m vs 17m)", p2, p1)
	}
	if chrony := byKey["chrony/P1"]; chrony <= p1 {
		t.Errorf("chrony P1 (%v) should exceed NTPd P1 (%v), as in the paper (57m vs 17m)", chrony, p1)
	}
}

func TestChronosAttackWithinBound(t *testing.T) {
	res, err := RunChronosAttack(5, 89, LabConfig{Seed: 9, HonestServers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if res.Bound != 11 {
		t.Errorf("bound = %d, want 11", res.Bound)
	}
	if !res.ControlsPool {
		t.Fatalf("attacker does not control pool: %d/%d", res.EvilInPool, res.PoolSize)
	}
	if !res.Shifted {
		t.Fatalf("Chronos clock not shifted: offset=%v", res.ClockOffset)
	}
}

func TestChronosAttackBeyondBoundFails(t *testing.T) {
	// With 30 honest servers and poisoning landing only after N=20 hourly
	// queries, the attacker cannot reach 2/3 control.
	res, err := RunChronosAttack(20, 89, LabConfig{Seed: 10, HonestServers: 90})
	if err != nil {
		t.Fatal(err)
	}
	if res.ControlsPool {
		t.Fatalf("attacker controls pool beyond the bound: %d/%d", res.EvilInPool, res.PoolSize)
	}
	if res.Shifted {
		t.Errorf("Chronos shifted despite sub-2/3 control: offset=%v", res.ClockOffset)
	}
}

func TestCampaignLowVolume(t *testing.T) {
	// §IV-A: the planting approach requires "only one low bandwidth
	// attacking host" — check the attack volume stays small.
	lab, err := NewLab(LabConfig{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	campaign := lab.StartPoisonCampaign(30*time.Second, 0)
	lab.Clock.RunFor(150 * time.Second) // one pool-record TTL window
	campaign.Stop()
	// ≤ 5 rounds (150/30) of (1 ICMP + 1 template + 2 probes + 16 frags).
	if campaign.Rounds > 6 {
		t.Errorf("rounds = %d, want ≤6", campaign.Rounds)
	}
	if lab.Eve.InjectedPackets > 6*25 {
		t.Errorf("attack volume = %d packets per TTL window, want ≈≤150", lab.Eve.InjectedPackets)
	}
}

// TestScenarioParamsRejectNegativeSizes: negative sizing params must fail
// the run instead of wrapping (pool_ttl_s through uint32) or flowing a
// nonsensical lab into the simulation.
func TestScenarioParamsRejectNegativeSizes(t *testing.T) {
	for _, p := range []scenario.Params{
		{"pool_ttl_s": "-1"},
		{"honest_servers": "-3"},
		{"evil_servers": "-2"},
		{"pad_b": "-9"},
	} {
		if _, err := scenario.Run(context.Background(), "boot", 1, scenario.Config{Params: p}); err == nil {
			t.Errorf("params %v accepted", p)
		}
	}
	if _, err := scenario.Run(context.Background(), "chronos", 1, scenario.Config{Params: scenario.Params{"N": "-1"}}); err == nil {
		t.Error("negative chronos N accepted")
	}
}
