package core

import (
	"context"
	"encoding/json"
	"reflect"
	"strings"
	"testing"
	"time"

	"dnstime/internal/netem"
	"dnstime/internal/ntpclient"
	"dnstime/internal/scenario"
)

// TestLabPathTopologyExclusive: a LabConfig carrying both a uniform Path
// and a Topology is a configuration error, not a silent precedence.
func TestLabPathTopologyExclusive(t *testing.T) {
	topo, err := netem.TopologyPreset("colo")
	if err != nil {
		t.Fatal(err)
	}
	path, err := netem.Profile("wan")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewLab(LabConfig{Seed: 1, Path: path, Topology: topo}); err == nil {
		t.Fatal("NewLab accepted Path and Topology together")
	}
}

// TestUniformTopologyByteIdentical is the tentpole's compatibility
// acceptance at the lab level: a lab under the uniform topology preset
// replays the topology-free lab byte-for-byte — same attack outcome,
// same metrics, same virtual timings — because the compiled uniform
// topology consumes no randomness and applies the identical default
// path. The boot and chronos attacks cover the DNS and NTP planes.
func TestUniformTopologyByteIdentical(t *testing.T) {
	uniform := func() *netem.Topology {
		topo, err := netem.TopologyPreset("uniform")
		if err != nil {
			t.Fatal(err)
		}
		return topo
	}
	for seed := int64(1); seed <= 3; seed++ {
		plain, err := RunBootTimeAttack(ntpclient.ProfileNTPd, LabConfig{Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		under, err := RunBootTimeAttack(ntpclient.ProfileNTPd, LabConfig{Seed: seed, Topology: uniform()})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(plain, under) {
			t.Errorf("seed %d: boot result differs under uniform topology:\n%+v\nvs\n%+v", seed, plain, under)
		}
	}
	plain, err := RunChronosAttack(5, 89, LabConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	under, err := RunChronosAttack(5, 89, LabConfig{Seed: 1, Topology: uniform()})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain, under) {
		t.Errorf("chronos result differs under uniform topology:\n%+v\nvs\n%+v", plain, under)
	}
}

// TestScenarioTopoUniformByteIdentical lifts the same acceptance to the
// scenario layer: `-param topo=uniform` produces the byte-identical
// Result JSON of a param-free run, for every lab-backed scenario.
func TestScenarioTopoUniformByteIdentical(t *testing.T) {
	for _, name := range []string{"boot", "runtime", "table1", "chronos"} {
		render := func(params scenario.Params) string {
			res, err := scenario.Run(context.Background(), name, 2, scenario.Config{Params: params})
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			b, err := json.Marshal(res)
			if err != nil {
				t.Fatal(err)
			}
			return string(b)
		}
		plain := render(nil)
		under := render(scenario.Params{"topo": "uniform"})
		if plain != under {
			t.Errorf("%s: Result differs under topo=uniform:\n%s\nvs\n%s", name, plain, under)
		}
	}
}

// TestLabFromParamsTopology: the topo/atk-net/cli-net params build a
// Topology (folding any uniform net= spec into its default), plain
// net/rtt/loss keep the uniform Path, and bad names fail per parameter.
func TestLabFromParamsTopology(t *testing.T) {
	cfg, err := labFromParams(1, scenario.Params{"topo": "near-attacker"})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Topology == nil || cfg.Path != nil {
		t.Errorf("topo param: Topology=%v Path=%v, want topology only", cfg.Topology, cfg.Path)
	}
	cfg, err = labFromParams(1, scenario.Params{"atk-net": "lan", "net": "wan"})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Topology == nil || cfg.Path != nil {
		t.Error("atk-net + net should fold into a topology")
	}
	if cfg.Topology.Default == nil {
		t.Error("net= did not become the topology default")
	}
	cfg, err = labFromParams(1, scenario.Params{"net": "wan"})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Topology != nil || cfg.Path == nil {
		t.Error("plain net= should stay a uniform Path")
	}
	for name, p := range map[string]scenario.Params{
		"unknown preset":  {"topo": "backbone"},
		"unknown atk-net": {"atk-net": "dialup"},
		"unknown cli-net": {"cli-net": "dialup"},
	} {
		if _, err := labFromParams(1, p); err == nil {
			t.Errorf("%s accepted (%v)", name, p)
		}
	}
}

// TestRacemarginMonotone is the racemargin acceptance: under the
// near-attacker preset the per-seed success-vs-margin table is monotone
// non-decreasing in the attacker's advantage, shows both a losing and a
// winning margin, and succeeds at the preset's native margin.
func TestRacemarginMonotone(t *testing.T) {
	margins, err := parseMargins(defaultMarginSpec)
	if err != nil {
		t.Fatal(err)
	}
	for seed := int64(1); seed <= 3; seed++ {
		res, err := scenario.Run(context.Background(), "racemargin", seed, scenario.Config{})
		if err != nil {
			t.Fatal(err)
		}
		prev := 0.0
		lost, won := false, false
		for _, m := range margins {
			v, ok := res.Metrics["shifted/"+m.String()]
			if !ok {
				t.Fatalf("seed %d: no shifted metric for margin %s", seed, m)
			}
			if v < prev {
				t.Errorf("seed %d: success-vs-margin not monotone at %s (%v after %v)", seed, m, v, prev)
			}
			prev = v
			if v == 0 {
				lost = true
			} else {
				won = true
			}
		}
		if !lost || !won {
			t.Errorf("seed %d: margin table does not bracket the threshold (lost=%t won=%t)", seed, lost, won)
		}
		if res.Success == nil || !*res.Success {
			t.Errorf("seed %d: attack should succeed at the grid's top margin", seed)
		}
	}
}

// TestRacemarginParams: the margins grid is validated (ascending,
// durations, non-empty) and vic-net must name a profile.
func TestRacemarginParams(t *testing.T) {
	for name, p := range map[string]scenario.Params{
		"not a duration": {"margins": "fast"},
		"not ascending":  {"margins": "0s,-1s"},
		"duplicate":      {"margins": "1s,1s"},
		"bad vic-net":    {"vic-net": "dialup"},
	} {
		if _, err := scenario.Run(context.Background(), "racemargin", 1, scenario.Config{
			Params: p,
		}); err == nil {
			t.Errorf("%s accepted (%v)", name, p)
		}
	}
	if _, err := parseMargins(""); err == nil {
		t.Error("empty margin spec accepted")
	}
	// A custom two-point grid runs and keys its metrics by margin.
	res, err := scenario.Run(context.Background(), "racemargin", 1, scenario.Config{
		Params: scenario.Params{"margins": "-1.1s,28ms"},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"shifted/-1.1s", "shifted/28ms"} {
		if _, ok := res.Metrics[key]; !ok {
			t.Errorf("metric %q missing (have %v)", key, res.Metrics)
		}
	}
}

// TestParseMarginsEdgeCases pins the margin-grid parser against the
// malformed specs a CLI round trip can produce: trailing commas,
// duplicate or unsorted entries, empty and all-whitespace specs.
func TestParseMarginsEdgeCases(t *testing.T) {
	for name, spec := range map[string]string{
		"empty":            "",
		"whitespace only":  "   ",
		"trailing comma":   "-1s,",
		"leading comma":    ",-1s",
		"double comma":     "-2s,,-1s",
		"duplicate":        "-1s,-1s",
		"unsorted":         "-1s,-2s",
		"equal after trim": " -1s , -1s ",
		"not a duration":   "-2s,fast",
		"unitless":         "-2s,-1",
	} {
		if got, err := parseMargins(spec); err == nil {
			t.Errorf("%s: parseMargins(%q) = %v, want error", name, spec, got)
		}
	}
	got, err := parseMargins(" -2s, -1.2s ,28ms ")
	if err != nil {
		t.Fatalf("spaced spec rejected: %v", err)
	}
	want := []time.Duration{-2 * time.Second, -1200 * time.Millisecond, 28 * time.Millisecond}
	if len(got) != len(want) {
		t.Fatalf("parseMargins = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("margin[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	if ms, err := parseMargins("-1.15s"); err != nil || len(ms) != 1 || ms[0] != -1150*time.Millisecond {
		t.Errorf("single-point grid = %v, %v", ms, err)
	}
}

// TestRacemarginSingleMarginParam: `margin=` runs exactly one point and
// reproduces the same metrics the full grid reports for that point — the
// probe contract the adaptive search engine (internal/search) drives —
// and is mutually exclusive with `margins=`.
func TestRacemarginSingleMarginParam(t *testing.T) {
	const seed = 2
	single, err := scenario.Run(context.Background(), "racemargin", seed, scenario.Config{
		Params: scenario.Params{"margin": "-1.1s"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(single.Metrics) == 0 {
		t.Fatal("single-margin run reported no metrics")
	}
	for key := range single.Metrics {
		if !strings.HasSuffix(key, "/-1.1s") {
			t.Errorf("single-margin run leaked metric %q", key)
		}
	}
	grid, err := scenario.Run(context.Background(), "racemargin", seed, scenario.Config{
		Params: scenario.Params{"margins": "-2s,-1.1s,28ms"},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"poisoned/-1.1s", "shifted/-1.1s"} {
		if single.Metrics[key] != grid.Metrics[key] {
			t.Errorf("metric %s: single %v != grid %v", key, single.Metrics[key], grid.Metrics[key])
		}
	}
	if shifted := single.Metrics["shifted/-1.1s"] == 1; (single.Success != nil && *single.Success) != shifted {
		t.Errorf("Success = %v, want the -1.1s outcome %t", single.Success, shifted)
	}
	for name, p := range map[string]scenario.Params{
		"margin with margins": {"margin": "-1s", "margins": "-2s,-1s"},
		"margin not duration": {"margin": "soon"},
		"margin empty":        {"margin": ""},
	} {
		if _, err := scenario.Run(context.Background(), "racemargin", seed, scenario.Config{Params: p}); err == nil {
			t.Errorf("%s accepted (%v)", name, p)
		}
	}
}

// TestNetsweepTopoAxis: topo=<preset> reruns the profile grid under a
// role-based topology without changing the metric keys, and topo=all
// fans out over every preset with preset-qualified keys.
func TestNetsweepTopoAxis(t *testing.T) {
	res, err := scenario.Run(context.Background(), "netsweep", 1, scenario.Config{
		Params: scenario.Params{"topo": "near-attacker"},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, profile := range netem.ProfileNames() {
		if _, ok := res.Metrics["shifted/"+profile]; !ok {
			t.Errorf("topo=near-attacker: metric shifted/%s missing", profile)
		}
	}
	res, err = scenario.Run(context.Background(), "netsweep", 1, scenario.Config{
		Params: scenario.Params{"topo": "all"},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, preset := range netem.TopologyNames() {
		for _, profile := range netem.ProfileNames() {
			if _, ok := res.Metrics["shifted/"+preset+"/"+profile]; !ok {
				t.Errorf("topo=all: metric shifted/%s/%s missing", preset, profile)
			}
		}
	}
	if _, err := scenario.Run(context.Background(), "netsweep", 1, scenario.Config{
		Params: scenario.Params{"topo": "backbone"},
	}); err == nil {
		t.Error("unknown netsweep topo accepted")
	}
}

// TestNearAttackerFasterAttack: under the near-attacker preset the
// boot-time attack still lands, and the colo preset (attacker beside the
// resolver) completes no slower than the far-attacker preset — the
// position advantage is visible end to end.
func TestNearAttackerFasterAttack(t *testing.T) {
	times := map[string]time.Duration{}
	for _, preset := range []string{"near-attacker", "colo", "far-attacker"} {
		topo, err := netem.TopologyPreset(preset)
		if err != nil {
			t.Fatal(err)
		}
		res, err := RunBootTimeAttack(ntpclient.ProfileNTPd, LabConfig{Seed: 1, Topology: topo})
		if err != nil {
			t.Fatalf("%s: %v", preset, err)
		}
		if !res.Shifted {
			t.Fatalf("%s: boot attack did not shift the clock", preset)
		}
		times[preset] = res.TimeToShift
	}
	if times["colo"] > times["far-attacker"] {
		t.Errorf("colo attack (%v) slower than far-attacker (%v)", times["colo"], times["far-attacker"])
	}
}

// TestTopologyDeterministicAcrossRuns: an asymmetric, stateful topology
// (near-attacker over bursty victim loss) replays byte-identically for
// equal seeds — the per-run property campaign workers rely on.
func TestTopologyDeterministicAcrossRuns(t *testing.T) {
	run := func() string {
		res, err := scenario.Run(context.Background(), "racemargin", 3, scenario.Config{
			Params: scenario.Params{"margins": "-1.2s,28ms", "vic-net": "lossy-wifi"},
		})
		if err != nil {
			t.Fatal(err)
		}
		b, err := json.Marshal(res)
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}
	if a, b := run(), run(); a != b {
		t.Errorf("racemargin over lossy-wifi differs between identical runs:\n%s\nvs\n%s", a, b)
	}
}

// TestRacemarginRegistered: the scenario is registered with the
// documented parameter surface.
func TestRacemarginRegistered(t *testing.T) {
	sc, ok := scenario.Lookup("racemargin")
	if !ok {
		t.Fatal("racemargin not registered")
	}
	keys := strings.Join(sc.ParamKeys, ",")
	for _, want := range []string{"client", "margins", "vic-net"} {
		if !strings.Contains(keys, want) {
			t.Errorf("racemargin ParamKeys missing %q (have %s)", want, keys)
		}
	}
}
