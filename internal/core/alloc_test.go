package core

import (
	"testing"
)

// allocBudgetLabReset is the committed budget for re-purposing a pooled
// laboratory to a new seed: Lab.Reset re-wires nameserver, resolver,
// attacker and twelve NTP servers in place, so the remaining allocations
// are the handful of per-run config values (the defaults pointer, network
// options, the pool record set). Building the same lab from scratch costs
// thousands of allocations; this gate keeps the pooled path two orders of
// magnitude under that.
const allocBudgetLabReset = 40

func TestAllocBudgetLabReset(t *testing.T) {
	l := MustNewLab(LabConfig{Seed: 1})
	seed := int64(1)
	reset := func() {
		seed++
		if err := l.Reset(LabConfig{Seed: seed}); err != nil {
			t.Fatal(err)
		}
	}
	// Warm the event arena and component scratch before measuring.
	for i := 0; i < 4; i++ {
		reset()
	}
	avg := testing.AllocsPerRun(50, reset)
	if avg > allocBudgetLabReset {
		t.Errorf("%.1f allocs per pooled lab reset, budget %d", avg, allocBudgetLabReset)
	}
}
