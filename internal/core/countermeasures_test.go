package core

import (
	"errors"
	"testing"
	"time"

	"dnstime/internal/dnsauth"
	"dnstime/internal/ntpclient"
)

// TestDNSSECValidationDefeatsPoisoning is the Section IX countermeasure:
// with a signed pool zone and a validating resolver, the spoofed second
// fragment's rdata replacement breaks the signature and the poisoned
// response is rejected.
func TestDNSSECValidationDefeatsPoisoning(t *testing.T) {
	lab, err := NewLab(LabConfig{Seed: 21, ResolverValidatesDNSSEC: true})
	if err != nil {
		t.Fatal(err)
	}
	// Sign the pool zone (on the real Internet only time.cloudflare.com
	// was signed — the attack's enabler is that pool.ntp.org is not).
	z := dnsauth.NewZone(PoolDomain)
	z.Signed = true
	lab.Auth.AddZone(z)

	err = lab.PoisonResolver(86400)
	if !errors.Is(err, ErrPoisoningFailed) {
		t.Fatalf("err = %v, want ErrPoisoningFailed with DNSSEC validation", err)
	}
	if lab.CachePoisoned() {
		t.Fatal("cache poisoned despite DNSSEC validation")
	}
}

// TestDNSSECSignedZoneStillServesClients: the countermeasure must not break
// legitimate resolution.
func TestDNSSECSignedZoneStillServesClients(t *testing.T) {
	lab, err := NewLab(LabConfig{Seed: 22, ResolverValidatesDNSSEC: true})
	if err != nil {
		t.Fatal(err)
	}
	z := dnsauth.NewZone(PoolDomain)
	z.Signed = true
	lab.Auth.AddZone(z)

	client, err := lab.NewClient(ntpclient.ProfileNTPd, -120*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if err := client.Start(); err != nil {
		t.Fatal(err)
	}
	lab.Clock.RunFor(20 * time.Minute)
	if off := client.ClockOffset(); off < -time.Second || off > time.Second {
		t.Errorf("client offset = %v with signed zone, want ≈0", off)
	}
}

// TestUnsignedZoneWithValidatingResolverStillVulnerable: validation alone
// does not help while the domain is unsigned — the paper's observation that
// "only about 1% of the domains are signed ... so even if the resolvers
// performed strict validation this would currently not help".
func TestUnsignedZoneWithValidatingResolverStillVulnerable(t *testing.T) {
	lab, err := NewLab(LabConfig{Seed: 23, ResolverValidatesDNSSEC: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := lab.PoisonResolver(86400); err != nil {
		t.Fatalf("poisoning should succeed against an unsigned zone: %v", err)
	}
	if !lab.CachePoisoned() {
		t.Fatal("cache not poisoned")
	}
}

// TestStaticServerListImmune is the paper's immediate recommendation: "not
// to use DNS for NTP and instead to use a list of static IP addresses". A
// client with no DNS dependence cannot be redirected.
func TestStaticServerListImmune(t *testing.T) {
	lab, err := NewLab(LabConfig{Seed: 24})
	if err != nil {
		t.Fatal(err)
	}
	if err := lab.PoisonResolver(86400); err != nil {
		t.Fatal(err)
	}
	// The "static list" client: an openntpd-profile client that already
	// holds associations (boot lookup happened before the poisoning, here
	// modelled by pointing its single lookup at a pre-poisoning snapshot).
	// Simplest faithful construction: boot it against the honest cache,
	// then poison, then starve — no run-time DNS means no redirection.
	lab2, err := NewLab(LabConfig{Seed: 25})
	if err != nil {
		t.Fatal(err)
	}
	client, err := lab2.NewClient(ntpclient.ProfileOpenNTPD, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := client.Start(); err != nil {
		t.Fatal(err)
	}
	lab2.Clock.RunFor(15 * time.Minute)
	if err := lab2.PoisonResolver(86400); err != nil {
		t.Fatal(err)
	}
	stop := lab2.FloodAllHonest(client.HostAddr())
	defer stop()
	lab2.Clock.RunFor(2 * time.Hour)
	if off := client.ClockOffset(); off < -time.Second || off > time.Second {
		t.Errorf("static-list client shifted: %v", off)
	}
}
