package core

import (
	"context"
	"errors"
	"fmt"

	"dnstime/internal/netem"
	"dnstime/internal/scenario"
)

// The netsweep scenario fans one attack across the whole netem profile
// grid in a single seeded run: every registered path profile (lan, wan,
// transcontinental, lossy-wifi, congested, plus the default lab link)
// hosts its own lab, and the per-profile outcomes land in metrics keyed
// by profile name ("shifted/lossy-wifi"). A campaign over netsweep
// therefore aggregates into a per-profile success-rate table — the
// paper's attacks re-evaluated against path conditions the testbed
// could not vary (DESIGN.md §8).
func init() {
	scenario.Register(scenario.Scenario{
		Name:      "netsweep",
		Title:     "Attack × network-profile sweep",
		PaperRef:  "beyond §IV–§VI",
		Impl:      "core.netsweepScenario",
		CLI:       "experiments campaigns -only netsweep",
		Params:    map[string]string{"attack": "boot", "profiles": "all", "topo": "uniform"},
		ParamKeys: []string{"attack", "client", "scenario", "N", "spoofed", "topo"},
		Order:     65,
		Run:       netsweepScenario,
	})
}

// netsweepScenario runs the selected attack (param attack=boot|runtime|
// chronos, default boot) once per netem profile at the given seed. An
// attack that fails for attack-intrinsic reasons on a degraded path —
// poisoning never lands, the client never synchronises honestly — counts
// as an unsuccessful run on that profile, not an error: "the attack does
// not survive this path" is the measurement.
//
// The topo param adds a topology axis: topo=<preset> reruns the profile
// grid under that role-based topology, each profile supplying the
// victim-side default while the preset pins the attacker's position
// (metric keys unchanged); topo=all sweeps every preset, keying metrics
// "shifted/<preset>/<profile>". Absent topo keeps the uniform grid and
// its historical metric keys byte-for-byte.
func netsweepScenario(_ context.Context, seed int64, cfg scenario.Config) (scenario.Result, error) {
	attack := cfg.Params.Str("attack", "boot")
	switch attack {
	case "boot", "runtime", "chronos":
	default:
		return scenario.Result{}, fmt.Errorf("core: unknown netsweep attack %q (want boot, runtime or chronos)", attack)
	}
	presets := []string{""}
	keyed := false
	switch topo := cfg.Params.Str("topo", ""); topo {
	case "":
	case "all":
		presets = netem.TopologyNames()
		keyed = true
	default:
		if _, err := netem.TopologyPreset(topo); err != nil {
			return scenario.Result{}, err
		}
		presets = []string{topo}
	}
	metrics := make(map[string]float64, 2*len(presets)*len(netem.ProfileNames()))
	allShifted := true
	for _, preset := range presets {
		for _, name := range netem.ProfileNames() {
			lab, err := sweepLab(seed, preset, name)
			if err != nil {
				return scenario.Result{}, err
			}
			shifted, extra, err := runSweepAttack(attack, lab, cfg.Params)
			if err != nil {
				return scenario.Result{}, fmt.Errorf("netsweep %s on %s: %w", attack, name, err)
			}
			key := name
			if keyed {
				key = preset + "/" + name
			}
			metrics["shifted/"+key] = boolMetric(shifted)
			if !shifted {
				allShifted = false
			}
			for k, v := range extra {
				metrics[k+"/"+key] = v
			}
		}
	}
	return scenario.Result{Success: scenario.Bool(allShifted), Metrics: metrics}, nil
}

// sweepLab builds one grid cell's lab config: the profile alone (empty
// preset — the uniform sweep), or a fresh topology preset whose default
// path is the profile (the topology axis).
func sweepLab(seed int64, preset, profile string) (LabConfig, error) {
	path, err := netem.Profile(profile)
	if err != nil {
		return LabConfig{}, err
	}
	if preset == "" {
		return LabConfig{Seed: seed, Path: path}, nil
	}
	topo, err := netem.TopologyPreset(preset)
	if err != nil {
		return LabConfig{}, err
	}
	topo.Default = path
	return LabConfig{Seed: seed, Topology: topo}, nil
}

// runSweepAttack executes one attack on one grid cell's lab and
// classifies the outcome: shifted, per-attack extra metrics, or a
// non-attack error.
func runSweepAttack(attack string, lab LabConfig, p scenario.Params) (bool, map[string]float64, error) {
	switch attack {
	case "runtime":
		prof, err := clientFromParams(p)
		if err != nil {
			return false, nil, err
		}
		rs := ScenarioP1
		if name := p.Str("scenario", "P1"); name == "P2" || name == "p2" {
			rs = ScenarioP2
		}
		res, err := RunRuntimeAttack(prof, rs, lab)
		if errors.Is(err, ErrNotSynced) {
			// The client never converged honestly on this path; the attack
			// precondition itself is unreachable.
			return false, map[string]float64{"synced": 0}, nil
		}
		if err != nil {
			return false, nil, err
		}
		extra := map[string]float64{"synced": 1}
		if res.Succeeded {
			extra["duration_s"] = res.Duration.Seconds()
		}
		return res.Succeeded, extra, nil
	case "chronos":
		n, err := p.Int("N", 5)
		if err != nil {
			return false, nil, err
		}
		spoofed, err := p.Int("spoofed", 89)
		if err != nil {
			return false, nil, err
		}
		if n < 0 || spoofed < 0 {
			return false, nil, fmt.Errorf("core: chronos params N=%d spoofed=%d must not be negative", n, spoofed)
		}
		res, err := RunChronosAttack(n, spoofed, lab)
		if err != nil {
			return false, nil, err
		}
		return res.Shifted, map[string]float64{"evil_in_pool": float64(res.EvilInPool)}, nil
	default: // boot
		prof, err := clientFromParams(p)
		if err != nil {
			return false, nil, err
		}
		res, err := RunBootTimeAttack(prof, lab)
		if errors.Is(err, ErrPoisoningFailed) {
			// Loss broke every planting/trigger round: the attack cannot
			// even poison the cache on this path.
			return false, map[string]float64{"poisoned": 0}, nil
		}
		if err != nil {
			return false, nil, err
		}
		extra := map[string]float64{"poisoned": 1}
		if res.Shifted {
			extra["tts_s"] = res.TimeToShift.Seconds()
		}
		return res.Shifted, extra, nil
	}
}

// boolMetric flattens a success flag into a 0/1 metric.
func boolMetric(v bool) float64 {
	if v {
		return 1
	}
	return 0
}
