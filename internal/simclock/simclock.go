// Package simclock provides a deterministic virtual clock with a
// discrete-event scheduler. Every component of the simulated internetwork
// (NTP clients, DNS resolvers, attackers) schedules work on a shared Clock,
// which executes callbacks in strict timestamp order. This makes multi-hour
// attack experiments run in milliseconds and makes every run bit-for-bit
// reproducible.
//
// The scheduler is single-threaded by design: callbacks run inline on the
// goroutine that drives the clock (Step, Run, RunFor, RunUntil) and must not
// block. Callbacks may schedule further events, including events at the
// current instant, which execute before time advances.
package simclock

import (
	"container/heap"
	"sync"
	"time"
)

// Clock is a virtual time source and event scheduler. The zero value is not
// usable; construct with New.
type Clock struct {
	mu     sync.Mutex
	now    time.Time
	events eventHeap
	seq    uint64
}

// New returns a Clock whose current time is start.
func New(start time.Time) *Clock {
	return &Clock{now: start}
}

// Now returns the current virtual time.
func (c *Clock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Len reports the number of pending (non-cancelled) events.
func (c *Clock) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for _, ev := range c.events {
		if !ev.cancelled {
			n++
		}
	}
	return n
}

// Timer is a handle to a scheduled event. Stop cancels it.
type Timer struct {
	clock *Clock
	ev    *event
}

// Stop cancels the timer. It reports whether the event was still pending
// (i.e. had not fired and had not already been stopped).
func (t *Timer) Stop() bool {
	if t == nil || t.ev == nil {
		return false
	}
	t.clock.mu.Lock()
	defer t.clock.mu.Unlock()
	if t.ev.cancelled || t.ev.fired {
		return false
	}
	t.ev.cancelled = true
	return true
}

// When returns the virtual time at which the timer fires.
func (t *Timer) When() time.Time { return t.ev.at }

// Schedule runs fn after delay d of virtual time. A non-positive delay
// schedules fn at the current instant; it still runs through the event loop,
// after any event currently executing returns.
func (c *Clock) Schedule(d time.Duration, fn func()) *Timer {
	if d < 0 {
		d = 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.scheduleLocked(c.now.Add(d), fn)
}

// ScheduleAt runs fn at virtual time t. Times in the past are clamped to the
// current instant.
func (c *Clock) ScheduleAt(t time.Time, fn func()) *Timer {
	c.mu.Lock()
	defer c.mu.Unlock()
	if t.Before(c.now) {
		t = c.now
	}
	return c.scheduleLocked(t, fn)
}

func (c *Clock) scheduleLocked(at time.Time, fn func()) *Timer {
	ev := &event{at: at, seq: c.seq, fn: fn}
	c.seq++
	heap.Push(&c.events, ev)
	return &Timer{clock: c, ev: ev}
}

// Ticker repeatedly schedules a callback at a fixed virtual interval until
// stopped.
type Ticker struct {
	clock    *Clock
	interval time.Duration
	fn       func()
	mu       sync.Mutex
	timer    *Timer
	stopped  bool
}

// Tick schedules fn to run every interval of virtual time, with the first
// run one interval from now. Stop the returned Ticker to cancel.
func (c *Clock) Tick(interval time.Duration, fn func()) *Ticker {
	t := &Ticker{clock: c, interval: interval, fn: fn}
	t.arm()
	return t
}

func (t *Ticker) arm() {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.stopped {
		return
	}
	t.timer = t.clock.Schedule(t.interval, func() {
		t.fn()
		t.arm()
	})
}

// Stop cancels the ticker; no further callbacks run.
func (t *Ticker) Stop() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.stopped = true
	if t.timer != nil {
		t.timer.Stop()
	}
}

// Step executes the earliest pending event, advancing the clock to its
// timestamp. It reports whether an event was executed.
func (c *Clock) Step() bool {
	for {
		c.mu.Lock()
		if c.events.Len() == 0 {
			c.mu.Unlock()
			return false
		}
		ev, ok := heap.Pop(&c.events).(*event)
		if !ok {
			c.mu.Unlock()
			return false
		}
		if ev.cancelled {
			c.mu.Unlock()
			continue
		}
		ev.fired = true
		c.now = ev.at
		c.mu.Unlock()
		ev.fn()
		return true
	}
}

// Run executes events until none remain. Use with care: self-rescheduling
// components (tickers, polling clients) never drain; prefer RunFor/RunUntil.
func (c *Clock) Run() {
	for c.Step() {
	}
}

// RunFor advances the clock by d, executing every event due in that window.
// The clock ends exactly at now+d even if no event lands there.
func (c *Clock) RunFor(d time.Duration) {
	c.RunUntil(c.Now().Add(d))
}

// RunUntil executes every event with timestamp ≤ deadline and then sets the
// clock to deadline.
func (c *Clock) RunUntil(deadline time.Time) {
	for {
		c.mu.Lock()
		if c.events.Len() == 0 || c.events[0].at.After(deadline) {
			if c.now.Before(deadline) {
				c.now = deadline
			}
			c.mu.Unlock()
			return
		}
		c.mu.Unlock()
		c.Step()
	}
}

// RunWhile steps the clock while cond returns true and events remain. It
// reports whether cond is still true when it returns (i.e. the event queue
// drained first).
func (c *Clock) RunWhile(cond func() bool) bool {
	for cond() {
		if !c.Step() {
			return true
		}
	}
	return false
}

type event struct {
	at        time.Time
	seq       uint64
	fn        func()
	cancelled bool
	fired     bool
}

// eventHeap orders events by (timestamp, insertion sequence), which gives
// deterministic FIFO behaviour for simultaneous events.
type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].at.Equal(h[j].at) {
		return h[i].seq < h[j].seq
	}
	return h[i].at.Before(h[j].at)
}

func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }

func (h *eventHeap) Push(x any) {
	ev, ok := x.(*event)
	if !ok {
		return
	}
	*h = append(*h, ev)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}
