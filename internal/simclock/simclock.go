// Package simclock provides a deterministic virtual clock with a
// discrete-event scheduler. Every component of the simulated internetwork
// (NTP clients, DNS resolvers, attackers) schedules work on a shared Clock,
// which executes callbacks in strict timestamp order. This makes multi-hour
// attack experiments run in milliseconds and makes every run bit-for-bit
// reproducible.
//
// The scheduler is single-threaded by design: callbacks run inline on the
// goroutine that drives the clock (Step, Run, RunFor, RunUntil) and must not
// block. Callbacks may schedule further events, including events at the
// current instant, which execute before time advances. A Clock is NOT safe
// for concurrent use — every simulation owns its clock from exactly one
// goroutine, so the scheduler carries no locks on its hot path.
//
// The event queue is allocation-lean: fired and cancelled events return to
// a per-clock free list, the heap orders events by pre-computed integer
// nanosecond keys, and the After/AfterArg entry points schedule without
// allocating a Timer handle — the campaign engine's packet-delivery hot
// path schedules millions of events per second through them.
package simclock

import (
	"time"
)

// Clock is a virtual time source and event scheduler. The zero value is not
// usable; construct with New.
type Clock struct {
	now    time.Time
	nowN   int64 // now.UnixNano(), the heap ordering key
	events []heapNode
	seq    uint64
	arena  []event  // every event slot this clock has ever allocated
	free   []int32  // recycled arena slots (fired or cancelled events)
	onFire FireHook // observability hook; nil (the default) costs one branch
}

// FireHook observes every event the clock executes, called from Step with
// the event's virtual timestamp and insertion sequence number immediately
// before the callback runs. Because execution order is the strict
// (timestamp, sequence) total order, the hook sees a deterministic stream
// for a deterministic simulation. The hook must not mutate the clock.
type FireHook func(at time.Time, seq uint64)

// SetFireHook installs (or with nil removes) the clock's fire hook.
// Reset clears it, like every other piece of run state.
func (c *Clock) SetFireHook(h FireHook) { c.onFire = h }

// New returns a Clock whose current time is start.
func New(start time.Time) *Clock {
	return &Clock{now: start, nowN: start.UnixNano()}
}

// Reset drops every pending event and rewinds the clock to start, keeping
// the allocated event-queue capacity. It is the lab pool's hard-reset hook:
// a reset clock is indistinguishable from New(start) to every scheduler
// client, while reusing the heap and free-list storage warmed up by the
// previous run.
func (c *Clock) Reset(start time.Time) {
	for _, n := range c.events {
		c.recycleEvent(n.idx)
	}
	c.events = c.events[:0]
	c.seq = 0
	c.now = start
	c.nowN = start.UnixNano()
	c.onFire = nil
}

// Now returns the current virtual time.
func (c *Clock) Now() time.Time { return c.now }

// Len reports the number of pending (non-cancelled) events.
func (c *Clock) Len() int {
	n := 0
	for _, node := range c.events {
		if !c.arena[node.idx].cancelled {
			n++
		}
	}
	return n
}

// Timer is a handle to a scheduled event. Stop cancels it. The handle
// addresses its event by arena slot, not pointer: the clock's event arena
// may move as it grows, and slot indices stay valid across both growth and
// recycling (the generation counter catches reuse).
type Timer struct {
	clock *Clock
	idx   int32
	gen   uint64
	at    time.Time
}

// Stop cancels the timer. It reports whether the event was still pending
// (i.e. had not fired and had not already been stopped).
func (t *Timer) Stop() bool {
	if t == nil || t.clock == nil {
		return false
	}
	ev := &t.clock.arena[t.idx]
	if ev.gen != t.gen || ev.cancelled || ev.fired {
		return false
	}
	ev.cancelled = true
	return true
}

// When returns the virtual time at which the timer fires.
func (t *Timer) When() time.Time { return t.at }

// Schedule runs fn after delay d of virtual time. A non-positive delay
// schedules fn at the current instant; it still runs through the event loop,
// after any event currently executing returns. Prefer After when the caller
// never stops the event: it schedules without allocating a Timer.
func (c *Clock) Schedule(d time.Duration, fn func()) *Timer {
	idx := c.scheduleEvent(d, fn, nil, nil)
	ev := &c.arena[idx]
	return &Timer{clock: c, idx: idx, gen: ev.gen, at: ev.at}
}

// ScheduleInto arms the caller-owned Timer t to run fn after delay d,
// overwriting whatever t previously held (the caller stops any prior
// pending arm itself). Pooled objects embed a Timer value and re-arm
// through here without allocating a handle per schedule.
func (c *Clock) ScheduleInto(t *Timer, d time.Duration, fn func()) {
	idx := c.scheduleEvent(d, fn, nil, nil)
	ev := &c.arena[idx]
	*t = Timer{clock: c, idx: idx, gen: ev.gen, at: ev.at}
}

// ScheduleAt runs fn at virtual time t. Times in the past are clamped to the
// current instant.
func (c *Clock) ScheduleAt(t time.Time, fn func()) *Timer {
	d := t.Sub(c.now)
	idx := c.scheduleEvent(d, fn, nil, nil)
	ev := &c.arena[idx]
	return &Timer{clock: c, idx: idx, gen: ev.gen, at: ev.at}
}

// After runs fn after delay d of virtual time, like Schedule, but returns no
// Timer handle: fire-and-forget events schedule with zero allocations once
// the clock's event free list is warm.
func (c *Clock) After(d time.Duration, fn func()) {
	c.scheduleEvent(d, fn, nil, nil)
}

// AfterArg runs fn(arg) after delay d of virtual time. Passing the state as
// an argument instead of closing over it lets hot paths (packet delivery)
// schedule with a static fn and a pooled arg — no closure allocation.
func (c *Clock) AfterArg(d time.Duration, fn func(any), arg any) {
	c.scheduleEvent(d, nil, fn, arg)
}

// scheduleEvent enqueues an event d from now in a recycled arena slot (or a
// freshly grown one) and returns its index. Negative delays clamp to the
// current instant.
func (c *Clock) scheduleEvent(d time.Duration, fn func(), argFn func(any), arg any) int32 {
	if d < 0 {
		d = 0
	}
	var idx int32
	if n := len(c.free); n > 0 {
		idx = c.free[n-1]
		c.free = c.free[:n-1]
	} else {
		c.arena = append(c.arena, event{})
		idx = int32(len(c.arena) - 1)
	}
	ev := &c.arena[idx]
	ev.at = c.now.Add(d)
	ev.atN = c.nowN + int64(d)
	ev.seq = c.seq
	ev.fn = fn
	ev.argFn = argFn
	ev.arg = arg
	ev.cancelled = false
	ev.fired = false
	c.seq++
	c.heapPush(ev.atN, ev.seq, idx)
	return idx
}

// recycleEvent returns a popped event slot to the free list, invalidating
// any outstanding Timer handles via the generation counter.
func (c *Clock) recycleEvent(idx int32) {
	ev := &c.arena[idx]
	ev.gen++
	ev.fn = nil
	ev.argFn = nil
	ev.arg = nil
	c.free = append(c.free, idx)
}

// Ticker repeatedly schedules a callback at a fixed virtual interval until
// stopped. Like the Clock that owns it, a Ticker is confined to the
// simulation's goroutine, so re-arming carries no lock.
type Ticker struct {
	clock    *Clock
	interval time.Duration
	fn       func()
	run      func()
	idx      int32
	gen      uint64
	armed    bool
	stopped  bool
}

// Tick schedules fn to run every interval of virtual time, with the first
// run one interval from now. Stop the returned Ticker to cancel. Re-arming
// reuses one closure and the clock's event free list, so a long-lived
// ticker allocates nothing per tick.
func (c *Clock) Tick(interval time.Duration, fn func()) *Ticker {
	t := &Ticker{clock: c, interval: interval, fn: fn}
	t.run = func() {
		t.fn()
		t.arm()
	}
	t.arm()
	return t
}

func (t *Ticker) arm() {
	if t.stopped {
		return
	}
	idx := t.clock.scheduleEvent(t.interval, t.run, nil, nil)
	t.idx, t.gen, t.armed = idx, t.clock.arena[idx].gen, true
}

// Stop cancels the ticker; no further callbacks run.
func (t *Ticker) Stop() {
	t.stopped = true
	if !t.armed {
		return
	}
	ev := &t.clock.arena[t.idx]
	if ev.gen == t.gen && !ev.cancelled && !ev.fired {
		ev.cancelled = true
	}
}

// Step executes the earliest pending event, advancing the clock to its
// timestamp. It reports whether an event was executed.
func (c *Clock) Step() bool {
	for {
		if len(c.events) == 0 {
			return false
		}
		idx := c.heapPopMin()
		ev := &c.arena[idx]
		if ev.cancelled {
			c.recycleEvent(idx)
			continue
		}
		ev.fired = true
		c.now = ev.at
		c.nowN = ev.atN
		fn, argFn, arg := ev.fn, ev.argFn, ev.arg
		if c.onFire != nil {
			c.onFire(ev.at, ev.seq)
		}
		c.recycleEvent(idx)
		if fn != nil {
			fn()
		} else if argFn != nil {
			argFn(arg)
		}
		return true
	}
}

// Run executes events until none remain. Use with care: self-rescheduling
// components (tickers, polling clients) never drain; prefer RunFor/RunUntil.
func (c *Clock) Run() {
	for c.Step() {
	}
}

// RunFor advances the clock by d, executing every event due in that window.
// The clock ends exactly at now+d even if no event lands there.
func (c *Clock) RunFor(d time.Duration) {
	c.RunUntil(c.Now().Add(d))
}

// RunUntil executes every event with timestamp ≤ deadline and then sets the
// clock to deadline.
func (c *Clock) RunUntil(deadline time.Time) {
	deadlineN := deadline.UnixNano()
	for {
		if len(c.events) == 0 || c.events[0].atN > deadlineN {
			if c.now.Before(deadline) {
				c.now = deadline
				c.nowN = deadlineN
			}
			return
		}
		c.Step()
	}
}

// RunWhile steps the clock while cond returns true and events remain. It
// reports whether cond is still true when it returns (i.e. the event queue
// drained first).
func (c *Clock) RunWhile(cond func() bool) bool {
	for cond() {
		if !c.Step() {
			return true
		}
	}
	return false
}

type event struct {
	at        time.Time
	atN       int64 // at.UnixNano(), the heap comparison key
	seq       uint64
	gen       uint64 // bumped on recycle; stale Timer handles no-op
	fn        func()
	argFn     func(any)
	arg       any
	cancelled bool
	fired     bool
}

// heapNode is one entry of the clock's priority queue. The ordering key
// (timestamp nanoseconds, insertion sequence) is stored inline so heap
// comparisons never dereference the event — the queue regularly holds tens
// of thousands of pending events during flood scenarios, and pointer-chasing
// comparisons dominated the campaign CPU profile. The event itself is
// addressed by arena slot: a pointer-free node means sift moves in push/pop
// skip the GC write barrier and the garbage collector never scans the heap
// array at all.
type heapNode struct {
	atN int64
	seq uint64
	idx int32
}

// less orders nodes by (timestamp, insertion sequence): deterministic FIFO
// behaviour for simultaneous events. (atN, seq) is a strict total order, so
// the popped minimum — and therefore execution order — is unique regardless
// of the heap's internal arrangement.
func (a heapNode) less(b heapNode) bool {
	if a.atN != b.atN {
		return a.atN < b.atN
	}
	return a.seq < b.seq
}

// heapPush inserts an event into the 4-ary min-heap. A 4-ary layout halves
// the tree depth of a binary heap and keeps sibling comparisons within one
// or two cache lines of the node array.
func (c *Clock) heapPush(atN int64, seq uint64, idx int32) {
	n := heapNode{atN: atN, seq: seq, idx: idx}
	h := append(c.events, n)
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) / 4
		if h[p].less(n) {
			break
		}
		h[i] = h[p]
		i = p
	}
	h[i] = n
	c.events = h
}

// heapPopMin removes and returns the arena slot of the earliest event. The
// caller must have checked len(c.events) > 0.
func (c *Clock) heapPopMin() int32 {
	h := c.events
	ev := h[0].idx
	n := len(h) - 1
	last := h[n]
	h = h[:n]
	c.events = h
	if n == 0 {
		return ev
	}
	i := 0
	for {
		first := 4*i + 1
		if first >= n {
			break
		}
		m := first
		end := first + 4
		if end > n {
			end = n
		}
		for j := first + 1; j < end; j++ {
			if h[j].less(h[m]) {
				m = j
			}
		}
		if !h[m].less(last) {
			break
		}
		h[i] = h[m]
		i = m
	}
	h[i] = last
	return ev
}
