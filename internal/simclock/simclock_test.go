package simclock

import (
	"testing"
	"testing/quick"
	"time"
)

var t0 = time.Date(2020, 1, 1, 0, 0, 0, 0, time.UTC)

func TestNowStartsAtConstructionTime(t *testing.T) {
	c := New(t0)
	if !c.Now().Equal(t0) {
		t.Fatalf("Now() = %v, want %v", c.Now(), t0)
	}
}

func TestScheduleAdvancesClock(t *testing.T) {
	c := New(t0)
	var fired time.Time
	c.Schedule(5*time.Second, func() { fired = c.Now() })
	if !c.Step() {
		t.Fatal("Step returned false with a pending event")
	}
	want := t0.Add(5 * time.Second)
	if !fired.Equal(want) {
		t.Errorf("event fired at %v, want %v", fired, want)
	}
	if !c.Now().Equal(want) {
		t.Errorf("Now() = %v, want %v", c.Now(), want)
	}
}

func TestEventsExecuteInTimestampOrder(t *testing.T) {
	c := New(t0)
	var order []int
	c.Schedule(3*time.Second, func() { order = append(order, 3) })
	c.Schedule(1*time.Second, func() { order = append(order, 1) })
	c.Schedule(2*time.Second, func() { order = append(order, 2) })
	c.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestSimultaneousEventsAreFIFO(t *testing.T) {
	c := New(t0)
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		c.Schedule(time.Second, func() { order = append(order, i) })
	}
	c.Run()
	for i := 0; i < 10; i++ {
		if order[i] != i {
			t.Fatalf("order = %v, want ascending", order)
		}
	}
}

func TestTimerStopPreventsExecution(t *testing.T) {
	c := New(t0)
	fired := false
	tm := c.Schedule(time.Second, func() { fired = true })
	if !tm.Stop() {
		t.Fatal("Stop returned false for a pending timer")
	}
	if tm.Stop() {
		t.Fatal("second Stop returned true")
	}
	c.Run()
	if fired {
		t.Error("cancelled event fired")
	}
}

func TestStopAfterFireReturnsFalse(t *testing.T) {
	c := New(t0)
	tm := c.Schedule(time.Second, func() {})
	c.Run()
	if tm.Stop() {
		t.Error("Stop returned true after the event fired")
	}
}

func TestNegativeDelayClampedToNow(t *testing.T) {
	c := New(t0)
	var at time.Time
	c.Schedule(-time.Hour, func() { at = c.Now() })
	c.Run()
	if !at.Equal(t0) {
		t.Errorf("event fired at %v, want %v", at, t0)
	}
}

func TestScheduleAtPastClamped(t *testing.T) {
	c := New(t0)
	c.RunFor(10 * time.Second)
	var at time.Time
	c.ScheduleAt(t0, func() { at = c.Now() })
	c.Run()
	want := t0.Add(10 * time.Second)
	if !at.Equal(want) {
		t.Errorf("event fired at %v, want %v", at, want)
	}
}

func TestRunForEndsExactlyAtDeadline(t *testing.T) {
	c := New(t0)
	c.Schedule(time.Second, func() {})
	c.RunFor(10 * time.Second)
	want := t0.Add(10 * time.Second)
	if !c.Now().Equal(want) {
		t.Errorf("Now() = %v, want %v", c.Now(), want)
	}
}

func TestRunUntilExcludesLaterEvents(t *testing.T) {
	c := New(t0)
	early, late := false, false
	c.Schedule(time.Second, func() { early = true })
	c.Schedule(time.Minute, func() { late = true })
	c.RunUntil(t0.Add(30 * time.Second))
	if !early {
		t.Error("event within window did not fire")
	}
	if late {
		t.Error("event after deadline fired")
	}
	if c.Len() != 1 {
		t.Errorf("Len() = %d, want 1", c.Len())
	}
}

func TestEventAtExactDeadlineFires(t *testing.T) {
	c := New(t0)
	fired := false
	c.Schedule(time.Minute, func() { fired = true })
	c.RunUntil(t0.Add(time.Minute))
	if !fired {
		t.Error("event at exact deadline did not fire")
	}
}

func TestNestedSchedulingSameInstant(t *testing.T) {
	c := New(t0)
	var order []string
	c.Schedule(time.Second, func() {
		order = append(order, "outer")
		c.Schedule(0, func() { order = append(order, "inner") })
	})
	c.Schedule(2*time.Second, func() { order = append(order, "later") })
	c.Run()
	want := []string{"outer", "inner", "later"}
	for i := range want {
		if i >= len(order) || order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestTickerFiresAtInterval(t *testing.T) {
	c := New(t0)
	var fires []time.Time
	tk := c.Tick(time.Minute, func() { fires = append(fires, c.Now()) })
	c.RunFor(5 * time.Minute)
	tk.Stop()
	c.RunFor(5 * time.Minute)
	if len(fires) != 5 {
		t.Fatalf("ticker fired %d times, want 5", len(fires))
	}
	for i, ft := range fires {
		want := t0.Add(time.Duration(i+1) * time.Minute)
		if !ft.Equal(want) {
			t.Errorf("fire %d at %v, want %v", i, ft, want)
		}
	}
}

func TestTickerStopIsIdempotent(t *testing.T) {
	c := New(t0)
	tk := c.Tick(time.Second, func() {})
	tk.Stop()
	tk.Stop()
	c.RunFor(10 * time.Second)
	if got := c.Len(); got != 0 {
		t.Errorf("Len() = %d after ticker stop, want 0", got)
	}
}

func TestRunWhile(t *testing.T) {
	c := New(t0)
	n := 0
	for i := 0; i < 10; i++ {
		c.Schedule(time.Duration(i)*time.Second, func() { n++ })
	}
	drained := c.RunWhile(func() bool { return n < 4 })
	if drained {
		t.Error("RunWhile reported drained queue while events remain")
	}
	if n != 4 {
		t.Errorf("n = %d, want 4", n)
	}
}

func TestRunWhileDrains(t *testing.T) {
	c := New(t0)
	n := 0
	c.Schedule(time.Second, func() { n++ })
	drained := c.RunWhile(func() bool { return true })
	if !drained {
		t.Error("RunWhile did not report drained queue")
	}
	if n != 1 {
		t.Errorf("n = %d, want 1", n)
	}
}

func TestLenCountsOnlyPending(t *testing.T) {
	c := New(t0)
	c.Schedule(time.Second, func() {})
	tm := c.Schedule(2*time.Second, func() {})
	tm.Stop()
	if got := c.Len(); got != 1 {
		t.Errorf("Len() = %d, want 1", got)
	}
}

// Property: for any set of non-negative delays, events fire in sorted order
// and the clock never moves backwards.
func TestPropertyMonotonicExecution(t *testing.T) {
	f := func(delays []uint16) bool {
		c := New(t0)
		var fired []time.Time
		for _, d := range delays {
			c.Schedule(time.Duration(d)*time.Millisecond, func() {
				fired = append(fired, c.Now())
			})
		}
		c.Run()
		if len(fired) != len(delays) {
			return false
		}
		for i := 1; i < len(fired); i++ {
			if fired[i].Before(fired[i-1]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestWhenReportsFireTime(t *testing.T) {
	c := New(t0)
	tm := c.Schedule(42*time.Second, func() {})
	if want := t0.Add(42 * time.Second); !tm.When().Equal(want) {
		t.Errorf("When() = %v, want %v", tm.When(), want)
	}
}
