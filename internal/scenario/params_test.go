package scenario

import (
	"testing"
	"time"
)

func TestParseParams(t *testing.T) {
	p, err := ParseParams([]string{"client=chrony", "offset=-300s", "empty="})
	if err != nil {
		t.Fatal(err)
	}
	if p["client"] != "chrony" || p["offset"] != "-300s" || p["empty"] != "" {
		t.Errorf("parsed params = %v", p)
	}
	if got := p.String(); got != "client=chrony empty= offset=-300s" {
		t.Errorf("String() = %q, want key-sorted pairs", got)
	}
	if p, err := ParseParams(nil); err != nil || p != nil {
		t.Errorf("ParseParams(nil) = %v, %v", p, err)
	}
	for _, bad := range [][]string{{"novalue"}, {"=x"}, {"a=1", "a=2"}} {
		if _, err := ParseParams(bad); err == nil {
			t.Errorf("ParseParams(%v) accepted", bad)
		}
	}
}

func TestParamsTypedGetters(t *testing.T) {
	p := Params{"n": "7", "on": "true", "d": "-300s", "s": "chrony"}
	if v := p.Str("s", "x"); v != "chrony" {
		t.Errorf("Str = %q", v)
	}
	if v := p.Str("missing", "x"); v != "x" {
		t.Errorf("Str default = %q", v)
	}
	if n, err := p.Int("n", 1); err != nil || n != 7 {
		t.Errorf("Int = %d, %v", n, err)
	}
	if n, err := p.Int("missing", 42); err != nil || n != 42 {
		t.Errorf("Int default = %d, %v", n, err)
	}
	if b, err := p.Bool("on", false); err != nil || !b {
		t.Errorf("Bool = %t, %v", b, err)
	}
	if d, err := p.Duration("d", 0); err != nil || d != -300*time.Second {
		t.Errorf("Duration = %v, %v", d, err)
	}
	if d, err := p.Duration("missing", time.Minute); err != nil || d != time.Minute {
		t.Errorf("Duration default = %v, %v", d, err)
	}
	bad := Params{"n": "x", "on": "maybe", "d": "300"}
	if _, err := bad.Int("n", 0); err == nil {
		t.Error("bad int accepted")
	}
	if _, err := bad.Bool("on", false); err == nil {
		t.Error("bad bool accepted")
	}
	if _, err := bad.Duration("d", 0); err == nil {
		t.Error("unitless duration accepted")
	}
}

// TestFloatRejectsNonFinite pins the Params.Float finiteness guard:
// strconv.ParseFloat happily parses NaN and ±Inf, but a NaN loss or rtt
// would sail through range checks (NaN compares false both ways) and
// poison netem math, so Float must reject every non-finite spelling.
func TestFloatRejectsNonFinite(t *testing.T) {
	for _, bad := range []string{"NaN", "nan", "+Inf", "-Inf", "inf", "Infinity", "1e999"} {
		p := Params{"loss": bad}
		if v, err := p.Float("loss", 0); err == nil {
			t.Errorf("Float accepted %q as %v; want a non-finite error", bad, v)
		}
	}
	p := Params{"loss": "0.25"}
	if v, err := p.Float("loss", 0); err != nil || v != 0.25 {
		t.Errorf("Float(0.25) = %v, %v", v, err)
	}
	if v, err := p.Float("missing", 1.5); err != nil || v != 1.5 {
		t.Errorf("Float default = %v, %v", v, err)
	}
	if _, err := (Params{"loss": "x"}).Float("loss", 0); err == nil {
		t.Error("non-numeric float accepted")
	}
}

func TestAcceptsParams(t *testing.T) {
	s := Scenario{Name: "x", ParamKeys: []string{"client", "offset"}}
	if err := s.AcceptsParams(nil); err != nil {
		t.Errorf("nil params rejected: %v", err)
	}
	if err := s.AcceptsParams(Params{"client": "ntpd", "offset": "-1s"}); err != nil {
		t.Errorf("declared params rejected: %v", err)
	}
	if err := s.AcceptsParams(Params{"clinet": "ntpd"}); err == nil {
		t.Error("mistyped key accepted")
	}
	none := Scenario{Name: "y"}
	if err := none.AcceptsParams(Params{"client": "ntpd"}); err == nil {
		t.Error("param accepted by scenario with no ParamKeys")
	}
}
