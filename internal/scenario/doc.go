// Package scenario is the experiment registry: the single catalogue of
// every reproducible experiment in this repository (the boot-time,
// run-time and Chronos attacks, Tables I–V, Figures 5–7 and the §VII
// scans), each exposed behind one uniform contract.
//
// An experiment package registers itself at init time:
//
//	scenario.Register(scenario.Scenario{
//		Name:      "boot",
//		Title:     "Boot-time attack",
//		PaperRef:  "§IV-A, Fig. 2",
//		Impl:      "core.RunBootTimeAttack",
//		CLI:       "ntpattack -mode boot",
//		Params:    map[string]string{"client": "ntpd"},
//		ParamKeys: []string{"client", "offset", ...},
//		Order:     10,
//		Run:       runBootScenario,
//	})
//
// Run takes a context, a seed and a Config and returns a Result: an
// optional binary outcome plus a flat map of named float64 metrics.
// Because every scenario speaks this one shape, generic machinery can
// operate on all of them — the campaign Engine (internal/campaign) fans
// any registered scenario out across many seeds on a worker pool, streams
// per-seed Results and aggregates the metrics with confidence intervals,
// and MarkdownIndex renders the DESIGN.md §4 experiment index so the
// documentation cannot drift from the code.
//
// Parameterisable scenarios declare the Config.Params keys they accept in
// ParamKeys (`experiments campaigns -param key=value`); the engine rejects
// unknown keys before any run starts. The attack scenarios accept e.g.
// client=<profile>, offset=<duration>, and the Chronos knobs N/spoofed,
// so every client-profile or target-shift variant is an ordinary
// parameterised campaign rather than a separate entry point.
//
// The contract every Run implementation must keep (DESIGN.md §6–§7):
//
//   - Deterministic: the same (seed, cfg) — including cfg.Params — must
//     produce the identical Result. All randomness derives from the seed;
//     no wall-clock time, no global state.
//   - Self-contained: a run builds whatever lab or population it needs and
//     shares nothing mutable with concurrent runs of itself or any other
//     scenario, so the campaign engine may execute runs in parallel.
//   - JSON-stable: metrics are plain float64s under fixed names, so a
//     marshalled Result (and any aggregate folded from Results in seed
//     order) is byte-identical regardless of scheduling.
//   - Cancellation-aware (optional): ctx is advisory. A run may return
//     ctx.Err() when cancelled mid-flight; the engine drops such runs
//     from aggregates and checkpoints so a cancelled campaign's partial
//     output is a strict prefix-set of the uninterrupted one.
package scenario
