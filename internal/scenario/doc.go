// Package scenario is the experiment registry: the single catalogue of
// every reproducible experiment in this repository (the boot-time,
// run-time and Chronos attacks, Tables I–V, Figures 5–7 and the §VII
// scans), each exposed behind one uniform contract.
//
// An experiment package registers itself at init time:
//
//	scenario.Register(scenario.Scenario{
//		Name:     "boot",
//		Title:    "Boot-time attack",
//		PaperRef: "§IV-A, Fig. 2",
//		Impl:     "core.RunBootTimeAttack",
//		CLI:      "ntpattack -mode boot",
//		Params:   map[string]string{"client": "ntpd"},
//		Order:    10,
//		Run:      runBootScenario,
//	})
//
// Run takes a seed and a Config and returns a Result: an optional binary
// outcome plus a flat map of named float64 metrics. Because every
// scenario speaks this one shape, generic machinery can operate on all of
// them — internal/campaign fans any registered scenario out across many
// seeds on a worker pool and aggregates the metrics with confidence
// intervals, and MarkdownIndex renders the DESIGN.md §4 experiment index
// so the documentation cannot drift from the code.
//
// The contract every Run implementation must keep (DESIGN.md §6):
//
//   - Deterministic: the same (seed, cfg) must produce the identical
//     Result. All randomness derives from the seed; no wall-clock time, no
//     global state.
//   - Self-contained: a run builds whatever lab or population it needs and
//     shares nothing mutable with concurrent runs of itself or any other
//     scenario, so the campaign engine may execute runs in parallel.
//   - JSON-stable: metrics are plain float64s under fixed names, so a
//     marshalled Result (and any aggregate folded from Results in seed
//     order) is byte-identical regardless of scheduling.
package scenario
