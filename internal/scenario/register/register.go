// Package register pulls in every scenario-providing package for its
// registration side effect. Import it (blank) wherever the full scenario
// catalogue must be populated — the campaign engine does, so anything
// built on dnstime/internal/campaign or the dnstime facade sees all
// built-in scenarios without further imports.
package register

import (
	// Each of these packages registers its experiments with
	// dnstime/internal/scenario in an init function. internal/core pulls
	// in internal/chronos (and its chronosbound registration) itself.
	_ "dnstime/internal/analysis"
	_ "dnstime/internal/core"
	_ "dnstime/internal/measure"
)
