package scenario

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Params parameterises a scenario variant: free-form "key=value" pairs a
// caller passes through Config.Params to override a parameterisable
// scenario's defaults (client profile, target shift, population knobs).
// Which keys a scenario accepts is declared by Scenario.ParamKeys; the
// campaign engine rejects unknown keys before any run starts, so a typo
// can never be silently ignored.
type Params map[string]string

// ParseParams parses "key=value" pairs (as collected from repeated CLI
// -param flags) into a Params map. Keys must be non-empty and unique.
func ParseParams(pairs []string) (Params, error) {
	if len(pairs) == 0 {
		return nil, nil
	}
	p := make(Params, len(pairs))
	for _, pair := range pairs {
		k, v, ok := strings.Cut(pair, "=")
		k = strings.TrimSpace(k)
		if !ok || k == "" {
			return nil, fmt.Errorf("scenario: bad param %q (want key=value)", pair)
		}
		if _, dup := p[k]; dup {
			return nil, fmt.Errorf("scenario: duplicate param %q", k)
		}
		p[k] = v
	}
	return p, nil
}

// String renders the params as space-separated "k=v" pairs in key order
// ("" when empty), the inverse of ParseParams up to ordering.
func (p Params) String() string {
	keys := make([]string, 0, len(p))
	for k := range p {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	pairs := make([]string, len(keys))
	for i, k := range keys {
		pairs[i] = k + "=" + p[k]
	}
	return strings.Join(pairs, " ")
}

// Str returns the parameter under key, or def when absent.
func (p Params) Str(key, def string) string {
	if v, ok := p[key]; ok {
		return v
	}
	return def
}

// Int returns the integer parameter under key, or def when absent.
func (p Params) Int(key string, def int) (int, error) {
	v, ok := p[key]
	if !ok {
		return def, nil
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		return 0, fmt.Errorf("scenario: param %s=%q is not an integer", key, v)
	}
	return n, nil
}

// Float returns the float parameter under key, or def when absent.
// Non-finite inputs (NaN, +Inf, -Inf) are rejected: strconv.ParseFloat
// accepts them, but every Float param is physical (a loss fraction, an
// RTT scale, a tolerance) and a NaN would poison any arithmetic —
// including range checks, which NaN passes by comparing false both ways.
func (p Params) Float(key string, def float64) (float64, error) {
	v, ok := p[key]
	if !ok {
		return def, nil
	}
	f, err := strconv.ParseFloat(v, 64)
	if err != nil {
		return 0, fmt.Errorf("scenario: param %s=%q is not a number", key, v)
	}
	if math.IsNaN(f) || math.IsInf(f, 0) {
		return 0, fmt.Errorf("scenario: param %s=%q is not a finite number", key, v)
	}
	return f, nil
}

// Bool returns the boolean parameter under key, or def when absent.
func (p Params) Bool(key string, def bool) (bool, error) {
	v, ok := p[key]
	if !ok {
		return def, nil
	}
	b, err := strconv.ParseBool(v)
	if err != nil {
		return false, fmt.Errorf("scenario: param %s=%q is not a boolean", key, v)
	}
	return b, nil
}

// Duration returns the duration parameter under key (Go syntax, e.g.
// "-300s" or "5m"), or def when absent.
func (p Params) Duration(key string, def time.Duration) (time.Duration, error) {
	v, ok := p[key]
	if !ok {
		return def, nil
	}
	d, err := time.ParseDuration(v)
	if err != nil {
		return 0, fmt.Errorf("scenario: param %s=%q is not a duration", key, v)
	}
	return d, nil
}
