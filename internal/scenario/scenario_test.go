package scenario

import (
	"context"
	"encoding/json"
	"strings"
	"testing"
)

// fake registers a minimal scenario and returns it.
func fake(t *testing.T, name string, order int) Scenario {
	t.Helper()
	s := Scenario{
		Name:     name,
		Title:    "Fake " + name,
		PaperRef: "§0",
		Impl:     "test." + name,
		CLI:      "experiments campaigns -only " + name,
		Params:   map[string]string{"b": "2", "a": "1"},
		Order:    order,
		Run: func(_ context.Context, seed int64, cfg Config) (Result, error) {
			return Result{
				Success: Bool(true),
				Metrics: map[string]float64{"seed_echo": float64(seed)},
			}, nil
		},
	}
	Register(s)
	return s
}

func TestRegisterAndRun(t *testing.T) {
	fake(t, "t-alpha", 2)
	fake(t, "t-beta", 1)

	if _, ok := Lookup("t-alpha"); !ok {
		t.Fatal("registered scenario not found")
	}
	res, err := Run(context.Background(), "t-alpha", 7, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Seed != 7 {
		t.Errorf("Seed = %d, want 7 (Run must stamp the seed)", res.Seed)
	}
	if res.Success == nil || !*res.Success {
		t.Errorf("Success = %v, want true", res.Success)
	}
	if res.Metrics["seed_echo"] != 7 {
		t.Errorf("metrics = %v", res.Metrics)
	}
}

func TestRunUnknown(t *testing.T) {
	if _, err := Run(context.Background(), "no-such-scenario", 1, Config{}); err == nil {
		t.Error("unknown scenario accepted")
	}
}

// TestRunRejectsUnknownParams: params not declared in ParamKeys must fail
// before the run starts, for scenarios with and without any param surface.
func TestRunRejectsUnknownParams(t *testing.T) {
	fake(t, "t-no-params", 70)
	if _, err := Run(context.Background(), "t-no-params", 1, Config{Params: Params{"client": "chrony"}}); err == nil {
		t.Error("param accepted by a scenario with no ParamKeys")
	}
	s := fake(t, "t-some-params", 71)
	s.Name = "t-some-params-2"
	s.ParamKeys = []string{"knob"}
	Register(s)
	if _, err := Run(context.Background(), "t-some-params-2", 1, Config{Params: Params{"knbo": "x"}}); err == nil {
		t.Error("mistyped param accepted")
	}
	if _, err := Run(context.Background(), "t-some-params-2", 1, Config{Params: Params{"knob": "x"}}); err != nil {
		t.Errorf("declared param rejected: %v", err)
	}
}

func TestAllSortedByOrder(t *testing.T) {
	fake(t, "t-zz-first", -10)
	all := All()
	if len(all) < 3 {
		t.Fatalf("All() = %d scenarios, want the fakes registered by this test file", len(all))
	}
	for i := 1; i < len(all); i++ {
		a, b := all[i-1], all[i]
		if a.Order > b.Order || (a.Order == b.Order && a.Name > b.Name) {
			t.Errorf("All() out of order: %q (order %d) before %q (order %d)",
				a.Name, a.Order, b.Name, b.Order)
		}
	}
	if all[0].Name != "t-zz-first" {
		t.Errorf("All()[0] = %q, want the lowest Order regardless of name", all[0].Name)
	}
}

func TestRegisterRejectsBadScenarios(t *testing.T) {
	mustPanic := func(name string, s Scenario) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: Register did not panic", name)
			}
		}()
		Register(s)
	}
	nop := func(context.Context, int64, Config) (Result, error) { return Result{}, nil }
	mustPanic("empty name", Scenario{Title: "t", Impl: "t", Run: nop})
	mustPanic("unselectable name", Scenario{Name: "t-a,b", Title: "t", Impl: "t", Run: nop})
	mustPanic("empty Title", Scenario{Name: "t-no-title", Impl: "t", Run: nop})
	mustPanic("empty Impl", Scenario{Name: "t-no-impl", Title: "t", Run: nop})
	mustPanic("nil Run", Scenario{Name: "t-nil-run", Title: "t", Impl: "t"})
	fake(t, "t-dup", 99)
	mustPanic("duplicate", Scenario{Name: "t-dup", Title: "t", Impl: "t", Run: nop})
}

func TestParamStringSorted(t *testing.T) {
	s := fake(t, "t-params", 50)
	if got := s.ParamString(); got != "a=1 b=2" {
		t.Errorf("ParamString() = %q, want key-sorted \"a=1 b=2\"", got)
	}
	if got := (Scenario{}).ParamString(); got != "—" {
		t.Errorf("empty ParamString() = %q, want —", got)
	}
}

func TestMarkdownIndexRowsPerScenario(t *testing.T) {
	fake(t, "t-index", 60)
	md := MarkdownIndex()
	lines := strings.Split(strings.TrimSpace(md), "\n")
	if want := len(All()) + 2; len(lines) != want {
		t.Errorf("index has %d lines, want %d (header + rule + one per scenario)", len(lines), want)
	}
	if !strings.Contains(md, "| `t-index` | Fake t-index | §0 | a=1 b=2 | `test.t-index` |") {
		t.Errorf("index missing the registered row:\n%s", md)
	}
}

func TestResultJSONStable(t *testing.T) {
	res := Result{
		Seed:    3,
		Success: Bool(false),
		Metrics: map[string]float64{"zz": 1, "aa": 2, "mm": 3},
	}
	a, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 16; i++ {
		b, _ := json.Marshal(res)
		if string(a) != string(b) {
			t.Fatalf("marshal unstable:\n%s\nvs\n%s", a, b)
		}
	}
	if !strings.Contains(string(a), `"aa":2,"mm":3,"zz":1`) {
		t.Errorf("metric keys not sorted: %s", a)
	}
}
