package scenario

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"

	"dnstime/internal/obs"
)

// Config tunes how a scenario runs without changing which experiment it
// is. The zero value is the paper's full-size configuration.
type Config struct {
	// Fast shrinks the slowest scenarios (the 2432-server rate-limit scan,
	// the 100k–200k-entry population studies) to a fraction of their full
	// size. Results remain deterministic per seed but no longer match the
	// paper-scale numbers in EXPERIMENTS.md.
	Fast bool
	// Params overrides a parameterisable scenario's defaults (keys from
	// Scenario.ParamKeys — client profile, target shift, attack knobs).
	// Determinism extends to params: the same (seed, cfg) including Params
	// must produce the identical Result.
	Params Params
	// Tracer receives the run's virtual-time observability events (packet
	// sends, clock fires, attack phases; see internal/obs). nil or obs.Nop
	// disables tracing at zero cost. Tracing is observation only: a traced
	// run returns the identical Result to an untraced one, and because
	// every scenario is deterministic per (seed, Params), the emitted event
	// sequence is too.
	Tracer obs.Tracer
}

// Result is the outcome of one seeded scenario run. It is the uniform
// currency of the registry: flat, typed, and JSON-serialisable, so the
// campaign engine can aggregate any scenario without knowing what it
// measures.
type Result struct {
	// Seed identifies the run (set by the caller that invoked Run).
	Seed int64 `json:"seed"`
	// Success is the run's binary outcome — did the attack land, did every
	// sub-experiment complete — or nil for scenarios with no pass/fail
	// notion (closed-form analyses, distribution measurements).
	Success *bool `json:"success,omitempty"`
	// Metrics holds the named numeric outcomes to aggregate. encoding/json
	// marshals map keys in sorted order, so serialised Results are
	// byte-stable.
	Metrics map[string]float64 `json:"metrics,omitempty"`
	// Err is the run error, if any ("" on clean runs). Set by the campaign
	// engine, never by Run itself (Run returns its error).
	Err string `json:"err,omitempty"`
}

// Bool returns a pointer to b, for setting Result.Success in literals.
func Bool(b bool) *bool { return &b }

// Scenario is one registered experiment: identification for the docs and
// the CLI, fixed parameters, and the seeded entry point.
type Scenario struct {
	// Name is the registry key and the CLI name
	// (`experiments campaigns -only <name>`).
	Name string
	// Title is the human experiment name ("Boot-time attack").
	Title string
	// PaperRef locates the experiment in the paper ("§IV-A, Fig. 2").
	PaperRef string
	// Impl names the Go entry point backing the scenario
	// ("core.RunBootTimeAttack") for the DESIGN.md §4 index.
	Impl string
	// CLI is the single-run command reproducing the experiment once
	// ("ntpattack -mode boot").
	CLI string
	// Params documents the fixed parameters baked into this registration
	// (client profile, attack scenario, population size …).
	Params map[string]string
	// ParamKeys lists the Config.Params keys a run accepts as overrides
	// (nil: the scenario takes none). The campaign engine validates
	// requested params against this list before any run starts, so a
	// mistyped key fails fast instead of being silently ignored.
	ParamKeys []string
	// Order positions the scenario in the DESIGN.md §4 index (paper
	// order). All() sorts by Order, then Name.
	Order int
	// Run executes the experiment once at the given seed. It must be
	// deterministic in (seed, cfg) and share no mutable state with
	// concurrent runs (see the package comment for the full contract).
	// ctx is advisory: a run that observes cancellation may return
	// ctx.Err(), and the campaign engine drops such runs from aggregates
	// and checkpoints so cancellation never perturbs deterministic output.
	Run func(ctx context.Context, seed int64, cfg Config) (Result, error)
}

// AcceptsParams checks every key of p against the scenario's declared
// ParamKeys, reporting the first unknown key as an error.
func (s Scenario) AcceptsParams(p Params) error {
	if len(p) == 0 {
		return nil
	}
	accepted := make(map[string]bool, len(s.ParamKeys))
	for _, k := range s.ParamKeys {
		accepted[k] = true
	}
	keys := make([]string, 0, len(p))
	for k := range p {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if !accepted[k] {
			if len(s.ParamKeys) == 0 {
				return fmt.Errorf("scenario: %s takes no params (got %s=%s)", s.Name, k, p[k])
			}
			return fmt.Errorf("scenario: %s does not accept param %q (accepts: %s)",
				s.Name, k, strings.Join(s.ParamKeys, ", "))
		}
	}
	return nil
}

// registry is the global scenario catalogue, populated by package init
// functions (import dnstime/internal/scenario/register to pull in every
// built-in scenario).
var registry = struct {
	sync.Mutex
	byName map[string]Scenario
}{byName: map[string]Scenario{}}

// Register adds a scenario to the catalogue. It panics on an empty name
// (or one the comma-separated CLI could not select), an empty Title or
// Impl (which would render blank cells in the DESIGN.md §4 index), a nil
// Run, or a duplicate name: registration happens at init time, and a
// malformed catalogue is a programming error, not a runtime condition.
func Register(s Scenario) {
	if s.Name == "" {
		panic("scenario: Register with empty Name")
	}
	if strings.ContainsAny(s.Name, ", \t\n|") {
		panic(fmt.Sprintf("scenario: Register(%q): name must be selectable by `-only a,b,...`", s.Name))
	}
	if s.Title == "" {
		panic(fmt.Sprintf("scenario: Register(%q) with empty Title", s.Name))
	}
	if s.Impl == "" {
		panic(fmt.Sprintf("scenario: Register(%q) with empty Impl", s.Name))
	}
	if s.Run == nil {
		panic(fmt.Sprintf("scenario: Register(%q) with nil Run", s.Name))
	}
	registry.Lock()
	defer registry.Unlock()
	if _, dup := registry.byName[s.Name]; dup {
		panic(fmt.Sprintf("scenario: Register(%q) called twice", s.Name))
	}
	registry.byName[s.Name] = s
}

// Lookup returns the scenario registered under name.
func Lookup(name string) (Scenario, bool) {
	registry.Lock()
	defer registry.Unlock()
	s, ok := registry.byName[name]
	return s, ok
}

// All returns every registered scenario, sorted by Order then Name —
// paper order, stable regardless of package-initialisation order.
func All() []Scenario {
	registry.Lock()
	defer registry.Unlock()
	out := make([]Scenario, 0, len(registry.byName))
	for _, s := range registry.byName {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Order != out[j].Order {
			return out[i].Order < out[j].Order
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// Names returns the registered scenario names in All() order.
func Names() []string {
	all := All()
	names := make([]string, len(all))
	for i, s := range all {
		names[i] = s.Name
	}
	return names
}

// Run looks up name and executes it once at the given seed, stamping the
// seed into the result. cfg.Params are validated against the scenario's
// ParamKeys before the run starts.
func Run(ctx context.Context, name string, seed int64, cfg Config) (Result, error) {
	s, ok := Lookup(name)
	if !ok {
		return Result{}, fmt.Errorf("scenario: unknown scenario %q (have: %s)",
			name, strings.Join(Names(), ", "))
	}
	if err := s.AcceptsParams(cfg.Params); err != nil {
		return Result{}, err
	}
	res, err := s.Run(ctx, seed, cfg)
	res.Seed = seed
	return res, err
}

// ParamString renders Params as "k=v" pairs in key order ("—" when the
// scenario has none).
func (s Scenario) ParamString() string {
	if len(s.Params) == 0 {
		return "—"
	}
	keys := make([]string, 0, len(s.Params))
	for k := range s.Params {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	pairs := make([]string, len(keys))
	for i, k := range keys {
		pairs[i] = k + "=" + s.Params[k]
	}
	return strings.Join(pairs, " ")
}

// MarkdownIndex renders the registry as the DESIGN.md §4 experiment
// index: one markdown table row per registered scenario. DESIGN.md embeds
// this output verbatim (between the scenario-index markers) and a test
// keeps the two in sync, so the documented index cannot drift from the
// code. Regenerate with `go run ./cmd/experiments scenarios -markdown`.
func MarkdownIndex() string {
	var sb strings.Builder
	sb.WriteString("| Campaign name | Experiment | Paper | Parameters | Implementation | Single-run CLI |\n")
	sb.WriteString("|---|---|---|---|---|---|\n")
	for _, s := range All() {
		paper := s.PaperRef
		if paper == "" {
			paper = "—"
		}
		fmt.Fprintf(&sb, "| `%s` | %s | %s | %s | `%s` | `%s` |\n",
			s.Name, s.Title, paper, s.ParamString(), s.Impl, s.CLI)
	}
	return sb.String()
}
