package dnsauth

import (
	"strings"
	"testing"
	"time"

	"dnstime/internal/dnswire"
	"dnstime/internal/ipv4"
	"dnstime/internal/simclock"
	"dnstime/internal/simnet"
)

var (
	t0     = time.Date(2020, 1, 1, 0, 0, 0, 0, time.UTC)
	nsAddr = ipv4.MustParseAddr("198.51.100.53")
	client = ipv4.MustParseAddr("192.0.2.10")
)

func newServer(t *testing.T, cfg Config) (*simnet.Network, *Server, *simnet.Host) {
	t.Helper()
	clk := simclock.New(t0)
	n := simnet.New(clk)
	nsHost := n.MustAddHost(nsAddr, simnet.HostConfig{})
	s, err := New(nsHost, cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	c := n.MustAddHost(client, simnet.HostConfig{})
	return n, s, c
}

func poolAddrs(n int) []ipv4.Addr {
	out := make([]ipv4.Addr, n)
	for i := range out {
		out[i] = ipv4.Addr{10, 0, byte(i >> 8), byte(i)}
	}
	return out
}

func query(t *testing.T, n *simnet.Network, c *simnet.Host, name string, qtype dnswire.Type) *dnswire.Message {
	t.Helper()
	var got *dnswire.Message
	c.HandleUDP(5000, func(_ ipv4.Addr, _ uint16, payload []byte) {
		m, err := dnswire.Unmarshal(payload)
		if err != nil {
			t.Errorf("response unmarshal: %v", err)
			return
		}
		got = m
	})
	defer c.UnhandleUDP(5000)
	q := dnswire.NewQuery(77, name, qtype, true)
	wire, _ := q.Marshal()
	if _, err := c.SendUDP(nsAddr, 5000, DNSPort, wire); err != nil {
		t.Fatal(err)
	}
	n.Clock().RunFor(time.Second)
	return got
}

func TestPoolReturnsFourAddresses(t *testing.T) {
	n, s, c := newServer(t, Config{})
	s.AddPool(&Pool{Name: "pool.ntp.org", Addrs: poolAddrs(20), PerResponse: 4, TTL: 150})
	got := query(t, n, c, "pool.ntp.org", dnswire.TypeA)
	if got == nil {
		t.Fatal("no response")
	}
	addrs := got.AddrsInAnswer("pool.ntp.org")
	if len(addrs) != 4 {
		t.Fatalf("got %d addresses, want 4", len(addrs))
	}
	if got.Answers[0].TTL != 150 {
		t.Errorf("TTL = %d, want 150", got.Answers[0].TTL)
	}
	if !got.Header.AA {
		t.Error("AA not set on authoritative answer")
	}
}

func TestPoolRoundRobinRotates(t *testing.T) {
	n, s, c := newServer(t, Config{})
	s.AddPool(&Pool{Name: "pool.ntp.org", Addrs: poolAddrs(12), PerResponse: 4, TTL: 150})
	first := query(t, n, c, "pool.ntp.org", dnswire.TypeA).AddrsInAnswer("pool.ntp.org")
	second := query(t, n, c, "pool.ntp.org", dnswire.TypeA).AddrsInAnswer("pool.ntp.org")
	if first[0] == second[0] {
		t.Error("round-robin cursor did not advance")
	}
}

func TestPoolServesSubZones(t *testing.T) {
	n, s, c := newServer(t, Config{})
	s.AddPool(&Pool{Name: "pool.ntp.org", Addrs: poolAddrs(8), PerResponse: 4, TTL: 150})
	for _, name := range []string{"0.pool.ntp.org", "2.pool.ntp.org", "de.pool.ntp.org"} {
		got := query(t, n, c, name, dnswire.TypeA)
		if got == nil || len(got.AddrsInAnswer(name)) != 4 {
			t.Errorf("%s: no pool answer", name)
		}
	}
}

func TestStaticZoneAnswers(t *testing.T) {
	n, s, c := newServer(t, Config{})
	z := NewZone("example.org")
	z.AddA("www.example.org", 3600, ipv4.Addr{5, 5, 5, 5})
	s.AddZone(z)
	got := query(t, n, c, "www.example.org", dnswire.TypeA)
	if got == nil {
		t.Fatal("no response")
	}
	addrs := got.AddrsInAnswer("www.example.org")
	if len(addrs) != 1 || addrs[0] != (ipv4.Addr{5, 5, 5, 5}) {
		t.Errorf("answer = %v", addrs)
	}
}

func TestUnknownNameNXDomain(t *testing.T) {
	n, s, c := newServer(t, Config{})
	s.AddZone(NewZone("example.org"))
	got := query(t, n, c, "nosuch.elsewhere.net", dnswire.TypeA)
	if got == nil {
		t.Fatal("no response")
	}
	if got.Header.RCode != dnswire.RCodeNXDomain {
		t.Errorf("rcode = %d, want NXDOMAIN", got.Header.RCode)
	}
}

func TestSignedZoneCarriesRRSIG(t *testing.T) {
	n, s, c := newServer(t, Config{})
	z := NewZone("time.cloudflare.com")
	z.Signed = true
	z.AddA("time.cloudflare.com", 300, ipv4.Addr{162, 159, 200, 1})
	s.AddZone(z)
	got := query(t, n, c, "time.cloudflare.com", dnswire.TypeA)
	if got == nil {
		t.Fatal("no response")
	}
	var sig string
	for _, rr := range got.Answers {
		if rr.Type == dnswire.TypeRRSIG {
			sig = string(rr.Raw)
		}
	}
	if !strings.HasPrefix(sig, SigValid) {
		t.Errorf("RRSIG marker = %q, want prefix %q", sig, SigValid)
	}
}

func TestBogusSignatures(t *testing.T) {
	n, s, c := newServer(t, Config{})
	z := NewZone("sigfail.test")
	z.Signed = true
	z.BogusSignatures = true
	z.AddA("sigfail.test", 60, ipv4.Addr{7, 7, 7, 7})
	s.AddZone(z)
	got := query(t, n, c, "sigfail.test", dnswire.TypeA)
	var sig string
	for _, rr := range got.Answers {
		if rr.Type == dnswire.TypeRRSIG {
			sig = string(rr.Raw)
		}
	}
	if !strings.HasPrefix(sig, SigBogus) {
		t.Errorf("RRSIG marker = %q, want prefix %q", sig, SigBogus)
	}
}

func TestWildcardAnswers(t *testing.T) {
	wc := ipv4.Addr{9, 8, 7, 6}
	n, s, c := newServer(t, Config{WildcardA: &wc})
	s.AddZone(NewZone("study.test"))
	got := query(t, n, c, "tok123.ftiny.study.test", dnswire.TypeA)
	addrs := got.AddrsInAnswer("tok123.ftiny.study.test")
	if len(addrs) != 1 || addrs[0] != wc {
		t.Errorf("wildcard answer = %v, want %v", addrs, wc)
	}
}

func TestPaddingReachesTargetSize(t *testing.T) {
	n, s, c := newServer(t, Config{PadResponsesTo: 1200})
	z := NewZone("example.org")
	z.AddA("big.example.org", 60, ipv4.Addr{1, 1, 1, 1})
	s.AddZone(z)
	got := query(t, n, c, "big.example.org", dnswire.TypeA)
	if got == nil {
		t.Fatal("no response")
	}
	wire, err := got.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if len(wire) < 1150 {
		t.Errorf("padded response = %d bytes, want ≥1150", len(wire))
	}
}

// TestICMPForcesFragmentedResponses is the Section VII-B behaviour: after a
// fragmentation-needed ICMP, the nameserver's (padded) responses arrive in
// multiple fragments.
func TestICMPForcesFragmentedResponses(t *testing.T) {
	clk := simclock.New(t0)
	var reassembled int
	n := simnet.New(clk, simnet.WithTrace(func(e simnet.TraceEvent) {
		if e.Kind == simnet.TraceReassembled {
			reassembled++
		}
	}))
	nsHost := n.MustAddHost(nsAddr, simnet.HostConfig{})
	s, err := New(nsHost, Config{PadResponsesTo: 900})
	if err != nil {
		t.Fatal(err)
	}
	s.AddPool(&Pool{Name: "pool.ntp.org", Addrs: poolAddrs(8), PerResponse: 4, TTL: 150})
	c := n.MustAddHost(client, simnet.HostConfig{})

	// Spoofed ICMP: "packets from ns to client need MTU 576".
	msg := &ipv4.ICMPFragNeeded{NextHopMTU: 576, OrigSrc: nsAddr, OrigDst: client, OrigProto: ipv4.ProtoUDP}
	n.Inject(&ipv4.Packet{Src: ipv4.MustParseAddr("203.0.113.66"), Dst: nsAddr, Proto: ipv4.ProtoICMP, TTL: 64, Payload: msg.Marshal()})
	clk.RunFor(100 * time.Millisecond)

	got := query(t, n, c, "pool.ntp.org", dnswire.TypeA)
	if got == nil {
		t.Fatal("no response after fragmentation")
	}
	if reassembled == 0 {
		t.Error("response was not fragmented despite ICMP")
	}
}

func TestAlwaysFragmentMTU(t *testing.T) {
	clk := simclock.New(t0)
	var fragSeen bool
	n := simnet.New(clk, simnet.WithTrace(func(e simnet.TraceEvent) {
		if e.Kind == simnet.TraceSend && e.Pkt.IsFragment() {
			fragSeen = true
		}
	}))
	nsHost := n.MustAddHost(nsAddr, simnet.HostConfig{})
	s, err := New(nsHost, Config{AlwaysFragmentMTU: 296})
	if err != nil {
		t.Fatal(err)
	}
	z := NewZone("study.test")
	z.AddA("x.study.test", 60, ipv4.Addr{1, 2, 3, 4})
	s.AddZone(z)
	c := n.MustAddHost(client, simnet.HostConfig{})
	got := query(t, n, c, "x.study.test", dnswire.TypeA)
	if got == nil {
		t.Fatal("no response")
	}
	if !fragSeen {
		t.Error("AlwaysFragmentMTU server sent no fragments")
	}
}

func TestQueriesServedCounter(t *testing.T) {
	n, s, c := newServer(t, Config{})
	s.AddPool(&Pool{Name: "pool.ntp.org", Addrs: poolAddrs(4), PerResponse: 4, TTL: 150})
	query(t, n, c, "pool.ntp.org", dnswire.TypeA)
	query(t, n, c, "pool.ntp.org", dnswire.TypeA)
	if s.QueriesServed != 2 {
		t.Errorf("QueriesServed = %d, want 2", s.QueriesServed)
	}
}

func TestPoolSmallerThanPerResponse(t *testing.T) {
	n, s, c := newServer(t, Config{})
	s.AddPool(&Pool{Name: "tiny.pool", Addrs: poolAddrs(2), PerResponse: 4, TTL: 150})
	got := query(t, n, c, "tiny.pool", dnswire.TypeA)
	if len(got.AddrsInAnswer("tiny.pool")) != 2 {
		t.Errorf("answers = %v", got.AddrsInAnswer("tiny.pool"))
	}
}
