// Package dnsauth implements an authoritative DNS nameserver bound to a
// simnet host. It models the behaviours that matter for the attack and the
// paper's measurements:
//
//   - round-robin address pools in the style of pool.ntp.org (4 addresses
//     per response, TTL 150 s, country sub-zones),
//   - path-MTU-discovery compliance: because responses travel through the
//     host's PMTU cache, a (spoofed) ICMP Fragmentation Needed makes the
//     server emit fragmented DNS responses — the property scanned in
//     Section VII-B and Figure 5,
//   - optional DNSSEC signing (RRSIG records that validating resolvers
//     check; the sigfail/sigright domains of the ad study carry valid or
//     deliberately bogus signatures),
//   - response-size shaping via TXT padding, standing in for the "long
//     subdomain" trick the attacker uses to push responses past the
//     fragmentation threshold.
package dnsauth

import (
	"fmt"
	"hash/fnv"
	"strings"

	"dnstime/internal/dnswire"
	"dnstime/internal/ipv4"
	"dnstime/internal/simnet"
)

// DNSPort is the well-known DNS UDP port.
const DNSPort = 53

// RRSIG payload markers. Real validation is cryptographic; the simulation
// carries a marker binding a hash of the signed RRset (owner, type, TTL and
// rdata of every answer record), which preserves the essential property:
// any off-path modification of the answer data — including the fragment
// attack's rdata replacement — breaks validation at a validating resolver,
// without implementing DNSSEC key management.
const (
	SigValid = "RRSIG:valid:"
	SigBogus = "RRSIG:bogus:"
)

// SignRRSet computes the simulation's stand-in signature over an answer
// RRset. Validating resolvers recompute it via dnsres.
func SignRRSet(rrs []dnswire.RR) string {
	h := fnv.New32a()
	for _, rr := range rrs {
		if rr.Type == dnswire.TypeRRSIG {
			continue
		}
		fmt.Fprintf(h, "%s|%d|%d|", dnswire.CanonicalName(rr.Name), rr.Type, rr.TTL)
		switch rr.Type {
		case dnswire.TypeA:
			h.Write(rr.Addr[:])
		case dnswire.TypeNS, dnswire.TypeCNAME:
			h.Write([]byte(dnswire.CanonicalName(rr.Target)))
		case dnswire.TypeTXT:
			h.Write([]byte(rr.Text))
		default:
			h.Write(rr.Raw)
		}
	}
	return fmt.Sprintf("%08x", h.Sum32())
}

// Pool is a round-robin address pool: each A query for the pool name (or a
// numbered/country sub-zone such as 0.pool.ntp.org, de.pool.ntp.org)
// returns PerResponse addresses starting at a rotating cursor.
type Pool struct {
	// Name is the apex, e.g. "pool.ntp.org".
	Name string
	// Addrs is the full server population.
	Addrs []ipv4.Addr
	// PerResponse is how many addresses each response carries (paper: 4).
	PerResponse int
	// TTL is the record TTL in seconds (paper: 150).
	TTL uint32

	cursor int
}

// next returns the next PerResponse addresses, advancing the cursor.
func (p *Pool) next() []ipv4.Addr {
	k := p.PerResponse
	if k <= 0 {
		k = 4
	}
	if k > len(p.Addrs) {
		k = len(p.Addrs)
	}
	out := make([]ipv4.Addr, 0, k)
	for i := 0; i < k; i++ {
		out = append(out, p.Addrs[(p.cursor+i)%len(p.Addrs)])
	}
	p.cursor = (p.cursor + k) % max(1, len(p.Addrs))
	return out
}

// Zone is a statically configured zone.
type Zone struct {
	// Name is the zone apex; owns every name at or below it.
	Name string
	// Records maps canonical owner names to their record sets.
	Records map[string][]dnswire.RR
	// Signed adds RRSIG records to every positive answer.
	Signed bool
	// BogusSignatures makes the RRSIGs fail validation (the "sigfail"
	// domain in the ad-network study).
	BogusSignatures bool
}

// NewZone returns an empty zone.
func NewZone(name string) *Zone {
	return &Zone{Name: dnswire.CanonicalName(name), Records: make(map[string][]dnswire.RR)}
}

// AddA adds an A record.
func (z *Zone) AddA(name string, ttl uint32, addr ipv4.Addr) {
	n := dnswire.CanonicalName(name)
	z.Records[n] = append(z.Records[n], dnswire.RR{
		Name: n, Type: dnswire.TypeA, Class: dnswire.ClassIN, TTL: ttl, Addr: addr,
	})
}

// AddNS adds an NS record at the apex.
func (z *Zone) AddNS(target string, ttl uint32) {
	z.Records[z.Name] = append(z.Records[z.Name], dnswire.RR{
		Name: z.Name, Type: dnswire.TypeNS, Class: dnswire.ClassIN, TTL: ttl, Target: dnswire.CanonicalName(target),
	})
}

// Config tunes server behaviour.
type Config struct {
	// PadResponsesTo appends TXT padding so every positive response is at
	// least this many bytes of DNS payload. Zero disables padding.
	PadResponsesTo int
	// AlwaysFragmentMTU, when non-zero, sends every response as at least
	// two fragments of at most this size regardless of path MTU — the test
	// nameserver behaviour from the ad study.
	AlwaysFragmentMTU int
	// WildcardA, when set, answers any otherwise-unknown name inside a
	// served zone with this address (used by the measurement test domains
	// where every random token resolves).
	WildcardA *ipv4.Addr
	// WildcardTTL is the TTL for wildcard answers (default 60).
	WildcardTTL uint32
}

// Server is an authoritative nameserver.
type Server struct {
	host  *simnet.Host
	cfg   Config
	zones map[string]*Zone
	pools map[string]*Pool

	// QueriesServed counts answered queries (measurement aid).
	QueriesServed int

	// Per-server scratch state for the query hot path. SendUDP/SendUDPMTU
	// copy the payload before returning, so the wire buffers are safe to
	// reuse across queries.
	dec        dnswire.Decoder
	query      dnswire.Message
	resp       dnswire.Message
	wire       []byte
	padScratch []byte
	filler     string
}

// New binds an authoritative server to port 53 on host.
func New(host *simnet.Host, cfg Config) (*Server, error) {
	s := &Server{
		host:  host,
		cfg:   cfg,
		zones: make(map[string]*Zone),
		pools: make(map[string]*Pool),
	}
	if err := host.HandleUDP(DNSPort, s.handle); err != nil {
		return nil, fmt.Errorf("dnsauth: bind: %w", err)
	}
	return s, nil
}

// Reset re-binds the server to its (freshly host.Reset) host under a new
// configuration, restoring the observable state New produces: no zones, no
// pools, zero counters, handler on port 53. Decode/encode scratch, the
// padding filler and the map storage survive — a pooled lab resets its
// nameserver every campaign seed and re-adds its zones afterwards.
func (s *Server) Reset(cfg Config) error {
	s.cfg = cfg
	clear(s.zones)
	clear(s.pools)
	s.QueriesServed = 0
	if err := s.host.HandleUDP(DNSPort, s.handle); err != nil {
		return fmt.Errorf("dnsauth: bind: %w", err)
	}
	return nil
}

// Host returns the underlying simnet host.
func (s *Server) Host() *simnet.Host { return s.host }

// Addr returns the server's address.
func (s *Server) Addr() ipv4.Addr { return s.host.Addr() }

// AddZone serves a zone.
func (s *Server) AddZone(z *Zone) { s.zones[z.Name] = z }

// AddPool serves a round-robin pool.
func (s *Server) AddPool(p *Pool) {
	p.Name = dnswire.CanonicalName(p.Name)
	s.pools[p.Name] = p
}

// Pool returns the pool serving name, matching the apex or any sub-zone
// label (N.pool.ntp.org, de.pool.ntp.org).
func (s *Server) poolFor(name string) *Pool {
	if p, ok := s.pools[name]; ok {
		return p
	}
	for apex, p := range s.pools {
		if strings.HasSuffix(name, "."+apex) {
			return p
		}
	}
	return nil
}

func (s *Server) zoneFor(name string) *Zone {
	if z, ok := s.zones[name]; ok {
		return z
	}
	for apex, z := range s.zones {
		if strings.HasSuffix(name, "."+apex) {
			return z
		}
	}
	return nil
}

func (s *Server) handle(src ipv4.Addr, srcPort uint16, payload []byte) {
	q := &s.query
	if err := s.dec.UnmarshalInto(q, payload); err != nil || q.Header.QR || len(q.Questions) != 1 {
		return
	}
	s.respondInto(q, &s.resp)
	wire, err := s.resp.AppendMarshal(s.wire[:0])
	if err != nil {
		return
	}
	s.wire = wire
	s.QueriesServed++
	if s.cfg.AlwaysFragmentMTU > 0 {
		_, _ = s.host.SendUDPMTU(src, DNSPort, srcPort, wire, s.cfg.AlwaysFragmentMTU)
		return
	}
	_, _ = s.host.SendUDP(src, DNSPort, srcPort, wire)
}

// Respond computes the authoritative response for a query without sending
// it (exported so resolvers and tests can exercise zone logic directly).
func (s *Server) Respond(q *dnswire.Message) *dnswire.Message {
	resp := &dnswire.Message{}
	s.respondInto(q, resp)
	return resp
}

// respondInto is Respond writing into a caller-owned message, reusing its
// section slices — the hot path answers every query with one reused message.
func (s *Server) respondInto(q, resp *dnswire.Message) {
	name := dnswire.CanonicalName(q.Questions[0].Name)
	qtype := q.Questions[0].Type
	*resp = dnswire.Message{
		Header:     dnswire.Header{ID: q.Header.ID, QR: true, RD: q.Header.RD},
		Questions:  append(resp.Questions[:0], q.Questions...),
		Answers:    resp.Answers[:0],
		Authority:  resp.Authority[:0],
		Additional: resp.Additional[:0],
	}
	resp.Header.AA = true

	var signed, bogus bool
	if z := s.zoneFor(name); z != nil {
		signed, bogus = z.Signed, z.BogusSignatures
	}

	if p := s.poolFor(name); p != nil && qtype == dnswire.TypeA {
		for _, a := range p.next() {
			resp.Answers = append(resp.Answers, dnswire.RR{
				Name: name, Type: dnswire.TypeA, Class: dnswire.ClassIN, TTL: p.TTL, Addr: a,
			})
		}
	} else if z := s.zoneFor(name); z != nil {
		for _, rr := range z.Records[name] {
			if rr.Type == qtype || rr.Type == dnswire.TypeCNAME {
				resp.Answers = append(resp.Answers, rr)
			}
		}
		if len(resp.Answers) == 0 && s.cfg.WildcardA != nil {
			ttl := s.cfg.WildcardTTL
			if ttl == 0 {
				ttl = 60
			}
			if qtype == dnswire.TypeA {
				resp.Answers = append(resp.Answers, dnswire.RR{
					Name: name, Type: dnswire.TypeA, Class: dnswire.ClassIN, TTL: ttl, Addr: *s.cfg.WildcardA,
				})
			}
		}
	} else if s.poolFor(name) == nil {
		resp.Header.RCode = dnswire.RCodeNXDomain
		return
	}

	if len(resp.Answers) == 0 {
		resp.Header.RCode = dnswire.RCodeNXDomain
		return
	}

	if signed {
		marker := SigValid + SignRRSet(resp.Answers)
		if bogus {
			marker = SigBogus + SignRRSet(resp.Answers)
		}
		resp.Answers = append(resp.Answers, dnswire.RR{
			Name: name, Type: dnswire.TypeRRSIG, Class: dnswire.ClassIN,
			TTL: resp.Answers[0].TTL, Raw: []byte(marker),
		})
	}

	if s.cfg.PadResponsesTo > 0 {
		s.pad(resp, name)
	}
}

// pad grows the response with a TXT filler record until the encoded size
// reaches cfg.PadResponsesTo.
func (s *Server) pad(resp *dnswire.Message, name string) {
	b, err := resp.AppendMarshal(s.padScratch[:0])
	if err != nil {
		return
	}
	s.padScratch = b
	if len(b) >= s.cfg.PadResponsesTo {
		return
	}
	// TXT overhead: pointer(2)+type/class/ttl/rdlen(10)+len-bytes.
	need := s.cfg.PadResponsesTo - len(b) - 13
	if need < 1 {
		need = 1
	}
	if need > len(s.filler) {
		s.filler = strings.Repeat("p", need)
	}
	filler := s.filler[:need]
	resp.Additional = append(resp.Additional, dnswire.RR{
		Name: name, Type: dnswire.TypeTXT, Class: dnswire.ClassIN, TTL: 0, Text: filler,
	})
}
