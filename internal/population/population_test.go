package population

import (
	"math"
	"testing"
)

func frac(n, d int) float64 { return float64(n) / float64(d) }

func TestGeneratePoolFractions(t *testing.T) {
	pop := GeneratePool(DefaultPoolConfig(), 1)
	if len(pop) != 2432 {
		t.Fatalf("population = %d, want 2432", len(pop))
	}
	var rate, kod, open int
	for _, s := range pop {
		if s.RateLimits {
			rate++
		}
		if s.SendsKoD {
			kod++
			if !s.RateLimits {
				t.Fatal("KoD sender that does not rate limit")
			}
		}
		if s.OpenConfig {
			open++
		}
	}
	if f := frac(rate, len(pop)); math.Abs(f-0.38) > 0.03 {
		t.Errorf("rate-limit fraction = %.3f, want ≈0.38", f)
	}
	if f := frac(kod, len(pop)); math.Abs(f-0.33) > 0.03 {
		t.Errorf("KoD fraction = %.3f, want ≈0.33", f)
	}
	if f := frac(open, len(pop)); math.Abs(f-0.053) > 0.02 {
		t.Errorf("open-config fraction = %.3f, want ≈0.053", f)
	}
}

func TestGeneratePoolDeterministic(t *testing.T) {
	a := GeneratePool(DefaultPoolConfig(), 7)
	b := GeneratePool(DefaultPoolConfig(), 7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different populations")
		}
	}
	c := GeneratePool(DefaultPoolConfig(), 8)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical populations")
	}
}

func TestGeneratePoolNameservers(t *testing.T) {
	pop := GeneratePoolNameservers(DefaultPoolNameserverConfig(), 3)
	if len(pop) != 30 {
		t.Fatalf("population = %d, want 30", len(pop))
	}
	frag := 0
	for _, ns := range pop {
		if ns.DNSSEC {
			t.Error("pool nameserver with DNSSEC (paper: none)")
		}
		if ns.Fragments {
			frag++
			if ns.MinFragSize >= 549 {
				t.Errorf("fragmenting NS min size %d, want <549", ns.MinFragSize)
			}
		}
	}
	if frag != 16 {
		t.Errorf("fragmenting nameservers = %d, want 16", frag)
	}
}

func TestGenerateDomainNameserversFigure5(t *testing.T) {
	cfg := DefaultDomainNameserverConfig()
	pop := GenerateDomainNameservers(cfg, 5)
	var frag, signed, at292, at548 int
	for _, ns := range pop {
		if ns.DNSSEC {
			signed++
		}
		if ns.Fragments && !ns.DNSSEC {
			frag++
			if ns.MinFragSize <= 292 {
				at292++
			}
			if ns.MinFragSize <= 548 {
				at548++
			}
		}
	}
	if f := frac(frag, len(pop)); math.Abs(f-0.0766) > 0.005 {
		t.Errorf("frag+noDNSSEC fraction = %.4f, want ≈0.0766", f)
	}
	if f := frac(at292, frag); math.Abs(f-0.0705) > 0.01 {
		t.Errorf("cum fraction at 292 = %.4f, want ≈0.0705", f)
	}
	if f := frac(at548, frag); math.Abs(f-0.832) > 0.01 {
		t.Errorf("cum fraction at 548 = %.4f, want ≈0.832", f)
	}
	if f := frac(signed, len(pop)); math.Abs(f-0.01) > 0.005 {
		t.Errorf("DNSSEC fraction = %.4f, want ≈0.01", f)
	}
}

func TestGenerateOpenResolversTableIV(t *testing.T) {
	cfg := DefaultOpenResolverConfig()
	cfg.Total = 100000
	pop := GenerateOpenResolvers(cfg, 11)
	var responds, verified int
	cachedA := 0
	for _, r := range pop {
		if !r.Responds {
			continue
		}
		responds++
		if r.RespectsRD {
			verified++
			if _, ok := r.CachedTTL(RecPoolA); ok {
				cachedA++
			}
		}
	}
	if f := frac(verified, responds); math.Abs(f-0.408) > 0.02 {
		t.Errorf("verified fraction = %.3f, want ≈0.408", f)
	}
	if f := frac(cachedA, verified); math.Abs(f-0.6941) > 0.02 {
		t.Errorf("pool A cached fraction = %.3f, want ≈0.694", f)
	}
}

// TestGenerateOpenResolversDeterministic: the same (cfg, seed) must
// produce the identical population — including when PCached carries
// records beyond the built-in Table IV set, which must be honoured (in a
// fixed draw order), not dropped.
func TestGenerateOpenResolversDeterministic(t *testing.T) {
	extra := PoolRecord("2.pool.ntp.org IN AAAA")
	cfg := DefaultOpenResolverConfig()
	cfg.Total = 5000
	cfg.PCached[extra] = 1.0
	a := GenerateOpenResolvers(cfg, 7)
	sawExtra := false
	for run := 0; run < 3; run++ {
		b := GenerateOpenResolvers(cfg, 7)
		for i := range a {
			if len(a[i].Cached) != len(b[i].Cached) {
				t.Fatalf("resolver %d differs between identical-seed draws", i)
			}
			for _, c := range a[i].Cached {
				if ttl, ok := b[i].CachedTTL(c.Record); !ok || ttl != c.TTL {
					t.Fatalf("resolver %d record %s differs between identical-seed draws", i, c.Record)
				}
			}
		}
	}
	for _, r := range a {
		if r.Responds && r.RespectsRD {
			if _, ok := r.CachedTTL(extra); !ok {
				t.Fatalf("custom PCached record %s dropped (p=1.0 must always cache it)", extra)
			}
			sawExtra = true
		}
	}
	if !sawExtra {
		t.Fatal("no verified resolvers drawn")
	}
}

func TestOpenResolverTTLsWithinRange(t *testing.T) {
	cfg := DefaultOpenResolverConfig()
	cfg.Total = 20000
	for _, r := range GenerateOpenResolvers(cfg, 2) {
		for _, c := range r.Cached {
			if c.TTL < 0 || c.TTL > cfg.RecordTTL {
				t.Fatalf("record %s TTL %d out of [0,%d]", c.Record, c.TTL, cfg.RecordTTL)
			}
		}
	}
}

func TestGenerateAdClients(t *testing.T) {
	pop := GenerateAdClients(DefaultAdStudyConfig(), 9)
	if len(pop) < 7000 {
		t.Fatalf("clients = %d, want ≈8014", len(pop))
	}
	var tinyNotSmall int
	byRegion := map[Region]int{}
	for _, c := range pop {
		byRegion[c.Region]++
		if c.AcceptsTiny && !c.AcceptsSmall {
			tinyNotSmall++
		}
		if c.GoogleDNS && (c.AcceptsTiny || c.AcceptsSmall || c.AcceptsMedium) {
			t.Fatal("Google-DNS client accepted sub-big fragments")
		}
	}
	if tinyNotSmall > 0 {
		t.Errorf("%d clients accept tiny but not small fragments", tinyNotSmall)
	}
	if byRegion[Asia] != 3169 || byRegion[NorthAm] != 2314 {
		t.Errorf("region sizes = %v", byRegion)
	}
}

func TestGenerateSharedResolvers(t *testing.T) {
	pop := GenerateSharedResolvers(DefaultSharedResolverConfig(), 21)
	if len(pop) != 18668 {
		t.Fatalf("resolvers = %d, want 18668", len(pop))
	}
	var smtp, open, both, webOnly int
	for _, r := range pop {
		switch {
		case r.Open && r.UsedBySMTP:
			both++
		case r.Open:
			open++
		case r.UsedBySMTP:
			smtp++
		default:
			webOnly++
		}
	}
	if f := frac(webOnly, len(pop)); math.Abs(f-0.862) > 0.01 {
		t.Errorf("web-only = %.3f, want ≈0.862", f)
	}
	if f := frac(smtp, len(pop)); math.Abs(f-0.113) > 0.01 {
		t.Errorf("smtp = %.3f, want ≈0.113", f)
	}
	if f := frac(open+both, len(pop)); math.Abs(f-0.025) > 0.006 {
		t.Errorf("open = %.3f, want ≈0.025", f)
	}
}

func TestGenerateTimingDeltasOverlap(t *testing.T) {
	// Figure 7's point: the two populations overlap so much that no
	// threshold separates them; check both tails exist around zero.
	deltas := GenerateTimingDeltas(DefaultTimingProbeConfig(), 17)
	var below, between, above int
	for _, d := range deltas {
		switch {
		case d < 0:
			below++
		case d < 50:
			between++
		default:
			above++
		}
	}
	if below == 0 || between == 0 || above == 0 {
		t.Errorf("distribution not smeared: %d/%d/%d", below, between, above)
	}
}

func TestUniformTTLs(t *testing.T) {
	ttls := UniformTTLs(10000, 150, 3)
	if len(ttls) != 10000 {
		t.Fatal("wrong count")
	}
	var lo, hi int
	for _, ttl := range ttls {
		s := int(ttl.Seconds())
		if s < 0 || s > 150 {
			t.Fatalf("ttl %d out of range", s)
		}
		if s < 75 {
			lo++
		} else {
			hi++
		}
	}
	if math.Abs(frac(lo, len(ttls))-0.5) > 0.03 {
		t.Errorf("TTL distribution not uniform: %d below midpoint", lo)
	}
}
