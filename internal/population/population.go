// Package population generates the seeded synthetic populations that stand
// in for the paper's Internet-scale measurement subjects: the pool.ntp.org
// server population (Section VII-A), its nameservers and the popular-domain
// nameservers (Section VII-B / Figure 5), the Censys open-resolver dataset
// (Section VIII-A / Table IV / Figure 6), the ad-network client study
// (Section VIII-B / Table V) and the shared-resolver topology
// (Section VIII-B3).
//
// Every generator takes an explicit seed, so measurement runs are
// reproducible. Generation parameters default to the paper's measured
// ground truth; the measurement harness (internal/measure) then re-derives
// those numbers through the paper's methodology, closing the loop.
package population

import (
	"math/rand"
	"sort"
	"time"

	"dnstime/internal/ipv4"
)

// ---------------------------------------------------------------------------
// §VII-A: pool.ntp.org NTP servers.

// PoolServerSpec describes one synthetic pool server's behaviour.
type PoolServerSpec struct {
	Addr ipv4.Addr
	// RateLimits: the server stops answering flooding clients (paper: 38%).
	RateLimits bool
	// SendsKoD: the server sends a RATE Kiss-o'-Death at the limiting edge
	// (paper: 33%; KoD senders are a subset of rate limiters).
	SendsKoD bool
	// OpenConfig: the mode-7 config interface answers (paper: 5.3%).
	OpenConfig bool
}

// PoolConfig parameterises the pool population.
type PoolConfig struct {
	// Servers is the population size (paper: 2432).
	Servers int
	// PRateLimit is the rate-limiting fraction (paper: 0.38).
	PRateLimit float64
	// PKoD is the KoD-sending fraction (paper: 0.33; clamped to
	// PRateLimit).
	PKoD float64
	// POpenConfig is the open-config fraction (paper: 0.053).
	POpenConfig float64
}

// DefaultPoolConfig returns the paper's measured population parameters.
func DefaultPoolConfig() PoolConfig {
	return PoolConfig{Servers: 2432, PRateLimit: 0.38, PKoD: 0.33, POpenConfig: 0.053}
}

// GeneratePool draws a pool-server population.
func GeneratePool(cfg PoolConfig, seed int64) []PoolServerSpec {
	rng := rand.New(rand.NewSource(seed))
	if cfg.PKoD > cfg.PRateLimit {
		cfg.PKoD = cfg.PRateLimit
	}
	out := make([]PoolServerSpec, cfg.Servers)
	for i := range out {
		s := PoolServerSpec{Addr: ipv4.Addr{10, 1, byte(i >> 8), byte(i)}}
		r := rng.Float64()
		if r < cfg.PRateLimit {
			s.RateLimits = true
			// KoD senders are rate limiters: P(KoD|rate) = PKoD/PRate.
			s.SendsKoD = rng.Float64() < cfg.PKoD/cfg.PRateLimit
		}
		s.OpenConfig = rng.Float64() < cfg.POpenConfig
		out[i] = s
	}
	return out
}

// ---------------------------------------------------------------------------
// §VII-B / Figure 5: nameserver populations.

// NameserverSpec describes one nameserver's PMTUD/DNSSEC behaviour.
type NameserverSpec struct {
	// Fragments: the server honours ICMP Fragmentation Needed and emits
	// fragmented responses.
	Fragments bool
	// MinFragSize is the smallest fragment size the server will emit (its
	// PMTU acceptance floor); meaningful only when Fragments.
	MinFragSize int
	// DNSSEC: the served zone is signed.
	DNSSEC bool
}

// PoolNameserverConfig matches the pool.ntp.org nameserver scan: 30
// nameservers, 16 of which fragment below 548 bytes, none signed.
type PoolNameserverConfig struct {
	Total        int
	FragBelow548 int
}

// DefaultPoolNameserverConfig returns the paper's §VII-B values.
func DefaultPoolNameserverConfig() PoolNameserverConfig {
	return PoolNameserverConfig{Total: 30, FragBelow548: 16}
}

// GeneratePoolNameservers draws the pool.ntp.org nameserver population.
func GeneratePoolNameservers(cfg PoolNameserverConfig, seed int64) []NameserverSpec {
	rng := rand.New(rand.NewSource(seed))
	out := make([]NameserverSpec, cfg.Total)
	perm := rng.Perm(cfg.Total)
	for i := range out {
		if i < cfg.FragBelow548 {
			out[perm[i]] = NameserverSpec{Fragments: true, MinFragSize: 292 + rng.Intn(2)*256}
		} else {
			out[perm[i]] = NameserverSpec{Fragments: false, MinFragSize: ipv4.DefaultMTU}
		}
	}
	return out
}

// DomainNameserverConfig matches the popular-domain scan: 877,071
// nameservers, 7.66% of domains fragment without DNSSEC; among fragmenting
// nameservers the minimum fragment size distribution follows Figure 5
// (7.05% down to 292 B, 83.2% cumulative at 548 B).
type DomainNameserverConfig struct {
	Total int
	// PFragNoDNSSEC is the fraction that fragments and is unsigned.
	PFragNoDNSSEC float64
	// PDNSSEC is the overall signed fraction (~1%).
	PDNSSEC float64
	// CumAt292 and CumAt548 are Figure 5's cumulative fractions among the
	// fragmenting, unsigned population.
	CumAt292 float64
	CumAt548 float64
	// CumAt1276 extends the curve (most of the rest fragments at 1276).
	CumAt1276 float64
}

// DefaultDomainNameserverConfig returns the paper's §VII-B / Figure 5
// values (Total reduced from 877k to 100k for test-speed; scale-free).
func DefaultDomainNameserverConfig() DomainNameserverConfig {
	return DomainNameserverConfig{
		Total:         100000,
		PFragNoDNSSEC: 0.0766,
		PDNSSEC:       0.01,
		CumAt292:      0.0705,
		CumAt548:      0.832,
		CumAt1276:     0.95,
	}
}

// GenerateDomainNameservers draws the popular-domain nameserver population.
func GenerateDomainNameservers(cfg DomainNameserverConfig, seed int64) []NameserverSpec {
	rng := rand.New(rand.NewSource(seed))
	out := make([]NameserverSpec, cfg.Total)
	for i := range out {
		var s NameserverSpec
		switch {
		case rng.Float64() < cfg.PDNSSEC:
			s = NameserverSpec{DNSSEC: true, MinFragSize: ipv4.DefaultMTU}
		case rng.Float64() < cfg.PFragNoDNSSEC/(1-cfg.PDNSSEC):
			s = NameserverSpec{Fragments: true, MinFragSize: drawFragSize(rng, cfg)}
		default:
			s = NameserverSpec{MinFragSize: ipv4.DefaultMTU}
		}
		out[i] = s
	}
	return out
}

func drawFragSize(rng *rand.Rand, cfg DomainNameserverConfig) int {
	r := rng.Float64()
	switch {
	case r < cfg.CumAt292:
		return 292
	case r < cfg.CumAt548:
		return 548
	case r < cfg.CumAt1276:
		return 1276
	default:
		return 1500
	}
}

// ---------------------------------------------------------------------------
// §VIII-A: open resolvers (Censys-style dataset).

// PoolRecord names the cache-snooped records of Table IV.
type PoolRecord string

// The six snooped records.
const (
	RecPoolNS PoolRecord = "pool.ntp.org IN NS"
	RecPoolA  PoolRecord = "pool.ntp.org IN A"
	Rec0Pool  PoolRecord = "0.pool.ntp.org IN A"
	Rec1Pool  PoolRecord = "1.pool.ntp.org IN A"
	Rec2Pool  PoolRecord = "2.pool.ntp.org IN A"
	Rec3Pool  PoolRecord = "3.pool.ntp.org IN A"
)

// AllPoolRecords lists the Table IV records in paper order.
func AllPoolRecords() []PoolRecord {
	return []PoolRecord{RecPoolNS, RecPoolA, Rec0Pool, Rec1Pool, Rec2Pool, Rec3Pool}
}

// CachedRecord is one cached pool record with its remaining TTL (seconds).
type CachedRecord struct {
	Record PoolRecord
	TTL    int
}

// OpenResolverSpec describes one open resolver.
type OpenResolverSpec struct {
	// Responds: the resolver answers external queries at all.
	Responds bool
	// RespectsRD: RD=0 is answered from cache only (snooping works).
	RespectsRD bool
	// Cached holds the cached records in draw order (Table IV order, then
	// extras); absence means not cached. The per-resolver slices of one
	// population share a single backing array — a population is drawn per
	// campaign run, and per-resolver maps dominated the generator's
	// allocation profile.
	Cached []CachedRecord
	// AcceptsFragments: fragmented DNS responses are accepted (31%).
	AcceptsFragments bool
}

// CachedTTL returns the remaining TTL of rec and whether it is cached.
func (s *OpenResolverSpec) CachedTTL(rec PoolRecord) (int, bool) {
	for _, c := range s.Cached {
		if c.Record == rec {
			return c.TTL, true
		}
	}
	return 0, false
}

// OpenResolverConfig parameterises the open-resolver population.
type OpenResolverConfig struct {
	// Total is the dataset size (paper probed 1,583,045 responding
	// resolvers; default reduced for test speed — fractions are
	// scale-free).
	Total int
	// PResponds is the responding fraction (1,583,045 of 3,257,148).
	PResponds float64
	// PRespectsRD is the fraction where the snooping pre-test verifies
	// (646,212 of 1,583,045 ≈ 0.408).
	PRespectsRD float64
	// PCached maps each record to its caching probability (Table IV).
	PCached map[PoolRecord]float64
	// PAcceptsFragments is the fragmented-response acceptance fraction
	// (paper: ≈0.31 across open resolvers).
	PAcceptsFragments float64
	// RecordTTL is the zone TTL; cached-copy remaining TTLs are uniform in
	// [0, RecordTTL] (Figure 6).
	RecordTTL int
}

// DefaultOpenResolverConfig returns Table IV's measured fractions.
func DefaultOpenResolverConfig() OpenResolverConfig {
	return OpenResolverConfig{
		Total:       200000,
		PResponds:   0.486,
		PRespectsRD: 0.408,
		PCached: map[PoolRecord]float64{
			RecPoolNS: 0.5828,
			RecPoolA:  0.6941,
			Rec0Pool:  0.6392,
			Rec1Pool:  0.6128,
			Rec2Pool:  0.6155,
			Rec3Pool:  0.5858,
		},
		PAcceptsFragments: 0.31,
		RecordTTL:         150,
	}
}

// GenerateOpenResolvers draws the open-resolver population.
func GenerateOpenResolvers(cfg OpenResolverConfig, seed int64) []OpenResolverSpec {
	// Fix the record draw order up front — Table IV order, then any extra
	// configured records sorted by name. Ranging over the PCached map
	// would consume the RNG in Go's randomised map order and break seed
	// determinism.
	records := make([]PoolRecord, 0, len(cfg.PCached))
	for _, rec := range AllPoolRecords() {
		if _, ok := cfg.PCached[rec]; ok {
			records = append(records, rec)
		}
	}
	if len(records) < len(cfg.PCached) {
		known := len(records)
		for rec := range cfg.PCached {
			extra := true
			for _, k := range records[:known] {
				if rec == k {
					extra = false
					break
				}
			}
			if extra {
				records = append(records, rec)
			}
		}
		sort.Slice(records[known:], func(i, j int) bool {
			return records[known+i] < records[known+j]
		})
	}

	// Hoist the per-record probabilities out of the population loop: the
	// map lookups otherwise dominate large draws (Total × records accesses).
	probs := make([]float64, len(records))
	for i, rec := range records {
		probs[i] = cfg.PCached[rec]
	}

	rng := rand.New(rand.NewSource(seed))
	out := make([]OpenResolverSpec, cfg.Total)
	// Chunked arena for the Cached slices: each resolver carves a sub-slice
	// out of the current chunk, and an exhausted chunk is simply replaced —
	// carved slices keep the old chunk alive, nothing is copied. Chunks keep
	// allocation count (and GC pressure) orders of magnitude below one map
	// per resolver without the worst-case footprint of a single backing
	// array sized as if every record were cached everywhere.
	chunkCap := 1024 * len(records)
	chunk := make([]CachedRecord, 0, chunkCap)
	for i := range out {
		s := OpenResolverSpec{}
		if rng.Float64() >= cfg.PResponds {
			out[i] = s
			continue
		}
		s.Responds = true
		s.RespectsRD = rng.Float64() < cfg.PRespectsRD
		s.AcceptsFragments = rng.Float64() < cfg.PAcceptsFragments
		if len(chunk)+len(records) > cap(chunk) {
			chunk = make([]CachedRecord, 0, chunkCap)
		}
		start := len(chunk)
		for j, rec := range records {
			if rng.Float64() < probs[j] {
				chunk = append(chunk, CachedRecord{rec, rng.Intn(cfg.RecordTTL + 1)})
			}
		}
		s.Cached = chunk[start:len(chunk):len(chunk)]
		out[i] = s
	}
	return out
}

// ---------------------------------------------------------------------------
// §VIII-B: ad-network client study.

// Region labels match Table V.
type Region string

// Study regions.
const (
	Asia    Region = "Asia"
	Africa  Region = "Africa"
	Europe  Region = "Europe"
	NorthAm Region = "Northern America"
	LatAm   Region = "Latin America"
)

// AllRegions lists the Table V regions in paper order.
func AllRegions() []Region {
	return []Region{Asia, Africa, Europe, NorthAm, LatAm}
}

// Device labels match Table V.
type Device string

// Device classes.
const (
	PC     Device = "PC"
	Mobile Device = "Mobile,Tablet"
)

// AdClientSpec describes one ad-study client and its resolver's behaviour.
type AdClientSpec struct {
	Region Region
	Device Device
	// GoogleDNS: the client uses Google public DNS, which filters all
	// fragment sizes below "big".
	GoogleDNS bool
	// AcceptsTiny/Small/Medium/Big: the resolver accepted the fragmented
	// response at MTU 68 / 296 / 580 / 1280.
	AcceptsTiny, AcceptsSmall, AcceptsMedium, AcceptsBig bool
	// ValidatesDNSSEC: the sigfail image failed to load.
	ValidatesDNSSEC bool
	// PageOpenSeconds models the popunder's lifetime; results with < 30 s
	// are filtered out by the study.
	PageOpenSeconds int
	// BaselineOK / SigrightOK are the control tests.
	BaselineOK, SigrightOK bool
}

// RegionParams calibrates one region's rates.
type RegionParams struct {
	Clients      int
	PTiny        float64 // tiny-fragment acceptance among valid clients
	PAnyFragment float64 // any-size acceptance
	PDNSSEC      float64 // validation rate
	PGoogle      float64 // Google-DNS usage
	PMobile      float64
}

// AdStudyConfig parameterises the study.
type AdStudyConfig struct {
	Regions map[Region]RegionParams
	// PInvalidPage is the fraction filtered out (page closed early or
	// failed controls).
	PInvalidPage float64
}

// DefaultAdStudyConfig returns Table V's measured rates. Client counts are
// the paper's valid-result totals per region (datasets 1 and 2 combined).
func DefaultAdStudyConfig() AdStudyConfig {
	return AdStudyConfig{
		PInvalidPage: 0.10,
		Regions: map[Region]RegionParams{
			Asia:    {Clients: 3169, PTiny: 0.5822, PAnyFragment: 0.9034, PDNSSEC: 0.22, PGoogle: 0.14, PMobile: 0.60},
			Africa:  {Clients: 303, PTiny: 0.7327, PAnyFragment: 0.9571, PDNSSEC: 0.19, PGoogle: 0.10, PMobile: 0.65},
			Europe:  {Clients: 1390, PTiny: 0.7266, PAnyFragment: 0.9187, PDNSSEC: 0.29, PGoogle: 0.10, PMobile: 0.45},
			NorthAm: {Clients: 2314, PTiny: 0.5843, PAnyFragment: 0.7593, PDNSSEC: 0.25, PGoogle: 0.08, PMobile: 0.50},
			LatAm:   {Clients: 838, PTiny: 0.6826, PAnyFragment: 0.9057, PDNSSEC: 0.21, PGoogle: 0.12, PMobile: 0.55},
		},
	}
}

// GenerateAdClients draws the ad-study client population (valid and
// invalid results; the harness applies the paper's filtering).
func GenerateAdClients(cfg AdStudyConfig, seed int64) []AdClientSpec {
	rng := rand.New(rand.NewSource(seed))
	total := 0
	for _, region := range AllRegions() {
		total += cfg.Regions[region].Clients
	}
	out := make([]AdClientSpec, 0, total)
	for _, region := range AllRegions() {
		p := cfg.Regions[region]
		for i := 0; i < p.Clients; i++ {
			c := AdClientSpec{Region: region, Device: PC, BaselineOK: true, SigrightOK: true, PageOpenSeconds: 31 + rng.Intn(600)}
			if rng.Float64() < p.PMobile {
				c.Device = Mobile
			}
			if rng.Float64() < cfg.PInvalidPage {
				// Invalid result: early close or failed control.
				if rng.Float64() < 0.5 {
					c.PageOpenSeconds = rng.Intn(30)
				} else {
					c.BaselineOK = false
				}
			}
			c.GoogleDNS = rng.Float64() < p.PGoogle
			if c.GoogleDNS {
				// Google filters fragments below "big" but accepts big ones,
				// so Google clients count toward any-size acceptance.
				c.AcceptsBig = true
			} else {
				// Table V's PTiny/PAnyFragment are marginals over ALL valid
				// clients (including the Google users, who never accept tiny
				// fragments); condition the non-Google rates accordingly.
				pAnyNG := (p.PAnyFragment - p.PGoogle) / (1 - p.PGoogle)
				pTinyNG := p.PTiny / (1 - p.PGoogle)
				if rng.Float64() < pAnyNG {
					c.AcceptsBig = true
					c.AcceptsMedium = rng.Float64() < 0.95
					c.AcceptsSmall = c.AcceptsMedium && rng.Float64() < 0.95
					pTinyGivenSmall := pTinyNG / (pAnyNG * 0.95 * 0.95)
					if pTinyGivenSmall > 1 {
						pTinyGivenSmall = 1
					}
					c.AcceptsTiny = c.AcceptsSmall && rng.Float64() < pTinyGivenSmall
				}
			}
			c.ValidatesDNSSEC = rng.Float64() < p.PDNSSEC
			out = append(out, c)
		}
	}
	return out
}

// ---------------------------------------------------------------------------
// §VIII-B3: shared-resolver topology.

// SharedResolverSpec describes one resolver seen in the web-client study.
type SharedResolverSpec struct {
	UsedByWeb  bool
	UsedBySMTP bool
	Open       bool
}

// SharedResolverConfig parameterises the topology (paper: 18,668 resolvers;
// 86.2% web-only, 11.3% web+SMTP, 2.3% open, 0.2% open+SMTP).
type SharedResolverConfig struct {
	Total     int
	PSMTPOnly float64 // web+SMTP, not open
	POpenOnly float64 // open, not SMTP
	PBoth     float64 // open and SMTP
}

// DefaultSharedResolverConfig returns the paper's fractions.
func DefaultSharedResolverConfig() SharedResolverConfig {
	return SharedResolverConfig{Total: 18668, PSMTPOnly: 0.113, POpenOnly: 0.023, PBoth: 0.002}
}

// GenerateSharedResolvers draws the shared-resolver topology.
func GenerateSharedResolvers(cfg SharedResolverConfig, seed int64) []SharedResolverSpec {
	rng := rand.New(rand.NewSource(seed))
	out := make([]SharedResolverSpec, cfg.Total)
	for i := range out {
		s := SharedResolverSpec{UsedByWeb: true}
		r := rng.Float64()
		switch {
		case r < cfg.PBoth:
			s.Open, s.UsedBySMTP = true, true
		case r < cfg.PBoth+cfg.POpenOnly:
			s.Open = true
		case r < cfg.PBoth+cfg.POpenOnly+cfg.PSMTPOnly:
			s.UsedBySMTP = true
		}
		out[i] = s
	}
	return out
}

// ---------------------------------------------------------------------------
// Figure 7: timing side channel.

// TimingProbeConfig models the latency-difference measurement: the first
// query of a cached record saves the upstream RTT, but per-query jitter and
// heterogeneous upstream RTTs smear the two populations together.
type TimingProbeConfig struct {
	Resolvers int
	// PCached is the fraction of resolvers with the record cached.
	PCached float64
	// JitterMS is the per-measurement jitter standard deviation.
	JitterMS float64
	// UpstreamRTTMinMS and UpstreamRTTMaxMS bound the (uniform) upstream
	// RTT distribution.
	UpstreamRTTMinMS float64
	UpstreamRTTMaxMS float64
}

// DefaultTimingProbeConfig returns parameters that reproduce Figure 7's
// inconclusive overlap.
func DefaultTimingProbeConfig() TimingProbeConfig {
	return TimingProbeConfig{
		Resolvers: 20000, PCached: 0.6,
		JitterMS: 25, UpstreamRTTMinMS: 5, UpstreamRTTMaxMS: 120,
	}
}

// GenerateTimingDeltas draws t_first − t_avg samples (milliseconds) for the
// probe population.
func GenerateTimingDeltas(cfg TimingProbeConfig, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]float64, cfg.Resolvers)
	for i := range out {
		jitter := rng.NormFloat64() * cfg.JitterMS
		if rng.Float64() < cfg.PCached {
			// Cached: first and subsequent queries are both cache hits.
			out[i] = jitter
		} else {
			// Uncached: the first query pays the upstream RTT.
			rtt := cfg.UpstreamRTTMinMS + rng.Float64()*(cfg.UpstreamRTTMaxMS-cfg.UpstreamRTTMinMS)
			out[i] = rtt + jitter
		}
	}
	return out
}

// UniformTTLs draws n remaining-TTL values uniform on [0, maxTTL] seconds —
// the Figure 6 ground truth distribution.
func UniformTTLs(n, maxTTL int, seed int64) []time.Duration {
	rng := rand.New(rand.NewSource(seed))
	out := make([]time.Duration, n)
	for i := range out {
		out[i] = time.Duration(rng.Intn(maxTTL+1)) * time.Second
	}
	return out
}
