package dnsres

import (
	"fmt"
	"math/rand"
	"time"

	"dnstime/internal/dnswire"
	"dnstime/internal/ipv4"
	"dnstime/internal/simnet"
)

// Stub is a minimal DNS stub resolver for hosts that query a recursive
// resolver over the simulated network: NTP clients, SMTP servers, web
// clients and the cache-snooping scanner all use it.
type Stub struct {
	host     *simnet.Host
	resolver ipv4.Addr
	rng      *rand.Rand
	// Timeout bounds each query (default 3 s).
	Timeout time.Duration

	// dec and rxMsg are the response-decode scratch. The message handed to
	// a Lookup callback is valid only during that callback: every consumer
	// (LookupA, snooping scans) extracts what it keeps into fresh values
	// before returning, and handlers never nest on the single-threaded
	// event loop.
	dec   dnswire.Decoder
	rxMsg dnswire.Message
}

// NewStub returns a stub that queries resolver from host.
func NewStub(host *simnet.Host, resolver ipv4.Addr, seed int64) *Stub {
	return &Stub{
		host:     host,
		resolver: resolver,
		rng:      rand.New(rand.NewSource(seed)),
		Timeout:  3 * time.Second,
	}
}

// Resolver returns the upstream resolver address.
func (s *Stub) Resolver() ipv4.Addr { return s.resolver }

// SetResolver repoints the stub (used when reconfiguring clients).
func (s *Stub) SetResolver(a ipv4.Addr) { s.resolver = a }

// Lookup sends one query and calls done with the full response message.
// rd=false performs a cache-snooping (non-recursive) query. The message is
// the stub's decode scratch: it is valid only for the duration of the
// callback, which must copy anything it keeps (decoded names are shared
// immutable strings and safe to retain as-is).
func (s *Stub) Lookup(name string, qtype dnswire.Type, rd bool, done func(*dnswire.Message, error)) {
	name = dnswire.CanonicalName(name)
	txid := uint16(s.rng.Intn(1 << 16))
	var port uint16
	var timer interface{ Stop() bool }
	handler := func(src ipv4.Addr, srcPort uint16, payload []byte) {
		if src != s.resolver || srcPort != DNSPort {
			return
		}
		m := &s.rxMsg
		if err := s.dec.UnmarshalInto(m, payload); err != nil || !m.Header.QR || m.Header.ID != txid {
			return
		}
		timer.Stop()
		s.host.UnhandleUDP(port)
		done(m, nil)
	}
	for {
		port = uint16(1024 + s.rng.Intn(64512))
		if port == DNSPort {
			continue
		}
		if err := s.host.HandleUDP(port, handler); err == nil {
			break
		}
	}
	timeout := s.Timeout
	if timeout == 0 {
		timeout = 3 * time.Second
	}
	timer = s.host.Clock().Schedule(timeout, func() {
		s.host.UnhandleUDP(port)
		done(nil, fmt.Errorf("%w: %s %s @%s", ErrTimeout, name, qtype, s.resolver))
	})
	q := dnswire.NewQuery(txid, name, qtype, rd)
	wire, err := q.Marshal()
	if err != nil {
		timer.Stop()
		s.host.UnhandleUDP(port)
		done(nil, err)
		return
	}
	if _, err := s.host.SendUDP(s.resolver, port, DNSPort, wire); err != nil {
		timer.Stop()
		s.host.UnhandleUDP(port)
		done(nil, err)
	}
}

// LookupA resolves A records for name recursively, reporting the addresses
// and the (minimum) answer TTL in seconds.
func (s *Stub) LookupA(name string, done func(addrs []ipv4.Addr, ttl uint32, err error)) {
	s.Lookup(name, dnswire.TypeA, true, func(m *dnswire.Message, err error) {
		if err != nil {
			done(nil, 0, err)
			return
		}
		switch m.Header.RCode {
		case dnswire.RCodeNoError:
		case dnswire.RCodeNXDomain:
			done(nil, 0, fmt.Errorf("%w: %s", ErrNXDomain, name))
			return
		default:
			done(nil, 0, fmt.Errorf("%w: rcode %d", ErrServFail, m.Header.RCode))
			return
		}
		addrs := m.AddrsInAnswer(name)
		if len(addrs) == 0 {
			done(nil, 0, fmt.Errorf("%w: empty answer for %s", ErrServFail, name))
			return
		}
		ttl := ^uint32(0)
		for _, rr := range m.Answers {
			if rr.Type == dnswire.TypeA && rr.TTL < ttl {
				ttl = rr.TTL
			}
		}
		done(addrs, ttl, nil)
	})
}
