// Package dnsres implements a recursive caching DNS resolver bound to a
// simnet host — the victim of the cache-poisoning attack. It models the
// post-Kaminsky defences the attack bypasses (source-port and TXID
// randomisation per RFC 5452), TTL-driven caching, RD=0 cache-snooping
// semantics used by the Section VIII measurements, optional DNSSEC
// validation, and configurable acceptance of fragmented responses.
package dnsres

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"time"

	"dnstime/internal/dnsauth"
	"dnstime/internal/dnswire"
	"dnstime/internal/ipv4"
	"dnstime/internal/simclock"
	"dnstime/internal/simnet"
)

// DNSPort is the well-known DNS UDP port.
const DNSPort = 53

// Errors surfaced to lookup callers.
var (
	ErrTimeout     = errors.New("dnsres: query timed out")
	ErrServFail    = errors.New("dnsres: upstream returned SERVFAIL")
	ErrNXDomain    = errors.New("dnsres: no such domain")
	ErrBogusDNSSEC = errors.New("dnsres: DNSSEC validation failed")
)

// Config tunes resolver behaviour.
type Config struct {
	// Delegations maps zone apexes to authoritative nameserver addresses.
	// The most specific suffix match wins.
	Delegations map[string]ipv4.Addr
	// ValidateDNSSEC rejects answers carrying bogus RRSIGs and sets the AD
	// bit on validated answers. Unsigned answers still pass (as on the real
	// Internet, where pool.ntp.org is unsigned — the attack's enabler).
	ValidateDNSSEC bool
	// QueryTimeout bounds each upstream round trip (default 2 s).
	QueryTimeout time.Duration
	// Retries is the number of additional attempts after a timeout
	// (default 1).
	Retries int
	// RandSeed seeds port/TXID randomisation (deterministic per seed).
	RandSeed int64
	// MinTTL clamps cached TTLs from below (default 0).
	MinTTL time.Duration
}

// CacheEntry is one cached RRset.
type CacheEntry struct {
	RRs      []dnswire.RR
	Inserted time.Time
	Expires  time.Time
}

// Stats counts resolver activity.
type Stats struct {
	ClientQueries   int
	CacheHits       int
	CacheMisses     int
	UpstreamQueries int
	Poisoned        int // answers accepted whose TXID/port matched but came via fragments (diagnostic; set by tests)
	ValidationFails int
}

type cacheKey struct {
	name  string
	qtype dnswire.Type
}

// Resolver is a recursive caching resolver.
type Resolver struct {
	host  *simnet.Host
	clock *simclock.Clock
	cfg   Config
	rng   *rand.Rand
	cache map[cacheKey]CacheEntry
	stats Stats

	// dec and rxMsg are the upstream-response decode scratch: the handler
	// fully consumes the message before returning (acceptAnswer copies the
	// RR values it keeps), and packet deliveries never nest, so one reused
	// message absorbs the attacker's response floods without allocating.
	dec   dnswire.Decoder
	rxMsg dnswire.Message

	// cliDec and cliMsg decode client queries; handleClient copies the
	// question value out before any asynchronous work, so the scratch is
	// free for the next arrival. replyBuf is the response encode buffer —
	// a reply encodes and sends in one step (SendUDP copies), so even
	// replies fired from asynchronous lookup callbacks can share it.
	cliDec   dnswire.Decoder
	cliMsg   dnswire.Message
	replyBuf []byte
}

// New binds a resolver to port 53 of host.
func New(host *simnet.Host, cfg Config) (*Resolver, error) {
	if cfg.QueryTimeout == 0 {
		cfg.QueryTimeout = 2 * time.Second
	}
	if cfg.Retries == 0 {
		cfg.Retries = 1
	}
	r := &Resolver{
		host:  host,
		clock: host.Clock(),
		cfg:   cfg,
		rng:   rand.New(rand.NewSource(cfg.RandSeed)),
		cache: make(map[cacheKey]CacheEntry),
	}
	if err := host.HandleUDP(DNSPort, r.handleClient); err != nil {
		return nil, fmt.Errorf("dnsres: bind: %w", err)
	}
	return r, nil
}

// Reset re-binds the resolver to its (freshly host.Reset) host under a new
// configuration, restoring the observable state New produces: empty cache,
// zero stats, RNG stream identical to rand.New(rand.NewSource(RandSeed)).
// Decode scratch — including the decoders' name-intern tables, which hold
// only immutable content-addressed strings — and map storage are retained.
func (r *Resolver) Reset(cfg Config) error {
	if cfg.QueryTimeout == 0 {
		cfg.QueryTimeout = 2 * time.Second
	}
	if cfg.Retries == 0 {
		cfg.Retries = 1
	}
	r.cfg = cfg
	r.rng.Seed(cfg.RandSeed)
	clear(r.cache)
	r.stats = Stats{}
	if err := r.host.HandleUDP(DNSPort, r.handleClient); err != nil {
		return fmt.Errorf("dnsres: bind: %w", err)
	}
	return nil
}

// Host returns the resolver's simnet host.
func (r *Resolver) Host() *simnet.Host { return r.host }

// Addr returns the resolver's address.
func (r *Resolver) Addr() ipv4.Addr { return r.host.Addr() }

// Stats returns a snapshot of resolver counters.
func (r *Resolver) Stats() Stats { return r.stats }

// CacheLen reports the number of live cache entries.
func (r *Resolver) CacheLen() int {
	n := 0
	now := r.clock.Now()
	for _, e := range r.cache {
		if now.Before(e.Expires) {
			n++
		}
	}
	return n
}

// Lookup resolves (name, qtype) and calls done with the answer RRs.
// Answers come from cache when fresh, otherwise from the delegated
// authoritative server with a randomised source port and TXID.
func (r *Resolver) Lookup(name string, qtype dnswire.Type, done func([]dnswire.RR, error)) {
	name = dnswire.CanonicalName(name)
	if rrs, ok := r.cached(name, qtype); ok {
		r.stats.CacheHits++
		done(rrs, nil)
		return
	}
	r.stats.CacheMisses++
	server, ok := r.delegationFor(name)
	if !ok {
		done(nil, fmt.Errorf("%w: no delegation for %q", ErrServFail, name))
		return
	}
	r.queryUpstream(server, name, qtype, r.cfg.Retries, func(m *dnswire.Message, err error) {
		if err != nil {
			done(nil, err)
			return
		}
		rrs := r.acceptAnswer(name, qtype, m, done)
		if rrs == nil {
			return
		}
		done(rrs, nil)
	})
}

// acceptAnswer validates and caches a response; returns the answer RRs or
// nil after invoking done with an error.
func (r *Resolver) acceptAnswer(name string, qtype dnswire.Type, m *dnswire.Message, done func([]dnswire.RR, error)) []dnswire.RR {
	if m.Header.RCode == dnswire.RCodeNXDomain {
		done(nil, fmt.Errorf("%w: %s", ErrNXDomain, name))
		return nil
	}
	if m.Header.RCode != dnswire.RCodeNoError {
		done(nil, fmt.Errorf("%w: rcode %d", ErrServFail, m.Header.RCode))
		return nil
	}
	if r.cfg.ValidateDNSSEC {
		if err := validateAnswer(m.Answers); err != nil {
			r.stats.ValidationFails++
			done(nil, err)
			return nil
		}
	}
	var rrs []dnswire.RR
	for _, rr := range m.Answers {
		if rr.Type == dnswire.TypeRRSIG {
			continue
		}
		rrs = append(rrs, rr)
	}
	if len(rrs) == 0 {
		done(nil, fmt.Errorf("%w: empty answer", ErrServFail))
		return nil
	}
	r.insert(name, qtype, rrs)
	return rrs
}

// validateAnswer checks the RRSIG marker against a recomputed RRset hash:
// unsigned answers pass (as on the real Internet, where pool.ntp.org is
// unsigned); signed answers must carry a valid marker whose hash matches
// the records — which the fragment attack's rdata replacement breaks.
func validateAnswer(answers []dnswire.RR) error {
	var marker string
	for _, rr := range answers {
		if rr.Type == dnswire.TypeRRSIG {
			marker = string(rr.Raw)
		}
	}
	if marker == "" {
		return nil // unsigned
	}
	if !strings.HasPrefix(marker, dnsauth.SigValid) {
		return fmt.Errorf("%w: bogus signature", ErrBogusDNSSEC)
	}
	want := strings.TrimPrefix(marker, dnsauth.SigValid)
	if got := dnsauth.SignRRSet(answers); got != want {
		return fmt.Errorf("%w: signature does not cover the answer data", ErrBogusDNSSEC)
	}
	return nil
}

// cached returns fresh RRs with decremented TTLs.
func (r *Resolver) cached(name string, qtype dnswire.Type) ([]dnswire.RR, bool) {
	e, ok := r.cache[cacheKey{name, qtype}]
	if !ok {
		return nil, false
	}
	now := r.clock.Now()
	if !now.Before(e.Expires) {
		delete(r.cache, cacheKey{name, qtype})
		return nil, false
	}
	remaining := uint32(e.Expires.Sub(now) / time.Second)
	out := make([]dnswire.RR, len(e.RRs))
	copy(out, e.RRs)
	for i := range out {
		out[i].TTL = remaining
	}
	return out, true
}

// insert caches an RRset keyed by (name, qtype) using the smallest TTL.
func (r *Resolver) insert(name string, qtype dnswire.Type, rrs []dnswire.RR) {
	minTTL := rrs[0].TTL
	for _, rr := range rrs {
		if rr.TTL < minTTL {
			minTTL = rr.TTL
		}
	}
	ttl := time.Duration(minTTL) * time.Second
	if ttl < r.cfg.MinTTL {
		ttl = r.cfg.MinTTL
	}
	now := r.clock.Now()
	r.cache[cacheKey{name, qtype}] = CacheEntry{
		RRs:      append([]dnswire.RR(nil), rrs...),
		Inserted: now,
		Expires:  now.Add(ttl),
	}
}

// Peek returns the live cache entry for (name, qtype) without refreshing.
func (r *Resolver) Peek(name string, qtype dnswire.Type) (CacheEntry, bool) {
	e, ok := r.cache[cacheKey{dnswire.CanonicalName(name), qtype}]
	if !ok || !r.clock.Now().Before(e.Expires) {
		return CacheEntry{}, false
	}
	return e, true
}

// OverrideCache force-installs a cache entry, representing the outcome of a
// successful poisoning. The packet-level fragment-replacement pipeline is
// exercised end-to-end in internal/attack; experiments that need poisoning
// outcomes the fragment vector cannot shape byte-for-byte (notably the
// Chronos attack's 89-address response, §VI-C — the answer *count* lives in
// the first fragment, which the off-path attacker does not control) use
// this hook and document the substitution in EXPERIMENTS.md.
func (r *Resolver) OverrideCache(name string, qtype dnswire.Type, rrs []dnswire.RR, ttl time.Duration) {
	now := r.clock.Now()
	r.cache[cacheKey{dnswire.CanonicalName(name), qtype}] = CacheEntry{
		RRs:      append([]dnswire.RR(nil), rrs...),
		Inserted: now,
		Expires:  now.Add(ttl),
	}
}

// Evict removes a cache entry (tests and cache-eviction experiments).
func (r *Resolver) Evict(name string, qtype dnswire.Type) {
	delete(r.cache, cacheKey{dnswire.CanonicalName(name), qtype})
}

// delegationFor finds the authoritative server for name by longest-suffix
// match; "." (or "") is the default.
func (r *Resolver) delegationFor(name string) (ipv4.Addr, bool) {
	best := ""
	var addr ipv4.Addr
	found := false
	for apex, a := range r.cfg.Delegations {
		apex = dnswire.CanonicalName(apex)
		if apex == "" || name == apex || hasSuffixLabel(name, apex) {
			if len(apex) >= len(best) && (apex != "" || !found) {
				if apex == "" && best != "" {
					continue
				}
				best, addr, found = apex, a, true
			}
		}
	}
	return addr, found
}

func hasSuffixLabel(name, apex string) bool {
	return len(name) > len(apex) && name[len(name)-len(apex)-1] == '.' &&
		name[len(name)-len(apex):] == apex
}

// queryUpstream sends one upstream query with fresh random port and TXID,
// retrying on timeout.
func (r *Resolver) queryUpstream(server ipv4.Addr, name string, qtype dnswire.Type, retries int, done func(*dnswire.Message, error)) {
	r.stats.UpstreamQueries++
	txid := uint16(r.rng.Intn(1 << 16))
	var timer *simclock.Timer
	var port uint16
	handler := func(src ipv4.Addr, srcPort uint16, payload []byte) {
		// Challenge-response checks (RFC 5452): source address, source
		// port (implicit: this handler is bound to the random port), TXID
		// and question must all match. The fragmentation attack defeats
		// these because the real first fragment carries all of them.
		if src != server || srcPort != DNSPort {
			return
		}
		m := &r.rxMsg
		if err := r.dec.UnmarshalInto(m, payload); err != nil || !m.Header.QR || m.Header.ID != txid {
			return
		}
		if len(m.Questions) != 1 || dnswire.CanonicalName(m.Questions[0].Name) != name || m.Questions[0].Type != qtype {
			return
		}
		timer.Stop()
		r.host.UnhandleUDP(port)
		done(m, nil)
	}
	// Random source port in [1024, 65535]; re-draw on collision.
	for {
		port = uint16(1024 + r.rng.Intn(64512))
		if port == DNSPort {
			continue
		}
		if err := r.host.HandleUDP(port, handler); err == nil {
			break
		}
	}
	timer = r.clock.Schedule(r.cfg.QueryTimeout, func() {
		r.host.UnhandleUDP(port)
		if retries > 0 {
			r.queryUpstream(server, name, qtype, retries-1, done)
			return
		}
		done(nil, fmt.Errorf("%w: %s %s @%s", ErrTimeout, name, qtype, server))
	})
	q := dnswire.NewQuery(txid, name, qtype, false)
	wire, err := q.Marshal()
	if err != nil {
		timer.Stop()
		r.host.UnhandleUDP(port)
		done(nil, err)
		return
	}
	if _, err := r.host.SendUDP(server, port, DNSPort, wire); err != nil {
		timer.Stop()
		r.host.UnhandleUDP(port)
		done(nil, err)
	}
}

// handleClient serves stub queries arriving on port 53. RD=1 queries are
// resolved recursively; RD=0 queries are answered from cache only — the
// semantics the cache-snooping measurement (Section VIII-A) relies on.
func (r *Resolver) handleClient(src ipv4.Addr, srcPort uint16, payload []byte) {
	q := &r.cliMsg
	if err := r.cliDec.UnmarshalInto(q, payload); err != nil || q.Header.QR || len(q.Questions) != 1 {
		return
	}
	r.stats.ClientQueries++
	// Copy the header bits and question value out of the decode scratch:
	// the reply may fire from an asynchronous lookup callback, long after
	// the scratch has been reused (the question's name is interned, so the
	// value copy retains nothing from the wire buffer).
	txid, rd := q.Header.ID, q.Header.RD
	question := q.Questions[0]
	name := dnswire.CanonicalName(question.Name)
	qtype := question.Type

	reply := func(rrs []dnswire.RR, rcode dnswire.RCode) {
		resp := dnswire.Message{Header: dnswire.Header{ID: txid, QR: true, RD: rd}}
		resp.Questions = append(resp.Questions, question)
		resp.Header.RA = true
		resp.Header.RCode = rcode
		resp.Header.AD = r.cfg.ValidateDNSSEC && rcode == dnswire.RCodeNoError && len(rrs) > 0
		resp.Answers = rrs
		wire, err := resp.AppendMarshal(r.replyBuf[:0])
		if err != nil {
			return
		}
		r.replyBuf = wire
		_, _ = r.host.SendUDP(src, DNSPort, srcPort, wire)
	}

	if !rd {
		if rrs, ok := r.cached(name, qtype); ok {
			r.stats.CacheHits++
			reply(rrs, dnswire.RCodeNoError)
		} else {
			// Not cached and recursion not desired: empty NOERROR.
			reply(nil, dnswire.RCodeNoError)
		}
		return
	}

	r.Lookup(name, qtype, func(rrs []dnswire.RR, err error) {
		switch {
		case errors.Is(err, ErrNXDomain):
			reply(nil, dnswire.RCodeNXDomain)
		case err != nil:
			reply(nil, dnswire.RCodeServFail)
		default:
			reply(rrs, dnswire.RCodeNoError)
		}
	})
}
