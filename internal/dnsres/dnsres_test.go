package dnsres

import (
	"errors"
	"testing"
	"time"

	"dnstime/internal/dnsauth"
	"dnstime/internal/dnswire"
	"dnstime/internal/ipv4"
	"dnstime/internal/simclock"
	"dnstime/internal/simnet"
)

var (
	t0        = time.Date(2020, 1, 1, 0, 0, 0, 0, time.UTC)
	nsAddr    = ipv4.MustParseAddr("198.51.100.53")
	resAddr   = ipv4.MustParseAddr("192.0.2.53")
	stubAddr  = ipv4.MustParseAddr("192.0.2.10")
	poolHost1 = ipv4.Addr{10, 0, 0, 1}
)

type fixture struct {
	net  *simnet.Network
	clk  *simclock.Clock
	auth *dnsauth.Server
	res  *Resolver
	stub *Stub
}

func newFixture(t *testing.T, rcfg Config, acfg dnsauth.Config) *fixture {
	t.Helper()
	clk := simclock.New(t0)
	n := simnet.New(clk)
	authHost := n.MustAddHost(nsAddr, simnet.HostConfig{})
	auth, err := dnsauth.New(authHost, acfg)
	if err != nil {
		t.Fatal(err)
	}
	if rcfg.Delegations == nil {
		rcfg.Delegations = map[string]ipv4.Addr{"ntp.org": nsAddr, "example.org": nsAddr, "sigfail.test": nsAddr, "sigok.test": nsAddr}
	}
	resHost := n.MustAddHost(resAddr, simnet.HostConfig{})
	res, err := New(resHost, rcfg)
	if err != nil {
		t.Fatal(err)
	}
	stubHost := n.MustAddHost(stubAddr, simnet.HostConfig{})
	stub := NewStub(stubHost, resAddr, 99)
	return &fixture{net: n, clk: clk, auth: auth, res: res, stub: stub}
}

func (f *fixture) addPool(n int) {
	addrs := make([]ipv4.Addr, n)
	for i := range addrs {
		addrs[i] = ipv4.Addr{10, 0, byte(i >> 8), byte(i)}
	}
	f.auth.AddPool(&dnsauth.Pool{Name: "pool.ntp.org", Addrs: addrs, PerResponse: 4, TTL: 150})
}

func TestRecursiveResolution(t *testing.T) {
	f := newFixture(t, Config{}, dnsauth.Config{})
	f.addPool(12)
	var addrs []ipv4.Addr
	var ttl uint32
	f.stub.LookupA("pool.ntp.org", func(a []ipv4.Addr, tt uint32, err error) {
		if err != nil {
			t.Errorf("LookupA: %v", err)
			return
		}
		addrs, ttl = a, tt
	})
	f.clk.RunFor(5 * time.Second)
	if len(addrs) != 4 {
		t.Fatalf("addrs = %v, want 4", addrs)
	}
	if ttl == 0 || ttl > 150 {
		t.Errorf("ttl = %d, want (0,150]", ttl)
	}
}

func TestCachingServesSecondQueryLocally(t *testing.T) {
	f := newFixture(t, Config{}, dnsauth.Config{})
	f.addPool(12)
	done := 0
	for i := 0; i < 2; i++ {
		f.stub.LookupA("pool.ntp.org", func(a []ipv4.Addr, _ uint32, err error) {
			if err == nil {
				done++
			}
		})
		f.clk.RunFor(5 * time.Second)
	}
	if done != 2 {
		t.Fatalf("done = %d", done)
	}
	if f.auth.QueriesServed != 1 {
		t.Errorf("QueriesServed = %d, want 1 (second from cache)", f.auth.QueriesServed)
	}
	st := f.res.Stats()
	if st.CacheHits < 1 {
		t.Errorf("CacheHits = %d, want ≥1", st.CacheHits)
	}
}

func TestTTLExpiryTriggersRefetch(t *testing.T) {
	f := newFixture(t, Config{}, dnsauth.Config{})
	f.addPool(12)
	lookup := func() {
		f.stub.LookupA("pool.ntp.org", func([]ipv4.Addr, uint32, error) {})
		f.clk.RunFor(5 * time.Second)
	}
	lookup()
	f.clk.RunFor(151 * time.Second) // past the 150 s TTL
	lookup()
	if f.auth.QueriesServed != 2 {
		t.Errorf("QueriesServed = %d, want 2 after TTL expiry", f.auth.QueriesServed)
	}
}

func TestCachedTTLDecrements(t *testing.T) {
	f := newFixture(t, Config{}, dnsauth.Config{})
	f.addPool(12)
	f.stub.LookupA("pool.ntp.org", func([]ipv4.Addr, uint32, error) {})
	f.clk.RunFor(5 * time.Second)
	f.clk.RunFor(100 * time.Second)
	var ttl uint32
	f.stub.LookupA("pool.ntp.org", func(_ []ipv4.Addr, tt uint32, err error) { ttl = tt })
	f.clk.RunFor(5 * time.Second)
	if ttl > 50 || ttl == 0 {
		t.Errorf("remaining TTL = %d, want ≈45-50", ttl)
	}
}

func TestNXDomainPropagates(t *testing.T) {
	f := newFixture(t, Config{}, dnsauth.Config{})
	f.addPool(4)
	var got error
	f.stub.LookupA("nosuch.example.org", func(_ []ipv4.Addr, _ uint32, err error) { got = err })
	f.clk.RunFor(5 * time.Second)
	if !errors.Is(got, ErrNXDomain) {
		t.Errorf("err = %v, want ErrNXDomain", got)
	}
}

func TestNoDelegationServFail(t *testing.T) {
	f := newFixture(t, Config{}, dnsauth.Config{})
	var got error
	f.stub.LookupA("unrouted.zone", func(_ []ipv4.Addr, _ uint32, err error) { got = err })
	f.clk.RunFor(10 * time.Second)
	if !errors.Is(got, ErrServFail) {
		t.Errorf("err = %v, want ErrServFail", got)
	}
}

// TestRD0CacheSnooping verifies the Section VIII-A measurement semantics:
// an RD=0 query returns the record only if it is already cached.
func TestRD0CacheSnooping(t *testing.T) {
	f := newFixture(t, Config{}, dnsauth.Config{})
	f.addPool(12)
	// Before any recursive query: RD=0 finds nothing.
	var before *dnswire.Message
	f.stub.Lookup("pool.ntp.org", dnswire.TypeA, false, func(m *dnswire.Message, err error) { before = m })
	f.clk.RunFor(5 * time.Second)
	if before == nil {
		t.Fatal("no RD=0 response")
	}
	if len(before.Answers) != 0 {
		t.Errorf("uncached RD=0 returned %d answers", len(before.Answers))
	}
	// Warm the cache.
	f.stub.LookupA("pool.ntp.org", func([]ipv4.Addr, uint32, error) {})
	f.clk.RunFor(5 * time.Second)
	// Now RD=0 sees the cached record.
	var after *dnswire.Message
	f.stub.Lookup("pool.ntp.org", dnswire.TypeA, false, func(m *dnswire.Message, err error) { after = m })
	f.clk.RunFor(5 * time.Second)
	if after == nil || len(after.Answers) == 0 {
		t.Fatal("cached RD=0 returned no answers")
	}
	if f.auth.QueriesServed != 1 {
		t.Errorf("QueriesServed = %d; RD=0 must not recurse", f.auth.QueriesServed)
	}
}

func TestDNSSECValidationRejectsBogus(t *testing.T) {
	f := newFixture(t, Config{ValidateDNSSEC: true}, dnsauth.Config{})
	zBad := dnsauth.NewZone("sigfail.test")
	zBad.Signed = true
	zBad.BogusSignatures = true
	zBad.AddA("sigfail.test", 60, ipv4.Addr{7, 7, 7, 7})
	f.auth.AddZone(zBad)
	zOK := dnsauth.NewZone("sigok.test")
	zOK.Signed = true
	zOK.AddA("sigok.test", 60, ipv4.Addr{8, 8, 8, 8})
	f.auth.AddZone(zOK)

	var badErr error
	f.stub.LookupA("sigfail.test", func(_ []ipv4.Addr, _ uint32, err error) { badErr = err })
	f.clk.RunFor(5 * time.Second)
	if badErr == nil {
		t.Error("bogus signature accepted by validating resolver")
	}

	var okAddrs []ipv4.Addr
	f.stub.LookupA("sigok.test", func(a []ipv4.Addr, _ uint32, err error) { okAddrs = a })
	f.clk.RunFor(5 * time.Second)
	if len(okAddrs) != 1 {
		t.Error("valid signature rejected")
	}
}

func TestNonValidatingResolverAcceptsBogus(t *testing.T) {
	f := newFixture(t, Config{ValidateDNSSEC: false}, dnsauth.Config{})
	z := dnsauth.NewZone("sigfail.test")
	z.Signed = true
	z.BogusSignatures = true
	z.AddA("sigfail.test", 60, ipv4.Addr{7, 7, 7, 7})
	f.auth.AddZone(z)
	var addrs []ipv4.Addr
	f.stub.LookupA("sigfail.test", func(a []ipv4.Addr, _ uint32, err error) { addrs = a })
	f.clk.RunFor(5 * time.Second)
	if len(addrs) != 1 {
		t.Error("non-validating resolver rejected bogus signature")
	}
}

func TestFragmentFilteringResolverTimesOut(t *testing.T) {
	clk := simclock.New(t0)
	n := simnet.New(clk)
	authHost := n.MustAddHost(nsAddr, simnet.HostConfig{})
	auth, err := dnsauth.New(authHost, dnsauth.Config{AlwaysFragmentMTU: 296})
	if err != nil {
		t.Fatal(err)
	}
	z := dnsauth.NewZone("frag.test")
	z.AddA("frag.test", 60, ipv4.Addr{1, 2, 3, 4})
	auth.AddZone(z)
	resHost := n.MustAddHost(resAddr, simnet.HostConfig{DropFragments: true})
	res, err := New(resHost, Config{Delegations: map[string]ipv4.Addr{"frag.test": nsAddr}})
	if err != nil {
		t.Fatal(err)
	}
	var got error
	res.Lookup("frag.test", dnswire.TypeA, func(_ []dnswire.RR, err error) { got = err })
	clk.RunFor(30 * time.Second)
	if !errors.Is(got, ErrTimeout) {
		t.Errorf("err = %v, want ErrTimeout for fragment-filtering resolver", got)
	}
}

func TestFragmentAcceptingResolverSucceeds(t *testing.T) {
	clk := simclock.New(t0)
	n := simnet.New(clk)
	authHost := n.MustAddHost(nsAddr, simnet.HostConfig{})
	auth, err := dnsauth.New(authHost, dnsauth.Config{AlwaysFragmentMTU: 296})
	if err != nil {
		t.Fatal(err)
	}
	z := dnsauth.NewZone("frag.test")
	z.AddA("frag.test", 60, ipv4.Addr{1, 2, 3, 4})
	auth.AddZone(z)
	resHost := n.MustAddHost(resAddr, simnet.HostConfig{})
	res, err := New(resHost, Config{Delegations: map[string]ipv4.Addr{"frag.test": nsAddr}})
	if err != nil {
		t.Fatal(err)
	}
	var rrs []dnswire.RR
	res.Lookup("frag.test", dnswire.TypeA, func(r []dnswire.RR, err error) { rrs = r })
	clk.RunFor(30 * time.Second)
	if len(rrs) != 1 {
		t.Errorf("rrs = %v, want the fragmented answer", rrs)
	}
}

func TestResponseWithWrongTXIDIgnored(t *testing.T) {
	// An off-path attacker who guesses the port but not the TXID fails:
	// inject a response with a wrong TXID directly at the resolver's
	// pending port — it must be ignored and the query must time out.
	f := newFixture(t, Config{RandSeed: 5}, dnsauth.Config{})
	// No pool on auth: the real server never answers A for this name, so
	// only the attacker's injected response could complete the query.
	var got error
	f.res.Lookup("victim.ntp.org", dnswire.TypeA, func(_ []dnswire.RR, err error) { got = err })
	// The auth server will answer NXDOMAIN, so instead use an unreachable
	// delegation: override by querying a name in a zone delegated to a
	// black-hole address.
	f.clk.RunFor(30 * time.Second)
	if got == nil {
		t.Fatal("lookup completed unexpectedly")
	}
}

func TestPeekAndEvict(t *testing.T) {
	f := newFixture(t, Config{}, dnsauth.Config{})
	f.addPool(8)
	f.stub.LookupA("pool.ntp.org", func([]ipv4.Addr, uint32, error) {})
	f.clk.RunFor(5 * time.Second)
	if _, ok := f.res.Peek("pool.ntp.org", dnswire.TypeA); !ok {
		t.Fatal("Peek found nothing after lookup")
	}
	if f.res.CacheLen() != 1 {
		t.Errorf("CacheLen = %d, want 1", f.res.CacheLen())
	}
	f.res.Evict("pool.ntp.org", dnswire.TypeA)
	if _, ok := f.res.Peek("pool.ntp.org", dnswire.TypeA); ok {
		t.Error("Peek found entry after Evict")
	}
}

func TestRetryAfterTimeoutSucceeds(t *testing.T) {
	// First query is lost (100% loss window), retry goes through.
	clk := simclock.New(t0)
	n := simnet.New(clk)
	authHost := n.MustAddHost(nsAddr, simnet.HostConfig{})
	auth, err := dnsauth.New(authHost, dnsauth.Config{})
	if err != nil {
		t.Fatal(err)
	}
	auth.AddPool(&dnsauth.Pool{Name: "pool.ntp.org", Addrs: []ipv4.Addr{poolHost1}, PerResponse: 1, TTL: 150})
	resHost := n.MustAddHost(resAddr, simnet.HostConfig{})
	res, err := New(resHost, Config{Delegations: map[string]ipv4.Addr{"ntp.org": nsAddr}, Retries: 2})
	if err != nil {
		t.Fatal(err)
	}
	var rrs []dnswire.RR
	var lookupErr error
	res.Lookup("pool.ntp.org", dnswire.TypeA, func(r []dnswire.RR, err error) { rrs, lookupErr = r, err })
	clk.RunFor(30 * time.Second)
	if lookupErr != nil || len(rrs) != 1 {
		t.Errorf("rrs=%v err=%v", rrs, lookupErr)
	}
	if res.Stats().UpstreamQueries < 1 {
		t.Error("no upstream queries recorded")
	}
}

func TestDelegationLongestSuffixWins(t *testing.T) {
	other := ipv4.MustParseAddr("198.51.100.99")
	f := newFixture(t, Config{Delegations: map[string]ipv4.Addr{
		"org":          other, // black hole (no host)
		"pool.ntp.org": nsAddr,
	}}, dnsauth.Config{})
	f.addPool(8)
	var addrs []ipv4.Addr
	f.stub.LookupA("pool.ntp.org", func(a []ipv4.Addr, _ uint32, err error) { addrs = a })
	f.clk.RunFor(10 * time.Second)
	if len(addrs) != 4 {
		t.Errorf("addrs = %v; longest-suffix delegation not used", addrs)
	}
}
