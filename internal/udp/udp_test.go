package udp

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
)

var (
	srcAddr = [4]byte{192, 0, 2, 1}
	dstAddr = [4]byte{198, 51, 100, 7}
)

func TestMarshalUnmarshalRoundTrip(t *testing.T) {
	d := &Datagram{
		Header:  Header{SrcPort: 53, DstPort: 33333, Checksum: 0xbeef},
		Payload: []byte("hello dns"),
	}
	b := d.Marshal()
	got, err := Unmarshal(b)
	if err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	if got.Header.SrcPort != 53 || got.Header.DstPort != 33333 {
		t.Errorf("ports = %d,%d want 53,33333", got.Header.SrcPort, got.Header.DstPort)
	}
	if got.Header.Length != uint16(HeaderLen+len(d.Payload)) {
		t.Errorf("Length = %d, want %d", got.Header.Length, HeaderLen+len(d.Payload))
	}
	if !bytes.Equal(got.Payload, d.Payload) {
		t.Errorf("payload = %q, want %q", got.Payload, d.Payload)
	}
}

func TestUnmarshalShort(t *testing.T) {
	if _, err := Unmarshal([]byte{1, 2, 3}); !errors.Is(err, ErrShortDatagram) {
		t.Errorf("err = %v, want ErrShortDatagram", err)
	}
}

func TestUnmarshalBadLength(t *testing.T) {
	d := &Datagram{Payload: []byte("x")}
	b := d.Marshal()
	b[5] = 200 // corrupt length
	if _, err := Unmarshal(b); !errors.Is(err, ErrBadLength) {
		t.Errorf("err = %v, want ErrBadLength", err)
	}
}

func TestSum1KnownVector(t *testing.T) {
	// RFC 1071 example: 0x0001 + 0xf203 + 0xf4f5 + 0xf6f7 = 0xddf2 (with carries).
	b := []byte{0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7}
	if got := Sum1(b); got != 0xddf2 {
		t.Errorf("Sum1 = %#04x, want 0xddf2", got)
	}
}

func TestSum1OddLengthPadsZero(t *testing.T) {
	if got, want := Sum1([]byte{0x12}), uint16(0x1200); got != want {
		t.Errorf("Sum1 = %#04x, want %#04x", got, want)
	}
}

func TestChecksumVerifyRoundTrip(t *testing.T) {
	d := &Datagram{
		Header:  Header{SrcPort: 53, DstPort: 1234},
		Payload: []byte("a dns response payload"),
	}
	wire := WithChecksum(srcAddr, dstAddr, d.Marshal())
	if err := Verify(srcAddr, dstAddr, wire); err != nil {
		t.Fatalf("Verify: %v", err)
	}
}

func TestVerifyDetectsCorruption(t *testing.T) {
	d := &Datagram{Header: Header{SrcPort: 53, DstPort: 1234}, Payload: []byte("payload")}
	wire := WithChecksum(srcAddr, dstAddr, d.Marshal())
	wire[len(wire)-1] ^= 0xff
	if err := Verify(srcAddr, dstAddr, wire); !errors.Is(err, ErrBadChecksum) {
		t.Errorf("err = %v, want ErrBadChecksum", err)
	}
}

func TestVerifyDetectsWrongPseudoHeader(t *testing.T) {
	d := &Datagram{Header: Header{SrcPort: 53, DstPort: 1234}, Payload: []byte("payload")}
	wire := WithChecksum(srcAddr, dstAddr, d.Marshal())
	other := [4]byte{10, 0, 0, 1}
	if err := Verify(other, dstAddr, wire); !errors.Is(err, ErrBadChecksum) {
		t.Errorf("err = %v, want ErrBadChecksum", err)
	}
}

func TestZeroChecksumMeansUnchecked(t *testing.T) {
	d := &Datagram{Header: Header{SrcPort: 53, DstPort: 1234}, Payload: []byte("payload")}
	wire := d.Marshal() // checksum field left zero
	if err := Verify(srcAddr, dstAddr, wire); err != nil {
		t.Errorf("Verify with zero checksum: %v", err)
	}
}

// TestFixSumAttackScenario models the core of the Section III attack: the
// attacker swaps the second fragment's content but fixes slack bytes so the
// full reassembled datagram still passes UDP checksum verification.
func TestFixSumAttackScenario(t *testing.T) {
	// The real DNS response the nameserver sends, split at an 8-byte
	// boundary into frag1 (with UDP header) and frag2.
	realPayload := bytes.Repeat([]byte("real-ntp-server-address."), 4)
	d := &Datagram{Header: Header{SrcPort: 53, DstPort: 9999}, Payload: realPayload}
	wire := WithChecksum(srcAddr, dstAddr, d.Marshal())
	split := 48 // multiple of 8
	frag1 := wire[:split]
	frag2 := append([]byte(nil), wire[split:]...)

	// Attacker crafts a malicious second fragment of the same length with
	// two slack bytes near the end.
	evil := bytes.Repeat([]byte("evil-ntp-server-address."), len(frag2)/24+1)[:len(frag2)]
	slack := len(evil) - 2
	if slack%2 != 0 {
		slack--
	}
	if err := FixSum(frag2, evil, slack); err != nil {
		t.Fatalf("FixSum: %v", err)
	}

	// Victim reassembles frag1 + evil: checksum must still verify.
	reassembled := append(append([]byte(nil), frag1...), evil...)
	if err := Verify(srcAddr, dstAddr, reassembled); err != nil {
		t.Fatalf("reassembled spoofed datagram failed checksum: %v", err)
	}
}

func TestFixSumRejectsBadOffsets(t *testing.T) {
	orig := make([]byte, 16)
	mod := make([]byte, 16)
	if err := FixSum(orig, mod, 15); err == nil {
		t.Error("odd offset accepted")
	}
	if err := FixSum(orig, mod, 16); err == nil {
		t.Error("out-of-range offset accepted")
	}
	if err := FixSum(orig, mod, -2); err == nil {
		t.Error("negative offset accepted")
	}
}

// Property: FixSum always equalises the ones'-complement sums.
func TestPropertyFixSumEqualisesSums(t *testing.T) {
	f := func(a, b []byte) bool {
		if len(b) < 4 {
			return true
		}
		mod := append([]byte(nil), b...)
		slack := (len(mod) - 2) &^ 1
		if err := FixSum(a, mod, slack); err != nil {
			return false
		}
		// Sums must be equal modulo the two representations of zero.
		sa, sm := Sum1(a), Sum1(mod)
		return sa == sm || subOnes(sa, sm) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: checksum round-trips for arbitrary payloads.
func TestPropertyChecksumRoundTrip(t *testing.T) {
	f := func(payload []byte, sp, dp uint16) bool {
		d := &Datagram{Header: Header{SrcPort: sp, DstPort: dp}, Payload: payload}
		wire := WithChecksum(srcAddr, dstAddr, d.Marshal())
		return Verify(srcAddr, dstAddr, wire) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestOnesComplementArithmetic(t *testing.T) {
	tests := []struct {
		a, b, sum uint16
	}{
		{0x0000, 0x0000, 0x0000},
		{0xffff, 0x0001, 0x0001},
		{0x8000, 0x8000, 0x0001},
		{0x1234, 0x4321, 0x5555},
	}
	for _, tt := range tests {
		if got := addOnes(tt.a, tt.b); got != tt.sum {
			t.Errorf("addOnes(%#04x,%#04x) = %#04x, want %#04x", tt.a, tt.b, got, tt.sum)
		}
	}
	// subOnes inverts addOnes: (a+b)-b == a, where 0x0000 and 0xffff are the
	// two ones'-complement representations of zero.
	sameOnes := func(x, y uint16) bool {
		if x == y {
			return true
		}
		zero := func(v uint16) bool { return v == 0 || v == 0xffff }
		return zero(x) && zero(y)
	}
	for _, tt := range tests {
		s := addOnes(tt.a, tt.b)
		if d := subOnes(s, tt.b); !sameOnes(d, tt.a) {
			t.Errorf("subOnes(addOnes(%#04x,%#04x),%#04x) = %#04x", tt.a, tt.b, tt.b, d)
		}
	}
}
