// Package udp implements the UDP datagram wire format and the Internet
// ones'-complement checksum, including the checksum-fixing primitive used by
// the fragment-replacement attack (Section III of the paper): an off-path
// attacker that modifies the second IP fragment of a UDP datagram cannot
// change the checksum field (it lives in the first fragment), so it instead
// adjusts slack bytes in its spoofed fragment until the ones'-complement sum
// of the modified fragment equals that of the original.
package udp

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// HeaderLen is the length of a UDP header in bytes.
const HeaderLen = 8

// Errors returned by this package.
var (
	ErrShortDatagram = errors.New("udp: datagram shorter than header")
	ErrBadLength     = errors.New("udp: length field disagrees with payload")
	ErrBadChecksum   = errors.New("udp: checksum mismatch")
)

// Header is a UDP header.
type Header struct {
	SrcPort  uint16
	DstPort  uint16
	Length   uint16 // header + payload, octets
	Checksum uint16
}

// Datagram is a UDP datagram: header plus payload.
type Datagram struct {
	Header  Header
	Payload []byte
}

// Marshal encodes the datagram to wire format. The Length field is set from
// the payload; the Checksum field is written as-is (use ComputeChecksum or
// WithChecksum to fill it).
func (d *Datagram) Marshal() []byte {
	b := make([]byte, HeaderLen+len(d.Payload))
	binary.BigEndian.PutUint16(b[0:2], d.Header.SrcPort)
	binary.BigEndian.PutUint16(b[2:4], d.Header.DstPort)
	binary.BigEndian.PutUint16(b[4:6], uint16(HeaderLen+len(d.Payload)))
	binary.BigEndian.PutUint16(b[6:8], d.Header.Checksum)
	copy(b[HeaderLen:], d.Payload)
	return b
}

// Unmarshal decodes a wire-format UDP datagram. The returned payload is a
// copy, safe to retain after b is reused.
func Unmarshal(b []byte) (*Datagram, error) {
	h, payload, err := Parse(b)
	if err != nil {
		return nil, err
	}
	return &Datagram{Header: h, Payload: append([]byte(nil), payload...)}, nil
}

// Parse decodes a wire-format UDP datagram without copying: the returned
// payload aliases b and is only valid while b is. The receive hot path uses
// this to dispatch into pooled packet buffers with zero allocations.
func Parse(b []byte) (Header, []byte, error) {
	if len(b) < HeaderLen {
		return Header{}, nil, ErrShortDatagram
	}
	h := Header{
		SrcPort:  binary.BigEndian.Uint16(b[0:2]),
		DstPort:  binary.BigEndian.Uint16(b[2:4]),
		Length:   binary.BigEndian.Uint16(b[4:6]),
		Checksum: binary.BigEndian.Uint16(b[6:8]),
	}
	if int(h.Length) != len(b) {
		return Header{}, nil, fmt.Errorf("%w: field=%d actual=%d", ErrBadLength, h.Length, len(b))
	}
	return h, b[HeaderLen:], nil
}

// PutHeader writes a UDP header into b (which must hold at least HeaderLen
// bytes) for a datagram of totalLen octets, leaving the checksum field
// zero. Combined with FillChecksum it builds a checksummed datagram in a
// caller-supplied buffer with no intermediate copies.
func PutHeader(b []byte, srcPort, dstPort uint16, totalLen int) {
	binary.BigEndian.PutUint16(b[0:2], srcPort)
	binary.BigEndian.PutUint16(b[2:4], dstPort)
	binary.BigEndian.PutUint16(b[4:6], uint16(totalLen))
	b[6], b[7] = 0, 0
}

// Sum1 computes the 16-bit ones'-complement sum of b (without the final
// inversion). Odd-length input is padded with a zero byte, per RFC 1071.
func Sum1(b []byte) uint16 {
	var sum uint64
	i := 0
	// Eight bytes per iteration; ones'-complement addition is commutative,
	// and a uint64 accumulator of 16-bit words cannot overflow for any
	// datagram this simulation produces (< 256 TiB).
	for ; i+8 <= len(b); i += 8 {
		v := binary.BigEndian.Uint64(b[i : i+8])
		sum += v>>48 + v>>32&0xffff + v>>16&0xffff + v&0xffff
	}
	for ; i+1 < len(b); i += 2 {
		sum += uint64(binary.BigEndian.Uint16(b[i : i+2]))
	}
	if len(b)%2 == 1 {
		sum += uint64(b[len(b)-1]) << 8
	}
	for sum > 0xffff {
		sum = sum&0xffff + sum>>16
	}
	return uint16(sum)
}

// addOnes adds two 16-bit values in ones'-complement arithmetic.
func addOnes(a, b uint16) uint16 {
	s := uint32(a) + uint32(b)
	if s > 0xffff {
		s = (s & 0xffff) + (s >> 16)
	}
	return uint16(s)
}

// subOnes computes a − b in ones'-complement arithmetic.
func subOnes(a, b uint16) uint16 {
	return addOnes(a, ^b)
}

// ComputeChecksum computes the UDP checksum over the RFC 768 pseudo-header
// (source and destination IPv4 addresses, protocol 17, UDP length) and the
// datagram bytes. Per the RFC, a computed checksum of zero is transmitted as
// 0xFFFF.
func ComputeChecksum(src, dst [4]byte, datagram []byte) uint16 {
	pseudo := make([]byte, 12)
	copy(pseudo[0:4], src[:])
	copy(pseudo[4:8], dst[:])
	pseudo[9] = 17 // protocol: UDP
	binary.BigEndian.PutUint16(pseudo[10:12], uint16(len(datagram)))

	sum := addOnes(Sum1(pseudo), Sum1(datagram))
	cs := ^sum
	if cs == 0 {
		cs = 0xffff
	}
	return cs
}

// checksumZeroedField computes the checksum of datagram as if its checksum
// field (bytes 6–7) were zero, without copying. The pseudo-header is summed
// arithmetically; the datagram is summed around the field, which sits on a
// 16-bit boundary, so the ones'-complement sum composes exactly.
func checksumZeroedField(src, dst [4]byte, datagram []byte) uint16 {
	sum := addOnes(binary.BigEndian.Uint16(src[0:2]), binary.BigEndian.Uint16(src[2:4]))
	sum = addOnes(sum, binary.BigEndian.Uint16(dst[0:2]))
	sum = addOnes(sum, binary.BigEndian.Uint16(dst[2:4]))
	sum = addOnes(sum, 17) // protocol: UDP
	sum = addOnes(sum, uint16(len(datagram)))
	sum = addOnes(sum, Sum1(datagram[:6]))
	sum = addOnes(sum, Sum1(datagram[8:]))
	cs := ^sum
	if cs == 0 {
		cs = 0xffff
	}
	return cs
}

// FillChecksum computes the checksum of a wire-format datagram in place,
// writing it into the checksum field. Unlike WithChecksum it performs no
// copies; the send hot path builds datagrams directly in packet buffers and
// checksums them here.
func FillChecksum(src, dst [4]byte, datagram []byte) {
	cs := checksumZeroedField(src, dst, datagram)
	binary.BigEndian.PutUint16(datagram[6:8], cs)
}

// Verify checks the checksum of a wire-format datagram against the given
// pseudo-header addresses. A zero checksum field means "no checksum" and
// always verifies, per RFC 768. Verification is allocation-free.
func Verify(src, dst [4]byte, datagram []byte) error {
	if len(datagram) < HeaderLen {
		return ErrShortDatagram
	}
	field := binary.BigEndian.Uint16(datagram[6:8])
	if field == 0 {
		return nil
	}
	if got := checksumZeroedField(src, dst, datagram); got != field {
		return fmt.Errorf("%w: field=%#04x computed=%#04x", ErrBadChecksum, field, got)
	}
	return nil
}

// WithChecksum returns a copy of the wire-format datagram with its checksum
// field computed and filled in.
func WithChecksum(src, dst [4]byte, datagram []byte) []byte {
	out := make([]byte, len(datagram))
	copy(out, datagram)
	out[6], out[7] = 0, 0
	cs := ComputeChecksum(src, dst, out)
	binary.BigEndian.PutUint16(out[6:8], cs)
	return out
}

// FixSum adjusts the 16-bit big-endian value at offset slackOff in modified
// so that Sum1(modified) == Sum1(original). This is the attacker's checksum
// fix from Section III: original is the real second fragment (as predicted
// by the attacker), modified is the spoofed second fragment carrying the
// malicious records, and slackOff points at two attacker-controlled
// "unimportant" bytes (e.g. inside a padding record). slackOff must be even
// and within modified.
func FixSum(original, modified []byte, slackOff int) error {
	if slackOff < 0 || slackOff+2 > len(modified) {
		return fmt.Errorf("udp: slack offset %d out of range [0,%d)", slackOff, len(modified)-1)
	}
	if slackOff%2 != 0 {
		return fmt.Errorf("udp: slack offset %d must be 16-bit aligned", slackOff)
	}
	want := Sum1(original)
	// Zero the slack first so its current content doesn't feed the delta.
	modified[slackOff], modified[slackOff+1] = 0, 0
	have := Sum1(modified)
	delta := subOnes(want, have)
	binary.BigEndian.PutUint16(modified[slackOff:slackOff+2], delta)
	if got := Sum1(modified); got != want {
		// Ones'-complement has two zero representations (0x0000/0xffff);
		// normalise by re-checking and adjusting once.
		if subOnes(want, got) != 0 {
			return fmt.Errorf("udp: checksum fix failed: want %#04x got %#04x", want, got)
		}
	}
	return nil
}
