// Package udp implements the UDP datagram wire format and the Internet
// ones'-complement checksum, including the checksum-fixing primitive used by
// the fragment-replacement attack (Section III of the paper): an off-path
// attacker that modifies the second IP fragment of a UDP datagram cannot
// change the checksum field (it lives in the first fragment), so it instead
// adjusts slack bytes in its spoofed fragment until the ones'-complement sum
// of the modified fragment equals that of the original.
package udp

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// HeaderLen is the length of a UDP header in bytes.
const HeaderLen = 8

// Errors returned by this package.
var (
	ErrShortDatagram = errors.New("udp: datagram shorter than header")
	ErrBadLength     = errors.New("udp: length field disagrees with payload")
	ErrBadChecksum   = errors.New("udp: checksum mismatch")
)

// Header is a UDP header.
type Header struct {
	SrcPort  uint16
	DstPort  uint16
	Length   uint16 // header + payload, octets
	Checksum uint16
}

// Datagram is a UDP datagram: header plus payload.
type Datagram struct {
	Header  Header
	Payload []byte
}

// Marshal encodes the datagram to wire format. The Length field is set from
// the payload; the Checksum field is written as-is (use ComputeChecksum or
// WithChecksum to fill it).
func (d *Datagram) Marshal() []byte {
	b := make([]byte, HeaderLen+len(d.Payload))
	binary.BigEndian.PutUint16(b[0:2], d.Header.SrcPort)
	binary.BigEndian.PutUint16(b[2:4], d.Header.DstPort)
	binary.BigEndian.PutUint16(b[4:6], uint16(HeaderLen+len(d.Payload)))
	binary.BigEndian.PutUint16(b[6:8], d.Header.Checksum)
	copy(b[HeaderLen:], d.Payload)
	return b
}

// Unmarshal decodes a wire-format UDP datagram.
func Unmarshal(b []byte) (*Datagram, error) {
	if len(b) < HeaderLen {
		return nil, ErrShortDatagram
	}
	h := Header{
		SrcPort:  binary.BigEndian.Uint16(b[0:2]),
		DstPort:  binary.BigEndian.Uint16(b[2:4]),
		Length:   binary.BigEndian.Uint16(b[4:6]),
		Checksum: binary.BigEndian.Uint16(b[6:8]),
	}
	if int(h.Length) != len(b) {
		return nil, fmt.Errorf("%w: field=%d actual=%d", ErrBadLength, h.Length, len(b))
	}
	payload := make([]byte, len(b)-HeaderLen)
	copy(payload, b[HeaderLen:])
	return &Datagram{Header: h, Payload: payload}, nil
}

// Sum1 computes the 16-bit ones'-complement sum of b (without the final
// inversion). Odd-length input is padded with a zero byte, per RFC 1071.
func Sum1(b []byte) uint16 {
	var sum uint32
	for i := 0; i+1 < len(b); i += 2 {
		sum += uint32(binary.BigEndian.Uint16(b[i : i+2]))
	}
	if len(b)%2 == 1 {
		sum += uint32(b[len(b)-1]) << 8
	}
	for sum > 0xffff {
		sum = (sum & 0xffff) + (sum >> 16)
	}
	return uint16(sum)
}

// addOnes adds two 16-bit values in ones'-complement arithmetic.
func addOnes(a, b uint16) uint16 {
	s := uint32(a) + uint32(b)
	if s > 0xffff {
		s = (s & 0xffff) + (s >> 16)
	}
	return uint16(s)
}

// subOnes computes a − b in ones'-complement arithmetic.
func subOnes(a, b uint16) uint16 {
	return addOnes(a, ^b)
}

// ComputeChecksum computes the UDP checksum over the RFC 768 pseudo-header
// (source and destination IPv4 addresses, protocol 17, UDP length) and the
// datagram bytes. Per the RFC, a computed checksum of zero is transmitted as
// 0xFFFF.
func ComputeChecksum(src, dst [4]byte, datagram []byte) uint16 {
	pseudo := make([]byte, 12)
	copy(pseudo[0:4], src[:])
	copy(pseudo[4:8], dst[:])
	pseudo[9] = 17 // protocol: UDP
	binary.BigEndian.PutUint16(pseudo[10:12], uint16(len(datagram)))

	sum := addOnes(Sum1(pseudo), Sum1(datagram))
	cs := ^sum
	if cs == 0 {
		cs = 0xffff
	}
	return cs
}

// Verify checks the checksum of a wire-format datagram against the given
// pseudo-header addresses. A zero checksum field means "no checksum" and
// always verifies, per RFC 768.
func Verify(src, dst [4]byte, datagram []byte) error {
	if len(datagram) < HeaderLen {
		return ErrShortDatagram
	}
	field := binary.BigEndian.Uint16(datagram[6:8])
	if field == 0 {
		return nil
	}
	zeroed := make([]byte, len(datagram))
	copy(zeroed, datagram)
	zeroed[6], zeroed[7] = 0, 0
	if got := ComputeChecksum(src, dst, zeroed); got != field {
		return fmt.Errorf("%w: field=%#04x computed=%#04x", ErrBadChecksum, field, got)
	}
	return nil
}

// WithChecksum returns a copy of the wire-format datagram with its checksum
// field computed and filled in.
func WithChecksum(src, dst [4]byte, datagram []byte) []byte {
	out := make([]byte, len(datagram))
	copy(out, datagram)
	out[6], out[7] = 0, 0
	cs := ComputeChecksum(src, dst, out)
	binary.BigEndian.PutUint16(out[6:8], cs)
	return out
}

// FixSum adjusts the 16-bit big-endian value at offset slackOff in modified
// so that Sum1(modified) == Sum1(original). This is the attacker's checksum
// fix from Section III: original is the real second fragment (as predicted
// by the attacker), modified is the spoofed second fragment carrying the
// malicious records, and slackOff points at two attacker-controlled
// "unimportant" bytes (e.g. inside a padding record). slackOff must be even
// and within modified.
func FixSum(original, modified []byte, slackOff int) error {
	if slackOff < 0 || slackOff+2 > len(modified) {
		return fmt.Errorf("udp: slack offset %d out of range [0,%d)", slackOff, len(modified)-1)
	}
	if slackOff%2 != 0 {
		return fmt.Errorf("udp: slack offset %d must be 16-bit aligned", slackOff)
	}
	want := Sum1(original)
	// Zero the slack first so its current content doesn't feed the delta.
	modified[slackOff], modified[slackOff+1] = 0, 0
	have := Sum1(modified)
	delta := subOnes(want, have)
	binary.BigEndian.PutUint16(modified[slackOff:slackOff+2], delta)
	if got := Sum1(modified); got != want {
		// Ones'-complement has two zero representations (0x0000/0xffff);
		// normalise by re-checking and adjusting once.
		if subOnes(want, got) != 0 {
			return fmt.Errorf("udp: checksum fix failed: want %#04x got %#04x", want, got)
		}
	}
	return nil
}
