package ipv4

import (
	"bytes"
	"time"

	"dnstime/internal/simclock"
)

// OverlapPolicy determines which bytes win when fragments overlap in the
// defragmentation cache.
type OverlapPolicy int

// Overlap policies.
const (
	// FirstWins keeps the bytes of the fragment that arrived first — the
	// behaviour the attack relies on: a spoofed second fragment planted in
	// the cache beats the real second fragment that arrives later.
	FirstWins OverlapPolicy = iota + 1
	// LastWins lets later fragments overwrite earlier bytes.
	LastWins
)

// ReassemblyPolicy captures the OS-specific defragmentation cache behaviour
// measured in Section IV-A.
type ReassemblyPolicy struct {
	// Timeout is how long an incomplete bucket is retained. Linux: 30 s;
	// Windows: 60–120 s; RFC 2460 specifies 60 s.
	Timeout time.Duration
	// MaxPerPair bounds the number of concurrent reassembly buckets (one
	// per IPID) per (src,dst,proto) pair — i.e. how many "identical
	// fragments, each with a different IPID value" the attacker can park.
	// Windows allows 100, patched Linux 64.
	MaxPerPair int
	// Overlap selects the byte-overlap resolution policy.
	Overlap OverlapPolicy
}

// Predefined policies from the paper's measurements.
var (
	// LinuxPolicy models a patched Linux stack: 30 s timeout, 64 buckets.
	LinuxPolicy = ReassemblyPolicy{Timeout: 30 * time.Second, MaxPerPair: 64, Overlap: FirstWins}
	// WindowsPolicy models Windows: 60 s timeout, 100 buckets.
	WindowsPolicy = ReassemblyPolicy{Timeout: 60 * time.Second, MaxPerPair: 100, Overlap: FirstWins}
	// RFCPolicy is the RFC 2460 default of 60 s with a generous bucket cap.
	RFCPolicy = ReassemblyPolicy{Timeout: 60 * time.Second, MaxPerPair: 1024, Overlap: FirstWins}
)

// ReassemblyStats counts cache activity for measurements and tests.
type ReassemblyStats struct {
	FragmentsIn  int // fragments accepted into the cache
	FragmentsOut int // fragments rejected (bucket cap)
	Reassembled  int // packets completed
	Expired      int // buckets dropped on timeout
}

// Reassembler is an IPv4 defragmentation cache driven by a virtual clock.
// Fragment bytes are applied into a persistent per-bucket buffer on
// arrival (the overlap policy decides winners at write time), so Add never
// retains the caller's packet or payload and performs no per-arrival
// re-assembly work. Dropped buckets return to a free list, keeping the
// cache allocation-lean under the attacker's bucket-filling floods.
type Reassembler struct {
	clock   *simclock.Clock
	policy  ReassemblyPolicy
	buckets map[bucketKey]*bucket
	perPair map[pairKey]int
	free    []*bucket
	stats   ReassemblyStats
}

type bucketKey struct {
	src, dst Addr
	proto    Protocol
	id       uint16
}

type pairKey struct {
	src, dst Addr
	proto    Protocol
}

type bucket struct {
	buf      []byte // assembled bytes, grown to the highest fragment end
	covered  []byte // 1 where buf holds fragment data (byte-wide: coverage scans vectorise)
	totalLen int    // -1 until the MF=0 fragment arrives
	key      bucketKey
	pair     pairKey
	expireFn func()         // timeout callback bound to this bucket, reused across recycles
	expiry   simclock.Timer // caller-owned timer, re-armed in place
}

// NewReassembler returns a defragmentation cache using the given policy.
func NewReassembler(clock *simclock.Clock, policy ReassemblyPolicy) *Reassembler {
	if policy.Overlap == 0 {
		policy.Overlap = FirstWins
	}
	if policy.Timeout == 0 {
		policy.Timeout = 30 * time.Second
	}
	if policy.MaxPerPair == 0 {
		policy.MaxPerPair = 64
	}
	return &Reassembler{
		clock:   clock,
		policy:  policy,
		buckets: make(map[bucketKey]*bucket),
		perPair: make(map[pairKey]int),
	}
}

// Stats returns a snapshot of cache counters.
func (r *Reassembler) Stats() ReassemblyStats { return r.stats }

// Reset empties the cache and zeroes its counters, adopting policy (with
// the same defaulting as NewReassembler). Expiry timers are assumed dead —
// the lab pool resets the clock before resetting hosts — so buckets are
// recycled without stopping them. A reset cache is indistinguishable from a
// fresh one while keeping its bucket free list warm.
func (r *Reassembler) Reset(policy ReassemblyPolicy) {
	if policy.Overlap == 0 {
		policy.Overlap = FirstWins
	}
	if policy.Timeout == 0 {
		policy.Timeout = 30 * time.Second
	}
	if policy.MaxPerPair == 0 {
		policy.MaxPerPair = 64
	}
	r.policy = policy
	for key, b := range r.buckets {
		delete(r.buckets, key)
		r.recycle(b)
	}
	clear(r.perPair)
	r.stats = ReassemblyStats{}
}

// acquireBucket takes a bucket from the free list (or allocates one) and
// restores it to the empty state. The timeout closure is built once per
// bucket and reads the bucket's current key fields, so recycled buckets
// re-arm their expiry without allocating.
func (r *Reassembler) acquireBucket() *bucket {
	if n := len(r.free); n > 0 {
		b := r.free[n-1]
		r.free[n-1] = nil
		r.free = r.free[:n-1]
		return b
	}
	b := &bucket{totalLen: -1}
	b.expireFn = func() { r.expire(b.key, b.pair) }
	return b
}

// recycle returns a dropped bucket to the free list. The coverage bitmap is
// cleared out to its full capacity so a reused bucket never sees stale
// coverage; the byte buffer needs no clearing because completeness requires
// every read byte to have been covered (written) this cycle.
func (r *Reassembler) recycle(b *bucket) {
	b.buf = b.buf[:0]
	b.covered = b.covered[:cap(b.covered)]
	clear(b.covered)
	b.covered = b.covered[:0]
	b.totalLen = -1
	b.expiry = simclock.Timer{}
	r.free = append(r.free, b)
}

// PendingBuckets reports the number of incomplete reassembly buckets for a
// (src,dst,proto) pair — what the attacker is filling when it plants
// fragments under many candidate IPIDs.
func (r *Reassembler) PendingBuckets(src, dst Addr, proto Protocol) int {
	return r.perPair[pairKey{src, dst, proto}]
}

// Add feeds one packet into the cache. Non-fragments are returned
// immediately. Fragments are buffered; when a datagram completes, the
// reassembled packet is returned. The boolean reports whether a full packet
// is being returned. Add never retains p or p.Payload: fragment bytes are
// copied into the bucket's own buffer at write time, so callers may recycle
// the packet as soon as Add returns.
func (r *Reassembler) Add(p *Packet) (*Packet, bool) {
	if !p.IsFragment() {
		return p, true
	}
	key := bucketKey{p.Src, p.Dst, p.Proto, p.ID}
	pair := pairKey{p.Src, p.Dst, p.Proto}
	b, ok := r.buckets[key]
	if !ok {
		if r.perPair[pair] >= r.policy.MaxPerPair {
			r.stats.FragmentsOut++
			return nil, false
		}
		b = r.acquireBucket()
		b.key, b.pair = key, pair
		r.clock.ScheduleInto(&b.expiry, r.policy.Timeout, b.expireFn)
		r.buckets[key] = b
		r.perPair[pair]++
	}
	r.stats.FragmentsIn++
	b.apply(p.FragOff, p.Payload, r.policy.Overlap)
	if !p.MF {
		end := p.FragOff + len(p.Payload)
		if b.totalLen < 0 || end < b.totalLen {
			b.totalLen = end
		}
	}
	if !b.complete() {
		return nil, false
	}
	b.expiry.Stop()
	// Transfer the assembled buffer out of the bucket before recycling it:
	// the returned packet owns its payload.
	payload := b.buf[:b.totalLen:b.totalLen]
	b.buf = nil
	r.dropBucket(key, pair)
	r.stats.Reassembled++
	whole := &Packet{
		Src:     p.Src,
		Dst:     p.Dst,
		ID:      p.ID,
		Proto:   p.Proto,
		TTL:     p.TTL,
		Payload: payload,
	}
	return whole, true
}

// expire is the bucket-timeout callback.
func (r *Reassembler) expire(key bucketKey, pair pairKey) {
	r.dropBucket(key, pair)
	r.stats.Expired++
}

func (r *Reassembler) dropBucket(key bucketKey, pair pairKey) {
	b, ok := r.buckets[key]
	if !ok {
		return
	}
	delete(r.buckets, key)
	r.recycle(b)
	if r.perPair[pair] > 0 {
		r.perPair[pair]--
	}
	if r.perPair[pair] == 0 {
		delete(r.perPair, pair)
	}
}

// apply writes one fragment's bytes into the bucket buffer, growing it to
// the fragment's end. Under FirstWins, positions already covered keep their
// bytes — application order is arrival order, so write-time resolution is
// exactly the old assemble-time resolution. Bytes past a later-learned
// totalLen are never read, so no clipping is needed.
func (b *bucket) apply(off int, data []byte, overlap OverlapPolicy) {
	end := off + len(data)
	if end > len(b.buf) {
		b.buf = growBytes(b.buf, end)
		b.covered = growBytes0(b.covered, end)
	}
	if overlap == FirstWins && bytes.IndexByte(b.covered[off:end], 1) >= 0 {
		// Overlap under FirstWins: earlier bytes win, merge byte by byte.
		for i, c := range data {
			pos := off + i
			if b.covered[pos] != 0 {
				continue
			}
			b.buf[pos] = c
			b.covered[pos] = 1
		}
		return
	}
	// LastWins, or FirstWins over untouched bytes: block copy.
	copy(b.buf[off:end], data)
	markCovered(b.covered[off:end])
}

// onesBlock is a static all-ones source so coverage marking is a memmove
// instead of a byte loop.
var onesBlock = func() (b [4096]byte) {
	for i := range b {
		b[i] = 1
	}
	return
}()

func markCovered(cov []byte) {
	for len(cov) > 0 {
		cov = cov[copy(cov, onesBlock[:]):]
	}
}

// complete reports whether the final-fragment length is known and coverage
// is contiguous from 0 — the old assemble() success condition.
func (b *bucket) complete() bool {
	if b.totalLen < 0 || b.totalLen > len(b.buf) {
		return false
	}
	return bytes.IndexByte(b.covered[:b.totalLen], 0) < 0
}

// growBytes extends s to length n. Bytes in the grown region are
// unspecified (recycled buckets carry stale bytes); completeness guarantees
// every read position was written this cycle.
func growBytes(s []byte, n int) []byte {
	if cap(s) >= n {
		return s[:n]
	}
	return append(s, make([]byte, n-len(s))...)
}

// growBytes0 extends s to length n with the grown region zero. Recycled
// coverage maps are cleared out to capacity, and append-growth zeroes
// fresh backing arrays, so reslicing within capacity is already zero.
func growBytes0(s []byte, n int) []byte {
	if cap(s) >= n {
		return s[:n]
	}
	return append(s, make([]byte, n-len(s))...)
}
