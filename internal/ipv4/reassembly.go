package ipv4

import (
	"time"

	"dnstime/internal/simclock"
)

// OverlapPolicy determines which bytes win when fragments overlap in the
// defragmentation cache.
type OverlapPolicy int

// Overlap policies.
const (
	// FirstWins keeps the bytes of the fragment that arrived first — the
	// behaviour the attack relies on: a spoofed second fragment planted in
	// the cache beats the real second fragment that arrives later.
	FirstWins OverlapPolicy = iota + 1
	// LastWins lets later fragments overwrite earlier bytes.
	LastWins
)

// ReassemblyPolicy captures the OS-specific defragmentation cache behaviour
// measured in Section IV-A.
type ReassemblyPolicy struct {
	// Timeout is how long an incomplete bucket is retained. Linux: 30 s;
	// Windows: 60–120 s; RFC 2460 specifies 60 s.
	Timeout time.Duration
	// MaxPerPair bounds the number of concurrent reassembly buckets (one
	// per IPID) per (src,dst,proto) pair — i.e. how many "identical
	// fragments, each with a different IPID value" the attacker can park.
	// Windows allows 100, patched Linux 64.
	MaxPerPair int
	// Overlap selects the byte-overlap resolution policy.
	Overlap OverlapPolicy
}

// Predefined policies from the paper's measurements.
var (
	// LinuxPolicy models a patched Linux stack: 30 s timeout, 64 buckets.
	LinuxPolicy = ReassemblyPolicy{Timeout: 30 * time.Second, MaxPerPair: 64, Overlap: FirstWins}
	// WindowsPolicy models Windows: 60 s timeout, 100 buckets.
	WindowsPolicy = ReassemblyPolicy{Timeout: 60 * time.Second, MaxPerPair: 100, Overlap: FirstWins}
	// RFCPolicy is the RFC 2460 default of 60 s with a generous bucket cap.
	RFCPolicy = ReassemblyPolicy{Timeout: 60 * time.Second, MaxPerPair: 1024, Overlap: FirstWins}
)

// ReassemblyStats counts cache activity for measurements and tests.
type ReassemblyStats struct {
	FragmentsIn  int // fragments accepted into the cache
	FragmentsOut int // fragments rejected (bucket cap)
	Reassembled  int // packets completed
	Expired      int // buckets dropped on timeout
}

// Reassembler is an IPv4 defragmentation cache driven by a virtual clock.
type Reassembler struct {
	clock   *simclock.Clock
	policy  ReassemblyPolicy
	buckets map[bucketKey]*bucket
	perPair map[pairKey]int
	stats   ReassemblyStats
}

type bucketKey struct {
	src, dst Addr
	proto    Protocol
	id       uint16
}

type pairKey struct {
	src, dst Addr
	proto    Protocol
}

type fragment struct {
	off  int
	data []byte
}

type bucket struct {
	frags    []fragment // in arrival order
	totalLen int        // -1 until the MF=0 fragment arrives
	expiry   *simclock.Timer
}

// NewReassembler returns a defragmentation cache using the given policy.
func NewReassembler(clock *simclock.Clock, policy ReassemblyPolicy) *Reassembler {
	if policy.Overlap == 0 {
		policy.Overlap = FirstWins
	}
	if policy.Timeout == 0 {
		policy.Timeout = 30 * time.Second
	}
	if policy.MaxPerPair == 0 {
		policy.MaxPerPair = 64
	}
	return &Reassembler{
		clock:   clock,
		policy:  policy,
		buckets: make(map[bucketKey]*bucket),
		perPair: make(map[pairKey]int),
	}
}

// Stats returns a snapshot of cache counters.
func (r *Reassembler) Stats() ReassemblyStats { return r.stats }

// PendingBuckets reports the number of incomplete reassembly buckets for a
// (src,dst,proto) pair — what the attacker is filling when it plants
// fragments under many candidate IPIDs.
func (r *Reassembler) PendingBuckets(src, dst Addr, proto Protocol) int {
	return r.perPair[pairKey{src, dst, proto}]
}

// Add feeds one packet into the cache. Non-fragments are returned
// immediately. Fragments are buffered; when a datagram completes, the
// reassembled packet is returned. The boolean reports whether a full packet
// is being returned.
func (r *Reassembler) Add(p *Packet) (*Packet, bool) {
	if !p.IsFragment() {
		return p, true
	}
	key := bucketKey{p.Src, p.Dst, p.Proto, p.ID}
	pair := pairKey{p.Src, p.Dst, p.Proto}
	b, ok := r.buckets[key]
	if !ok {
		if r.perPair[pair] >= r.policy.MaxPerPair {
			r.stats.FragmentsOut++
			return nil, false
		}
		b = &bucket{totalLen: -1}
		b.expiry = r.clock.Schedule(r.policy.Timeout, func() {
			r.dropBucket(key, pair)
			r.stats.Expired++
		})
		r.buckets[key] = b
		r.perPair[pair]++
	}
	r.stats.FragmentsIn++
	b.frags = append(b.frags, fragment{off: p.FragOff, data: append([]byte(nil), p.Payload...)})
	if !p.MF {
		end := p.FragOff + len(p.Payload)
		if b.totalLen < 0 || end < b.totalLen {
			b.totalLen = end
		}
	}
	payload, done := b.assemble(r.policy.Overlap)
	if !done {
		return nil, false
	}
	b.expiry.Stop()
	r.dropBucket(key, pair)
	r.stats.Reassembled++
	whole := &Packet{
		Src:     p.Src,
		Dst:     p.Dst,
		ID:      p.ID,
		Proto:   p.Proto,
		TTL:     p.TTL,
		Payload: payload,
	}
	return whole, true
}

func (r *Reassembler) dropBucket(key bucketKey, pair pairKey) {
	if _, ok := r.buckets[key]; !ok {
		return
	}
	delete(r.buckets, key)
	if r.perPair[pair] > 0 {
		r.perPair[pair]--
	}
	if r.perPair[pair] == 0 {
		delete(r.perPair, pair)
	}
}

// assemble attempts to build the full payload. It reports success only when
// the final-fragment length is known and coverage is contiguous from 0.
func (b *bucket) assemble(overlap OverlapPolicy) ([]byte, bool) {
	if b.totalLen < 0 {
		return nil, false
	}
	buf := make([]byte, b.totalLen)
	covered := make([]bool, b.totalLen)
	apply := func(f fragment) {
		for i, c := range f.data {
			pos := f.off + i
			if pos >= b.totalLen {
				break
			}
			if overlap == FirstWins && covered[pos] {
				continue
			}
			buf[pos] = c
			covered[pos] = true
		}
	}
	if overlap == FirstWins {
		for _, f := range b.frags {
			apply(f)
		}
	} else {
		// LastWins: apply in arrival order with overwrite semantics.
		for _, f := range b.frags {
			for i, c := range f.data {
				pos := f.off + i
				if pos >= b.totalLen {
					break
				}
				buf[pos] = c
				covered[pos] = true
			}
		}
	}
	for _, c := range covered {
		if !c {
			return nil, false
		}
	}
	return buf, true
}
