package ipv4

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
	"time"

	"dnstime/internal/simclock"
)

var (
	t0       = time.Date(2020, 1, 1, 0, 0, 0, 0, time.UTC)
	hostA    = MustParseAddr("192.0.2.1")
	hostB    = MustParseAddr("198.51.100.7")
	attacker = MustParseAddr("203.0.113.66")
)

func TestParseAddr(t *testing.T) {
	tests := []struct {
		in   string
		want Addr
		ok   bool
	}{
		{"1.2.3.4", Addr{1, 2, 3, 4}, true},
		{"255.255.255.255", Addr{255, 255, 255, 255}, true},
		{"0.0.0.0", Addr{}, true},
		{"1.2.3", Addr{}, false},
		{"1.2.3.4.5", Addr{}, false},
		{"1.2.3.256", Addr{}, false},
		{"a.b.c.d", Addr{}, false},
	}
	for _, tt := range tests {
		got, err := ParseAddr(tt.in)
		if (err == nil) != tt.ok {
			t.Errorf("ParseAddr(%q) err = %v, ok = %t", tt.in, err, tt.ok)
			continue
		}
		if tt.ok && got != tt.want {
			t.Errorf("ParseAddr(%q) = %v, want %v", tt.in, got, tt.want)
		}
	}
}

func TestAddrStringRoundTrip(t *testing.T) {
	a := Addr{203, 0, 113, 66}
	got, err := ParseAddr(a.String())
	if err != nil || got != a {
		t.Errorf("round trip = %v, %v", got, err)
	}
}

func newPacket(payloadLen int) *Packet {
	payload := make([]byte, payloadLen)
	for i := range payload {
		payload[i] = byte(i)
	}
	return &Packet{Src: hostA, Dst: hostB, ID: 42, Proto: ProtoUDP, TTL: 64, Payload: payload}
}

func TestFragmentSmallPacketUnfragmented(t *testing.T) {
	p := newPacket(100)
	frags, err := Fragment(p, 1500)
	if err != nil {
		t.Fatalf("Fragment: %v", err)
	}
	if len(frags) != 1 || frags[0].IsFragment() {
		t.Fatalf("got %d fragments (frag=%t), want 1 whole packet", len(frags), frags[0].IsFragment())
	}
}

func TestFragmentSplitsOn8ByteBoundaries(t *testing.T) {
	p := newPacket(1000)
	frags, err := Fragment(p, 576)
	if err != nil {
		t.Fatalf("Fragment: %v", err)
	}
	if len(frags) < 2 {
		t.Fatalf("got %d fragments, want ≥2", len(frags))
	}
	for i, f := range frags {
		if f.TotalLen() > 576 {
			t.Errorf("fragment %d length %d exceeds MTU", i, f.TotalLen())
		}
		if f.FragOff%8 != 0 {
			t.Errorf("fragment %d offset %d not multiple of 8", i, f.FragOff)
		}
		wantMF := i < len(frags)-1
		if f.MF != wantMF {
			t.Errorf("fragment %d MF=%t, want %t", i, f.MF, wantMF)
		}
		if f.ID != p.ID {
			t.Errorf("fragment %d ID=%d, want %d", i, f.ID, p.ID)
		}
	}
}

func TestFragmentDFReturnsFragNeeded(t *testing.T) {
	p := newPacket(2000)
	p.DF = true
	if _, err := Fragment(p, 576); !errors.Is(err, ErrFragNeeded) {
		t.Errorf("err = %v, want ErrFragNeeded", err)
	}
}

func TestFragmentRejectsTinyMTU(t *testing.T) {
	if _, err := Fragment(newPacket(100), 60); !errors.Is(err, ErrBadMTU) {
		t.Errorf("err = %v, want ErrBadMTU", err)
	}
}

func reassembleAll(r *Reassembler, frags []*Packet) (*Packet, bool) {
	var out *Packet
	var done bool
	for _, f := range frags {
		if p, ok := r.Add(f); ok {
			out, done = p, true
		}
	}
	return out, done
}

func TestReassemblyInOrder(t *testing.T) {
	clk := simclock.New(t0)
	r := NewReassembler(clk, LinuxPolicy)
	p := newPacket(1200)
	frags, _ := Fragment(p, 576)
	got, ok := reassembleAll(r, frags)
	if !ok {
		t.Fatal("reassembly did not complete")
	}
	if !bytes.Equal(got.Payload, p.Payload) {
		t.Error("reassembled payload differs from original")
	}
}

func TestReassemblyOutOfOrder(t *testing.T) {
	clk := simclock.New(t0)
	r := NewReassembler(clk, LinuxPolicy)
	p := newPacket(2000)
	frags, _ := Fragment(p, 576)
	// Reverse delivery order.
	for i, j := 0, len(frags)-1; i < j; i, j = i+1, j-1 {
		frags[i], frags[j] = frags[j], frags[i]
	}
	got, ok := reassembleAll(r, frags)
	if !ok {
		t.Fatal("out-of-order reassembly did not complete")
	}
	if !bytes.Equal(got.Payload, p.Payload) {
		t.Error("reassembled payload differs from original")
	}
}

func TestReassemblyNonFragmentPassesThrough(t *testing.T) {
	clk := simclock.New(t0)
	r := NewReassembler(clk, LinuxPolicy)
	p := newPacket(64)
	got, ok := r.Add(p)
	if !ok || !bytes.Equal(got.Payload, p.Payload) {
		t.Error("non-fragment did not pass through")
	}
}

// TestReassemblyFirstWinsPlanting is the attack's key cache behaviour: a
// spoofed second fragment planted *before* the real fragments arrive wins
// the overlap and ends up in the reassembled packet.
func TestReassemblyFirstWinsPlanting(t *testing.T) {
	clk := simclock.New(t0)
	r := NewReassembler(clk, LinuxPolicy)
	p := newPacket(1000)
	frags, _ := Fragment(p, 576)
	if len(frags) != 2 {
		t.Fatalf("want 2 fragments, got %d", len(frags))
	}
	spoof := frags[1].Clone()
	spoof.Src = p.Src // spoofed source: pretends to be the nameserver
	for i := range spoof.Payload {
		spoof.Payload[i] = 0xEE
	}
	// Attacker plants the spoofed second fragment first.
	if _, ok := r.Add(spoof); ok {
		t.Fatal("spoofed fragment alone completed a packet")
	}
	// Real fragments arrive.
	if _, ok := r.Add(frags[0]); !ok {
		t.Fatal("planting + real first fragment did not complete")
	}
	// The second real fragment opens a fresh (now incomplete) bucket; it
	// must not produce a packet.
	if _, ok := r.Add(frags[1]); ok {
		t.Fatal("stray real second fragment completed a packet")
	}
}

func TestReassemblyFirstWinsContent(t *testing.T) {
	clk := simclock.New(t0)
	r := NewReassembler(clk, LinuxPolicy)
	p := newPacket(1000)
	frags, _ := Fragment(p, 576)
	spoof := frags[1].Clone()
	for i := range spoof.Payload {
		spoof.Payload[i] = 0xEE
	}
	r.Add(spoof)
	got, ok := r.Add(frags[0])
	if !ok {
		t.Fatal("reassembly did not complete")
	}
	tail := got.Payload[frags[1].FragOff:]
	for i, b := range tail {
		if b != 0xEE {
			t.Fatalf("byte %d of tail = %#x, want spoofed 0xEE", i, b)
		}
	}
	head := got.Payload[:frags[1].FragOff]
	if !bytes.Equal(head, p.Payload[:frags[1].FragOff]) {
		t.Error("head of reassembled packet is not the real first fragment")
	}
}

func TestReassemblyLastWinsOverwrites(t *testing.T) {
	clk := simclock.New(t0)
	pol := LinuxPolicy
	pol.Overlap = LastWins
	r := NewReassembler(clk, pol)
	p := newPacket(1000)
	frags, _ := Fragment(p, 576)
	spoof := frags[1].Clone()
	for i := range spoof.Payload {
		spoof.Payload[i] = 0xEE
	}
	// Spoof is planted first, then the real second fragment overwrites it
	// (LastWins), then the first fragment completes the datagram.
	r.Add(spoof)
	r.Add(frags[1])
	got, ok := r.Add(frags[0])
	if !ok {
		t.Fatal("reassembly did not complete")
	}
	tail := got.Payload[frags[1].FragOff:]
	if !bytes.Equal(tail, frags[1].Payload) {
		t.Error("LastWins did not restore real second fragment")
	}
}

func TestReassemblyFirstWinsResistsOverwrite(t *testing.T) {
	clk := simclock.New(t0)
	r := NewReassembler(clk, LinuxPolicy) // FirstWins
	p := newPacket(1000)
	frags, _ := Fragment(p, 576)
	spoof := frags[1].Clone()
	for i := range spoof.Payload {
		spoof.Payload[i] = 0xEE
	}
	r.Add(spoof)
	r.Add(frags[1]) // real second fragment arrives before completion
	got, ok := r.Add(frags[0])
	if !ok {
		t.Fatal("reassembly did not complete")
	}
	tail := got.Payload[frags[1].FragOff:]
	for i, b := range tail {
		if b != 0xEE {
			t.Fatalf("byte %d = %#x; FirstWins let the real fragment overwrite the spoof", i, b)
		}
	}
}

func TestReassemblyTimeoutExpiresBucket(t *testing.T) {
	clk := simclock.New(t0)
	r := NewReassembler(clk, LinuxPolicy) // 30 s timeout
	p := newPacket(1000)
	frags, _ := Fragment(p, 576)
	r.Add(frags[1])
	clk.RunFor(31 * time.Second)
	if _, ok := r.Add(frags[0]); ok {
		t.Fatal("expired fragment still completed a packet")
	}
	if r.Stats().Expired != 1 {
		t.Errorf("Expired = %d, want 1", r.Stats().Expired)
	}
}

func TestReassemblyWithinTimeoutSucceeds(t *testing.T) {
	clk := simclock.New(t0)
	r := NewReassembler(clk, LinuxPolicy)
	p := newPacket(1000)
	frags, _ := Fragment(p, 576)
	r.Add(frags[1])
	clk.RunFor(29 * time.Second)
	if _, ok := r.Add(frags[0]); !ok {
		t.Fatal("fragment within timeout did not complete")
	}
}

func TestReassemblyBucketCap(t *testing.T) {
	clk := simclock.New(t0)
	pol := ReassemblyPolicy{Timeout: 30 * time.Second, MaxPerPair: 4, Overlap: FirstWins}
	r := NewReassembler(clk, pol)
	// Plant 6 spoofed second fragments with distinct IPIDs.
	for id := 0; id < 6; id++ {
		f := &Packet{Src: hostA, Dst: hostB, ID: uint16(id), Proto: ProtoUDP, FragOff: 576 - HeaderLen&^7, MF: false, Payload: []byte{1, 2, 3, 4, 5, 6, 7, 8}}
		f.FragOff = 552
		r.Add(f)
	}
	if got := r.PendingBuckets(hostA, hostB, ProtoUDP); got != 4 {
		t.Errorf("PendingBuckets = %d, want 4 (cap)", got)
	}
	if r.Stats().FragmentsOut != 2 {
		t.Errorf("FragmentsOut = %d, want 2", r.Stats().FragmentsOut)
	}
}

func TestReassemblyCapFreesAfterCompletion(t *testing.T) {
	clk := simclock.New(t0)
	pol := ReassemblyPolicy{Timeout: 30 * time.Second, MaxPerPair: 1, Overlap: FirstWins}
	r := NewReassembler(clk, pol)
	p := newPacket(1000)
	frags, _ := Fragment(p, 576)
	reassembleAll(r, frags)
	if got := r.PendingBuckets(hostA, hostB, ProtoUDP); got != 0 {
		t.Errorf("PendingBuckets = %d after completion, want 0", got)
	}
	// A new datagram with a different ID must now fit.
	p2 := newPacket(1000)
	p2.ID = 77
	frags2, _ := Fragment(p2, 576)
	if _, ok := reassembleAll(r, frags2); !ok {
		t.Error("cache did not free capacity after completion")
	}
}

func TestSequentialAllocatorIsPredictable(t *testing.T) {
	a := &SequentialAllocator{Counter: 100}
	for i := 0; i < 5; i++ {
		if got := a.Next(hostA, hostB); got != uint16(100+i) {
			t.Fatalf("Next() = %d, want %d", got, 100+i)
		}
	}
	// Probing via a different destination advances the same counter —
	// the property the attacker's extrapolation uses.
	if got := a.Next(hostA, attacker); got != 105 {
		t.Errorf("cross-destination Next() = %d, want 105", got)
	}
}

func TestPerDestAllocatorIsolatesDestinations(t *testing.T) {
	a := &PerDestAllocator{}
	for i := 0; i < 10; i++ {
		a.Next(hostA, attacker) // attacker probes
	}
	if got := a.Next(hostA, hostB); got != 0 {
		t.Errorf("victim-bound IPID = %d, want 0 (unaffected by probes)", got)
	}
}

func TestRandomAllocatorSpread(t *testing.T) {
	a := &RandomAllocator{State: 12345}
	seen := make(map[uint16]bool)
	for i := 0; i < 1000; i++ {
		seen[a.Next(hostA, hostB)] = true
	}
	if len(seen) < 900 {
		t.Errorf("random allocator produced only %d distinct IPIDs in 1000 draws", len(seen))
	}
}

func TestRandomAllocatorDeterministicPerSeed(t *testing.T) {
	a := &RandomAllocator{State: 7}
	b := &RandomAllocator{State: 7}
	for i := 0; i < 100; i++ {
		if a.Next(hostA, hostB) != b.Next(hostA, hostB) {
			t.Fatal("same seed produced different streams")
		}
	}
}

func TestICMPFragNeededRoundTrip(t *testing.T) {
	m := &ICMPFragNeeded{NextHopMTU: 296, OrigSrc: hostB, OrigDst: hostA, OrigProto: ProtoUDP}
	got, err := ParseICMPFragNeeded(m.Marshal())
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if *got != *m {
		t.Errorf("round trip = %+v, want %+v", got, m)
	}
}

func TestParseICMPOtherTypeIgnored(t *testing.T) {
	b := make([]byte, 8)
	b[0] = 8 // echo request
	got, err := ParseICMPFragNeeded(b)
	if err != nil || got != nil {
		t.Errorf("echo parse = %v, %v; want nil, nil", got, err)
	}
}

func TestParseICMPShort(t *testing.T) {
	if _, err := ParseICMPFragNeeded([]byte{3}); !errors.Is(err, ErrShortICMP) {
		t.Errorf("err = %v, want ErrShortICMP", err)
	}
	if _, err := ParseICMPFragNeeded([]byte{3, 4, 0, 0}); !errors.Is(err, ErrShortICMP) {
		t.Errorf("err = %v, want ErrShortICMP", err)
	}
}

func TestPMTUCacheUpdateAndLookup(t *testing.T) {
	clk := simclock.New(t0)
	c := NewPMTUCache(clk, MinMTU)
	if got := c.MTU(hostB); got != DefaultMTU {
		t.Errorf("default MTU = %d, want %d", got, DefaultMTU)
	}
	if !c.Update(hostB, 576) {
		t.Fatal("valid update rejected")
	}
	if got := c.MTU(hostB); got != 576 {
		t.Errorf("MTU = %d, want 576", got)
	}
}

func TestPMTUCacheFloor(t *testing.T) {
	clk := simclock.New(t0)
	c := NewPMTUCache(clk, 552)
	if c.Update(hostB, 296) {
		t.Error("update below floor accepted")
	}
	if got := c.MTU(hostB); got != DefaultMTU {
		t.Errorf("MTU = %d, want default after rejected update", got)
	}
}

func TestPMTUCacheNeverRaises(t *testing.T) {
	clk := simclock.New(t0)
	c := NewPMTUCache(clk, MinMTU)
	c.Update(hostB, 296)
	if c.Update(hostB, 1400) {
		t.Error("ICMP raised path MTU")
	}
	if got := c.MTU(hostB); got != 296 {
		t.Errorf("MTU = %d, want 296", got)
	}
}

func TestPMTUCacheExpiry(t *testing.T) {
	clk := simclock.New(t0)
	c := NewPMTUCache(clk, MinMTU)
	c.Update(hostB, 296)
	clk.RunFor(11 * time.Minute)
	if got := c.MTU(hostB); got != DefaultMTU {
		t.Errorf("MTU = %d after expiry, want %d", got, DefaultMTU)
	}
	// And a fresh (even larger) update is accepted again after expiry.
	if !c.Update(hostB, 576) {
		t.Error("post-expiry update rejected")
	}
}

// Property: Fragment followed by Reassembler.Add over any permutation-free
// in-order delivery reproduces the payload, for arbitrary sizes and MTUs.
func TestPropertyFragmentReassembleRoundTrip(t *testing.T) {
	f := func(size uint16, mtuRaw uint16) bool {
		payloadLen := int(size)%4000 + 1
		mtu := MinMTU + int(mtuRaw)%(DefaultMTU-MinMTU)
		p := newPacket(payloadLen)
		frags, err := Fragment(p, mtu)
		if err != nil {
			return false
		}
		clk := simclock.New(t0)
		r := NewReassembler(clk, RFCPolicy)
		got, ok := reassembleAll(r, frags)
		return ok && bytes.Equal(got.Payload, p.Payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestPacketString(t *testing.T) {
	p := newPacket(100)
	if s := p.String(); s == "" {
		t.Error("empty String()")
	}
	frags, _ := Fragment(newPacket(2000), 576)
	if s := frags[0].String(); s == "" {
		t.Error("empty fragment String()")
	}
}

func TestProtocolString(t *testing.T) {
	if ProtoUDP.String() != "udp" || ProtoICMP.String() != "icmp" {
		t.Error("unexpected protocol names")
	}
	if Protocol(99).String() == "" {
		t.Error("unknown protocol has empty name")
	}
}
