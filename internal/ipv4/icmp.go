package ipv4

import (
	"encoding/binary"
	"errors"
	"time"

	"dnstime/internal/simclock"
)

// ICMP type/code values used in the simulation.
const (
	ICMPDestUnreachable = 3
	ICMPCodeFragNeeded  = 4
)

// ErrShortICMP is returned when an ICMP payload cannot be parsed.
var ErrShortICMP = errors.New("ipv4: short icmp message")

// ICMPFragNeeded is a Destination Unreachable / Fragmentation Needed
// message (type 3, code 4). The attacker spoofs one of these, claiming to
// come from a router on the path from the nameserver to the victim
// resolver, to force the nameserver to fragment its DNS responses down to
// NextHopMTU (Section III-1).
type ICMPFragNeeded struct {
	NextHopMTU uint16
	// The embedded original header: who the "too big" packet was from/to.
	OrigSrc   Addr
	OrigDst   Addr
	OrigProto Protocol
}

// icmpFragNeededLen is the encoded length of an ICMPFragNeeded message.
const icmpFragNeededLen = 17

// Marshal encodes the message as an IP payload.
func (m *ICMPFragNeeded) Marshal() []byte {
	b := make([]byte, icmpFragNeededLen)
	b[0] = ICMPDestUnreachable
	b[1] = ICMPCodeFragNeeded
	binary.BigEndian.PutUint16(b[6:8], m.NextHopMTU)
	copy(b[8:12], m.OrigSrc[:])
	copy(b[12:16], m.OrigDst[:])
	b[16] = byte(m.OrigProto)
	return b
}

// ParseICMPFragNeeded decodes an ICMP payload. It returns (nil, nil) for
// well-formed ICMP messages of other types.
func ParseICMPFragNeeded(b []byte) (*ICMPFragNeeded, error) {
	if len(b) < 2 {
		return nil, ErrShortICMP
	}
	if b[0] != ICMPDestUnreachable || b[1] != ICMPCodeFragNeeded {
		return nil, nil
	}
	if len(b) < icmpFragNeededLen {
		return nil, ErrShortICMP
	}
	m := &ICMPFragNeeded{NextHopMTU: binary.BigEndian.Uint16(b[6:8])}
	copy(m.OrigSrc[:], b[8:12])
	copy(m.OrigDst[:], b[12:16])
	m.OrigProto = Protocol(b[16])
	return m, nil
}

// PMTUCache is a host's per-destination path-MTU table, updated by ICMP
// Fragmentation Needed messages and consulted on every send. Entries expire
// (RFC 1191 suggests ~10 minutes), after which the path MTU reverts to the
// interface default.
type PMTUCache struct {
	clock *simclock.Clock
	// MinAccepted is the lowest MTU the host will honour from an ICMP.
	// Many stacks clamp to 552 or 576; permissive ones accept down to 68.
	MinAccepted int
	// TTL is the entry lifetime.
	TTL     time.Duration
	entries map[Addr]pmtuEntry
}

type pmtuEntry struct {
	mtu     int
	expires time.Time
}

// NewPMTUCache returns a PMTU cache with the given acceptance floor.
func NewPMTUCache(clock *simclock.Clock, minAccepted int) *PMTUCache {
	if minAccepted < MinMTU {
		minAccepted = MinMTU
	}
	return &PMTUCache{
		clock:       clock,
		MinAccepted: minAccepted,
		TTL:         10 * time.Minute,
		entries:     make(map[Addr]pmtuEntry),
	}
}

// Reset empties the cache and adopts a new acceptance floor (with the same
// clamping as NewPMTUCache), for host reuse across pooled-lab runs.
func (c *PMTUCache) Reset(minAccepted int) {
	if minAccepted < MinMTU {
		minAccepted = MinMTU
	}
	c.MinAccepted = minAccepted
	c.TTL = 10 * time.Minute
	clear(c.entries)
}

// Update records an MTU learned for dst. It reports whether the update was
// accepted (MTUs below the acceptance floor are ignored, modelling stacks
// that clamp or discard tiny-MTU ICMPs).
func (c *PMTUCache) Update(dst Addr, mtu int) bool {
	if mtu < c.MinAccepted {
		return false
	}
	cur, ok := c.entries[dst]
	now := c.clock.Now()
	if ok && now.Before(cur.expires) && mtu >= cur.mtu {
		// Never raise the path MTU from an ICMP; only a timeout does.
		return false
	}
	c.entries[dst] = pmtuEntry{mtu: mtu, expires: now.Add(c.TTL)}
	return true
}

// MTU returns the current path MTU toward dst, or DefaultMTU when no live
// entry exists.
func (c *PMTUCache) MTU(dst Addr) int {
	e, ok := c.entries[dst]
	if !ok || c.clock.Now().After(e.expires) {
		return DefaultMTU
	}
	return e.mtu
}
