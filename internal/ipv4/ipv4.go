// Package ipv4 models the parts of IPv4 that the fragment-replacement
// attack exploits (Section III of the paper): packet identification (IPID),
// fragmentation, the receiver-side defragmentation cache with its per-OS
// timeout and capacity policies, path-MTU discovery state, and the ICMP
// Destination Unreachable / Fragmentation Needed message the attacker spoofs
// to force nameservers to fragment.
package ipv4

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
)

// Wire constants.
const (
	HeaderLen  = 20   // bytes, no options
	DefaultMTU = 1500 // Ethernet
	MinMTU     = 68   // RFC 791 minimum; the smallest MTU an ICMP can force
	DefaultTTL = 64
)

// Protocol is an IP protocol number.
type Protocol uint8

// Protocol numbers used in the simulation.
const (
	ProtoICMP Protocol = 1
	ProtoUDP  Protocol = 17
)

// String returns the conventional protocol name.
func (p Protocol) String() string {
	switch p {
	case ProtoICMP:
		return "icmp"
	case ProtoUDP:
		return "udp"
	default:
		return "proto(" + strconv.Itoa(int(p)) + ")"
	}
}

// Addr is an IPv4 address.
type Addr [4]byte

// String formats the address in dotted-quad notation.
func (a Addr) String() string {
	return fmt.Sprintf("%d.%d.%d.%d", a[0], a[1], a[2], a[3])
}

// IsZero reports whether the address is 0.0.0.0.
func (a Addr) IsZero() bool { return a == Addr{} }

// ParseAddr parses a dotted-quad IPv4 address.
func ParseAddr(s string) (Addr, error) {
	parts := strings.Split(s, ".")
	if len(parts) != 4 {
		return Addr{}, fmt.Errorf("ipv4: bad address %q", s)
	}
	var a Addr
	for i, p := range parts {
		v, err := strconv.Atoi(p)
		if err != nil || v < 0 || v > 255 {
			return Addr{}, fmt.Errorf("ipv4: bad address %q", s)
		}
		a[i] = byte(v)
	}
	return a, nil
}

// MustParseAddr is ParseAddr for constant addresses; it panics on bad input
// and is intended for test and example setup only.
func MustParseAddr(s string) Addr {
	a, err := ParseAddr(s)
	if err != nil {
		panic(err)
	}
	return a
}

// Packet is an IPv4 packet (or fragment thereof). FragOff is in bytes and
// must be a multiple of 8 for non-final fragments, as on the wire.
type Packet struct {
	Src     Addr
	Dst     Addr
	ID      uint16
	Proto   Protocol
	TTL     uint8
	DF      bool // don't fragment
	MF      bool // more fragments
	FragOff int  // bytes
	Payload []byte
}

// IsFragment reports whether the packet is one fragment of a larger packet.
func (p *Packet) IsFragment() bool { return p.MF || p.FragOff > 0 }

// TotalLen returns the on-wire length of this packet including the header.
func (p *Packet) TotalLen() int { return HeaderLen + len(p.Payload) }

// Clone returns a deep copy of the packet.
func (p *Packet) Clone() *Packet {
	q := *p
	q.Payload = append([]byte(nil), p.Payload...)
	return &q
}

// CopyFrom makes p a deep copy of src, reusing p's payload capacity — the
// zero-allocation counterpart of Clone for pooled packets.
func (p *Packet) CopyFrom(src *Packet) {
	payload := p.Payload[:0]
	*p = *src
	p.Payload = append(payload, src.Payload...)
}

// String renders a compact one-line description, used by packet traces.
func (p *Packet) String() string {
	frag := ""
	if p.IsFragment() {
		frag = fmt.Sprintf(" frag(off=%d,mf=%t)", p.FragOff, p.MF)
	}
	return fmt.Sprintf("%s > %s %s id=%d len=%d%s", p.Src, p.Dst, p.Proto, p.ID, p.TotalLen(), frag)
}

// Errors returned by fragmentation.
var (
	ErrFragNeeded = errors.New("ipv4: fragmentation needed but DF set")
	ErrBadMTU     = errors.New("ipv4: MTU below minimum")
)

// Fragment splits p into fragments that fit mtu. If p already fits, a single
// clone is returned. If DF is set and p does not fit, ErrFragNeeded is
// returned — the caller is expected to emit an ICMP Fragmentation Needed.
func Fragment(p *Packet, mtu int) ([]*Packet, error) {
	if mtu < MinMTU {
		return nil, fmt.Errorf("%w: %d", ErrBadMTU, mtu)
	}
	if p.TotalLen() <= mtu {
		return []*Packet{p.Clone()}, nil
	}
	if p.DF {
		return nil, ErrFragNeeded
	}
	chunk := (mtu - HeaderLen) &^ 7 // fragment data sizes are multiples of 8
	if chunk <= 0 {
		return nil, fmt.Errorf("%w: %d leaves no payload room", ErrBadMTU, mtu)
	}
	var frags []*Packet
	for off := 0; off < len(p.Payload); off += chunk {
		end := off + chunk
		last := false
		if end >= len(p.Payload) {
			end = len(p.Payload)
			last = true
		}
		f := &Packet{
			Src:     p.Src,
			Dst:     p.Dst,
			ID:      p.ID,
			Proto:   p.Proto,
			TTL:     p.TTL,
			MF:      !last,
			FragOff: p.FragOff + off,
			Payload: append([]byte(nil), p.Payload[off:end]...),
		}
		frags = append(frags, f)
	}
	return frags, nil
}

// IDAllocator chooses the IPID for outgoing packets. The predictability of
// this choice is exactly what the attacker's IPID-extrapolation step
// (Section III-2) exploits.
type IDAllocator interface {
	// Next returns the IPID for a packet from src to dst.
	Next(src, dst Addr) uint16
}

// SequentialAllocator increments one global counter for every packet sent,
// regardless of destination — the most predictable behaviour, common in
// older stacks. The zero value starts at 0 with step 1.
type SequentialAllocator struct {
	Counter uint16
	Step    uint16
}

var _ IDAllocator = (*SequentialAllocator)(nil)

// Next returns the next global IPID.
func (a *SequentialAllocator) Next(_, _ Addr) uint16 {
	step := a.Step
	if step == 0 {
		step = 1
	}
	id := a.Counter
	a.Counter += step
	return id
}

// PerDestAllocator keeps an independent counter per destination address, as
// in patched Linux. Probing from the attacker's own host does not advance
// the counter used toward the victim, so prediction requires the
// per-destination techniques of [9], [29].
type PerDestAllocator struct {
	counters map[Addr]uint16
}

var _ IDAllocator = (*PerDestAllocator)(nil)

// Next returns the next IPID for dst.
func (a *PerDestAllocator) Next(_, dst Addr) uint16 {
	if a.counters == nil {
		a.counters = make(map[Addr]uint16)
	}
	id := a.counters[dst]
	a.counters[dst] = id + 1
	return id
}

// RandomAllocator draws IPIDs from a deterministic pseudo-random stream
// (seeded, so experiments stay reproducible). Random IPIDs defeat
// extrapolation; the attacker must flood the defrag cache instead.
type RandomAllocator struct {
	State uint64 // seed / internal state; zero means 1
}

var _ IDAllocator = (*RandomAllocator)(nil)

// Next returns a pseudo-random IPID (xorshift64*).
func (a *RandomAllocator) Next(_, _ Addr) uint16 {
	if a.State == 0 {
		a.State = 1
	}
	a.State ^= a.State << 13
	a.State ^= a.State >> 7
	a.State ^= a.State << 17
	return uint16(a.State * 0x2545F4914F6CDD1D >> 48)
}
