package ntpclient

import (
	"strings"
	"testing"
)

// TestProfileByNameErrors pins the error contract the CLIs and the
// parameterised scenarios rely on: an unknown name is rejected with an
// error that names the offending value (so `-client swatch` and
// `-param client=swatch` fail with a usable message), the empty string
// is not a profile, and spelling is not whitespace-tolerant.
func TestProfileByNameErrors(t *testing.T) {
	for _, name := range []string{"swatch", "", " ntpd", "ntpd ", "systemd_timesyncd"} {
		prof, err := ProfileByName(name)
		if err == nil {
			t.Errorf("ProfileByName(%q) accepted -> %q", name, prof.Name)
			continue
		}
		if !strings.Contains(err.Error(), `"`+name+`"`) {
			t.Errorf("ProfileByName(%q) error does not quote the name: %v", name, err)
		}
		if prof != (Profile{}) {
			t.Errorf("ProfileByName(%q) returned a non-zero profile alongside the error", name)
		}
	}
}

// TestAllProfilesDistinct: the Table I catalogue lists seven distinct,
// named profiles — the invariant the per-client metric keys depend on.
func TestAllProfilesDistinct(t *testing.T) {
	seen := map[string]bool{}
	for _, pu := range AllProfiles() {
		if pu.Profile.Name == "" {
			t.Error("profile with empty name in AllProfiles")
		}
		if seen[pu.Profile.Name] {
			t.Errorf("duplicate profile %q in AllProfiles", pu.Profile.Name)
		}
		seen[pu.Profile.Name] = true
	}
	if len(seen) != 7 {
		t.Errorf("AllProfiles lists %d profiles, want 7", len(seen))
	}
}
