package ntpclient

import (
	"fmt"
	"strings"
	"time"
)

// Profile captures the DNS-lookup and association-management behaviour of
// one NTP client implementation — the parameters Table I and Table II of
// the paper depend on. Values come from public defaults and the paper's
// Section V analysis.
type Profile struct {
	// Name identifies the implementation.
	Name string
	// SNTP clients hold a single association at a time.
	SNTP bool
	// RuntimeLookup is whether the client re-queries DNS during run-time
	// when servers become unreachable (the run-time attack's prerequisite).
	RuntimeLookup bool
	// OneShot clients (ntpdate) synchronise once and exit.
	OneShot bool
	// ActsAsServer makes the client answer mode-3 queries itself, leaking
	// its sync source via the reference ID (ntpd's default; enables P2
	// upstream discovery).
	ActsAsServer bool
	// CacheDNSAddrs caches the unused addresses of the last DNS answer and
	// tries them before a new lookup (systemd-timesyncd).
	CacheDNSAddrs bool
	// MaxCachedAddrs bounds that cache (systemd keeps the 3 addresses
	// beyond the one in use; 0 = unlimited).
	MaxCachedAddrs int

	// PollInterval is the steady-state poll cadence.
	PollInterval time.Duration
	// PollBackoff doubles the poll interval after each miss up to MaxPoll
	// (SNTP retry behaviour).
	PollBackoff bool
	// MaxPoll caps the backed-off poll interval.
	MaxPoll time.Duration
	// UnreachableAfter is how many consecutive unanswered polls demobilise
	// an association (ntpd: the 8-bit reach register draining).
	UnreachableAfter int

	// TargetServers is how many associations the client builds at boot
	// (ntpd default: pool associations expand to 6 usable servers).
	TargetServers int
	// MinServers is the low-water mark that triggers a run-time DNS query
	// (ntpd NTP_MINCLOCK = 3).
	MinServers int
	// MaxServers caps mobilised associations (ntpd NTP_MAXCLOCK = 10).
	MaxServers int

	// SelectMinSamples is how many samples a source needs before it can
	// drive the clock.
	SelectMinSamples int
	// StepThreshold is the offset above which the clock steps (128 ms).
	StepThreshold time.Duration
	// PanicThreshold rejects offsets above this at run-time (ntpd: 1000 s;
	// zero disables). All profiles ignore it at boot ("the clock may be
	// way off when the system starts").
	PanicThreshold time.Duration
}

// Built-in profiles for the seven implementations in Table I.
var (
	// ProfileNTPd models ntpd with the default "pool" directive: 6 upstream
	// servers, run-time DNS when usable servers drop below 3, mode-3
	// service with RefID leak.
	ProfileNTPd = Profile{
		Name: "NTPd", RuntimeLookup: true, ActsAsServer: true,
		PollInterval: 64 * time.Second, UnreachableAfter: 8,
		TargetServers: 6, MinServers: 3, MaxServers: 10,
		SelectMinSamples: 4, StepThreshold: 128 * time.Millisecond,
		PanicThreshold: 1000 * time.Second,
	}
	// ProfileChrony models chrony: 4 sources, adaptive polling (we use the
	// mid-range), patient reachability handling, run-time re-resolution.
	ProfileChrony = Profile{
		Name: "chrony", RuntimeLookup: true,
		PollInterval: 128 * time.Second, UnreachableAfter: 20,
		TargetServers: 4, MinServers: 2, MaxServers: 8,
		SelectMinSamples: 3, StepThreshold: 128 * time.Millisecond,
	}
	// ProfileOpenNTPD models openntpd: resolves at start only; hindering
	// its servers just disables synchronisation until restart.
	ProfileOpenNTPD = Profile{
		Name: "openntpd", RuntimeLookup: false,
		PollInterval: 32 * time.Second, UnreachableAfter: 10,
		TargetServers: 4, MinServers: 1, MaxServers: 8,
		SelectMinSamples: 3, StepThreshold: 128 * time.Millisecond,
	}
	// ProfileNtpdate models the one-shot ntpdate utility.
	ProfileNtpdate = Profile{
		Name: "ntpdate", SNTP: true, OneShot: true,
		PollInterval: 2 * time.Second, UnreachableAfter: 4,
		TargetServers: 1, MinServers: 1, MaxServers: 1,
		SelectMinSamples: 1, StepThreshold: 128 * time.Millisecond,
	}
	// ProfileAndroid models the Android SNTP client: one server, resolved
	// by hostname on every synchronisation (hence run-time attackable).
	ProfileAndroid = Profile{
		Name: "Android", SNTP: true, RuntimeLookup: true,
		PollInterval: 64 * time.Second, UnreachableAfter: 3,
		TargetServers: 1, MinServers: 1, MaxServers: 1,
		SelectMinSamples: 1, StepThreshold: 128 * time.Millisecond,
	}
	// ProfileNtpclient models the minimal ntpclient tool: one server,
	// resolved once.
	ProfileNtpclient = Profile{
		Name: "ntpclient", SNTP: true, RuntimeLookup: false,
		PollInterval: 60 * time.Second, UnreachableAfter: 6,
		TargetServers: 1, MinServers: 1, MaxServers: 1,
		SelectMinSamples: 1, StepThreshold: 128 * time.Millisecond,
	}
	// ProfileSystemd models systemd-timesyncd: SNTP with the 4-address DNS
	// answer cached; servers are tried in turn with poll backoff before a
	// new DNS query is issued.
	ProfileSystemd = Profile{
		Name: "systemd-timesyncd", SNTP: true, RuntimeLookup: true,
		CacheDNSAddrs: true, MaxCachedAddrs: 3,
		PollInterval: 32 * time.Second, PollBackoff: true, MaxPoll: 512 * time.Second,
		UnreachableAfter: 6,
		TargetServers:    1, MinServers: 1, MaxServers: 1,
		SelectMinSamples: 1, StepThreshold: 128 * time.Millisecond,
	}
)

// AllProfiles lists the Table I client implementations with their measured
// pool.ntp.org usage shares (Rytilahti et al. [30], as cited in Table I).
func AllProfiles() []ProfileUsage {
	return []ProfileUsage{
		{ProfileNTPd, 26.4},
		{ProfileOpenNTPD, 4.4},
		{ProfileChrony, 4.8},
		{ProfileNtpdate, 20.0},
		{ProfileAndroid, 14.0},
		{ProfileNtpclient, 1.2},
		{ProfileSystemd, 0}, // "not listed" in the usage study
	}
}

// ProfileUsage pairs a profile with its pool.ntp.org usage share (percent).
type ProfileUsage struct {
	Profile  Profile
	UsagePct float64
}

// ProfileByName resolves a client-profile name as the CLIs and
// parameterised scenarios spell it (case-insensitive: "ntpd", "chrony",
// "openntpd", "ntpdate", "android", "ntpclient", "systemd" or
// "systemd-timesyncd").
func ProfileByName(name string) (Profile, error) {
	switch strings.ToLower(name) {
	case "ntpd":
		return ProfileNTPd, nil
	case "chrony":
		return ProfileChrony, nil
	case "openntpd":
		return ProfileOpenNTPD, nil
	case "ntpdate":
		return ProfileNtpdate, nil
	case "android":
		return ProfileAndroid, nil
	case "ntpclient":
		return ProfileNtpclient, nil
	case "systemd", "systemd-timesyncd":
		return ProfileSystemd, nil
	default:
		return Profile{}, fmt.Errorf("ntpclient: unknown client profile %q", name)
	}
}
