package ntpclient

import (
	"time"

	"dnstime/internal/simclock"
)

// LocalClock is a client's software clock: the true (simulation) time plus
// a mutable offset. Time-shifting attacks succeed when they change this
// offset on the victim.
type LocalClock struct {
	clock  *simclock.Clock
	offset time.Duration
}

// NewLocalClock returns a clock with the given initial error relative to
// true time (e.g. a dead-RTC machine boots hours off).
func NewLocalClock(clock *simclock.Clock, initialError time.Duration) *LocalClock {
	return &LocalClock{clock: clock, offset: initialError}
}

// Now returns the client's current local time.
func (c *LocalClock) Now() time.Time { return c.clock.Now().Add(c.offset) }

// Offset returns local-minus-true time.
func (c *LocalClock) Offset() time.Duration { return c.offset }

// Step adjusts the clock by delta at once (an NTP "step").
func (c *LocalClock) Step(delta time.Duration) { c.offset += delta }

// StepEvent records one clock adjustment.
type StepEvent struct {
	// At is the true simulation time of the step.
	At time.Time
	// Delta is the applied adjustment.
	Delta time.Duration
	// Sources is how many servers contributed to the decision.
	Sources int
}
