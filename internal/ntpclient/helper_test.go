package ntpclient

import (
	"dnstime/internal/ipv4"
	"dnstime/internal/udp"
)

// buildSpoofed wraps an NTP payload in a spoofed-source IPv4/UDP packet.
func buildSpoofed(spoofedSrc, dst ipv4.Addr, ntpPayload []byte) *ipv4.Packet {
	d := &udp.Datagram{
		Header:  udp.Header{SrcPort: 123, DstPort: 123},
		Payload: ntpPayload,
	}
	wire := udp.WithChecksum(spoofedSrc, dst, d.Marshal())
	return &ipv4.Packet{Src: spoofedSrc, Dst: dst, Proto: ipv4.ProtoUDP, TTL: 64, Payload: wire}
}
