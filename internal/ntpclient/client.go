// Package ntpclient implements a behavioural NTP/SNTP client engine
// parameterised by implementation Profiles (ntpd, chrony, openntpd,
// ntpdate, Android, ntpclient, systemd-timesyncd). The engine reproduces
// the mechanisms the paper's attacks manipulate: DNS-based server
// discovery at boot and at run-time, the reachability register that
// demobilises unresponsive associations, majority/median-based clock
// selection, and the mode-3 service whose reference ID leaks the current
// sync source.
package ntpclient

import (
	"fmt"
	"sort"
	"time"

	"dnstime/internal/dnsres"
	"dnstime/internal/ipv4"
	"dnstime/internal/ntpwire"
	"dnstime/internal/simclock"
	"dnstime/internal/simnet"
)

// Association is the client-side state for one NTP server.
type Association struct {
	Addr ipv4.Addr
	// Reach is the 8-bit reachability shift register.
	Reach uint8
	// Misses counts consecutive unanswered polls.
	Misses int
	// Samples counts collected offset samples.
	Samples int
	// LastOffset is the most recent measured offset.
	LastOffset time.Duration
	// Demobilized marks a torn-down association.
	Demobilized bool

	pending bool
	t1Local time.Time
	kodSeen bool
}

// Usable reports whether the association can contribute to selection.
func (a *Association) Usable() bool { return !a.Demobilized && a.Reach != 0 }

// EventKind classifies client log events.
type EventKind int

// Client event kinds.
const (
	EventDNSLookup EventKind = iota + 1
	EventMobilize
	EventDemobilize
	EventStep
	EventPanic
	EventKoD
)

// String names the event kind.
func (k EventKind) String() string {
	switch k {
	case EventDNSLookup:
		return "dns-lookup"
	case EventMobilize:
		return "mobilize"
	case EventDemobilize:
		return "demobilize"
	case EventStep:
		return "step"
	case EventPanic:
		return "panic"
	case EventKoD:
		return "kod"
	default:
		return "?"
	}
}

// Event is one entry in the client's event log.
type Event struct {
	At   time.Time
	Kind EventKind
	Addr ipv4.Addr
	Note string
}

// String renders the event.
func (e Event) String() string {
	return fmt.Sprintf("%s %-11s %s %s", e.At.Format("15:04:05"), e.Kind, e.Addr, e.Note)
}

// Client is a behavioural NTP client bound to a simnet host.
type Client struct {
	host   *simnet.Host
	clock  *simclock.Clock
	prof   Profile
	local  *LocalClock
	stub   *dnsres.Stub
	domain string

	assocs    map[ipv4.Addr]*Association
	order     []ipv4.Addr
	cached    []ipv4.Addr // systemd-style cached addresses
	selected  ipv4.Addr   // current sync source (zero = none)
	port      uint16
	running   bool
	bootDone  bool
	synced    bool
	lookingUp bool
	pollNow   time.Duration // current (possibly backed-off) poll interval
	ticker    *simclock.Timer

	// Done is set when a OneShot client has synchronised.
	Done bool
	// Steps records every clock adjustment.
	Steps []StepEvent
	// Events is the client's activity log.
	Events []Event
	// DNSLookups counts DNS queries issued.
	DNSLookups int
}

// New creates a client on host using profile prof, discovering servers by
// resolving domain through the resolver at resolverAddr. initialClockError
// is the local clock's starting error versus true time.
func New(host *simnet.Host, prof Profile, resolverAddr ipv4.Addr, domain string, initialClockError time.Duration, seed int64) *Client {
	c := &Client{
		host:   host,
		clock:  host.Clock(),
		prof:   prof,
		local:  NewLocalClock(host.Clock(), initialClockError),
		stub:   dnsres.NewStub(host, resolverAddr, seed),
		domain: domain,
		assocs: make(map[ipv4.Addr]*Association),
	}
	c.pollNow = prof.PollInterval
	return c
}

// Profile returns the client's behaviour profile.
func (c *Client) Profile() Profile { return c.prof }

// HostAddr returns the client host's network address (the address the
// attacker spoofs when abusing server-side rate limiting).
func (c *Client) HostAddr() ipv4.Addr { return c.host.Addr() }

// LocalNow returns the client's local clock reading.
func (c *Client) LocalNow() time.Time { return c.local.Now() }

// ClockOffset returns the client's clock error (local − true).
func (c *Client) ClockOffset() time.Duration { return c.local.Offset() }

// Selected returns the current sync source (zero address if none).
func (c *Client) Selected() ipv4.Addr { return c.selected }

// Associations returns a snapshot of all (including demobilised)
// associations in mobilisation order.
func (c *Client) Associations() []Association {
	out := make([]Association, 0, len(c.order))
	for _, a := range c.order {
		out = append(out, *c.assocs[a])
	}
	return out
}

// UsableCount reports the number of usable associations.
func (c *Client) UsableCount() int {
	n := 0
	for _, a := range c.assocs {
		if a.Usable() {
			n++
		}
	}
	return n
}

// MobilizedCount reports the number of live (non-demobilised) associations.
func (c *Client) MobilizedCount() int {
	n := 0
	for _, a := range c.assocs {
		if !a.Demobilized {
			n++
		}
	}
	return n
}

func (c *Client) logEvent(kind EventKind, addr ipv4.Addr, note string) {
	c.Events = append(c.Events, Event{At: c.clock.Now(), Kind: kind, Addr: addr, Note: note})
}

// Start boots the client: bind the NTP port, do the boot-time DNS lookup,
// and begin polling.
func (c *Client) Start() error {
	if c.running {
		return fmt.Errorf("ntpclient %s: already running", c.prof.Name)
	}
	c.port = ntpwire.Port
	if err := c.host.HandleUDP(c.port, c.receive); err != nil {
		return fmt.Errorf("ntpclient %s: bind: %w", c.prof.Name, err)
	}
	c.running = true
	c.lookup()
	c.scheduleTick()
	return nil
}

// Stop halts polling and releases the port.
func (c *Client) Stop() {
	if !c.running {
		return
	}
	c.running = false
	if c.ticker != nil {
		c.ticker.Stop()
	}
	c.host.UnhandleUDP(c.port)
}

// Restart simulates a reboot: all associations are forgotten and the boot
// sequence (including the boot-time DNS lookup) runs again.
func (c *Client) Restart() error {
	c.Stop()
	c.assocs = make(map[ipv4.Addr]*Association)
	c.order = nil
	c.cached = nil
	c.selected = ipv4.Addr{}
	c.bootDone = false
	c.Done = false
	c.pollNow = c.prof.PollInterval
	return c.Start()
}

func (c *Client) scheduleTick() {
	if !c.running {
		return
	}
	c.ticker = c.clock.Schedule(c.pollNow, func() {
		c.tick()
		c.scheduleTick()
	})
}

// tick is one poll round: account the previous round, maintain the server
// set, and send new polls.
func (c *Client) tick() {
	if !c.running || (c.prof.OneShot && c.Done) {
		return
	}
	c.accountMisses()
	c.maintainServers()
	c.sendPolls()
}

// accountMisses shifts reach registers for pending (unanswered) polls and
// demobilises dead associations.
func (c *Client) accountMisses() {
	for _, addr := range c.order {
		a := c.assocs[addr]
		if a.Demobilized {
			continue
		}
		if a.pending {
			a.pending = false
			a.Misses++
			a.Reach <<= 1
			if c.prof.PollBackoff {
				c.pollNow *= 2
				if c.prof.MaxPoll > 0 && c.pollNow > c.prof.MaxPoll {
					c.pollNow = c.prof.MaxPoll
				}
			}
			if a.Misses >= c.prof.UnreachableAfter {
				a.Demobilized = true
				c.logEvent(EventDemobilize, addr, fmt.Sprintf("after %d misses", a.Misses))
				if c.selected == addr {
					c.selected = ipv4.Addr{}
				}
			}
		}
	}
}

// maintainServers tops up the association set: boot-phase growth toward
// TargetServers, run-time refill below MinServers, and the SNTP cached-
// address fallback.
func (c *Client) maintainServers() {
	if c.prof.SNTP {
		c.maintainSNTP()
		return
	}
	usable := c.UsableCount()
	mobilized := c.MobilizedCount()
	switch {
	case !c.bootDone && mobilized < c.prof.TargetServers:
		c.lookup()
	case c.bootDone && c.prof.RuntimeLookup && usable < c.prof.MinServers && mobilized < c.prof.TargetServers:
		c.lookup()
	}
}

func (c *Client) maintainSNTP() {
	if c.MobilizedCount() > 0 {
		return
	}
	// Current server demobilised: try the cached list first.
	for len(c.cached) > 0 {
		next := c.cached[0]
		c.cached = c.cached[1:]
		if a, ok := c.assocs[next]; ok && a.Demobilized {
			continue
		}
		c.mobilize(next)
		c.pollNow = c.prof.PollInterval // reset backoff for the new server
		return
	}
	if c.prof.RuntimeLookup || !c.bootDone {
		c.lookup()
	}
}

// lookup issues a DNS query for the configured domain and mobilises
// returned servers.
func (c *Client) lookup() {
	if c.lookingUp {
		return
	}
	c.lookingUp = true
	c.DNSLookups++
	c.logEvent(EventDNSLookup, ipv4.Addr{}, c.domain)
	c.stub.LookupA(c.domain, func(addrs []ipv4.Addr, _ uint32, err error) {
		c.lookingUp = false
		if err != nil || !c.running {
			return
		}
		if c.prof.SNTP {
			c.handleSNTPAnswer(addrs)
			return
		}
		// Boot-phase growth stops at TargetServers; run-time refill may go
		// up to MaxServers (ntpd NTP_MAXCLOCK).
		limit := c.prof.TargetServers
		if c.bootDone {
			limit = c.prof.MaxServers
		}
		for _, a := range addrs {
			if c.MobilizedCount() >= limit {
				break
			}
			c.mobilize(a)
		}
		if c.MobilizedCount() >= c.prof.TargetServers {
			c.bootDone = true
		}
		c.sendPolls()
	})
}

func (c *Client) handleSNTPAnswer(addrs []ipv4.Addr) {
	if len(addrs) == 0 {
		return
	}
	fresh := addrs[:0:0]
	for _, a := range addrs {
		if assoc, ok := c.assocs[a]; ok && assoc.Demobilized {
			continue
		}
		fresh = append(fresh, a)
	}
	if len(fresh) == 0 {
		fresh = addrs // all known-dead: retry them anyway
	}
	c.mobilize(fresh[0])
	if c.prof.CacheDNSAddrs && len(fresh) > 1 {
		rest := fresh[1:]
		if c.prof.MaxCachedAddrs > 0 && len(rest) > c.prof.MaxCachedAddrs {
			rest = rest[:c.prof.MaxCachedAddrs]
		}
		c.cached = append([]ipv4.Addr(nil), rest...)
	}
	c.bootDone = true
	c.pollNow = c.prof.PollInterval
	c.sendPolls()
}

// mobilize creates (or revives) an association.
func (c *Client) mobilize(addr ipv4.Addr) {
	if a, ok := c.assocs[addr]; ok {
		if !a.Demobilized {
			return
		}
		a.Demobilized = false
		a.Reach, a.Misses, a.Samples = 0, 0, 0
		c.logEvent(EventMobilize, addr, "revived")
		return
	}
	c.assocs[addr] = &Association{Addr: addr}
	c.order = append(c.order, addr)
	c.logEvent(EventMobilize, addr, "")
}

// sendPolls sends one mode-3 query to every live association.
func (c *Client) sendPolls() {
	for _, addr := range c.order {
		a := c.assocs[addr]
		if a.Demobilized || a.pending {
			continue
		}
		a.pending = true
		a.t1Local = c.local.Now()
		pkt := ntpwire.NewClientPacket(a.t1Local)
		_, _ = c.host.SendUDP(addr, c.port, ntpwire.Port, pkt.Marshal())
	}
}

// receive handles both mode-4 responses and (when ActsAsServer) mode-3
// queries from third parties.
func (c *Client) receive(src ipv4.Addr, srcPort uint16, payload []byte) {
	pkt, err := ntpwire.Unmarshal(payload)
	if err != nil {
		return
	}
	switch pkt.Mode {
	case ntpwire.ModeServer:
		c.receiveResponse(src, pkt)
	case ntpwire.ModeClient:
		if c.prof.ActsAsServer {
			c.serveQuery(src, srcPort, pkt)
		}
	}
}

// serveQuery answers a third-party mode-3 query, leaking the current sync
// source in the reference ID (stratum 3 ⇒ RefID is the upstream address).
func (c *Client) serveQuery(src ipv4.Addr, srcPort uint16, q *ntpwire.Packet) {
	refid := [4]byte(c.selected)
	resp := ntpwire.NewServerPacket(q, c.local.Now(), 3, refid)
	_, _ = c.host.SendUDP(src, c.port, srcPort, resp.Marshal())
}

func (c *Client) receiveResponse(src ipv4.Addr, pkt *ntpwire.Packet) {
	a, ok := c.assocs[src]
	if !ok || a.Demobilized || !a.pending {
		return
	}
	if pkt.IsKoD() {
		a.kodSeen = true
		c.logEvent(EventKoD, src, pkt.KissCode())
		// Honour the KoD by backing off this association only.
		a.pending = false
		return
	}
	a.pending = false
	a.Misses = 0
	a.Reach = a.Reach<<1 | 1
	t4 := c.local.Now()
	a.LastOffset = ntpwire.Offset(pkt, a.t1Local, t4)
	a.Samples++
	c.evaluate()
}

// evaluate runs clock selection over the usable associations and steps the
// local clock when a qualified majority agrees on a large offset.
func (c *Client) evaluate() {
	if c.prof.SNTP {
		c.evaluateSNTP()
		return
	}
	var offsets []time.Duration
	var contributors []*Association
	for _, addr := range c.order {
		a := c.assocs[addr]
		if a.Usable() && a.Samples >= c.prof.SelectMinSamples {
			offsets = append(offsets, a.LastOffset)
			contributors = append(contributors, a)
		}
	}
	if len(offsets) == 0 {
		return
	}
	mobilized := c.MobilizedCount()
	if len(offsets)*2 <= mobilized {
		// Fewer than a majority of live sources are selectable: wait.
		return
	}
	sort.Slice(offsets, func(i, j int) bool { return offsets[i] < offsets[j] })
	median := offsets[len(offsets)/2]
	// The clique that agrees with the median within 128 ms must be a
	// majority of contributors (simplified Marzullo/cluster step).
	agree := 0
	var agreeing []*Association
	for _, a := range contributors {
		if within(a.LastOffset, median, 128*time.Millisecond) {
			agree++
			agreeing = append(agreeing, a)
		}
	}
	if agree*2 <= len(contributors) {
		return
	}
	// Track the sync source: the agreeing association closest to median.
	c.selected = agreeing[0].Addr
	c.applyOffset(median, agree)
}

func (c *Client) evaluateSNTP() {
	for _, addr := range c.order {
		a := c.assocs[addr]
		if a.Usable() && a.Samples >= c.prof.SelectMinSamples {
			c.selected = a.Addr
			c.applyOffset(a.LastOffset, 1)
			return
		}
	}
}

func (c *Client) applyOffset(off time.Duration, sources int) {
	if abs(off) < c.prof.StepThreshold {
		c.synced = true
		if c.prof.OneShot {
			c.Done = true
		}
		return
	}
	// The panic threshold is not enforced before the first successful
	// synchronisation ("the clock may be way off when the system starts").
	if c.prof.PanicThreshold > 0 && c.synced && abs(off) > c.prof.PanicThreshold {
		c.logEvent(EventPanic, c.selected, fmt.Sprintf("offset %v exceeds panic threshold", off))
		return
	}
	c.local.Step(off)
	c.synced = true
	c.Steps = append(c.Steps, StepEvent{At: c.clock.Now(), Delta: off, Sources: sources})
	c.logEvent(EventStep, c.selected, fmt.Sprintf("%v (%d sources)", off, sources))
	// Offsets measured before the step are stale.
	for _, a := range c.assocs {
		a.LastOffset = 0
	}
	if c.prof.OneShot {
		c.Done = true
	}
}

func within(a, b, tol time.Duration) bool { return abs(a-b) <= tol }

func abs(d time.Duration) time.Duration {
	if d < 0 {
		return -d
	}
	return d
}
