package ntpclient

import (
	"testing"
	"time"

	"dnstime/internal/dnsauth"
	"dnstime/internal/dnsres"
	"dnstime/internal/ipv4"
	"dnstime/internal/ntpserv"
	"dnstime/internal/ntpwire"
	"dnstime/internal/simclock"
	"dnstime/internal/simnet"
)

var (
	t0         = time.Date(2020, 1, 1, 0, 0, 0, 0, time.UTC)
	nsAddr     = ipv4.MustParseAddr("198.51.100.53")
	resAddr    = ipv4.MustParseAddr("192.0.2.53")
	clientAddr = ipv4.MustParseAddr("192.0.2.10")
)

// lab wires a network with an authoritative server for pool.ntp.org, a
// recursive resolver, and a set of honest NTP servers.
type lab struct {
	t       *testing.T
	clk     *simclock.Clock
	net     *simnet.Network
	auth    *dnsauth.Server
	res     *dnsres.Resolver
	honest  []*ntpserv.Server
	hAddrs  []ipv4.Addr
	evil    []*ntpserv.Server
	eAddrs  []ipv4.Addr
	nextIP  byte
	clients int
}

func newLab(t *testing.T, honestServers int) *lab {
	t.Helper()
	clk := simclock.New(t0)
	n := simnet.New(clk)
	authHost := n.MustAddHost(nsAddr, simnet.HostConfig{})
	auth, err := dnsauth.New(authHost, dnsauth.Config{})
	if err != nil {
		t.Fatal(err)
	}
	resHost := n.MustAddHost(resAddr, simnet.HostConfig{})
	res, err := dnsres.New(resHost, dnsres.Config{Delegations: map[string]ipv4.Addr{"ntp.org": nsAddr}})
	if err != nil {
		t.Fatal(err)
	}
	l := &lab{t: t, clk: clk, net: n, auth: auth, res: res, nextIP: 1}
	for i := 0; i < honestServers; i++ {
		l.addHonest()
	}
	l.syncPool()
	return l
}

func (l *lab) addHonest() *ntpserv.Server {
	addr := ipv4.Addr{10, 0, 0, l.nextIP}
	l.nextIP++
	h := l.net.MustAddHost(addr, simnet.HostConfig{})
	s, err := ntpserv.New(h, ntpserv.Config{RateLimit: ntpserv.RateLimitConfig{Enabled: true}})
	if err != nil {
		l.t.Fatal(err)
	}
	l.honest = append(l.honest, s)
	l.hAddrs = append(l.hAddrs, addr)
	return s
}

func (l *lab) addEvil(offset time.Duration) *ntpserv.Server {
	addr := ipv4.Addr{6, 6, 6, l.nextIP}
	l.nextIP++
	h := l.net.MustAddHost(addr, simnet.HostConfig{})
	s, err := ntpserv.New(h, ntpserv.Config{Offset: offset})
	if err != nil {
		l.t.Fatal(err)
	}
	l.evil = append(l.evil, s)
	l.eAddrs = append(l.eAddrs, addr)
	return s
}

// syncPool rebuilds the pool.ntp.org zone from the honest servers.
func (l *lab) syncPool() {
	l.auth.AddPool(&dnsauth.Pool{Name: "pool.ntp.org", Addrs: append([]ipv4.Addr(nil), l.hAddrs...), PerResponse: 4, TTL: 150})
}

// poisonCache plants attacker addresses for pool.ntp.org directly into the
// resolver cache (the poisoning pipeline itself is exercised in
// internal/attack; here we test client reaction).
func (l *lab) poisonCache(ttl uint32) {
	l.auth.AddPool(&dnsauth.Pool{Name: "pool.ntp.org", Addrs: append([]ipv4.Addr(nil), l.eAddrs...), PerResponse: len(l.eAddrs), TTL: ttl})
}

func (l *lab) newClient(prof Profile, clockErr time.Duration) *Client {
	addr := ipv4.Addr{192, 0, 2, 100 + l.nextIP}
	l.nextIP++
	h := l.net.MustAddHost(addr, simnet.HostConfig{})
	l.clients++
	return New(h, prof, resAddr, "pool.ntp.org", clockErr, int64(l.clients))
}

func TestNTPdBootSynchronises(t *testing.T) {
	l := newLab(t, 12)
	c := l.newClient(ProfileNTPd, -300*time.Second)
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	l.clk.RunFor(20 * time.Minute)
	if off := c.ClockOffset(); abs(off) > time.Second {
		t.Errorf("clock offset = %v after boot, want ≈0", off)
	}
	if len(c.Steps) == 0 {
		t.Fatal("no clock steps recorded")
	}
	if c.MobilizedCount() < ProfileNTPd.TargetServers {
		t.Errorf("mobilized = %d, want %d", c.MobilizedCount(), ProfileNTPd.TargetServers)
	}
}

func TestSNTPBootSynchronises(t *testing.T) {
	l := newLab(t, 8)
	c := l.newClient(ProfileSystemd, 45*time.Second)
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	l.clk.RunFor(5 * time.Minute)
	if off := c.ClockOffset(); abs(off) > time.Second {
		t.Errorf("clock offset = %v, want ≈0", off)
	}
	if c.MobilizedCount() != 1 {
		t.Errorf("SNTP mobilized = %d, want 1", c.MobilizedCount())
	}
}

func TestBootTimePoisoningShiftsAllProfiles(t *testing.T) {
	// Table I: every client implementation is vulnerable at boot-time.
	for _, pu := range AllProfiles() {
		pu := pu
		t.Run(pu.Profile.Name, func(t *testing.T) {
			l := newLab(t, 8)
			for i := 0; i < 4; i++ {
				l.addEvil(-500 * time.Second)
			}
			l.poisonCache(86400) // resolver cache poisoned before boot
			c := l.newClient(pu.Profile, 0)
			if err := c.Start(); err != nil {
				t.Fatal(err)
			}
			l.clk.RunFor(30 * time.Minute)
			off := c.ClockOffset()
			if off > -499*time.Second || off < -501*time.Second {
				t.Errorf("%s: offset = %v, want ≈ −500 s", pu.Profile.Name, off)
			}
		})
	}
}

func TestMajorityHonestPreventsShift(t *testing.T) {
	// With honest majority, a minority of attacker servers cannot shift
	// the ntpd client (the property Chronos relies on).
	l := newLab(t, 4)
	for i := 0; i < 2; i++ {
		l.addEvil(-500 * time.Second)
	}
	// Pool mixes 4 honest + 2 evil.
	mixed := append(append([]ipv4.Addr(nil), l.hAddrs...), l.eAddrs...)
	l.auth.AddPool(&dnsauth.Pool{Name: "pool.ntp.org", Addrs: mixed, PerResponse: 6, TTL: 150})
	c := l.newClient(ProfileNTPd, 0)
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	l.clk.RunFor(30 * time.Minute)
	if off := abs(c.ClockOffset()); off > time.Second {
		t.Errorf("offset = %v with honest majority, want ≈0", c.ClockOffset())
	}
}

func TestUnreachableServersDemobilized(t *testing.T) {
	l := newLab(t, 8)
	c := l.newClient(ProfileNTPd, 0)
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	l.clk.RunFor(10 * time.Minute)
	before := c.MobilizedCount()
	if before < 6 {
		t.Fatalf("mobilized = %d before attack", before)
	}
	// Rate-limit every honest server against the client (simulating the
	// spoofed flood) by driving the server-side limiter directly.
	for _, s := range l.honest {
		floodServer(l, s, clientOf(c))
	}
	l.clk.RunFor(30 * time.Minute)
	// All upstreams are starved, so usable associations collapse. (The
	// client keeps re-mobilising pool servers from DNS — they are still
	// listed — but they never answer, so they are not usable.)
	if got := c.UsableCount(); got > 1 {
		t.Errorf("usable = %d after flood (before: %d mobilized), want ≤1", got, before)
	}
	demob := 0
	for _, e := range c.Events {
		if e.Kind == EventDemobilize {
			demob++
		}
	}
	if demob < 4 {
		t.Errorf("demobilize events = %d, want ≥4", demob)
	}
}

func TestRuntimeRequeryAfterStarvation(t *testing.T) {
	// ntpd re-queries DNS once usable servers drop below MinServers; the
	// poisoned cache then redirects it to attacker servers (−500 s).
	l := newLab(t, 8)
	for i := 0; i < 4; i++ {
		l.addEvil(-500 * time.Second)
	}
	c := l.newClient(ProfileNTPd, 0)
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	l.clk.RunFor(15 * time.Minute) // boot and sync honestly
	if abs(c.ClockOffset()) > time.Second {
		t.Fatalf("client did not sync honestly first: %v", c.ClockOffset())
	}
	lookupsBefore := c.DNSLookups
	// Poison the future: DNS now returns attacker servers.
	l.poisonCache(86400)
	l.res.Evict("pool.ntp.org", 1)
	// Starve all current upstreams.
	for _, s := range l.honest {
		floodServer(l, s, clientOf(c))
	}
	l.clk.RunFor(90 * time.Minute)
	if c.DNSLookups <= lookupsBefore {
		t.Fatal("client never re-queried DNS at run-time")
	}
	off := c.ClockOffset()
	if off > -499*time.Second || off < -501*time.Second {
		t.Errorf("offset = %v, want ≈ −500 s after run-time attack", off)
	}
}

func TestOpenNTPDNoRuntimeLookup(t *testing.T) {
	l := newLab(t, 8)
	c := l.newClient(ProfileOpenNTPD, 0)
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	l.clk.RunFor(15 * time.Minute)
	lookups := c.DNSLookups
	for _, s := range l.honest {
		floodServer(l, s, clientOf(c))
	}
	l.clk.RunFor(60 * time.Minute)
	if c.DNSLookups != lookups {
		t.Errorf("openntpd issued %d run-time lookups, want 0", c.DNSLookups-lookups)
	}
	// Clock simply stops being disciplined; no shift.
	if abs(c.ClockOffset()) > time.Second {
		t.Errorf("offset = %v, want unchanged", c.ClockOffset())
	}
}

func TestSystemdUsesCachedAddressesBeforeDNS(t *testing.T) {
	l := newLab(t, 8)
	c := l.newClient(ProfileSystemd, 0)
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	l.clk.RunFor(5 * time.Minute)
	lookups := c.DNSLookups
	first := c.Selected()
	if first.IsZero() {
		t.Fatal("no server selected")
	}
	// Kill only the current server.
	for _, s := range l.honest {
		if s.Addr() == first {
			floodServer(l, s, clientOf(c))
		}
	}
	l.clk.RunFor(90 * time.Minute)
	if c.Selected() == first || c.Selected().IsZero() {
		t.Fatalf("client did not move off dead server (selected %v)", c.Selected())
	}
	if c.DNSLookups != lookups {
		t.Errorf("systemd did DNS lookup despite cached addresses (%d new)", c.DNSLookups-lookups)
	}
}

func TestNtpdateOneShot(t *testing.T) {
	l := newLab(t, 4)
	c := l.newClient(ProfileNtpdate, -42*time.Second)
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	l.clk.RunFor(2 * time.Minute)
	if !c.Done {
		t.Fatal("ntpdate did not finish")
	}
	if abs(c.ClockOffset()) > time.Second {
		t.Errorf("offset = %v after one-shot sync", c.ClockOffset())
	}
	steps := len(c.Steps)
	l.clk.RunFor(30 * time.Minute)
	if len(c.Steps) != steps {
		t.Error("one-shot client kept adjusting after Done")
	}
}

func TestRefIDLeaksSelectedSource(t *testing.T) {
	l := newLab(t, 8)
	c := l.newClient(ProfileNTPd, 0)
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	l.clk.RunFor(20 * time.Minute)
	if c.Selected().IsZero() {
		t.Fatal("no sync source selected")
	}
	// Third party queries the client (which acts as a server).
	probe := l.net.MustAddHost(ipv4.MustParseAddr("203.0.113.99"), simnet.HostConfig{})
	var leaked ipv4.Addr
	port := probe.AllocPort()
	probe.HandleUDP(port, func(_ ipv4.Addr, _ uint16, payload []byte) {
		if p, err := ntpwire.Unmarshal(payload); err == nil {
			if a, ok := p.RefIDAddr(); ok {
				leaked = a
			}
		}
	})
	q := ntpwire.NewClientPacket(l.clk.Now())
	probe.SendUDP(clientOf(c), port, ntpwire.Port, q.Marshal())
	l.clk.RunFor(5 * time.Second)
	if leaked != c.Selected() {
		t.Errorf("leaked refid = %v, selected = %v", leaked, c.Selected())
	}
}

func TestSNTPClientDoesNotServe(t *testing.T) {
	l := newLab(t, 4)
	c := l.newClient(ProfileSystemd, 0)
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	l.clk.RunFor(5 * time.Minute)
	probe := l.net.MustAddHost(ipv4.MustParseAddr("203.0.113.99"), simnet.HostConfig{})
	answered := false
	port := probe.AllocPort()
	probe.HandleUDP(port, func(ipv4.Addr, uint16, []byte) { answered = true })
	q := ntpwire.NewClientPacket(l.clk.Now())
	probe.SendUDP(clientOf(c), port, ntpwire.Port, q.Marshal())
	l.clk.RunFor(5 * time.Second)
	if answered {
		t.Error("SNTP client answered a mode-3 query")
	}
}

func TestPanicThresholdBlocksHugeShiftAfterSync(t *testing.T) {
	l := newLab(t, 8)
	for i := 0; i < 6; i++ {
		l.addEvil(-2000 * time.Second) // beyond ntpd's 1000 s panic limit
	}
	c := l.newClient(ProfileNTPd, 0)
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	l.clk.RunFor(15 * time.Minute) // sync honestly
	l.poisonCache(86400)
	l.res.Evict("pool.ntp.org", 1)
	for _, s := range l.honest {
		floodServer(l, s, clientOf(c))
	}
	l.clk.RunFor(90 * time.Minute)
	if abs(c.ClockOffset()) > time.Second {
		t.Errorf("offset = %v; panic threshold should have blocked ±2000 s", c.ClockOffset())
	}
	var panicked bool
	for _, e := range c.Events {
		if e.Kind == EventPanic {
			panicked = true
		}
	}
	if !panicked {
		t.Error("no panic event logged")
	}
}

func TestRestartForgetsAssociations(t *testing.T) {
	l := newLab(t, 8)
	c := l.newClient(ProfileNTPd, 0)
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	l.clk.RunFor(15 * time.Minute)
	if err := c.Restart(); err != nil {
		t.Fatal(err)
	}
	if c.MobilizedCount() != 0 && len(c.Associations()) > ProfileNTPd.TargetServers {
		t.Error("restart did not clear associations")
	}
	l.clk.RunFor(15 * time.Minute)
	if c.MobilizedCount() < ProfileNTPd.TargetServers {
		t.Errorf("client did not rebuild associations after restart: %d", c.MobilizedCount())
	}
}

func TestEventStringsNonEmpty(t *testing.T) {
	kinds := []EventKind{EventDNSLookup, EventMobilize, EventDemobilize, EventStep, EventPanic, EventKoD, EventKind(99)}
	for _, k := range kinds {
		if k.String() == "" {
			t.Errorf("empty string for kind %d", k)
		}
	}
	e := Event{At: t0, Kind: EventStep, Addr: nsAddr, Note: "x"}
	if e.String() == "" {
		t.Error("empty event string")
	}
}

// clientOf returns the client's host address.
func clientOf(c *Client) ipv4.Addr { return c.host.Addr() }

// floodServer makes srv rate-limit victim by injecting spoofed mode-3
// queries at high rate for a sustained period, re-poked periodically so the
// hold-down never expires (the attacker's cheap background flood).
func floodServer(l *lab, srv *ntpserv.Server, victim ipv4.Addr) {
	q := ntpwire.NewClientPacket(l.clk.Now()).Marshal()
	inject := func() {
		d := buildSpoofed(victim, srv.Addr(), q)
		l.net.Inject(d)
	}
	// Initial burst (beyond the 12-token bucket) to trip the limiter.
	for i := 0; i < 40; i++ {
		i := i
		l.clk.Schedule(time.Duration(i)*100*time.Millisecond, inject)
	}
	// Periodic re-poke (well inside the 60 s hold-down) for 3 hours.
	tk := l.clk.Tick(20*time.Second, inject)
	l.clk.Schedule(3*time.Hour, tk.Stop)
}

// TestProfileByName: every Table I profile resolves under its CLI
// spelling, case-insensitively; unknown names are rejected.
func TestProfileByName(t *testing.T) {
	for _, name := range []string{"ntpd", "chrony", "openntpd", "ntpdate", "android", "ntpclient", "systemd", "systemd-timesyncd", "NTPd", "Chrony"} {
		if _, err := ProfileByName(name); err != nil {
			t.Errorf("ProfileByName(%q): %v", name, err)
		}
	}
	// Round trip: every registered profile's own Name resolves back to
	// the identical profile (the campaign Spec shim depends on this).
	for _, pu := range AllProfiles() {
		got, err := ProfileByName(pu.Profile.Name)
		if err != nil {
			t.Errorf("ProfileByName(%q): %v", pu.Profile.Name, err)
		} else if got != pu.Profile {
			t.Errorf("ProfileByName(%q) returned a different profile", pu.Profile.Name)
		}
	}
	if _, err := ProfileByName("sundial"); err == nil {
		t.Error("unknown profile accepted")
	}
}
