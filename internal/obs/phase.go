package obs

import "time"

// Phase names recorded by ObservePhase: the execution-phase timing
// breakdown the bench harness reports (see `experiments bench`).
const (
	// PhaseSetup is time spent building a fresh laboratory (pool miss).
	PhaseSetup = "setup"
	// PhaseReset is time spent hard-resetting a pooled laboratory.
	PhaseReset = "reset"
	// PhaseRun is wall time inside Scenario.Run, inclusive of lab
	// setup/reset (those are sub-phases of a run).
	PhaseRun = "run"
	// PhaseFold is time spent folding completed results into the
	// deterministic seed-order aggregate.
	PhaseFold = "fold"
	// PhaseProbe is wall time per adaptive-search probe campaign
	// (internal/search), inclusive of its runs.
	PhaseProbe = "probe"
)

// phaseSeconds accumulates wall-clock seconds per execution phase in the
// Default registry.
var phaseSeconds = Default.FloatCounterVec("dnstime_phase_seconds_total",
	"Wall-clock seconds spent per execution phase (setup=fresh lab build, reset=pooled lab reset, run=Scenario.Run inclusive, fold=aggregate fold).",
	"phase")

// ObservePhase adds d to the process-wide accumulator for phase.
func ObservePhase(phase string, d time.Duration) {
	phaseSeconds.With(phase).Add(d.Seconds())
}

// PhaseSnapshot returns the accumulated seconds per phase. The bench
// harness diffs two snapshots to report a per-campaign breakdown.
func PhaseSnapshot() map[string]float64 {
	out := map[string]float64{}
	for _, p := range phaseSeconds.Labels() {
		out[p] = phaseSeconds.With(p).Value()
	}
	return out
}
