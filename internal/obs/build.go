package obs

import (
	"runtime/debug"
	"sync"
)

// Build identifies the running binary: module version, VCS revision, and
// Go toolchain, read once from debug.ReadBuildInfo. Fields the build did
// not stamp (e.g. a non-VCS checkout) are "unknown".
type Build struct {
	// Version is the main module version ("(devel)" for source builds).
	Version string `json:"version"`
	// Revision is the VCS revision the binary was built from.
	Revision string `json:"revision"`
	// Modified reports a dirty working tree at build time.
	Modified bool `json:"modified,omitempty"`
	// GoVersion is the toolchain that built the binary.
	GoVersion string `json:"go_version"`
}

var (
	buildOnce sync.Once
	buildInfo Build
)

// BuildInfo returns the binary's build identification (cached after the
// first call).
func BuildInfo() Build {
	buildOnce.Do(func() {
		buildInfo = Build{Version: "unknown", Revision: "unknown", GoVersion: "unknown"}
		bi, ok := debug.ReadBuildInfo()
		if !ok {
			return
		}
		buildInfo.GoVersion = bi.GoVersion
		if bi.Main.Version != "" {
			buildInfo.Version = bi.Main.Version
		}
		for _, s := range bi.Settings {
			switch s.Key {
			case "vcs.revision":
				buildInfo.Revision = s.Value
			case "vcs.modified":
				buildInfo.Modified = s.Value == "true"
			}
		}
	})
	return buildInfo
}
