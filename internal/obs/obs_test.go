package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

var t0 = time.Date(2020, 2, 1, 0, 0, 0, 0, time.UTC)

// TestNopTracerAllocFree: the disabled tracer is free — no allocations
// per emission, Enabled() false. This is what lets the engine thread a
// Tracer through its hot path without breaking its allocation budgets.
func TestNopTracerAllocFree(t *testing.T) {
	if Nop.Enabled() {
		t.Fatal("Nop.Enabled() = true")
	}
	allocs := testing.AllocsPerRun(1000, func() {
		Nop.Event(t0, "net", "send", "")
		Nop.Span(t0, t0.Add(time.Second), "attack", "probe", "")
	})
	if allocs != 0 {
		t.Errorf("Nop emission allocates %v per run, want 0", allocs)
	}
}

// TestJSONLSink: every line is a standalone JSON object with the virtual
// timestamp, and the byte output is deterministic across writers.
func TestJSONLSink(t *testing.T) {
	emit := func() []byte {
		var buf bytes.Buffer
		tr := NewJSONL(&buf)
		tr.Event(t0, "net", "send", `udp "quoted"`)
		tr.Span(t0.Add(time.Millisecond), t0.Add(3*time.Millisecond), "attack", "probe-ipids", "")
		if err := tr.Close(); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	out := emit()
	if !bytes.Equal(out, emit()) {
		t.Error("two identical emission sequences produced different bytes")
	}
	lines := strings.Split(strings.TrimSpace(string(out)), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2:\n%s", len(lines), out)
	}
	var ev struct {
		TsNs   int64  `json:"ts_ns"`
		Ph     string `json:"ph"`
		Cat    string `json:"cat"`
		Name   string `json:"name"`
		Detail string `json:"detail"`
		DurNs  int64  `json:"dur_ns"`
	}
	if err := json.Unmarshal([]byte(lines[0]), &ev); err != nil {
		t.Fatalf("line 0 is not JSON: %v\n%s", err, lines[0])
	}
	if ev.TsNs != t0.UnixNano() || ev.Ph != "i" || ev.Name != "send" || ev.Detail != `udp "quoted"` {
		t.Errorf("event line mismatch: %+v", ev)
	}
	if err := json.Unmarshal([]byte(lines[1]), &ev); err != nil {
		t.Fatalf("line 1 is not JSON: %v\n%s", err, lines[1])
	}
	if ev.Ph != "X" || ev.DurNs != int64(2*time.Millisecond) {
		t.Errorf("span line mismatch: %+v", ev)
	}
}

// chromeEvent mirrors the trace_event fields the sink emits.
type chromeEvent struct {
	Name string  `json:"name"`
	Cat  string  `json:"cat"`
	Ph   string  `json:"ph"`
	Ts   float64 `json:"ts"`
	Dur  float64 `json:"dur"`
	Pid  int64   `json:"pid"`
	Tid  int64   `json:"tid"`
	Args struct {
		Detail string `json:"detail"`
	} `json:"args"`
}

// TestChromeSink: the output is one valid JSON array of trace_event
// objects with microsecond timestamps relative to the first event.
func TestChromeSink(t *testing.T) {
	var buf bytes.Buffer
	tr := NewChrome(&buf, 7)
	tr.Event(t0, "clock", "fire", "")
	tr.Event(t0.Add(1500*time.Nanosecond), "net", "deliver", "pkt")
	tr.Span(t0, t0.Add(2*time.Microsecond), "attack", "template", "")
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	var evs []chromeEvent
	if err := json.Unmarshal(buf.Bytes(), &evs); err != nil {
		t.Fatalf("not a JSON array: %v\n%s", err, buf.Bytes())
	}
	if len(evs) != 3 {
		t.Fatalf("got %d events, want 3", len(evs))
	}
	if evs[0].Ts != 0 || evs[0].Ph != "i" || evs[0].Pid != 7 {
		t.Errorf("event 0 = %+v, want ts=0 ph=i pid=7", evs[0])
	}
	if evs[1].Ts != 1.5 || evs[1].Args.Detail != "pkt" {
		t.Errorf("event 1 = %+v, want ts=1.5 detail=pkt", evs[1])
	}
	if evs[2].Ph != "X" || evs[2].Dur != 2 {
		t.Errorf("event 2 = %+v, want ph=X dur=2", evs[2])
	}
}

// TestChromeSinkEmpty: a trace with no events still closes to valid JSON.
func TestChromeSinkEmpty(t *testing.T) {
	var buf bytes.Buffer
	tr := NewChrome(&buf, 0)
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	var evs []chromeEvent
	if err := json.Unmarshal(buf.Bytes(), &evs); err != nil || len(evs) != 0 {
		t.Fatalf("empty trace = %q (err %v), want []", buf.Bytes(), err)
	}
}

// TestMergeChrome: merging per-seed arrays yields one valid array with
// all events in part order; empty parts vanish.
func TestMergeChrome(t *testing.T) {
	part := func(pid int64, n int) []byte {
		var buf bytes.Buffer
		tr := NewChrome(&buf, pid)
		for i := 0; i < n; i++ {
			tr.Event(t0.Add(time.Duration(i)*time.Millisecond), "net", "send", "")
		}
		tr.Close()
		return buf.Bytes()
	}
	merged := MergeChrome(part(0, 2), part(1, 0), part(2, 1))
	var evs []chromeEvent
	if err := json.Unmarshal(merged, &evs); err != nil {
		t.Fatalf("merged trace is not JSON: %v\n%s", err, merged)
	}
	if len(evs) != 3 {
		t.Fatalf("merged %d events, want 3", len(evs))
	}
	if evs[0].Pid != 0 || evs[2].Pid != 2 {
		t.Errorf("pids = %d,%d,%d, want 0,0,2", evs[0].Pid, evs[1].Pid, evs[2].Pid)
	}
	if got := MergeChrome(part(5, 0)); string(got) != "[]\n" {
		t.Errorf("all-empty merge = %q, want []", got)
	}
}

// TestRegistryExposition: HELP/TYPE lines, sorted families, label
// escaping, and cumulative histogram buckets.
func TestRegistryExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("zz_total", "last family").Add(3)
	r.Gauge("aa_gauge", "a gauge").Set(-2)
	r.FloatCounter("bb_seconds_total", "seconds").Add(1.5)
	cv := r.CounterVec("cc_jobs_total", "per scenario", "scenario")
	cv.With("boot").Inc()
	cv.With(`we"ird`).Add(2)
	h := r.Histogram("dd_latency_seconds", "latency", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)

	var buf bytes.Buffer
	if err := WritePrometheus(&buf, r); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# HELP aa_gauge a gauge\n# TYPE aa_gauge gauge\naa_gauge -2\n",
		"bb_seconds_total 1.5\n",
		"# TYPE cc_jobs_total counter\ncc_jobs_total{scenario=\"boot\"} 1\ncc_jobs_total{scenario=\"we\\\"ird\"} 2\n",
		"dd_latency_seconds_bucket{le=\"0.1\"} 1\ndd_latency_seconds_bucket{le=\"1\"} 2\ndd_latency_seconds_bucket{le=\"+Inf\"} 3\n",
		"dd_latency_seconds_sum 5.55\ndd_latency_seconds_count 3\n",
		"zz_total 3\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	// Families sorted by name.
	if strings.Index(out, "aa_gauge") > strings.Index(out, "zz_total") {
		t.Error("families not sorted by name")
	}
	// Idempotent registration returns the same metric.
	if r.Counter("zz_total", "last family").Value() != 3 {
		t.Error("re-registration did not return the existing counter")
	}
}

// TestRegistryConflicts: re-registering a name with a different shape
// panics, and merging two registries that share a name errors.
func TestRegistryConflicts(t *testing.T) {
	r := NewRegistry()
	r.Counter("m_total", "x")
	func() {
		defer func() {
			if recover() == nil {
				t.Error("kind clash did not panic")
			}
		}()
		r.Gauge("m_total", "x")
	}()
	r2 := NewRegistry()
	r2.Counter("m_total", "x")
	if err := WritePrometheus(&bytes.Buffer{}, r, r2); err == nil {
		t.Error("duplicate family across registries did not error")
	}
}

// TestPhaseSnapshot: ObservePhase accumulates into the Default registry
// and snapshots diff cleanly.
func TestPhaseSnapshot(t *testing.T) {
	before := PhaseSnapshot()
	ObservePhase(PhaseFold, 250*time.Millisecond)
	after := PhaseSnapshot()
	if d := after[PhaseFold] - before[PhaseFold]; d < 0.249 || d > 0.251 {
		t.Errorf("fold delta = %v, want 0.25", d)
	}
}

// TestBuildInfo: the build block always has a Go version and non-empty
// identification fields.
func TestBuildInfo(t *testing.T) {
	b := BuildInfo()
	if b.GoVersion == "" || b.Version == "" || b.Revision == "" {
		t.Errorf("BuildInfo has empty fields: %+v", b)
	}
	if !strings.HasPrefix(b.GoVersion, "go") {
		t.Errorf("GoVersion = %q, want go*", b.GoVersion)
	}
}
