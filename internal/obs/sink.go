package obs

import (
	"bytes"
	"io"
	"strconv"
	"sync"
	"time"
)

// TraceWriter is a Tracer that serialises events to an io.Writer in one
// of two deterministic formats: newline-delimited JSON (NewJSONL) or the
// Chrome trace_event JSON array (NewChrome). All formatting is
// hand-rolled integer/string work — no maps, no reflection — so the same
// event sequence always produces the same bytes.
//
// Close flushes buffered output (and terminates the Chrome array) and
// reports the first write error encountered; a TraceWriter must be
// Closed to produce a valid Chrome trace.
type TraceWriter struct {
	mu      sync.Mutex
	w       io.Writer
	chrome  bool
	pid     int64
	events  int
	base    time.Time // first emission's virtual time; Chrome ts are relative to it
	haveT0  bool
	scratch []byte
	err     error
	closed  bool
}

// NewJSONL returns a TraceWriter emitting one JSON object per line:
//
//	{"ts_ns":<virtual UnixNano>,"ph":"i"|"X","cat":...,"name":...[,"dur_ns":...][,"detail":...]}
//
// ph "i" is an instant event, "X" a completed span with its duration.
func NewJSONL(w io.Writer) *TraceWriter {
	return &TraceWriter{w: w, scratch: make([]byte, 0, 256)}
}

// NewChrome returns a TraceWriter emitting the Chrome trace_event array
// format understood by Perfetto and chrome://tracing. pid labels every
// event's process id (the serve path uses the run's seed so a combined
// job trace shows one process lane per seed). Timestamps are microseconds
// (with nanosecond fractions) relative to the writer's first event, which
// keeps them inside double precision for viewers.
func NewChrome(w io.Writer, pid int64) *TraceWriter {
	return &TraceWriter{w: w, chrome: true, pid: pid, scratch: make([]byte, 0, 256)}
}

// Enabled always reports true: a constructed TraceWriter records.
func (t *TraceWriter) Enabled() bool { return true }

// Event records an instant event at virtual time at.
func (t *TraceWriter) Event(at time.Time, cat, name, detail string) {
	t.emit(at, at, cat, name, detail, false)
}

// Span records a completed interval [from, to].
func (t *TraceWriter) Span(from, to time.Time, cat, name, detail string) {
	t.emit(from, to, cat, name, detail, true)
}

func (t *TraceWriter) emit(from, to time.Time, cat, name, detail string, span bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed || t.err != nil {
		return
	}
	if !t.haveT0 {
		t.base, t.haveT0 = from, true
	}
	b := t.scratch[:0]
	if t.chrome {
		if t.events == 0 {
			b = append(b, "[\n"...)
		} else {
			b = append(b, ",\n"...)
		}
		b = append(b, `{"name":`...)
		b = appendJSONString(b, name)
		b = append(b, `,"cat":`...)
		b = appendJSONString(b, cat)
		if span {
			b = append(b, `,"ph":"X","ts":`...)
			b = appendMicros(b, from.Sub(t.base))
			b = append(b, `,"dur":`...)
			b = appendMicros(b, to.Sub(from))
		} else {
			b = append(b, `,"ph":"i","s":"t","ts":`...)
			b = appendMicros(b, from.Sub(t.base))
		}
		b = append(b, `,"pid":`...)
		b = strconv.AppendInt(b, t.pid, 10)
		b = append(b, `,"tid":0`...)
		if detail != "" {
			b = append(b, `,"args":{"detail":`...)
			b = appendJSONString(b, detail)
			b = append(b, '}')
		}
		b = append(b, '}')
	} else {
		b = append(b, `{"ts_ns":`...)
		b = strconv.AppendInt(b, from.UnixNano(), 10)
		if span {
			b = append(b, `,"ph":"X","dur_ns":`...)
			b = strconv.AppendInt(b, int64(to.Sub(from)), 10)
		} else {
			b = append(b, `,"ph":"i"`...)
		}
		b = append(b, `,"cat":`...)
		b = appendJSONString(b, cat)
		b = append(b, `,"name":`...)
		b = appendJSONString(b, name)
		if detail != "" {
			b = append(b, `,"detail":`...)
			b = appendJSONString(b, detail)
		}
		b = append(b, "}\n"...)
	}
	t.scratch = b[:0]
	t.events++
	if _, err := t.w.Write(b); err != nil {
		t.err = err
	}
}

// Close terminates the output (writing the closing bracket of a Chrome
// trace, or "[]" if no events were recorded) and returns the first write
// error. Close is idempotent.
func (t *TraceWriter) Close() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return t.err
	}
	t.closed = true
	if t.chrome && t.err == nil {
		var tail []byte
		if t.events == 0 {
			tail = []byte("[]\n")
		} else {
			tail = []byte("\n]\n")
		}
		if _, err := t.w.Write(tail); err != nil {
			t.err = err
		}
	}
	return t.err
}

// MergeChrome combines per-seed Chrome trace arrays (each produced by a
// closed NewChrome TraceWriter) into a single trace_event array. Parts
// with no events contribute nothing. The inputs must be in the exact
// format TraceWriter emits; the merge is deterministic in the order the
// parts are given.
func MergeChrome(parts ...[]byte) []byte {
	var bodies [][]byte
	for _, p := range parts {
		body := bytes.TrimSuffix(bytes.TrimSpace(p), []byte("]"))
		body = bytes.TrimPrefix(body, []byte("["))
		body = bytes.TrimSpace(body)
		if len(body) == 0 {
			continue
		}
		bodies = append(bodies, body)
	}
	out := []byte("[\n")
	if len(bodies) == 0 {
		return []byte("[]\n")
	}
	out = append(out, bytes.Join(bodies, []byte(",\n"))...)
	out = append(out, "\n]\n"...)
	return out
}

// appendMicros appends d as a microsecond count with a fixed 3-digit
// nanosecond fraction ("12.345"), handling negative durations.
func appendMicros(b []byte, d time.Duration) []byte {
	n := int64(d)
	if n < 0 {
		b = append(b, '-')
		n = -n
	}
	b = strconv.AppendInt(b, n/1000, 10)
	b = append(b, '.')
	frac := n % 1000
	b = append(b, byte('0'+frac/100), byte('0'+frac/10%10), byte('0'+frac%10))
	return b
}

// appendJSONString appends s as a JSON string literal, escaping quotes,
// backslashes and control characters. Valid UTF-8 passes through.
func appendJSONString(b []byte, s string) []byte {
	b = append(b, '"')
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c == '"' || c == '\\':
			b = append(b, '\\', c)
		case c == '\n':
			b = append(b, '\\', 'n')
		case c == '\t':
			b = append(b, '\\', 't')
		case c < 0x20:
			const hex = "0123456789abcdef"
			b = append(b, '\\', 'u', '0', '0', hex[c>>4], hex[c&0xf])
		default:
			b = append(b, c)
		}
	}
	return append(b, '"')
}
