package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing integer metric.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be non-negative; counters only go up).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an integer metric that can go up and down.
type Gauge struct{ v atomic.Int64 }

// Inc adds one.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Add adds n (which may be negative).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Set replaces the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// FloatCounter is a monotonically increasing float metric (accumulated
// seconds, mostly).
type FloatCounter struct{ bits atomic.Uint64 }

// Add accumulates v.
func (c *FloatCounter) Add(v float64) {
	for {
		old := c.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if c.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the accumulated total.
func (c *FloatCounter) Value() float64 { return math.Float64frombits(c.bits.Load()) }

// Histogram counts observations into fixed upper-bound buckets and
// tracks their sum, in the Prometheus cumulative-bucket style.
type Histogram struct {
	bounds []float64 // sorted upper bounds; an implicit +Inf bucket follows
	counts []atomic.Int64
	count  atomic.Int64
	sum    FloatCounter
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// Count returns the total number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return h.sum.Value() }

// DurationBuckets is the default upper-bound set for latency histograms,
// in seconds: 1ms to 60s, roughly logarithmic.
var DurationBuckets = []float64{0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60}

// kind tags a family for TYPE exposition and registration checks.
const (
	kindCounter   = "counter"
	kindGauge     = "gauge"
	kindHistogram = "histogram"
)

// family is one named metric, optionally fanned out over a single label
// dimension. An unlabeled family has exactly one child keyed "".
type family struct {
	name, help, kind, label string
	float                   bool // counter backed by FloatCounter
	bounds                  []float64
	mu                      sync.Mutex
	children                map[string]any
}

func (f *family) child(label string) any {
	f.mu.Lock()
	defer f.mu.Unlock()
	if m, ok := f.children[label]; ok {
		return m
	}
	var m any
	switch {
	case f.kind == kindHistogram:
		m = &Histogram{bounds: f.bounds, counts: make([]atomic.Int64, len(f.bounds)+1)}
	case f.kind == kindGauge:
		m = &Gauge{}
	case f.float:
		m = &FloatCounter{}
	default:
		m = &Counter{}
	}
	f.children[label] = m
	return m
}

func (f *family) labels() []string {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]string, 0, len(f.children))
	for l := range f.children {
		out = append(out, l)
	}
	sort.Strings(out)
	return out
}

// Registry holds named metric families. Registration is idempotent:
// asking for the same name again returns the existing metric, and asking
// with a conflicting kind or label panics (metrics are wired at startup;
// a clash is a programming error).
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: map[string]*family{}}
}

// Default is the process-wide registry: the campaign engine's seed-latency
// histograms, the lab pool's hit/reset counters, and the phase-timing
// accumulator live here. internal/serve merges it into /metrics.
var Default = NewRegistry()

func (r *Registry) family(name, help, kind, label string, float bool, bounds []float64) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[name]; ok {
		if f.kind != kind || f.label != label || f.float != float {
			panic(fmt.Sprintf("obs: metric %q re-registered as %s/label=%q (was %s/label=%q)",
				name, kind, label, f.kind, f.label))
		}
		return f
	}
	f := &family{name: name, help: help, kind: kind, label: label,
		float: float, bounds: bounds, children: map[string]any{}}
	r.families[name] = f
	return f
}

// Counter registers (or fetches) an unlabeled integer counter.
func (r *Registry) Counter(name, help string) *Counter {
	return r.family(name, help, kindCounter, "", false, nil).child("").(*Counter)
}

// Gauge registers (or fetches) an unlabeled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	return r.family(name, help, kindGauge, "", false, nil).child("").(*Gauge)
}

// FloatCounter registers (or fetches) an unlabeled float counter.
func (r *Registry) FloatCounter(name, help string) *FloatCounter {
	return r.family(name, help, kindCounter, "", true, nil).child("").(*FloatCounter)
}

// Histogram registers (or fetches) an unlabeled histogram with the given
// sorted upper bounds (an implicit +Inf bucket is added).
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	return r.family(name, help, kindHistogram, "", false, bounds).child("").(*Histogram)
}

// CounterVec is a counter family fanned out over one label dimension.
type CounterVec struct{ f *family }

// CounterVec registers (or fetches) an integer-counter family with one
// label dimension named label.
func (r *Registry) CounterVec(name, help, label string) *CounterVec {
	return &CounterVec{r.family(name, help, kindCounter, label, false, nil)}
}

// With returns the counter for the given label value, creating it on
// first use.
func (v *CounterVec) With(label string) *Counter { return v.f.child(label).(*Counter) }

// Labels returns the label values seen so far, sorted.
func (v *CounterVec) Labels() []string { return v.f.labels() }

// FloatCounterVec is a float-counter family fanned out over one label.
type FloatCounterVec struct{ f *family }

// FloatCounterVec registers (or fetches) a float-counter family with one
// label dimension named label.
func (r *Registry) FloatCounterVec(name, help, label string) *FloatCounterVec {
	return &FloatCounterVec{r.family(name, help, kindCounter, label, true, nil)}
}

// With returns the float counter for the given label value.
func (v *FloatCounterVec) With(label string) *FloatCounter { return v.f.child(label).(*FloatCounter) }

// Labels returns the label values seen so far, sorted.
func (v *FloatCounterVec) Labels() []string { return v.f.labels() }

// HistogramVec is a histogram family fanned out over one label.
type HistogramVec struct{ f *family }

// HistogramVec registers (or fetches) a histogram family with one label
// dimension named label and the given bucket upper bounds.
func (r *Registry) HistogramVec(name, help, label string, bounds []float64) *HistogramVec {
	return &HistogramVec{r.family(name, help, kindHistogram, label, false, bounds)}
}

// With returns the histogram for the given label value.
func (v *HistogramVec) With(label string) *Histogram { return v.f.child(label).(*Histogram) }

// Labels returns the label values seen so far, sorted.
func (v *HistogramVec) Labels() []string { return v.f.labels() }

// WritePrometheus renders every family of the given registries in the
// Prometheus text exposition format (version 0.0.4): families sorted by
// name, samples sorted by label value, floats via strconv 'g' — fully
// deterministic for a given metric state. A family name registered in
// more than one registry is an error.
func WritePrometheus(w io.Writer, regs ...*Registry) error {
	var fams []*family
	seen := map[string]bool{}
	for _, r := range regs {
		r.mu.Lock()
		for _, f := range r.families {
			if seen[f.name] {
				r.mu.Unlock()
				return fmt.Errorf("obs: metric %q registered in more than one registry", f.name)
			}
			seen[f.name] = true
			fams = append(fams, f)
		}
		r.mu.Unlock()
	}
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	var b []byte
	for _, f := range fams {
		b = b[:0]
		b = append(b, "# HELP "...)
		b = append(b, f.name...)
		b = append(b, ' ')
		b = append(b, escapeHelp(f.help)...)
		b = append(b, "\n# TYPE "...)
		b = append(b, f.name...)
		b = append(b, ' ')
		b = append(b, f.kind...)
		b = append(b, '\n')
		for _, lv := range f.labels() {
			b = appendSamples(b, f, lv)
		}
		if _, err := w.Write(b); err != nil {
			return err
		}
	}
	return nil
}

func appendSamples(b []byte, f *family, labelValue string) []byte {
	pair := ""
	if f.label != "" {
		pair = f.label + `="` + escapeLabel(labelValue) + `"`
	}
	name := func(suffix, extra string) []byte {
		b = append(b, f.name...)
		b = append(b, suffix...)
		if pair != "" || extra != "" {
			b = append(b, '{')
			b = append(b, pair...)
			if pair != "" && extra != "" {
				b = append(b, ',')
			}
			b = append(b, extra...)
			b = append(b, '}')
		}
		b = append(b, ' ')
		return b
	}
	m := f.child(labelValue)
	switch m := m.(type) {
	case *Counter:
		b = name("", "")
		b = strconv.AppendInt(b, m.Value(), 10)
		b = append(b, '\n')
	case *Gauge:
		b = name("", "")
		b = strconv.AppendInt(b, m.Value(), 10)
		b = append(b, '\n')
	case *FloatCounter:
		b = name("", "")
		b = strconv.AppendFloat(b, m.Value(), 'g', -1, 64)
		b = append(b, '\n')
	case *Histogram:
		cum := int64(0)
		for i, bound := range m.bounds {
			cum += m.counts[i].Load()
			b = name("_bucket", `le="`+strconv.FormatFloat(bound, 'g', -1, 64)+`"`)
			b = strconv.AppendInt(b, cum, 10)
			b = append(b, '\n')
		}
		cum += m.counts[len(m.bounds)].Load()
		b = name("_bucket", `le="+Inf"`)
		b = strconv.AppendInt(b, cum, 10)
		b = append(b, '\n')
		b = name("_sum", "")
		b = strconv.AppendFloat(b, m.Sum(), 'g', -1, 64)
		b = append(b, '\n')
		b = name("_count", "")
		b = strconv.AppendInt(b, m.Count(), 10)
		b = append(b, '\n')
	}
	return b
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, "\n", `\n`)
	return strings.ReplaceAll(s, `"`, `\"`)
}
