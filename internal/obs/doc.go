// Package obs is the repo's observability spine: deterministic
// virtual-time tracing, a minimal Prometheus-style metrics registry, and
// build identification — shared by the lab, the campaign engine, the
// bench harness, and the resident experiment service.
//
// # Tracing
//
// A Tracer receives instant events and completed spans stamped with
// *virtual* simclock time, so a trace of a run describes the simulated
// interleaving (packet sends, timer fires, attack phases), not host
// scheduling. The no-op default (Nop) is allocation-free: hot paths guard
// emission with Enabled() and pay only a nil/bool check when tracing is
// off, which keeps the engine inside its allocation budgets.
//
// Because every traced component is deterministic in its seed, a trace is
// itself deterministic: the same (scenario, seed, params) produces a
// byte-identical trace file at any worker count and with pooled or fresh
// labs. Two sinks are provided — newline-delimited JSON (NewJSONL) and
// the Chrome trace_event array format (NewChrome) viewable in Perfetto or
// chrome://tracing.
//
// # Metrics
//
// Registry is a tiny dependency-free metrics registry (counters, gauges,
// float counters, histograms, with an optional single label dimension)
// with deterministic Prometheus text exposition via WritePrometheus.
// Default is the process-wide registry used by the campaign engine and
// the lab pool; internal/serve merges it with its own registry on
// /metrics.
package obs
