package obs

import "time"

// Tracer receives structured observability events stamped with virtual
// (simclock) time. Implementations must be safe for use from a single
// run's goroutine; the engine gives each seed its own Tracer, so no
// cross-run synchronisation is required of emitters.
//
// Emission must never influence the traced computation: a traced run and
// an untraced run of the same (scenario, seed, params) produce identical
// Results.
type Tracer interface {
	// Enabled reports whether events are recorded. Hot paths check this
	// (or compare against nil/Nop) before building detail strings, so a
	// disabled tracer costs one branch and zero allocations.
	Enabled() bool
	// Event records an instant at virtual time at. cat groups related
	// events ("net", "clock", "attack"), name identifies the event kind,
	// and detail is an optional human-readable payload.
	Event(at time.Time, cat, name, detail string)
	// Span records a completed interval [from, to] in virtual time.
	// Spans are emitted on completion, so a sink may see them out of
	// start-time order; viewers sort by timestamp.
	Span(from, to time.Time, cat, name, detail string)
}

// Nop is the disabled Tracer: Enabled() is false and emission is a no-op.
// It is the default everywhere a Tracer is threaded, so untraced runs pay
// nothing.
var Nop Tracer = nopTracer{}

type nopTracer struct{}

func (nopTracer) Enabled() bool                           { return false }
func (nopTracer) Event(time.Time, string, string, string) {}
func (nopTracer) Span(time.Time, time.Time, string, string, string) {
}
