// Package simnet provides a deterministic simulated internetwork. Hosts are
// identified by IPv4 addresses and exchange UDP datagrams carried in
// (possibly fragmented) IPv4 packets over links whose latency, loss and
// reordering are decided by a netem.PathModel (see internal/netem and
// DESIGN.md §8); the default model is a fixed 10 ms lossless link. The
// network supports the off-path attacker model of the paper: any host may
// inject raw packets with arbitrary (spoofed) source addresses, but no
// host can observe traffic between other hosts.
//
// Each host owns the receiver-side state the attack manipulates: an IPv4
// defragmentation cache (internal/ipv4.Reassembler), a path-MTU cache
// updated by ICMP Fragmentation Needed messages, and an IPID allocator for
// outgoing packets.
//
// # Trace ordering contract
//
// The WithTrace callback observes packet events synchronously from the
// single goroutine driving the network's clock, in the exact order the
// network processes them. That order is deterministic: the simulation's
// clock executes events in the strict (timestamp, insertion-sequence)
// total order, and all randomness (latency jitter, loss, IPID choices)
// derives from the network's seed. Two runs of the same scenario at the
// same seed therefore produce the identical trace-event sequence — at any
// campaign worker count and whether the lab was built fresh or recycled
// from the pool — which is what makes recorded traces byte-reproducible.
package simnet

import (
	"errors"
	"fmt"
	"math/rand"
	"time"

	"dnstime/internal/ipv4"
	"dnstime/internal/netem"
	"dnstime/internal/simclock"
	"dnstime/internal/udp"
)

// Errors returned by this package.
var (
	ErrDuplicateHost = errors.New("simnet: host address already in use")
	ErrPortInUse     = errors.New("simnet: UDP port already has a handler")
	ErrNoSuchHost    = errors.New("simnet: no host with that address")
)

// TraceKind classifies packet-trace events.
type TraceKind int

// Trace event kinds.
const (
	TraceSend TraceKind = iota + 1
	TraceDeliver
	TraceDrop
	TraceReassembled
	TraceChecksumFail
)

// String names the trace kind.
func (k TraceKind) String() string {
	switch k {
	case TraceSend:
		return "send"
	case TraceDeliver:
		return "deliver"
	case TraceDrop:
		return "drop"
	case TraceReassembled:
		return "reasm"
	case TraceChecksumFail:
		return "badsum"
	default:
		return "?"
	}
}

// TraceEvent is one entry in a packet trace.
type TraceEvent struct {
	Time time.Time
	Kind TraceKind
	Pkt  *ipv4.Packet
}

// String renders the event for human-readable traces.
func (e TraceEvent) String() string {
	return fmt.Sprintf("%s %-7s %s", e.Time.Format("15:04:05.000"), e.Kind, e.Pkt)
}

// Network is the simulated internetwork.
//
// Delivery is allocation-lean: in-flight packets and their delivery events
// come from per-network free lists (the network is driven by one
// single-threaded clock, so the lists need no locking) and are recycled as
// soon as the receiving host's handlers return. Consequently UDP handlers,
// raw observers and trace callbacks must not retain the packets or payload
// slices they are given beyond the call — copy what must outlive it.
type Network struct {
	clock *simclock.Clock
	hosts map[ipv4.Addr]*Host
	path  netem.PathModel
	rng   *rand.Rand
	trace func(TraceEvent)

	pktFree []*ipv4.Packet
	delFree []*delivery
}

// Option configures a Network.
type Option func(*Network)

// WithPathModel routes every link through m — latency, loss and
// reordering per directed pair (see internal/netem for the composable
// models and named profiles). The model draws from the network RNG
// (WithSeed); stateful models must not be shared between networks, so
// build a fresh one per Network. Overrides any previously applied
// latency/loss option.
func WithPathModel(m netem.PathModel) Option {
	return func(n *Network) {
		if m != nil {
			n.path = m
		}
	}
}

// WithSeed derives the network RNG — the source of all link randomness
// (loss draws, latency jitter, reordering) — from seed. Labs pass their
// campaign seed so link behaviour is deterministic per run and
// independent of campaign worker count. The default seed is 1, the value
// the pre-netem network hard-coded.
func WithSeed(seed int64) Option {
	return func(n *Network) { n.rng.Seed(seed) }
}

// WithLatency sets a fixed uniform one-way latency for all links. Thin
// shim over netem: it reconfigures the network's default netem.Path (or
// replaces a custom model installed earlier).
func WithLatency(d time.Duration) Option {
	return editPath(func(p *netem.Path) { p.Delay = netem.Fixed(d) })
}

// WithLatencyFunc sets a per-pair one-way latency function (shim over
// netem.Path.DelayFunc; see WithLatency).
func WithLatencyFunc(f func(src, dst ipv4.Addr) time.Duration) Option {
	return editPath(func(p *netem.Path) { p.DelayFunc = f })
}

// WithLossRate drops each packet independently with probability p, drawn
// from the network RNG (shim over netem.IID; see WithLatency). Pair with
// WithSeed to pin the loss pattern to a run seed.
func WithLossRate(p float64) Option {
	return editPath(func(path *netem.Path) { path.Loss = netem.IID{P: p} })
}

// WithLoss drops each packet independently with probability p, using the
// given seed for reproducibility.
//
// Deprecated: the seed belongs to the network, not the loss model — use
// WithLossRate(p) plus WithSeed(seed), or a full WithPathModel. This
// shim is exactly that combination, so existing callers keep their
// packet-for-packet behaviour.
func WithLoss(p float64, seed int64) Option {
	return func(n *Network) {
		WithLossRate(p)(n)
		WithSeed(seed)(n)
	}
}

// editPath mutates the network's composable netem.Path in place; if a
// custom PathModel was installed, it is replaced by a fresh Path carrying
// just the edit (the legacy options predate model composition).
func editPath(edit func(*netem.Path)) Option {
	return func(n *Network) {
		p, ok := n.path.(*netem.Path)
		if !ok {
			p = &netem.Path{}
			n.path = p
		}
		edit(p)
	}
}

// WithTrace installs a packet-trace callback. Traced packets may be pooled
// and recycled after the surrounding processing step: callbacks must not
// retain the event's Pkt or its payload (format or copy what they need).
// Events arrive synchronously in processing order, which is deterministic
// per seed (see the package comment's trace ordering contract).
func WithTrace(f func(TraceEvent)) Option {
	return func(n *Network) { n.trace = f }
}

// New creates a network driven by clock. The default link is netem's
// zero-value Path: 10 ms one-way, lossless, in-order, consuming no
// randomness.
func New(clock *simclock.Clock, opts ...Option) *Network {
	n := &Network{
		clock: clock,
		hosts: make(map[ipv4.Addr]*Host),
		path:  &netem.Path{},
		rng:   rand.New(rand.NewSource(1)),
	}
	for _, o := range opts {
		o(n)
	}
	return n
}

// Clock returns the virtual clock driving the network.
func (n *Network) Clock() *simclock.Clock { return n.clock }

// Host returns the host with the given address, or nil.
func (n *Network) Host(a ipv4.Addr) *Host { return n.hosts[a] }

// RemoveHost detaches the host at addr (no-op when absent). Packets already
// in flight toward it are dropped on delivery. The lab pool removes
// run-scoped hosts (clients, surplus servers) when resetting a lab.
func (n *Network) RemoveHost(addr ipv4.Addr) { delete(n.hosts, addr) }

// Reset restores the network's link behaviour to the New defaults — fresh
// default path model, RNG seed 1, no trace — then applies opts, keeping
// the attached hosts and the packet free lists. Together with Host.Reset it
// gives the lab pool a network indistinguishable from a freshly built one.
func (n *Network) Reset(opts ...Option) {
	n.path = &netem.Path{}
	n.rng.Seed(1)
	n.trace = nil
	for _, o := range opts {
		o(n)
	}
}

// getPacket takes a packet from the free list (payload length zero,
// capacity retained) or allocates one.
func (n *Network) getPacket() *ipv4.Packet {
	if l := len(n.pktFree); l > 0 {
		p := n.pktFree[l-1]
		n.pktFree[l-1] = nil
		n.pktFree = n.pktFree[:l-1]
		return p
	}
	return &ipv4.Packet{}
}

// putPacket recycles a packet whose bytes are no longer referenced.
func (n *Network) putPacket(p *ipv4.Packet) {
	p.Payload = p.Payload[:0]
	n.pktFree = append(n.pktFree, p)
}

// delivery is one in-flight packet: the scheduled argument of deliverFn,
// pooled so the per-packet hot path allocates neither closure nor event.
type delivery struct {
	net *Network
	dst *Host
	pkt *ipv4.Packet
}

// deliverFn is the static delivery callback; the argument carries state.
func deliverFn(a any) {
	d, ok := a.(*delivery)
	if !ok {
		return
	}
	n := d.net
	n.emit(TraceDeliver, d.pkt)
	d.dst.receive(d.pkt)
	n.putPacket(d.pkt)
	d.dst, d.pkt = nil, nil
	n.delFree = append(n.delFree, d)
}

// scheduleDelivery queues an owned packet for delivery to dst after the
// path latency, recycling pooled delivery state.
func (n *Network) scheduleDelivery(after time.Duration, dst *Host, pkt *ipv4.Packet) {
	var d *delivery
	if l := len(n.delFree); l > 0 {
		d = n.delFree[l-1]
		n.delFree[l-1] = nil
		n.delFree = n.delFree[:l-1]
	} else {
		d = &delivery{net: n}
	}
	d.dst, d.pkt = dst, pkt
	n.clock.AfterArg(after, deliverFn, d)
}

func (n *Network) emit(kind TraceKind, pkt *ipv4.Packet) {
	if n.trace != nil {
		n.trace(TraceEvent{Time: n.clock.Now(), Kind: kind, Pkt: pkt})
	}
}

// Inject delivers a raw IPv4 packet into the network exactly as written —
// the off-path attacker's spoofing primitive. The packet's Src may be any
// address; delivery is to Dst, after the path model's latency, subject to
// its loss model. The packet is copied on entry, so the caller may reuse or
// mutate it immediately (attack planting loops re-inject the same spoofed
// fragments every round).
func (n *Network) Inject(pkt *ipv4.Packet) {
	n.emit(TraceSend, pkt)
	if n.path.Drop(pkt.Src, pkt.Dst, n.rng) {
		n.emit(TraceDrop, pkt)
		return
	}
	dst, ok := n.hosts[pkt.Dst]
	if !ok {
		n.emit(TraceDrop, pkt)
		return
	}
	d := n.path.Latency(pkt.Src, pkt.Dst, n.rng)
	p := n.getPacket()
	p.CopyFrom(pkt)
	n.scheduleDelivery(d, dst, p)
}

// injectOwned is Inject for packets the network already owns (taken from
// getPacket): no copy is made, and the packet returns to the free list on
// drop as well as after delivery. Host send paths build datagrams directly
// into pooled packets and hand them over here.
func (n *Network) injectOwned(pkt *ipv4.Packet) {
	n.emit(TraceSend, pkt)
	if n.path.Drop(pkt.Src, pkt.Dst, n.rng) {
		n.emit(TraceDrop, pkt)
		n.putPacket(pkt)
		return
	}
	dst, ok := n.hosts[pkt.Dst]
	if !ok {
		n.emit(TraceDrop, pkt)
		n.putPacket(pkt)
		return
	}
	d := n.path.Latency(pkt.Src, pkt.Dst, n.rng)
	n.scheduleDelivery(d, dst, pkt)
}

// UDPHandler processes a reassembled, checksum-verified UDP payload. The
// payload slice aliases a pooled packet buffer and is only valid for the
// duration of the call — handlers that keep bytes must copy them.
type UDPHandler func(src ipv4.Addr, srcPort uint16, payload []byte)

// ICMPHandler observes ICMP Fragmentation Needed messages after the host's
// PMTU cache has been updated (src is the claimed sender of the ICMP).
type ICMPHandler func(src ipv4.Addr, msg *ipv4.ICMPFragNeeded)

// HostConfig tunes per-host stack behaviour.
type HostConfig struct {
	// Reassembly selects the defragmentation cache policy
	// (default ipv4.LinuxPolicy).
	Reassembly ipv4.ReassemblyPolicy
	// IDAlloc selects the IPID allocator (default global sequential).
	IDAlloc ipv4.IDAllocator
	// PMTUFloor is the smallest MTU the host honours from an ICMP
	// (default ipv4.MinMTU = 68, the permissive behaviour the attack needs).
	PMTUFloor int
	// LinkMTU is the interface MTU (default 1500).
	LinkMTU int
	// VerifyChecksums makes the host discard UDP datagrams whose checksum
	// fails (default true — set explicitly via DisableChecksum for tests).
	DisableChecksum bool
	// DropFragments discards incoming IP fragments, modelling resolvers
	// behind fragment-filtering middleboxes (the ~68% of resolvers in the
	// ad study that rejected fragmented DNS responses).
	DropFragments bool
}

// Host is one endpoint in the network.
type Host struct {
	net      *Network
	addr     ipv4.Addr
	reasm    *ipv4.Reassembler
	pmtu     *ipv4.PMTUCache
	ids      ipv4.IDAllocator
	linkMTU  int
	verify   bool
	dropFrag bool
	udp      map[uint16]UDPHandler
	icmp     ICMPHandler
	rawObs   func(*ipv4.Packet)
	nextPort uint16

	// Stats
	SentPackets     int
	ReceivedPackets int
	ChecksumErrors  int
}

// AddHost registers a new host at addr with the given configuration.
func (n *Network) AddHost(addr ipv4.Addr, cfg HostConfig) (*Host, error) {
	if _, ok := n.hosts[addr]; ok {
		return nil, fmt.Errorf("%w: %s", ErrDuplicateHost, addr)
	}
	if cfg.Reassembly == (ipv4.ReassemblyPolicy{}) {
		cfg.Reassembly = ipv4.LinuxPolicy
	}
	if cfg.IDAlloc == nil {
		cfg.IDAlloc = &ipv4.SequentialAllocator{}
	}
	if cfg.PMTUFloor == 0 {
		cfg.PMTUFloor = ipv4.MinMTU
	}
	if cfg.LinkMTU == 0 {
		cfg.LinkMTU = ipv4.DefaultMTU
	}
	h := &Host{
		net:      n,
		addr:     addr,
		reasm:    ipv4.NewReassembler(n.clock, cfg.Reassembly),
		pmtu:     ipv4.NewPMTUCache(n.clock, cfg.PMTUFloor),
		ids:      cfg.IDAlloc,
		linkMTU:  cfg.LinkMTU,
		verify:   !cfg.DisableChecksum,
		dropFrag: cfg.DropFragments,
		udp:      make(map[uint16]UDPHandler),
		nextPort: 49152,
	}
	n.hosts[addr] = h
	return h, nil
}

// MustAddHost is AddHost for experiment setup; it panics on error.
func (n *Network) MustAddHost(addr ipv4.Addr, cfg HostConfig) *Host {
	h, err := n.AddHost(addr, cfg)
	if err != nil {
		panic(err)
	}
	return h
}

// Reset restores the host to the state AddHost would have built with cfg —
// empty reassembly and PMTU caches, fresh IPID allocator, no UDP/ICMP
// handlers or raw observer, ephemeral ports rewound, stats zeroed — while
// keeping warmed-up cache storage. The lab pool resets every kept host
// before re-binding its protocol servers; callers must only invoke it when
// no packets are in flight toward the host (the pool resets the clock
// first, which drops them all).
func (h *Host) Reset(cfg HostConfig) {
	if cfg.Reassembly == (ipv4.ReassemblyPolicy{}) {
		cfg.Reassembly = ipv4.LinuxPolicy
	}
	if cfg.IDAlloc == nil {
		cfg.IDAlloc = &ipv4.SequentialAllocator{}
	}
	if cfg.PMTUFloor == 0 {
		cfg.PMTUFloor = ipv4.MinMTU
	}
	if cfg.LinkMTU == 0 {
		cfg.LinkMTU = ipv4.DefaultMTU
	}
	h.reasm.Reset(cfg.Reassembly)
	h.pmtu.Reset(cfg.PMTUFloor)
	h.ids = cfg.IDAlloc
	h.linkMTU = cfg.LinkMTU
	h.verify = !cfg.DisableChecksum
	h.dropFrag = cfg.DropFragments
	clear(h.udp)
	h.icmp = nil
	h.rawObs = nil
	h.nextPort = 49152
	h.SentPackets, h.ReceivedPackets, h.ChecksumErrors = 0, 0, 0
}

// Addr returns the host's address.
func (h *Host) Addr() ipv4.Addr { return h.addr }

// Network returns the network the host is attached to.
func (h *Host) Network() *Network { return h.net }

// Clock returns the virtual clock.
func (h *Host) Clock() *simclock.Clock { return h.net.clock }

// PathMTU returns the host's current path MTU toward dst.
func (h *Host) PathMTU(dst ipv4.Addr) int {
	m := h.pmtu.MTU(dst)
	if m > h.linkMTU {
		m = h.linkMTU
	}
	return m
}

// Reassembler exposes the host's defragmentation cache (read-mostly; used
// by measurements).
func (h *Host) Reassembler() *ipv4.Reassembler { return h.reasm }

// HandleUDP installs a handler for a UDP port.
func (h *Host) HandleUDP(port uint16, fn UDPHandler) error {
	if _, ok := h.udp[port]; ok {
		return fmt.Errorf("%w: %s:%d", ErrPortInUse, h.addr, port)
	}
	h.udp[port] = fn
	return nil
}

// UnhandleUDP removes a port handler.
func (h *Host) UnhandleUDP(port uint16) { delete(h.udp, port) }

// HandleICMP installs an observer for fragmentation-needed ICMPs.
func (h *Host) HandleICMP(fn ICMPHandler) { h.icmp = fn }

// AllocPort returns a fresh ephemeral port. Sequential by default; DNS
// resolvers randomise ports themselves (that randomness is a resolver
// security property, not a stack property).
func (h *Host) AllocPort() uint16 {
	p := h.nextPort
	h.nextPort++
	if h.nextPort == 0 {
		h.nextPort = 49152
	}
	return p
}

// SendUDP builds a checksummed UDP datagram, wraps it in IPv4 packets
// fragmented to the current path MTU, and sends them. It returns the IPID
// used (visible to on-host observers; the attacker predicts it instead).
//
// When the datagram fits the path MTU whole — the overwhelmingly common
// case — the wire bytes are built and checksummed directly inside a pooled
// packet and handed to the network with no intermediate copies.
func (h *Host) SendUDP(dst ipv4.Addr, srcPort, dstPort uint16, payload []byte) (uint16, error) {
	mtu := h.PathMTU(dst)
	total := udp.HeaderLen + len(payload)
	if mtu >= ipv4.MinMTU && ipv4.HeaderLen+total <= mtu {
		id := h.ids.Next(h.addr, dst)
		p := h.net.getPacket()
		wire := p.Payload[:0]
		if cap(wire) < total {
			wire = make([]byte, 0, total)
		}
		wire = wire[:total]
		udp.PutHeader(wire, srcPort, dstPort, total)
		copy(wire[udp.HeaderLen:], payload)
		udp.FillChecksum(h.addr, dst, wire)
		*p = ipv4.Packet{
			Src:     h.addr,
			Dst:     dst,
			ID:      id,
			Proto:   ipv4.ProtoUDP,
			TTL:     ipv4.DefaultTTL,
			Payload: wire,
		}
		h.SentPackets++
		h.net.injectOwned(p)
		return id, nil
	}
	d := &udp.Datagram{
		Header:  udp.Header{SrcPort: srcPort, DstPort: dstPort},
		Payload: payload,
	}
	wire := udp.WithChecksum(h.addr, dst, d.Marshal())
	pkt := &ipv4.Packet{
		Src:     h.addr,
		Dst:     dst,
		ID:      h.ids.Next(h.addr, dst),
		Proto:   ipv4.ProtoUDP,
		TTL:     ipv4.DefaultTTL,
		Payload: wire,
	}
	frags, err := ipv4.Fragment(pkt, mtu)
	if err != nil {
		return 0, fmt.Errorf("send udp %s -> %s: %w", h.addr, dst, err)
	}
	for _, f := range frags {
		h.SentPackets++
		h.net.Inject(f)
	}
	return pkt.ID, nil
}

// SendUDPMTU is SendUDP with an explicit MTU override, ignoring the path
// MTU cache. Test nameservers in the ad-network study use this to respond
// with fragmented packets "even if the size is way below the maximum MTU of
// the path" (Section VIII-B).
func (h *Host) SendUDPMTU(dst ipv4.Addr, srcPort, dstPort uint16, payload []byte, mtu int) (uint16, error) {
	d := &udp.Datagram{
		Header:  udp.Header{SrcPort: srcPort, DstPort: dstPort},
		Payload: payload,
	}
	wire := udp.WithChecksum(h.addr, dst, d.Marshal())
	pkt := &ipv4.Packet{
		Src:     h.addr,
		Dst:     dst,
		ID:      h.ids.Next(h.addr, dst),
		Proto:   ipv4.ProtoUDP,
		TTL:     ipv4.DefaultTTL,
		Payload: wire,
	}
	frags, err := ipv4.Fragment(pkt, mtu)
	if err != nil {
		return 0, fmt.Errorf("send udp %s -> %s: %w", h.addr, dst, err)
	}
	// Force at least two fragments when the datagram fits the MTU whole:
	// split at the largest 8-byte boundary below the payload end.
	if len(frags) == 1 && len(wire) > 16 {
		cut := (len(wire) / 2) &^ 7
		if cut >= 8 {
			first := pkt.Clone()
			first.MF = true
			first.Payload = wire[:cut]
			second := pkt.Clone()
			second.FragOff = cut
			second.Payload = wire[cut:]
			frags = []*ipv4.Packet{first, second}
		}
	}
	for _, f := range frags {
		h.SentPackets++
		h.net.Inject(f)
	}
	return pkt.ID, nil
}

// SendICMPFragNeeded emits a fragmentation-needed ICMP toward dst. Routers
// use this legitimately; the attacker spoofs it via Network.Inject with a
// crafted packet (see internal/attack).
func (h *Host) SendICMPFragNeeded(dst ipv4.Addr, msg *ipv4.ICMPFragNeeded) {
	pkt := &ipv4.Packet{
		Src:     h.addr,
		Dst:     dst,
		ID:      h.ids.Next(h.addr, dst),
		Proto:   ipv4.ProtoICMP,
		TTL:     ipv4.DefaultTTL,
		Payload: msg.Marshal(),
	}
	h.SentPackets++
	h.net.Inject(pkt)
}

// ObserveRaw installs an observer that sees every packet delivered to this
// host — IP header included — before protocol processing. The attacker uses
// this to read the IPIDs of responses to its own probe queries (the IPID
// prediction step of Section III-2). The packet is pooled and recycled
// after processing: observers must not retain it or its payload.
func (h *Host) ObserveRaw(fn func(*ipv4.Packet)) { h.rawObs = fn }

// receive processes one delivered packet.
func (h *Host) receive(pkt *ipv4.Packet) {
	h.ReceivedPackets++
	if h.rawObs != nil {
		h.rawObs(pkt)
	}
	switch pkt.Proto {
	case ipv4.ProtoICMP:
		h.receiveICMP(pkt)
	case ipv4.ProtoUDP:
		h.receiveUDP(pkt)
	}
}

func (h *Host) receiveICMP(pkt *ipv4.Packet) {
	msg, err := ipv4.ParseICMPFragNeeded(pkt.Payload)
	if err != nil || msg == nil {
		return
	}
	// Real stacks accept fragmentation-needed ICMPs without validating the
	// embedded header against in-flight traffic — the property the attack
	// exploits. We update the PMTU toward the destination named in the
	// embedded original header.
	h.pmtu.Update(msg.OrigDst, int(msg.NextHopMTU))
	if h.icmp != nil {
		h.icmp(pkt.Src, msg)
	}
}

func (h *Host) receiveUDP(pkt *ipv4.Packet) {
	if h.dropFrag && pkt.IsFragment() {
		return
	}
	whole, ok := h.reasm.Add(pkt)
	if !ok {
		return
	}
	if whole.IsFragment() {
		return
	}
	if pkt.IsFragment() {
		h.net.emit(TraceReassembled, whole)
		// The reassembled packet and its buffer are network-private: recycle
		// them once the handler returns, like delivered packets.
		defer h.net.putPacket(whole)
	}
	if h.verify {
		if err := udp.Verify(whole.Src, whole.Dst, whole.Payload); err != nil {
			h.ChecksumErrors++
			h.net.emit(TraceChecksumFail, whole)
			return
		}
	}
	hdr, payload, err := udp.Parse(whole.Payload)
	if err != nil {
		return
	}
	fn, ok := h.udp[hdr.DstPort]
	if !ok {
		return
	}
	// The payload aliases the (pooled) packet buffer: handlers must not
	// retain it after returning (see the Network doc comment).
	fn(whole.Src, hdr.SrcPort, payload)
}
