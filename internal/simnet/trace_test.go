package simnet

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"dnstime/internal/ipv4"
	"dnstime/internal/simclock"
)

// TestTraceKindStrings pins every kind's name (the "?" fallback included):
// trace files and log lines embed these strings, so renames are breaking.
func TestTraceKindStrings(t *testing.T) {
	want := map[TraceKind]string{
		TraceSend:         "send",
		TraceDeliver:      "deliver",
		TraceDrop:         "drop",
		TraceReassembled:  "reasm",
		TraceChecksumFail: "badsum",
		TraceKind(0):      "?",
		TraceKind(99):     "?",
	}
	for k, s := range want {
		if got := k.String(); got != s {
			t.Errorf("TraceKind(%d).String() = %q, want %q", int(k), got, s)
		}
	}
}

// TestTraceEventString: the human-readable rendering carries the virtual
// time, the kind, and the packet summary.
func TestTraceEventString(t *testing.T) {
	pkt := &ipv4.Packet{Src: addrA, Dst: addrB, ID: 7, Proto: ipv4.ProtoUDP, TTL: 64}
	e := TraceEvent{Time: t0.Add(1500 * time.Millisecond), Kind: TraceDeliver, Pkt: pkt}
	s := e.String()
	for _, part := range []string{"00:00:01.500", "deliver", addrA.String(), addrB.String()} {
		if !strings.Contains(s, part) {
			t.Errorf("TraceEvent.String() = %q, missing %q", s, part)
		}
	}
}

// tracedRun drives a fixed traffic pattern over a lossy, jittery seeded
// network and returns the formatted trace-event sequence. reset reuses a
// recycled network via Reset instead of building fresh, mirroring what the
// lab pool does between seeds.
func tracedRun(t *testing.T, seed int64, recycled *Network) (*Network, []string) {
	t.Helper()
	var events []string
	opts := []Option{
		WithSeed(seed),
		WithLossRate(0.3),
		WithTrace(func(e TraceEvent) {
			// Pkt is pooled: format now, never retain.
			events = append(events, fmt.Sprintf("%s %s>%s id=%d off=%d len=%d",
				e.Kind, e.Pkt.Src, e.Pkt.Dst, e.Pkt.ID, e.Pkt.FragOff, len(e.Pkt.Payload)))
		}),
	}
	var n *Network
	if recycled != nil {
		recycled.RemoveHost(addrA)
		recycled.RemoveHost(addrB)
		recycled.Reset(opts...)
		recycled.Clock().Reset(t0)
		n = recycled
	} else {
		n = New(simclock.New(t0), opts...)
	}
	a := n.MustAddHost(addrA, HostConfig{})
	b := n.MustAddHost(addrB, HostConfig{})
	b.HandleUDP(53, func(src ipv4.Addr, port uint16, payload []byte) {})
	for i := 0; i < 20; i++ {
		if _, err := a.SendUDP(addrB, uint16(4000+i), 53, []byte("probe-payload")); err != nil {
			t.Fatal(err)
		}
		n.Clock().RunFor(5 * time.Millisecond)
	}
	n.Clock().RunFor(time.Second)
	return n, events
}

// TestTraceOrderDeterminism is the trace ordering contract from the
// package godoc: for a fixed seed the WithTrace callback sees the
// identical event sequence on every run — fresh network or one recycled
// through Reset (the lab pool path). Campaign workers each drive their
// own network single-threaded, so per-seed sequences are also independent
// of worker count; the engine-level equivalence test covers that half.
func TestTraceOrderDeterminism(t *testing.T) {
	const seed = 42
	n, ref := tracedRun(t, seed, nil)
	if len(ref) == 0 {
		t.Fatal("traced run produced no events")
	}
	// Sanity: a 30% loss pattern must show both delivers and drops.
	joined := strings.Join(ref, "\n")
	if !strings.Contains(joined, "send") || !strings.Contains(joined, "deliver") || !strings.Contains(joined, "drop") {
		t.Fatalf("trace lacks expected kinds:\n%s", joined)
	}
	for run := 0; run < 3; run++ {
		_, got := tracedRun(t, seed, nil)
		if fresh := strings.Join(got, "\n"); fresh != joined {
			t.Fatalf("fresh run %d diverged:\n%s\nvs\n%s", run, fresh, joined)
		}
	}
	// Recycled path: Reset must reproduce the same sequence bit for bit.
	for run := 0; run < 2; run++ {
		var got []string
		n, got = tracedRun(t, seed, n)
		if rec := strings.Join(got, "\n"); rec != joined {
			t.Fatalf("recycled run %d diverged:\n%s\nvs\n%s", run, rec, joined)
		}
	}
	// A different seed must diverge (the trace actually depends on seed).
	if _, other := tracedRun(t, seed+1, nil); strings.Join(other, "\n") == joined {
		t.Error("seed 42 and 43 produced identical traces; loss pattern not seeded?")
	}
}
