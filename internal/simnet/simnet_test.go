package simnet

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"dnstime/internal/ipv4"
	"dnstime/internal/netem"
	"dnstime/internal/simclock"
	"dnstime/internal/udp"
)

var (
	t0      = time.Date(2020, 1, 1, 0, 0, 0, 0, time.UTC)
	addrA   = ipv4.MustParseAddr("192.0.2.1")
	addrB   = ipv4.MustParseAddr("198.51.100.7")
	addrEve = ipv4.MustParseAddr("203.0.113.66")
)

func twoHosts(t *testing.T, opts ...Option) (*Network, *Host, *Host) {
	t.Helper()
	clk := simclock.New(t0)
	n := New(clk, opts...)
	a, err := n.AddHost(addrA, HostConfig{})
	if err != nil {
		t.Fatalf("AddHost A: %v", err)
	}
	b, err := n.AddHost(addrB, HostConfig{})
	if err != nil {
		t.Fatalf("AddHost B: %v", err)
	}
	return n, a, b
}

func TestUDPDelivery(t *testing.T) {
	n, a, b := twoHosts(t)
	var gotSrc ipv4.Addr
	var gotPort uint16
	var gotPayload []byte
	if err := b.HandleUDP(53, func(src ipv4.Addr, srcPort uint16, p []byte) {
		gotSrc, gotPort, gotPayload = src, srcPort, p
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := a.SendUDP(addrB, 4444, 53, []byte("query")); err != nil {
		t.Fatal(err)
	}
	n.Clock().RunFor(time.Second)
	if gotSrc != addrA || gotPort != 4444 || !bytes.Equal(gotPayload, []byte("query")) {
		t.Errorf("delivery = %v:%d %q", gotSrc, gotPort, gotPayload)
	}
}

func TestDeliveryRespectsLatency(t *testing.T) {
	n, a, b := twoHosts(t, WithLatency(250*time.Millisecond))
	var at time.Time
	b.HandleUDP(53, func(ipv4.Addr, uint16, []byte) { at = n.Clock().Now() })
	a.SendUDP(addrB, 1, 53, []byte("x"))
	n.Clock().RunFor(time.Second)
	if want := t0.Add(250 * time.Millisecond); !at.Equal(want) {
		t.Errorf("delivered at %v, want %v", at, want)
	}
}

func TestDuplicateHostRejected(t *testing.T) {
	clk := simclock.New(t0)
	n := New(clk)
	n.MustAddHost(addrA, HostConfig{})
	if _, err := n.AddHost(addrA, HostConfig{}); !errors.Is(err, ErrDuplicateHost) {
		t.Errorf("err = %v, want ErrDuplicateHost", err)
	}
}

func TestDuplicatePortRejected(t *testing.T) {
	_, _, b := twoHosts(t)
	h := func(ipv4.Addr, uint16, []byte) {}
	if err := b.HandleUDP(53, h); err != nil {
		t.Fatal(err)
	}
	if err := b.HandleUDP(53, h); !errors.Is(err, ErrPortInUse) {
		t.Errorf("err = %v, want ErrPortInUse", err)
	}
	b.UnhandleUDP(53)
	if err := b.HandleUDP(53, h); err != nil {
		t.Errorf("re-register after unhandle: %v", err)
	}
}

func TestUnhandledPortDropped(t *testing.T) {
	n, a, b := twoHosts(t)
	delivered := false
	b.HandleUDP(53, func(ipv4.Addr, uint16, []byte) { delivered = true })
	a.SendUDP(addrB, 1, 99, []byte("x")) // port 99 has no handler
	n.Clock().RunFor(time.Second)
	if delivered {
		t.Error("datagram to unhandled port was delivered to another handler")
	}
}

func TestLargePayloadFragmentsAndReassembles(t *testing.T) {
	n, a, b := twoHosts(t)
	payload := bytes.Repeat([]byte("0123456789abcdef"), 200) // 3200 B
	var got []byte
	b.HandleUDP(53, func(_ ipv4.Addr, _ uint16, p []byte) { got = p })
	a.SendUDP(addrB, 1, 53, payload)
	n.Clock().RunFor(time.Second)
	if !bytes.Equal(got, payload) {
		t.Errorf("got %d bytes, want %d intact", len(got), len(payload))
	}
	if a.SentPackets < 3 {
		t.Errorf("SentPackets = %d, want ≥3 fragments", a.SentPackets)
	}
}

func TestICMPFragNeededLowersPathMTU(t *testing.T) {
	n, a, b := twoHosts(t)
	if got := a.PathMTU(addrB); got != ipv4.DefaultMTU {
		t.Fatalf("initial PathMTU = %d", got)
	}
	// B (or anyone — it is unauthenticated) tells A that packets A→B need
	// fragmentation below 576.
	b.SendICMPFragNeeded(addrA, &ipv4.ICMPFragNeeded{
		NextHopMTU: 576, OrigSrc: addrA, OrigDst: addrB, OrigProto: ipv4.ProtoUDP,
	})
	n.Clock().RunFor(time.Second)
	if got := a.PathMTU(addrB); got != 576 {
		t.Errorf("PathMTU = %d after ICMP, want 576", got)
	}
}

func TestSpoofedICMPViaInject(t *testing.T) {
	n, a, _ := twoHosts(t)
	msg := &ipv4.ICMPFragNeeded{NextHopMTU: 296, OrigSrc: addrA, OrigDst: addrB, OrigProto: ipv4.ProtoUDP}
	// Off-path attacker injects an ICMP with a spoofed router source.
	n.Inject(&ipv4.Packet{
		Src: ipv4.MustParseAddr("10.99.99.99"), Dst: addrA,
		Proto: ipv4.ProtoICMP, TTL: 64, Payload: msg.Marshal(),
	})
	n.Clock().RunFor(time.Second)
	if got := a.PathMTU(addrB); got != 296 {
		t.Errorf("PathMTU = %d after spoofed ICMP, want 296", got)
	}
}

func TestInjectSpoofedUDP(t *testing.T) {
	n, _, b := twoHosts(t)
	var gotSrc ipv4.Addr
	b.HandleUDP(123, func(src ipv4.Addr, _ uint16, _ []byte) { gotSrc = src })
	d := &udp.Datagram{Header: udp.Header{SrcPort: 123, DstPort: 123}, Payload: []byte("ntp")}
	wire := udp.WithChecksum(addrA, addrB, d.Marshal())
	// Eve spoofs A's address.
	n.Inject(&ipv4.Packet{Src: addrA, Dst: addrB, Proto: ipv4.ProtoUDP, TTL: 64, ID: 9, Payload: wire})
	n.Clock().RunFor(time.Second)
	if gotSrc != addrA {
		t.Errorf("src = %v, want spoofed %v", gotSrc, addrA)
	}
}

func TestChecksumVerificationDropsCorrupt(t *testing.T) {
	n, _, b := twoHosts(t)
	delivered := false
	b.HandleUDP(53, func(ipv4.Addr, uint16, []byte) { delivered = true })
	d := &udp.Datagram{Header: udp.Header{SrcPort: 1, DstPort: 53}, Payload: []byte("query")}
	wire := udp.WithChecksum(addrA, addrB, d.Marshal())
	wire[len(wire)-1] ^= 0xff
	n.Inject(&ipv4.Packet{Src: addrA, Dst: addrB, Proto: ipv4.ProtoUDP, TTL: 64, Payload: wire})
	n.Clock().RunFor(time.Second)
	if delivered {
		t.Error("corrupt datagram delivered")
	}
	if b.ChecksumErrors != 1 {
		t.Errorf("ChecksumErrors = %d, want 1", b.ChecksumErrors)
	}
}

func TestPMTUAffectsSubsequentSends(t *testing.T) {
	n, a, b := twoHosts(t)
	payload := bytes.Repeat([]byte("x"), 1000)
	b.HandleUDP(53, func(ipv4.Addr, uint16, []byte) {})
	a.SendUDP(addrB, 1, 53, payload)
	if a.SentPackets != 1 {
		t.Fatalf("SentPackets = %d before PMTU change, want 1", a.SentPackets)
	}
	b.SendICMPFragNeeded(addrA, &ipv4.ICMPFragNeeded{NextHopMTU: 576, OrigSrc: addrA, OrigDst: addrB, OrigProto: ipv4.ProtoUDP})
	n.Clock().RunFor(time.Second)
	a.SentPackets = 0
	a.SendUDP(addrB, 1, 53, payload)
	if a.SentPackets != 2 {
		t.Errorf("SentPackets = %d after MTU=576, want 2 fragments", a.SentPackets)
	}
}

func TestLossDropsPackets(t *testing.T) {
	clk := simclock.New(t0)
	n := New(clk, WithLoss(1.0, 42))
	a := n.MustAddHost(addrA, HostConfig{})
	b := n.MustAddHost(addrB, HostConfig{})
	delivered := false
	b.HandleUDP(53, func(ipv4.Addr, uint16, []byte) { delivered = true })
	a.SendUDP(addrB, 1, 53, []byte("x"))
	clk.RunFor(time.Second)
	if delivered {
		t.Error("packet delivered despite 100% loss")
	}
}

// TestPathModelJitterAndLoss: a WithPathModel network draws per-packet
// latency and loss from the installed model — delivery times vary within
// the distribution's bounds and some packets vanish.
func TestPathModelJitterAndLoss(t *testing.T) {
	model := &netem.Path{
		Delay: netem.Uniform{Min: 5 * time.Millisecond, Max: 50 * time.Millisecond},
		Loss:  netem.IID{P: 0.3},
	}
	n, a, b := twoHosts(t, WithPathModel(model), WithSeed(11))
	var arrivals []time.Duration
	b.HandleUDP(53, func(ipv4.Addr, uint16, []byte) {
		arrivals = append(arrivals, n.Clock().Now().Sub(t0))
	})
	sent := 200
	for i := 0; i < sent; i++ {
		a.SendUDP(addrB, 1, 53, []byte("x"))
	}
	n.Clock().RunFor(time.Second)
	if len(arrivals) == sent || len(arrivals) == 0 {
		t.Fatalf("delivered %d/%d packets, want lossy-but-nonzero", len(arrivals), sent)
	}
	for _, at := range arrivals {
		if at < 5*time.Millisecond || at > 50*time.Millisecond {
			t.Fatalf("delivery at %v outside the model's [5ms, 50ms]", at)
		}
	}
}

// TestSeedDeterminesLinkRandomness: two networks built from the same seed
// replay identical per-packet loss and jitter decisions; a different seed
// diverges. This is the property that keeps lossy campaigns byte-identical
// at any worker count — link RNG state derives from the run seed alone.
func TestSeedDeterminesLinkRandomness(t *testing.T) {
	run := func(seed int64) []time.Duration {
		model := &netem.Path{
			Delay: netem.Uniform{Min: time.Millisecond, Max: 20 * time.Millisecond},
			Loss:  &netem.GilbertElliott{PGB: 0.1, PBG: 0.5, LossBad: 1},
		}
		n, a, b := twoHosts(t, WithPathModel(model), WithSeed(seed))
		var arrivals []time.Duration
		b.HandleUDP(53, func(ipv4.Addr, uint16, []byte) {
			arrivals = append(arrivals, n.Clock().Now().Sub(t0))
		})
		for i := 0; i < 100; i++ {
			a.SendUDP(addrB, 1, 53, []byte("x"))
		}
		n.Clock().RunFor(time.Second)
		return arrivals
	}
	a1, a2 := run(42), run(42)
	if len(a1) != len(a2) {
		t.Fatalf("same seed delivered %d vs %d packets", len(a1), len(a2))
	}
	for i := range a1 {
		if a1[i] != a2[i] {
			t.Fatalf("same seed, packet %d delivered at %v vs %v", i, a1[i], a2[i])
		}
	}
	b1 := run(43)
	if len(a1) == len(b1) {
		same := true
		for i := range a1 {
			if a1[i] != b1[i] {
				same = false
				break
			}
		}
		if same {
			t.Error("different seeds produced identical link behaviour")
		}
	}
}

// TestWithLossShimMatchesLossRatePlusSeed: the deprecated WithLoss(p,
// seed) must behave packet-for-packet like WithLossRate(p) + WithSeed(seed).
func TestWithLossShimMatchesLossRatePlusSeed(t *testing.T) {
	deliveries := func(opts ...Option) int {
		n, a, b := twoHosts(t, opts...)
		got := 0
		b.HandleUDP(53, func(ipv4.Addr, uint16, []byte) { got++ })
		for i := 0; i < 200; i++ {
			a.SendUDP(addrB, 1, 53, []byte("x"))
		}
		n.Clock().RunFor(time.Second)
		return got
	}
	shim := deliveries(WithLoss(0.25, 7))
	split := deliveries(WithLossRate(0.25), WithSeed(7))
	if shim != split || shim == 0 || shim == 200 {
		t.Errorf("WithLoss shim delivered %d packets, WithLossRate+WithSeed %d", shim, split)
	}
}

func TestInjectToUnknownHostDropped(t *testing.T) {
	clk := simclock.New(t0)
	var dropped bool
	n := New(clk, WithTrace(func(e TraceEvent) {
		if e.Kind == TraceDrop {
			dropped = true
		}
	}))
	n.Inject(&ipv4.Packet{Src: addrA, Dst: addrB, Proto: ipv4.ProtoUDP, Payload: []byte{0, 0, 0, 0, 0, 8, 0, 0}})
	clk.RunFor(time.Second)
	if !dropped {
		t.Error("packet to unknown host not traced as dropped")
	}
}

func TestTraceRecordsSendAndDeliver(t *testing.T) {
	clk := simclock.New(t0)
	var events []TraceEvent
	n := New(clk, WithTrace(func(e TraceEvent) { events = append(events, e) }))
	a := n.MustAddHost(addrA, HostConfig{})
	b := n.MustAddHost(addrB, HostConfig{})
	b.HandleUDP(53, func(ipv4.Addr, uint16, []byte) {})
	a.SendUDP(addrB, 1, 53, []byte("x"))
	clk.RunFor(time.Second)
	var sends, delivers int
	for _, e := range events {
		switch e.Kind {
		case TraceSend:
			sends++
		case TraceDeliver:
			delivers++
		}
		if e.String() == "" {
			t.Error("empty trace line")
		}
	}
	if sends != 1 || delivers != 1 {
		t.Errorf("sends=%d delivers=%d, want 1,1", sends, delivers)
	}
}

func TestAllocPortMonotonic(t *testing.T) {
	_, a, _ := twoHosts(t)
	p1, p2 := a.AllocPort(), a.AllocPort()
	if p2 != p1+1 {
		t.Errorf("ports %d,%d not sequential", p1, p2)
	}
}

func TestFragmentedSpoofInjection(t *testing.T) {
	// End-to-end: attacker plants a spoofed second fragment; the real
	// host then sends a fragmented datagram with a matching IPID; the
	// reassembled datagram carries the attacker's bytes and passes the
	// checksum (attacker fixed it via slack bytes).
	n, a, b := twoHosts(t)
	var got []byte
	b.HandleUDP(53, func(_ ipv4.Addr, _ uint16, p []byte) { got = p })

	// Force A to fragment toward B.
	b.SendICMPFragNeeded(addrA, &ipv4.ICMPFragNeeded{NextHopMTU: 576, OrigSrc: addrA, OrigDst: addrB, OrigProto: ipv4.ProtoUDP})
	n.Clock().RunFor(100 * time.Millisecond)

	// Predict what A will send (the attacker knows the payload layout of
	// the DNS answer it is racing; here we just construct it directly).
	payload := bytes.Repeat([]byte("real-record-data"), 64) // 1024 B
	d := &udp.Datagram{Header: udp.Header{SrcPort: 53, DstPort: 5353}, Payload: payload}
	wire := udp.WithChecksum(addrA, addrB, d.Marshal())
	whole := &ipv4.Packet{Src: addrA, Dst: addrB, ID: 0, Proto: ipv4.ProtoUDP, TTL: 64, Payload: wire}
	frags, err := ipv4.Fragment(whole, 576)
	if err != nil || len(frags) != 2 {
		t.Fatalf("predicted fragmentation: %v, %d frags", err, len(frags))
	}

	// Attacker crafts the spoofed second fragment with fixed checksum.
	spoof := frags[1].Clone()
	for i := 0; i < len(spoof.Payload)-2; i++ {
		spoof.Payload[i] = 0xEE
	}
	if err := udp.FixSum(frags[1].Payload, spoof.Payload, len(spoof.Payload)-2); err != nil {
		t.Fatalf("FixSum: %v", err)
	}
	n.Inject(spoof)
	n.Clock().RunFor(100 * time.Millisecond)

	// Real host sends; its IPID allocator starts at 0, matching the spoof.
	b.HandleUDP(5353, func(_ ipv4.Addr, _ uint16, p []byte) { got = p })
	if _, err := a.SendUDP(addrB, 53, 5353, payload); err != nil {
		t.Fatal(err)
	}
	n.Clock().RunFor(time.Second)

	if len(got) == 0 {
		t.Fatal("no datagram delivered — checksum fix or reassembly failed")
	}
	if got[len(got)-3] != 0xEE {
		t.Error("delivered datagram does not contain attacker bytes")
	}
	if b.ChecksumErrors != 0 {
		t.Errorf("ChecksumErrors = %d, want 0", b.ChecksumErrors)
	}
}
