package simnet

import (
	"testing"
	"time"

	"dnstime/internal/ipv4"
)

// allocBudgetRoundTrip is the committed budget for one UDP request/response
// round trip between two warm hosts: send, deliver, reply, deliver. The
// packet free list, the clock's event arena and the delivery-argument pool
// make the steady state allocation-free.
const allocBudgetRoundTrip = 0

func TestAllocBudgetPacketRoundTrip(t *testing.T) {
	n, a, b := twoHosts(t)
	if err := b.HandleUDP(53, func(src ipv4.Addr, srcPort uint16, p []byte) {
		if _, err := b.SendUDP(src, 53, srcPort, p); err != nil {
			t.Error(err)
		}
	}); err != nil {
		t.Fatal(err)
	}
	got := 0
	if err := a.HandleUDP(4444, func(ipv4.Addr, uint16, []byte) { got++ }); err != nil {
		t.Fatal(err)
	}
	payload := []byte("query")
	clk := n.Clock()
	roundTrip := func() {
		if _, err := a.SendUDP(addrB, 4444, 53, payload); err != nil {
			t.Fatal(err)
		}
		clk.RunFor(time.Second)
	}
	// Warm the free lists before measuring.
	for i := 0; i < 8; i++ {
		roundTrip()
	}
	avg := testing.AllocsPerRun(200, roundTrip)
	if avg > allocBudgetRoundTrip {
		t.Errorf("%.1f allocs per warm packet round trip, budget %d", avg, allocBudgetRoundTrip)
	}
	if got == 0 {
		t.Fatal("no responses delivered")
	}
}
