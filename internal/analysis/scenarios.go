package analysis

import (
	"context"
	"fmt"

	"dnstime/internal/scenario"
)

// The closed-form §V-B probability analysis registers itself with the
// scenario registry. Table III is seed-independent: a campaign over it
// produces zero-width confidence intervals, which is itself a useful
// cross-check that the analysis carries no hidden randomness.
func init() {
	scenario.Register(scenario.Scenario{
		Name:     "table3",
		Title:    "Table III probabilities",
		PaperRef: "§V-B",
		Impl:     "analysis.TableIII",
		CLI:      "experiments -only table3",
		Params:   map[string]string{"p_rate": "0.38"},
		Order:    50,
		Run:      tableIIIScenario,
	})
}

// tableIIIScenario evaluates every Table III row at the paper's measured
// rate-limiting probability.
func tableIIIScenario(context.Context, int64, scenario.Config) (scenario.Result, error) {
	rows := TableIII(DefaultPRate)
	metrics := make(map[string]float64, 3*len(rows))
	for _, r := range rows {
		metrics[fmt.Sprintf("n/m=%d", r.M)] = float64(r.N)
		metrics[fmt.Sprintf("p1_pct/m=%d", r.M)] = r.P1
		metrics[fmt.Sprintf("p2_pct/m=%d", r.M)] = r.P2
	}
	return scenario.Result{Metrics: metrics}, nil
}
