// Package analysis implements the paper's closed-form probability analysis
// of the run-time attack (Section V-B, Table III) and the expected-duration
// model behind Table II, plus Monte-Carlo cross-checks.
package analysis

import (
	"math"
	"math/rand"
	"time"
)

// DefaultPRate is the measured fraction of pool.ntp.org servers that
// rate-limit (Section VII-A: 904 of 2432 ≈ 38%).
const DefaultPRate = 0.38

// P1 is the Scenario-1 success probability: the attacker removes servers
// one-after-another (discovered by querying the client), so all n targeted
// servers must rate-limit: P1(n) = p^n.
func P1(n int, p float64) float64 {
	return math.Pow(p, float64(n))
}

// P2 is the Scenario-2 success probability: the attacker knows all m
// upstream servers upfront and needs any n of them to rate-limit:
// P2(m,n) = Σ_{i=n..m} C(m,i) p^i (1−p)^{m−i}.
//
// (The paper's Table III prints the summand as pⁱ·p^{m−i}; the tabulated
// values correspond to the standard binomial tail with q = 1−p, which is
// what we compute.)
func P2(m, n int, p float64) float64 {
	if n > m {
		return 0
	}
	var sum float64
	for i := n; i <= m; i++ {
		sum += binomCoeff(m, i) * math.Pow(p, float64(i)) * math.Pow(1-p, float64(m-i))
	}
	return sum
}

func binomCoeff(n, k int) float64 {
	if k < 0 || k > n {
		return 0
	}
	if k > n-k {
		k = n - k
	}
	c := 1.0
	for i := 0; i < k; i++ {
		c = c * float64(n-i) / float64(i+1)
	}
	return c
}

// RemovalThreshold is the number n of associations the attacker must remove
// for a client with m associations, per Table III: the attacker needs a
// strict majority of servers, but never more than m−2 (an ntpd-style client
// re-queries DNS once fewer than MINCLOCK=3 ⇒ m−2 removals suffice to
// trigger the lookup).
//
// Note: the paper's column header prints max(⌈m/2⌉, m−2), but its own row
// m=4 (n=3) matches the strict majority max(⌈(m+1)/2⌉, m−2), which is what
// we implement; every other row agrees with both.
func RemovalThreshold(m int) int {
	maj := (m + 2) / 2 // ⌈(m+1)/2⌉
	alt := m - 2
	if alt > maj {
		return alt
	}
	return maj
}

// TableIIIRow is one row of Table III.
type TableIIIRow struct {
	M  int
	N  int
	P1 float64 // percent
	P2 float64 // percent
}

// TableIII computes the full Table III for the given rate-limiting
// probability (paper: 0.38).
func TableIII(p float64) []TableIIIRow {
	rows := make([]TableIIIRow, 0, 9)
	for m := 1; m <= 9; m++ {
		n := RemovalThreshold(m)
		rows = append(rows, TableIIIRow{
			M:  m,
			N:  n,
			P1: 100 * P1(n, p),
			P2: 100 * P2(m, n, p),
		})
	}
	return rows
}

// MonteCarloP2 estimates P2(m,n) by sampling server populations — a
// cross-check on the closed form used in the property tests.
func MonteCarloP2(m, n int, p float64, trials int, seed int64) float64 {
	rng := rand.New(rand.NewSource(seed))
	hit := 0
	for t := 0; t < trials; t++ {
		limiting := 0
		for i := 0; i < m; i++ {
			if rng.Float64() < p {
				limiting++
			}
		}
		if limiting >= n {
			hit++
		}
	}
	return float64(hit) / float64(trials)
}

// DurationModel predicts the run-time attack duration for a client, per the
// mechanism of Section V-A2: each targeted association takes
// UnreachableAfter missed polls to demobilise; in Scenario P1 all targets
// are starved concurrently, while in Scenario P2 the attacker discovers and
// starves them one at a time (discovery adds one poll round per server as
// the client fails over); accepting the attacker's time then takes
// SelectMinSamples polls of the new servers.
type DurationModel struct {
	PollInterval     time.Duration
	UnreachableAfter int
	SelectMinSamples int
	ServersToRemove  int
}

// P1Duration is the expected duration with all upstream addresses known.
func (d DurationModel) P1Duration() time.Duration {
	removal := time.Duration(d.UnreachableAfter) * d.PollInterval
	accept := time.Duration(d.SelectMinSamples+1) * d.PollInterval
	return removal + accept
}

// P2Duration is the expected duration with one-at-a-time RefID discovery.
func (d DurationModel) P2Duration() time.Duration {
	perServer := time.Duration(d.UnreachableAfter+1) * d.PollInterval
	removal := time.Duration(d.ServersToRemove) * perServer
	accept := time.Duration(d.SelectMinSamples+1) * d.PollInterval
	return removal + accept
}
