package analysis

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func approx(got, want, tol float64) bool { return math.Abs(got-want) <= tol }

// TestTableIIIMatchesPaper reproduces every row of Table III at
// p_rate = 38%.
func TestTableIIIMatchesPaper(t *testing.T) {
	want := []TableIIIRow{
		{1, 1, 38.0, 38.0},
		{2, 2, 14.4, 14.4},
		{3, 2, 14.4, 32.4},
		{4, 3, 5.5, 15.7},
		{5, 3, 5.5, 28.4},
		{6, 4, 2.1, 15.3},
		{7, 5, 0.8, 7.8},
		{8, 6, 0.3, 3.9},
		{9, 7, 0.1, 1.8},
	}
	got := TableIII(DefaultPRate)
	if len(got) != len(want) {
		t.Fatalf("rows = %d, want %d", len(got), len(want))
	}
	for i, w := range want {
		g := got[i]
		if g.M != w.M || g.N != w.N {
			t.Errorf("row %d: m,n = %d,%d want %d,%d", i, g.M, g.N, w.M, w.N)
		}
		if !approx(g.P1, w.P1, 0.06) {
			t.Errorf("row m=%d: P1 = %.2f%%, want %.1f%%", w.M, g.P1, w.P1)
		}
		if !approx(g.P2, w.P2, 0.06) {
			t.Errorf("row m=%d: P2 = %.2f%%, want %.1f%%", w.M, g.P2, w.P2)
		}
	}
}

func TestP1(t *testing.T) {
	if !approx(P1(1, 0.38), 0.38, 1e-12) {
		t.Error("P1(1) wrong")
	}
	if !approx(P1(4, 0.38), 0.38*0.38*0.38*0.38, 1e-12) {
		t.Error("P1(4) wrong")
	}
	if P1(0, 0.38) != 1 {
		t.Error("P1(0) should be 1")
	}
}

func TestP2EqualsP1WhenNEqualsM(t *testing.T) {
	for m := 1; m <= 9; m++ {
		if !approx(P2(m, m, 0.38), P1(m, 0.38), 1e-12) {
			t.Errorf("P2(%d,%d) != P1(%d)", m, m, m)
		}
	}
}

func TestP2Boundaries(t *testing.T) {
	if P2(3, 4, 0.38) != 0 {
		t.Error("P2 with n>m should be 0")
	}
	if !approx(P2(5, 0, 0.38), 1, 1e-12) {
		t.Error("P2 with n=0 should be 1")
	}
}

func TestRemovalThresholdTableIII(t *testing.T) {
	want := map[int]int{1: 1, 2: 2, 3: 2, 4: 3, 5: 3, 6: 4, 7: 5, 8: 6, 9: 7}
	for m, n := range want {
		if got := RemovalThreshold(m); got != n {
			t.Errorf("RemovalThreshold(%d) = %d, want %d", m, got, n)
		}
	}
}

// Property: P2 is monotone decreasing in n and increasing in p.
func TestPropertyP2Monotonicity(t *testing.T) {
	f := func(mRaw, nRaw uint8, pRaw uint16) bool {
		m := int(mRaw)%12 + 1
		n := int(nRaw) % (m + 1)
		p := float64(pRaw%1000) / 1000
		if P2(m, n, p)+1e-9 < P2(m, n+1, p) {
			return false
		}
		return P2(m, n, p) <= P2(m, n, math.Min(p+0.1, 1))+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: Monte-Carlo agrees with the closed form.
func TestMonteCarloAgreesWithClosedForm(t *testing.T) {
	for _, tc := range []struct{ m, n int }{{4, 3}, {6, 4}, {9, 7}} {
		exact := P2(tc.m, tc.n, 0.38)
		mc := MonteCarloP2(tc.m, tc.n, 0.38, 200000, 42)
		if !approx(mc, exact, 0.01) {
			t.Errorf("MC P2(%d,%d) = %.4f, closed form %.4f", tc.m, tc.n, mc, exact)
		}
	}
}

func TestDurationModelShape(t *testing.T) {
	// Table II shape: NTPd P1 < chrony P1 < systemd-ish; P2 ≈ 2-4× P1.
	ntpd := DurationModel{PollInterval: 64 * time.Second, UnreachableAfter: 8, SelectMinSamples: 4, ServersToRemove: 4}
	if p1 := ntpd.P1Duration(); p1 < 10*time.Minute || p1 > 25*time.Minute {
		t.Errorf("NTPd P1 model = %v, want ≈17 min", p1)
	}
	p1, p2 := ntpd.P1Duration(), ntpd.P2Duration()
	if p2 <= p1 {
		t.Errorf("P2 (%v) should exceed P1 (%v)", p2, p1)
	}
	if ratio := float64(p2) / float64(p1); ratio < 2 || ratio > 5 {
		t.Errorf("P2/P1 ratio = %.1f, want 2-5 (paper: 47/17 ≈ 2.8)", ratio)
	}
}
