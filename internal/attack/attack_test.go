package attack

import (
	"errors"
	"testing"
	"time"

	"dnstime/internal/dnsauth"
	"dnstime/internal/dnsres"
	"dnstime/internal/dnswire"
	"dnstime/internal/ipv4"
	"dnstime/internal/ntpserv"
	"dnstime/internal/simclock"
	"dnstime/internal/simnet"
)

var (
	t0      = time.Date(2020, 1, 1, 0, 0, 0, 0, time.UTC)
	nsAddr  = ipv4.MustParseAddr("198.51.100.53")
	resAddr = ipv4.MustParseAddr("192.0.2.53")
	eveAddr = ipv4.MustParseAddr("203.0.113.66")
	evilNTP = ipv4.MustParseAddr("6.6.6.6")
)

type fixture struct {
	clk  *simclock.Clock
	net  *simnet.Network
	auth *dnsauth.Server
	res  *dnsres.Resolver
	eve  *Attacker
}

// newFixture builds: authoritative NS for pool.ntp.org (4 stable pool
// addresses, padded responses), victim resolver, attacker host.
func newFixture(t *testing.T, poolSize int) *fixture {
	t.Helper()
	clk := simclock.New(t0)
	n := simnet.New(clk)
	authHost := n.MustAddHost(nsAddr, simnet.HostConfig{})
	auth, err := dnsauth.New(authHost, dnsauth.Config{PadResponsesTo: 120})
	if err != nil {
		t.Fatal(err)
	}
	addrs := make([]ipv4.Addr, poolSize)
	for i := range addrs {
		addrs[i] = ipv4.Addr{10, 0, 0, byte(i + 1)}
	}
	auth.AddPool(&dnsauth.Pool{Name: "pool.ntp.org", Addrs: addrs, PerResponse: 4, TTL: 150})
	resHost := n.MustAddHost(resAddr, simnet.HostConfig{})
	res, err := dnsres.New(resHost, dnsres.Config{Delegations: map[string]ipv4.Addr{"ntp.org": nsAddr}})
	if err != nil {
		t.Fatal(err)
	}
	eveHost := n.MustAddHost(eveAddr, simnet.HostConfig{})
	return &fixture{clk: clk, net: n, auth: auth, res: res, eve: New(eveHost, 1)}
}

func TestPredictIPIDs(t *testing.T) {
	probes := []uint16{100, 101, 102, 103}
	ids := PredictIPIDs(probes, 1, 4)
	if len(ids) != 4 || ids[0] != 104 {
		t.Errorf("ids = %v, want starting at 104", ids)
	}
	// Faster counters.
	probes = []uint16{100, 110, 120}
	ids = PredictIPIDs(probes, 2, 2)
	if ids[0] != 140 {
		t.Errorf("ids[0] = %d, want 140 (rate 10, ahead 2)", ids[0])
	}
	if PredictIPIDs(nil, 1, 4) != nil {
		t.Error("nil probes should yield nil")
	}
}

func TestPredictIPIDsWraparound(t *testing.T) {
	probes := []uint16{0xfffe, 0xffff}
	ids := PredictIPIDs(probes, 1, 2)
	if ids[0] != 0 || ids[1] != 1 {
		t.Errorf("ids = %v, want wraparound to 0,1", ids)
	}
}

func TestProbeIPIDsObservesSequentialCounter(t *testing.T) {
	f := newFixture(t, 4)
	var got []uint16
	f.eve.ProbeIPIDs(nsAddr, "pool.ntp.org", 5, 500*time.Millisecond, func(ids []uint16, err error) {
		if err != nil {
			t.Errorf("ProbeIPIDs: %v", err)
			return
		}
		got = ids
	})
	f.clk.RunFor(10 * time.Second)
	if len(got) != 5 {
		t.Fatalf("observed %d IPIDs, want 5", len(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i] != got[i-1]+1 {
			t.Errorf("IPIDs not sequential: %v", got)
		}
	}
}

func TestMaliciousTwinPreservesShape(t *testing.T) {
	f := newFixture(t, 4)
	var template []byte
	f.eve.FetchTemplate(nsAddr, "pool.ntp.org", func(p []byte, err error) {
		if err != nil {
			t.Errorf("FetchTemplate: %v", err)
			return
		}
		template = p
	})
	f.clk.RunFor(5 * time.Second)
	if template == nil {
		t.Fatal("no template")
	}
	mal, err := MaliciousTwin(template, []ipv4.Addr{evilNTP}, 86400*2)
	if err != nil {
		t.Fatalf("MaliciousTwin: %v", err)
	}
	if len(mal) != len(template) {
		t.Fatalf("length changed: %d -> %d", len(template), len(mal))
	}
	m, err := dnswire.Unmarshal(mal)
	if err != nil {
		t.Fatalf("re-parse: %v", err)
	}
	for _, rr := range m.Answers {
		if rr.Type == dnswire.TypeA {
			if rr.Addr != evilNTP {
				t.Errorf("answer addr = %v, want %v", rr.Addr, evilNTP)
			}
			if rr.TTL != 86400*2 {
				t.Errorf("TTL = %d, want 172800", rr.TTL)
			}
		}
	}
}

func TestMaliciousTwinErrors(t *testing.T) {
	if _, err := MaliciousTwin([]byte{1, 2}, []ipv4.Addr{evilNTP}, 0); err == nil {
		t.Error("garbage template accepted")
	}
	q := dnswire.NewQuery(1, "x.test", dnswire.TypeA, true)
	wire, _ := q.Marshal()
	if _, err := MaliciousTwin(wire, nil, 0); !errors.Is(err, ErrShapeMismatch) {
		t.Errorf("err = %v, want ErrShapeMismatch for empty malicious set", err)
	}
}

// TestFullPoisoningPipeline is the paper's §III attack end to end, using
// only off-path primitives:
//
//  1. spoofed ICMP forces the NS to fragment toward the resolver (MTU 68),
//  2. the attacker learns the response template by querying the NS itself,
//  3. probes predict the NS's sequential IPID,
//  4. a spoofed second fragment with the attacker's NTP address and fixed
//     UDP checksum is planted in the resolver's defrag cache,
//  5. the attacker triggers the resolver's query (open-resolver trigger),
//  6. the real first fragment reassembles with the spoofed second fragment
//     and the malicious record enters the cache.
func TestFullPoisoningPipeline(t *testing.T) {
	f := newFixture(t, 4)
	eve := f.eve

	// (1) Force fragmentation NS -> resolver.
	eve.ForceFragmentation(nsAddr, resAddr, 68)
	f.clk.RunFor(time.Second)

	// (2) Learn the template.
	var template []byte
	eve.FetchTemplate(nsAddr, "pool.ntp.org", func(p []byte, err error) { template = p })
	f.clk.RunFor(2 * time.Second)
	if template == nil {
		t.Fatal("no template")
	}

	// (3) Predict IPIDs.
	var window []uint16
	eve.ProbeIPIDs(nsAddr, "pool.ntp.org", 4, 300*time.Millisecond, func(ids []uint16, err error) {
		if err != nil {
			t.Errorf("probe: %v", err)
			return
		}
		window = PredictIPIDs(ids, 1, 8)
	})
	f.clk.RunFor(5 * time.Second)
	if window == nil {
		t.Fatal("no IPID window")
	}

	// (4) Craft and plant the spoofed second fragments.
	frags, err := BuildSpoofedFragments(PoisonPlan{
		NS: nsAddr, Resolver: resAddr, Template: template,
		Malicious: []ipv4.Addr{evilNTP}, TTL: 0, MTU: 68, IPIDs: window,
	})
	if err != nil {
		t.Fatalf("BuildSpoofedFragments: %v", err)
	}
	for _, fr := range frags {
		eve.Inject(fr)
	}

	// (5) Trigger the resolver's upstream query.
	eve.TriggerOpenResolverQuery(resAddr, "pool.ntp.org")
	f.clk.RunFor(5 * time.Second)

	// (6) The cache now maps pool.ntp.org to the attacker's NTP server.
	entry, ok := f.res.Peek("pool.ntp.org", dnswire.TypeA)
	if !ok {
		t.Fatal("nothing cached — poisoning failed")
	}
	found := false
	for _, rr := range entry.RRs {
		if rr.Type == dnswire.TypeA && rr.Addr == evilNTP {
			found = true
		}
	}
	if !found {
		t.Errorf("cache holds %v, want %v", entry.RRs, evilNTP)
	}
	if f.res.Host().ChecksumErrors != 0 {
		t.Errorf("checksum errors at resolver: %d (fix failed?)", f.res.Host().ChecksumErrors)
	}
}

// TestPoisoningFailsWithoutChecksumFix shows the checksum check doing its
// job when the attacker skips the fix.
func TestPoisoningFailsWithoutChecksumFix(t *testing.T) {
	f := newFixture(t, 4)
	eve := f.eve
	eve.ForceFragmentation(nsAddr, resAddr, 68)
	f.clk.RunFor(time.Second)
	var template []byte
	eve.FetchTemplate(nsAddr, "pool.ntp.org", func(p []byte, err error) { template = p })
	f.clk.RunFor(2 * time.Second)

	frags, err := BuildSpoofedFragments(PoisonPlan{
		NS: nsAddr, Resolver: resAddr, Template: template,
		Malicious: []ipv4.Addr{evilNTP}, MTU: 68, IPIDs: []uint16{0, 1, 2, 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Sabotage the checksum fix by flipping a byte. The fragments share one
	// payload slice, so one flip corrupts every candidate.
	frags[0].Payload[0] ^= 0xff
	for _, fr := range frags {
		eve.Inject(fr)
	}
	eve.TriggerOpenResolverQuery(resAddr, "pool.ntp.org")
	f.clk.RunFor(5 * time.Second)
	if entry, ok := f.res.Peek("pool.ntp.org", dnswire.TypeA); ok {
		for _, rr := range entry.RRs {
			if rr.Addr == evilNTP {
				t.Fatal("malicious record cached despite broken checksum")
			}
		}
	}
	if f.res.Host().ChecksumErrors == 0 {
		t.Error("no checksum errors recorded at resolver")
	}
}

// TestPoisoningFailsWithWrongIPIDs: fragments planted under wrong IPIDs
// never meet the real first fragment.
func TestPoisoningFailsWithWrongIPIDs(t *testing.T) {
	f := newFixture(t, 4)
	eve := f.eve
	eve.ForceFragmentation(nsAddr, resAddr, 68)
	f.clk.RunFor(time.Second)
	var template []byte
	eve.FetchTemplate(nsAddr, "pool.ntp.org", func(p []byte, err error) { template = p })
	f.clk.RunFor(2 * time.Second)
	frags, err := BuildSpoofedFragments(PoisonPlan{
		NS: nsAddr, Resolver: resAddr, Template: template,
		Malicious: []ipv4.Addr{evilNTP}, MTU: 68, IPIDs: []uint16{40000, 40001},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, fr := range frags {
		eve.Inject(fr)
	}
	eve.TriggerOpenResolverQuery(resAddr, "pool.ntp.org")
	f.clk.RunFor(5 * time.Second)
	entry, ok := f.res.Peek("pool.ntp.org", dnswire.TypeA)
	if !ok {
		// The real fragments reassembled fine without the spoof; the cache
		// should hold the honest answer. Missing entirely means the spoof
		// corrupted reassembly.
		t.Fatal("honest response lost")
	}
	for _, rr := range entry.RRs {
		if rr.Addr == evilNTP {
			t.Fatal("malicious record cached despite wrong IPIDs")
		}
	}
}

func TestPlantLoopKeepsCacheWarm(t *testing.T) {
	f := newFixture(t, 4)
	eve := f.eve
	eve.ForceFragmentation(nsAddr, resAddr, 68)
	f.clk.RunFor(time.Second)
	var template []byte
	eve.FetchTemplate(nsAddr, "pool.ntp.org", func(p []byte, err error) { template = p })
	f.clk.RunFor(2 * time.Second)

	rebuild := func() []*ipv4.Packet {
		frags, err := BuildSpoofedFragments(PoisonPlan{
			NS: nsAddr, Resolver: resAddr, Template: template,
			Malicious: []ipv4.Addr{evilNTP}, MTU: 68,
			IPIDs: []uint16{0, 1, 2, 3, 4, 5, 6, 7},
		})
		if err != nil {
			return nil
		}
		return frags
	}
	loop := eve.StartPlantLoop(30*time.Second, rebuild)
	// The victim's query happens at an unpredictable moment, 2 minutes in.
	f.clk.RunFor(2 * time.Minute)
	eve.TriggerOpenResolverQuery(resAddr, "pool.ntp.org")
	f.clk.RunFor(5 * time.Second)
	loop.Stop()

	if loop.Rounds < 4 {
		t.Errorf("plant rounds = %d, want ≥4 over 2 minutes", loop.Rounds)
	}
	entry, ok := f.res.Peek("pool.ntp.org", dnswire.TypeA)
	if !ok {
		t.Fatal("nothing cached")
	}
	found := false
	for _, rr := range entry.RRs {
		if rr.Addr == evilNTP {
			found = true
		}
	}
	if !found {
		t.Error("plant loop did not poison the cache")
	}
}

func TestRateLimitFloodStarvesVictim(t *testing.T) {
	f := newFixture(t, 4)
	srvHost := f.net.MustAddHost(ipv4.MustParseAddr("10.1.1.1"), simnet.HostConfig{})
	srv, err := ntpserv.New(srvHost, ntpserv.Config{RateLimit: ntpserv.RateLimitConfig{Enabled: true}})
	if err != nil {
		t.Fatal(err)
	}
	victim := ipv4.MustParseAddr("192.0.2.77")
	f.net.MustAddHost(victim, simnet.HostConfig{})
	stop := f.eve.RateLimitFlood(srv.Addr(), victim, 20*time.Second)
	f.clk.RunFor(10 * time.Second)
	if !srv.IsLimiting(victim) {
		t.Fatal("server not limiting the victim")
	}
	f.clk.RunFor(5 * time.Minute)
	if !srv.IsLimiting(victim) {
		t.Error("hold-down lapsed during sustained flood")
	}
	stop()
	f.clk.RunFor(5 * time.Minute)
	if srv.IsLimiting(victim) {
		t.Error("victim still limited after flood stopped")
	}
}

func TestDiscoverUpstreamsViaConfig(t *testing.T) {
	f := newFixture(t, 4)
	up := ipv4.MustParseAddr("10.3.3.3")
	srvHost := f.net.MustAddHost(ipv4.MustParseAddr("10.1.1.1"), simnet.HostConfig{})
	if _, err := ntpserv.New(srvHost, ntpserv.Config{
		ConfigInterface: true,
		UpstreamNames:   []string{"pool.ntp.org"},
		UpstreamAddrs:   []ipv4.Addr{up},
	}); err != nil {
		t.Fatal(err)
	}
	var names []string
	var addrs []ipv4.Addr
	f.eve.DiscoverUpstreamsViaConfig(srvHost.Addr(), func(n []string, a []ipv4.Addr, err error) {
		if err != nil {
			t.Errorf("config discovery: %v", err)
			return
		}
		names, addrs = n, a
	})
	f.clk.RunFor(5 * time.Second)
	if len(names) != 1 || len(addrs) != 1 || addrs[0] != up {
		t.Errorf("names=%v addrs=%v", names, addrs)
	}
}

func TestDiscoverUpstreamsViaConfigClosed(t *testing.T) {
	f := newFixture(t, 4)
	srvHost := f.net.MustAddHost(ipv4.MustParseAddr("10.1.1.1"), simnet.HostConfig{})
	if _, err := ntpserv.New(srvHost, ntpserv.Config{}); err != nil {
		t.Fatal(err)
	}
	var gotErr error
	called := false
	f.eve.DiscoverUpstreamsViaConfig(srvHost.Addr(), func(_ []string, _ []ipv4.Addr, err error) {
		called = true
		gotErr = err
	})
	f.clk.RunFor(10 * time.Second)
	if !called || gotErr == nil {
		t.Error("closed config interface should produce an error")
	}
}

func TestEnumeratePoolCollectsRotatingAnswers(t *testing.T) {
	f := newFixture(t, 12) // pool rotates 4 at a time through 12
	var got []ipv4.Addr
	f.eve.EnumeratePool(nsAddr, "pool.ntp.org", 6, func(addrs []ipv4.Addr) { got = addrs })
	f.clk.RunFor(time.Minute)
	if len(got) != 12 {
		t.Errorf("enumerated %d addresses, want 12", len(got))
	}
}

func TestBuildSpoofedFragmentsErrors(t *testing.T) {
	q := dnswire.NewQuery(1, "pool.ntp.org", dnswire.TypeA, true)
	r := dnswire.NewResponse(q)
	r.Answers = []dnswire.RR{{Name: "pool.ntp.org", Type: dnswire.TypeA, TTL: 150, Addr: ipv4.Addr{1, 1, 1, 1}}}
	small, _ := r.Marshal()
	// Response too small to span two fragments at MTU 1500.
	_, err := BuildSpoofedFragments(PoisonPlan{
		NS: nsAddr, Resolver: resAddr, Template: small,
		Malicious: []ipv4.Addr{evilNTP}, MTU: 1500, IPIDs: []uint16{1},
	})
	if !errors.Is(err, ErrFragmentBounds) {
		t.Errorf("err = %v, want ErrFragmentBounds", err)
	}
	// No padding slack in the second fragment region.
	_, err = BuildSpoofedFragments(PoisonPlan{
		NS: nsAddr, Resolver: resAddr, Template: small,
		Malicious: []ipv4.Addr{evilNTP}, MTU: 68, IPIDs: []uint16{1},
	})
	if !errors.Is(err, ErrNoSlack) {
		t.Errorf("err = %v, want ErrNoSlack", err)
	}
}
