// Package attack implements the off-path attacker's toolkit from the paper:
//
//	§III-1  forcing nameservers to fragment via spoofed ICMP
//	        Fragmentation Needed messages,
//	§III-2  IPID probing and extrapolation,
//	§III-2  crafting spoofed second fragments that carry malicious
//	        records,
//	§III-3  fixing the UDP checksum through attacker-controlled slack
//	        bytes,
//	§IV-A   the 30-second defragmentation-cache planting loop used when
//	        query timing is unpredictable,
//	§IV-B   rate-limit abuse floods that break a client's existing NTP
//	        associations, and upstream discovery via pool enumeration,
//	        RefID leakage (P2) and the mode-7 config interface.
//
// The attacker is strictly off-path: it observes only packets addressed to
// its own hosts and injects packets with spoofed sources via
// simnet.Network.Inject.
package attack

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"strconv"
	"time"

	"dnstime/internal/dnswire"
	"dnstime/internal/ipv4"
	"dnstime/internal/ntpwire"
	"dnstime/internal/obs"
	"dnstime/internal/simclock"
	"dnstime/internal/simnet"
	"dnstime/internal/udp"
)

// Errors returned by the toolkit.
var (
	ErrNoProbes       = errors.New("attack: no IPID probes answered")
	ErrShapeMismatch  = errors.New("attack: malicious response shape differs from template")
	ErrNoSlack        = errors.New("attack: no attacker-controlled slack bytes in second fragment")
	ErrFragmentBounds = errors.New("attack: response does not span two fragments at this MTU")
)

// Attacker is an off-path attacker with one network vantage point.
type Attacker struct {
	host  *simnet.Host
	net   *simnet.Network
	clock *simclock.Clock
	rng   *rand.Rand
	tr    obs.Tracer // phase-event tracer; obs.Nop (or nil, for the zero value) is off

	// InjectedPackets counts spoofed packets sent (attack volume).
	InjectedPackets int

	wire []byte // encode scratch; SendUDP copies before returning

	// Fragment-building scratch: a planting campaign rebuilds its spoofed
	// fragments every round, so the template decode, the twin re-encode,
	// the wire images and the candidate packets are all reused. Inject
	// copies packets on entry, making inject-then-rebuild safe.
	fragDec  dnswire.Decoder
	fragMsg  dnswire.Message
	templBuf []byte
	twinBuf  []byte
	realWire []byte
	malWire  []byte
	spoofF2  []byte
	fragPkts []ipv4.Packet
	frags    []*ipv4.Packet
}

// New creates an attacker operating from host.
func New(host *simnet.Host, seed int64) *Attacker {
	return &Attacker{
		host:  host,
		net:   host.Network(),
		clock: host.Clock(),
		rng:   rand.New(rand.NewSource(seed)),
		tr:    obs.Nop,
	}
}

// SetTracer installs the tracer receiving the attacker's phase events
// (ICMP forcing, template fetches, IPID probes, floods), stamped with
// virtual time. nil disables. The lab installs it on every build and
// pool reset; tracing is observation only and never changes behaviour.
func (a *Attacker) SetTracer(tr obs.Tracer) {
	if tr == nil {
		tr = obs.Nop
	}
	a.tr = tr
}

// traceOn reports whether phase events should be emitted (guards the
// detail-string formatting; the zero-value Attacker has a nil tracer).
func (a *Attacker) traceOn() bool { return a.tr != nil && a.tr.Enabled() }

// Reset restores the attacker to the observable state New(host, seed)
// produces: fresh RNG stream, zero packet counter. All fragment-building
// scratch survives — a pooled lab reuses its attacker every campaign seed.
func (a *Attacker) Reset(seed int64) {
	a.rng.Seed(seed)
	a.InjectedPackets = 0
}

// Host returns the attacker's own host.
func (a *Attacker) Host() *simnet.Host { return a.host }

// Inject sends one spoofed packet and counts it.
func (a *Attacker) Inject(pkt *ipv4.Packet) {
	a.InjectedPackets++
	a.net.Inject(pkt)
}

// ---------------------------------------------------------------------------
// §III-1: forcing fragmentation.

// ForceFragmentation spoofs an ICMP Fragmentation Needed toward ns claiming
// that packets from ns to victim must not exceed mtu. The ICMP's claimed
// sender is an arbitrary "router" address — real stacks do not authenticate
// it.
func (a *Attacker) ForceFragmentation(ns, victim ipv4.Addr, mtu int) {
	if a.traceOn() {
		a.tr.Event(a.clock.Now(), "attack", "force-frag",
			"ns="+ns.String()+" victim="+victim.String()+" mtu="+strconv.Itoa(mtu))
	}
	msg := &ipv4.ICMPFragNeeded{
		NextHopMTU: uint16(mtu),
		OrigSrc:    ns,
		OrigDst:    victim,
		OrigProto:  ipv4.ProtoUDP,
	}
	a.Inject(&ipv4.Packet{
		Src:     ipv4.Addr{192, 0, 2, 254}, // fictitious on-path router
		Dst:     ns,
		Proto:   ipv4.ProtoICMP,
		TTL:     ipv4.DefaultTTL,
		Payload: msg.Marshal(),
	})
}

// ---------------------------------------------------------------------------
// §III-2: IPID probing and extrapolation.

// ProbeIPIDs sends n DNS probe queries for probeName to ns, spaced by
// `spacing`, observing the IPIDs of the responses. done receives the
// observed IPIDs in order.
func (a *Attacker) ProbeIPIDs(ns ipv4.Addr, probeName string, n int, spacing time.Duration, done func([]uint16, error)) {
	probeStart := a.clock.Now()
	var ids []uint16
	prevObs := swapRawObserver(a.host, func(pkt *ipv4.Packet) {
		if pkt.Src == ns && pkt.Proto == ipv4.ProtoUDP && !pkt.IsFragment() {
			ids = append(ids, pkt.ID)
		}
		if pkt.Src == ns && pkt.Proto == ipv4.ProtoUDP && pkt.IsFragment() && pkt.FragOff == 0 {
			ids = append(ids, pkt.ID)
		}
	})
	port := a.host.AllocPort()
	_ = a.host.HandleUDP(port, func(ipv4.Addr, uint16, []byte) {})
	probe := func() {
		q := dnswire.NewQuery(uint16(a.rng.Intn(1<<16)), probeName, dnswire.TypeA, false)
		wire, err := q.AppendMarshal(a.wire[:0])
		if err != nil {
			return
		}
		a.wire = wire
		a.InjectedPackets++
		_, _ = a.host.SendUDP(ns, port, 53, wire)
	}
	for i := 0; i < n; i++ {
		a.clock.After(time.Duration(i)*spacing, probe)
	}
	a.clock.Schedule(time.Duration(n)*spacing+2*time.Second, func() {
		a.host.UnhandleUDP(port)
		a.host.ObserveRaw(prevObs)
		if a.traceOn() {
			a.tr.Span(probeStart, a.clock.Now(), "attack", "probe-ipids",
				"answered="+strconv.Itoa(len(ids)))
		}
		if len(ids) == 0 {
			done(nil, ErrNoProbes)
			return
		}
		done(ids, nil)
	})
}

// swapRawObserver installs fn and returns the previous observer (there is
// no getter on simnet.Host, so the attacker tracks it itself; nil is fine).
func swapRawObserver(h *simnet.Host, fn func(*ipv4.Packet)) func(*ipv4.Packet) {
	h.ObserveRaw(fn)
	return nil
}

// PredictIPIDs extrapolates a window of IPID candidates from probe
// observations: it estimates the per-probe increment and projects `ahead`
// further allocations, returning a window of width `width` centred there.
func PredictIPIDs(probes []uint16, ahead, width int) []uint16 {
	if len(probes) == 0 {
		return nil
	}
	last := probes[len(probes)-1]
	inc := 1
	if len(probes) >= 2 {
		// Average observed increment (mod 2^16), at least 1.
		total := int(uint16(probes[len(probes)-1] - probes[0]))
		inc = total / (len(probes) - 1)
		if inc < 1 {
			inc = 1
		}
	}
	base := int(last) + inc*ahead
	out := make([]uint16, 0, width)
	for i := 0; i < width; i++ {
		out = append(out, uint16(base+i))
	}
	return out
}

// ---------------------------------------------------------------------------
// §III-2/3: crafting the spoofed second fragment.

// PoisonPlan describes one cache-poisoning attempt.
type PoisonPlan struct {
	// NS is the authoritative nameserver whose response is hijacked.
	NS ipv4.Addr
	// Resolver is the victim resolver.
	Resolver ipv4.Addr
	// Template is the predicted full DNS response payload (the attacker
	// learns it by querying the nameserver itself; only the first-fragment
	// fields — TXID, ports, checksum — differ toward the victim).
	Template []byte
	// Malicious are the addresses to substitute into the A records.
	Malicious []ipv4.Addr
	// TTL overrides the record TTLs (e.g. > 24 h for the Chronos attack);
	// zero keeps the template's TTLs.
	TTL uint32
	// MTU is the fragment size the nameserver was forced down to.
	MTU int
	// IPIDs is the candidate IPID window to cover.
	IPIDs []uint16
}

// BuildSpoofedFragments crafts one spoofed second fragment per candidate
// IPID. Each fragment reassembles with the nameserver's real first fragment
// (which carries TXID, ports and UDP checksum) into a response whose answer
// addresses are the attacker's and whose UDP checksum still verifies.
// The returned packets share one payload slice — only the IPID varies, and
// Inject copies packets on entry — so mutating one payload affects all.
func BuildSpoofedFragments(plan PoisonPlan) ([]*ipv4.Packet, error) {
	var a Attacker
	return a.BuildSpoofedFragments(plan)
}

// BuildSpoofedFragments is the scratch-reusing form: the returned packets
// and their shared payload belong to the attacker and stay valid only until
// its next call. Inject copies on entry, so the planting loop's
// rebuild-inject-repeat cycle never observes the reuse.
func (a *Attacker) BuildSpoofedFragments(plan PoisonPlan) ([]*ipv4.Packet, error) {
	mal, err := a.maliciousTwin(plan.Template, plan.Malicious, plan.TTL)
	if err != nil {
		return nil, err
	}
	// Both datagrams as the wire sees them: UDP header + DNS payload. The
	// attacker does not know the real ports/checksum but they sit in the
	// first fragment; any placeholder works for computing the split.
	a.realWire = growZeroHeader(a.realWire, udp.HeaderLen+len(plan.Template))
	realWire := a.realWire
	copy(realWire[udp.HeaderLen:], plan.Template)
	a.malWire = growZeroHeader(a.malWire, udp.HeaderLen+len(mal))
	malWire := a.malWire
	copy(malWire[udp.HeaderLen:], mal)

	cut := (plan.MTU - ipv4.HeaderLen) &^ 7
	if cut <= udp.HeaderLen || cut >= len(realWire) {
		return nil, fmt.Errorf("%w: len=%d cut=%d", ErrFragmentBounds, len(realWire), cut)
	}
	realF2 := realWire[cut:]
	a.spoofF2 = append(a.spoofF2[:0], malWire[cut:]...)
	spoofF2 := a.spoofF2

	slack, err := findSlack(spoofF2)
	if err != nil {
		return nil, err
	}
	if err := udp.FixSum(realF2, spoofF2, slack); err != nil {
		return nil, fmt.Errorf("attack: %w", err)
	}
	if a.traceOn() {
		a.tr.Event(a.clock.Now(), "attack", "build-frags",
			"candidates="+strconv.Itoa(len(plan.IPIDs))+" cut="+strconv.Itoa(cut))
	}

	if cap(a.fragPkts) < len(plan.IPIDs) {
		a.fragPkts = make([]ipv4.Packet, len(plan.IPIDs))
	}
	pkts := a.fragPkts[:len(plan.IPIDs)]
	a.frags = a.frags[:0]
	for i, id := range plan.IPIDs {
		// All candidate fragments share one payload: Inject copies packets
		// into the network's pool, so the shared slice is never retained.
		pkts[i] = ipv4.Packet{
			Src:     plan.NS,
			Dst:     plan.Resolver,
			ID:      id,
			Proto:   ipv4.ProtoUDP,
			TTL:     ipv4.DefaultTTL,
			MF:      false,
			FragOff: cut,
			Payload: spoofF2,
		}
		a.frags = append(a.frags, &pkts[i])
	}
	return a.frags, nil
}

// growZeroHeader returns b resized to n bytes with the UDP-header prefix
// zeroed (the rest is fully overwritten by the caller).
func growZeroHeader(b []byte, n int) []byte {
	if cap(b) < n {
		return make([]byte, n)
	}
	b = b[:n]
	clear(b[:udp.HeaderLen])
	return b
}

// MaliciousTwin parses a predicted DNS response and re-encodes it with the
// answer A-record addresses replaced by the attacker's (cycling through
// them) and, optionally, the TTLs overridden. The result must have exactly
// the template's length, since the first fragment (with the length-bearing
// headers) is the nameserver's own.
func MaliciousTwin(template []byte, malicious []ipv4.Addr, ttl uint32) ([]byte, error) {
	var a Attacker
	return a.maliciousTwin(template, malicious, ttl)
}

// maliciousTwin is MaliciousTwin through the attacker's decode and encode
// scratch; the returned bytes are valid until the next call.
func (a *Attacker) maliciousTwin(template []byte, malicious []ipv4.Addr, ttl uint32) ([]byte, error) {
	if len(malicious) == 0 {
		return nil, fmt.Errorf("%w: no malicious addresses", ErrShapeMismatch)
	}
	m := &a.fragMsg
	if err := a.fragDec.UnmarshalInto(m, template); err != nil {
		return nil, fmt.Errorf("attack: parse template: %w", err)
	}
	k := 0
	for i := range m.Answers {
		if m.Answers[i].Type == dnswire.TypeA {
			m.Answers[i].Addr = malicious[k%len(malicious)]
			k++
		}
		if ttl > 0 {
			m.Answers[i].TTL = ttl
		}
	}
	out, err := m.AppendMarshal(a.twinBuf[:0])
	if err != nil {
		return nil, fmt.Errorf("attack: re-encode: %w", err)
	}
	a.twinBuf = out
	if len(out) != len(template) {
		return nil, fmt.Errorf("%w: %d != %d bytes", ErrShapeMismatch, len(out), len(template))
	}
	return out, nil
}

// findSlack locates two adjacent 16-bit-aligned bytes inside the padding
// filler (runs of 'p' emitted by dnsauth's response padding) that the
// attacker may repurpose to fix the checksum.
func findSlack(f2 []byte) (int, error) {
	run := 0
	for i, b := range f2 {
		if b == 'p' {
			run++
			if run >= 4 {
				off := (i - 2) &^ 1
				return off, nil
			}
		} else {
			run = 0
		}
	}
	return 0, ErrNoSlack
}

// ---------------------------------------------------------------------------
// §IV-A: the defragmentation-cache planting loop.

// PlantLoop repeatedly injects the given spoofed fragments (refreshed via
// rebuild, which may update IPID predictions) every interval, until stopped.
// This is the "periodically plant the spoofed fragment every 30 seconds"
// strategy used when query timing is unpredictable.
type PlantLoop struct {
	ticker *simclock.Ticker
	// Rounds counts planting rounds performed.
	Rounds int
}

// StartPlantLoop begins planting. rebuild is called each round to produce
// the fragments to inject (return nil to skip a round).
func (a *Attacker) StartPlantLoop(interval time.Duration, rebuild func() []*ipv4.Packet) *PlantLoop {
	pl := &PlantLoop{}
	inject := func() {
		pl.Rounds++
		for _, f := range rebuild() {
			a.Inject(f)
		}
	}
	inject() // first round immediately
	pl.ticker = a.clock.Tick(interval, inject)
	return pl
}

// Stop ends the planting loop.
func (pl *PlantLoop) Stop() { pl.ticker.Stop() }

// ---------------------------------------------------------------------------
// Query triggering.

// TriggerOpenResolverQuery makes the victim resolver look up name by
// sending it a recursive query from the attacker's own address — possible
// whenever the resolver is open, and standing in for the "other systems
// sharing the resolver" (Email, web) trigger of §IV-A(2).
func (a *Attacker) TriggerOpenResolverQuery(resolver ipv4.Addr, name string) {
	if a.traceOn() {
		a.tr.Event(a.clock.Now(), "attack", "trigger-query", name)
	}
	q := dnswire.NewQuery(uint16(a.rng.Intn(1<<16)), name, dnswire.TypeA, true)
	wire, err := q.Marshal()
	if err != nil {
		return
	}
	port := a.host.AllocPort()
	_ = a.host.HandleUDP(port, func(ipv4.Addr, uint16, []byte) {})
	a.clock.Schedule(5*time.Second, func() { a.host.UnhandleUDP(port) })
	a.InjectedPackets++
	_, _ = a.host.SendUDP(resolver, port, 53, wire)
}

// FetchTemplate queries ns directly for name and hands the raw response
// payload to done — the attacker's way of learning the response template
// whose second fragment it will later replace.
func (a *Attacker) FetchTemplate(ns ipv4.Addr, name string, done func([]byte, error)) {
	fetchStart := a.clock.Now()
	port := a.host.AllocPort()
	var timer *simclock.Timer
	if err := a.host.HandleUDP(port, func(src ipv4.Addr, _ uint16, payload []byte) {
		if src != ns {
			return
		}
		timer.Stop()
		a.host.UnhandleUDP(port)
		if a.traceOn() {
			a.tr.Span(fetchStart, a.clock.Now(), "attack", "fetch-template",
				"bytes="+strconv.Itoa(len(payload)))
		}
		// The handler's payload aliases a pooled packet buffer, so done gets
		// a copy — made in the attacker's reused template buffer, which stays
		// valid until the attacker's next FetchTemplate (a planting round
		// consumes the template before the next round re-fetches it).
		a.templBuf = append(a.templBuf[:0], payload...)
		done(a.templBuf, nil)
	}); err != nil {
		done(nil, err)
		return
	}
	timer = a.clock.Schedule(3*time.Second, func() {
		a.host.UnhandleUDP(port)
		if a.traceOn() {
			a.tr.Span(fetchStart, a.clock.Now(), "attack", "fetch-template", "timeout")
		}
		done(nil, fmt.Errorf("attack: template fetch timed out"))
	})
	q := dnswire.NewQuery(uint16(a.rng.Intn(1<<16)), name, dnswire.TypeA, false)
	wire, err := q.Marshal()
	if err != nil {
		timer.Stop()
		a.host.UnhandleUDP(port)
		done(nil, err)
		return
	}
	a.InjectedPackets++
	_, _ = a.host.SendUDP(ns, port, 53, wire)
}

// ---------------------------------------------------------------------------
// §IV-B: rate-limit abuse and upstream discovery.

// RateLimitFlood spoofs mode-3 NTP queries with the victim's source address
// toward server: an initial burst to trip the limiter, then periodic
// re-pokes that keep the hold-down armed. Returns a stop function.
func (a *Attacker) RateLimitFlood(server, victim ipv4.Addr, repoke time.Duration) func() {
	if a.traceOn() {
		a.tr.Event(a.clock.Now(), "attack", "flood-start",
			"server="+server.String()+" victim="+victim.String())
	}
	// The spoofed query bytes never change across the flood: build the
	// checksummed wire form once and re-inject it (Inject copies on entry).
	payload := ntpwire.NewClientPacket(a.clock.Now()).Marshal()
	d := &udp.Datagram{Header: udp.Header{SrcPort: ntpwire.Port, DstPort: ntpwire.Port}, Payload: payload}
	wire := udp.WithChecksum(victim, server, d.Marshal())
	pkt := &ipv4.Packet{Src: victim, Dst: server, Proto: ipv4.ProtoUDP, TTL: 64, Payload: wire}
	inject := func() {
		a.Inject(pkt)
	}
	// The initial burst must exceed the server's token-bucket capacity so
	// the hold-down trips; the periodic re-pokes then keep it armed.
	for i := 0; i < 40; i++ {
		a.clock.After(time.Duration(i)*100*time.Millisecond, inject)
	}
	tk := a.clock.Tick(repoke, inject)
	return tk.Stop
}

// DiscoverUpstreamViaRefID queries the victim NTP client (which also serves
// mode 3) and extracts its current sync source from the response RefID —
// the P2 discovery technique.
func (a *Attacker) DiscoverUpstreamViaRefID(victim ipv4.Addr, done func(ipv4.Addr, error)) {
	if a.traceOn() {
		a.tr.Event(a.clock.Now(), "attack", "refid-probe", "victim="+victim.String())
	}
	port := a.host.AllocPort()
	var timer *simclock.Timer
	if err := a.host.HandleUDP(port, func(src ipv4.Addr, _ uint16, payload []byte) {
		if src != victim {
			return
		}
		pkt, err := ntpwire.Unmarshal(payload)
		if err != nil {
			return
		}
		timer.Stop()
		a.host.UnhandleUDP(port)
		if addr, ok := pkt.RefIDAddr(); ok && !addr.IsZero() {
			done(addr, nil)
			return
		}
		done(ipv4.Addr{}, fmt.Errorf("attack: refid is not an upstream address"))
	}); err != nil {
		done(ipv4.Addr{}, err)
		return
	}
	timer = a.clock.Schedule(3*time.Second, func() {
		a.host.UnhandleUDP(port)
		done(ipv4.Addr{}, fmt.Errorf("attack: refid probe timed out"))
	})
	q := ntpwire.NewClientPacket(a.clock.Now())
	a.InjectedPackets++
	_, _ = a.host.SendUDP(victim, port, ntpwire.Port, q.Marshal())
}

// DiscoverUpstreamsViaConfig reads the victim server's mode-7 config
// interface, returning configured names and current upstream addresses.
func (a *Attacker) DiscoverUpstreamsViaConfig(victim ipv4.Addr, done func(names []string, addrs []ipv4.Addr, err error)) {
	port := a.host.AllocPort()
	var timer *simclock.Timer
	if err := a.host.HandleUDP(port, func(src ipv4.Addr, _ uint16, payload []byte) {
		if src != victim {
			return
		}
		names, addrs, ok := parseConfig(payload)
		if !ok {
			return
		}
		timer.Stop()
		a.host.UnhandleUDP(port)
		done(names, addrs, nil)
	}); err != nil {
		done(nil, nil, err)
		return
	}
	timer = a.clock.Schedule(3*time.Second, func() {
		a.host.UnhandleUDP(port)
		done(nil, nil, fmt.Errorf("attack: config interface closed"))
	})
	a.InjectedPackets++
	_, _ = a.host.SendUDP(victim, port, ntpwire.Port, []byte{byte(ntpwire.ModePrivate)})
}

// parseConfig duplicates ntpserv.ParseConfigResponse without importing the
// server package (the attacker parses wire bytes, not server internals).
func parseConfig(payload []byte) (names []string, addrs []ipv4.Addr, ok bool) {
	if len(payload) < 1 || ntpwire.Mode(payload[0]&0x7) != ntpwire.ModePrivate {
		return nil, nil, false
	}
	for _, line := range bytes.Split(payload[1:], []byte{'\n'}) {
		s := string(line)
		const srvPrefix, peerPrefix = "server ", "peer "
		switch {
		case len(s) > len(srvPrefix) && s[:len(srvPrefix)] == srvPrefix:
			names = append(names, s[len(srvPrefix):])
		case len(s) > len(peerPrefix) && s[:len(peerPrefix)] == peerPrefix:
			if a, err := ipv4.ParseAddr(s[len(peerPrefix):]); err == nil {
				addrs = append(addrs, a)
			}
		}
	}
	return names, addrs, true
}

// EnumeratePool collects the candidate upstream population by repeatedly
// resolving the pool domain directly at the nameserver (§IV-B2a: "the
// attacker queries the DNS system ... and creates a list of possible
// upstream NTP server addresses").
func (a *Attacker) EnumeratePool(ns ipv4.Addr, domain string, rounds int, done func([]ipv4.Addr)) {
	seen := make(map[ipv4.Addr]struct{})
	var order []ipv4.Addr
	var step func(i int)
	step = func(i int) {
		if i >= rounds {
			done(order)
			return
		}
		a.FetchTemplate(ns, domain, func(payload []byte, err error) {
			if err == nil {
				if m, err := dnswire.Unmarshal(payload); err == nil {
					for _, addr := range m.AddrsInAnswer(domain) {
						if _, ok := seen[addr]; !ok {
							seen[addr] = struct{}{}
							order = append(order, addr)
						}
					}
				}
			}
			a.clock.Schedule(200*time.Millisecond, func() { step(i + 1) })
		})
	}
	step(0)
}
