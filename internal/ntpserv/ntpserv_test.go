package ntpserv

import (
	"testing"
	"time"

	"dnstime/internal/ipv4"
	"dnstime/internal/ntpwire"
	"dnstime/internal/simclock"
	"dnstime/internal/simnet"
)

var (
	t0         = time.Date(2020, 1, 1, 0, 0, 0, 0, time.UTC)
	serverAddr = ipv4.MustParseAddr("10.0.0.1")
	clientAddr = ipv4.MustParseAddr("192.0.2.10")
	eveAddr    = ipv4.MustParseAddr("203.0.113.66")
)

type fixture struct {
	net    *simnet.Network
	clk    *simclock.Clock
	server *Server
	client *simnet.Host
}

func newFixture(t *testing.T, cfg Config) *fixture {
	t.Helper()
	clk := simclock.New(t0)
	n := simnet.New(clk)
	sh := n.MustAddHost(serverAddr, simnet.HostConfig{})
	s, err := New(sh, cfg)
	if err != nil {
		t.Fatal(err)
	}
	c := n.MustAddHost(clientAddr, simnet.HostConfig{})
	return &fixture{net: n, clk: clk, server: s, client: c}
}

// query sends one mode-3 query from the client and returns the response (or
// nil after 3 s).
func (f *fixture) query(t *testing.T) *ntpwire.Packet {
	t.Helper()
	var got *ntpwire.Packet
	port := f.client.AllocPort()
	f.client.HandleUDP(port, func(src ipv4.Addr, _ uint16, payload []byte) {
		p, err := ntpwire.Unmarshal(payload)
		if err == nil {
			got = p
		}
	})
	defer f.client.UnhandleUDP(port)
	q := ntpwire.NewClientPacket(f.clk.Now())
	if _, err := f.client.SendUDP(serverAddr, port, ntpwire.Port, q.Marshal()); err != nil {
		t.Fatal(err)
	}
	f.clk.RunFor(3 * time.Second)
	return got
}

func TestHonestServerServesTrueTime(t *testing.T) {
	f := newFixture(t, Config{})
	resp := f.query(t)
	if resp == nil {
		t.Fatal("no response")
	}
	if resp.Mode != ntpwire.ModeServer || resp.Stratum != 2 {
		t.Errorf("mode/stratum = %d/%d", resp.Mode, resp.Stratum)
	}
	// Server timestamps reflect true simulation time (≈ t0 + RTT/2).
	serverT := resp.XmitTime.Time()
	if d := serverT.Sub(t0); d < 0 || d > time.Second {
		t.Errorf("server time = %v, want ≈ t0", serverT)
	}
}

func TestShiftedServerServesShiftedTime(t *testing.T) {
	f := newFixture(t, Config{Offset: -500 * time.Second})
	resp := f.query(t)
	if resp == nil {
		t.Fatal("no response")
	}
	d := resp.XmitTime.Time().Sub(t0)
	if d > -499*time.Second || d < -501*time.Second {
		t.Errorf("server time shift = %v, want ≈ −500 s", d)
	}
}

func TestRateLimitTriggersOnFlood(t *testing.T) {
	f := newFixture(t, Config{RateLimit: RateLimitConfig{Enabled: true, MinInterval: 2 * time.Second, Burst: 4, HoldDown: 60 * time.Second}})
	// Eve floods with the client's spoofed source address at 10 Hz.
	flood := func(nq int) {
		q := ntpwire.NewClientPacket(f.clk.Now())
		wire := q.Marshal()
		for i := 0; i < nq; i++ {
			f.clk.Schedule(time.Duration(i)*100*time.Millisecond, func() {
				pkt := buildSpoofedQuery(clientAddr, serverAddr, wire)
				f.net.Inject(pkt)
			})
		}
	}
	flood(20)
	f.clk.RunFor(5 * time.Second)
	if !f.server.IsLimiting(clientAddr) {
		t.Fatal("server not limiting the spoofed-victim address")
	}
	// Victim's own legitimate query is now ignored.
	if resp := f.query(t); resp != nil {
		t.Error("rate-limited client still got a response")
	}
	if f.server.Stats().RateLimited == 0 {
		t.Error("RateLimited counter is zero")
	}
}

func TestRateLimitHoldDownReArms(t *testing.T) {
	f := newFixture(t, Config{RateLimit: RateLimitConfig{Enabled: true, MinInterval: 2 * time.Second, Burst: 4, HoldDown: 10 * time.Second}})
	wire := ntpwire.NewClientPacket(f.clk.Now()).Marshal()
	// Trip the limiter.
	for i := 0; i < 5; i++ {
		f.net.Inject(buildSpoofedQuery(clientAddr, serverAddr, wire))
		f.clk.RunFor(100 * time.Millisecond)
	}
	if !f.server.IsLimiting(clientAddr) {
		t.Fatal("limiter not tripped")
	}
	// Keep poking every 5 s (inside the 10 s hold-down): stays limited
	// even after 60 s total.
	for i := 0; i < 12; i++ {
		f.clk.RunFor(5 * time.Second)
		f.net.Inject(buildSpoofedQuery(clientAddr, serverAddr, wire))
		f.clk.RunFor(100 * time.Millisecond)
	}
	if !f.server.IsLimiting(clientAddr) {
		t.Error("hold-down expired despite continued queries")
	}
	// Silence for > hold-down releases the client.
	f.clk.RunFor(15 * time.Second)
	if f.server.IsLimiting(clientAddr) {
		t.Error("hold-down did not expire after silence")
	}
}

func TestSlowClientNeverLimited(t *testing.T) {
	f := newFixture(t, Config{RateLimit: RateLimitConfig{Enabled: true, MinInterval: 2 * time.Second, Burst: 4, HoldDown: 60 * time.Second}})
	for i := 0; i < 10; i++ {
		if resp := f.query(t); resp == nil {
			t.Fatalf("well-behaved query %d dropped", i)
		}
		f.clk.RunFor(8 * time.Second)
	}
}

func TestKoDSentAtLimitEdge(t *testing.T) {
	f := newFixture(t, Config{RateLimit: RateLimitConfig{Enabled: true, MinInterval: 2 * time.Second, Burst: 4, HoldDown: 30 * time.Second, SendKoD: true}})
	var kod *ntpwire.Packet
	f.client.HandleUDP(ntpwire.Port, func(_ ipv4.Addr, _ uint16, payload []byte) {
		if p, err := ntpwire.Unmarshal(payload); err == nil && p.IsKoD() {
			kod = p
		}
	})
	wire := ntpwire.NewClientPacket(f.clk.Now()).Marshal()
	for i := 0; i < 6; i++ {
		f.net.Inject(buildSpoofedQuery(clientAddr, serverAddr, wire))
		f.clk.RunFor(200 * time.Millisecond)
	}
	if kod == nil {
		t.Fatal("no KoD received")
	}
	if kod.KissCode() != "RATE" {
		t.Errorf("kiss code = %q", kod.KissCode())
	}
}

func TestNoRateLimitWhenDisabled(t *testing.T) {
	f := newFixture(t, Config{})
	wire := ntpwire.NewClientPacket(f.clk.Now()).Marshal()
	for i := 0; i < 20; i++ {
		f.net.Inject(buildSpoofedQuery(clientAddr, serverAddr, wire))
		f.clk.RunFor(50 * time.Millisecond)
	}
	if f.server.IsLimiting(clientAddr) {
		t.Error("limiter active despite being disabled")
	}
	if resp := f.query(t); resp == nil {
		t.Error("query dropped by non-limiting server")
	}
}

func TestConfigInterfaceLeaksUpstreams(t *testing.T) {
	up := ipv4.MustParseAddr("10.9.9.9")
	f := newFixture(t, Config{
		ConfigInterface: true,
		UpstreamNames:   []string{"pool.ntp.org"},
		UpstreamAddrs:   []ipv4.Addr{up},
	})
	var names []string
	var addrs []ipv4.Addr
	port := f.client.AllocPort()
	f.client.HandleUDP(port, func(_ ipv4.Addr, _ uint16, payload []byte) {
		names, addrs, _ = ParseConfigResponse(payload)
	})
	// Mode-7 probe.
	probe := []byte{byte(ntpwire.ModePrivate)}
	f.client.SendUDP(serverAddr, port, ntpwire.Port, probe)
	f.clk.RunFor(time.Second)
	if len(names) != 1 || names[0] != "pool.ntp.org" {
		t.Errorf("names = %v", names)
	}
	if len(addrs) != 1 || addrs[0] != up {
		t.Errorf("addrs = %v", addrs)
	}
}

func TestConfigInterfaceClosedByDefault(t *testing.T) {
	f := newFixture(t, Config{})
	answered := false
	port := f.client.AllocPort()
	f.client.HandleUDP(port, func(ipv4.Addr, uint16, []byte) { answered = true })
	f.client.SendUDP(serverAddr, port, ntpwire.Port, []byte{byte(ntpwire.ModePrivate)})
	f.clk.RunFor(time.Second)
	if answered {
		t.Error("closed config interface answered")
	}
}

func TestRefIDLeakInResponses(t *testing.T) {
	up := ipv4.MustParseAddr("10.7.7.7")
	f := newFixture(t, Config{Stratum: 3, RefID: [4]byte(up)})
	resp := f.query(t)
	if resp == nil {
		t.Fatal("no response")
	}
	got, ok := resp.RefIDAddr()
	if !ok || got != up {
		t.Errorf("leaked refid = %v, %t; want %v", got, ok, up)
	}
}

// buildSpoofedQuery constructs an injected mode-3 packet with a spoofed
// source, the attacker's core rate-limit-abuse primitive.
func buildSpoofedQuery(spoofedSrc, dst ipv4.Addr, ntpPayload []byte) *ipv4.Packet {
	d := udpDatagram(spoofedSrc, dst, ntpwire.Port, ntpwire.Port, ntpPayload)
	return &ipv4.Packet{Src: spoofedSrc, Dst: dst, Proto: ipv4.ProtoUDP, TTL: 64, Payload: d}
}
