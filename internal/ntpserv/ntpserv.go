// Package ntpserv implements an NTP server on a simnet host. It models the
// server-side behaviours the paper measures and exploits:
//
//   - server-side rate limiting (ntpd's "restrict limited" / "discard"):
//     when queries from one client IP arrive faster than a minimum
//     interarrival time, the server optionally sends one Kiss-o'-Death
//     (RATE) and then stops answering that client for a hold-down period.
//     Spoofed mode-3 floods with the victim's source address therefore make
//     the server appear dead to the victim (Section IV-B2);
//   - the mode-7 "Config interface" some servers still expose, leaking
//     configured upstream hostnames and addresses (Section IV-B2c);
//   - attacker-operated servers that serve deliberately shifted time
//     (step C of the attack).
package ntpserv

import (
	"fmt"
	"strings"
	"time"

	"dnstime/internal/ipv4"
	"dnstime/internal/ntpwire"
	"dnstime/internal/simnet"
)

// RateLimitConfig controls server-side rate limiting, modelled as a
// per-client-IP token bucket (ntpd's "restrict limited" with "discard"):
// each query consumes one token; tokens refill at one per MinInterval up to
// Burst. A query that finds the bucket empty trips a hold-down during which
// every query (including the one that tripped it) is dropped and re-arms
// the hold-down. Because the bucket keys on the *claimed* source address,
// a spoofed flood exhausts the victim's standing (Section IV-B2).
type RateLimitConfig struct {
	// Enabled turns rate limiting on (paper: ~38% of pool servers).
	Enabled bool
	// MinInterval is the sustained allowed interarrival time per client IP
	// (token refill period; default 2 s).
	MinInterval time.Duration
	// Burst is the token-bucket capacity (default 12).
	Burst int
	// HoldDown is how long the server ignores a limited client; every
	// further query during hold-down re-arms it (default 60 s).
	HoldDown time.Duration
	// SendKoD sends one RATE Kiss-o'-Death at the moment the client
	// becomes limited (paper: ~33% of pool servers send KoD).
	SendKoD bool
}

// Config configures a Server.
type Config struct {
	// Stratum reported in responses (default 2).
	Stratum uint8
	// Offset shifts the served time relative to true (simulation) time.
	// Honest servers use 0; the attacker's servers serve e.g. −500 s.
	Offset time.Duration
	// RefID is the reference identifier; for stratum ≥ 2 servers this is
	// the upstream server's IPv4 address (the P2 discovery leak). If zero
	// it defaults to an opaque constant.
	RefID [4]byte
	// RateLimit configures rate limiting.
	RateLimit RateLimitConfig
	// ConfigInterface answers mode-7 queries with the configured upstream
	// names and addresses (paper: 5.3% of pool servers still do).
	ConfigInterface bool
	// UpstreamNames and UpstreamAddrs are leaked via the config interface.
	UpstreamNames []string
	UpstreamAddrs []ipv4.Addr
}

// Stats counts server activity.
type Stats struct {
	Queries     int
	Answered    int
	RateLimited int
	KoDSent     int
	ConfigReads int
}

type limiterState struct {
	tokens     float64
	lastRefill time.Time
	heldUntil  time.Time
	kodSent    bool
}

// Server is an NTP server bound to port 123 of a simnet host.
type Server struct {
	host  *simnet.Host
	cfg   Config
	state map[ipv4.Addr]*limiterState
	stats Stats
	wire  []byte // response encode scratch; SendUDP copies before returning
}

func (c *Config) applyDefaults() {
	if c.Stratum == 0 {
		c.Stratum = 2
	}
	if c.RefID == ([4]byte{}) {
		c.RefID = [4]byte{127, 127, 1, 0}
	}
	if c.RateLimit.MinInterval == 0 {
		c.RateLimit.MinInterval = 2 * time.Second
	}
	if c.RateLimit.Burst == 0 {
		c.RateLimit.Burst = 12
	}
	if c.RateLimit.HoldDown == 0 {
		c.RateLimit.HoldDown = 60 * time.Second
	}
}

// New binds a server to UDP port 123 on host.
func New(host *simnet.Host, cfg Config) (*Server, error) {
	cfg.applyDefaults()
	s := &Server{host: host, cfg: cfg, state: make(map[ipv4.Addr]*limiterState)}
	if err := host.HandleUDP(ntpwire.Port, s.handle); err != nil {
		return nil, fmt.Errorf("ntpserv: bind: %w", err)
	}
	return s, nil
}

// Reset re-binds the server to its (freshly host.Reset) host under a new
// configuration, restoring the exact observable state New produces: empty
// limiter table, zero stats, handler on port 123. The encode scratch and
// the limiter map's storage are retained — that reuse is the point (the
// lab pool resets a dozen servers per campaign seed).
func (s *Server) Reset(cfg Config) error {
	cfg.applyDefaults()
	s.cfg = cfg
	clear(s.state)
	s.stats = Stats{}
	if err := s.host.HandleUDP(ntpwire.Port, s.handle); err != nil {
		return fmt.Errorf("ntpserv: bind: %w", err)
	}
	return nil
}

// Host returns the underlying host.
func (s *Server) Host() *simnet.Host { return s.host }

// Addr returns the server address.
func (s *Server) Addr() ipv4.Addr { return s.host.Addr() }

// Stats returns a snapshot of counters.
func (s *Server) Stats() Stats { return s.stats }

// RateLimits reports whether rate limiting is enabled (population scans).
func (s *Server) RateLimits() bool { return s.cfg.RateLimit.Enabled }

// SetOffset changes the served time offset (attacker control knob).
func (s *Server) SetOffset(d time.Duration) { s.cfg.Offset = d }

// IsLimiting reports whether queries from client are currently held down.
func (s *Server) IsLimiting(client ipv4.Addr) bool {
	st, ok := s.state[client]
	return ok && s.host.Clock().Now().Before(st.heldUntil)
}

// now returns the server's (possibly shifted) clock reading.
func (s *Server) now() time.Time {
	return s.host.Clock().Now().Add(s.cfg.Offset)
}

func (s *Server) handle(src ipv4.Addr, srcPort uint16, payload []byte) {
	s.stats.Queries++
	// Mode-7 config interface probe: a short non-48-byte datagram with the
	// mode bits set to 7 (we accept any packet whose first byte carries
	// mode 7, as real implementations key on the mode field).
	if len(payload) > 0 && ntpwire.Mode(payload[0]&0x7) == ntpwire.ModePrivate {
		s.handleConfig(src, srcPort)
		return
	}
	var q ntpwire.Packet
	if err := ntpwire.UnmarshalInto(&q, payload); err != nil || q.Mode != ntpwire.ModeClient {
		return
	}
	if s.cfg.RateLimit.Enabled && s.limit(src, srcPort) {
		return
	}
	s.stats.Answered++
	resp := ntpwire.ServerPacket(&q, s.now(), s.cfg.Stratum, s.cfg.RefID)
	s.wire = resp.AppendMarshal(s.wire[:0])
	_, _ = s.host.SendUDP(src, ntpwire.Port, srcPort, s.wire)
}

// limit applies the token-bucket rate limiter to a query from src; it
// reports whether the query must be dropped, and sends a KoD at the
// limiting edge when configured. Note the limiter keys on the *claimed*
// source address — the reason spoofed floods poison the victim's standing
// with the server.
func (s *Server) limit(src ipv4.Addr, srcPort uint16) bool {
	now := s.host.Clock().Now()
	cfg := s.cfg.RateLimit
	st, ok := s.state[src]
	if !ok {
		st = &limiterState{tokens: float64(cfg.Burst), lastRefill: now}
		s.state[src] = st
	}
	if now.Before(st.heldUntil) {
		// Every query during hold-down re-arms it.
		st.heldUntil = now.Add(cfg.HoldDown)
		s.stats.RateLimited++
		return true
	}
	// Refill.
	st.tokens += float64(now.Sub(st.lastRefill)) / float64(cfg.MinInterval)
	if st.tokens > float64(cfg.Burst) {
		st.tokens = float64(cfg.Burst)
	}
	st.lastRefill = now
	if st.tokens >= 1 {
		st.tokens--
		st.kodSent = false
		return false
	}
	// Bucket dry: trip the hold-down.
	st.heldUntil = now.Add(cfg.HoldDown)
	s.stats.RateLimited++
	if cfg.SendKoD && !st.kodSent {
		st.kodSent = true
		s.stats.KoDSent++
		kod := ntpwire.NewKoD(&ntpwire.Packet{}, ntpwire.KissRATE)
		_, _ = s.host.SendUDP(src, ntpwire.Port, srcPort, kod.Marshal())
	}
	return true
}

// handleConfig serves the mode-7 configuration interface: a plain-text
// stand-in for ntpdc's "sysinfo"/"listpeers", leaking upstream hostnames
// and current upstream addresses.
func (s *Server) handleConfig(src ipv4.Addr, srcPort uint16) {
	if !s.cfg.ConfigInterface {
		return
	}
	s.stats.ConfigReads++
	var sb strings.Builder
	sb.WriteString("config\n")
	for _, n := range s.cfg.UpstreamNames {
		fmt.Fprintf(&sb, "server %s\n", n)
	}
	for _, a := range s.cfg.UpstreamAddrs {
		fmt.Fprintf(&sb, "peer %s\n", a)
	}
	// Mode-7 response: first byte carries mode 7 with the response bit.
	out := append([]byte{0x80 | byte(ntpwire.ModePrivate)}, []byte(sb.String())...)
	_, _ = s.host.SendUDP(src, ntpwire.Port, srcPort, out)
}

// ParseConfigResponse extracts upstream names and addresses from a mode-7
// response (attacker-side helper).
func ParseConfigResponse(payload []byte) (names []string, addrs []ipv4.Addr, ok bool) {
	if len(payload) < 1 || ntpwire.Mode(payload[0]&0x7) != ntpwire.ModePrivate {
		return nil, nil, false
	}
	for _, line := range strings.Split(string(payload[1:]), "\n") {
		switch {
		case strings.HasPrefix(line, "server "):
			names = append(names, strings.TrimPrefix(line, "server "))
		case strings.HasPrefix(line, "peer "):
			if a, err := ipv4.ParseAddr(strings.TrimPrefix(line, "peer ")); err == nil {
				addrs = append(addrs, a)
			}
		}
	}
	return names, addrs, true
}
