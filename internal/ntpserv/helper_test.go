package ntpserv

import (
	"dnstime/internal/ipv4"
	"dnstime/internal/udp"
)

// udpDatagram builds a checksummed wire-format UDP datagram for injection.
func udpDatagram(src, dst ipv4.Addr, srcPort, dstPort uint16, payload []byte) []byte {
	d := &udp.Datagram{
		Header:  udp.Header{SrcPort: srcPort, DstPort: dstPort},
		Payload: payload,
	}
	return udp.WithChecksum(src, dst, d.Marshal())
}
