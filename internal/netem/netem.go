// Package netem models network path conditions for the simulated
// internetwork: per-packet one-way latency, loss and reordering on every
// directed src→dst link. internal/simnet routes each injected packet
// through a PathModel, so the same attack laboratory runs over a LAN, a
// lossy Wi-Fi hop or a congested trans-continental path by swapping one
// value (see the named profiles in this package and DESIGN.md §8).
//
// Determinism: a model draws all randomness from the *rand.Rand the
// caller passes in — simnet passes its network RNG, which labs derive
// from the campaign seed — so a single-threaded simulation replays
// byte-identically per seed at any campaign worker count. Stateful
// models (Gilbert–Elliott loss) keep their state inside the instance;
// build one model per lab (Profile and FromSpec return fresh instances
// on every call) and never share an instance between concurrent runs.
package netem

import (
	"math/rand"
	"time"

	"dnstime/internal/ipv4"
)

// DefaultLatency is the one-way delay a zero-value Path applies — the
// 10 ms link latency internal/simnet has always defaulted to.
const DefaultLatency = 10 * time.Millisecond

// PathModel decides the fate of each packet on a directed src→dst path:
// whether it is dropped in transit and, if delivered, its one-way delay.
// Implementations must derive every random choice from rng and keep any
// internal state confined to one instance (see the package comment).
type PathModel interface {
	// Latency returns the one-way delay for the next packet src→dst.
	Latency(src, dst ipv4.Addr, rng *rand.Rand) time.Duration
	// Drop reports whether the next packet src→dst is lost in transit.
	Drop(src, dst ipv4.Addr, rng *rand.Rand) bool
}

// Reorder makes a fraction of packets arrive late: with probability P a
// packet's delay is stretched by Extra, so packets sent just after it
// overtake it in delivery order. The zero value reorders nothing.
type Reorder struct {
	// P is the per-packet probability of being held back.
	P float64
	// Extra is the additional delay a held-back packet suffers.
	Extra time.Duration
}

// Path is the basic composable PathModel: a latency distribution, an
// optional loss model and optional reordering, applied identically to
// every directed pair. The zero value reproduces simnet's historical
// default link — fixed DefaultLatency one-way, lossless, in-order — and
// consumes no randomness at all.
type Path struct {
	// Delay samples the one-way delay (nil: fixed DefaultLatency).
	Delay LatencyDist
	// DelayFunc, when non-nil, overrides Delay with a per-pair latency
	// function (the simnet WithLatencyFunc shim routes through this).
	DelayFunc func(src, dst ipv4.Addr) time.Duration
	// Loss decides per-packet drops (nil: lossless).
	Loss LossModel
	// Reorder holds a fraction of packets back (zero value: in-order).
	Reorder Reorder
}

// Latency samples the one-way delay, including any reordering hold-back.
func (p *Path) Latency(src, dst ipv4.Addr, rng *rand.Rand) time.Duration {
	var d time.Duration
	switch {
	case p.DelayFunc != nil:
		d = p.DelayFunc(src, dst)
	case p.Delay != nil:
		d = p.Delay.Sample(rng)
	default:
		d = DefaultLatency
	}
	if p.Reorder.P > 0 && rng.Float64() < p.Reorder.P {
		d += p.Reorder.Extra
	}
	if d < 0 {
		d = 0
	}
	return d
}

// Drop consults the loss model (never drops when Loss is nil).
func (p *Path) Drop(_, _ ipv4.Addr, rng *rand.Rand) bool {
	return p.Loss != nil && p.Loss.Drop(rng)
}

// Asymmetric models direction-dependent path conditions: Fwd applies to
// packets whose source address orders below the destination (byte-wise),
// Rev to the opposite direction. The orientation is arbitrary but stable,
// so one directed pair always sees the same leg — what matters for the
// attacks is that requests and responses travel different conditions.
type Asymmetric struct {
	// Fwd is the src<dst leg; Rev the dst<src leg.
	Fwd, Rev PathModel
}

// leg selects the model for the src→dst direction.
func (a *Asymmetric) leg(src, dst ipv4.Addr) PathModel {
	if lessAddr(src, dst) {
		return a.Fwd
	}
	return a.Rev
}

// Latency delegates to the leg owning the src→dst direction.
func (a *Asymmetric) Latency(src, dst ipv4.Addr, rng *rand.Rand) time.Duration {
	return a.leg(src, dst).Latency(src, dst, rng)
}

// Drop delegates to the leg owning the src→dst direction.
func (a *Asymmetric) Drop(src, dst ipv4.Addr, rng *rand.Rand) bool {
	return a.leg(src, dst).Drop(src, dst, rng)
}

// lessAddr orders addresses byte-wise (the Asymmetric orientation).
func lessAddr(a, b ipv4.Addr) bool {
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}

// Pair is one directed src→dst link, the Overrides map key.
type Pair struct {
	// Src and Dst identify the directed link.
	Src, Dst ipv4.Addr
}

// Overrides wraps a base model with per-directed-pair exceptions: a
// packet whose (src, dst) appears in Pairs follows that model, everything
// else follows Base. Model one degraded link inside an otherwise healthy
// network ("the resolver's uplink is lossy, the rest is a LAN") without
// touching the other paths.
type Overrides struct {
	// Base handles every pair not listed in Pairs (nil: zero-value Path).
	Base PathModel
	// Pairs maps directed links to their override models.
	Pairs map[Pair]PathModel
}

// model resolves the PathModel owning the src→dst link. A nil Pairs
// entry and a nil Base both resolve to the documented zero-value Path —
// explicitly, never by letting a nil model escape — so a zero-valued
// override keeps the default link's no-randomness-consumed guarantee
// instead of crashing on delivery.
func (o *Overrides) model(src, dst ipv4.Addr) PathModel {
	if m, ok := o.Pairs[Pair{Src: src, Dst: dst}]; ok && m != nil {
		return m
	}
	if o.Base != nil {
		return o.Base
	}
	return &defaultPath
}

// defaultPath backs Overrides with a nil Base.
var defaultPath Path

// Latency delegates to the model owning the src→dst link.
func (o *Overrides) Latency(src, dst ipv4.Addr, rng *rand.Rand) time.Duration {
	return o.model(src, dst).Latency(src, dst, rng)
}

// Drop delegates to the model owning the src→dst link.
func (o *Overrides) Drop(src, dst ipv4.Addr, rng *rand.Rand) bool {
	return o.model(src, dst).Drop(src, dst, rng)
}
