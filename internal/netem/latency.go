package netem

import (
	"math"
	"math/rand"
	"time"
)

// LatencyDist samples one-way path delays. Implementations must derive
// every draw from the rng they are given (no global randomness) so path
// latency replays deterministically per seed.
type LatencyDist interface {
	// Sample returns the next one-way delay.
	Sample(rng *rand.Rand) time.Duration
}

// Fixed is a constant delay. It consumes no randomness, so wiring a
// Fixed-latency path changes nothing about a seed's RNG stream — the
// property that keeps the default lab byte-identical to the pre-netem
// simulation.
type Fixed time.Duration

// Sample returns the constant delay.
func (f Fixed) Sample(*rand.Rand) time.Duration { return time.Duration(f) }

// Uniform draws uniformly from [Min, Max] — symmetric jitter around the
// midpoint, the classic netem `delay 5ms 3ms` shape.
type Uniform struct {
	// Min and Max bound the delay (inclusive).
	Min, Max time.Duration
}

// Sample draws one delay; a degenerate range (Max ≤ Min) returns Min
// without consuming randomness.
func (u Uniform) Sample(rng *rand.Rand) time.Duration {
	if u.Max <= u.Min {
		return u.Min
	}
	return u.Min + time.Duration(rng.Int63n(int64(u.Max-u.Min)+1))
}

// Lognormal draws Median·exp(Sigma·N(0,1)): the right-skewed delay shape
// measured on real WAN paths — most packets near the median, a long tail
// of stragglers. The mean is Median·exp(Sigma²/2).
type Lognormal struct {
	// Median is the distribution median (the 50th-percentile delay).
	Median time.Duration
	// Sigma is the log-domain standard deviation (0 degenerates to
	// Fixed(Median); 0.2–0.6 covers calm to heavily jittered paths).
	Sigma float64
}

// Sample draws one delay.
func (l Lognormal) Sample(rng *rand.Rand) time.Duration {
	if l.Sigma == 0 {
		return l.Median
	}
	return time.Duration(float64(l.Median) * math.Exp(l.Sigma*rng.NormFloat64()))
}
