package netem

import "math/rand"

// LossModel decides whether successive packets on a path are dropped.
// Stateful implementations (GilbertElliott) confine their state to the
// instance: one instance per network, never shared across runs.
type LossModel interface {
	// Drop reports whether the next packet is lost.
	Drop(rng *rand.Rand) bool
}

// IID drops each packet independently with probability P — the loss
// model simnet's WithLoss has always applied. At P = 0 it consumes no
// randomness (preserving the RNG stream of lossless runs).
type IID struct {
	// P is the per-packet drop probability in [0, 1].
	P float64
}

// Drop draws one Bernoulli trial.
func (l IID) Drop(rng *rand.Rand) bool { return l.P > 0 && rng.Float64() < l.P }

// GilbertElliott is the two-state bursty loss model: a good state
// dropping packets with probability LossGood and a bad state with
// LossBad; after each packet the chain moves good→bad with probability
// PGB and bad→good with PBG. Bad-state visits therefore last 1/PBG
// packets on average (geometric), producing the loss bursts that i.i.d.
// models cannot — the regime where fragmentation races and spoofed-
// response timing behave differently from uniform loss. The stationary
// bad-state share is PGB/(PGB+PBG).
//
// The zero state starts in the good state. Stateful: build one instance
// per network (Profile returns fresh instances each call).
type GilbertElliott struct {
	// PGB and PBG are the good→bad and bad→good transition probabilities
	// applied after every packet.
	PGB, PBG float64
	// LossGood and LossBad are the per-packet drop probabilities in the
	// two states (classic Gilbert: LossGood 0, LossBad high).
	LossGood, LossBad float64

	bad bool
}

// Drop decides the current packet's fate in the current state, then
// advances the state chain.
func (g *GilbertElliott) Drop(rng *rand.Rand) bool {
	p := g.LossGood
	if g.bad {
		p = g.LossBad
	}
	drop := p > 0 && rng.Float64() < p
	if g.bad {
		if g.PBG > 0 && rng.Float64() < g.PBG {
			g.bad = false
		}
	} else if g.PGB > 0 && rng.Float64() < g.PGB {
		g.bad = true
	}
	return drop
}
