package netem

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"time"

	"dnstime/internal/ipv4"
)

// profileSpec is one named profile: a short description for the docs and
// a factory returning a fresh model instance (fresh because loss models
// may be stateful — two labs must never share one instance).
type profileSpec struct {
	desc  string
	build func() PathModel
}

// profiles is the built-in profile catalogue (DESIGN.md §8 documents the
// table; keep the two in sync).
var profiles = map[string]profileSpec{
	"lab": {
		desc:  "the historical default link: fixed 10 ms one-way, lossless, in-order",
		build: func() PathModel { return &Path{} },
	},
	"lan": {
		desc:  "same-site Ethernet: fixed 200 µs one-way, lossless",
		build: func() PathModel { return &Path{Delay: Fixed(200 * time.Microsecond)} },
	},
	"wan": {
		desc: "domestic WAN: lognormal 15 ms median (σ 0.25), 0.1% i.i.d. loss",
		build: func() PathModel {
			return &Path{
				Delay: Lognormal{Median: 15 * time.Millisecond, Sigma: 0.25},
				Loss:  IID{P: 0.001},
			}
		},
	},
	"transcontinental": {
		desc: "long-haul path: asymmetric lognormal 75/90 ms median legs (σ 0.15), 0.3% i.i.d. loss",
		build: func() PathModel {
			return &Asymmetric{
				Fwd: &Path{
					Delay: Lognormal{Median: 75 * time.Millisecond, Sigma: 0.15},
					Loss:  IID{P: 0.003},
				},
				Rev: &Path{
					Delay: Lognormal{Median: 90 * time.Millisecond, Sigma: 0.15},
					Loss:  IID{P: 0.003},
				},
			}
		},
	},
	"lossy-wifi": {
		desc: "last-hop wireless: uniform 2–12 ms, Gilbert–Elliott bursts (≈5% mean loss, 2-packet bursts)",
		build: func() PathModel {
			return &Path{
				Delay: Uniform{Min: 2 * time.Millisecond, Max: 12 * time.Millisecond},
				Loss:  &GilbertElliott{PGB: 0.05, PBG: 0.5, LossGood: 0.01, LossBad: 0.5},
			}
		},
	},
	"congested": {
		desc: "overloaded path: lognormal 40 ms median (σ 0.5), 2% i.i.d. loss, 5% reordered +30 ms",
		build: func() PathModel {
			return &Path{
				Delay:   Lognormal{Median: 40 * time.Millisecond, Sigma: 0.5},
				Loss:    IID{P: 0.02},
				Reorder: Reorder{P: 0.05, Extra: 30 * time.Millisecond},
			}
		},
	},
}

// DefaultProfile names the profile a lab runs when none is requested.
const DefaultProfile = "lab"

// Profile returns a fresh PathModel for the named profile. Every call
// constructs new instances, so concurrent labs never share loss state.
func Profile(name string) (PathModel, error) {
	spec, ok := profiles[name]
	if !ok {
		return nil, fmt.Errorf("netem: unknown profile %q (have: %s)",
			name, strings.Join(ProfileNames(), ", "))
	}
	return spec.build(), nil
}

// ProfileNames lists the built-in profile names, sorted — the iteration
// order sweeps and docs rely on.
func ProfileNames() []string {
	names := make([]string, 0, len(profiles))
	for name := range profiles {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// ProfileDescription returns the one-line description of a profile ("" if
// unknown) — the DESIGN.md §8 table text.
func ProfileDescription(name string) string { return profiles[name].desc }

// NoLossOverride passes FromSpec's loss parameter through untouched.
const NoLossOverride = -1

// override replaces parts of a base model: a non-nil delay wins over the
// base latency, lossSet routes drops through loss instead of the base.
type override struct {
	base    PathModel
	delay   LatencyDist
	loss    LossModel
	lossSet bool
}

// Latency applies the delay override, else the base model.
func (o *override) Latency(src, dst ipv4.Addr, rng *rand.Rand) time.Duration {
	if o.delay != nil {
		return o.delay.Sample(rng)
	}
	return o.base.Latency(src, dst, rng)
}

// Drop applies the loss override, else the base model.
func (o *override) Drop(src, dst ipv4.Addr, rng *rand.Rand) bool {
	if o.lossSet {
		return o.loss.Drop(rng)
	}
	return o.base.Drop(src, dst, rng)
}

// FromSpec builds a per-run PathModel from a profile name plus optional
// scalar overrides — the `net=<profile>` / `rtt=` / `loss=` scenario
// params. An empty name means DefaultProfile; rtt > 0 replaces the
// latency with a fixed rtt/2 one-way delay; loss in [0, 1] replaces the
// loss model with i.i.d. loss at that rate (NoLossOverride keeps the
// profile's own). Every call returns fresh instances.
func FromSpec(name string, rtt time.Duration, loss float64) (PathModel, error) {
	if name == "" {
		name = DefaultProfile
	}
	base, err := Profile(name)
	if err != nil {
		return nil, err
	}
	if rtt < 0 {
		return nil, fmt.Errorf("netem: rtt override %v must not be negative", rtt)
	}
	if loss != NoLossOverride && (loss < 0 || loss > 1) {
		return nil, fmt.Errorf("netem: loss override %v must be a fraction in [0, 1]", loss)
	}
	if rtt == 0 && loss == NoLossOverride {
		return base, nil
	}
	o := &override{base: base}
	if rtt > 0 {
		o.delay = Fixed(rtt / 2)
	}
	if loss != NoLossOverride {
		o.loss = IID{P: loss}
		o.lossSet = true
	}
	return o, nil
}
