package netem

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"dnstime/internal/ipv4"
)

var (
	srcA = ipv4.MustParseAddr("192.0.2.1")
	dstB = ipv4.MustParseAddr("198.51.100.7")
)

// draws samples a distribution n times on a fresh seeded rng.
func draws(d LatencyDist, seed int64, n int) []float64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]float64, n)
	for i := range out {
		out[i] = d.Sample(rng).Seconds()
	}
	return out
}

func meanVar(xs []float64) (mean, variance float64) {
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	for _, x := range xs {
		variance += (x - mean) * (x - mean)
	}
	variance /= float64(len(xs))
	return mean, variance
}

// TestFixedConsumesNoRandomness: a Fixed delay must leave the RNG stream
// untouched — the property that keeps default labs byte-identical to the
// pre-netem simulation.
func TestFixedConsumesNoRandomness(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	before := rng.Int63()
	rng = rand.New(rand.NewSource(7))
	if d := Fixed(3 * time.Millisecond).Sample(rng); d != 3*time.Millisecond {
		t.Errorf("Fixed sample = %v", d)
	}
	if got := rng.Int63(); got != before {
		t.Error("Fixed.Sample consumed randomness")
	}
}

// TestUniformMeanAndBounds: 10k uniform draws stay inside [Min, Max] with
// the midpoint mean and the (Max−Min)²/12 variance, within tolerance.
func TestUniformMeanAndBounds(t *testing.T) {
	u := Uniform{Min: 2 * time.Millisecond, Max: 12 * time.Millisecond}
	xs := draws(u, 1, 10000)
	for _, x := range xs {
		if x < 0.002 || x > 0.012 {
			t.Fatalf("uniform draw %v outside [2ms, 12ms]", x)
		}
	}
	mean, variance := meanVar(xs)
	if math.Abs(mean-0.007) > 0.0002 {
		t.Errorf("uniform mean = %.5f s, want ≈0.007", mean)
	}
	wantVar := 0.010 * 0.010 / 12
	if math.Abs(variance-wantVar) > wantVar/5 {
		t.Errorf("uniform variance = %.3e, want ≈%.3e", variance, wantVar)
	}
}

// TestLognormalMoments: 10k lognormal draws match the closed-form mean
// median·exp(σ²/2) and variance within tolerance, and the sample median
// sits near the configured median.
func TestLognormalMoments(t *testing.T) {
	l := Lognormal{Median: 40 * time.Millisecond, Sigma: 0.5}
	xs := draws(l, 2, 10000)
	mean, variance := meanVar(xs)
	m := 0.040
	wantMean := m * math.Exp(0.5*0.5/2)
	if math.Abs(mean-wantMean) > wantMean/20 {
		t.Errorf("lognormal mean = %.5f s, want ≈%.5f", mean, wantMean)
	}
	wantVar := m * m * math.Exp(0.5*0.5) * (math.Exp(0.5*0.5) - 1)
	if math.Abs(variance-wantVar) > wantVar/3 {
		t.Errorf("lognormal variance = %.3e, want ≈%.3e", variance, wantVar)
	}
	below := 0
	for _, x := range xs {
		if x < m {
			below++
		}
	}
	if below < 4800 || below > 5200 {
		t.Errorf("%d/10000 draws below the median, want ≈5000", below)
	}
}

// TestIIDLossRate: 10k i.i.d. trials hit the configured loss rate within
// tolerance, and P=0 consumes no randomness.
func TestIIDLossRate(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	loss := IID{P: 0.05}
	drops := 0
	for i := 0; i < 10000; i++ {
		if loss.Drop(rng) {
			drops++
		}
	}
	if drops < 400 || drops > 600 {
		t.Errorf("IID(0.05) dropped %d/10000, want ≈500", drops)
	}
	rng = rand.New(rand.NewSource(3))
	before := rng.Int63()
	rng = rand.New(rand.NewSource(3))
	if (IID{}).Drop(rng) {
		t.Error("IID zero value dropped a packet")
	}
	if rng.Int63() != before {
		t.Error("IID(0).Drop consumed randomness")
	}
}

// TestGilbertElliottBursts: the bad-state visits of the two-state chain
// last 1/PBG packets on average and the overall loss rate matches the
// stationary mixture, both within tolerance over 200k packets.
func TestGilbertElliottBursts(t *testing.T) {
	ge := &GilbertElliott{PGB: 0.05, PBG: 0.5, LossGood: 0, LossBad: 1}
	rng := rand.New(rand.NewSource(4))
	const n = 200000
	drops, bursts := 0, 0
	run := 0
	var runs []int
	for i := 0; i < n; i++ {
		if ge.Drop(rng) {
			drops++
			run++
		} else if run > 0 {
			bursts++
			runs = append(runs, run)
			run = 0
		}
	}
	// With LossBad=1/LossGood=0, every drop-run is one bad-state visit:
	// mean run length 1/PBG = 2.
	var total int
	for _, r := range runs {
		total += r
	}
	meanBurst := float64(total) / float64(len(runs))
	if math.Abs(meanBurst-2) > 0.15 {
		t.Errorf("mean burst length = %.2f packets, want ≈2 (1/PBG)", meanBurst)
	}
	// Stationary bad share PGB/(PGB+PBG) = 0.0909…
	wantRate := 0.05 / 0.55
	rate := float64(drops) / float64(n)
	if math.Abs(rate-wantRate) > wantRate/10 {
		t.Errorf("GE loss rate = %.4f, want ≈%.4f", rate, wantRate)
	}
	if bursts < 1000 {
		t.Fatalf("only %d bursts observed", bursts)
	}
}

// TestPathReorderHoldsBackFraction: the configured fraction of packets is
// held back by Extra, everything else keeps the base delay.
func TestPathReorderHoldsBackFraction(t *testing.T) {
	p := &Path{
		Delay:   Fixed(10 * time.Millisecond),
		Reorder: Reorder{P: 0.1, Extra: 30 * time.Millisecond},
	}
	rng := rand.New(rand.NewSource(5))
	held := 0
	for i := 0; i < 10000; i++ {
		switch d := p.Latency(srcA, dstB, rng); d {
		case 40 * time.Millisecond:
			held++
		case 10 * time.Millisecond:
		default:
			t.Fatalf("unexpected delay %v", d)
		}
	}
	if held < 850 || held > 1150 {
		t.Errorf("%d/10000 packets held back, want ≈1000", held)
	}
}

// TestZeroPathIsDefaultLink: the zero-value Path reproduces simnet's
// historical default (fixed 10 ms, lossless) without touching the RNG.
func TestZeroPathIsDefaultLink(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	before := rng.Int63()
	rng = rand.New(rand.NewSource(6))
	p := &Path{}
	if d := p.Latency(srcA, dstB, rng); d != DefaultLatency {
		t.Errorf("zero Path latency = %v, want %v", d, DefaultLatency)
	}
	if p.Drop(srcA, dstB, rng) {
		t.Error("zero Path dropped a packet")
	}
	if rng.Int63() != before {
		t.Error("zero Path consumed randomness")
	}
}

// TestAsymmetricLegSelection: the two directions of one pair see their
// own legs, stably.
func TestAsymmetricLegSelection(t *testing.T) {
	a := &Asymmetric{
		Fwd: &Path{Delay: Fixed(5 * time.Millisecond)},
		Rev: &Path{Delay: Fixed(50 * time.Millisecond)},
	}
	rng := rand.New(rand.NewSource(7))
	// srcA (192.0.2.1) orders below dstB (198.51.100.7).
	if d := a.Latency(srcA, dstB, rng); d != 5*time.Millisecond {
		t.Errorf("forward latency = %v, want 5ms", d)
	}
	if d := a.Latency(dstB, srcA, rng); d != 50*time.Millisecond {
		t.Errorf("reverse latency = %v, want 50ms", d)
	}
}

// TestOverridesPerPair: a listed directed pair follows its override, the
// reverse direction and other pairs follow the base.
func TestOverridesPerPair(t *testing.T) {
	o := &Overrides{
		Base: &Path{Delay: Fixed(time.Millisecond)},
		Pairs: map[Pair]PathModel{
			{Src: srcA, Dst: dstB}: &Path{Delay: Fixed(99 * time.Millisecond), Loss: IID{P: 1}},
		},
	}
	rng := rand.New(rand.NewSource(8))
	if d := o.Latency(srcA, dstB, rng); d != 99*time.Millisecond {
		t.Errorf("override latency = %v", d)
	}
	if !o.Drop(srcA, dstB, rng) {
		t.Error("override loss not applied")
	}
	if d := o.Latency(dstB, srcA, rng); d != time.Millisecond {
		t.Errorf("reverse direction latency = %v, want base 1ms", d)
	}
	if o.Drop(dstB, srcA, rng) {
		t.Error("base path dropped")
	}
}

// TestProfilesFreshAndDeterministic: every built-in profile builds, two
// instances share no state, and equal seeds replay equal per-packet
// decisions — the property campaign workers rely on.
func TestProfilesFreshAndDeterministic(t *testing.T) {
	for _, name := range ProfileNames() {
		name := name
		t.Run(name, func(t *testing.T) {
			run := func() ([]float64, []bool) {
				m, err := Profile(name)
				if err != nil {
					t.Fatal(err)
				}
				rng := rand.New(rand.NewSource(42))
				lat := make([]float64, 2000)
				drop := make([]bool, 2000)
				for i := range lat {
					drop[i] = m.Drop(srcA, dstB, rng)
					lat[i] = m.Latency(srcA, dstB, rng).Seconds()
				}
				return lat, drop
			}
			lat1, drop1 := run()
			lat2, drop2 := run()
			for i := range lat1 {
				if lat1[i] != lat2[i] || drop1[i] != drop2[i] {
					t.Fatalf("packet %d differs between identically seeded instances", i)
				}
			}
			if ProfileDescription(name) == "" {
				t.Errorf("profile %q has no description", name)
			}
		})
	}
	if _, err := Profile("dialup"); err == nil {
		t.Error("unknown profile accepted")
	}
}

// TestFromSpecOverrides: rtt= pins a fixed one-way rtt/2, loss= swaps in
// i.i.d. loss, and bad values are rejected.
func TestFromSpecOverrides(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	m, err := FromSpec("wan", 200*time.Millisecond, 1)
	if err != nil {
		t.Fatal(err)
	}
	if d := m.Latency(srcA, dstB, rng); d != 100*time.Millisecond {
		t.Errorf("rtt=200ms one-way latency = %v, want 100ms", d)
	}
	if !m.Drop(srcA, dstB, rng) {
		t.Error("loss=1 did not drop")
	}

	// loss=0 forces a lossless variant of a lossy profile.
	m, err = FromSpec("lossy-wifi", 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		if m.Drop(srcA, dstB, rng) {
			t.Fatal("loss=0 override dropped a packet")
		}
	}

	// Defaults: empty name is the lab profile, untouched overrides return
	// the profile as-is.
	m, err = FromSpec("", 0, NoLossOverride)
	if err != nil {
		t.Fatal(err)
	}
	if d := m.Latency(srcA, dstB, rng); d != DefaultLatency {
		t.Errorf("default spec latency = %v, want %v", d, DefaultLatency)
	}

	for _, bad := range []struct {
		name string
		rtt  time.Duration
		loss float64
	}{
		{"wan", -time.Second, NoLossOverride},
		{"wan", 0, 1.5},
		{"wan", 0, -0.2},
		{"dialup", 0, NoLossOverride},
	} {
		if _, err := FromSpec(bad.name, bad.rtt, bad.loss); err == nil {
			t.Errorf("FromSpec(%q, %v, %v) accepted", bad.name, bad.rtt, bad.loss)
		}
	}
}
