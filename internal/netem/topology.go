package netem

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"dnstime/internal/ipv4"
)

// Role names a host's network position in the simulated lab — the victim
// resolver, the off-path attacker, the pool nameserver, and so on. The
// paper's races are won or lost on *which position* a packet travels
// from, so a Topology assigns path conditions by role pair instead of
// forcing one global model onto every link.
type Role string

// The lab's built-in roles. A Topology may use any Role strings; these
// are the positions core.Lab tags its hosts with.
const (
	// RoleAttacker is the off-path attacker's vantage point.
	RoleAttacker Role = "attacker"
	// RoleEvilServer is an attacker-operated NTP server.
	RoleEvilServer Role = "evilserver"
	// RoleResolver is the victim network's recursive resolver.
	RoleResolver Role = "resolver"
	// RoleNameserver is the pool.ntp.org authoritative nameserver.
	RoleNameserver Role = "nameserver"
	// RoleNTPServer is an honest pool NTP server.
	RoleNTPServer Role = "ntpserver"
	// RoleClient is a victim NTP (or Chronos) client.
	RoleClient Role = "client"
	// RoleAny is the wildcard: a link entry under (r, RoleAny) or
	// (RoleAny, r) matches every counterpart role. Exact pairs win over
	// src-wildcards, which win over dst-wildcards.
	RoleAny Role = "*"
)

// RolePair is one directed src→dst link class between roles — the
// Topology link key, the role-level analogue of Pair.
type RolePair struct {
	// Src and Dst identify the directed role pair.
	Src, Dst Role
}

// Topology assigns PathModels by role pair: the attacker↔resolver path
// may be fast while the client↔resolver path is lossy, modelling the
// attacker racing the legitimate answer from a better network position.
// It compiles down to the per-directed-link Overrides machinery via
// Compiler as hosts join a lab (see DESIGN.md §9).
//
// Each registered link holds a *factory*, not an instance: the compiler
// builds a fresh model per directed address pair, so stateful models
// (Gilbert–Elliott loss) never share burst state between links. The
// Default model is deliberately shared by every unlisted pair — that is
// exactly the PR-4 uniform behaviour, and the zero Topology (no links,
// nil Default) is byte-identical to a lab with no topology at all.
type Topology struct {
	// Default handles every role pair without a link entry (nil: the
	// zero-value Path — fixed 10 ms, lossless, consuming no randomness).
	Default PathModel

	links map[RolePair]func() PathModel
}

// NewTopology returns an empty topology: every link follows Default.
func NewTopology() *Topology {
	return &Topology{links: make(map[RolePair]func() PathModel)}
}

// SetLink registers build for the directed src→dst role link. Either
// side may be RoleAny. build must be non-nil and must return a fresh
// model on every call (it is invoked once per compiled directed link).
func (t *Topology) SetLink(src, dst Role, build func() PathModel) {
	if build == nil {
		panic("netem: Topology.SetLink with nil build")
	}
	if t.links == nil {
		t.links = make(map[RolePair]func() PathModel)
	}
	t.links[RolePair{Src: src, Dst: dst}] = build
}

// SetPath registers build for both directions between roles a and b —
// the symmetric convenience over SetLink. Each direction still gets its
// own fresh instance at compile time.
func (t *Topology) SetPath(a, b Role, build func() PathModel) {
	t.SetLink(a, b, build)
	t.SetLink(b, a, build)
}

// linkBuild resolves the factory owning a directed role pair (nil when
// the pair follows Default). Exact pairs win over (src, RoleAny), which
// wins over (RoleAny, dst) — so "everything the attacker sends" can be
// overridden for one specific destination role.
func (t *Topology) linkBuild(src, dst Role) func() PathModel {
	if f, ok := t.links[RolePair{Src: src, Dst: dst}]; ok {
		return f
	}
	if f, ok := t.links[RolePair{Src: src, Dst: RoleAny}]; ok {
		return f
	}
	if f, ok := t.links[RolePair{Src: RoleAny, Dst: dst}]; ok {
		return f
	}
	return nil
}

// Compiler incrementally compiles a Topology into per-directed-link
// Overrides as hosts join a lab. The lab registers each host's address
// and role with Add; Model returns the live compiled PathModel (an
// Overrides that grows with every Add). Compilation consumes no
// randomness — model factories only construct instances — so wiring a
// topology never perturbs a seed's RNG stream.
type Compiler struct {
	topo  *Topology
	ov    *Overrides
	hosts []compiledHost
}

// compiledHost is one Add-ed (address, role) assignment.
type compiledHost struct {
	addr ipv4.Addr
	role Role
}

// Compiler returns a fresh compiler for the topology. The compiled
// model's base is Default (or the zero Path when Default is nil).
func (t *Topology) Compiler() *Compiler {
	base := t.Default
	if base == nil {
		base = &Path{}
	}
	return &Compiler{
		topo: t,
		ov:   &Overrides{Base: base, Pairs: make(map[Pair]PathModel)},
	}
}

// Add assigns role to addr and materialises the directed links between
// addr and every previously added host whose role pair the topology
// lists. Re-adding an address is a no-op (the first role wins, matching
// simnet's duplicate-host rejection).
func (c *Compiler) Add(addr ipv4.Addr, role Role) {
	for _, h := range c.hosts {
		if h.addr == addr {
			return
		}
	}
	for _, h := range c.hosts {
		if f := c.topo.linkBuild(role, h.role); f != nil {
			c.ov.Pairs[Pair{Src: addr, Dst: h.addr}] = f()
		}
		if f := c.topo.linkBuild(h.role, role); f != nil {
			c.ov.Pairs[Pair{Src: h.addr, Dst: addr}] = f()
		}
	}
	c.hosts = append(c.hosts, compiledHost{addr: addr, role: role})
}

// Model returns the compiled PathModel. It is live: links materialised
// by later Add calls are visible to it, which is how labs that attach
// clients mid-run keep their topology consistent.
func (c *Compiler) Model() PathModel { return c.ov }

// Role reports the role addr was Add-ed under ("" when unknown).
func (c *Compiler) Role(addr ipv4.Addr) Role {
	for _, h := range c.hosts {
		if h.addr == addr {
			return h.role
		}
	}
	return ""
}

// topologySpec is one named topology preset: a short description for the
// docs and a factory returning a fresh Topology (fresh because compiled
// links build stateful models; two labs must never share instances).
type topologySpec struct {
	desc  string
	build func() *Topology
}

// attackerSide registers build on every link touching the attacker's
// infrastructure (the attacker host and its NTP servers).
func attackerSide(t *Topology, build func() PathModel) {
	t.SetPath(RoleAttacker, RoleAny, build)
	t.SetPath(RoleEvilServer, RoleAny, build)
}

// victimSide registers build on the victim network's access paths: the
// client's links (to the resolver and to honest and attacker NTP
// servers) and the resolver's path to the nameserver. These exact pairs
// win over attacker-side wildcards, so the client↔evilserver last hop
// follows the victim's access conditions.
func victimSide(t *Topology, build func() PathModel) {
	t.SetPath(RoleClient, RoleResolver, build)
	t.SetPath(RoleClient, RoleNTPServer, build)
	t.SetPath(RoleClient, RoleEvilServer, build)
	t.SetPath(RoleResolver, RoleNameserver, build)
}

// fixedPath returns a factory for a fixed-latency lossless path.
func fixedPath(oneWay time.Duration) func() PathModel {
	return func() PathModel { return &Path{Delay: Fixed(oneWay)} }
}

// The near-attacker preset's one-way delays: the victim network's links
// and the attacker's better path. The racemargin scenario sweeps the
// attacker's delay around NearAttackerVictimDelay, so the margin scale
// is anchored to these constants.
const (
	// NearAttackerVictimDelay is the preset's victim-side one-way delay.
	NearAttackerVictimDelay = 30 * time.Millisecond
	// NearAttackerDelay is the preset's attacker-side one-way delay.
	NearAttackerDelay = 2 * time.Millisecond
)

// topologies is the built-in topology-preset catalogue (DESIGN.md §9
// documents the table; keep the two in sync).
var topologies = map[string]topologySpec{
	"uniform": {
		desc:  "every link follows the default path — the single global PathModel labs have always run",
		build: NewTopology,
	},
	"near-attacker": {
		desc: "attacker-side links fixed 2 ms one-way, everything else fixed 30 ms — the attacker races from a better path",
		build: func() *Topology {
			t := NewTopology()
			t.Default = &Path{Delay: Fixed(NearAttackerVictimDelay)}
			attackerSide(t, fixedPath(NearAttackerDelay))
			return t
		},
	},
	"far-attacker": {
		desc: "attacker-side links fixed 120 ms one-way, everything else the 10 ms default — the attacker races from across the world",
		build: func() *Topology {
			t := NewTopology()
			attackerSide(t, fixedPath(120*time.Millisecond))
			return t
		},
	},
	"colo": {
		desc: "attacker co-located with the victim resolver: attacker↔resolver and evilserver↔resolver fixed 200 µs, everything else the 10 ms default",
		build: func() *Topology {
			t := NewTopology()
			t.SetPath(RoleAttacker, RoleResolver, fixedPath(200*time.Microsecond))
			t.SetPath(RoleEvilServer, RoleResolver, fixedPath(200*time.Microsecond))
			return t
		},
	},
}

// DefaultTopology names the preset a lab runs when none is requested.
const DefaultTopology = "uniform"

// TopologyPreset returns a fresh Topology for the named preset. Every
// call constructs a new topology whose compiled links build fresh model
// instances, so concurrent labs never share loss state.
func TopologyPreset(name string) (*Topology, error) {
	spec, ok := topologies[name]
	if !ok {
		return nil, fmt.Errorf("netem: unknown topology preset %q (have: %s)",
			name, strings.Join(TopologyNames(), ", "))
	}
	return spec.build(), nil
}

// TopologyNames lists the built-in topology presets, sorted — the
// iteration order sweeps and docs rely on.
func TopologyNames() []string {
	names := make([]string, 0, len(topologies))
	for name := range topologies {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// TopologyDescription returns the one-line description of a preset (""
// if unknown) — the DESIGN.md §9 table text.
func TopologyDescription(name string) string { return topologies[name].desc }

// profileFactory validates a profile name once and returns a factory
// building fresh instances of it.
func profileFactory(name string) (func() PathModel, error) {
	if _, err := Profile(name); err != nil {
		return nil, err
	}
	return func() PathModel {
		m, err := Profile(name)
		if err != nil {
			panic(err) // validated above; profiles never disappear
		}
		return m
	}, nil
}

// TopologyFromSpec builds a per-run Topology from a preset name plus
// optional per-side profile overrides — the `topo=` / `atk-net=` /
// `cli-net=` scenario params. An empty preset name means
// DefaultTopology; atkNet replaces every attacker-side link with the
// named profile; cliNet replaces the victim network's access paths
// (client links plus resolver→nameserver, which win over attacker-side
// wildcards where they overlap); dflt, when non-nil, becomes the
// topology's Default path (the `net=`/`rtt=`/`loss=` uniform spec).
// Every call returns a fresh topology.
func TopologyFromSpec(preset, atkNet, cliNet string, dflt PathModel) (*Topology, error) {
	if preset == "" {
		preset = DefaultTopology
	}
	t, err := TopologyPreset(preset)
	if err != nil {
		return nil, err
	}
	if dflt != nil {
		t.Default = dflt
	}
	if atkNet != "" {
		f, err := profileFactory(atkNet)
		if err != nil {
			return nil, fmt.Errorf("atk-net: %w", err)
		}
		attackerSide(t, f)
	}
	if cliNet != "" {
		f, err := profileFactory(cliNet)
		if err != nil {
			return nil, fmt.Errorf("cli-net: %w", err)
		}
		victimSide(t, f)
	}
	return t, nil
}
