package netem

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"time"

	"dnstime/internal/ipv4"
)

// Lab-like addresses for topology compilation tests.
var (
	topoAttacker = ipv4.MustParseAddr("203.0.113.66")
	topoResolver = ipv4.MustParseAddr("192.0.2.53")
	topoNS       = ipv4.MustParseAddr("198.51.100.53")
	topoClient   = ipv4.MustParseAddr("192.0.2.101")
	topoNTP      = ipv4.MustParseAddr("10.0.0.1")
	topoEvil     = ipv4.MustParseAddr("6.6.0.1")
)

// compileLabTopology compiles t over the standard six-role host set.
func compileLabTopology(t *Topology) *Compiler {
	c := t.Compiler()
	c.Add(topoNS, RoleNameserver)
	c.Add(topoResolver, RoleResolver)
	c.Add(topoAttacker, RoleAttacker)
	c.Add(topoNTP, RoleNTPServer)
	c.Add(topoEvil, RoleEvilServer)
	c.Add(topoClient, RoleClient)
	return c
}

// TestZeroTopologyIsDefaultLink: an empty topology compiles to the
// historical default link on every pair and consumes no randomness — the
// uniform special case that keeps topology-free labs byte-identical.
func TestZeroTopologyIsDefaultLink(t *testing.T) {
	c := compileLabTopology(NewTopology())
	m := c.Model()
	rng := rand.New(rand.NewSource(11))
	before := rng.Int63()
	rng = rand.New(rand.NewSource(11))
	for _, pair := range [][2]ipv4.Addr{
		{topoAttacker, topoResolver},
		{topoClient, topoNTP},
		{topoResolver, topoNS},
	} {
		if d := m.Latency(pair[0], pair[1], rng); d != DefaultLatency {
			t.Errorf("latency %s→%s = %v, want %v", pair[0], pair[1], d, DefaultLatency)
		}
		if m.Drop(pair[0], pair[1], rng) {
			t.Errorf("zero topology dropped %s→%s", pair[0], pair[1])
		}
	}
	if rng.Int63() != before {
		t.Error("zero topology consumed randomness")
	}
}

// TestTopologyRolePairResolution: exact role pairs beat src-wildcards,
// which beat dst-wildcards; unlisted pairs follow Default.
func TestTopologyRolePairResolution(t *testing.T) {
	topo := NewTopology()
	topo.Default = &Path{Delay: Fixed(30 * time.Millisecond)}
	topo.SetPath(RoleAttacker, RoleAny, fixedPath(2*time.Millisecond))
	topo.SetLink(RoleAttacker, RoleResolver, fixedPath(1*time.Millisecond))
	topo.SetLink(RoleAny, RoleNameserver, fixedPath(7*time.Millisecond))

	m := compileLabTopology(topo).Model()
	rng := rand.New(rand.NewSource(12))
	cases := []struct {
		src, dst ipv4.Addr
		want     time.Duration
	}{
		{topoAttacker, topoResolver, 1 * time.Millisecond}, // exact pair
		{topoAttacker, topoNTP, 2 * time.Millisecond},      // (attacker, *)
		{topoNTP, topoAttacker, 2 * time.Millisecond},      // (*, attacker) via SetPath
		{topoAttacker, topoNS, 2 * time.Millisecond},       // src-wildcard beats dst-wildcard
		{topoResolver, topoNS, 7 * time.Millisecond},       // (*, nameserver)
		{topoClient, topoResolver, 30 * time.Millisecond},  // Default
		{topoResolver, topoAttacker, 2 * time.Millisecond}, // reverse leg of SetPath
	}
	for _, c := range cases {
		if d := m.Latency(c.src, c.dst, rng); d != c.want {
			t.Errorf("latency %s→%s = %v, want %v", c.src, c.dst, d, c.want)
		}
	}
}

// TestCompilerIncrementalAndFresh: hosts added after Model() was handed
// out still get their links (the live-compile contract labs use for
// mid-run clients), every directed link owns a distinct model instance,
// and re-adding an address is a no-op.
func TestCompilerIncrementalAndFresh(t *testing.T) {
	topo := NewTopology()
	topo.SetPath(RoleAttacker, RoleAny, func() PathModel {
		return &Path{Delay: Fixed(3 * time.Millisecond), Loss: &GilbertElliott{PGB: 0.1, PBG: 0.5, LossBad: 1}}
	})
	c := topo.Compiler()
	m := c.Model()
	c.Add(topoAttacker, RoleAttacker)
	c.Add(topoResolver, RoleResolver)

	rng := rand.New(rand.NewSource(13))
	if d := m.Latency(topoAttacker, topoResolver, rng); d != 3*time.Millisecond {
		t.Fatalf("attacker→resolver latency = %v, want 3ms", d)
	}
	// A client attached after Model() was installed still gets its links.
	c.Add(topoClient, RoleClient)
	if d := m.Latency(topoAttacker, topoClient, rng); d != 3*time.Millisecond {
		t.Errorf("late-added client link latency = %v, want 3ms", d)
	}
	if d := m.Latency(topoClient, topoResolver, rng); d != DefaultLatency {
		t.Errorf("client→resolver (unlisted) latency = %v, want default", d)
	}
	// Distinct directed links own distinct (stateful) model instances.
	ov := m.(*Overrides)
	seen := map[PathModel]Pair{}
	for pair, model := range ov.Pairs {
		if prev, dup := seen[model]; dup {
			t.Errorf("links %v and %v share one model instance", prev, pair)
		}
		seen[model] = pair
	}
	if c.Role(topoClient) != RoleClient || c.Role(ipv4.Addr{9, 9, 9, 9}) != "" {
		t.Error("Compiler.Role lookup wrong")
	}
	// Re-adding an address must not duplicate links or change its role.
	links := len(ov.Pairs)
	c.Add(topoClient, RoleAttacker)
	if len(ov.Pairs) != links || c.Role(topoClient) != RoleClient {
		t.Error("re-adding an address changed the compiled topology")
	}
}

// TestTopologyPresets: every preset builds, compiles against the lab
// role set, replays deterministically under equal seeds, and has a
// description; unknown presets are rejected by name.
func TestTopologyPresets(t *testing.T) {
	for _, name := range TopologyNames() {
		name := name
		t.Run(name, func(t *testing.T) {
			run := func() ([]float64, []bool) {
				topo, err := TopologyPreset(name)
				if err != nil {
					t.Fatal(err)
				}
				m := compileLabTopology(topo).Model()
				rng := rand.New(rand.NewSource(21))
				lat := make([]float64, 500)
				drop := make([]bool, 500)
				pairs := [][2]ipv4.Addr{
					{topoAttacker, topoResolver},
					{topoClient, topoResolver},
					{topoResolver, topoNS},
					{topoEvil, topoClient},
				}
				for i := range lat {
					p := pairs[i%len(pairs)]
					drop[i] = m.Drop(p[0], p[1], rng)
					lat[i] = m.Latency(p[0], p[1], rng).Seconds()
				}
				return lat, drop
			}
			lat1, drop1 := run()
			lat2, drop2 := run()
			for i := range lat1 {
				if lat1[i] != lat2[i] || drop1[i] != drop2[i] {
					t.Fatalf("packet %d differs between identically seeded preset instances", i)
				}
			}
			if TopologyDescription(name) == "" {
				t.Errorf("preset %q has no description", name)
			}
		})
	}
	if _, err := TopologyPreset("backbone"); err == nil || !strings.Contains(err.Error(), "backbone") {
		t.Errorf("unknown preset error = %v", err)
	}
}

// TestNearAttackerAsymmetry: under the near-attacker preset the
// attacker's path to the resolver is strictly faster than the client's
// and the resolver's nameserver leg — the race advantage the preset
// exists to model.
func TestNearAttackerAsymmetry(t *testing.T) {
	topo, err := TopologyPreset("near-attacker")
	if err != nil {
		t.Fatal(err)
	}
	m := compileLabTopology(topo).Model()
	rng := rand.New(rand.NewSource(22))
	atk := m.Latency(topoAttacker, topoResolver, rng)
	cli := m.Latency(topoClient, topoResolver, rng)
	ns := m.Latency(topoNS, topoResolver, rng)
	if atk >= cli || atk >= ns {
		t.Errorf("attacker latency %v not below victim paths (client %v, ns %v)", atk, cli, ns)
	}
}

// TestTopologyFromSpec: preset + per-side profile overrides compose —
// atk-net rewires the attacker's links, cli-net the victim access paths
// (winning over attacker wildcards where they overlap), net= becomes the
// Default — and unknown names are rejected per parameter.
func TestTopologyFromSpec(t *testing.T) {
	topo, err := TopologyFromSpec("near-attacker", "lan", "congested", Fixed(40*time.Millisecond).asPath())
	if err != nil {
		t.Fatal(err)
	}
	m := compileLabTopology(topo).Model()
	rng := rand.New(rand.NewSource(23))
	// atk-net=lan: fixed 200 µs attacker legs.
	if d := m.Latency(topoAttacker, topoResolver, rng); d != 200*time.Microsecond {
		t.Errorf("atk-net latency = %v, want 200µs", d)
	}
	// cli-net=congested is lognormal 40 ms median — not the preset's fixed
	// 30 ms default, and it wins over the evilserver wildcard.
	if d := m.Latency(topoClient, topoEvil, rng); d == 30*time.Millisecond || d == 200*time.Microsecond {
		t.Errorf("cli-net did not win the client↔evilserver link (latency %v)", d)
	}
	// The uniform dflt replaces the preset default on unlisted pairs.
	if d := m.Latency(topoNTP, topoResolver, rng); d != 40*time.Millisecond {
		t.Errorf("default-path latency = %v, want 40ms", d)
	}

	for _, bad := range [][3]string{
		{"backbone", "", ""},
		{"", "dialup", ""},
		{"", "", "dialup"},
	} {
		if _, err := TopologyFromSpec(bad[0], bad[1], bad[2], nil); err == nil {
			t.Errorf("TopologyFromSpec(%q, %q, %q) accepted", bad[0], bad[1], bad[2])
		}
	}

	// The empty spec is the uniform preset with the zero-path default.
	topo, err = TopologyFromSpec("", "", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	m = compileLabTopology(topo).Model()
	if d := m.Latency(topoClient, topoResolver, rng); d != DefaultLatency {
		t.Errorf("empty-spec latency = %v, want default", d)
	}
}

// asPath adapts a latency distribution into a lossless Path model for
// spec tests.
func (f Fixed) asPath() PathModel { return &Path{Delay: f} }

// TestGilbertElliottPerLinkConvergence: a topology whose victim links
// carry Gilbert–Elliott loss compiles to one independent chain per
// directed link, and each link's long-run loss rate converges to the
// stationary mixture PGB/(PGB+PBG) — the statistical contract per-link
// state exists to uphold.
func TestGilbertElliottPerLinkConvergence(t *testing.T) {
	const pgb, pbg = 0.05, 0.5
	topo := NewTopology()
	victimSide(topo, func() PathModel {
		return &Path{Loss: &GilbertElliott{PGB: pgb, PBG: pbg, LossGood: 0, LossBad: 1}}
	})
	m := compileLabTopology(topo).Model()
	rng := rand.New(rand.NewSource(24))
	wantRate := pgb / (pgb + pbg)
	links := [][2]ipv4.Addr{
		{topoClient, topoResolver},
		{topoResolver, topoClient},
		{topoClient, topoNTP},
		{topoResolver, topoNS},
		{topoNS, topoResolver},
	}
	const n = 200000
	for _, link := range links {
		drops := 0
		for i := 0; i < n; i++ {
			if m.Drop(link[0], link[1], rng) {
				drops++
			}
		}
		rate := float64(drops) / float64(n)
		if math.Abs(rate-wantRate) > wantRate/10 {
			t.Errorf("link %s→%s loss rate = %.4f, want ≈%.4f", link[0], link[1], rate, wantRate)
		}
	}
	// Attacker links are unlisted: lossless default, zero drops.
	for i := 0; i < 1000; i++ {
		if m.Drop(topoAttacker, topoResolver, rng) {
			t.Fatal("unlisted attacker link dropped a packet")
		}
	}
}

// TestOverridesZeroValueFallsBack pins the small fix: a nil Pairs entry
// (a zero-valued override) and a nil Base resolve to the documented
// zero-value Path — default latency, lossless — without consuming any
// randomness and without letting the nil model escape.
func TestOverridesZeroValueFallsBack(t *testing.T) {
	o := &Overrides{Pairs: map[Pair]PathModel{
		{Src: srcA, Dst: dstB}: nil,
	}}
	rng := rand.New(rand.NewSource(25))
	before := rng.Int63()
	rng = rand.New(rand.NewSource(25))
	if d := o.Latency(srcA, dstB, rng); d != DefaultLatency {
		t.Errorf("nil-entry latency = %v, want %v", d, DefaultLatency)
	}
	if o.Drop(srcA, dstB, rng) {
		t.Error("nil-entry pair dropped a packet")
	}
	if rng.Int63() != before {
		t.Error("zero-valued override consumed randomness")
	}
	// A nil entry means "no override": with a Base installed, Base owns
	// the link.
	o.Base = &Path{Delay: Fixed(4 * time.Millisecond)}
	if d := o.Latency(srcA, dstB, rng); d != 4*time.Millisecond {
		t.Errorf("nil-entry latency with Base = %v, want 4ms", d)
	}
}
