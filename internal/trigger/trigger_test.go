package trigger

import (
	"testing"
	"time"

	"dnstime/internal/dnsauth"
	"dnstime/internal/dnsres"
	"dnstime/internal/dnswire"
	"dnstime/internal/ipv4"
	"dnstime/internal/simclock"
	"dnstime/internal/simnet"
)

var (
	t0      = time.Date(2020, 1, 1, 0, 0, 0, 0, time.UTC)
	nsAddr  = ipv4.MustParseAddr("198.51.100.53")
	resAddr = ipv4.MustParseAddr("192.0.2.53")
	mxAddr  = ipv4.MustParseAddr("192.0.2.25")
	eveAddr = ipv4.MustParseAddr("203.0.113.66")
)

type fixture struct {
	clk  *simclock.Clock
	net  *simnet.Network
	auth *dnsauth.Server
	res  *dnsres.Resolver
}

func newFixture(t *testing.T) *fixture {
	t.Helper()
	clk := simclock.New(t0)
	n := simnet.New(clk)
	authHost := n.MustAddHost(nsAddr, simnet.HostConfig{})
	wc := ipv4.Addr{7, 7, 7, 7}
	auth, err := dnsauth.New(authHost, dnsauth.Config{WildcardA: &wc})
	if err != nil {
		t.Fatal(err)
	}
	auth.AddZone(dnsauth.NewZone("pool.ntp.org"))
	auth.AddPool(&dnsauth.Pool{Name: "pool.ntp.org", Addrs: []ipv4.Addr{{10, 0, 0, 1}}, PerResponse: 1, TTL: 150})
	resHost := n.MustAddHost(resAddr, simnet.HostConfig{})
	res, err := dnsres.New(resHost, dnsres.Config{Delegations: map[string]ipv4.Addr{"ntp.org": nsAddr}})
	if err != nil {
		t.Fatal(err)
	}
	return &fixture{clk: clk, net: n, auth: auth, res: res}
}

func TestSMTPTriggersResolverQuery(t *testing.T) {
	f := newFixture(t)
	mxHost := f.net.MustAddHost(mxAddr, simnet.HostConfig{})
	mx, err := NewSMTPServer(mxHost, resAddr, 1)
	if err != nil {
		t.Fatal(err)
	}
	eve := f.net.MustAddHost(eveAddr, simnet.HostConfig{})
	// The attacker mails the victim network; the sender domain is the
	// attacker-chosen query.
	if err := SendMail(eve, mxAddr, "bounce@victim-query.pool.ntp.org"); err != nil {
		t.Fatal(err)
	}
	f.clk.RunFor(5 * time.Second)
	if mx.LookupsIssued != 1 || mx.Accepted != 1 {
		t.Fatalf("lookups=%d accepted=%d", mx.LookupsIssued, mx.Accepted)
	}
	// The resolver now holds the attacker-chosen record.
	if _, ok := f.res.Peek("victim-query.pool.ntp.org", dnswire.TypeA); !ok {
		t.Error("SMTP trigger did not populate the resolver cache")
	}
}

func TestSMTPIgnoresGarbage(t *testing.T) {
	f := newFixture(t)
	mxHost := f.net.MustAddHost(mxAddr, simnet.HostConfig{})
	mx, err := NewSMTPServer(mxHost, resAddr, 1)
	if err != nil {
		t.Fatal(err)
	}
	eve := f.net.MustAddHost(eveAddr, simnet.HostConfig{})
	for _, bad := range []string{"HELO", "MAIL FROM:<nodomain>", "MAIL FROM:<trailing@>"} {
		port := eve.AllocPort()
		eve.SendUDP(mxAddr, port, SMTPPort, []byte(bad))
	}
	f.clk.RunFor(5 * time.Second)
	if mx.LookupsIssued != 0 {
		t.Errorf("garbage mail triggered %d lookups", mx.LookupsIssued)
	}
}

func TestSenderDomainParsing(t *testing.T) {
	tests := []struct {
		in     string
		domain string
		ok     bool
	}{
		{"MAIL FROM:<a@b.example>\r\n", "b.example", true},
		{"MAIL FROM:<A@B.EXAMPLE>", "b.example", true},
		{"MAIL FROM:<a@b@c.example>", "c.example", true},
		{"MAIL FROM:<nodomain>", "", false},
		{"RCPT TO:<a@b>", "", false},
		{"MAIL FROM:<unclosed@x", "", false},
	}
	for _, tt := range tests {
		got, ok := senderDomain(tt.in)
		if ok != tt.ok || got != tt.domain {
			t.Errorf("senderDomain(%q) = %q,%t want %q,%t", tt.in, got, ok, tt.domain, tt.ok)
		}
	}
}

func TestWebClientLoadsResources(t *testing.T) {
	f := newFixture(t)
	browser := NewWebClient(f.net.MustAddHost(ipv4.MustParseAddr("192.0.2.80"), simnet.HostConfig{}), resAddr, 2)
	browser.Browse([]string{"tok1.ftiny.pool.ntp.org", "nosuch.elsewhere.net"})
	f.clk.RunFor(15 * time.Second)
	if !browser.Loaded["tok1.ftiny.pool.ntp.org"] {
		t.Error("resolvable resource not loaded")
	}
	if browser.Loaded["nosuch.elsewhere.net"] {
		t.Error("unresolvable resource loaded")
	}
}

// TestSharedResolverAttackPath: the full §IV-A(2) flow — the attacker uses
// the mail server sharing the victim resolver to trigger the query it then
// races with planted fragments. (The racing itself is covered in
// internal/attack and internal/core; here we verify the trigger reaches the
// same resolver the NTP client uses.)
func TestSharedResolverAttackPath(t *testing.T) {
	f := newFixture(t)
	mxHost := f.net.MustAddHost(mxAddr, simnet.HostConfig{})
	if _, err := NewSMTPServer(mxHost, resAddr, 1); err != nil {
		t.Fatal(err)
	}
	eve := f.net.MustAddHost(eveAddr, simnet.HostConfig{})
	if err := SendMail(eve, mxAddr, "x@pool.ntp.org"); err != nil {
		t.Fatal(err)
	}
	f.clk.RunFor(5 * time.Second)
	// The same cache entry an NTP client's lookup would hit is now warm.
	entry, ok := f.res.Peek("pool.ntp.org", dnswire.TypeA)
	if !ok || len(entry.RRs) == 0 {
		t.Fatal("shared-resolver trigger did not warm the NTP discovery record")
	}
}
