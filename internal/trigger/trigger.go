// Package trigger models the "other systems using the same DNS resolver"
// of Section IV-A(2) and the shared-resolver measurement of Section
// VIII-B3: an SMTP server that performs domain-based anti-spam DNS lookups
// on every incoming mail, and a web client that resolves the names of
// embedded resources. Both share the victim network's resolver, so the
// attacker can use them to issue the DNS queries it needs to poison —
// including queries for attacker-chosen (long, cache-evicting) names that
// NTP itself would never ask for.
package trigger

import (
	"fmt"
	"strings"

	"dnstime/internal/dnsres"
	"dnstime/internal/dnswire"
	"dnstime/internal/ipv4"
	"dnstime/internal/simnet"
)

// SMTPPort is the well-known SMTP port.
const SMTPPort = 25

// SMTPServer is a minimal mail host: on every incoming message it resolves
// the sender domain through its configured resolver (the anti-spam lookup
// the paper leverages). The "protocol" is a single UDP datagram carrying
// "MAIL FROM:<user@domain>" — transport realism is irrelevant here; the
// DNS side effect is the point.
type SMTPServer struct {
	host *simnet.Host
	stub *dnsres.Stub

	// LookupsIssued counts anti-spam DNS lookups performed.
	LookupsIssued int
	// Accepted counts processed messages.
	Accepted int
}

// NewSMTPServer binds a mail server to port 25 of host, using the resolver
// at resolverAddr for sender-domain validation.
func NewSMTPServer(host *simnet.Host, resolverAddr ipv4.Addr, seed int64) (*SMTPServer, error) {
	s := &SMTPServer{
		host: host,
		stub: dnsres.NewStub(host, resolverAddr, seed),
	}
	if err := host.HandleUDP(SMTPPort, s.handle); err != nil {
		return nil, fmt.Errorf("trigger: bind smtp: %w", err)
	}
	return s, nil
}

// Addr returns the mail server's address.
func (s *SMTPServer) Addr() ipv4.Addr { return s.host.Addr() }

func (s *SMTPServer) handle(src ipv4.Addr, srcPort uint16, payload []byte) {
	domain, ok := senderDomain(string(payload))
	if !ok {
		return
	}
	s.Accepted++
	s.LookupsIssued++
	// Anti-spam validation: resolve the sender domain. The result is
	// irrelevant to the attacker — the query is the payload.
	s.stub.Lookup(domain, dnswire.TypeA, true, func(*dnswire.Message, error) {})
}

// senderDomain extracts the domain of a "MAIL FROM:<user@domain>" line.
func senderDomain(msg string) (string, bool) {
	const prefix = "MAIL FROM:<"
	i := strings.Index(msg, prefix)
	if i < 0 {
		return "", false
	}
	rest := msg[i+len(prefix):]
	end := strings.IndexByte(rest, '>')
	if end < 0 {
		return "", false
	}
	addr := rest[:end]
	at := strings.LastIndexByte(addr, '@')
	if at < 0 || at == len(addr)-1 {
		return "", false
	}
	return dnswire.CanonicalName(addr[at+1:]), true
}

// SendMail delivers one message from `from` (an email address) to the mail
// server at mx, causing the server's resolver to look up the sender domain.
// This is the attacker's §IV-A(2) trigger: the sender domain is attacker-
// chosen, so the attacker controls which name the victim resolver queries.
func SendMail(fromHost *simnet.Host, mx ipv4.Addr, from string) error {
	payload := []byte("MAIL FROM:<" + from + ">\r\n")
	port := fromHost.AllocPort()
	_, err := fromHost.SendUDP(mx, port, SMTPPort, payload)
	return err
}

// WebClient models a browser behind the shared resolver: Browse resolves a
// page's host and each embedded resource name — the mechanism both the
// ad-network study (Section VIII-B) and the attack's web-based trigger use.
type WebClient struct {
	host *simnet.Host
	stub *dnsres.Stub

	// Loaded maps resource names to whether their DNS lookup succeeded
	// (the onsuccess/onerror signal of the study's image loads).
	Loaded map[string]bool
}

// NewWebClient creates a browser on host using the resolver at
// resolverAddr.
func NewWebClient(host *simnet.Host, resolverAddr ipv4.Addr, seed int64) *WebClient {
	return &WebClient{
		host:   host,
		stub:   dnsres.NewStub(host, resolverAddr, seed),
		Loaded: make(map[string]bool),
	}
}

// Browse resolves every resource name; results appear in Loaded once the
// simulation advances past the lookups.
func (w *WebClient) Browse(resources []string) {
	for _, name := range resources {
		name := dnswire.CanonicalName(name)
		w.stub.LookupA(name, func(addrs []ipv4.Addr, _ uint32, err error) {
			w.Loaded[name] = err == nil && len(addrs) > 0
		})
	}
}
