// Package chronos implements the Chronos NTP client of Deutsch, Rozen
// Schiff, Dolev and Schapira (NDSS'18; draft-schiff-ntp-chronos), the
// "provably secure" client the paper attacks through DNS:
//
//   - pool generation: the client queries DNS for the pool domain once an
//     hour for 24 hours and uses the union of all returned addresses as its
//     server pool (§VI of the paper);
//   - time sampling: each round samples m servers from the pool, discards
//     the d lowest and d highest offsets, and checks that the survivors
//     agree within ω and lie within the drift bound of the local clock;
//   - panic mode: when the checks fail, Chronos queries the whole pool,
//     trims the top and bottom thirds, and averages the middle third.
//
// Chronos's security guarantee holds while an attacker controls fewer than
// 2/3 of the pool. The paper's insight is that the *pool-generation* DNS
// queries are unauthenticated: one poisoned response carrying 89 attacker
// addresses with a TTL longer than 24 h dominates the pool whenever it
// lands before the 12th hourly query (N ≤ 11) — see AttackBound.
package chronos

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"dnstime/internal/dnsres"
	"dnstime/internal/ipv4"
	"dnstime/internal/ntpclient"
	"dnstime/internal/ntpwire"
	"dnstime/internal/simclock"
	"dnstime/internal/simnet"
)

// Config parameterises a Chronos client. Defaults follow the Internet
// draft: 24 hourly pool queries, m=15 samples, d=m/3 trimmed per side.
type Config struct {
	// PoolDomain is the DNS name queried for servers (pool.ntp.org).
	PoolDomain string
	// QueryInterval is the pool-generation cadence (default 1 h).
	QueryInterval time.Duration
	// QueryCount is the number of pool-generation queries (default 24).
	QueryCount int
	// SampleSize m is how many pool servers each round samples (default 15).
	SampleSize int
	// DiscardEach d is how many extreme offsets to trim per side
	// (default m/3).
	DiscardEach int
	// AgreementWindow ω bounds the spread of surviving samples
	// (default 25 ms).
	AgreementWindow time.Duration
	// DriftBound is the largest believable offset versus the local clock
	// before Chronos distrusts the sample set (default 100 ms).
	DriftBound time.Duration
	// PollInterval is the time-sampling cadence (default 5 min).
	PollInterval time.Duration
	// Seed drives sampling randomness (deterministic per seed).
	Seed int64
}

func (c *Config) applyDefaults() {
	if c.PoolDomain == "" {
		c.PoolDomain = "pool.ntp.org"
	}
	if c.QueryInterval == 0 {
		c.QueryInterval = time.Hour
	}
	if c.QueryCount == 0 {
		c.QueryCount = 24
	}
	if c.SampleSize == 0 {
		c.SampleSize = 15
	}
	if c.DiscardEach == 0 {
		c.DiscardEach = c.SampleSize / 3
	}
	if c.AgreementWindow == 0 {
		c.AgreementWindow = 25 * time.Millisecond
	}
	if c.DriftBound == 0 {
		c.DriftBound = 100 * time.Millisecond
	}
	if c.PollInterval == 0 {
		c.PollInterval = 5 * time.Minute
	}
}

// RoundKind classifies a completed sampling round.
type RoundKind int

// Sampling round outcomes.
const (
	RoundNormal RoundKind = iota + 1
	RoundPanic
	RoundInconclusive
)

// String names the round kind.
func (k RoundKind) String() string {
	switch k {
	case RoundNormal:
		return "normal"
	case RoundPanic:
		return "panic"
	case RoundInconclusive:
		return "inconclusive"
	default:
		return "?"
	}
}

// Round records the outcome of one sampling round.
type Round struct {
	At      time.Time
	Kind    RoundKind
	Applied time.Duration // offset applied to the local clock (0 if none)
	Queried int
}

// Client is a Chronos NTP client.
type Client struct {
	host  *simnet.Host
	clock *simclock.Clock
	cfg   Config
	local *ntpclient.LocalClock
	stub  *dnsres.Stub
	rng   *rand.Rand

	pool      map[ipv4.Addr]struct{}
	poolOrder []ipv4.Addr
	queries   int
	running   bool
	genTicker *simclock.Ticker
	pollTick  *simclock.Ticker

	// Sampling-round scratch. Rounds are bursty (m queries, 2 s timeouts)
	// against a 5 min poll cadence, so per-query and per-round state is
	// pooled rather than re-allocated: a Chronos campaign run performs
	// thousands of rounds.
	qFree     []*pendingQuery
	rFree     []*roundState
	permBuf   []int
	sampleBuf []ipv4.Addr
	wire      []byte

	// PoolQueries counts completed pool-generation DNS transactions.
	PoolQueries int
	// Rounds logs sampling rounds.
	Rounds []Round
}

// New creates a Chronos client on host, using the resolver at resolverAddr
// and starting with the given local clock error.
func New(host *simnet.Host, cfg Config, resolverAddr ipv4.Addr, initialClockError time.Duration) *Client {
	cfg.applyDefaults()
	return &Client{
		host:  host,
		clock: host.Clock(),
		cfg:   cfg,
		local: ntpclient.NewLocalClock(host.Clock(), initialClockError),
		stub:  dnsres.NewStub(host, resolverAddr, cfg.Seed+7777),
		rng:   rand.New(rand.NewSource(cfg.Seed)),
		pool:  make(map[ipv4.Addr]struct{}),
	}
}

// LocalNow returns the client's local clock reading.
func (c *Client) LocalNow() time.Time { return c.local.Now() }

// ClockOffset returns local − true time.
func (c *Client) ClockOffset() time.Duration { return c.local.Offset() }

// PoolSize reports the current server-pool size.
func (c *Client) PoolSize() int { return len(c.poolOrder) }

// PoolContains reports whether addr is in the generated pool.
func (c *Client) PoolContains(addr ipv4.Addr) bool {
	_, ok := c.pool[addr]
	return ok
}

// Start begins pool generation and time sampling.
func (c *Client) Start() error {
	if c.running {
		return fmt.Errorf("chronos: already running")
	}
	c.running = true
	c.poolQuery()
	c.genTicker = c.clock.Tick(c.cfg.QueryInterval, func() {
		if c.queries < c.cfg.QueryCount {
			c.poolQuery()
		}
	})
	c.pollTick = c.clock.Tick(c.cfg.PollInterval, c.sampleRound)
	return nil
}

// Stop halts the client.
func (c *Client) Stop() {
	if !c.running {
		return
	}
	c.running = false
	c.genTicker.Stop()
	c.pollTick.Stop()
}

// poolQuery performs one pool-generation DNS transaction. Chronos makes no
// attempt to bound the number of addresses per response or to distrust
// long TTLs — the weakness of §VI-B.
func (c *Client) poolQuery() {
	c.queries++
	c.stub.LookupA(c.cfg.PoolDomain, func(addrs []ipv4.Addr, _ uint32, err error) {
		if err != nil || !c.running {
			return
		}
		c.PoolQueries++
		for _, a := range addrs {
			if _, ok := c.pool[a]; !ok {
				c.pool[a] = struct{}{}
				c.poolOrder = append(c.poolOrder, a)
			}
		}
	})
}

// sampleRound runs one Chronos time-sampling round.
func (c *Client) sampleRound() {
	if len(c.poolOrder) == 0 {
		return
	}
	m := c.cfg.SampleSize
	if m > len(c.poolOrder) {
		m = len(c.poolOrder)
	}
	sample := c.sampleServers(m)
	c.queryServers(sample, func(offsets []time.Duration) {
		c.finishRound(offsets)
	})
}

// sampleServers draws m distinct pool servers uniformly at random. The
// permutation is Fisher–Yates with exactly rand.Perm's draw sequence, built
// in a reused buffer so sampling stays allocation-free once warm; the
// returned slice is scratch, valid until the next round.
func (c *Client) sampleServers(m int) []ipv4.Addr {
	n := len(c.poolOrder)
	if cap(c.permBuf) < n {
		c.permBuf = make([]int, n)
	}
	perm := c.permBuf[:n]
	for i := 0; i < n; i++ {
		j := c.rng.Intn(i + 1)
		perm[i] = perm[j]
		perm[j] = i
	}
	if cap(c.sampleBuf) < m {
		c.sampleBuf = make([]ipv4.Addr, m)
	}
	out := c.sampleBuf[:m]
	for i, j := range perm[:m] {
		out[i] = c.poolOrder[j]
	}
	return out
}

// roundState aggregates the offsets of one sampling round. Pooled: released
// back to the client once its done callback has run.
type roundState struct {
	offsets   []time.Duration
	remaining int
	done      func([]time.Duration)
}

// finish retires one outstanding query; the last one fires the round's done
// callback (which consumes the offsets synchronously) and recycles the round.
func (r *roundState) finish(c *Client) {
	r.remaining--
	if r.remaining != 0 {
		return
	}
	r.done(r.offsets)
	r.offsets = r.offsets[:0]
	r.done = nil
	c.rFree = append(c.rFree, r)
}

// pendingQuery is the in-flight state of one mode-3 query. Its two callbacks
// are built once, capture only the struct, and read its current fields, so
// recycled queries re-arm without allocating closures.
type pendingQuery struct {
	c        *Client
	rnd      *roundState
	srv      ipv4.Addr
	port     uint16
	t1       time.Time
	answered bool
	timer    simclock.Timer
	rx       ntpwire.Packet
	onPkt    func(src ipv4.Addr, srcPort uint16, payload []byte)
	onExpire func()
}

func (c *Client) acquireQuery() *pendingQuery {
	if n := len(c.qFree); n > 0 {
		pq := c.qFree[n-1]
		c.qFree[n-1] = nil
		c.qFree = c.qFree[:n-1]
		return pq
	}
	pq := &pendingQuery{c: c}
	pq.onPkt = func(src ipv4.Addr, _ uint16, payload []byte) {
		if src != pq.srv || pq.answered {
			return
		}
		if err := ntpwire.UnmarshalInto(&pq.rx, payload); err != nil ||
			pq.rx.Mode != ntpwire.ModeServer || pq.rx.IsKoD() {
			return
		}
		pq.answered = true
		pq.timer.Stop()
		pq.c.host.UnhandleUDP(pq.port)
		rnd := pq.rnd
		rnd.offsets = append(rnd.offsets, ntpwire.Offset(&pq.rx, pq.t1, pq.c.local.Now()))
		pq.c.releaseQuery(pq)
		rnd.finish(pq.c)
	}
	pq.onExpire = func() {
		if pq.answered {
			return
		}
		pq.c.host.UnhandleUDP(pq.port)
		rnd := pq.rnd
		pq.c.releaseQuery(pq)
		rnd.finish(pq.c)
	}
	return pq
}

func (c *Client) releaseQuery(pq *pendingQuery) {
	pq.rnd = nil
	c.qFree = append(c.qFree, pq)
}

// queryServers sends one mode-3 query to each server and collects offsets;
// non-responders are skipped after a 2 s timeout.
func (c *Client) queryServers(servers []ipv4.Addr, done func([]time.Duration)) {
	if len(servers) == 0 {
		return
	}
	var rnd *roundState
	if n := len(c.rFree); n > 0 {
		rnd = c.rFree[n-1]
		c.rFree[n-1] = nil
		c.rFree = c.rFree[:n-1]
	} else {
		rnd = &roundState{}
	}
	rnd.remaining = len(servers)
	rnd.done = done
	for _, srv := range servers {
		pq := c.acquireQuery()
		pq.rnd = rnd
		pq.srv = srv
		pq.port = c.host.AllocPort()
		pq.t1 = c.local.Now()
		pq.answered = false
		if err := c.host.HandleUDP(pq.port, pq.onPkt); err != nil {
			c.releaseQuery(pq)
			rnd.finish(c)
			continue
		}
		c.clock.ScheduleInto(&pq.timer, 2*time.Second, pq.onExpire)
		q := ntpwire.ClientPacket(pq.t1)
		c.wire = q.AppendMarshal(c.wire[:0])
		if _, err := c.host.SendUDP(pq.srv, pq.port, ntpwire.Port, c.wire); err != nil {
			pq.timer.Stop()
			c.host.UnhandleUDP(pq.port)
			c.releaseQuery(pq)
			rnd.finish(c)
		}
	}
}

// finishRound applies the Chronos selection algorithm to a sample.
func (c *Client) finishRound(offsets []time.Duration) {
	if len(offsets) == 0 {
		c.Rounds = append(c.Rounds, Round{At: c.clock.Now(), Kind: RoundInconclusive})
		return
	}
	sort.Slice(offsets, func(i, j int) bool { return offsets[i] < offsets[j] })
	d := c.cfg.DiscardEach
	if len(offsets) <= 2*d {
		d = (len(offsets) - 1) / 2
	}
	surv := offsets[d : len(offsets)-d]
	spread := surv[len(surv)-1] - surv[0]
	avg := average(surv)
	if spread <= c.cfg.AgreementWindow && absDur(avg) <= c.cfg.DriftBound {
		c.local.Step(avg)
		c.Rounds = append(c.Rounds, Round{At: c.clock.Now(), Kind: RoundNormal, Applied: avg, Queried: len(offsets)})
		return
	}
	c.panicMode()
}

// panicMode queries every pool server, trims the top and bottom thirds and
// steps to the average of the middle third.
func (c *Client) panicMode() {
	c.queryServers(c.poolOrder, func(offsets []time.Duration) {
		if len(offsets) == 0 {
			c.Rounds = append(c.Rounds, Round{At: c.clock.Now(), Kind: RoundInconclusive})
			return
		}
		sort.Slice(offsets, func(i, j int) bool { return offsets[i] < offsets[j] })
		d := len(offsets) / 3
		surv := offsets[d : len(offsets)-d]
		avg := average(surv)
		c.local.Step(avg)
		c.Rounds = append(c.Rounds, Round{At: c.clock.Now(), Kind: RoundPanic, Applied: avg, Queried: len(offsets)})
	})
}

func average(ds []time.Duration) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	var sum time.Duration
	for _, d := range ds {
		sum += d
	}
	return sum / time.Duration(len(ds))
}

func absDur(d time.Duration) time.Duration {
	if d < 0 {
		return -d
	}
	return d
}

// AttackBound computes the largest number N of honest pool-generation
// queries that may complete before the poisoning lands such that the
// attacker still controls at least 2/3 of the final pool (§VI-C):
// attacker wins while 2/3·(spoofed + perQuery·N) ≤ spoofed. With the
// paper's numbers (perQuery = 4 honest addresses per response, spoofed =
// 89 addresses in one poisoned response) the bound is N = 11 — the
// attacker has 12 tries in 24 hours.
func AttackBound(perQuery, spoofed int) int {
	if perQuery <= 0 {
		return -1
	}
	// Largest N with 2·(spoofed + perQuery·N) ≤ 3·spoofed.
	n := (spoofed/2 - 1) / perQuery
	for 2*(spoofed+perQuery*(n+1)) <= 3*spoofed {
		n++
	}
	for n >= 0 && 2*(spoofed+perQuery*n) > 3*spoofed {
		n--
	}
	return n
}

// ControlsPool reports whether `attacker` servers out of `total` meet the
// 2/3 control condition under which Chronos's guarantee vanishes.
func ControlsPool(attacker, total int) bool {
	return 3*attacker >= 2*total
}
