package chronos

import (
	"context"
	"fmt"

	"dnstime/internal/scenario"
)

// The analytic §VI-C attack bound registers itself with the scenario
// registry; the full Chronos attack run is registered by internal/core
// (which wires the lab this package's client runs inside).
func init() {
	scenario.Register(scenario.Scenario{
		Name:     "chronosbound",
		Title:    "Chronos attack bound sweep",
		PaperRef: "§VI-C",
		Impl:     "chronos.AttackBound",
		CLI:      "experiments campaigns -only chronosbound",
		Params:   map[string]string{"per_query": "4", "spoofed": "20,45,89,120"},
		Order:    61,
		Run:      boundScenario,
	})
}

// boundScenario sweeps the tolerable-N bound across the response
// capacities of DESIGN.md §5's ablation (the paper's headline cell is
// spoofed=89 → N ≤ 11). Closed form, so seed-independent.
func boundScenario(context.Context, int64, scenario.Config) (scenario.Result, error) {
	metrics := make(map[string]float64, 4)
	for _, spoofed := range []int{20, 45, 89, 120} {
		metrics[fmt.Sprintf("max_n/spoofed=%d", spoofed)] = float64(AttackBound(4, spoofed))
	}
	return scenario.Result{Metrics: metrics}, nil
}
