package chronos

import (
	"testing"
	"time"

	"dnstime/internal/dnsauth"
	"dnstime/internal/dnsres"
	"dnstime/internal/ipv4"
	"dnstime/internal/ntpserv"
	"dnstime/internal/simclock"
	"dnstime/internal/simnet"
)

var (
	t0      = time.Date(2020, 1, 1, 0, 0, 0, 0, time.UTC)
	nsAddr  = ipv4.MustParseAddr("198.51.100.53")
	resAddr = ipv4.MustParseAddr("192.0.2.53")
)

type lab struct {
	t      *testing.T
	clk    *simclock.Clock
	net    *simnet.Network
	auth   *dnsauth.Server
	res    *dnsres.Resolver
	hAddrs []ipv4.Addr
	eAddrs []ipv4.Addr
	next   byte
}

func newLab(t *testing.T, honest int) *lab {
	t.Helper()
	clk := simclock.New(t0)
	n := simnet.New(clk)
	authHost := n.MustAddHost(nsAddr, simnet.HostConfig{})
	auth, err := dnsauth.New(authHost, dnsauth.Config{})
	if err != nil {
		t.Fatal(err)
	}
	resHost := n.MustAddHost(resAddr, simnet.HostConfig{})
	res, err := dnsres.New(resHost, dnsres.Config{Delegations: map[string]ipv4.Addr{"ntp.org": nsAddr}})
	if err != nil {
		t.Fatal(err)
	}
	l := &lab{t: t, clk: clk, net: n, auth: auth, res: res, next: 1}
	for i := 0; i < honest; i++ {
		addr := ipv4.Addr{10, 0, byte(i >> 8), byte(i)}
		h := n.MustAddHost(addr, simnet.HostConfig{})
		if _, err := ntpserv.New(h, ntpserv.Config{}); err != nil {
			t.Fatal(err)
		}
		l.hAddrs = append(l.hAddrs, addr)
	}
	l.auth.AddPool(&dnsauth.Pool{Name: "pool.ntp.org", Addrs: l.hAddrs, PerResponse: 4, TTL: 150})
	return l
}

func (l *lab) addEvil(count int, offset time.Duration) {
	for i := 0; i < count; i++ {
		addr := ipv4.Addr{6, 6, byte(i >> 8), byte(i)}
		h := l.net.MustAddHost(addr, simnet.HostConfig{})
		if _, err := ntpserv.New(h, ntpserv.Config{Offset: offset}); err != nil {
			l.t.Fatal(err)
		}
		l.eAddrs = append(l.eAddrs, addr)
	}
}

func (l *lab) client(cfg Config) *Client {
	host := l.net.MustAddHost(ipv4.MustParseAddr("192.0.2.99"), simnet.HostConfig{})
	return New(host, cfg, resAddr, 0)
}

func TestPoolGenerationUnionsHourlyQueries(t *testing.T) {
	l := newLab(t, 40)
	c := l.client(Config{Seed: 1})
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	l.clk.RunFor(24*time.Hour + time.Minute)
	// 24 queries × 4 fresh addresses each (rotating through 40 servers):
	// the pool converges to the whole population.
	if got := c.PoolSize(); got != 40 {
		t.Errorf("pool size = %d, want 40", got)
	}
	if c.PoolQueries < 20 {
		t.Errorf("pool queries = %d, want ≈24", c.PoolQueries)
	}
}

func TestPoolStopsGrowingAfter24Queries(t *testing.T) {
	l := newLab(t, 40)
	c := l.client(Config{Seed: 1})
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	l.clk.RunFor(30 * time.Hour)
	q := c.PoolQueries
	l.clk.RunFor(10 * time.Hour)
	if c.PoolQueries != q {
		t.Errorf("pool queries grew past 24: %d -> %d", q, c.PoolQueries)
	}
}

func TestHonestPoolKeepsClockCorrect(t *testing.T) {
	l := newLab(t, 30)
	c := l.client(Config{Seed: 2})
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	l.clk.RunFor(6 * time.Hour)
	if off := absDur(c.ClockOffset()); off > 100*time.Millisecond {
		t.Errorf("offset = %v with honest pool, want ≈0", c.ClockOffset())
	}
	// Rounds should be normal, not panic.
	var panics int
	for _, r := range c.Rounds {
		if r.Kind == RoundPanic {
			panics++
		}
	}
	if panics > len(c.Rounds)/4 {
		t.Errorf("%d/%d rounds panicked with an honest pool", panics, len(c.Rounds))
	}
}

func TestMinorityAttackerCannotShift(t *testing.T) {
	// Attacker controls < 2/3 of the pool: Chronos holds (its design
	// guarantee, which the DNS attack bypasses rather than breaks).
	l := newLab(t, 60)
	l.addEvil(20, -500*time.Second)
	mixed := append(append([]ipv4.Addr(nil), l.hAddrs...), l.eAddrs...)
	l.auth.AddPool(&dnsauth.Pool{Name: "pool.ntp.org", Addrs: mixed, PerResponse: 4, TTL: 150})
	c := l.client(Config{Seed: 3})
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	l.clk.RunFor(26 * time.Hour)
	if off := absDur(c.ClockOffset()); off > time.Second {
		t.Errorf("offset = %v with minority attacker, want ≈0", c.ClockOffset())
	}
}

func TestTwoThirdsAttackerShiftsViaPanic(t *testing.T) {
	// Attacker controls ≥ 2/3 of the pool (the post-poisoning situation):
	// the panic-mode middle third is attacker-only and the clock shifts.
	l := newLab(t, 10)
	l.addEvil(89, -500*time.Second)
	mixed := append(append([]ipv4.Addr(nil), l.hAddrs...), l.eAddrs...)
	l.auth.AddPool(&dnsauth.Pool{Name: "pool.ntp.org", Addrs: mixed, PerResponse: len(mixed), TTL: 150})
	c := l.client(Config{Seed: 4})
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	l.clk.RunFor(2 * time.Hour)
	off := c.ClockOffset()
	if off > -499*time.Second || off < -501*time.Second {
		t.Errorf("offset = %v, want ≈ −500 s with 2/3 pool control", off)
	}
	var sawPanic bool
	for _, r := range c.Rounds {
		if r.Kind == RoundPanic {
			sawPanic = true
		}
	}
	if !sawPanic {
		t.Error("no panic round recorded during the shift")
	}
}

func TestAttackBoundMatchesPaper(t *testing.T) {
	// §VI-C: 2/3·(89+4N) ≤ 89 ⇒ N ≤ 11.
	if got := AttackBound(4, 89); got != 11 {
		t.Errorf("AttackBound(4, 89) = %d, want 11", got)
	}
}

func TestAttackBoundTable(t *testing.T) {
	tests := []struct {
		perQuery, spoofed, want int
	}{
		{4, 89, 11},
		{4, 30, 3}, // 2(30+4N)≤90 ⇒ N ≤ 3.75
		{8, 89, 5}, // 2(89+8N)≤267 ⇒ N ≤ 5.5
		{4, 8, 1},  // 2(8+4N)≤24 ⇒ N ≤ 1
		{4, 2, 0},  // one spoofed pair still beats zero honest queries
	}
	for _, tt := range tests {
		if got := AttackBound(tt.perQuery, tt.spoofed); got != tt.want {
			t.Errorf("AttackBound(%d,%d) = %d, want %d", tt.perQuery, tt.spoofed, got, tt.want)
		}
	}
}

func TestAttackBoundConsistentWithControlsPool(t *testing.T) {
	for perQuery := 1; perQuery <= 8; perQuery++ {
		for spoofed := 1; spoofed <= 120; spoofed++ {
			n := AttackBound(perQuery, spoofed)
			if n >= 0 && !ControlsPool(spoofed, spoofed+perQuery*n) {
				t.Fatalf("AttackBound(%d,%d)=%d does not control pool", perQuery, spoofed, n)
			}
			if ControlsPool(spoofed, spoofed+perQuery*(n+1)) {
				t.Fatalf("AttackBound(%d,%d)=%d is not maximal", perQuery, spoofed, n)
			}
		}
	}
}

func TestControlsPool(t *testing.T) {
	if !ControlsPool(2, 3) || !ControlsPool(89, 133) {
		t.Error("2/3 control not recognised")
	}
	if ControlsPool(1, 2) || ControlsPool(89, 134) {
		t.Error("sub-2/3 control misclassified")
	}
}

func TestRoundKindString(t *testing.T) {
	for _, k := range []RoundKind{RoundNormal, RoundPanic, RoundInconclusive, RoundKind(9)} {
		if k.String() == "" {
			t.Errorf("empty string for %d", k)
		}
	}
}
