// Package dnswire implements the DNS message wire format (RFC 1035): the
// 12-byte header with its challenge-response TXID, questions, and resource
// records with name compression. The encoding is byte-accurate so that
// response sizes, fragmentation points and checksum arithmetic in the
// poisoning attack behave as they do on the wire.
package dnswire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"strings"
	"sync"

	"dnstime/internal/ipv4"
)

// Type is a DNS RR type.
type Type uint16

// RR types used in the simulation.
const (
	TypeA     Type = 1
	TypeNS    Type = 2
	TypeCNAME Type = 5
	TypeSOA   Type = 6
	TypeTXT   Type = 16
	TypeRRSIG Type = 46
)

// String names the type.
func (t Type) String() string {
	switch t {
	case TypeA:
		return "A"
	case TypeNS:
		return "NS"
	case TypeCNAME:
		return "CNAME"
	case TypeSOA:
		return "SOA"
	case TypeTXT:
		return "TXT"
	case TypeRRSIG:
		return "RRSIG"
	default:
		return fmt.Sprintf("TYPE%d", uint16(t))
	}
}

// Class is a DNS class; only IN is used.
type Class uint16

// ClassIN is the Internet class.
const ClassIN Class = 1

// RCode is a DNS response code.
type RCode uint8

// Response codes.
const (
	RCodeNoError  RCode = 0
	RCodeFormErr  RCode = 1
	RCodeServFail RCode = 2
	RCodeNXDomain RCode = 3
	RCodeRefused  RCode = 5
)

// Header is the DNS message header. ID is the 16-bit transaction identifier
// (TXID) — one half of the challenge-response defence the fragmentation
// attack bypasses.
type Header struct {
	ID     uint16
	QR     bool // response
	Opcode uint8
	AA     bool // authoritative answer
	TC     bool // truncated
	RD     bool // recursion desired
	RA     bool // recursion available
	AD     bool // authentic data (DNSSEC validated)
	RCode  RCode
}

// Question is a DNS question.
type Question struct {
	Name  string
	Type  Type
	Class Class
}

// RR is a resource record. The payload field used depends on Type:
// A uses Addr; NS and CNAME use Target; TXT uses Text; anything else
// round-trips through Raw.
type RR struct {
	Name  string
	Type  Type
	Class Class
	TTL   uint32

	Addr   ipv4.Addr // TypeA
	Target string    // TypeNS, TypeCNAME
	Text   string    // TypeTXT
	Raw    []byte    // other types (e.g. TypeRRSIG)
}

// String renders the record in zone-file-like form.
func (r RR) String() string {
	switch r.Type {
	case TypeA:
		return fmt.Sprintf("%s %d IN A %s", r.Name, r.TTL, r.Addr)
	case TypeNS, TypeCNAME:
		return fmt.Sprintf("%s %d IN %s %s", r.Name, r.TTL, r.Type, r.Target)
	case TypeTXT:
		return fmt.Sprintf("%s %d IN TXT %q", r.Name, r.TTL, r.Text)
	default:
		return fmt.Sprintf("%s %d IN %s [%d bytes]", r.Name, r.TTL, r.Type, len(r.Raw))
	}
}

// Message is a complete DNS message.
type Message struct {
	Header     Header
	Questions  []Question
	Answers    []RR
	Authority  []RR
	Additional []RR
}

// Errors returned by decoding.
var (
	ErrShortMessage = errors.New("dnswire: truncated message")
	ErrBadName      = errors.New("dnswire: malformed name")
	ErrBadPointer   = errors.New("dnswire: compression pointer loop")
)

// CanonicalName lowercases a name and strips any trailing dot; the root is
// the empty string.
func CanonicalName(name string) string {
	return strings.TrimSuffix(strings.ToLower(name), ".")
}

// header flag bit masks (within the 16-bit flags word).
const (
	flagQR = 1 << 15
	flagAA = 1 << 10
	flagTC = 1 << 9
	flagRD = 1 << 8
	flagRA = 1 << 7
	flagAD = 1 << 5
)

// nameOffset records one encoded name suffix for RFC 1035 compression. A
// message carries only a handful of distinct suffixes, so a linear table
// beats a map: no hashing, and reset is a reslice.
type nameOffset struct {
	name string
	off  int
}

type encoder struct {
	buf     []byte
	base    int          // message start within buf (AppendMarshal may append)
	offsets []nameOffset // name -> first encoded offset, for compression
}

// lookup returns the first encoded offset of name, if any.
func (e *encoder) lookup(name string) (int, bool) {
	for i := range e.offsets {
		if e.offsets[i].name == name {
			return e.offsets[i].off, true
		}
	}
	return 0, false
}

// encoderPool recycles encoder compression state across Marshal calls; the
// resolver/nameserver hot paths encode thousands of messages per simulated
// campaign and the compression state dominated their allocation profile.
var encoderPool = sync.Pool{
	New: func() any { return &encoder{} },
}

func (e *encoder) uint16(v uint16) {
	var b [2]byte
	binary.BigEndian.PutUint16(b[:], v)
	e.buf = append(e.buf, b[:]...)
}

func (e *encoder) uint32(v uint32) {
	var b [4]byte
	binary.BigEndian.PutUint32(b[:], v)
	e.buf = append(e.buf, b[:]...)
}

// name encodes a domain name with RFC 1035 §4.1.4 compression.
func (e *encoder) name(n string) error {
	n = CanonicalName(n)
	for n != "" {
		if off, ok := e.lookup(n); ok && off < 0x4000 {
			e.uint16(uint16(0xC000 | off))
			return nil
		}
		if off := len(e.buf) - e.base; off < 0x4000 {
			e.offsets = append(e.offsets, nameOffset{n, off})
		}
		label := n
		rest := ""
		if i := strings.IndexByte(n, '.'); i >= 0 {
			label, rest = n[:i], n[i+1:]
		}
		if len(label) == 0 || len(label) > 63 {
			return fmt.Errorf("%w: label %q", ErrBadName, label)
		}
		e.buf = append(e.buf, byte(len(label)))
		e.buf = append(e.buf, label...)
		n = rest
	}
	e.buf = append(e.buf, 0)
	return nil
}

func (e *encoder) rr(r RR) error {
	if err := e.name(r.Name); err != nil {
		return err
	}
	e.uint16(uint16(r.Type))
	cl := r.Class
	if cl == 0 {
		cl = ClassIN
	}
	e.uint16(uint16(cl))
	e.uint32(r.TTL)
	// RDLENGTH placeholder.
	lenAt := len(e.buf)
	e.uint16(0)
	start := len(e.buf)
	switch r.Type {
	case TypeA:
		e.buf = append(e.buf, r.Addr[:]...)
	case TypeNS, TypeCNAME:
		if err := e.name(r.Target); err != nil {
			return err
		}
	case TypeTXT:
		txt := r.Text
		for len(txt) > 255 {
			e.buf = append(e.buf, 255)
			e.buf = append(e.buf, txt[:255]...)
			txt = txt[255:]
		}
		e.buf = append(e.buf, byte(len(txt)))
		e.buf = append(e.buf, txt...)
	default:
		e.buf = append(e.buf, r.Raw...)
	}
	binary.BigEndian.PutUint16(e.buf[lenAt:lenAt+2], uint16(len(e.buf)-start))
	return nil
}

// Marshal encodes the message to wire format.
func (m *Message) Marshal() ([]byte, error) {
	b, err := m.AppendMarshal(nil)
	if err != nil {
		return nil, err
	}
	return b, nil
}

// AppendMarshal encodes the message to wire format, appending to dst and
// returning the extended slice. Name-compression state comes from an
// internal pool, so encoding into a reused caller buffer allocates nothing
// beyond the buffer's own growth — the send hot path of the resolver and
// nameserver.
func (m *Message) AppendMarshal(dst []byte) ([]byte, error) {
	e, _ := encoderPool.Get().(*encoder)
	e.buf = dst
	e.base = len(dst)
	out, err := e.message(m)
	e.buf = nil
	e.offsets = e.offsets[:0]
	encoderPool.Put(e)
	return out, err
}

func (e *encoder) message(m *Message) ([]byte, error) {
	e.uint16(m.Header.ID)
	var flags uint16
	if m.Header.QR {
		flags |= flagQR
	}
	flags |= uint16(m.Header.Opcode&0xF) << 11
	if m.Header.AA {
		flags |= flagAA
	}
	if m.Header.TC {
		flags |= flagTC
	}
	if m.Header.RD {
		flags |= flagRD
	}
	if m.Header.RA {
		flags |= flagRA
	}
	if m.Header.AD {
		flags |= flagAD
	}
	flags |= uint16(m.Header.RCode) & 0xF
	e.uint16(flags)
	e.uint16(uint16(len(m.Questions)))
	e.uint16(uint16(len(m.Answers)))
	e.uint16(uint16(len(m.Authority)))
	e.uint16(uint16(len(m.Additional)))
	for _, q := range m.Questions {
		if err := e.name(q.Name); err != nil {
			return nil, err
		}
		e.uint16(uint16(q.Type))
		cl := q.Class
		if cl == 0 {
			cl = ClassIN
		}
		e.uint16(uint16(cl))
	}
	for _, sec := range [][]RR{m.Answers, m.Authority, m.Additional} {
		for _, r := range sec {
			if err := e.rr(r); err != nil {
				return nil, err
			}
		}
	}
	return e.buf, nil
}

type decoder struct {
	buf     []byte
	pos     int
	nameBuf []byte            // scratch the current name is assembled into
	intern  map[string]string // optional name intern table (Decoder only)
}

// maxInterned bounds a Decoder's intern table; past it, new names are
// still decoded correctly, just not retained.
const maxInterned = 4096

func (d *decoder) uint16() (uint16, error) {
	if d.pos+2 > len(d.buf) {
		return 0, ErrShortMessage
	}
	v := binary.BigEndian.Uint16(d.buf[d.pos:])
	d.pos += 2
	return v, nil
}

func (d *decoder) uint32() (uint32, error) {
	if d.pos+4 > len(d.buf) {
		return 0, ErrShortMessage
	}
	v := binary.BigEndian.Uint32(d.buf[d.pos:])
	d.pos += 4
	return v, nil
}

// name decodes a possibly-compressed domain name starting at d.pos. The
// name is assembled lowercased into the decoder's scratch buffer and
// interned when the decoder carries an intern table, so repeated names
// decode without allocating. Lowercasing is ASCII-only — exactly the
// case-insensitivity DNS defines (RFC 4343).
func (d *decoder) name() (string, error) {
	d.nameBuf = d.nameBuf[:0]
	pos := d.pos
	jumped := false
	hops := 0
	for {
		if pos >= len(d.buf) {
			return "", ErrShortMessage
		}
		c := d.buf[pos]
		switch {
		case c == 0:
			if !jumped {
				d.pos = pos + 1
			}
			return d.internName(), nil
		case c&0xC0 == 0xC0:
			if pos+2 > len(d.buf) {
				return "", ErrShortMessage
			}
			if hops++; hops > 32 {
				return "", ErrBadPointer
			}
			target := int(binary.BigEndian.Uint16(d.buf[pos:]) & 0x3FFF)
			if !jumped {
				d.pos = pos + 2
				jumped = true
			}
			if target >= pos {
				return "", ErrBadPointer
			}
			pos = target
		case c&0xC0 != 0:
			return "", ErrBadName
		default:
			if pos+1+int(c) > len(d.buf) {
				return "", ErrShortMessage
			}
			if len(d.nameBuf) > 0 {
				d.nameBuf = append(d.nameBuf, '.')
			}
			for _, ch := range d.buf[pos+1 : pos+1+int(c)] {
				if 'A' <= ch && ch <= 'Z' {
					ch += 'a' - 'A'
				}
				d.nameBuf = append(d.nameBuf, ch)
			}
			pos += 1 + int(c)
			if !jumped {
				d.pos = pos
			}
		}
	}
}

// internName materialises the scratch buffer as a string, sharing one
// immutable copy per distinct name when an intern table is present (the
// map lookup with a byte-slice key does not allocate).
func (d *decoder) internName() string {
	if len(d.nameBuf) == 0 {
		return ""
	}
	if s, ok := d.intern[string(d.nameBuf)]; ok {
		return s
	}
	s := string(d.nameBuf)
	if d.intern != nil && len(d.intern) < maxInterned {
		d.intern[s] = s
	}
	return s
}

func (d *decoder) rr() (RR, error) {
	var r RR
	name, err := d.name()
	if err != nil {
		return r, err
	}
	r.Name = name
	t, err := d.uint16()
	if err != nil {
		return r, err
	}
	r.Type = Type(t)
	cl, err := d.uint16()
	if err != nil {
		return r, err
	}
	r.Class = Class(cl)
	ttl, err := d.uint32()
	if err != nil {
		return r, err
	}
	r.TTL = ttl
	rdlen, err := d.uint16()
	if err != nil {
		return r, err
	}
	if d.pos+int(rdlen) > len(d.buf) {
		return r, ErrShortMessage
	}
	end := d.pos + int(rdlen)
	switch r.Type {
	case TypeA:
		if rdlen != 4 {
			return r, fmt.Errorf("dnswire: A rdlength %d", rdlen)
		}
		copy(r.Addr[:], d.buf[d.pos:end])
		d.pos = end
	case TypeNS, TypeCNAME:
		target, err := d.name()
		if err != nil {
			return r, err
		}
		r.Target = target
		d.pos = end
	case TypeTXT:
		// Reuse the name scratch (the record's name is already
		// materialised) and the intern table: snooping scans decode the
		// same handful of TXT payloads thousands of times per campaign.
		d.nameBuf = d.nameBuf[:0]
		for p := d.pos; p < end; {
			l := int(d.buf[p])
			if p+1+l > end {
				return r, ErrShortMessage
			}
			d.nameBuf = append(d.nameBuf, d.buf[p+1:p+1+l]...)
			p += 1 + l
		}
		r.Text = d.internName()
		d.pos = end
	default:
		r.Raw = append([]byte(nil), d.buf[d.pos:end]...)
		d.pos = end
	}
	return r, nil
}

// Unmarshal decodes a wire-format DNS message.
func Unmarshal(b []byte) (*Message, error) {
	var d decoder
	d.buf = b
	m := &Message{}
	if err := d.message(m); err != nil {
		return nil, err
	}
	return m, nil
}

// Decoder decodes wire-format messages with reusable state: the
// destination Message's section slices are recycled and decoded names are
// interned, so a warm Decoder on a hot path allocates only for
// never-before-seen names and non-A rdata. Decoded strings are shared
// immutable interned copies and each record's Raw is freshly allocated, so
// callers may retain individual Questions/RR values — but not the section
// slices themselves, which the next UnmarshalInto overwrites. A Decoder is
// not safe for concurrent use.
type Decoder struct {
	d decoder
}

// UnmarshalInto decodes b into m, replacing m's previous contents and
// reusing its section slices' capacity. On error m holds partially decoded
// data and must not be used.
func (dc *Decoder) UnmarshalInto(m *Message, b []byte) error {
	if dc.d.intern == nil {
		dc.d.intern = make(map[string]string)
	}
	dc.d.buf, dc.d.pos = b, 0
	err := dc.d.message(m)
	dc.d.buf = nil // do not retain the caller's wire buffer between calls
	return err
}

// message decodes the whole message into m, truncating and reusing m's
// section slices.
func (d *decoder) message(m *Message) error {
	if len(d.buf) < 12 {
		return ErrShortMessage
	}
	id, _ := d.uint16()
	flags, _ := d.uint16()
	m.Header = Header{
		ID:     id,
		QR:     flags&flagQR != 0,
		Opcode: uint8(flags >> 11 & 0xF),
		AA:     flags&flagAA != 0,
		TC:     flags&flagTC != 0,
		RD:     flags&flagRD != 0,
		RA:     flags&flagRA != 0,
		AD:     flags&flagAD != 0,
		RCode:  RCode(flags & 0xF),
	}
	qd, _ := d.uint16()
	an, _ := d.uint16()
	ns, _ := d.uint16()
	ar, err := d.uint16()
	if err != nil {
		return err
	}
	m.Questions = m.Questions[:0]
	for i := 0; i < int(qd); i++ {
		name, err := d.name()
		if err != nil {
			return err
		}
		t, err := d.uint16()
		if err != nil {
			return err
		}
		cl, err := d.uint16()
		if err != nil {
			return err
		}
		m.Questions = append(m.Questions, Question{Name: name, Type: Type(t), Class: Class(cl)})
	}
	m.Answers, m.Authority, m.Additional = m.Answers[:0], m.Authority[:0], m.Additional[:0]
	for i := 0; i < int(an); i++ {
		r, err := d.rr()
		if err != nil {
			return err
		}
		m.Answers = append(m.Answers, r)
	}
	for i := 0; i < int(ns); i++ {
		r, err := d.rr()
		if err != nil {
			return err
		}
		m.Authority = append(m.Authority, r)
	}
	for i := 0; i < int(ar); i++ {
		r, err := d.rr()
		if err != nil {
			return err
		}
		m.Additional = append(m.Additional, r)
	}
	return nil
}

// NewQuery builds a standard recursive query for (name, type).
func NewQuery(id uint16, name string, t Type, rd bool) *Message {
	return &Message{
		Header:    Header{ID: id, RD: rd},
		Questions: []Question{{Name: CanonicalName(name), Type: t, Class: ClassIN}},
	}
}

// NewResponse builds a response skeleton matching a query.
func NewResponse(q *Message) *Message {
	r := &Message{Header: Header{ID: q.Header.ID, QR: true, RD: q.Header.RD}}
	r.Questions = append(r.Questions, q.Questions...)
	return r
}

// AddrsInAnswer extracts the A-record addresses from the answer section for
// the given (canonicalised) name, following at most one CNAME hop.
func (m *Message) AddrsInAnswer(name string) []ipv4.Addr {
	name = CanonicalName(name)
	target := name
	for _, rr := range m.Answers {
		if rr.Type == TypeCNAME && CanonicalName(rr.Name) == target {
			target = CanonicalName(rr.Target)
		}
	}
	var out []ipv4.Addr
	for _, rr := range m.Answers {
		if rr.Type == TypeA && (CanonicalName(rr.Name) == name || CanonicalName(rr.Name) == target) {
			out = append(out, rr.Addr)
		}
	}
	return out
}

// MaxARecords reports how many A records for name fit in a response of at
// most maxSize bytes (a single question, name compression in effect). This
// is the bound behind the paper's "up to 89 addresses in a single
// non-fragmented UDP response" (Section VI-C).
func MaxARecords(name string, maxSize int) int {
	m := &Message{
		Header:    Header{QR: true},
		Questions: []Question{{Name: name, Type: TypeA, Class: ClassIN}},
	}
	n := 0
	for {
		m.Answers = append(m.Answers, RR{
			Name: name, Type: TypeA, Class: ClassIN, TTL: 86400 * 2,
			Addr: ipv4.Addr{6, 6, byte(n >> 8), byte(n)},
		})
		b, err := m.Marshal()
		if err != nil || len(b) > maxSize {
			return n
		}
		n++
	}
}
