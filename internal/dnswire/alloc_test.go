package dnswire

import (
	"testing"

	"dnstime/internal/ipv4"
)

// Committed allocation budgets for the wire hot path. The campaign engine
// encodes and decodes millions of DNS messages per campaign through reused
// buffers and scratch messages; these gates pin the "allocates nothing once
// warm" contract so a refactor cannot silently reintroduce per-message
// garbage.
const (
	allocBudgetEncode = 0 // AppendMarshal into a reused buffer
	allocBudgetDecode = 0 // Decoder.UnmarshalInto with a warm intern table
)

func TestAllocBudgetEncodeDecode(t *testing.T) {
	m := NewQuery(0x1234, "pool.ntp.org", TypeA, true)
	m.Answers = append(m.Answers, RR{
		Name: "pool.ntp.org", Type: TypeA, Class: ClassIN, TTL: 150,
		Addr: ipv4.MustParseAddr("192.0.2.1"),
	})
	wire, err := m.Marshal()
	if err != nil {
		t.Fatal(err)
	}

	var buf []byte
	encAvg := testing.AllocsPerRun(200, func() {
		var err error
		buf, err = m.AppendMarshal(buf[:0])
		if err != nil {
			t.Fatal(err)
		}
	})
	if encAvg > allocBudgetEncode {
		t.Errorf("encode: %.1f allocs per AppendMarshal into reused buffer, budget %d", encAvg, allocBudgetEncode)
	}

	var dec Decoder
	var rx Message
	// Warm the decoder's name-intern table before measuring.
	if err := dec.UnmarshalInto(&rx, wire); err != nil {
		t.Fatal(err)
	}
	decAvg := testing.AllocsPerRun(200, func() {
		if err := dec.UnmarshalInto(&rx, wire); err != nil {
			t.Fatal(err)
		}
	})
	if decAvg > allocBudgetDecode {
		t.Errorf("decode: %.1f allocs per UnmarshalInto with warm intern table, budget %d", decAvg, allocBudgetDecode)
	}
}
