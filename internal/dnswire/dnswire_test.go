package dnswire

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"

	"dnstime/internal/ipv4"
)

func TestQueryRoundTrip(t *testing.T) {
	q := NewQuery(0x1234, "pool.NTP.org.", TypeA, true)
	b, err := q.Marshal()
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	got, err := Unmarshal(b)
	if err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	if got.Header.ID != 0x1234 || got.Header.QR || !got.Header.RD {
		t.Errorf("header = %+v", got.Header)
	}
	if len(got.Questions) != 1 {
		t.Fatalf("questions = %d", len(got.Questions))
	}
	if got.Questions[0].Name != "pool.ntp.org" {
		t.Errorf("name = %q, want canonical pool.ntp.org", got.Questions[0].Name)
	}
	if got.Questions[0].Type != TypeA || got.Questions[0].Class != ClassIN {
		t.Errorf("question = %+v", got.Questions[0])
	}
}

func TestResponseRoundTripAllSections(t *testing.T) {
	q := NewQuery(7, "pool.ntp.org", TypeA, true)
	r := NewResponse(q)
	r.Header.AA = true
	r.Header.RA = true
	r.Answers = []RR{
		{Name: "pool.ntp.org", Type: TypeA, TTL: 150, Addr: ipv4.Addr{1, 2, 3, 4}},
		{Name: "pool.ntp.org", Type: TypeA, TTL: 150, Addr: ipv4.Addr{5, 6, 7, 8}},
	}
	r.Authority = []RR{
		{Name: "ntp.org", Type: TypeNS, TTL: 3600, Target: "ns1.ntp.org"},
	}
	r.Additional = []RR{
		{Name: "ns1.ntp.org", Type: TypeA, TTL: 3600, Addr: ipv4.Addr{9, 9, 9, 9}},
	}
	b, err := r.Marshal()
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	got, err := Unmarshal(b)
	if err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	if !got.Header.QR || !got.Header.AA || !got.Header.RA {
		t.Errorf("header flags = %+v", got.Header)
	}
	if len(got.Answers) != 2 || len(got.Authority) != 1 || len(got.Additional) != 1 {
		t.Fatalf("sections = %d/%d/%d", len(got.Answers), len(got.Authority), len(got.Additional))
	}
	if got.Answers[1].Addr != (ipv4.Addr{5, 6, 7, 8}) {
		t.Errorf("answer[1] = %+v", got.Answers[1])
	}
	if got.Authority[0].Target != "ns1.ntp.org" {
		t.Errorf("authority target = %q", got.Authority[0].Target)
	}
	if got.Answers[0].TTL != 150 {
		t.Errorf("TTL = %d", got.Answers[0].TTL)
	}
}

func TestNameCompressionShrinksMessage(t *testing.T) {
	mk := func(n int) int {
		m := &Message{Header: Header{QR: true}, Questions: []Question{{Name: "pool.ntp.org", Type: TypeA, Class: ClassIN}}}
		for i := 0; i < n; i++ {
			m.Answers = append(m.Answers, RR{Name: "pool.ntp.org", Type: TypeA, TTL: 150, Addr: ipv4.Addr{byte(i), 0, 0, 1}})
		}
		b, err := m.Marshal()
		if err != nil {
			t.Fatalf("Marshal: %v", err)
		}
		return len(b)
	}
	one, two := mk(1), mk(2)
	perRecord := two - one
	// A compressed A record is a 2-byte pointer + type/class/ttl/rdlen (10) + 4.
	if perRecord != 16 {
		t.Errorf("per-record size = %d, want 16 (compressed)", perRecord)
	}
}

func TestCompressedNamesDecode(t *testing.T) {
	m := &Message{
		Header:    Header{QR: true},
		Questions: []Question{{Name: "0.pool.ntp.org", Type: TypeA, Class: ClassIN}},
		Answers: []RR{
			{Name: "0.pool.ntp.org", Type: TypeCNAME, TTL: 60, Target: "pool.ntp.org"},
			{Name: "pool.ntp.org", Type: TypeA, TTL: 150, Addr: ipv4.Addr{1, 1, 1, 1}},
		},
	}
	b, err := m.Marshal()
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	got, err := Unmarshal(b)
	if err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	if got.Answers[0].Target != "pool.ntp.org" {
		t.Errorf("CNAME target = %q", got.Answers[0].Target)
	}
	if got.Answers[1].Name != "pool.ntp.org" {
		t.Errorf("answer name = %q", got.Answers[1].Name)
	}
}

func TestTXTRoundTrip(t *testing.T) {
	long := strings.Repeat("x", 300) // forces two character-strings
	m := &Message{Header: Header{QR: true}, Answers: []RR{{Name: "t.example", Type: TypeTXT, TTL: 1, Text: long}}}
	b, err := m.Marshal()
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	got, err := Unmarshal(b)
	if err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	if got.Answers[0].Text != long {
		t.Errorf("TXT length = %d, want %d", len(got.Answers[0].Text), len(long))
	}
}

func TestRawTypeRoundTrip(t *testing.T) {
	raw := []byte{1, 2, 3, 4, 5}
	m := &Message{Header: Header{QR: true}, Answers: []RR{{Name: "s.example", Type: TypeRRSIG, TTL: 1, Raw: raw}}}
	b, err := m.Marshal()
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	got, err := Unmarshal(b)
	if err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	if string(got.Answers[0].Raw) != string(raw) {
		t.Errorf("raw = %v", got.Answers[0].Raw)
	}
}

func TestUnmarshalShort(t *testing.T) {
	if _, err := Unmarshal([]byte{1, 2, 3}); !errors.Is(err, ErrShortMessage) {
		t.Errorf("err = %v, want ErrShortMessage", err)
	}
}

func TestUnmarshalTruncatedRR(t *testing.T) {
	q := NewQuery(1, "a.example", TypeA, true)
	r := NewResponse(q)
	r.Answers = []RR{{Name: "a.example", Type: TypeA, TTL: 1, Addr: ipv4.Addr{1, 2, 3, 4}}}
	b, _ := r.Marshal()
	if _, err := Unmarshal(b[:len(b)-2]); err == nil {
		t.Error("truncated message decoded without error")
	}
}

func TestPointerLoopRejected(t *testing.T) {
	// Hand-craft a message whose question name is a pointer to itself.
	b := make([]byte, 16)
	b[5] = 1 // QDCOUNT = 1
	// name at offset 12: pointer to offset 12.
	b[12] = 0xC0
	b[13] = 12
	if _, err := Unmarshal(b); err == nil {
		t.Error("self-pointing name decoded without error")
	}
}

func TestLabelTooLongRejected(t *testing.T) {
	m := NewQuery(1, strings.Repeat("a", 64)+".example", TypeA, true)
	if _, err := m.Marshal(); !errors.Is(err, ErrBadName) {
		t.Errorf("err = %v, want ErrBadName", err)
	}
}

func TestCanonicalName(t *testing.T) {
	tests := []struct{ in, want string }{
		{"Pool.NTP.Org.", "pool.ntp.org"},
		{"pool.ntp.org", "pool.ntp.org"},
		{".", ""},
		{"", ""},
	}
	for _, tt := range tests {
		if got := CanonicalName(tt.in); got != tt.want {
			t.Errorf("CanonicalName(%q) = %q, want %q", tt.in, got, tt.want)
		}
	}
}

func TestAddrsInAnswer(t *testing.T) {
	m := &Message{Answers: []RR{
		{Name: "pool.ntp.org", Type: TypeA, Addr: ipv4.Addr{1, 1, 1, 1}},
		{Name: "other.org", Type: TypeA, Addr: ipv4.Addr{9, 9, 9, 9}},
		{Name: "pool.ntp.org", Type: TypeA, Addr: ipv4.Addr{2, 2, 2, 2}},
	}}
	got := m.AddrsInAnswer("POOL.ntp.org")
	if len(got) != 2 || got[0] != (ipv4.Addr{1, 1, 1, 1}) || got[1] != (ipv4.Addr{2, 2, 2, 2}) {
		t.Errorf("AddrsInAnswer = %v", got)
	}
}

func TestAddrsInAnswerFollowsCNAME(t *testing.T) {
	m := &Message{Answers: []RR{
		{Name: "www.example", Type: TypeCNAME, Target: "host.example"},
		{Name: "host.example", Type: TypeA, Addr: ipv4.Addr{4, 4, 4, 4}},
	}}
	got := m.AddrsInAnswer("www.example")
	if len(got) != 1 || got[0] != (ipv4.Addr{4, 4, 4, 4}) {
		t.Errorf("AddrsInAnswer = %v", got)
	}
}

// TestMaxARecordsMatchesPaper validates the "up to 89 addresses per
// non-fragmented response" figure from Section VI-C: with name compression
// each extra A record costs 16 bytes, so a ~1500-byte response holds ~89.
func TestMaxARecordsMatchesPaper(t *testing.T) {
	got := MaxARecords("pool.ntp.org", 1472) // 1500 - IP(20) - UDP(8)
	if got < 85 || got > 92 {
		t.Errorf("MaxARecords(1472) = %d, want ≈89", got)
	}
}

func TestMaxARecordsClassic512(t *testing.T) {
	got := MaxARecords("pool.ntp.org", 512)
	if got < 25 || got > 35 {
		t.Errorf("MaxARecords(512) = %d, want ≈30", got)
	}
}

func TestHeaderFlagsRoundTrip(t *testing.T) {
	m := &Message{Header: Header{ID: 9, QR: true, Opcode: 2, AA: true, TC: true, RD: true, RA: true, AD: true, RCode: RCodeNXDomain}}
	b, err := m.Marshal()
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	got, err := Unmarshal(b)
	if err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	if *(&got.Header) != m.Header {
		t.Errorf("header = %+v, want %+v", got.Header, m.Header)
	}
}

// Property: messages with arbitrary IDs/TTLs/addresses round-trip.
func TestPropertyRoundTrip(t *testing.T) {
	f := func(id uint16, ttl uint32, a, b, c, d byte) bool {
		m := &Message{
			Header:    Header{ID: id, QR: true},
			Questions: []Question{{Name: "pool.ntp.org", Type: TypeA, Class: ClassIN}},
			Answers:   []RR{{Name: "pool.ntp.org", Type: TypeA, TTL: ttl, Addr: ipv4.Addr{a, b, c, d}}},
		}
		wire, err := m.Marshal()
		if err != nil {
			return false
		}
		got, err := Unmarshal(wire)
		if err != nil {
			return false
		}
		return got.Header.ID == id && got.Answers[0].TTL == ttl && got.Answers[0].Addr == ipv4.Addr{a, b, c, d}
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: decoding arbitrary bytes never panics.
func TestPropertyDecodeNeverPanics(t *testing.T) {
	f := func(b []byte) bool {
		_, _ = Unmarshal(b) // must not panic
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestTypeAndRRStrings(t *testing.T) {
	for _, ty := range []Type{TypeA, TypeNS, TypeCNAME, TypeSOA, TypeTXT, TypeRRSIG, Type(99)} {
		if ty.String() == "" {
			t.Errorf("empty name for type %d", ty)
		}
	}
	rrs := []RR{
		{Name: "x", Type: TypeA},
		{Name: "x", Type: TypeNS, Target: "y"},
		{Name: "x", Type: TypeTXT, Text: "t"},
		{Name: "x", Type: TypeRRSIG, Raw: []byte{1}},
	}
	for _, r := range rrs {
		if r.String() == "" {
			t.Errorf("empty String for %+v", r)
		}
	}
}
