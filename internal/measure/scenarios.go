package measure

import (
	"context"
	"fmt"

	"dnstime/internal/population"
	"dnstime/internal/scenario"
	"dnstime/internal/stats"
)

// The §VII/§VIII measurement studies register themselves with the
// scenario registry. Each Run keeps the seed offset the single-seed
// `experiments` CLI has always used (seed+42 for the rate-limit scan,
// seed+11 for cache snooping, …) so campaign seed 1 reproduces the
// EXPERIMENTS.md point values. Config.Fast shrinks the large populations
// for quick runs.
func init() {
	scenario.Register(scenario.Scenario{
		Name:     "ratelimit",
		Title:    "Rate-limit pool scan",
		PaperRef: "§VII-A",
		Impl:     "measure.RateLimitScan",
		CLI:      "ntpscan",
		Params:   map[string]string{"servers": "2432", "queries": "64@1/s"},
		Order:    70,
		Run:      rateLimitScenario,
	})
	scenario.Register(scenario.Scenario{
		Name:     "nsfrag",
		Title:    "Nameserver frag scan",
		PaperRef: "§VII-B",
		Impl:     "measure.FragScan",
		CLI:      "ntpscan",
		Params:   map[string]string{"nameservers": "30"},
		Order:    80,
		Run:      nsFragScenario,
	})
	scenario.Register(scenario.Scenario{
		Name:     "fig5",
		Title:    "Fragment-size CDF",
		PaperRef: "§VII-B, Fig. 5",
		Impl:     "measure.FragScan",
		CLI:      "experiments -only fig5",
		Params:   map[string]string{"domains": "100000"},
		Order:    90,
		Run:      fig5Scenario,
	})
	scenario.Register(scenario.Scenario{
		Name:     "table4",
		Title:    "Resolver cache snooping",
		PaperRef: "§VIII-B1, Table IV",
		Impl:     "measure.CacheSnoop",
		CLI:      "resolverscan",
		Params:   map[string]string{"resolvers": "200000"},
		Order:    100,
		Run:      tableIVScenario,
	})
	scenario.Register(scenario.Scenario{
		Name:     "fig6",
		Title:    "Cached-TTL distribution",
		PaperRef: "§VIII-B1, Fig. 6",
		Impl:     "measure.CacheSnoop",
		CLI:      "experiments -only table4,fig6",
		Params:   map[string]string{"resolvers": "200000"},
		Order:    110,
		Run:      fig6Scenario,
	})
	scenario.Register(scenario.Scenario{
		Name:     "table5",
		Title:    "Ad-network client study",
		PaperRef: "§VIII-B2, Table V",
		Impl:     "measure.AdStudy",
		CLI:      "experiments -only table5",
		Params:   map[string]string{"clients": "~8000"},
		Order:    120,
		Run:      tableVScenario,
	})
	scenario.Register(scenario.Scenario{
		Name:     "shared",
		Title:    "Shared-resolver study",
		PaperRef: "§VIII-B3",
		Impl:     "measure.SharedResolverStudy",
		CLI:      "experiments -only shared",
		Params:   map[string]string{"resolvers": "18668"},
		Order:    130,
		Run:      sharedScenario,
	})
	scenario.Register(scenario.Scenario{
		Name:     "fig7",
		Title:    "Timing side channel",
		PaperRef: "§VIII-B1, Fig. 7",
		Impl:     "measure.TimingSideChannel",
		CLI:      "experiments -only fig7",
		Params:   map[string]string{"resolvers": "20000"},
		Order:    140,
		Run:      fig7Scenario,
	})
}

// rateLimitScenario runs the §VII-A live scan (2432 servers; 300 in fast
// mode, matching `experiments -fast`).
func rateLimitScenario(_ context.Context, seed int64, cfg scenario.Config) (scenario.Result, error) {
	pool := population.DefaultPoolConfig()
	if cfg.Fast {
		pool.Servers = 300
	}
	specs := population.GeneratePool(pool, seed+42)
	res, err := RateLimitScan(specs, DefaultScanConfig(), seed+42)
	if err != nil {
		return scenario.Result{}, err
	}
	return scenario.Result{
		Metrics: map[string]float64{
			"servers":          float64(res.Servers),
			"kod_senders":      float64(res.KoDSenders),
			"kod_pct":          res.KoDPct(),
			"rate_limited":     float64(res.RateLimited),
			"rate_limited_pct": res.RateLimitedPct(),
		},
	}, nil
}

// nsFragScenario runs the §VII-B pool-nameserver scan.
func nsFragScenario(_ context.Context, seed int64, _ scenario.Config) (scenario.Result, error) {
	specs := population.GeneratePoolNameservers(population.DefaultPoolNameserverConfig(), seed+3)
	res := FragScan(specs, nil)
	return scenario.Result{
		Metrics: map[string]float64{
			"total":          float64(res.Total),
			"frag_below_548": float64(res.FragBelow548),
			"dnssec":         float64(res.DNSSEC),
		},
	}, nil
}

// fig5Scenario evaluates the Figure 5 CDF over the 1M-domain nameserver
// population (10k domains in fast mode).
func fig5Scenario(_ context.Context, seed int64, cfg scenario.Config) (scenario.Result, error) {
	popCfg := population.DefaultDomainNameserverConfig()
	if cfg.Fast {
		popCfg.Total = 10000
	}
	specs := population.GenerateDomainNameservers(popCfg, seed+5)
	res := FragScan(specs, nil)
	metrics := map[string]float64{"frag_nodnssec_pct": res.FragNoDNSSECPct()}
	for _, size := range []float64{68, 292, 548, 1276, 1500} {
		metrics[fmt.Sprintf("cdf_pct/%.0fB", size)] = 100 * res.CumAt(size)
	}
	return scenario.Result{Metrics: metrics}, nil
}

// snoopPopulation draws the Table IV / Figure 6 open-resolver population
// (20k resolvers in fast mode).
func snoopPopulation(seed int64, cfg scenario.Config) []population.OpenResolverSpec {
	popCfg := population.DefaultOpenResolverConfig()
	if cfg.Fast {
		popCfg.Total = 20000
	}
	return population.GenerateOpenResolvers(popCfg, seed+11)
}

// tableIVScenario snoops the open-resolver population for the Table IV
// cached-record percentages.
func tableIVScenario(_ context.Context, seed int64, cfg scenario.Config) (scenario.Result, error) {
	res := CacheSnoop(snoopPopulation(seed, cfg))
	metrics := map[string]float64{
		"probed":   float64(res.Probed),
		"verified": float64(res.Verified),
	}
	for _, row := range res.Rows {
		metrics["cached_pct/"+string(row.Record)] = row.CachedPct
		metrics["cached/"+string(row.Record)] = float64(row.Cached)
	}
	return scenario.Result{Metrics: metrics}, nil
}

// fig6Scenario reads the remaining-TTL distribution back from the same
// snooped population as table4.
func fig6Scenario(_ context.Context, seed int64, cfg scenario.Config) (scenario.Result, error) {
	res := CacheSnoop(snoopPopulation(seed, cfg))
	h := res.TTLHistogram()
	return scenario.Result{
		Metrics: map[string]float64{
			"ttl_samples":  float64(h.Total()),
			"ttl_mean_s":   stats.Mean(res.TTLs),
			"ttl_median_s": stats.Median(res.TTLs),
		},
	}, nil
}

// tableVScenario runs the §VIII-B2 ad-network client study.
func tableVScenario(_ context.Context, seed int64, _ scenario.Config) (scenario.Result, error) {
	clients := population.GenerateAdClients(population.DefaultAdStudyConfig(), seed+9)
	res := AdStudy(clients)
	metrics := map[string]float64{
		"valid_clients":  float64(res.ValidClients),
		"filtered":       float64(res.Filtered),
		"google_clients": float64(res.GoogleClients),
		"dnssec_min_pct": res.DNSSECMinPct,
		"dnssec_max_pct": res.DNSSECMaxPct,
	}
	for _, row := range res.Rows {
		metrics["tiny_pct/"+row.Label] = row.TinyPct
		metrics["any_pct/"+row.Label] = row.AnyPct
	}
	return scenario.Result{Metrics: metrics}, nil
}

// sharedScenario classifies the §VIII-B3 shared-resolver topology.
func sharedScenario(_ context.Context, seed int64, _ scenario.Config) (scenario.Result, error) {
	res := SharedResolverStudy(population.GenerateSharedResolvers(population.DefaultSharedResolverConfig(), seed+21))
	return scenario.Result{
		Metrics: map[string]float64{
			"total":           float64(res.Total),
			"web_only":        float64(res.WebOnly),
			"web_smtp":        float64(res.WebAndSMTP),
			"open":            float64(res.OpenOnly),
			"open_smtp":       float64(res.OpenAndSMTP),
			"triggerable":     float64(res.Triggerable()),
			"triggerable_pct": res.TriggerablePct(),
		},
	}, nil
}

// fig7Scenario draws the Figure 7 latency-difference distribution (2000
// resolvers in fast mode).
func fig7Scenario(_ context.Context, seed int64, cfg scenario.Config) (scenario.Result, error) {
	probeCfg := population.DefaultTimingProbeConfig()
	if cfg.Fast {
		probeCfg.Resolvers = 2000
	}
	res := TimingSideChannel(probeCfg, seed+17)
	h := res.Histogram()
	return scenario.Result{
		Metrics: map[string]float64{
			"samples":       float64(h.Total()),
			"clamped_under": float64(h.Under()),
			"clamped_over":  float64(h.Over()),
		},
	}, nil
}
