// Package measure implements the paper's measurement harness:
//
//	§VII-A  rate-limiting scan of the pool.ntp.org server population
//	        (64 queries at 1/s; first-half vs second-half comparison),
//	§VII-B  nameserver fragmentation/PMTUD scan (Figure 5),
//	§VIII-A open-resolver cache snooping (Table IV) and cached-TTL readback
//	        (Figure 6),
//	§VIII-B the ad-network client study (Table V), the shared-resolver
//	        discovery (§VIII-B3) and the timing side channel (Figure 7).
//
// Protocol-level scans (rate limiting, fragmentation) run against live
// simulated servers — the same code paths as the attacks. Internet-scale
// population studies (hundreds of thousands of resolvers/clients) run
// against the behavioural specs from internal/population; the underlying
// protocol behaviour of those specs is exercised by the live tests in
// internal/dnsres and internal/simnet.
package measure

import (
	"fmt"
	"time"

	"dnstime/internal/ipv4"
	"dnstime/internal/ntpserv"
	"dnstime/internal/ntpwire"
	"dnstime/internal/population"
	"dnstime/internal/simclock"
	"dnstime/internal/simnet"
	"dnstime/internal/stats"
)

// ---------------------------------------------------------------------------
// §VII-A: rate-limiting scan.

// RateLimitResult summarises the pool scan.
type RateLimitResult struct {
	Servers     int
	KoDSenders  int // servers that sent a RATE KoD during the scan
	RateLimited int // servers whose second-half answer count collapsed
}

// KoDPct and RateLimitedPct report percentages.
func (r RateLimitResult) KoDPct() float64 { return pct(r.KoDSenders, r.Servers) }

// RateLimitedPct reports the stopped-responding percentage.
func (r RateLimitResult) RateLimitedPct() float64 { return pct(r.RateLimited, r.Servers) }

func pct(n, d int) float64 {
	if d == 0 {
		return 0
	}
	return 100 * float64(n) / float64(d)
}

// ScanConfig tunes the §VII-A methodology (defaults are the paper's).
type ScanConfig struct {
	// Queries per server (paper: 64).
	Queries int
	// Interval between queries (paper: 1 s).
	Interval time.Duration
	// HalfGap is the required first-half surplus to call a server
	// rate-limiting (paper: 8).
	HalfGap int
}

// DefaultScanConfig returns the paper's parameters.
func DefaultScanConfig() ScanConfig {
	return ScanConfig{Queries: 64, Interval: time.Second, HalfGap: 8}
}

// RateLimitScan builds the given pool-server population as live NTP servers
// and scans every one with the paper's methodology: 64 queries at 1/s;
// count answers in each half; a server is rate-limiting when the first half
// answered more than HalfGap more queries than the second; any RATE KoD
// marks a KoD sender.
func RateLimitScan(specs []population.PoolServerSpec, cfg ScanConfig, seed int64) (RateLimitResult, error) {
	clk := simclock.New(time.Date(2020, 1, 1, 0, 0, 0, 0, time.UTC))
	net := simnet.New(clk, simnet.WithLatency(5*time.Millisecond))
	scanner := net.MustAddHost(ipv4.MustParseAddr("203.0.113.1"), simnet.HostConfig{})

	type state struct {
		firstHalf, secondHalf int
		kod                   bool
	}
	states := make([]*state, len(specs))
	ports := make([]uint16, len(specs))
	var wire []byte // shared encode scratch; SendUDP copies before returning

	for i, spec := range specs {
		host, err := net.AddHost(spec.Addr, simnet.HostConfig{})
		if err != nil {
			return RateLimitResult{}, fmt.Errorf("measure: pool host: %w", err)
		}
		scfg := ntpserv.Config{
			RateLimit: ntpserv.RateLimitConfig{
				Enabled:     spec.RateLimits,
				MinInterval: 2 * time.Second,
				Burst:       12,
				HoldDown:    60 * time.Second,
				SendKoD:     spec.SendsKoD,
			},
			ConfigInterface: spec.OpenConfig,
			UpstreamNames:   []string{"pool.ntp.org"},
		}
		if _, err := ntpserv.New(host, scfg); err != nil {
			return RateLimitResult{}, fmt.Errorf("measure: pool server: %w", err)
		}

		st := &state{}
		states[i] = st
		port := scanner.AllocPort()
		ports[i] = port
		srvAddr := spec.Addr
		half := cfg.Queries / 2
		if err := scanner.HandleUDP(port, func(src ipv4.Addr, _ uint16, payload []byte) {
			if src != srvAddr {
				return
			}
			var pkt ntpwire.Packet
			if err := ntpwire.UnmarshalInto(&pkt, payload); err != nil {
				return
			}
			if pkt.IsKoD() {
				st.kod = true
				return
			}
			// Which half was the answered query in? Infer from current
			// scan time.
			elapsed := clk.Now().Sub(time.Date(2020, 1, 1, 0, 0, 0, 0, time.UTC))
			if int(elapsed/cfg.Interval) < half {
				st.firstHalf++
			} else {
				st.secondHalf++
			}
		}); err != nil {
			return RateLimitResult{}, err
		}
	}

	// All probes form one self-rescheduling round chain rather than
	// Queries×Servers pre-scheduled events: each round sends to every
	// server in registration order — exactly the interleaving per-server
	// schedules would produce, since they would all fire at the same
	// instants in that same order — while the pending-event heap holds one
	// chain event instead of one per server. The probe bytes are identical
	// across the round (same XmitTime), so the round shares one encode.
	round := 0
	var sendRound func()
	sendRound = func() {
		pkt := ntpwire.ClientPacket(clk.Now())
		wire = pkt.AppendMarshal(wire[:0])
		for i, spec := range specs {
			_, _ = scanner.SendUDP(spec.Addr, ports[i], ntpwire.Port, wire)
		}
		if round++; round < cfg.Queries {
			clk.After(cfg.Interval, sendRound)
		}
	}
	if len(specs) > 0 && cfg.Queries > 0 {
		clk.After(0, sendRound)
	}

	clk.RunFor(time.Duration(cfg.Queries)*cfg.Interval + 10*time.Second)

	res := RateLimitResult{Servers: len(specs)}
	for _, st := range states {
		if st.kod {
			res.KoDSenders++
		}
		if st.firstHalf-st.secondHalf > cfg.HalfGap {
			res.RateLimited++
		}
	}
	return res, nil
}

// ---------------------------------------------------------------------------
// §VII-B / Figure 5: nameserver fragmentation scan.

// FragScanResult summarises a nameserver fragmentation scan.
type FragScanResult struct {
	Total int
	// FragBelow548 counts nameservers emitting fragments ≤ 548 B.
	FragBelow548 int
	// DNSSEC counts signed nameservers.
	DNSSEC int
	// FragNoDNSSEC counts fragmenting, unsigned nameservers (the
	// vulnerable set).
	FragNoDNSSEC int
	// MinSizes holds the observed minimum fragment size per fragmenting,
	// unsigned nameserver — the Figure 5 sample set.
	MinSizes *stats.CDF
}

// FragScan applies the §VII-B probe logic to a nameserver population: for
// each server, walk the probe MTUs downward and record the smallest the
// server honours. (The live ICMP → PMTU → fragmentation path is exercised
// end-to-end in internal/dnsauth's tests and by the attack; this scan
// evaluates populations at spec level for scale.)
func FragScan(specs []population.NameserverSpec, probeSizes []int) FragScanResult {
	if len(probeSizes) == 0 {
		probeSizes = []int{1500, 1276, 548, 292, 68}
	}
	res := FragScanResult{Total: len(specs), MinSizes: &stats.CDF{}}
	for _, ns := range specs {
		if ns.DNSSEC {
			res.DNSSEC++
			continue
		}
		if !ns.Fragments {
			continue
		}
		min := 0
		for _, sz := range probeSizes {
			if sz >= ns.MinFragSize {
				min = sz
			}
		}
		if min == 0 {
			continue
		}
		res.FragNoDNSSEC++
		res.MinSizes.Add(float64(ns.MinFragSize))
		if ns.MinFragSize <= 548 {
			res.FragBelow548++
		}
	}
	return res
}

// FragNoDNSSECPct reports the vulnerable fraction of the population.
func (r FragScanResult) FragNoDNSSECPct() float64 { return pct(r.FragNoDNSSEC, r.Total) }

// CumAt reports the Figure 5 CDF value at size (fraction of fragmenting,
// unsigned nameservers with minimum fragment size ≤ size).
func (r FragScanResult) CumAt(size float64) float64 { return r.MinSizes.At(size) }

// ---------------------------------------------------------------------------
// §VIII-A: open-resolver cache snooping (Table IV) and Figure 6.

// SnoopRow is one Table IV row.
type SnoopRow struct {
	Record    population.PoolRecord
	CachedPct float64
	Cached    int
	NotCached int
}

// SnoopResult is the Table IV dataset plus the Figure 6 TTL samples.
type SnoopResult struct {
	Probed   int // resolvers probed (responding)
	Verified int // resolvers where the RD-bit pre-test verified
	Rows     []SnoopRow
	// TTLs holds the remaining TTLs (seconds) read back from cached
	// pool.ntp.org A records — the Figure 6 samples.
	TTLs []float64
}

// CacheSnoop performs the §VIII-A methodology over an open-resolver
// population: verify RD-bit handling, then probe each Table IV record with
// RD=0 and record cached-copy TTLs.
func CacheSnoop(specs []population.OpenResolverSpec) SnoopResult {
	res := SnoopResult{}
	counts := make(map[population.PoolRecord]int)
	notCached := make(map[population.PoolRecord]int)
	for _, r := range specs {
		if !r.Responds {
			continue
		}
		res.Probed++
		if !r.RespectsRD {
			continue
		}
		res.Verified++
		for _, rec := range population.AllPoolRecords() {
			if ttl, ok := r.CachedTTL(rec); ok {
				counts[rec]++
				if rec == population.RecPoolA {
					res.TTLs = append(res.TTLs, float64(ttl))
				}
			} else {
				notCached[rec]++
			}
		}
	}
	for _, rec := range population.AllPoolRecords() {
		res.Rows = append(res.Rows, SnoopRow{
			Record:    rec,
			CachedPct: pct(counts[rec], res.Verified),
			Cached:    counts[rec],
			NotCached: notCached[rec],
		})
	}
	return res
}

// TTLHistogram bins the Figure 6 samples (default: 10-second bins over
// [0, 160]).
func (r SnoopResult) TTLHistogram() *stats.Histogram {
	h := stats.NewHistogram(0, 160, 10)
	for _, ttl := range r.TTLs {
		h.Add(ttl)
	}
	return h
}

// ---------------------------------------------------------------------------
// §VIII-B: ad-network study (Table V).

// AdRow is one Table V row.
type AdRow struct {
	Label     string
	TinyCount int
	TinyPct   float64
	AnyCount  int
	AnyPct    float64
	Total     int
	DNSSECPct float64
}

// AdStudyResult is the Table V dataset.
type AdStudyResult struct {
	Rows []AdRow
	// ValidClients is the post-filter population size.
	ValidClients int
	// Filtered counts results dropped by the paper's filters (page open
	// < 30 s, failed baseline/sigright controls).
	Filtered int
	// GoogleClients counts clients behind Google DNS.
	GoogleClients int
	// DNSSECMinPct and DNSSECMaxPct are the validation range across
	// regions ("between 19.14% and 28.94%").
	DNSSECMinPct, DNSSECMaxPct float64
}

// AdStudy runs the §VIII-B analysis over a client population: filter
// invalid results, then aggregate tiny-fragment and any-fragment acceptance
// and DNSSEC validation by region, device class, overall, and excluding
// Google-DNS clients.
func AdStudy(clients []population.AdClientSpec) AdStudyResult {
	res := AdStudyResult{}
	type agg struct{ tiny, any, dnssec, total int }
	regions := make(map[population.Region]*agg)
	devices := make(map[population.Device]*agg)
	all := &agg{}
	noGoogle := &agg{}

	add := func(a *agg, c population.AdClientSpec) {
		a.total++
		if c.AcceptsTiny {
			a.tiny++
		}
		if c.AcceptsTiny || c.AcceptsSmall || c.AcceptsMedium || c.AcceptsBig {
			a.any++
		}
		if c.ValidatesDNSSEC {
			a.dnssec++
		}
	}

	for _, c := range clients {
		if c.PageOpenSeconds < 30 || !c.BaselineOK || !c.SigrightOK {
			res.Filtered++
			continue
		}
		res.ValidClients++
		if c.GoogleDNS {
			res.GoogleClients++
		} else {
			add(noGoogle, c)
		}
		if regions[c.Region] == nil {
			regions[c.Region] = &agg{}
		}
		if devices[c.Device] == nil {
			devices[c.Device] = &agg{}
		}
		add(regions[c.Region], c)
		add(devices[c.Device], c)
		add(all, c)
	}

	row := func(label string, a *agg) AdRow {
		return AdRow{
			Label:     label,
			TinyCount: a.tiny, TinyPct: pct(a.tiny, a.total),
			AnyCount: a.any, AnyPct: pct(a.any, a.total),
			Total:     a.total,
			DNSSECPct: pct(a.dnssec, a.total),
		}
	}
	res.DNSSECMinPct = 100
	for _, region := range population.AllRegions() {
		a := regions[region]
		if a == nil {
			continue
		}
		r := row(string(region), a)
		res.Rows = append(res.Rows, r)
		if r.DNSSECPct < res.DNSSECMinPct {
			res.DNSSECMinPct = r.DNSSECPct
		}
		if r.DNSSECPct > res.DNSSECMaxPct {
			res.DNSSECMaxPct = r.DNSSECPct
		}
	}
	res.Rows = append(res.Rows, row("ALL", all))
	res.Rows = append(res.Rows, row("Without Google", noGoogle))
	for _, dev := range []population.Device{population.PC, population.Mobile} {
		if a := devices[dev]; a != nil {
			res.Rows = append(res.Rows, row(string(dev), a))
		}
	}
	return res
}

// Render prints the Table V layout.
func (r AdStudyResult) Render() string {
	t := stats.NewTable("Group", "Tiny(68B)", "Tiny%", "Any size", "Any%", "Total", "DNSSEC%")
	for _, row := range r.Rows {
		t.AddRow(row.Label, row.TinyCount, row.TinyPct, row.AnyCount, row.AnyPct, row.Total, row.DNSSECPct)
	}
	return t.String()
}

// ---------------------------------------------------------------------------
// §VIII-B3: shared-resolver discovery.

// SharedResolverResult is the §VIII-B3 dataset.
type SharedResolverResult struct {
	Total       int
	WebOnly     int
	WebAndSMTP  int
	OpenOnly    int
	OpenAndSMTP int
}

// Triggerable counts resolvers where the attacker can cause queries via
// SMTP or direct (open) queries.
func (r SharedResolverResult) Triggerable() int {
	return r.WebAndSMTP + r.OpenOnly + r.OpenAndSMTP
}

// TriggerablePct is the headline 13.8% number.
func (r SharedResolverResult) TriggerablePct() float64 { return pct(r.Triggerable(), r.Total) }

// SharedResolverStudy classifies the topology per §VIII-B3.
func SharedResolverStudy(specs []population.SharedResolverSpec) SharedResolverResult {
	res := SharedResolverResult{Total: len(specs)}
	for _, s := range specs {
		switch {
		case s.Open && s.UsedBySMTP:
			res.OpenAndSMTP++
		case s.Open:
			res.OpenOnly++
		case s.UsedBySMTP:
			res.WebAndSMTP++
		default:
			res.WebOnly++
		}
	}
	return res
}

// ---------------------------------------------------------------------------
// Figure 7: timing side channel.

// TimingResult is the Figure 7 dataset.
type TimingResult struct {
	Deltas []float64 // t_first − t_avg, milliseconds
}

// Histogram bins the deltas as in Figure 7 (5 ms bins over [−50, 200] with
// clamped tails).
func (r TimingResult) Histogram() *stats.Histogram {
	h := stats.NewHistogram(-50, 200, 5)
	for _, d := range r.Deltas {
		h.Add(d)
	}
	return h
}

// BestThresholdAccuracy sweeps candidate thresholds T and returns the best
// achievable classification accuracy if "cached" were declared whenever
// t_first − t_avg < T, given the ground truth. The paper's conclusion — no
// reasonable T exists — corresponds to accuracies well below 1.
func BestThresholdAccuracy(deltas []float64, cached []bool) (bestT float64, accuracy float64) {
	if len(deltas) != len(cached) || len(deltas) == 0 {
		return 0, 0
	}
	for t := -50.0; t <= 200; t += 5 {
		correct := 0
		for i, d := range deltas {
			if (d < t) == cached[i] {
				correct++
			}
		}
		if acc := float64(correct) / float64(len(deltas)); acc > accuracy {
			accuracy, bestT = acc, t
		}
	}
	return bestT, accuracy
}

// TimingSideChannel generates the Figure 7 measurement from the probe
// model.
func TimingSideChannel(cfg population.TimingProbeConfig, seed int64) TimingResult {
	return TimingResult{Deltas: population.GenerateTimingDeltas(cfg, seed)}
}
