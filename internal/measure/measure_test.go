package measure

import (
	"math"
	"math/rand"
	"testing"

	"dnstime/internal/population"
)

func TestRateLimitScanSmallPopulation(t *testing.T) {
	cfg := population.DefaultPoolConfig()
	cfg.Servers = 120
	specs := population.GeneratePool(cfg, 5)
	res, err := RateLimitScan(specs, DefaultScanConfig(), 5)
	if err != nil {
		t.Fatal(err)
	}
	if res.Servers != 120 {
		t.Fatalf("servers = %d", res.Servers)
	}
	// Ground truth for this seed.
	var wantRate, wantKoD int
	for _, s := range specs {
		if s.RateLimits {
			wantRate++
		}
		if s.SendsKoD {
			wantKoD++
		}
	}
	if res.RateLimited != wantRate {
		t.Errorf("detected %d rate limiters, ground truth %d", res.RateLimited, wantRate)
	}
	if res.KoDSenders != wantKoD {
		t.Errorf("detected %d KoD senders, ground truth %d", res.KoDSenders, wantKoD)
	}
}

func TestRateLimitScanPaperFractions(t *testing.T) {
	if testing.Short() {
		t.Skip("full 2432-server scan")
	}
	specs := population.GeneratePool(population.DefaultPoolConfig(), 42)
	res, err := RateLimitScan(specs, DefaultScanConfig(), 42)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.RateLimitedPct()-38) > 3 {
		t.Errorf("rate-limited = %.1f%%, want ≈38%%", res.RateLimitedPct())
	}
	if math.Abs(res.KoDPct()-33) > 3 {
		t.Errorf("KoD = %.1f%%, want ≈33%%", res.KoDPct())
	}
}

func TestFragScanPoolNameservers(t *testing.T) {
	specs := population.GeneratePoolNameservers(population.DefaultPoolNameserverConfig(), 3)
	res := FragScan(specs, nil)
	if res.Total != 30 {
		t.Fatalf("total = %d", res.Total)
	}
	if res.FragBelow548 != 16 {
		t.Errorf("frag<548 = %d, want 16", res.FragBelow548)
	}
	if res.DNSSEC != 0 {
		t.Errorf("DNSSEC = %d, want 0", res.DNSSEC)
	}
}

func TestFragScanFigure5(t *testing.T) {
	specs := population.GenerateDomainNameservers(population.DefaultDomainNameserverConfig(), 5)
	res := FragScan(specs, nil)
	if f := res.FragNoDNSSECPct(); math.Abs(f-7.66) > 0.5 {
		t.Errorf("frag+noDNSSEC = %.2f%%, want ≈7.66%%", f)
	}
	if c := res.CumAt(292); math.Abs(c-0.0705) > 0.01 {
		t.Errorf("CDF(292) = %.4f, want ≈0.0705", c)
	}
	if c := res.CumAt(548); math.Abs(c-0.832) > 0.01 {
		t.Errorf("CDF(548) = %.4f, want ≈0.832", c)
	}
	if c := res.CumAt(1500); c != 1 {
		t.Errorf("CDF(1500) = %.4f, want 1", c)
	}
}

func TestCacheSnoopTableIV(t *testing.T) {
	cfg := population.DefaultOpenResolverConfig()
	cfg.Total = 100000
	specs := population.GenerateOpenResolvers(cfg, 11)
	res := CacheSnoop(specs)
	if res.Verified == 0 || res.Probed == 0 {
		t.Fatal("empty scan")
	}
	want := map[population.PoolRecord]float64{
		population.RecPoolNS: 58.28,
		population.RecPoolA:  69.41,
		population.Rec0Pool:  63.92,
		population.Rec1Pool:  61.28,
		population.Rec2Pool:  61.55,
		population.Rec3Pool:  58.58,
	}
	for _, row := range res.Rows {
		if w := want[row.Record]; math.Abs(row.CachedPct-w) > 1.5 {
			t.Errorf("%s cached = %.2f%%, want ≈%.2f%%", row.Record, row.CachedPct, w)
		}
		if row.Cached+row.NotCached != res.Verified {
			t.Errorf("%s: cached+notcached = %d, verified = %d", row.Record, row.Cached+row.NotCached, res.Verified)
		}
	}
}

func TestTTLHistogramUniform(t *testing.T) {
	cfg := population.DefaultOpenResolverConfig()
	cfg.Total = 50000
	res := CacheSnoop(population.GenerateOpenResolvers(cfg, 12))
	h := res.TTLHistogram()
	if h.Total() < 1000 {
		t.Fatalf("TTL samples = %d", h.Total())
	}
	// Uniform on [0,150]: the 15 bins below 150 should be roughly equal.
	first := float64(h.Bin(0))
	for i := 1; i < 15; i++ {
		ratio := float64(h.Bin(i)) / first
		if ratio < 0.7 || ratio > 1.4 {
			t.Errorf("bin %d/%d ratio %.2f; distribution not uniform", i, 0, ratio)
		}
	}
}

func TestAdStudyTableV(t *testing.T) {
	clients := population.GenerateAdClients(population.DefaultAdStudyConfig(), 9)
	res := AdStudy(clients)
	if res.Filtered == 0 {
		t.Error("no results filtered")
	}
	if res.ValidClients == 0 {
		t.Fatal("no valid clients")
	}
	var all, noGoogle *AdRow
	for i := range res.Rows {
		switch res.Rows[i].Label {
		case "ALL":
			all = &res.Rows[i]
		case "Without Google":
			noGoogle = &res.Rows[i]
		}
	}
	if all == nil || noGoogle == nil {
		t.Fatal("missing aggregate rows")
	}
	if math.Abs(all.TinyPct-64) > 8 {
		t.Errorf("ALL tiny%% = %.1f, want ≈64", all.TinyPct)
	}
	if math.Abs(all.AnyPct-91) > 8 {
		t.Errorf("ALL any%% = %.1f, want ≈91", all.AnyPct)
	}
	if noGoogle.TinyPct <= all.TinyPct {
		t.Errorf("without-Google tiny%% (%.1f) should exceed ALL (%.1f)", noGoogle.TinyPct, all.TinyPct)
	}
	if res.DNSSECMinPct < 15 || res.DNSSECMaxPct > 33 || res.DNSSECMinPct >= res.DNSSECMaxPct {
		t.Errorf("DNSSEC range = [%.1f, %.1f], want ≈[19, 29]", res.DNSSECMinPct, res.DNSSECMaxPct)
	}
	if res.Render() == "" {
		t.Error("empty render")
	}
}

func TestSharedResolverStudy(t *testing.T) {
	specs := population.GenerateSharedResolvers(population.DefaultSharedResolverConfig(), 21)
	res := SharedResolverStudy(specs)
	if res.Total != 18668 {
		t.Fatalf("total = %d", res.Total)
	}
	if f := res.TriggerablePct(); math.Abs(f-13.8) > 1.5 {
		t.Errorf("triggerable = %.1f%%, want ≈13.8%%", f)
	}
	if res.WebOnly+res.WebAndSMTP+res.OpenOnly+res.OpenAndSMTP != res.Total {
		t.Error("classification does not partition the population")
	}
}

func TestTimingSideChannelInconclusive(t *testing.T) {
	cfg := population.DefaultTimingProbeConfig()
	res := TimingSideChannel(cfg, 17)
	h := res.Histogram()
	if h.Total() != cfg.Resolvers {
		t.Fatalf("samples = %d", h.Total())
	}
	// Rebuild ground truth for accuracy check.
	rng := rand.New(rand.NewSource(17))
	cached := make([]bool, cfg.Resolvers)
	deltas := make([]float64, cfg.Resolvers)
	for i := range deltas {
		jitter := rng.NormFloat64() * cfg.JitterMS
		if rng.Float64() < cfg.PCached {
			cached[i] = true
			deltas[i] = jitter
		} else {
			rtt := cfg.UpstreamRTTMinMS + rng.Float64()*(cfg.UpstreamRTTMaxMS-cfg.UpstreamRTTMinMS)
			deltas[i] = rtt + jitter
		}
	}
	_, acc := BestThresholdAccuracy(deltas, cached)
	if acc > 0.93 {
		t.Errorf("best threshold accuracy = %.3f; Figure 7 expects no clean separation", acc)
	}
	if acc < 0.6 {
		t.Errorf("accuracy = %.3f implausibly low", acc)
	}
}

func TestBestThresholdAccuracyDegenerate(t *testing.T) {
	if _, acc := BestThresholdAccuracy(nil, nil); acc != 0 {
		t.Error("empty input should yield 0")
	}
	if _, acc := BestThresholdAccuracy([]float64{1}, []bool{true, false}); acc != 0 {
		t.Error("mismatched input should yield 0")
	}
}
