package search

import (
	"context"
	"encoding/json"
	"reflect"
	"testing"

	"dnstime/internal/scenario"
)

// TestGridSweep: a full product over the step oracle classifies every
// cell by its side of the threshold, and cells arrive in canonical
// order regardless of dimension order.
func TestGridSweep(t *testing.T) {
	oracleThreshold.Store(500000)
	dims := []Dim{
		{Key: "x", Values: []string{"0.2", "0.8"}},
		{Key: "mode", Values: []string{"a", "b"}},
	}
	res, err := Grid(context.Background(), dims, GridOptions{
		Options: Options{Scenario: "t-search-step", Seeds: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != 4 || res.Dropped != 0 {
		t.Fatalf("cells = %d (dropped %d), want the full 2×2 product", len(res.Cells), res.Dropped)
	}
	for i, c := range res.Cells {
		if want := c.Params["x"] == "0.8"; c.Success != want {
			t.Errorf("cell %v: success=%t, want %t", c.Params, c.Success, want)
		}
		if c.Runs != 4 {
			t.Errorf("cell %v: %d runs, want 4", c.Params, c.Runs)
		}
		if i > 0 && cellKey(res.Cells[i-1].Params) >= cellKey(c.Params) {
			t.Errorf("cells out of canonical order at %d: %v after %v", i, c.Params, res.Cells[i-1].Params)
		}
	}
}

// TestGridPruning: with staged seeds, cells whose prune-stage Wilson
// interval already excludes the target stop at PruneSeeds runs, while
// undecided cells extend to the full campaign over distinct seeds.
func TestGridPruning(t *testing.T) {
	oracleThreshold.Store(500000)
	dims := []Dim{{Key: "x", Values: []string{"0.1", "0.9"}}}
	run := func(target float64) GridResult {
		t.Helper()
		res, err := Grid(context.Background(), dims, GridOptions{
			Options:    Options{Scenario: "t-search-step", Seeds: 16, Target: target},
			PruneSeeds: 4,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	// At target 0.5 both all-fail and all-success cells are decided by
	// 4 seeds (Wilson 0/4 tops out below 0.5; 4/4 bottoms out above).
	res := run(0.5)
	if res.PrunedCells != 2 {
		t.Fatalf("pruned %d cells, want 2: %+v", res.PrunedCells, res.Cells)
	}
	for _, c := range res.Cells {
		want := "above"
		if c.Params["x"] == "0.1" {
			want = "below"
		}
		if c.Pruned != want || c.Runs != 4 {
			t.Errorf("cell %v: pruned=%q runs=%d, want %q at 4 runs", c.Params, c.Pruned, c.Runs, want)
		}
	}

	// At target 0.9, 4/4 successes (CI ≈ [0.51, 1]) cannot exclude the
	// target, so the success cell extends to all 16 seeds.
	res = run(0.9)
	for _, c := range res.Cells {
		switch c.Params["x"] {
		case "0.1":
			if c.Pruned != "below" || c.Runs != 4 {
				t.Errorf("fail cell not pruned: %+v", c)
			}
		case "0.9":
			if c.Pruned != "" || c.Runs != 16 || c.Successes != 16 {
				t.Errorf("undecided cell did not extend: %+v", c)
			}
		}
	}
}

// TestGridPruneStagesShareCheckpoint: the prune and extension stages
// are distinct probe campaigns under distinct keys (different seed
// ranges), so a resumed sweep re-runs neither.
func TestGridPruneStagesShareCheckpoint(t *testing.T) {
	oracleThreshold.Store(500000)
	path := t.TempDir() + "/grid.jsonl"
	dims := []Dim{{Key: "x", Values: []string{"0.9"}}}
	opt := GridOptions{
		Options:    Options{Scenario: "t-search-step", Seeds: 16, Target: 0.9, Checkpoint: path, Resume: path},
		PruneSeeds: 4,
	}
	res, err := Grid(context.Background(), dims, opt)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := json.Marshal(res)
	before := oracleRuns.Load()
	res2, err := Grid(context.Background(), dims, opt)
	if err != nil {
		t.Fatal(err)
	}
	if n := oracleRuns.Load() - before; n != 0 {
		t.Errorf("resumed sweep executed %d runs, want 0", n)
	}
	if got, _ := json.Marshal(res2); string(got) != string(want) {
		t.Errorf("resumed sweep differs:\n%s\nvs\n%s", got, want)
	}
}

// TestGridLatinSample: subsampling is deterministic, respects the cell
// budget, and still covers every value of every dimension (the point of
// Latin-hypercube over a truncated product).
func TestGridLatinSample(t *testing.T) {
	dims := []Dim{
		{Key: "x", Values: []string{"0.1", "0.3", "0.5", "0.7", "0.9"}},
		{Key: "mode", Values: []string{"a", "b", "c", "d", "e"}},
	}
	first := latinSample(dims, 5)
	if len(first) > 5 {
		t.Fatalf("latinSample(5) returned %d cells", len(first))
	}
	for _, d := range dims {
		seen := map[string]bool{}
		for _, c := range first {
			seen[c[d.Key]] = true
		}
		if len(seen) != len(d.Values) {
			t.Errorf("dimension %s covers %d/%d values: %v", d.Key, len(seen), len(d.Values), first)
		}
	}
	if again := latinSample(dims, 5); !reflect.DeepEqual(first, again) {
		t.Errorf("latinSample not deterministic:\n%v\nvs\n%v", first, again)
	}

	oracleThreshold.Store(500000)
	res, err := Grid(context.Background(), dims, GridOptions{
		Options: Options{Scenario: "t-search-step", Seeds: 2},
		Samples: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) > 5 || res.Dropped != 25-len(res.Cells) {
		t.Errorf("sampled sweep: %d cells, dropped %d", len(res.Cells), res.Dropped)
	}
}

// TestGridDeterministicAcrossWorkers: the marshalled sweep is
// byte-identical at any probe worker count.
func TestGridDeterministicAcrossWorkers(t *testing.T) {
	oracleThreshold.Store(500000)
	dims := []Dim{
		{Key: "x", Values: []string{"0.3", "0.7"}},
		{Key: "mode", Values: []string{"a", "b"}},
	}
	marshal := func(workers int) string {
		res, err := Grid(context.Background(), dims, GridOptions{
			Options: Options{Scenario: "t-search-step", Seeds: 8, Workers: workers,
				Params: scenario.Params{"spread": "0.3"}},
			PruneSeeds: 4,
		})
		if err != nil {
			t.Fatal(err)
		}
		b, err := json.Marshal(res)
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}
	serial := marshal(1)
	if parallel := marshal(4); parallel != serial {
		t.Errorf("workers=4 output differs from workers=1:\n%s\nvs\n%s", parallel, serial)
	}
}

// TestGridRejectsBadDims: dimension validation fails before any run.
func TestGridRejectsBadDims(t *testing.T) {
	opt := GridOptions{Options: Options{Scenario: "t-search-step"}}
	fixed := opt
	fixed.Params = scenario.Params{"mode": "a"}
	cases := map[string]struct {
		dims []Dim
		opt  GridOptions
	}{
		"no dims":         {nil, opt},
		"empty key":       {[]Dim{{Values: []string{"1"}}}, opt},
		"key with equals": {[]Dim{{Key: "a=b", Values: []string{"1"}}}, opt},
		"no values":       {[]Dim{{Key: "x"}}, opt},
		"duplicate dim":   {[]Dim{{Key: "x", Values: []string{"1"}}, {Key: "x", Values: []string{"2"}}}, opt},
		"duplicate value": {[]Dim{{Key: "x", Values: []string{"1", "1"}}}, opt},
		"fixed collision": {[]Dim{{Key: "mode", Values: []string{"a"}}}, fixed},
	}
	for name, c := range cases {
		if _, err := Grid(context.Background(), c.dims, c.opt); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}
