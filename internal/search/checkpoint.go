package search

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"reflect"
	"sort"

	"dnstime/internal/obs"
	"dnstime/internal/scenario"
)

// searchCheckpointVersion is bumped if the JSONL layout changes shape.
const searchCheckpointVersion = 1

// buildRevision reports the VCS revision stamped into search
// checkpoints. A variable so tests can simulate cross-revision resumes
// (obs.BuildInfo caches, and `go test` binaries carry no revision).
var buildRevision = func() string { return obs.BuildInfo().Revision }

// stampRevision returns the current build's VCS revision, or "" when
// unknown ("unknown" is BuildInfo's placeholder, not an identity).
func stampRevision() string {
	if rev := buildRevision(); rev != "" && rev != "unknown" {
		return rev
	}
	return ""
}

// searchHeader is the first line of a search checkpoint: the search
// identity a recorded probe is only valid under. Seed range is NOT part
// of the header — it is part of each probe's key, so one file can serve
// searches that mix probe sizes (the Grid prune/extend stages).
type searchHeader struct {
	V        int             `json:"v"`
	Scenario string          `json:"scenario"`
	Target   float64         `json:"target"`
	Fast     bool            `json:"fast,omitempty"`
	Params   scenario.Params `json:"params,omitempty"`
	// Revision is the VCS revision of the writing binary, when known.
	// Probe outcomes are only reproducible under the same simulator
	// code, so a cross-revision resume is refused unless Options.Force.
	Revision string `json:"revision,omitempty"`
}

// searchHeaderFor builds the header for one option set.
func searchHeaderFor(opt Options) searchHeader {
	return searchHeader{
		V:        searchCheckpointVersion,
		Scenario: opt.Scenario,
		Target:   opt.Target,
		Fast:     opt.Fast,
		Params:   opt.Params,
		Revision: stampRevision(),
	}
}

// compatible reports whether probes recorded under h can answer a
// search under opt.
func (h searchHeader) compatible(opt Options) error {
	switch {
	case h.V != searchCheckpointVersion:
		return fmt.Errorf("search: checkpoint version %d, want %d", h.V, searchCheckpointVersion)
	case h.Scenario != opt.Scenario:
		return fmt.Errorf("search: checkpoint is for scenario %q, not %q", h.Scenario, opt.Scenario)
	case h.Target != opt.Target:
		return fmt.Errorf("search: checkpoint target %v, search target %v", h.Target, opt.Target)
	case h.Fast != opt.Fast:
		return fmt.Errorf("search: checkpoint fast=%t, search fast=%t", h.Fast, opt.Fast)
	case len(h.Params) != len(opt.Params) ||
		(len(h.Params) > 0 && !reflect.DeepEqual(h.Params, opt.Params)):
		return fmt.Errorf("search: checkpoint params (%s) differ from search params (%s)", h.Params, opt.Params)
	}
	if cur := stampRevision(); h.Revision != "" && cur != "" && h.Revision != cur && !opt.Force {
		return fmt.Errorf("search: checkpoint was written at revision %.12s, this build is %.12s — its probes may not reproduce; pass -force to resume anyway",
			h.Revision, cur)
	}
	return nil
}

// probeRecord is one completed probe campaign as persisted: its
// canonical key (full param assignment plus seed range) and its
// binary-outcome counts — everything a resume needs to skip the
// campaign.
type probeRecord struct {
	Key       string `json:"key"`
	Successes int    `json:"successes"`
	Runs      int    `json:"runs"`
}

// probeCache answers probes from a resume checkpoint and appends newly
// executed ones to the checkpoint file. With neither Resume nor
// Checkpoint set it degrades to an in-memory map (which still
// deduplicates probes inside one search).
type probeCache struct {
	recs map[string]probeRecord
	f    *os.File // nil when no checkpoint file is being written
}

// openProbeCache loads the resume file (when configured) and prepares
// the checkpoint file (when configured), mirroring campaign.Engine's
// resume workflow: same path for both means one file keeps growing
// across interruptions and a missing file is a fresh start; a torn
// trailing fragment (crash mid-append) is truncated away, while a
// malformed line inside the terminated prefix is an error.
func openProbeCache(opt Options) (*probeCache, error) {
	c := &probeCache{recs: map[string]probeRecord{}}
	var validLen int64
	if opt.Resume != "" {
		n, err := c.load(opt)
		switch {
		case err == nil:
			validLen = n
		case opt.Resume == opt.Checkpoint && errors.Is(err, fs.ErrNotExist):
		default:
			return nil, err
		}
	}
	if opt.Checkpoint == "" {
		return c, nil
	}
	if opt.Checkpoint == opt.Resume && validLen > 0 {
		if f, err := os.OpenFile(opt.Checkpoint, os.O_WRONLY, 0o644); err == nil {
			if err := f.Truncate(validLen); err != nil {
				f.Close()
				return nil, fmt.Errorf("search: checkpoint %s: %w", opt.Checkpoint, err)
			}
			if _, err := f.Seek(validLen, 0); err != nil {
				f.Close()
				return nil, fmt.Errorf("search: checkpoint %s: %w", opt.Checkpoint, err)
			}
			c.f = f
			return c, nil
		}
	}
	f, err := os.Create(opt.Checkpoint)
	if err != nil {
		return nil, fmt.Errorf("search: checkpoint: %w", err)
	}
	c.f = f
	hdr, err := json.Marshal(searchHeaderFor(opt))
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("search: checkpoint: %w", err)
	}
	if _, err := f.Write(append(hdr, '\n')); err != nil {
		f.Close()
		return nil, fmt.Errorf("search: checkpoint %s: %w", opt.Checkpoint, err)
	}
	// Replay resumed probes (sorted by key) so a cross-file checkpoint
	// is complete on its own.
	keys := make([]string, 0, len(c.recs))
	for k := range c.recs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if err := c.append(c.recs[k]); err != nil {
			f.Close()
			return nil, err
		}
	}
	return c, nil
}

// load reads the resume file into the cache and returns the byte length
// of its valid newline-terminated prefix.
func (c *probeCache) load(opt Options) (int64, error) {
	data, err := os.ReadFile(opt.Resume)
	if err != nil {
		return 0, fmt.Errorf("search: resume: %w", err)
	}
	var validLen int64
	lineNo := 0
	for len(data) > 0 {
		nl := bytes.IndexByte(data, '\n')
		if nl < 0 {
			break // torn trailing fragment from a crash mid-append
		}
		line := data[:nl]
		lineNo++
		if lineNo == 1 {
			var h searchHeader
			if err := json.Unmarshal(line, &h); err != nil {
				return 0, fmt.Errorf("search: resume %s: bad header: %w", opt.Resume, err)
			}
			if err := h.compatible(opt); err != nil {
				return 0, fmt.Errorf("%w (resume %s)", err, opt.Resume)
			}
		} else {
			var rec probeRecord
			if err := json.Unmarshal(line, &rec); err != nil {
				return 0, fmt.Errorf("search: resume %s line %d: %w", opt.Resume, lineNo, err)
			}
			c.recs[rec.Key] = rec
		}
		validLen += int64(nl + 1)
		data = data[nl+1:]
	}
	if lineNo == 0 {
		return 0, fmt.Errorf("search: resume %s: empty checkpoint", opt.Resume)
	}
	return validLen, nil
}

// get answers a probe from the cache.
func (c *probeCache) get(key string) (probeRecord, bool) {
	rec, ok := c.recs[key]
	return rec, ok
}

// put records a newly executed probe and appends it to the checkpoint
// file when one is open.
func (c *probeCache) put(key string, successes, runs int) error {
	rec := probeRecord{Key: key, Successes: successes, Runs: runs}
	c.recs[key] = rec
	if c.f == nil {
		return nil
	}
	return c.append(rec)
}

// append writes one probe line to the checkpoint file.
func (c *probeCache) append(rec probeRecord) error {
	b, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("search: checkpoint: %w", err)
	}
	if _, err := c.f.Write(append(b, '\n')); err != nil {
		return fmt.Errorf("search: checkpoint %s: %w", c.f.Name(), err)
	}
	return nil
}

// close flushes and closes the checkpoint file; idempotent.
func (c *probeCache) close() error {
	if c.f == nil {
		return nil
	}
	f := c.f
	c.f = nil
	if err := f.Close(); err != nil {
		return fmt.Errorf("search: checkpoint %s: %w", f.Name(), err)
	}
	return nil
}
