package search

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"strings"
)

// Dim is one dimension of a grid sweep: a scenario param key and the
// candidate values to cross (e.g. vic-net × client × margin).
type Dim struct {
	// Key is the scenario param the dimension assigns.
	Key string `json:"key"`
	// Values are the candidate values, in the order given.
	Values []string `json:"values"`
}

// Cell is one evaluated grid point: its full swept param assignment and
// the probe statistics, possibly from a pruned (smaller) campaign.
type Cell struct {
	// Params is the cell's swept assignment (fixed Options.Params are
	// not repeated here).
	Params map[string]string `json:"params"`
	Probe
	// Pruned marks a cell whose first-stage Wilson interval already
	// excluded the target, so the extension stage was skipped: "below"
	// (CI entirely under the target) or "above" (entirely over). The
	// cell's statistics then cover only the prune-stage seeds — Runs
	// says so.
	Pruned string `json:"pruned,omitempty"`
}

// GridOptions configures a grid sweep on top of the shared probe
// Options.
type GridOptions struct {
	Options
	// PruneSeeds, when in (0, Seeds), splits each cell's campaign into a
	// prune stage of this many seeds and an extension stage for the
	// rest: cells whose prune-stage 95% Wilson interval already excludes
	// the target success rate stop early. Zero disables pruning.
	PruneSeeds int
	// Samples, when positive and smaller than the full product, Latin-
	// hypercube subsamples the grid down to at most this many cells
	// (deterministically — the same dims always select the same cells).
	Samples int
}

// GridResult is a completed sweep: every evaluated cell in canonical
// order plus the sweep's shape.
type GridResult struct {
	// Scenario, Target, Seeds and PruneSeeds restate the sweep.
	Scenario   string  `json:"scenario"`
	Target     float64 `json:"target"`
	Seeds      int     `json:"seeds"`
	PruneSeeds int     `json:"prune_seeds,omitempty"`
	// Sampled reports how many cells of the full product were dropped
	// by Latin-hypercube subsampling (0 = exhaustive).
	Dropped int `json:"dropped,omitempty"`
	// PrunedCells counts cells stopped at the prune stage.
	PrunedCells int `json:"pruned_cells"`
	// Cells lists every evaluated cell in canonical (sorted-key) order,
	// independent of execution order.
	Cells []Cell `json:"cells"`
}

// cellKey is a cell's canonical identity: its swept assignment rendered
// with sorted keys.
func cellKey(params map[string]string) string {
	keys := make([]string, 0, len(params))
	for k := range params {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, 0, len(keys))
	for _, k := range keys {
		parts = append(parts, k+"="+params[k])
	}
	return strings.Join(parts, ",")
}

// Grid sweeps the cross product of dims (optionally Latin-hypercube
// subsampled) over the scenario, evaluating each cell as one or two
// probe campaigns: with GridOptions.PruneSeeds set, a cell first runs a
// small campaign and is abandoned if its Wilson interval already
// excludes the target success rate — the boundary cannot run through a
// cell that is confidently all-success or all-failure — and only
// undecided cells pay for the full Seeds. Cells are evaluated and
// reported in canonical order, so the marshalled GridResult is
// byte-identical at any worker count and across checkpoint resumes.
func Grid(ctx context.Context, dims []Dim, opt GridOptions) (GridResult, error) {
	opt.Options = opt.Options.withDefaults()
	if err := opt.Options.validate(); err != nil {
		return GridResult{}, err
	}
	if err := validateDims(dims, opt); err != nil {
		return GridResult{}, err
	}
	cells := product(dims)
	full := len(cells)
	if opt.Samples > 0 && opt.Samples < len(cells) {
		cells = latinSample(dims, opt.Samples)
	}
	sort.Slice(cells, func(i, j int) bool { return cellKey(cells[i]) < cellKey(cells[j]) })

	cache, err := openProbeCache(opt.Options)
	if err != nil {
		return GridResult{}, err
	}
	defer cache.close()

	res := GridResult{
		Scenario:   opt.Scenario,
		Target:     opt.Target,
		Seeds:      opt.Seeds,
		PruneSeeds: opt.PruneSeeds,
		Dropped:    full - len(cells),
	}
	staged := opt.PruneSeeds > 0 && opt.PruneSeeds < opt.Seeds
	for _, assign := range cells {
		if err := ctx.Err(); err != nil {
			return res, fmt.Errorf("search: grid interrupted: %w", err)
		}
		cell := Cell{Params: assign}
		if !staged {
			p, err := runProbe(ctx, opt.Options, cache, assign, opt.Seeds, opt.BaseSeed)
			if err != nil {
				return res, err
			}
			cell.Probe = p
		} else {
			// Prune stage: a short campaign at the base seed.
			p, err := runProbe(ctx, opt.Options, cache, assign, opt.PruneSeeds, opt.BaseSeed)
			if err != nil {
				return res, err
			}
			switch {
			case p.CI.Hi < opt.Target:
				cell.Probe, cell.Pruned = p, "below"
			case p.CI.Lo > opt.Target:
				cell.Probe, cell.Pruned = p, "above"
			default:
				// Extension stage: the remaining seeds, shifted past the
				// prune stage so no seed is ever counted twice, merged
				// into one pooled estimate.
				ext, err := runProbe(ctx, opt.Options, cache, assign,
					opt.Seeds-opt.PruneSeeds, opt.BaseSeed+int64(opt.PruneSeeds))
				if err != nil {
					return res, err
				}
				cell.Probe = foldProbe(opt.Options, assign,
					p.Successes+ext.Successes, p.Runs+ext.Runs, p.Cached && ext.Cached)
			}
		}
		if cell.Pruned != "" {
			res.PrunedCells++
		}
		res.Cells = append(res.Cells, cell)
		if opt.Progress != nil {
			opt.Progress(cell.Probe, len(res.Cells), len(cells))
		}
	}
	return res, cache.close()
}

// validateDims rejects dimension sets the sweep cannot evaluate.
func validateDims(dims []Dim, opt GridOptions) error {
	if len(dims) == 0 {
		return fmt.Errorf("search: grid needs at least one dimension")
	}
	seen := map[string]bool{}
	for _, d := range dims {
		switch {
		case d.Key == "" || strings.ContainsAny(d.Key, "= ,"):
			return fmt.Errorf("search: dimension key %q is not a scenario param key", d.Key)
		case len(d.Values) == 0:
			return fmt.Errorf("search: dimension %s has no values", d.Key)
		case seen[d.Key]:
			return fmt.Errorf("search: duplicate dimension %s", d.Key)
		}
		if _, fixed := opt.Params[d.Key]; fixed {
			return fmt.Errorf("search: dimension %s collides with a fixed -param", d.Key)
		}
		vals := map[string]bool{}
		for _, v := range d.Values {
			if vals[v] {
				return fmt.Errorf("search: dimension %s repeats value %q", d.Key, v)
			}
			vals[v] = true
		}
		seen[d.Key] = true
	}
	return nil
}

// product enumerates the full cross product of dims.
func product(dims []Dim) []map[string]string {
	cells := []map[string]string{{}}
	for _, d := range dims {
		next := make([]map[string]string, 0, len(cells)*len(d.Values))
		for _, cell := range cells {
			for _, v := range d.Values {
				c := make(map[string]string, len(cell)+1)
				for k, val := range cell {
					c[k] = val
				}
				c[d.Key] = v
				next = append(next, c)
			}
		}
		cells = next
	}
	return cells
}

// latinSample draws up to n cells by Latin-hypercube sampling: each
// dimension's value list is repeated to length n and deterministically
// shuffled (a fixed per-dimension seed — no wall-clock randomness, so
// the same dims and n always select the same cells), then the columns
// are zipped into cells and deduplicated. Every value of every
// dimension appears in roughly n/len(Values) cells, so coverage stays
// balanced where a cartesian truncation would starve late dimensions.
func latinSample(dims []Dim, n int) []map[string]string {
	cols := make([][]string, len(dims))
	for di, d := range dims {
		col := make([]string, n)
		for i := range col {
			col[i] = d.Values[i%len(d.Values)]
		}
		rng := rand.New(rand.NewSource(0x5ea4c4 + int64(di)))
		rng.Shuffle(n, func(i, j int) { col[i], col[j] = col[j], col[i] })
		cols[di] = col
	}
	seen := map[string]bool{}
	var cells []map[string]string
	for i := 0; i < n; i++ {
		cell := make(map[string]string, len(dims))
		for di, d := range dims {
			cell[d.Key] = cols[di][i]
		}
		if key := cellKey(cell); !seen[key] {
			seen[key] = true
			cells = append(cells, cell)
		}
	}
	return cells
}
