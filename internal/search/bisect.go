package search

import (
	"context"
	"fmt"
)

// BisectResult is a completed threshold search: the probes executed (in
// execution order, which is deterministic) and the final one-Step-wide
// bracket [Lo, Hi] around the collapse threshold. Under the monotone
// assumption, the scenario fails at Lo and succeeds at Hi (the reverse
// for a Falling axis).
type BisectResult struct {
	// Scenario, Key and Target restate the search so the document is
	// self-describing.
	Scenario string  `json:"scenario"`
	Key      string  `json:"key"`
	Target   float64 `json:"target"`
	// Seeds is the per-probe campaign size.
	Seeds int `json:"seeds"`
	// Budget is the worst-case probe count ⌈log₂(width/resolution)⌉;
	// len(Probes) never exceeds it.
	Budget int `json:"probe_budget"`
	// Probes lists every evaluated point in execution order.
	Probes []Probe `json:"probes"`
	// Lo and Hi are the final bracket endpoints, formatted as the
	// scenario param values they correspond to.
	Lo string `json:"lo"`
	Hi string `json:"hi"`
}

// Bisect locates the collapse threshold of a monotone
// success-vs-parameter axis: it repeatedly probes the bracket midpoint
// with a full multi-seed campaign and keeps the half whose endpoints
// still disagree, narrowing [ax.Lo, ax.Hi] to one ax.Step in at most
// ax.Budget() probes. The endpoints themselves are assumed, not probed:
// the caller asserts the scenario fails at Lo and succeeds at Hi
// (swapped when ax.Falling) — a bracket that does not actually strand
// the threshold yields a well-formed but meaningless answer, as with
// any bisection.
//
// Probe order is a pure function of probe outcomes and probe outcomes
// are worker-count independent (campaign.Engine's contract), so the
// marshalled BisectResult is byte-identical at any opt.Workers, and a
// checkpoint-resumed search reproduces an uninterrupted one exactly.
func Bisect(ctx context.Context, ax Axis, opt Options) (BisectResult, error) {
	opt = opt.withDefaults()
	if err := opt.validate(); err != nil {
		return BisectResult{}, err
	}
	if err := ax.validate(); err != nil {
		return BisectResult{}, err
	}
	cache, err := openProbeCache(opt)
	if err != nil {
		return BisectResult{}, err
	}
	defer cache.close()

	res := BisectResult{
		Scenario: opt.Scenario,
		Key:      ax.Key,
		Target:   opt.Target,
		Seeds:    opt.Seeds,
		Budget:   ax.Budget(),
	}
	// The loop runs in ticks (multiples of ax.Step) so the midpoint
	// arithmetic is exact integer division; lo and hi always satisfy the
	// invariant "threshold strictly inside (lo, hi]".
	lo, hi := ax.Lo/ax.Step, ax.Hi/ax.Step
	for hi-lo > 1 {
		if err := ctx.Err(); err != nil {
			return res, fmt.Errorf("search: bisection interrupted: %w", err)
		}
		mid := lo + (hi-lo)/2
		value := ax.Format(mid * ax.Step)
		p, err := runProbe(ctx, opt, cache, map[string]string{ax.Key: value}, opt.Seeds, opt.BaseSeed)
		if err != nil {
			return res, err
		}
		res.Probes = append(res.Probes, p)
		if opt.Progress != nil {
			opt.Progress(p, len(res.Probes), res.Budget)
		}
		// On a rising axis success lives above the threshold, so a
		// successful midpoint bounds the threshold from above; a Falling
		// axis mirrors the step.
		if p.Success != ax.Falling {
			hi = mid
		} else {
			lo = mid
		}
	}
	res.Lo = ax.Format(lo * ax.Step)
	res.Hi = ax.Format(hi * ax.Step)
	return res, cache.close()
}
