package search

import (
	"context"
	"fmt"
	"math"
	"sort"
	"strings"
	"time"

	"dnstime/internal/campaign"
	"dnstime/internal/obs"
	"dnstime/internal/scenario"
	"dnstime/internal/stats"
)

// probesTotal counts probe campaigns actually executed by the search
// engine, process-wide (obs.Default; exported on the serve /metrics
// Prometheus view). Probes answered from a resume checkpoint are not
// counted — they ran in a previous process.
var probesTotal = obs.Default.Counter("dnstime_search_probes",
	"Probe campaigns executed by the adaptive search engine (checkpoint-resumed probes excluded).")

// Options configures a search run: the scenario under test, how each
// probe campaign is sized, the success-rate target, and persistence.
// Every probe inherits the zero-value defaults of campaign.Engine
// (16 seeds, base seed 1, GOMAXPROCS workers).
type Options struct {
	// Scenario is the registered scenario every probe runs.
	Scenario string
	// Seeds is the number of seeds per probe campaign (default 16).
	Seeds int
	// BaseSeed is each probe campaign's first seed (default 1).
	BaseSeed int64
	// Workers caps each probe campaign's concurrency. The search output
	// does not depend on it.
	Workers int
	// Fast passes Fast mode through to every run.
	Fast bool
	// Params are fixed scenario params applied to every probe, on top of
	// which the search writes the swept key(s).
	Params scenario.Params
	// Target is the success-rate threshold in (0, 1) that defines the
	// boundary being searched (default 0.5): a probe "succeeds" when its
	// campaign's success rate reaches Target.
	Target float64
	// Checkpoint, when set, appends every completed probe to this JSONL
	// file so an interrupted search can resume without re-running them.
	Checkpoint string
	// Resume, when set, reuses completed probes recorded in this
	// checkpoint file. Pass the same path as Checkpoint to keep
	// extending one file across interruptions (a missing file is then a
	// fresh start, not an error).
	Resume string
	// Force accepts a resume checkpoint written by a different VCS
	// revision (refused by default — its probes may not reproduce).
	Force bool
	// Progress, if set, is called after each probe with the probe and
	// the running done count; total is the remaining worst-case probe
	// count (Bisect) or the cell-campaign count (Grid).
	Progress func(p Probe, done, total int)
}

// withDefaults fills unset option fields.
func (o Options) withDefaults() Options {
	if o.Seeds <= 0 {
		o.Seeds = campaign.DefaultSeeds
	}
	if o.BaseSeed == 0 {
		o.BaseSeed = campaign.DefaultBaseSeed
	}
	if o.Target == 0 {
		o.Target = 0.5
	}
	return o
}

// validate rejects option sets no probe can evaluate.
func (o Options) validate() error {
	if o.Scenario == "" {
		return fmt.Errorf("search: no scenario")
	}
	if math.IsNaN(o.Target) || o.Target <= 0 || o.Target >= 1 {
		return fmt.Errorf("search: target must be a success rate in (0, 1), got %v", o.Target)
	}
	return nil
}

// Probe is one evaluated point of the search: a full multi-seed
// campaign at one parameter assignment, reduced to its binary-outcome
// statistics. Probes carry no wall-clock fields, so search output is
// byte-identical across worker counts and across resumes.
type Probe struct {
	// Value is the swept parameter value the probe ran at, as passed to
	// the scenario (Bisect; empty for Grid cells, whose identity is the
	// cell's param set).
	Value string `json:"value,omitempty"`
	// Successes and Runs are the campaign's binary-outcome counts.
	Successes int `json:"successes"`
	Runs      int `json:"runs"`
	// Rate is Successes/Runs with its 95% Wilson interval (fractions).
	Rate float64        `json:"rate"`
	CI   stats.Interval `json:"ci"`
	// Success reports whether Rate reached the search target — the bit
	// the bisection steps on.
	Success bool `json:"success"`
	// Cached marks a probe answered from a resume checkpoint instead of
	// an executed campaign. Excluded from JSON: a resumed search's
	// output must stay byte-identical to an uninterrupted one.
	Cached bool `json:"-"`
}

// probeKey is a probe campaign's canonical identity inside a checkpoint
// file: the full param assignment (sorted), plus the seed range — the
// same point probed at different seed counts is a different measurement.
func probeKey(params scenario.Params, seeds int, baseSeed int64) string {
	keys := make([]string, 0, len(params))
	for k := range params {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var sb strings.Builder
	for _, k := range keys {
		fmt.Fprintf(&sb, "%s=%s,", k, params[k])
	}
	fmt.Fprintf(&sb, "seeds=%d,base=%d", seeds, baseSeed)
	return sb.String()
}

// probeParams merges the fixed params with the swept assignment.
func probeParams(fixed scenario.Params, swept map[string]string) scenario.Params {
	p := scenario.Params{}
	for k, v := range fixed {
		p[k] = v
	}
	for k, v := range swept {
		p[k] = v
	}
	return p
}

// runProbe executes one probe campaign (or answers it from the resume
// cache) and folds it to a Probe. Seed errors fail the probe loudly: a
// threshold read off a partially errored campaign would be garbage with
// a confident face.
func runProbe(ctx context.Context, opt Options, cache *probeCache, swept map[string]string, seeds int, baseSeed int64) (Probe, error) {
	params := probeParams(opt.Params, swept)
	key := probeKey(params, seeds, baseSeed)
	if rec, ok := cache.get(key); ok {
		return foldProbe(opt, swept, rec.Successes, rec.Runs, true), nil
	}
	start := time.Now()
	agg, err := campaign.NewEngine(
		campaign.WithSeeds(seeds),
		campaign.WithBaseSeed(baseSeed),
		campaign.WithWorkers(opt.Workers),
		campaign.WithFast(opt.Fast),
		campaign.WithParams(params),
	).Run(ctx, opt.Scenario)
	obs.ObservePhase(obs.PhaseProbe, time.Since(start))
	if err != nil {
		return Probe{}, err
	}
	probesTotal.Inc()
	if agg.Errors > 0 {
		first := ""
		for _, r := range agg.PerRun {
			if r.Err != "" {
				first = r.Err
				break
			}
		}
		return Probe{}, fmt.Errorf("search: probe %s: %d/%d seeds errored (first: %s)",
			key, agg.Errors, agg.Runs, first)
	}
	if agg.OutcomeRuns == 0 {
		return Probe{}, fmt.Errorf("search: scenario %s reports no binary outcome — nothing to search", opt.Scenario)
	}
	if err := cache.put(key, agg.Successes, agg.OutcomeRuns); err != nil {
		return Probe{}, err
	}
	return foldProbe(opt, swept, agg.Successes, agg.OutcomeRuns, false), nil
}

// foldProbe reduces outcome counts to a Probe against the target.
func foldProbe(opt Options, swept map[string]string, successes, runs int, cached bool) Probe {
	p := Probe{
		Successes: successes,
		Runs:      runs,
		Rate:      float64(successes) / float64(runs),
		CI:        stats.Wilson(successes, runs),
		Cached:    cached,
	}
	if len(swept) == 1 {
		for _, v := range swept {
			p.Value = v
		}
	}
	p.Success = p.Rate >= opt.Target
	return p
}
