package search

import (
	"testing"
	"time"
)

func TestParseValue(t *testing.T) {
	cases := []struct {
		kind Kind
		in   string
		want int64
		ok   bool
	}{
		{KindDuration, "-1.2s", int64(-1200 * time.Millisecond), true},
		{KindDuration, " 100ms ", int64(100 * time.Millisecond), true},
		{KindDuration, "0.5", 0, false}, // unitless
		{KindDuration, "soon", 0, false},
		{KindFraction, "0.25", 250000, true},
		{KindFraction, "-0.5", -500000, true},
		{KindFraction, "NaN", 0, false},
		{KindFraction, "+Inf", 0, false},
		{KindFraction, "1e999", 0, false}, // overflows to +Inf
		{KindFraction, "x", 0, false},
	}
	for _, c := range cases {
		got, err := ParseValue(c.kind, c.in)
		if c.ok != (err == nil) || (c.ok && got != c.want) {
			t.Errorf("ParseValue(%v, %q) = %d, %v; want %d, ok=%t", c.kind, c.in, got, err, c.want, c.ok)
		}
	}
}

// TestAxisFormatRoundTrip: every grid point of an axis must render to a
// param string that parses back to the same tick — the returned bracket
// bounds are meant to be pasted straight into -param/-lo/-hi.
func TestAxisFormatRoundTrip(t *testing.T) {
	axes := []Axis{
		{Key: "margin", Kind: KindDuration, Lo: int64(-2 * time.Second), Hi: 0, Step: int64(100 * time.Millisecond)},
		{Key: "loss", Kind: KindFraction, Lo: 0, Hi: 1000000, Step: 25000},
	}
	for _, ax := range axes {
		for v := ax.Lo; v <= ax.Hi; v += ax.Step {
			s := ax.Format(v)
			got, err := ParseValue(ax.Kind, s)
			if err != nil || got != v {
				t.Fatalf("%s axis: Format(%d) = %q parses to %d, %v", ax.Kind, v, s, got, err)
			}
		}
	}
}

func TestAxisBudget(t *testing.T) {
	ax := Axis{Key: "margin", Kind: KindDuration, Lo: int64(-2 * time.Second), Hi: 0, Step: int64(100 * time.Millisecond)}
	if w := ax.width(); w != 20 {
		t.Fatalf("width = %d, want 20", w)
	}
	// ⌈log₂20⌉ = 5: the committed racemargin bracket costs five probes.
	if b := ax.Budget(); b != 5 {
		t.Errorf("Budget() = %d, want 5", b)
	}
	for _, c := range []struct{ width, want int64 }{
		{1, 0}, {2, 1}, {3, 2}, {4, 2}, {5, 3}, {16, 4}, {17, 5}, {1024, 10},
	} {
		ax := Axis{Key: "x", Kind: KindFraction, Lo: 0, Hi: c.width, Step: 1}
		if got := int64(ax.Budget()); got != c.want {
			t.Errorf("Budget(width %d) = %d, want %d", c.width, got, c.want)
		}
	}
}

func TestAxisValidate(t *testing.T) {
	good := Axis{Key: "x", Kind: KindFraction, Lo: 0, Hi: 100, Step: 10}
	if err := good.validate(); err != nil {
		t.Fatalf("valid axis rejected: %v", err)
	}
	bad := map[string]Axis{
		"empty key":      {Kind: KindFraction, Lo: 0, Hi: 100, Step: 10},
		"key with space": {Key: "a b", Kind: KindFraction, Lo: 0, Hi: 100, Step: 10},
		"zero step":      {Key: "x", Lo: 0, Hi: 100},
		"negative step":  {Key: "x", Lo: 0, Hi: 100, Step: -10},
		"empty bracket":  {Key: "x", Lo: 100, Hi: 100, Step: 10},
		"inverted":       {Key: "x", Lo: 100, Hi: 0, Step: 10},
		"unaligned lo":   {Key: "x", Lo: 5, Hi: 100, Step: 10},
		"unaligned hi":   {Key: "x", Lo: 0, Hi: 95, Step: 10},
	}
	for name, ax := range bad {
		if err := ax.validate(); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

// TestDefaultAxis: the racemargin mapping reproduces the committed
// bracket search (EXPERIMENTS.md) and unknown scenarios report false.
func TestDefaultAxis(t *testing.T) {
	ax, ok := DefaultAxis("racemargin")
	if !ok || ax.Key != "margin" || ax.Kind != KindDuration {
		t.Fatalf("DefaultAxis(racemargin) = %+v, %t", ax, ok)
	}
	if err := ax.validate(); err != nil {
		t.Errorf("built-in axis invalid: %v", err)
	}
	if ax.Format(ax.Lo) != "-2s" || ax.Format(ax.Hi) != "0s" || ax.Budget() != 5 {
		t.Errorf("racemargin axis = [%s, %s] budget %d, want [-2s, 0s] budget 5",
			ax.Format(ax.Lo), ax.Format(ax.Hi), ax.Budget())
	}
	if _, ok := DefaultAxis("boot"); ok {
		t.Error("boot has a default axis")
	}
}
