// Package search locates phase boundaries in scenario space by driving
// campaigns adaptively instead of sweeping fixed grids (DESIGN.md §13).
//
// Two strategies share one probe substrate:
//
//   - Bisect brackets the collapse threshold of a monotone
//     success-vs-parameter axis (e.g. racemargin's success-vs-margin
//     curve) to a requested resolution in O(log(width/resolution))
//     probe campaigns, where an exhaustive sweep would need
//     O(width/resolution).
//   - Grid sweeps a parameter matrix (netem profile × topology ×
//     client × attack knobs), optionally Latin-hypercube subsampled,
//     pruning cells early once a small staged campaign's Wilson
//     interval already excludes the target success rate.
//
// Every probe is one multi-seed campaign executed by campaign.Engine,
// so probes inherit the engine's guarantees: per-seed determinism and
// worker-count-independent aggregates. The search layer adds its own
// determinism contract on top — probe order is a pure function of probe
// outcomes, and results carry no wall-clock fields — so a search's JSON
// output is byte-identical at any worker count. Completed probes can be
// checkpointed to a JSONL file and resumed (skipping their campaigns
// entirely); like campaign checkpoints, the file records the build's
// VCS revision and a resume under a different revision is refused
// unless forced.
package search
