package search

import (
	"context"
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"

	"dnstime/internal/scenario"
)

// The synthetic monotone oracle every search test probes: a registered
// scenario whose per-seed outcome is a step function of the "x" param.
// Seed s flips at threshold + spread·((s mod 7 − 3)/3), so with
// spread=0 the success rate jumps 0→1 at the threshold and with
// spread>0 it ramps monotonically across threshold ± spread — both
// shapes any correct bisection must locate. "dir=falling" mirrors the
// step (success below the threshold); "mode" is an inert grid
// dimension.
var (
	oracleThreshold atomic.Int64 // millionths
	oracleRuns      atomic.Int64 // every executed oracle run
)

// oracleSucceeds is the oracle's ground truth, shared by the registered
// scenario and the tests' direct assertions.
func oracleSucceeds(x, threshold, spread float64, seed int64, falling bool) bool {
	th := threshold + spread*(float64(seed%7)-3)/3
	if falling {
		return x <= th
	}
	return x >= th
}

func init() {
	scenario.Register(scenario.Scenario{
		Name:      "t-search-step",
		Title:     "Search-test monotone step oracle",
		PaperRef:  "§0",
		Impl:      "search_test.step",
		CLI:       "none",
		ParamKeys: []string{"x", "mode", "spread", "dir"},
		Order:     1100,
		Run: func(_ context.Context, seed int64, cfg scenario.Config) (scenario.Result, error) {
			oracleRuns.Add(1)
			x, err := cfg.Params.Float("x", 0)
			if err != nil {
				return scenario.Result{}, err
			}
			spread, err := cfg.Params.Float("spread", 0)
			if err != nil {
				return scenario.Result{}, err
			}
			th := float64(oracleThreshold.Load()) / fractionScale
			ok := oracleSucceeds(x, th, spread, seed, cfg.Params.Str("dir", "") == "falling")
			return scenario.Result{Success: scenario.Bool(ok)}, nil
		},
	})
}

// unitAxis is the tests' standard axis: x over [0, 1] at 0.01.
func unitAxis() Axis {
	return Axis{Key: "x", Kind: KindFraction, Lo: 0, Hi: 1000000, Step: 10000}
}

// ticks parses a formatted bound back into native units.
func ticks(t *testing.T, k Kind, s string) int64 {
	t.Helper()
	v, err := ParseValue(k, s)
	if err != nil {
		t.Fatalf("bound %q does not parse: %v", s, err)
	}
	return v
}

// TestBisectLocatesThreshold is the property test: for thresholds
// planted across the bracket, the bisection must return the unique
// one-step bracket stranding the threshold (fail at Lo, success at Hi),
// within the ⌈log₂(width/resolution)⌉ probe budget.
func TestBisectLocatesThreshold(t *testing.T) {
	ax := unitAxis()
	for _, th := range []int64{5000, 10000, 135000, 415000, 500000, 720000, 995000, 1000000} {
		oracleThreshold.Store(th)
		res, err := Bisect(context.Background(), ax, Options{Scenario: "t-search-step", Seeds: 4})
		if err != nil {
			t.Fatalf("th=%d: %v", th, err)
		}
		if len(res.Probes) > res.Budget || res.Budget != ax.Budget() {
			t.Errorf("th=%d: %d probes, budget %d (axis budget %d)", th, len(res.Probes), res.Budget, ax.Budget())
		}
		lo, hi := ticks(t, ax.Kind, res.Lo), ticks(t, ax.Kind, res.Hi)
		if hi-lo != ax.Step {
			t.Errorf("th=%d: bracket [%s, %s] is %d wide, want one step", th, res.Lo, res.Hi, hi-lo)
		}
		// The step oracle succeeds exactly at x ≥ th, so the threshold
		// must satisfy lo < th ≤ hi.
		if !(lo < th && th <= hi) {
			t.Errorf("th=%d: bracket [%s, %s] does not strand the threshold", th, res.Lo, res.Hi)
		}
	}
}

// TestBisectFallingAxis mirrors the property test for a falling axis
// (success below the threshold): the bracket then has success at Lo and
// failure at Hi, stranding the threshold as lo ≤ th < hi.
func TestBisectFallingAxis(t *testing.T) {
	ax := unitAxis()
	ax.Falling = true
	for _, th := range []int64{0, 135000, 500000, 995000} {
		oracleThreshold.Store(th)
		res, err := Bisect(context.Background(), ax, Options{
			Scenario: "t-search-step", Seeds: 4,
			Params: scenario.Params{"dir": "falling"},
		})
		if err != nil {
			t.Fatalf("th=%d: %v", th, err)
		}
		lo, hi := ticks(t, ax.Kind, res.Lo), ticks(t, ax.Kind, res.Hi)
		if !(lo <= th && th < hi) || len(res.Probes) > res.Budget {
			t.Errorf("th=%d: bracket [%s, %s] in %d probes does not strand the threshold",
				th, res.Lo, res.Hi, len(res.Probes))
		}
	}
}

// TestBisectTargetRate: with a per-seed spread the success rate ramps
// instead of stepping, and the bisection must bracket where the rate
// crosses the requested target — measured against the oracle's ground
// truth, not the probes' own claims.
func TestBisectTargetRate(t *testing.T) {
	ax := unitAxis()
	oracleThreshold.Store(500000)
	const seeds, spread = 16, 0.3
	rate := func(xTick int64) float64 {
		n := 0
		for s := int64(1); s <= seeds; s++ {
			if oracleSucceeds(float64(xTick)/fractionScale, 0.5, spread, s, false) {
				n++
			}
		}
		return float64(n) / seeds
	}
	for _, target := range []float64{0.25, 0.5, 0.9} {
		res, err := Bisect(context.Background(), ax, Options{
			Scenario: "t-search-step", Seeds: seeds, Target: target,
			Params: scenario.Params{"spread": "0.3"},
		})
		if err != nil {
			t.Fatalf("target=%v: %v", target, err)
		}
		lo, hi := ticks(t, ax.Kind, res.Lo), ticks(t, ax.Kind, res.Hi)
		if !(rate(lo) < target && rate(hi) >= target) {
			t.Errorf("target=%v: bracket [%s, %s] has rates %.3f / %.3f — does not strand the crossing",
				target, res.Lo, res.Hi, rate(lo), rate(hi))
		}
	}
}

// TestBisectDeterministicAcrossWorkers: the marshalled result is
// byte-identical at any probe worker count.
func TestBisectDeterministicAcrossWorkers(t *testing.T) {
	ax := unitAxis()
	oracleThreshold.Store(415000)
	marshal := func(workers int) string {
		res, err := Bisect(context.Background(), ax, Options{
			Scenario: "t-search-step", Seeds: 8, Workers: workers,
			Params: scenario.Params{"spread": "0.2"},
		})
		if err != nil {
			t.Fatal(err)
		}
		b, err := json.Marshal(res)
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}
	serial := marshal(1)
	if parallel := marshal(4); parallel != serial {
		t.Errorf("workers=4 output differs from workers=1:\n%s\nvs\n%s", parallel, serial)
	}
}

// TestBisectRejectsBadInputs: option and axis validation fail before
// any campaign runs.
func TestBisectRejectsBadInputs(t *testing.T) {
	ax := unitAxis()
	cases := map[string]struct {
		ax  Axis
		opt Options
	}{
		"no scenario":      {ax, Options{}},
		"unknown scenario": {ax, Options{Scenario: "sundial"}},
		"target 0":         {ax, Options{Scenario: "t-search-step", Target: -1}},
		"target 1":         {ax, Options{Scenario: "t-search-step", Target: 1}},
		"target NaN":       {ax, Options{Scenario: "t-search-step", Target: math.NaN()}},
		"bad axis":         {Axis{Key: "x"}, Options{Scenario: "t-search-step"}},
		"no outcome":       {ax, Options{Scenario: "table3", Params: nil}},
	}
	for name, c := range cases {
		if name == "no outcome" {
			// table3 takes no "x" param; use an axis over a key it has
			// no way to accept — the engine rejects it before running.
			c.ax = Axis{Key: "x", Kind: KindFraction, Lo: 0, Hi: 10, Step: 5}
		}
		if _, err := Bisect(context.Background(), c.ax, c.opt); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

// TestBisectCheckpointResume: a completed search's checkpoint answers a
// re-run without executing a single campaign, a torn checkpoint resumes
// from its valid prefix, and the resumed output is byte-identical.
func TestBisectCheckpointResume(t *testing.T) {
	ax := unitAxis()
	oracleThreshold.Store(135000)
	path := filepath.Join(t.TempDir(), "search.jsonl")
	opt := Options{Scenario: "t-search-step", Seeds: 4, Checkpoint: path, Resume: path}

	before := oracleRuns.Load()
	res, err := Bisect(context.Background(), ax, opt)
	if err != nil {
		t.Fatal(err)
	}
	executed := oracleRuns.Load() - before
	if want := int64(len(res.Probes) * 4); executed != want {
		t.Fatalf("first search executed %d runs, want %d", executed, want)
	}
	want, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}

	// Full resume: zero campaigns.
	before = oracleRuns.Load()
	res2, err := Bisect(context.Background(), ax, opt)
	if err != nil {
		t.Fatal(err)
	}
	if n := oracleRuns.Load() - before; n != 0 {
		t.Errorf("full resume executed %d runs, want 0", n)
	}
	if got, _ := json.Marshal(res2); string(got) != string(want) {
		t.Errorf("resumed output differs:\n%s\nvs\n%s", got, want)
	}
	for _, p := range res2.Probes {
		if !p.Cached {
			t.Errorf("resumed probe %s not marked cached", p.Value)
		}
	}

	// Torn resume: keep the header and two probe lines plus a torn
	// fragment; only the missing probes re-run.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitAfter(string(data), "\n")
	if len(lines) < 4 {
		t.Fatalf("checkpoint too short to tear: %q", data)
	}
	torn := strings.Join(lines[:3], "") + `{"key":"torn`
	if err := os.WriteFile(path, []byte(torn), 0o644); err != nil {
		t.Fatal(err)
	}
	before = oracleRuns.Load()
	res3, err := Bisect(context.Background(), ax, opt)
	if err != nil {
		t.Fatal(err)
	}
	if n := oracleRuns.Load() - before; n != int64((len(res.Probes)-2)*4) {
		t.Errorf("torn resume executed %d runs, want %d", n, (len(res.Probes)-2)*4)
	}
	if got, _ := json.Marshal(res3); string(got) != string(want) {
		t.Errorf("torn-resume output differs:\n%s\nvs\n%s", got, want)
	}
}

// TestBisectResumeRejectsMismatch: a checkpoint only answers the search
// its header describes, and a bare -resume against a missing file is an
// error (only the checkpoint+resume same-path workflow starts fresh).
func TestBisectResumeRejectsMismatch(t *testing.T) {
	ax := unitAxis()
	oracleThreshold.Store(500000)
	path := filepath.Join(t.TempDir(), "search.jsonl")
	if _, err := Bisect(context.Background(), ax, Options{
		Scenario: "t-search-step", Seeds: 2, Checkpoint: path,
	}); err != nil {
		t.Fatal(err)
	}
	bad := map[string]Options{
		"different target": {Scenario: "t-search-step", Seeds: 2, Resume: path, Target: 0.75},
		"different fast":   {Scenario: "t-search-step", Seeds: 2, Resume: path, Fast: true},
		"different params": {Scenario: "t-search-step", Seeds: 2, Resume: path, Params: scenario.Params{"spread": "0.1"}},
	}
	for name, opt := range bad {
		if _, err := Bisect(context.Background(), ax, opt); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	missing := Options{Scenario: "t-search-step", Seeds: 2,
		Resume: filepath.Join(t.TempDir(), "missing.jsonl")}
	if _, err := Bisect(context.Background(), ax, missing); err == nil {
		t.Error("missing resume file accepted")
	}
}

// TestSearchResumeRevisionGate: search checkpoints carry the writing
// build's VCS revision and refuse cross-revision resumes unless forced,
// mirroring the campaign engine's gate.
func TestSearchResumeRevisionGate(t *testing.T) {
	defer func(orig func() string) { buildRevision = orig }(buildRevision)
	ax := unitAxis()
	oracleThreshold.Store(500000)
	path := filepath.Join(t.TempDir(), "search.jsonl")

	buildRevision = func() string { return "aaaa00000000" }
	if _, err := Bisect(context.Background(), ax, Options{
		Scenario: "t-search-step", Seeds: 2, Checkpoint: path,
	}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if hdr := strings.SplitN(string(data), "\n", 2)[0]; !strings.Contains(hdr, `"revision":"aaaa00000000"`) {
		t.Fatalf("header lacks the revision stamp: %s", hdr)
	}

	buildRevision = func() string { return "bbbb11111111" }
	if _, err := Bisect(context.Background(), ax, Options{
		Scenario: "t-search-step", Seeds: 2, Resume: path,
	}); err == nil || !strings.Contains(err.Error(), "revision") {
		t.Errorf("cross-revision resume not refused: %v", err)
	}
	if _, err := Bisect(context.Background(), ax, Options{
		Scenario: "t-search-step", Seeds: 2, Resume: path, Force: true,
	}); err != nil {
		t.Errorf("forced cross-revision resume failed: %v", err)
	}

	// Unknown current build: nothing to compare, resume allowed.
	buildRevision = func() string { return "unknown" }
	if _, err := Bisect(context.Background(), ax, Options{
		Scenario: "t-search-step", Seeds: 2, Resume: path,
	}); err != nil {
		t.Errorf("resume under unknown current revision refused: %v", err)
	}
}
