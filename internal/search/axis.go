package search

import (
	"fmt"
	"math"
	"math/bits"
	"strconv"
	"strings"
	"time"
)

// Kind is the unit system of a search axis. All axis arithmetic happens
// on int64 ticks — never on float64 — so the bisection loop is exact:
// the same bracket always produces the same probe sequence, and a
// returned bound is always representable as a CLI parameter string that
// round-trips to the same tick.
type Kind int

// Axis unit systems. Each kind fixes how parameter strings map to ticks
// and back; ParseValue and Axis.Format are inverses within a kind.
const (
	// KindDuration is a time.Duration-valued axis, held in nanoseconds
	// and rendered with time.Duration.String ("-1.2s").
	KindDuration Kind = iota
	// KindFraction is a dimensionless float axis (a loss rate, a scale
	// factor), held in millionths and rendered as a decimal ("0.25").
	KindFraction
)

// String names the kind ("duration" or "fraction").
func (k Kind) String() string {
	switch k {
	case KindDuration:
		return "duration"
	case KindFraction:
		return "fraction"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// ParseKind parses a Kind name as the CLI spells it.
func ParseKind(s string) (Kind, error) {
	switch strings.TrimSpace(s) {
	case "duration":
		return KindDuration, nil
	case "fraction":
		return KindFraction, nil
	}
	return 0, fmt.Errorf("search: unknown axis kind %q (have: duration, fraction)", s)
}

// fractionScale is KindFraction's tick size: one millionth. Fine enough
// for any loss rate or scale factor the scenarios take, and exact in
// int64 across the full range a search could sweep.
const fractionScale = 1e6

// ParseValue parses one axis value into the kind's native int64 unit
// (nanoseconds, or millionths). Fraction values must be finite —
// strconv.ParseFloat accepts "NaN" and "+Inf", and a non-finite bracket
// endpoint would make every tick comparison in the bisection loop lie.
func ParseValue(k Kind, s string) (int64, error) {
	s = strings.TrimSpace(s)
	switch k {
	case KindDuration:
		d, err := time.ParseDuration(s)
		if err != nil {
			return 0, fmt.Errorf("search: %q is not a duration", s)
		}
		return int64(d), nil
	case KindFraction:
		f, err := strconv.ParseFloat(s, 64)
		if err != nil || math.IsNaN(f) || math.IsInf(f, 0) {
			return 0, fmt.Errorf("search: %q is not a finite number", s)
		}
		return int64(math.Round(f * fractionScale)), nil
	}
	return 0, fmt.Errorf("search: unknown axis kind %v", k)
}

// Axis is one monotone success-vs-parameter dimension of a scenario:
// the param key it sweeps, the bracket to search, and the resolution to
// stop at, all in the Kind's native int64 unit.
type Axis struct {
	// Key is the scenario param the axis drives (e.g. racemargin's
	// single-point "margin").
	Key string `json:"key"`
	// Kind selects the unit system (duration or fraction).
	Kind Kind `json:"-"`
	// Lo and Hi bracket the threshold. The search assumes the scenario
	// fails at Lo and succeeds at Hi (swapped under Falling) and only
	// probes strictly inside the bracket.
	Lo int64 `json:"-"`
	Hi int64 `json:"-"`
	// Step is the resolution: the search stops once the bracket is one
	// Step wide. Lo and Hi must be multiples of Step so every probe
	// lands exactly on the Step grid.
	Step int64 `json:"-"`
	// Falling flips the monotone direction: success at Lo, failure at
	// Hi (e.g. success-vs-loss axes, where more loss breaks the attack).
	Falling bool `json:"falling,omitempty"`
}

// Format renders a native-unit value as the scenario param string the
// probe passes (and the JSON output reports).
func (a Axis) Format(v int64) string {
	if a.Kind == KindFraction {
		return strconv.FormatFloat(float64(v)/fractionScale, 'g', -1, 64)
	}
	return time.Duration(v).String()
}

// validate rejects axes the tick-space bisection cannot search exactly.
func (a Axis) validate() error {
	switch {
	case a.Key == "" || strings.ContainsAny(a.Key, "= ,"):
		return fmt.Errorf("search: axis key %q is not a scenario param key", a.Key)
	case a.Step <= 0:
		return fmt.Errorf("search: axis resolution must be positive (got %s)", a.Format(a.Step))
	case a.Hi <= a.Lo:
		return fmt.Errorf("search: axis bracket is empty (%s..%s)", a.Format(a.Lo), a.Format(a.Hi))
	case a.Lo%a.Step != 0 || a.Hi%a.Step != 0:
		return fmt.Errorf("search: bracket %s..%s is not aligned to resolution %s",
			a.Format(a.Lo), a.Format(a.Hi), a.Format(a.Step))
	}
	return nil
}

// width is the bracket size in Steps.
func (a Axis) width() int64 { return (a.Hi - a.Lo) / a.Step }

// Budget is the worst-case number of probe campaigns a bisection of the
// axis needs: ⌈log₂(width/resolution)⌉. Bisect never exceeds it.
func (a Axis) Budget() int {
	w := a.width()
	if w <= 1 {
		return 0
	}
	return bits.Len64(uint64(w - 1))
}

// DefaultAxis returns the built-in search axis for a scenario, when one
// is defined. racemargin maps to its margin axis over [-2s, 0s] at
// 100 ms — the bracket whose bisection reproduces the committed
// −1.2s…−1.1s collapse threshold (EXPERIMENTS.md).
func DefaultAxis(scenarioName string) (Axis, bool) {
	switch scenarioName {
	case "racemargin":
		return Axis{
			Key:  "margin",
			Kind: KindDuration,
			Lo:   int64(-2 * time.Second),
			Hi:   0,
			Step: int64(100 * time.Millisecond),
		}, true
	}
	return Axis{}, false
}
