package ntpwire

import (
	"errors"
	"testing"
	"testing/quick"
	"time"

	"dnstime/internal/ipv4"
)

var t0 = time.Date(2020, 6, 15, 12, 0, 0, 0, time.UTC)

func TestTimestampRoundTrip(t *testing.T) {
	times := []time.Time{
		t0,
		time.Date(1999, 12, 31, 23, 59, 59, 999999999, time.UTC),
		time.Date(2036, 1, 1, 0, 0, 0, 500000000, time.UTC),
	}
	for _, tt := range times {
		got := ToTimestamp(tt).Time()
		if d := got.Sub(tt); d < -time.Microsecond || d > time.Microsecond {
			t.Errorf("round trip %v -> %v (err %v)", tt, got, d)
		}
	}
}

func TestZeroTimestamp(t *testing.T) {
	if ToTimestamp(time.Time{}) != 0 {
		t.Error("zero time did not map to zero timestamp")
	}
	if !Timestamp(0).Time().IsZero() {
		t.Error("zero timestamp did not map to zero time")
	}
}

func TestPacketRoundTrip(t *testing.T) {
	p := &Packet{
		Leap: LeapNone, Version: 4, Mode: ModeServer, Stratum: 2,
		Poll: 6, Precision: -20, RootDelay: 0x1234, RootDisp: 0x5678,
		RefID:    [4]byte{10, 0, 0, 1},
		RefTime:  ToTimestamp(t0),
		OrigTime: ToTimestamp(t0.Add(time.Second)),
		RecvTime: ToTimestamp(t0.Add(2 * time.Second)),
		XmitTime: ToTimestamp(t0.Add(3 * time.Second)),
	}
	got, err := Unmarshal(p.Marshal())
	if err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	if *got != *p {
		t.Errorf("round trip:\n got %+v\nwant %+v", got, p)
	}
}

func TestUnmarshalShort(t *testing.T) {
	if _, err := Unmarshal(make([]byte, 47)); !errors.Is(err, ErrShortPacket) {
		t.Errorf("err = %v, want ErrShortPacket", err)
	}
}

func TestClientPacketShape(t *testing.T) {
	p := NewClientPacket(t0)
	if p.Mode != ModeClient || p.Version != 4 {
		t.Errorf("mode/version = %d/%d", p.Mode, p.Version)
	}
	if p.XmitTime == 0 {
		t.Error("client packet missing T1 in xmit")
	}
}

func TestServerPacketEchoesOrigin(t *testing.T) {
	q := NewClientPacket(t0)
	r := NewServerPacket(q, t0.Add(42*time.Second), 2, [4]byte{1, 2, 3, 4})
	if r.Mode != ModeServer || r.Stratum != 2 {
		t.Errorf("mode/stratum = %d/%d", r.Mode, r.Stratum)
	}
	if r.OrigTime != q.XmitTime {
		t.Error("server did not echo client T1")
	}
	if r.RecvTime != r.XmitTime || r.RecvTime == 0 {
		t.Error("T2/T3 not set from server clock")
	}
}

func TestKoD(t *testing.T) {
	q := NewClientPacket(t0)
	k := NewKoD(q, KissRATE)
	if !k.IsKoD() {
		t.Fatal("KoD packet not recognised")
	}
	if k.KissCode() != "RATE" {
		t.Errorf("kiss code = %q", k.KissCode())
	}
	r := NewServerPacket(q, t0, 2, [4]byte{1, 2, 3, 4})
	if r.IsKoD() {
		t.Error("normal response classified as KoD")
	}
	if r.KissCode() != "" {
		t.Error("non-KoD has kiss code")
	}
}

func TestKoDSurvivesWire(t *testing.T) {
	k := NewKoD(NewClientPacket(t0), KissRATE)
	got, err := Unmarshal(k.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if !got.IsKoD() || got.KissCode() != "RATE" {
		t.Errorf("wire KoD = %+v", got)
	}
}

func TestRefIDLeak(t *testing.T) {
	upstream := ipv4.MustParseAddr("10.20.30.40")
	q := NewClientPacket(t0)
	r := NewServerPacket(q, t0, 3, [4]byte(upstream))
	got, ok := r.RefIDAddr()
	if !ok || got != upstream {
		t.Errorf("RefIDAddr = %v, %t; want %v", got, ok, upstream)
	}
	// Stratum 1 RefID is a clock source code, not an address.
	r1 := NewServerPacket(q, t0, 1, [4]byte{'G', 'P', 'S', 0})
	if _, ok := r1.RefIDAddr(); ok {
		t.Error("stratum-1 RefID interpreted as address")
	}
}

func TestOffsetSymmetricPath(t *testing.T) {
	// Client clock is 500 s behind true time; symmetric 10 ms path.
	shift := -500 * time.Second
	trueT1 := t0
	t1 := trueT1.Add(shift) // client's wrong local clock
	serverTime := trueT1.Add(10 * time.Millisecond)
	q := NewClientPacket(t1)
	r := NewServerPacket(q, serverTime, 2, [4]byte{1, 1, 1, 1})
	t4 := trueT1.Add(20 * time.Millisecond).Add(shift)
	off := Offset(r, t1, t4)
	// Offset should be ≈ +500 s (client must advance by 500 s).
	if d := off - 500*time.Second; d < -50*time.Millisecond || d > 50*time.Millisecond {
		t.Errorf("offset = %v, want ≈500 s", off)
	}
}

func TestDelayComputation(t *testing.T) {
	t1 := t0
	serverTime := t0.Add(15 * time.Millisecond)
	q := NewClientPacket(t1)
	r := NewServerPacket(q, serverTime, 2, [4]byte{1, 1, 1, 1})
	t4 := t0.Add(30 * time.Millisecond)
	d := Delay(r, t1, t4)
	if d != 30*time.Millisecond {
		t.Errorf("delay = %v, want 30 ms (T3==T2 so full RTT)", d)
	}
}

// Property: packets round-trip for arbitrary field values.
func TestPropertyPacketRoundTrip(t *testing.T) {
	f := func(stratum, leap uint8, poll, prec int8, refid [4]byte, ts uint64) bool {
		p := &Packet{
			Leap: leap & 0x3, Version: 4, Mode: ModeServer,
			Stratum: stratum, Poll: poll, Precision: prec,
			RefID: refid, XmitTime: Timestamp(ts),
		}
		got, err := Unmarshal(p.Marshal())
		return err == nil && *got == *p
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: timestamp conversion is monotone.
func TestPropertyTimestampMonotone(t *testing.T) {
	f := func(aSec, bSec uint32) bool {
		a := t0.Add(time.Duration(aSec) * time.Second / 16)
		b := t0.Add(time.Duration(bSec) * time.Second / 16)
		if a.After(b) {
			a, b = b, a
		}
		return ToTimestamp(a) <= ToTimestamp(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
