package ntpwire

import (
	"testing"
	"time"
)

// Committed allocation budgets for the NTP wire hot path: both directions
// must stay allocation-free — every client poll and server response in a
// campaign runs through exactly this pair.
const (
	allocBudgetEncode = 0 // Packet.AppendMarshal into a reused buffer
	allocBudgetDecode = 0 // UnmarshalInto a reused Packet
)

func TestAllocBudgetEncodeDecode(t *testing.T) {
	now := time.Date(2020, 2, 1, 0, 0, 0, 0, time.UTC)
	q := ClientPacket(now)
	wire := q.AppendMarshal(nil)

	var buf []byte
	encAvg := testing.AllocsPerRun(200, func() {
		buf = q.AppendMarshal(buf[:0])
	})
	if encAvg > allocBudgetEncode {
		t.Errorf("encode: %.1f allocs per AppendMarshal into reused buffer, budget %d", encAvg, allocBudgetEncode)
	}

	var rx Packet
	decAvg := testing.AllocsPerRun(200, func() {
		if err := UnmarshalInto(&rx, wire); err != nil {
			t.Fatal(err)
		}
	})
	if decAvg > allocBudgetDecode {
		t.Errorf("decode: %.1f allocs per UnmarshalInto, budget %d", decAvg, allocBudgetDecode)
	}
}
