// Package ntpwire implements the NTPv4 packet format (RFC 5905): the
// 48-byte client/server datagram with its four timestamps, stratum, poll
// and reference-identifier fields, plus the Kiss-o'-Death (KoD) convention
// and the reference-ID upstream leak the run-time attack's P2 discovery
// uses (a stratum-2 server's RefID is the IPv4 address of its sync source).
package ntpwire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"time"

	"dnstime/internal/ipv4"
)

// PacketLen is the length of a mode 3/4 NTP packet.
const PacketLen = 48

// Port is the well-known NTP UDP port.
const Port = 123

// Mode is the NTP association mode.
type Mode uint8

// Modes used in the simulation.
const (
	ModeClient    Mode = 3
	ModeServer    Mode = 4
	ModeControl   Mode = 6 // ntpq
	ModePrivate   Mode = 7 // ntpdc / "Config interface"
	ModeBroadcast Mode = 5
)

// Leap indicator values.
const (
	LeapNone    = 0
	LeapUnknown = 3 // clock unsynchronised
)

// KoD reference identifiers (stratum 0 ASCII codes, RFC 5905 §7.4).
var (
	KissRATE = [4]byte{'R', 'A', 'T', 'E'}
	KissDENY = [4]byte{'D', 'E', 'N', 'Y'}
)

// ErrShortPacket is returned for datagrams below 48 bytes.
var ErrShortPacket = errors.New("ntpwire: short packet")

// ntpEpoch is the NTP era-0 epoch (1 Jan 1900).
var ntpEpoch = time.Date(1900, 1, 1, 0, 0, 0, 0, time.UTC)

// Timestamp is a 64-bit NTP timestamp: 32.32 fixed-point seconds since 1900.
type Timestamp uint64

// ToTimestamp converts a time.Time to NTP format. The zero time maps to the
// zero timestamp (meaning "not set").
func ToTimestamp(t time.Time) Timestamp {
	if t.IsZero() {
		return 0
	}
	d := t.Sub(ntpEpoch)
	secs := uint64(d / time.Second)
	frac := uint64(d%time.Second) << 32 / uint64(time.Second)
	return Timestamp(secs<<32 | frac)
}

// Time converts back to time.Time; the zero timestamp yields the zero time.
func (ts Timestamp) Time() time.Time {
	if ts == 0 {
		return time.Time{}
	}
	secs := uint64(ts) >> 32
	frac := uint64(ts) & 0xffffffff
	ns := frac * uint64(time.Second) >> 32
	return ntpEpoch.Add(time.Duration(secs)*time.Second + time.Duration(ns))
}

// Packet is a mode 3/4 NTP packet.
type Packet struct {
	Leap      uint8
	Version   uint8
	Mode      Mode
	Stratum   uint8
	Poll      int8
	Precision int8
	RootDelay uint32
	RootDisp  uint32
	RefID     [4]byte

	RefTime  Timestamp // last clock update
	OrigTime Timestamp // T1: client transmit, echoed by server
	RecvTime Timestamp // T2: server receive
	XmitTime Timestamp // T3: server transmit
}

// IsKoD reports whether the packet is a Kiss-o'-Death (stratum 0 response).
func (p *Packet) IsKoD() bool {
	return p.Mode == ModeServer && p.Stratum == 0 && p.RefID != [4]byte{}
}

// KissCode returns the ASCII kiss code for KoD packets ("" otherwise).
func (p *Packet) KissCode() string {
	if !p.IsKoD() {
		return ""
	}
	return string(p.RefID[:])
}

// RefIDAddr interprets the reference ID as an IPv4 address — valid for
// stratum ≥ 2 servers, where it identifies the upstream sync source. This
// is the leak the P2 run-time attack uses to discover upstream servers.
func (p *Packet) RefIDAddr() (ipv4.Addr, bool) {
	if p.Stratum < 2 {
		return ipv4.Addr{}, false
	}
	return ipv4.Addr(p.RefID), true
}

// Marshal encodes the packet to its 48-byte wire form.
func (p *Packet) Marshal() []byte {
	return p.AppendMarshal(nil)
}

// AppendMarshal appends the packet's 48-byte wire form to dst and returns
// the extended slice. Encoding into a caller-supplied buffer is the
// allocation-free path servers and clients use per exchange.
func (p *Packet) AppendMarshal(dst []byte) []byte {
	off := len(dst)
	dst = append(dst, make([]byte, PacketLen)...)
	b := dst[off : off+PacketLen]
	b[0] = p.Leap<<6 | (p.Version&0x7)<<3 | uint8(p.Mode)&0x7
	b[1] = p.Stratum
	b[2] = byte(p.Poll)
	b[3] = byte(p.Precision)
	binary.BigEndian.PutUint32(b[4:8], p.RootDelay)
	binary.BigEndian.PutUint32(b[8:12], p.RootDisp)
	copy(b[12:16], p.RefID[:])
	binary.BigEndian.PutUint64(b[16:24], uint64(p.RefTime))
	binary.BigEndian.PutUint64(b[24:32], uint64(p.OrigTime))
	binary.BigEndian.PutUint64(b[32:40], uint64(p.RecvTime))
	binary.BigEndian.PutUint64(b[40:48], uint64(p.XmitTime))
	return dst
}

// Unmarshal decodes a 48-byte NTP packet.
func Unmarshal(b []byte) (*Packet, error) {
	p := &Packet{}
	if err := UnmarshalInto(p, b); err != nil {
		return nil, err
	}
	return p, nil
}

// UnmarshalInto decodes a 48-byte NTP packet into p, overwriting every
// field. Decoding into a caller-supplied (typically stack-allocated) Packet
// is the allocation-free path the receive handlers use.
func UnmarshalInto(p *Packet, b []byte) error {
	if len(b) < PacketLen {
		return fmt.Errorf("%w: %d bytes", ErrShortPacket, len(b))
	}
	*p = Packet{
		Leap:      b[0] >> 6,
		Version:   b[0] >> 3 & 0x7,
		Mode:      Mode(b[0] & 0x7),
		Stratum:   b[1],
		Poll:      int8(b[2]),
		Precision: int8(b[3]),
		RootDelay: binary.BigEndian.Uint32(b[4:8]),
		RootDisp:  binary.BigEndian.Uint32(b[8:12]),
		RefTime:   Timestamp(binary.BigEndian.Uint64(b[16:24])),
		OrigTime:  Timestamp(binary.BigEndian.Uint64(b[24:32])),
		RecvTime:  Timestamp(binary.BigEndian.Uint64(b[32:40])),
		XmitTime:  Timestamp(binary.BigEndian.Uint64(b[40:48])),
	}
	copy(p.RefID[:], b[12:16])
	return nil
}

// NewClientPacket builds a mode-3 query with T1 = now (by the client's own
// clock, which may be wrong — that is the point).
func NewClientPacket(localNow time.Time) *Packet {
	p := ClientPacket(localNow)
	return &p
}

// ClientPacket is NewClientPacket returning a value, for callers that keep
// the packet on the stack in allocation-sensitive paths.
func ClientPacket(localNow time.Time) Packet {
	return Packet{
		Leap:     LeapUnknown,
		Version:  4,
		Mode:     ModeClient,
		XmitTime: ToTimestamp(localNow), // clients put T1 in xmit
	}
}

// NewServerPacket builds a mode-4 reply to query. serverNow is the server's
// (possibly shifted) clock reading, used for both T2 and T3; refid is the
// server's reference identifier.
func NewServerPacket(query *Packet, serverNow time.Time, stratum uint8, refid [4]byte) *Packet {
	p := ServerPacket(query, serverNow, stratum, refid)
	return &p
}

// ServerPacket is NewServerPacket returning by value, for callers that keep
// the reply on the stack (the server hot path).
func ServerPacket(query *Packet, serverNow time.Time, stratum uint8, refid [4]byte) Packet {
	return Packet{
		Leap:     LeapNone,
		Version:  4,
		Mode:     ModeServer,
		Stratum:  stratum,
		Poll:     query.Poll,
		RefID:    refid,
		RefTime:  ToTimestamp(serverNow),
		OrigTime: query.XmitTime, // echo T1
		RecvTime: ToTimestamp(serverNow),
		XmitTime: ToTimestamp(serverNow),
	}
}

// NewKoD builds a Kiss-o'-Death reply with the given kiss code.
func NewKoD(query *Packet, code [4]byte) *Packet {
	return &Packet{
		Leap:     LeapUnknown,
		Version:  4,
		Mode:     ModeServer,
		Stratum:  0,
		RefID:    code,
		OrigTime: query.XmitTime,
	}
}

// Offset computes the clock offset θ = ((T2−T1)+(T3−T4))/2 from a
// client-server exchange, where t1 and t4 are the client's local transmit
// and receive times.
func Offset(resp *Packet, t1, t4 time.Time) time.Duration {
	T1 := t1
	if resp.OrigTime != 0 {
		T1 = resp.OrigTime.Time()
	}
	T2 := resp.RecvTime.Time()
	T3 := resp.XmitTime.Time()
	return (T2.Sub(T1) + T3.Sub(t4)) / 2
}

// Delay computes the round-trip delay δ = (T4−T1)−(T3−T2).
func Delay(resp *Packet, t1, t4 time.Time) time.Duration {
	T2 := resp.RecvTime.Time()
	T3 := resp.XmitTime.Time()
	return t4.Sub(t1) - T3.Sub(T2)
}
