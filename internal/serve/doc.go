// Package serve is the resident experiment service: a long-running HTTP
// layer over the campaign Engine that turns one-shot CLI invocations
// into a system serving concurrent clients (DESIGN.md §11).
//
// Campaign submissions (a campaign.JobSpec: scenario, k=v params, seed
// set, fast) enter a bounded FIFO job queue and execute one at a time on
// a shared worker budget via campaign.Engine, so the service's output
// for a spec is byte-identical to `experiments campaigns` for the same
// spec at any worker count. Per-seed results stream to any number of
// clients as JSONL over HTTP while the campaign runs; completed
// aggregates are cached under the spec's canonical content address
// (JobSpec.Key), so repeat queries — dashboards, CI gates, parameter
// sweeps — return instantly without re-running the Engine. The service
// exposes /metrics (jobs, cache hit rate, runs/sec, per-scenario
// latency), token-bucket per-client rate limiting on submissions, an
// optional net/http/pprof mount for live profiling, and a graceful
// drain: Shutdown cancels in-flight campaigns, whose per-seed engine
// checkpoints in the state directory make a resubmission after restart
// resume instead of recompute.
package serve
