package serve

import (
	"sync"
	"time"
)

// limiterMaxClients bounds the per-client bucket map: when exceeded, the
// next Allow sweeps out every bucket that has refilled to full burst
// (idle clients), so an address-spraying client cannot grow the map
// without bound while active clients keep their state.
const limiterMaxClients = 4096

// Limiter is a token-bucket rate limiter with one bucket per client key.
// Each bucket holds up to burst tokens and refills continuously at rate
// tokens per second; Allow spends one token. The clock is injected so
// tests drive refill deterministically, with no wall-clock sleeps. A nil
// Limiter, or one built with rate <= 0, allows everything.
type Limiter struct {
	mu      sync.Mutex
	rate    float64
	burst   float64
	now     func() time.Time
	buckets map[string]*bucket
}

// bucket is one client's token state: the balance as of the last refill.
type bucket struct {
	tokens float64
	last   time.Time
}

// NewLimiter builds a Limiter refilling rate tokens per second up to
// burst per client. now supplies the clock (nil = time.Now). rate <= 0
// disables limiting; burst < 1 is raised to 1 so a conforming client is
// never starved outright.
func NewLimiter(rate float64, burst int, now func() time.Time) *Limiter {
	if now == nil {
		now = time.Now
	}
	b := float64(burst)
	if b < 1 {
		b = 1
	}
	return &Limiter{rate: rate, burst: b, now: now, buckets: map[string]*bucket{}}
}

// Allow reports whether client may proceed, spending one of its tokens
// if so. Buckets start full, so a new client gets its whole burst
// immediately; isolation is per key — one client exhausting its bucket
// never affects another's.
func (l *Limiter) Allow(client string) bool {
	if l == nil || l.rate <= 0 {
		return true
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	now := l.now()
	b, ok := l.buckets[client]
	if !ok {
		if len(l.buckets) >= limiterMaxClients {
			l.sweep(now)
		}
		b = &bucket{tokens: l.burst, last: now}
		l.buckets[client] = b
	}
	l.refill(b, now)
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}

// refill credits a bucket for the time elapsed since its last update,
// capping at the burst size.
func (l *Limiter) refill(b *bucket, now time.Time) {
	if elapsed := now.Sub(b.last).Seconds(); elapsed > 0 {
		b.tokens += elapsed * l.rate
		if b.tokens > l.burst {
			b.tokens = l.burst
		}
	}
	b.last = now
}

// sweep drops every bucket that has refilled to full burst — clients
// idle long enough to have regained all their tokens lose nothing by
// being forgotten, since a fresh bucket starts full anyway.
func (l *Limiter) sweep(now time.Time) {
	for key, b := range l.buckets {
		l.refill(b, now)
		if b.tokens >= l.burst {
			delete(l.buckets, key)
		}
	}
}
