package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"dnstime/internal/campaign"
	"dnstime/internal/obs"
	"dnstime/internal/scenario"
)

// defaultQueueCap bounds the job queue when Config.QueueCap is unset: a
// dashboard's worth of distinct campaigns can wait while one runs, and
// anything beyond that is load the client should shed (503) rather than
// buffer unboundedly.
const defaultQueueCap = 32

// Config sizes the resident experiment service. The zero value is a
// usable in-memory service: GOMAXPROCS engine workers, a 32-deep queue,
// no durable state, no rate limiting, no pprof.
type Config struct {
	// Workers is the shared engine worker budget each campaign runs on
	// (0 = GOMAXPROCS). It cannot change campaign output, only speed.
	Workers int
	// QueueCap bounds the FIFO job queue (0 = 32). Submissions beyond it
	// are rejected with 503 rather than buffered without limit.
	QueueCap int
	// StateDir, when set, holds one engine checkpoint per campaign key:
	// every completed seed is recorded as it finishes, a drained job's
	// seeds are resumed byte-identically on resubmission (even across a
	// server restart), and a completed campaign replays entirely from its
	// checkpoint. Empty disables durable state.
	StateDir string
	// Rate is the per-client token-bucket refill in submissions per
	// second (<= 0 disables rate limiting); Burst is the bucket size.
	Rate  float64
	Burst int
	// Pprof mounts net/http/pprof under /debug/pprof/ for live CPU and
	// heap profiling of the serving process.
	Pprof bool
	// CacheCap bounds the completed-aggregate cache (0 = 256 entries,
	// FIFO eviction).
	CacheCap int
	// Clock injects the wall clock used by metrics and the rate limiter
	// (nil = time.Now). Campaign output never depends on it.
	Clock func() time.Time
}

// Server is a resident experiment service instance: an HTTP API over a
// bounded FIFO campaign queue, an aggregate cache, per-client rate
// limiting and operational metrics. Build with New, mount Handler on an
// http.Server, and drain with Shutdown.
type Server struct {
	cfg     Config
	clock   func() time.Time
	mux     http.Handler
	limiter *Limiter
	cache   *cache
	metrics *metrics

	queueCh      chan *job
	quit         chan struct{}
	dispatchDone chan struct{}
	baseCtx      context.Context
	baseCancel   context.CancelFunc

	nextID atomic.Int64

	mu       sync.Mutex
	draining bool
	jobs     map[string]*job
	order    []*job
	inflight map[string]*job // queued or running, by campaign key
}

// New builds the service and starts its dispatcher. The state directory
// is created if needed.
func New(cfg Config) (*Server, error) {
	if cfg.StateDir != "" {
		if err := os.MkdirAll(cfg.StateDir, 0o755); err != nil {
			return nil, fmt.Errorf("serve: state dir: %w", err)
		}
	}
	clock := cfg.Clock
	if clock == nil {
		clock = time.Now
	}
	queueCap := cfg.QueueCap
	if queueCap <= 0 {
		queueCap = defaultQueueCap
	}
	s := &Server{
		cfg:          cfg,
		clock:        clock,
		limiter:      NewLimiter(cfg.Rate, cfg.Burst, clock),
		cache:        newCache(cfg.CacheCap),
		metrics:      newMetrics(clock),
		queueCh:      make(chan *job, queueCap),
		quit:         make(chan struct{}),
		dispatchDone: make(chan struct{}),
		jobs:         map[string]*job{},
		inflight:     map[string]*job{},
	}
	s.baseCtx, s.baseCancel = context.WithCancel(context.Background())

	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /scenarios", s.handleScenarios)
	mux.HandleFunc("POST /jobs", s.handleSubmit)
	mux.HandleFunc("GET /jobs", s.handleList)
	mux.HandleFunc("GET /jobs/{id}", s.handleStatus)
	mux.HandleFunc("GET /jobs/{id}/stream", s.handleStream)
	mux.HandleFunc("GET /jobs/{id}/trace", s.handleTrace)
	mux.HandleFunc("POST /jobs/{id}/cancel", s.handleCancel)
	mux.HandleFunc("DELETE /jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	if cfg.Pprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	s.mux = mux

	go s.dispatch()
	return s, nil
}

// Handler returns the service's HTTP API.
func (s *Server) Handler() http.Handler { return s.mux }

// Shutdown drains the service: submissions are refused, the running
// campaign's context is cancelled (its engine drains workers and leaves
// every completed seed in the state directory's checkpoint), and queued
// jobs are marked canceled. It returns once the dispatcher has stopped,
// or ctx's error if that takes longer than the caller will wait.
// Shutdown is idempotent.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if !s.draining {
		s.draining = true
		close(s.quit)
		s.baseCancel()
	}
	s.mu.Unlock()
	select {
	case <-s.dispatchDone:
	case <-ctx.Done():
		return ctx.Err()
	}
	for {
		select {
		case j := <-s.queueCh:
			if before, acted := j.requestCancel("server draining"); acted && before == stateQueued {
				s.metrics.jobsQueued.Dec()
				s.metrics.jobsCanceled.Inc()
			}
			s.dropInflight(j)
		default:
			return nil
		}
	}
}

// dispatch is the queue consumer: one campaign at a time, FIFO, on the
// shared worker budget. It prefers the quit signal over new work so a
// drain never starts another campaign.
func (s *Server) dispatch() {
	defer close(s.dispatchDone)
	for {
		select {
		case <-s.quit:
			return
		default:
		}
		select {
		case <-s.quit:
			return
		case j := <-s.queueCh:
			s.runJob(j)
		}
	}
}

// runJob executes one queued campaign through the Engine, streaming
// per-seed results into the job's replay buffer, then records the
// terminal state and (for complete campaigns) populates the aggregate
// cache.
func (s *Server) runJob(j *job) {
	ctx, cancel := context.WithCancel(s.baseCtx)
	defer cancel()
	if !j.begin(cancel) {
		return // cancelled while queued; the cancel path updated metrics
	}
	s.metrics.jobsQueued.Dec()
	s.metrics.jobsRunning.Inc()
	start := s.clock()

	var executed atomic.Int64
	opts := j.spec.Options(
		campaign.WithWorkers(s.cfg.Workers),
		// Progress fires once per seed actually executed (resumed seeds
		// are pre-counted, cancelled runs never report), so this counter
		// is exactly the engine work this job cost.
		campaign.WithProgress(func(done, total int) { executed.Add(1) }),
	)
	if s.cfg.StateDir != "" {
		path := filepath.Join(s.cfg.StateDir, j.key+".jsonl")
		opts = append(opts, campaign.WithCheckpoint(path), campaign.WithResume(path))
	}
	if j.spec.Trace {
		// Traced jobs record one in-memory Chrome trace per executed seed
		// (pid = seed, so the merged /trace view shows one process lane per
		// seed). Resumed seeds are not re-executed and leave no trace.
		opts = append(opts, campaign.WithTracerFactory(func(seed int64) (obs.Tracer, error) {
			buf := &bytes.Buffer{}
			j.addTrace(seed, buf)
			return obs.NewChrome(buf, seed), nil
		}))
	}
	s.metrics.engineCampaigns.Inc()

	st, err := campaign.NewEngine(opts...).Stream(ctx, j.spec.Scenario)
	if err != nil {
		j.finish(stateFailed, nil, err.Error())
		s.finalizeJob(j, stateFailed, 0, 0, s.clock().Sub(start).Seconds())
		return
	}
	for res := range st.Results() {
		j.push(res)
	}
	agg, err := st.Wait()
	exec := executed.Load()
	resumed := int64(agg.Runs) - exec
	seconds := s.clock().Sub(start).Seconds()

	switch {
	case err == nil && !agg.Partial:
		raw, merr := marshalAggregate(agg)
		if merr != nil {
			j.finish(stateFailed, nil, merr.Error())
			s.finalizeJob(j, stateFailed, exec, resumed, seconds)
			return
		}
		if !j.spec.Trace {
			// A traced job's deliverable includes the trace, which the
			// aggregate cache cannot replay — traced campaigns always
			// execute. Trace is part of the job Key, so they never collide
			// with untraced entries either.
			s.cache.put(j.key, agg)
		}
		j.finish(stateDone, raw, "")
		s.finalizeJob(j, stateDone, exec, resumed, seconds)
	case agg.Partial:
		// A cancelled campaign still has a well-defined partial aggregate
		// over its completed seeds; the checkpoint (if any) holds them for
		// resumption. Partial aggregates never enter the cache.
		raw, _ := marshalAggregate(agg)
		msg := "canceled"
		if err != nil {
			msg = err.Error()
		}
		j.finish(stateCanceled, raw, msg)
		s.finalizeJob(j, stateCanceled, exec, resumed, seconds)
	default:
		j.finish(stateFailed, nil, err.Error())
		s.finalizeJob(j, stateFailed, exec, resumed, seconds)
	}
}

// finalizeJob folds a finished run into the metrics and frees its
// campaign key for resubmission.
func (s *Server) finalizeJob(j *job, state string, executed, resumed int64, seconds float64) {
	s.metrics.jobsRunning.Dec()
	switch state {
	case stateDone:
		s.metrics.jobsDone.Inc()
	case stateFailed:
		s.metrics.jobsFailed.Inc()
	case stateCanceled:
		s.metrics.jobsCanceled.Inc()
	}
	s.metrics.jobFinished(j.spec.Scenario, executed, resumed, seconds)
	s.dropInflight(j)
}

// dropInflight removes the job's campaign-key reservation if it still
// holds it (idempotent — a resubmitted key may already point at a newer
// job).
func (s *Server) dropInflight(j *job) {
	s.mu.Lock()
	if s.inflight[j.key] == j {
		delete(s.inflight, j.key)
	}
	s.mu.Unlock()
}

// lookupJob resolves a job ID.
func (s *Server) lookupJob(id string) (*job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// handleSubmit is POST /jobs: rate-limit the client, validate the spec,
// serve a cache hit instantly, coalesce onto an identical in-flight job,
// or enqueue — rejecting with 503 when the bounded queue is full or the
// server is draining.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	if !s.limiter.Allow(clientKey(r)) {
		s.metrics.rateLimited.Inc()
		writeErr(w, http.StatusTooManyRequests, "rate limit exceeded")
		return
	}
	var spec campaign.JobSpec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Sprintf("bad submission: %v", err))
		return
	}
	norm, err := spec.Normalize()
	if err != nil {
		writeErr(w, http.StatusBadRequest, err.Error())
		return
	}
	key, err := norm.Key()
	if err != nil {
		writeErr(w, http.StatusBadRequest, err.Error())
		return
	}

	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		writeErr(w, http.StatusServiceUnavailable, "server draining")
		return
	}
	s.metrics.submissions.Inc()
	if agg, ok := s.cache.get(key); ok {
		j, err := newCachedJob(s.newID(), key, norm, agg)
		if err != nil {
			s.mu.Unlock()
			writeErr(w, http.StatusInternalServerError, err.Error())
			return
		}
		s.jobs[j.id] = j
		s.order = append(s.order, j)
		s.mu.Unlock()
		s.metrics.cacheHits.Inc()
		s.metrics.jobsDone.Inc()
		writeJSON(w, http.StatusOK, j.view(true))
		return
	}
	if live, ok := s.inflight[key]; ok {
		s.mu.Unlock()
		s.metrics.coalesced.Inc()
		writeJSON(w, http.StatusOK, live.view(false))
		return
	}
	j := newJob(s.newID(), key, norm)
	select {
	case s.queueCh <- j:
	default:
		s.mu.Unlock()
		s.metrics.queueFull.Inc()
		writeErr(w, http.StatusServiceUnavailable, "job queue full")
		return
	}
	s.jobs[j.id] = j
	s.order = append(s.order, j)
	s.inflight[key] = j
	s.mu.Unlock()
	s.metrics.cacheMisses.Inc()
	s.metrics.jobsQueued.Inc()
	writeJSON(w, http.StatusAccepted, j.view(false))
}

// newID mints the next job ID. Callers hold s.mu only incidentally; the
// counter is atomic.
func (s *Server) newID() string {
	return fmt.Sprintf("j%d", s.nextID.Add(1))
}

// handleList is GET /jobs: every job in submission order, without
// aggregate payloads.
func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	views := make([]jobView, len(s.order))
	for i, j := range s.order {
		views[i] = j.view(false)
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, struct {
		Jobs []jobView `json:"jobs"`
	}{views})
}

// handleStatus is GET /jobs/{id}: one job, aggregate included once
// terminal.
func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookupJob(r.PathValue("id"))
	if !ok {
		writeErr(w, http.StatusNotFound, "no such job")
		return
	}
	writeJSON(w, http.StatusOK, j.view(true))
}

// handleCancel is POST /jobs/{id}/cancel (or DELETE /jobs/{id}): cancel
// a queued or running job. Terminal jobs answer 409.
func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookupJob(r.PathValue("id"))
	if !ok {
		writeErr(w, http.StatusNotFound, "no such job")
		return
	}
	before, acted := j.requestCancel("canceled by client")
	if !acted {
		writeErr(w, http.StatusConflict, fmt.Sprintf("job already %s", before))
		return
	}
	if before == stateQueued {
		s.metrics.jobsQueued.Dec()
		s.metrics.jobsCanceled.Inc()
		s.dropInflight(j)
	}
	writeJSON(w, http.StatusOK, j.view(true))
}

// streamLine is one JSONL line of GET /jobs/{id}/stream: per-seed
// results as they complete, then exactly one terminal line — an
// aggregate (whose bytes match `experiments campaigns -json` for the
// same spec; partial and cancelled campaigns carry the cancellation in
// the error field alongside their partial aggregate) or an error.
type streamLine struct {
	Type      string          `json:"type"` // "result", "aggregate" or "error"
	Result    json.RawMessage `json:"result,omitempty"`
	Aggregate json.RawMessage `json:"aggregate,omitempty"`
	Cached    bool            `json:"cached,omitempty"`
	Error     string          `json:"error,omitempty"`
}

// handleStream is GET /jobs/{id}/stream: JSONL per-seed results in
// completion order (a finished or cached job replays its buffer — seed
// order for cached aggregates), terminated by the aggregate or error
// line. Any number of clients may stream one job; a subscriber joining
// mid-campaign first receives the full replay.
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookupJob(r.PathValue("id"))
	if !ok {
		writeErr(w, http.StatusNotFound, "no such job")
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	// A disconnecting client must unblock its own cond.Wait below.
	stop := context.AfterFunc(r.Context(), j.wake)
	defer stop()

	next := 0
	for {
		j.mu.Lock()
		for next >= len(j.results) && !terminal(j.state) && r.Context().Err() == nil {
			j.cond.Wait()
		}
		batch := append([]scenario.Result(nil), j.results[next:]...)
		next += len(batch)
		state, agg, errMsg, cached := j.state, j.agg, j.errMsg, j.cached
		final := terminal(state) && next == len(j.results)
		j.mu.Unlock()

		if r.Context().Err() != nil {
			return
		}
		for _, res := range batch {
			raw, err := json.Marshal(res)
			if err != nil {
				return
			}
			if !writeLine(w, streamLine{Type: "result", Result: raw}) {
				return
			}
		}
		if final {
			line := streamLine{Type: "aggregate", Aggregate: agg, Cached: cached, Error: errMsg}
			if agg == nil {
				line = streamLine{Type: "error", Error: errMsg}
			}
			writeLine(w, line)
			if flusher != nil {
				flusher.Flush()
			}
			return
		}
		if flusher != nil {
			flusher.Flush()
		}
	}
}

// writeLine emits one JSONL line, reporting whether the write succeeded.
func writeLine(w http.ResponseWriter, line streamLine) bool {
	b, err := json.Marshal(line)
	if err != nil {
		return false
	}
	_, err = w.Write(append(b, '\n'))
	return err == nil
}

// handleMetrics is GET /metrics. The default view is the service's
// operational counters as a JSON document; a client that asks for
// ?format=prometheus (or sends an Accept header preferring text/plain or
// OpenMetrics) gets the Prometheus text exposition instead — the server's
// own registry merged with the process-wide obs.Default instruments (lab
// pool, phase timing, engine seed latency). Both views read the same
// counters.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if wantsPrometheus(r) {
		s.metrics.cacheEntries.Set(int64(s.cache.len()))
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		w.WriteHeader(http.StatusOK)
		_ = obs.WritePrometheus(w, s.metrics.reg, obs.Default)
		return
	}
	writeJSON(w, http.StatusOK, s.metrics.snapshot(s.cache.len()))
}

// wantsPrometheus decides the /metrics representation: an explicit
// ?format= wins (prometheus/text vs json), otherwise the Accept header —
// text/plain or OpenMetrics selects the Prometheus exposition, anything
// else (including no preference) keeps the historical JSON document.
func wantsPrometheus(r *http.Request) bool {
	switch r.URL.Query().Get("format") {
	case "prometheus", "text":
		return true
	case "json":
		return false
	}
	accept := r.Header.Get("Accept")
	return strings.Contains(accept, "text/plain") ||
		strings.Contains(accept, "application/openmetrics-text")
}

// handleHealthz is GET /healthz: liveness plus the build revision, so a
// fleet health sweep identifies what each instance is running.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	status := "ok"
	if s.draining {
		status = "draining"
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, struct {
		Status   string `json:"status"`
		Revision string `json:"revision"`
	}{status, obs.BuildInfo().Revision})
}

// handleTrace is GET /jobs/{id}/trace: the merged Chrome trace_event
// document of a completed traced job — every executed seed's events in
// one array, one process lane (pid) per seed. Jobs submitted without
// trace:true answer 404; a job still queued or running answers 409 (its
// per-seed buffers are not final until the engine drains).
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookupJob(r.PathValue("id"))
	if !ok {
		writeErr(w, http.StatusNotFound, "no such job")
		return
	}
	if !j.spec.Trace {
		writeErr(w, http.StatusNotFound, "job was not submitted with trace:true")
		return
	}
	merged, done := j.mergedTrace()
	if !done {
		writeErr(w, http.StatusConflict, "job not finished; trace is available once terminal")
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(merged)
}

// handleScenarios is GET /scenarios: the registry as submission
// building blocks — names, titles, paper refs and accepted param keys.
func (s *Server) handleScenarios(w http.ResponseWriter, r *http.Request) {
	type entry struct {
		Name      string   `json:"name"`
		Title     string   `json:"title"`
		PaperRef  string   `json:"paper_ref,omitempty"`
		ParamKeys []string `json:"param_keys,omitempty"`
	}
	all := scenario.All()
	entries := make([]entry, len(all))
	for i, sc := range all {
		entries[i] = entry{Name: sc.Name, Title: sc.Title, PaperRef: sc.PaperRef, ParamKeys: sc.ParamKeys}
	}
	writeJSON(w, http.StatusOK, struct {
		Scenarios []entry `json:"scenarios"`
	}{entries})
}

// clientKey identifies a client for rate limiting: the connection's
// remote host, ignoring the ephemeral port.
func clientKey(r *http.Request) string {
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		return r.RemoteAddr
	}
	return host
}

// writeJSON renders v as a JSON response.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// writeErr renders an error response as {"error": msg}.
func writeErr(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, struct {
		Error string `json:"error"`
	}{msg})
}
