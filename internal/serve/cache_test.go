package serve

import (
	"encoding/json"
	"net/http"
	"testing"

	"dnstime/internal/campaign"
	"dnstime/internal/scenario"
)

// TestCacheKeyCanonicalizationOverHTTP exercises the canonical cache key
// end to end: submissions that differ only in JSON param order or in
// spelling out engine defaults hit the cache; submissions that change any
// output-affecting field miss it.
func TestCacheKeyCanonicalizationOverHTTP(t *testing.T) {
	stSet(0)
	_, ts := testServer(t, Config{Workers: 2})

	seed := `{"scenario":"servetest","seeds":3,"params":{"tag":"ck","mode":"m"}}`
	status, v := submit(t, ts.URL, seed)
	if status != http.StatusAccepted {
		t.Fatalf("seed submission status %d", status)
	}
	waitDone(t, ts.URL, v.ID)

	hits := []struct{ name, body string }{
		{"identical", seed},
		{"shuffled param order", `{"scenario":"servetest","seeds":3,"params":{"mode":"m","tag":"ck"}}`},
		{"explicit default base seed", `{"scenario":"servetest","seeds":3,"base_seed":1,"params":{"tag":"ck","mode":"m"}}`},
		{"reordered fields", `{"params":{"tag":"ck","mode":"m"},"seeds":3,"scenario":"servetest"}`},
	}
	for _, tc := range hits {
		status, got := submit(t, ts.URL, tc.body)
		if status != http.StatusOK || !got.Cached {
			t.Errorf("%s: status %d cached %t, want a cache hit", tc.name, status, got.Cached)
		}
		if got.Key != v.Key {
			t.Errorf("%s: key %s != original %s", tc.name, got.Key, v.Key)
		}
	}

	misses := []struct{ name, body string }{
		{"different seed count", `{"scenario":"servetest","seeds":4,"params":{"tag":"ck","mode":"m"}}`},
		{"explicit base seed 0", `{"scenario":"servetest","seeds":3,"base_seed":0,"params":{"tag":"ck","mode":"m"}}`},
		{"fast flag", `{"scenario":"servetest","seeds":3,"fast":true,"params":{"tag":"ck","mode":"m"}}`},
		{"changed param value", `{"scenario":"servetest","seeds":3,"params":{"tag":"ck","mode":"n"}}`},
		{"dropped param", `{"scenario":"servetest","seeds":3,"params":{"tag":"ck"}}`},
	}
	for _, tc := range misses {
		status, got := submit(t, ts.URL, tc.body)
		if status != http.StatusAccepted || got.Cached {
			t.Errorf("%s: status %d cached %t, want a fresh 202 job", tc.name, status, got.Cached)
		}
		if got.Key == v.Key {
			t.Errorf("%s: key collided with original spec", tc.name)
		}
		waitDone(t, ts.URL, got.ID)
	}

	var m metricsSnapshot
	getJSON(t, ts.URL+"/metrics", &m)
	if want := int64(len(hits)); m.Cache.Hits != want {
		t.Errorf("cache hits = %d, want %d", m.Cache.Hits, want)
	}
	if want := int64(1 + len(misses)); m.Cache.Misses != want {
		t.Errorf("cache misses = %d, want %d", m.Cache.Misses, want)
	}
}

// TestCacheOnlyCompleteAggregates: a cancelled (partial) campaign must
// not populate the cache — resubmitting its spec runs a fresh campaign.
func TestCacheOnlyCompleteAggregates(t *testing.T) {
	blocked, _ := stSet(1)
	_, ts := testServer(t, Config{Workers: 1})
	body := `{"scenario":"servetest","seeds":2,"params":{"tag":"partial"}}`
	_, v := submit(t, ts.URL, body)
	recvSeed(t, blocked)
	resp, err := http.Post(ts.URL+"/jobs/"+v.ID+"/cancel", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	waitDone(t, ts.URL, v.ID)

	stSet(0)
	status, again := submit(t, ts.URL, body)
	if status != http.StatusAccepted || again.Cached {
		t.Errorf("resubmission after partial: status %d cached %t, want fresh 202", status, again.Cached)
	}
	waitDone(t, ts.URL, again.ID)
}

// TestCacheFIFOEviction drives the cache unit directly: beyond capacity
// the oldest entry leaves first, and re-putting a key never duplicates.
func TestCacheFIFOEviction(t *testing.T) {
	c := newCache(2)
	agg := func(name string) campaign.ScenarioAggregate {
		return campaign.ScenarioAggregate{Scenario: name, Runs: 1}
	}
	c.put("a", agg("a"))
	c.put("b", agg("b"))
	c.put("a", agg("a-again")) // no-op: first complete aggregate wins
	if got, _ := c.get("a"); got.Scenario != "a" {
		t.Errorf("re-put replaced entry: %+v", got)
	}
	c.put("c", agg("c"))
	if _, ok := c.get("a"); ok {
		t.Error("oldest entry survived eviction")
	}
	for _, key := range []string{"b", "c"} {
		if _, ok := c.get(key); !ok {
			t.Errorf("entry %q evicted prematurely", key)
		}
	}
	if c.len() != 2 {
		t.Errorf("len = %d, want 2", c.len())
	}
}

// TestCachedReplayIsSeedOrdered: a cache-hit job replays per-run results
// in seed order regardless of the completion order the original campaign
// produced under parallel workers.
func TestCachedReplayIsSeedOrdered(t *testing.T) {
	stSet(0)
	_, ts := testServer(t, Config{Workers: 4})
	body := `{"scenario":"servetest","seeds":6,"params":{"tag":"order"}}`
	_, v := submit(t, ts.URL, body)
	waitDone(t, ts.URL, v.ID)

	_, hit := submit(t, ts.URL, body)
	lines := streamJob(t, ts.URL, hit.ID)
	var prev int64
	for _, line := range lines[:len(lines)-1] {
		var res scenario.Result
		if err := json.Unmarshal(line.Result, &res); err != nil {
			t.Fatal(err)
		}
		if res.Seed <= prev {
			t.Fatalf("cached replay out of seed order: seed %d after %d", res.Seed, prev)
		}
		prev = res.Seed
	}
}
