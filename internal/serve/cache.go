package serve

import (
	"sync"

	"dnstime/internal/campaign"
)

// defaultCacheCap bounds the aggregate cache when Config.CacheCap is
// unset: entries are small (an aggregate without per-run results is a few
// KB; per-run results scale with the seed count), so 256 completed
// campaigns comfortably cover a dashboard's working set.
const defaultCacheCap = 256

// cache maps a campaign's canonical content address (campaign.JobSpec
// .Key) to its completed aggregate. Only complete aggregates enter —
// partial (cancelled) and failed campaigns never populate the cache — so
// a hit can be served as if the Engine had just run: the stored PerRun
// results replay the JSONL stream and the stripped aggregate is
// byte-identical to a fresh campaign's. Eviction is FIFO by insertion
// order once cap is exceeded.
type cache struct {
	mu      sync.Mutex
	cap     int
	entries map[string]campaign.ScenarioAggregate
	order   []string
}

// newCache builds a cache holding at most cap aggregates (<= 0 selects
// defaultCacheCap).
func newCache(cap int) *cache {
	if cap <= 0 {
		cap = defaultCacheCap
	}
	return &cache{cap: cap, entries: map[string]campaign.ScenarioAggregate{}}
}

// get returns the cached aggregate for key, if any.
func (c *cache) get(key string) (campaign.ScenarioAggregate, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	agg, ok := c.entries[key]
	return agg, ok
}

// put stores a completed aggregate under key, evicting the oldest entry
// beyond capacity. Re-putting an existing key refreshes nothing: the
// first complete aggregate for a key is definitive (equal keys are
// byte-identical campaigns by construction).
func (c *cache) put(key string, agg campaign.ScenarioAggregate) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.entries[key]; ok {
		return
	}
	c.entries[key] = agg
	c.order = append(c.order, key)
	for len(c.order) > c.cap {
		delete(c.entries, c.order[0])
		c.order = c.order[1:]
	}
}

// len reports the number of cached aggregates.
func (c *cache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}
