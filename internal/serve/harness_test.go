package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"dnstime/internal/scenario"
)

// stGate is the control surface of the registered servetest scenario:
// tests point blockFrom at a seed to make that seed (and every later
// one) park until release closes, with each parked run announcing itself
// on blocked first. The completions map counts seeds that actually
// finished a run (cancelled runs never count), which is how tests prove
// resumed seeds were not re-executed.
var stGate = struct {
	sync.Mutex
	blockFrom   int64
	blocked     chan int64
	release     chan struct{}
	completions map[int64]int
}{completions: map[int64]int{}}

// stSet arms the gate for one test and resets the completion counts.
func stSet(blockFrom int64) (blocked chan int64, release chan struct{}) {
	blocked = make(chan int64, 64)
	release = make(chan struct{})
	stGate.Lock()
	stGate.blockFrom = blockFrom
	stGate.blocked = blocked
	stGate.release = release
	stGate.completions = map[int64]int{}
	stGate.Unlock()
	return blocked, release
}

// stCompletions snapshots how often each seed completed a run.
func stCompletions() map[int64]int {
	stGate.Lock()
	defer stGate.Unlock()
	out := make(map[int64]int, len(stGate.completions))
	for k, v := range stGate.completions {
		out[k] = v
	}
	return out
}

// The servetest scenario: deterministic in (seed, cfg) like every real
// scenario, but with a test-controlled blocking gate so drain and queue
// behaviour can be driven without wall-clock sleeps.
func init() {
	scenario.Register(scenario.Scenario{
		Name:     "servetest",
		Title:    "Serve-layer test scenario",
		PaperRef: "—",
		Impl:     "serve.harness_test",
		CLI:      "-",
		// tag and mode exist so cache-key tests have two params to
		// shuffle; both feed the metric so they are genuinely part of the
		// campaign's identity.
		ParamKeys: []string{"tag", "mode"},
		Order:     9999,
		Run: func(ctx context.Context, seed int64, cfg scenario.Config) (scenario.Result, error) {
			stGate.Lock()
			blockFrom, blocked, release := stGate.blockFrom, stGate.blocked, stGate.release
			stGate.Unlock()
			if blockFrom > 0 && seed >= blockFrom {
				if blocked != nil {
					select {
					case blocked <- seed:
					default:
					}
				}
				select {
				case <-release:
				case <-ctx.Done():
					return scenario.Result{}, ctx.Err()
				}
			}
			v := float64(seed * 3)
			if cfg.Fast {
				v += 0.5
			}
			v += float64(len(cfg.Params.Str("tag", "")))
			v += 10 * float64(len(cfg.Params.Str("mode", "")))
			stGate.Lock()
			stGate.completions[seed]++
			stGate.Unlock()
			return scenario.Result{
				Success: scenario.Bool(seed%2 == 1),
				Metrics: map[string]float64{"value": v},
			}, nil
		},
	})
}

// fakeClock is a hand-advanced clock for limiter and metrics tests.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

// newFakeClock starts a fake clock at an arbitrary fixed instant.
func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)}
}

// now is the clock reading, for injection as Config.Clock.
func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

// advance moves the clock forward.
func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// testServer boots a service plus an HTTP front end and tears both down
// in the right order (drain first, so no stream handler is left blocking
// the listener's close).
func testServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			t.Errorf("Shutdown: %v", err)
		}
		ts.Close()
	})
	return s, ts
}

// submit posts a raw JSON body to POST /jobs and decodes the response.
func submit(t *testing.T, base, body string) (int, jobView) {
	t.Helper()
	resp, err := http.Post(base+"/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var v jobView
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatalf("submit response does not decode: %v", err)
	}
	return resp.StatusCode, v
}

// getJSON fetches a URL and decodes its JSON body into out, returning
// the status code.
func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("GET %s does not decode: %v", url, err)
		}
	}
	return resp.StatusCode
}

// streamJob reads a job's JSONL stream to its terminal line.
func streamJob(t *testing.T, base, id string) []streamLine {
	t.Helper()
	resp, err := http.Get(fmt.Sprintf("%s/jobs/%s/stream", base, id))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream status %d", resp.StatusCode)
	}
	var lines []streamLine
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		if len(bytes.TrimSpace(sc.Bytes())) == 0 {
			continue
		}
		var line streamLine
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatalf("stream line does not parse: %v\n%s", err, sc.Text())
		}
		lines = append(lines, line)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(lines) == 0 {
		t.Fatal("empty stream")
	}
	last := lines[len(lines)-1].Type
	if last != "aggregate" && last != "error" {
		t.Fatalf("stream did not end with a terminal line: %+v", lines)
	}
	return lines
}

// waitDone streams the job to completion and returns its terminal line.
func waitDone(t *testing.T, base, id string) streamLine {
	t.Helper()
	lines := streamJob(t, base, id)
	return lines[len(lines)-1]
}
