package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"sort"
	"sync"

	"dnstime/internal/campaign"
	"dnstime/internal/obs"
	"dnstime/internal/scenario"
)

// Job lifecycle states, as reported by the status and list endpoints.
const (
	stateQueued   = "queued"
	stateRunning  = "running"
	stateDone     = "done"
	stateFailed   = "failed"
	stateCanceled = "canceled"
)

// job is one submitted campaign moving through the queue. Its mutex
// guards every mutable field; cond broadcasts whenever results arrive or
// the state turns terminal, which is what stream handlers block on.
type job struct {
	id     string
	key    string
	spec   campaign.JobSpec // normalised
	cached bool             // served from the aggregate cache, no engine run

	mu      sync.Mutex
	cond    *sync.Cond
	state   string
	results []scenario.Result // stream replay buffer, arrival order
	agg     json.RawMessage   // aggregate (per-run stripped), set at done/canceled
	errMsg  string
	cancel  context.CancelFunc      // set while running
	traces  map[int64]*bytes.Buffer // per-seed Chrome trace buffers (trace:true jobs)
}

// newJob builds a queued job for a normalised spec.
func newJob(id, key string, spec campaign.JobSpec) *job {
	j := &job{id: id, key: key, spec: spec, state: stateQueued}
	j.cond = sync.NewCond(&j.mu)
	return j
}

// newCachedJob builds an already-done job backed by a cached aggregate:
// its replay buffer is the cached per-run results in seed order, and its
// aggregate bytes are exactly what a fresh campaign would have produced.
func newCachedJob(id, key string, spec campaign.JobSpec, agg campaign.ScenarioAggregate) (*job, error) {
	raw, err := marshalAggregate(agg)
	if err != nil {
		return nil, err
	}
	j := newJob(id, key, spec)
	j.cached = true
	j.state = stateDone
	j.results = append([]scenario.Result(nil), agg.PerRun...)
	j.agg = raw
	return j, nil
}

// marshalAggregate renders an aggregate with its per-run results
// stripped — the same shape `experiments campaigns -json` emits without
// -perrun, so served aggregates compare byte-for-byte against the CLI.
func marshalAggregate(agg campaign.ScenarioAggregate) (json.RawMessage, error) {
	agg.PerRun = nil
	raw, err := json.Marshal(agg)
	if err != nil {
		return nil, fmt.Errorf("serve: marshal aggregate: %w", err)
	}
	return raw, nil
}

// begin transitions queued → running, installing the run's cancel
// function. It reports false when the job was cancelled while queued, in
// which case the dispatcher skips it.
func (j *job) begin(cancel context.CancelFunc) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != stateQueued {
		return false
	}
	j.state = stateRunning
	j.cancel = cancel
	j.cond.Broadcast()
	return true
}

// push appends one per-seed result to the replay buffer and wakes every
// stream subscriber.
func (j *job) push(res scenario.Result) {
	j.mu.Lock()
	j.results = append(j.results, res)
	j.cond.Broadcast()
	j.mu.Unlock()
}

// finish moves the job to a terminal state. agg may be nil (failed, or
// cancelled before any aggregate existed); errMsg carries the failure or
// cancellation reason.
func (j *job) finish(state string, agg json.RawMessage, errMsg string) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if terminal(j.state) {
		return
	}
	j.state = state
	j.agg = agg
	j.errMsg = errMsg
	j.cancel = nil
	j.cond.Broadcast()
}

// terminal reports whether a state is final.
func terminal(state string) bool {
	return state == stateDone || state == stateFailed || state == stateCanceled
}

// requestCancel asks the job to stop: a queued job turns canceled on the
// spot (the dispatcher will skip it), a running job has its engine
// context cancelled (the run loop records the terminal state after the
// drain). It returns the state the job was in and whether anything was
// cancelled — false for jobs already terminal.
func (j *job) requestCancel(reason string) (before string, acted bool) {
	j.mu.Lock()
	before = j.state
	if j.state == stateQueued {
		j.state = stateCanceled
		j.errMsg = reason
		j.cond.Broadcast()
		j.mu.Unlock()
		return before, true
	}
	cancel := j.cancel
	j.mu.Unlock()
	if cancel != nil {
		cancel()
		return before, true
	}
	return before, false
}

// addTrace registers one seed's Chrome trace buffer. Only the map is
// guarded by the job lock — each buffer is written by exactly one engine
// worker and read only after the job turns terminal.
func (j *job) addTrace(seed int64, buf *bytes.Buffer) {
	j.mu.Lock()
	if j.traces == nil {
		j.traces = map[int64]*bytes.Buffer{}
	}
	j.traces[seed] = buf
	j.mu.Unlock()
}

// mergedTrace combines the per-seed trace buffers into one Chrome
// trace_event array in ascending seed order. done reports whether the job
// is terminal — before that the buffers are still being written and the
// merge is refused.
func (j *job) mergedTrace() (merged []byte, done bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if !terminal(j.state) {
		return nil, false
	}
	seeds := make([]int64, 0, len(j.traces))
	for seed := range j.traces {
		seeds = append(seeds, seed)
	}
	sort.Slice(seeds, func(a, b int) bool { return seeds[a] < seeds[b] })
	parts := make([][]byte, len(seeds))
	for i, seed := range seeds {
		parts[i] = j.traces[seed].Bytes()
	}
	return obs.MergeChrome(parts...), true
}

// wake re-broadcasts the condition; stream handlers register it as a
// context.AfterFunc so a disconnecting client unblocks its own wait.
func (j *job) wake() {
	j.mu.Lock()
	j.cond.Broadcast()
	j.mu.Unlock()
}

// jobView is the JSON rendering of a job for the submit, status and list
// endpoints.
type jobView struct {
	ID       string          `json:"id"`
	Key      string          `json:"key"`
	State    string          `json:"state"`
	Scenario string          `json:"scenario"`
	Params   scenario.Params `json:"params,omitempty"`
	Seeds    int             `json:"seeds"`
	BaseSeed int64           `json:"base_seed"`
	Fast     bool            `json:"fast,omitempty"`
	Trace    bool            `json:"trace,omitempty"`
	Cached   bool            `json:"cached,omitempty"`
	RunsDone int             `json:"runs_done"`
	Error    string          `json:"error,omitempty"`
	Agg      json.RawMessage `json:"aggregate,omitempty"`
}

// view snapshots the job for JSON rendering. withAgg includes the
// aggregate bytes (status endpoint); the list endpoint omits them to
// stay light.
func (j *job) view(withAgg bool) jobView {
	j.mu.Lock()
	defer j.mu.Unlock()
	v := jobView{
		ID: j.id, Key: j.key, State: j.state,
		Scenario: j.spec.Scenario, Params: j.spec.Params,
		Seeds: j.spec.Seeds, Fast: j.spec.Fast, Trace: j.spec.Trace,
		Cached: j.cached, RunsDone: len(j.results), Error: j.errMsg,
	}
	if j.spec.BaseSeed != nil {
		v.BaseSeed = *j.spec.BaseSeed
	}
	if withAgg {
		v.Agg = j.agg
	}
	return v
}
