package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"os"
	"path/filepath"
	"testing"
	"time"

	"dnstime/internal/campaign"
)

// recvSeed waits (bounded) for a parked scenario run to announce itself.
func recvSeed(t *testing.T, blocked chan int64) int64 {
	t.Helper()
	select {
	case seed := <-blocked:
		return seed
	case <-time.After(10 * time.Second):
		t.Fatal("no scenario run reached the gate")
		return 0
	}
}

// engineAggregate runs the reference campaign directly through the
// Engine and returns the aggregate bytes the service must reproduce.
func engineAggregate(t *testing.T, spec campaign.JobSpec) []byte {
	t.Helper()
	norm, err := spec.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	agg, err := campaign.NewEngine(norm.Options(campaign.WithWorkers(1))...).Run(context.Background(), norm.Scenario)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := marshalAggregate(agg)
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

// TestServeStreamMatchesEngineAtAnyWorkerCount is the service half of
// the acceptance criterion: the streamed aggregate for a spec is
// byte-identical to a direct Engine run of the same spec, whatever
// worker budget the server was given.
func TestServeStreamMatchesEngineAtAnyWorkerCount(t *testing.T) {
	stSet(0)
	want := engineAggregate(t, campaign.JobSpec{Scenario: "servetest", Seeds: 8})
	for _, workers := range []int{1, 7} {
		_, ts := testServer(t, Config{Workers: workers})
		status, v := submit(t, ts.URL, `{"scenario":"servetest","seeds":8}`)
		if status != http.StatusAccepted {
			t.Fatalf("workers %d: submit status %d", workers, status)
		}
		lines := streamJob(t, ts.URL, v.ID)
		final := lines[len(lines)-1]
		if final.Type != "aggregate" || final.Error != "" {
			t.Fatalf("workers %d: terminal line %+v", workers, final)
		}
		if !bytes.Equal(final.Aggregate, want) {
			t.Errorf("workers %d: served aggregate differs from Engine:\n%s\nvs\n%s",
				workers, final.Aggregate, want)
		}
		if got := len(lines) - 1; got != 8 {
			t.Errorf("workers %d: streamed %d per-seed lines, want 8", workers, got)
		}
	}
}

// TestServeCacheHitSkipsEngine: a repeat submission of an identical spec
// is served from the aggregate cache — same bytes, full per-seed replay,
// and no second Engine campaign.
func TestServeCacheHitSkipsEngine(t *testing.T) {
	stSet(0)
	_, ts := testServer(t, Config{Workers: 2})
	body := `{"scenario":"servetest","seeds":6,"params":{"tag":"hit"}}`

	status, v1 := submit(t, ts.URL, body)
	if status != http.StatusAccepted {
		t.Fatalf("first submit status %d", status)
	}
	first := waitDone(t, ts.URL, v1.ID)
	if first.Type != "aggregate" || first.Cached {
		t.Fatalf("first terminal line %+v", first)
	}

	status, v2 := submit(t, ts.URL, body)
	if status != http.StatusOK {
		t.Fatalf("repeat submit status %d, want 200", status)
	}
	if !v2.Cached || v2.State != stateDone || v2.ID == v1.ID {
		t.Fatalf("repeat submission not served from cache: %+v", v2)
	}
	lines := streamJob(t, ts.URL, v2.ID)
	final := lines[len(lines)-1]
	if !final.Cached || !bytes.Equal(final.Aggregate, first.Aggregate) {
		t.Errorf("cached aggregate differs:\n%s\nvs\n%s", final.Aggregate, first.Aggregate)
	}
	if got := len(lines) - 1; got != 6 {
		t.Errorf("cached replay streamed %d per-seed lines, want 6", got)
	}

	var m metricsSnapshot
	getJSON(t, ts.URL+"/metrics", &m)
	if m.Engine.Campaigns != 1 {
		t.Errorf("engine campaigns = %d after a cache hit, want 1", m.Engine.Campaigns)
	}
	if m.Cache.Hits != 1 || m.Cache.Misses != 1 || m.Cache.Entries != 1 {
		t.Errorf("cache counters %+v, want 1 hit / 1 miss / 1 entry", m.Cache)
	}
	if m.Jobs.Done != 2 || m.Jobs.Submissions != 2 {
		t.Errorf("job counters %+v, want 2 done / 2 submissions", m.Jobs)
	}
}

// TestServeCoalesceAndQueueBounds: an identical spec submitted while the
// original is in flight coalesces onto it, and the bounded queue rejects
// overflow with 503 instead of buffering without limit.
func TestServeCoalesceAndQueueBounds(t *testing.T) {
	blocked, release := stSet(1)
	_, ts := testServer(t, Config{Workers: 1, QueueCap: 1})

	status, running := submit(t, ts.URL, `{"scenario":"servetest","seeds":2,"params":{"tag":"q1"}}`)
	if status != http.StatusAccepted {
		t.Fatalf("submit status %d", status)
	}
	recvSeed(t, blocked) // job q1 is now running, parked at the gate

	status, co := submit(t, ts.URL, `{"scenario":"servetest","seeds":2,"params":{"tag":"q1"}}`)
	if status != http.StatusOK || co.ID != running.ID {
		t.Fatalf("identical in-flight spec did not coalesce: status %d, %+v", status, co)
	}

	status, queued := submit(t, ts.URL, `{"scenario":"servetest","seeds":2,"params":{"tag":"q2"}}`)
	if status != http.StatusAccepted {
		t.Fatalf("second spec not queued: %d", status)
	}
	if status, _ = submit(t, ts.URL, `{"scenario":"servetest","seeds":2,"params":{"tag":"q3"}}`); status != http.StatusServiceUnavailable {
		t.Fatalf("over-capacity submission status %d, want 503", status)
	}

	// Cancelling the queued job settles it without ever running.
	resp, err := http.Post(ts.URL+"/jobs/"+queued.ID+"/cancel", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cancel queued status %d", resp.StatusCode)
	}

	close(release)
	if final := waitDone(t, ts.URL, running.ID); final.Type != "aggregate" || final.Error != "" {
		t.Errorf("released job terminal line %+v", final)
	}
	if final := waitDone(t, ts.URL, queued.ID); final.Type != "error" {
		t.Errorf("cancelled queued job terminal line %+v, want error", final)
	}
	if comps := stCompletions(); comps[1]+comps[2] != 2 {
		t.Errorf("completions %v, want only the released job's two seeds", comps)
	}
}

// TestServeCancelRunning: cancelling a running job drains its engine and
// leaves a partial aggregate; a second cancel reports 409.
func TestServeCancelRunning(t *testing.T) {
	blocked, _ := stSet(1)
	_, ts := testServer(t, Config{Workers: 1})
	_, v := submit(t, ts.URL, `{"scenario":"servetest","seeds":3,"params":{"tag":"cancel"}}`)
	recvSeed(t, blocked)

	resp, err := http.Post(ts.URL+"/jobs/"+v.ID+"/cancel", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cancel status %d", resp.StatusCode)
	}
	final := waitDone(t, ts.URL, v.ID)
	if final.Type != "aggregate" || final.Error == "" {
		t.Fatalf("cancelled job terminal line %+v, want partial aggregate with error", final)
	}
	var agg campaign.ScenarioAggregate
	if err := json.Unmarshal(final.Aggregate, &agg); err != nil {
		t.Fatal(err)
	}
	if !agg.Partial {
		t.Errorf("cancelled job's aggregate not marked partial: %+v", agg)
	}

	resp, err = http.Post(ts.URL+"/jobs/"+v.ID+"/cancel", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Errorf("second cancel status %d, want 409", resp.StatusCode)
	}
}

// TestServeDrainCheckpointResume is the drain acceptance criterion:
// Shutdown cancels the in-flight campaign, its checkpoint in the state
// directory holds exactly the completed seeds, and a resubmission to a
// fresh server over the same state directory resumes those seeds without
// re-executing them — folding to bytes identical to an uninterrupted
// campaign.
func TestServeDrainCheckpointResume(t *testing.T) {
	dir := t.TempDir()
	body := `{"scenario":"servetest","seeds":4,"params":{"tag":"drain"}}`

	blocked, _ := stSet(3) // seeds 1 and 2 complete, seed 3 parks
	s1, ts1 := testServer(t, Config{Workers: 1, StateDir: dir})
	status, v1 := submit(t, ts1.URL, body)
	if status != http.StatusAccepted {
		t.Fatalf("submit status %d", status)
	}
	recvSeed(t, blocked)

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s1.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	var drained jobView
	getJSON(t, ts1.URL+"/jobs/"+v1.ID, &drained)
	if drained.State != stateCanceled || drained.RunsDone != 2 {
		t.Fatalf("drained job = %+v, want canceled with 2 completed seeds", drained)
	}
	if status, _ := submit(t, ts1.URL, body); status != http.StatusServiceUnavailable {
		t.Errorf("draining server accepted a submission: %d", status)
	}

	ckpt := filepath.Join(dir, v1.Key+".jsonl")
	data, err := os.ReadFile(ckpt)
	if err != nil {
		t.Fatalf("no checkpoint after drain: %v", err)
	}
	if lines := bytes.Count(data, []byte("\n")); lines != 3 {
		t.Fatalf("checkpoint has %d lines, want header + 2 seeds:\n%s", lines, data)
	}
	firstRun := stCompletions()
	if firstRun[1] != 1 || firstRun[2] != 1 || firstRun[3] != 0 || firstRun[4] != 0 {
		t.Fatalf("completions before resume: %v", firstRun)
	}

	// Fresh server, same state directory: the resubmitted campaign must
	// resume seeds 1–2 from the checkpoint and only execute 3–4.
	stSet(0)
	_, ts2 := testServer(t, Config{Workers: 1, StateDir: dir})
	status, v2 := submit(t, ts2.URL, body)
	if status != http.StatusAccepted {
		t.Fatalf("resubmit status %d", status)
	}
	final := waitDone(t, ts2.URL, v2.ID)
	if final.Type != "aggregate" || final.Error != "" || final.Cached {
		t.Fatalf("resumed job terminal line %+v", final)
	}
	resumedRun := stCompletions()
	if resumedRun[1] != 0 || resumedRun[2] != 0 || resumedRun[3] != 1 || resumedRun[4] != 1 {
		t.Errorf("completions after resume: %v, want only seeds 3 and 4 executed once", resumedRun)
	}
	want := engineAggregate(t, campaign.JobSpec{Scenario: "servetest", Seeds: 4,
		Params: map[string]string{"tag": "drain"}})
	if !bytes.Equal(final.Aggregate, want) {
		t.Errorf("resumed aggregate differs from uninterrupted run:\n%s\nvs\n%s", final.Aggregate, want)
	}
	var m metricsSnapshot
	getJSON(t, ts2.URL+"/metrics", &m)
	if m.Engine.ResumedRuns != 2 || m.Engine.ExecutedRuns != 2 {
		t.Errorf("engine counters %+v, want 2 resumed / 2 executed", m.Engine)
	}
}

// TestServeCompletedCheckpointWarmStart: after a campaign completes, a
// restarted server over the same state directory rebuilds its aggregate
// entirely from the checkpoint — zero re-executed seeds.
func TestServeCompletedCheckpointWarmStart(t *testing.T) {
	dir := t.TempDir()
	body := `{"scenario":"servetest","seeds":3,"params":{"tag":"warm"}}`
	stSet(0)
	_, ts1 := testServer(t, Config{Workers: 1, StateDir: dir})
	_, v1 := submit(t, ts1.URL, body)
	first := waitDone(t, ts1.URL, v1.ID)

	stSet(0) // reset completion counts
	_, ts2 := testServer(t, Config{Workers: 1, StateDir: dir})
	_, v2 := submit(t, ts2.URL, body)
	warm := waitDone(t, ts2.URL, v2.ID)
	if !bytes.Equal(warm.Aggregate, first.Aggregate) {
		t.Errorf("warm-start aggregate differs:\n%s\nvs\n%s", warm.Aggregate, first.Aggregate)
	}
	if comps := stCompletions(); len(comps) != 0 {
		t.Errorf("warm start re-executed seeds: %v", comps)
	}
}

// TestServeBadRequests: malformed bodies, unknown fields, unknown
// scenarios, undeclared params and negative seed counts are rejected at
// submission; unknown job IDs 404 on every job endpoint.
func TestServeBadRequests(t *testing.T) {
	stSet(0)
	_, ts := testServer(t, Config{})
	for name, body := range map[string]string{
		"malformed json":   `{"scenario":`,
		"unknown field":    `{"scenario":"servetest","seed":5}`,
		"unknown scenario": `{"scenario":"sundial"}`,
		"undeclared param": `{"scenario":"servetest","params":{"clinet":"x"}}`,
		"negative seeds":   `{"scenario":"servetest","seeds":-1}`,
	} {
		if status, _ := submit(t, ts.URL, body); status != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", name, status)
		}
	}
	for _, url := range []string{"/jobs/j999", "/jobs/j999/stream"} {
		if status := getJSON(t, ts.URL+url, nil); status != http.StatusNotFound {
			t.Errorf("GET %s status %d, want 404", url, status)
		}
	}
	resp, err := http.Post(ts.URL+"/jobs/j999/cancel", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("cancel unknown job status %d, want 404", resp.StatusCode)
	}
}

// TestServeRateLimitHTTP: per-client token-bucket limiting answers 429
// once the burst is spent and recovers as the injected clock refills it.
func TestServeRateLimitHTTP(t *testing.T) {
	stSet(0)
	clk := newFakeClock()
	_, ts := testServer(t, Config{Rate: 1, Burst: 1, Clock: clk.now})
	if status, _ := submit(t, ts.URL, `{"scenario":"servetest","seeds":1,"params":{"tag":"r1"}}`); status != http.StatusAccepted {
		t.Fatalf("first submission status %d", status)
	}
	if status, _ := submit(t, ts.URL, `{"scenario":"servetest","seeds":1,"params":{"tag":"r2"}}`); status != http.StatusTooManyRequests {
		t.Fatalf("burst-exhausted submission status %d, want 429", status)
	}
	clk.advance(time.Second)
	if status, _ := submit(t, ts.URL, `{"scenario":"servetest","seeds":1,"params":{"tag":"r3"}}`); status == http.StatusTooManyRequests {
		t.Fatal("refilled bucket still rate-limited")
	}
	var m metricsSnapshot
	getJSON(t, ts.URL+"/metrics", &m)
	if m.Jobs.RateLimited != 1 {
		t.Errorf("rate_limited = %d, want 1", m.Jobs.RateLimited)
	}
}

// TestServePprofGate: the profiling mux is mounted only when asked for.
func TestServePprofGate(t *testing.T) {
	stSet(0)
	_, with := testServer(t, Config{Pprof: true})
	if status := getJSON(t, with.URL+"/debug/pprof/", nil); status != http.StatusOK {
		t.Errorf("pprof index status %d with Pprof on", status)
	}
	_, without := testServer(t, Config{})
	resp, err := http.Get(without.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("pprof index status %d with Pprof off, want 404", resp.StatusCode)
	}
}

// TestServeAuxEndpoints: healthz, the scenario listing and the job list.
func TestServeAuxEndpoints(t *testing.T) {
	stSet(0)
	_, ts := testServer(t, Config{})
	var health struct {
		Status string `json:"status"`
	}
	getJSON(t, ts.URL+"/healthz", &health)
	if health.Status != "ok" {
		t.Errorf("healthz = %q", health.Status)
	}
	var scenarios struct {
		Scenarios []struct {
			Name      string   `json:"name"`
			ParamKeys []string `json:"param_keys"`
		} `json:"scenarios"`
	}
	getJSON(t, ts.URL+"/scenarios", &scenarios)
	found := false
	for _, sc := range scenarios.Scenarios {
		if sc.Name == "servetest" && len(sc.ParamKeys) == 2 {
			found = true
		}
	}
	if !found {
		t.Errorf("scenario listing missing servetest with its param keys: %+v", scenarios.Scenarios)
	}

	_, v := submit(t, ts.URL, `{"scenario":"servetest","seeds":2,"params":{"tag":"aux"}}`)
	waitDone(t, ts.URL, v.ID)
	var list struct {
		Jobs []jobView `json:"jobs"`
	}
	getJSON(t, ts.URL+"/jobs", &list)
	if len(list.Jobs) != 1 || list.Jobs[0].ID != v.ID || list.Jobs[0].BaseSeed != campaign.DefaultBaseSeed {
		t.Errorf("job list %+v", list.Jobs)
	}
}
