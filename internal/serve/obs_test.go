package serve

import (
	"encoding/json"
	"io"
	"net/http"
	"strconv"
	"strings"
	"testing"
)

// promFamily is one parsed Prometheus metric family: its HELP and TYPE
// headers plus every sample line, keyed by the full sample name including
// labels.
type promFamily struct {
	help, typ string
	samples   map[string]float64
}

// parseProm is a hand-rolled parser for the Prometheus text exposition
// format (the test-side contract check; the repo deliberately has no
// client_golang dependency). It enforces grouping: every sample must
// belong to the family declared by the preceding HELP/TYPE pair.
func parseProm(t *testing.T, text string) map[string]*promFamily {
	t.Helper()
	fams := map[string]*promFamily{}
	var cur *promFamily
	var curName string
	for ln, line := range strings.Split(text, "\n") {
		if line == "" {
			continue
		}
		switch {
		case strings.HasPrefix(line, "# HELP "):
			rest := strings.TrimPrefix(line, "# HELP ")
			name, help, ok := strings.Cut(rest, " ")
			if !ok {
				t.Fatalf("line %d: HELP without text: %q", ln+1, line)
			}
			if fams[name] != nil {
				t.Fatalf("line %d: family %s declared twice", ln+1, name)
			}
			cur = &promFamily{help: help, samples: map[string]float64{}}
			curName = name
			fams[name] = cur
		case strings.HasPrefix(line, "# TYPE "):
			rest := strings.TrimPrefix(line, "# TYPE ")
			name, typ, ok := strings.Cut(rest, " ")
			if !ok || cur == nil || name != curName {
				t.Fatalf("line %d: TYPE out of place: %q", ln+1, line)
			}
			switch typ {
			case "counter", "gauge", "histogram":
			default:
				t.Fatalf("line %d: unknown TYPE %q", ln+1, typ)
			}
			cur.typ = typ
		case strings.HasPrefix(line, "#"):
			t.Fatalf("line %d: unexpected comment: %q", ln+1, line)
		default:
			name := line
			if i := strings.IndexAny(line, "{ "); i >= 0 {
				name = line[:i]
			}
			base := name
			for _, suffix := range []string{"_bucket", "_sum", "_count"} {
				if cur != nil && cur.typ == "histogram" && strings.HasSuffix(name, suffix) {
					base = strings.TrimSuffix(name, suffix)
				}
			}
			if cur == nil || base != curName {
				t.Fatalf("line %d: sample %q outside its family block (current %q)", ln+1, name, curName)
			}
			if cur.typ == "" {
				t.Fatalf("line %d: sample before TYPE for %s", ln+1, curName)
			}
			i := strings.LastIndexByte(line, ' ')
			v, err := strconv.ParseFloat(line[i+1:], 64)
			if err != nil {
				t.Fatalf("line %d: bad sample value: %q", ln+1, line)
			}
			cur.samples[line[:i]] = v
		}
	}
	return fams
}

// scrapeProm fetches the Prometheus view of /metrics.
func scrapeProm(t *testing.T, base, query string, header bool) map[string]*promFamily {
	t.Helper()
	req, err := http.NewRequest("GET", base+"/metrics"+query, nil)
	if err != nil {
		t.Fatal(err)
	}
	if header {
		req.Header.Set("Accept", "text/plain")
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("scrape status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("scrape content type %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return parseProm(t, string(body))
}

// TestMetricsPrometheus runs a campaign, then checks that the Prometheus
// exposition of /metrics is well-formed and that every counter of the
// JSON document has a matching sample with the same value — the two
// views read the same instruments. The JSON default must keep working
// (with its new build block) when no text representation is requested.
func TestMetricsPrometheus(t *testing.T) {
	_, ts := testServer(t, Config{})
	code, v := submit(t, ts.URL, `{"scenario":"servetest","seeds":3}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit status %d", code)
	}
	waitDone(t, ts.URL, v.ID)

	var doc metricsSnapshot
	if getJSON(t, ts.URL+"/metrics", &doc) != http.StatusOK {
		t.Fatal("JSON metrics not OK")
	}
	if doc.Build.GoVersion == "" || doc.Build.Revision == "" {
		t.Fatalf("JSON metrics build block incomplete: %+v", doc.Build)
	}

	for _, variant := range []struct {
		query  string
		header bool
	}{
		{"?format=prometheus", false},
		{"", true},
	} {
		fams := scrapeProm(t, ts.URL, variant.query, variant.header)
		want := map[string]float64{
			"dnstime_serve_jobs_queued":            float64(doc.Jobs.Queued),
			"dnstime_serve_jobs_running":           float64(doc.Jobs.Running),
			"dnstime_serve_jobs_done_total":        float64(doc.Jobs.Done),
			"dnstime_serve_jobs_failed_total":      float64(doc.Jobs.Failed),
			"dnstime_serve_jobs_canceled_total":    float64(doc.Jobs.Canceled),
			"dnstime_serve_submissions_total":      float64(doc.Jobs.Submissions),
			"dnstime_serve_coalesced_total":        float64(doc.Jobs.Coalesced),
			"dnstime_serve_rate_limited_total":     float64(doc.Jobs.RateLimited),
			"dnstime_serve_queue_full_total":       float64(doc.Jobs.QueueFull),
			"dnstime_serve_cache_hits_total":       float64(doc.Cache.Hits),
			"dnstime_serve_cache_misses_total":     float64(doc.Cache.Misses),
			"dnstime_serve_cache_entries":          float64(doc.Cache.Entries),
			"dnstime_serve_engine_campaigns_total": float64(doc.Engine.Campaigns),
			"dnstime_serve_executed_runs_total":    float64(doc.Engine.ExecutedRuns),
			"dnstime_serve_resumed_runs_total":     float64(doc.Engine.ResumedRuns),
		}
		for name, wantV := range want {
			fam := fams[name]
			if fam == nil {
				t.Errorf("family %s missing from exposition", name)
				continue
			}
			if fam.help == "" {
				t.Errorf("family %s has no HELP text", name)
			}
			if got, ok := fam.samples[name]; !ok {
				t.Errorf("family %s has no sample", name)
			} else if got != wantV {
				t.Errorf("%s = %v, want %v (JSON document)", name, got, wantV)
			}
		}
		// The per-scenario job-latency histogram must be complete: a +Inf
		// bucket equal to the count, and one observation per finished job.
		hist := fams["dnstime_serve_job_seconds"]
		if hist == nil || hist.typ != "histogram" {
			t.Fatalf("dnstime_serve_job_seconds missing or not a histogram: %+v", hist)
		}
		inf := hist.samples[`dnstime_serve_job_seconds_bucket{scenario="servetest",le="+Inf"}`]
		count := hist.samples[`dnstime_serve_job_seconds_count{scenario="servetest"}`]
		if inf != count || count < 1 {
			t.Errorf("job_seconds histogram inconsistent: +Inf %v, count %v", inf, count)
		}
		// Process-wide engine instruments (obs.Default) ride along in the
		// same scrape.
		for _, name := range []string{
			"dnstime_labpool_hits_total",
			"dnstime_labpool_misses_total",
			"dnstime_phase_seconds_total",
			"dnstime_engine_seed_seconds",
		} {
			if fams[name] == nil {
				t.Errorf("obs.Default family %s missing from exposition", name)
			}
		}
	}
}

// TestHealthzRevision pins the healthz build echo: the revision field is
// always populated (a dev build without VCS stamping reports "unknown").
func TestHealthzRevision(t *testing.T) {
	_, ts := testServer(t, Config{})
	var health struct {
		Status   string `json:"status"`
		Revision string `json:"revision"`
	}
	if getJSON(t, ts.URL+"/healthz", &health) != http.StatusOK {
		t.Fatal("healthz not OK")
	}
	if health.Status != "ok" || health.Revision == "" {
		t.Fatalf("healthz = %+v, want status ok and a revision", health)
	}
}

// TestJobTrace exercises the traced-job path end to end: a trace:true
// boot campaign yields a merged Chrome trace with one pid lane per seed,
// an untraced job 404s on /trace, and traced jobs bypass the aggregate
// cache (their resubmission executes again rather than replaying).
func TestJobTrace(t *testing.T) {
	_, ts := testServer(t, Config{})
	const spec = `{"scenario":"boot","seeds":2,"base_seed":0,"fast":true,"trace":true}`
	code, v := submit(t, ts.URL, spec)
	if code != http.StatusAccepted {
		t.Fatalf("submit status %d", code)
	}
	if !v.Trace {
		t.Fatalf("job view does not echo trace: %+v", v)
	}
	waitDone(t, ts.URL, v.ID)

	resp, err := http.Get(ts.URL + "/jobs/" + v.ID + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("trace status %d: %s", resp.StatusCode, body)
	}
	var events []map[string]any
	if err := json.Unmarshal(body, &events); err != nil {
		t.Fatalf("merged trace is not a JSON array: %v", err)
	}
	if len(events) == 0 {
		t.Fatal("merged trace is empty")
	}
	pids := map[float64]bool{}
	for _, e := range events {
		pid, ok := e["pid"].(float64)
		if !ok {
			t.Fatalf("event without pid: %v", e)
		}
		pids[pid] = true
	}
	if !pids[0] || !pids[1] || len(pids) != 2 {
		t.Fatalf("merged trace pids = %v, want exactly seeds 0 and 1", pids)
	}

	// Traced jobs never enter the cache: resubmitting executes a fresh
	// campaign instead of replaying a cached aggregate.
	code, v2 := submit(t, ts.URL, spec)
	if code != http.StatusAccepted || v2.Cached {
		t.Fatalf("traced resubmission: status %d cached %v, want 202 uncached", code, v2.Cached)
	}
	waitDone(t, ts.URL, v2.ID)

	// An untraced job has no trace resource.
	code, v3 := submit(t, ts.URL, `{"scenario":"boot","seeds":2,"base_seed":0,"fast":true}`)
	if code != http.StatusAccepted {
		t.Fatalf("untraced submit status %d", code)
	}
	waitDone(t, ts.URL, v3.ID)
	if got := getJSON(t, ts.URL+"/jobs/"+v3.ID+"/trace", nil); got != http.StatusNotFound {
		t.Fatalf("untraced trace status %d, want 404", got)
	}
}
