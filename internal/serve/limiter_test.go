package serve

import (
	"fmt"
	"testing"
	"time"
)

// TestLimiterBurstAndRefill: a fresh client spends its whole burst, is
// then refused, and regains exactly one admission per 1/rate seconds of
// fake-clock time. No wall-clock sleeps anywhere.
func TestLimiterBurstAndRefill(t *testing.T) {
	clk := newFakeClock()
	l := NewLimiter(2, 3, clk.now) // 2 tokens/sec, burst 3

	for i := 0; i < 3; i++ {
		if !l.Allow("c") {
			t.Fatalf("burst admission %d refused", i)
		}
	}
	if l.Allow("c") {
		t.Fatal("admission beyond burst allowed")
	}

	clk.advance(250 * time.Millisecond) // +0.5 tokens: still short of 1
	if l.Allow("c") {
		t.Fatal("allowed with a fractional token")
	}
	clk.advance(250 * time.Millisecond) // balance reaches 1
	if !l.Allow("c") {
		t.Fatal("refused after refilling one full token")
	}
	if l.Allow("c") {
		t.Fatal("token spent twice")
	}
}

// TestLimiterCapsAtBurst: however long a client idles, its balance never
// exceeds the burst.
func TestLimiterCapsAtBurst(t *testing.T) {
	clk := newFakeClock()
	l := NewLimiter(10, 2, clk.now)
	l.Allow("c")
	clk.advance(time.Hour)
	for i := 0; i < 2; i++ {
		if !l.Allow("c") {
			t.Fatalf("admission %d refused after long idle", i)
		}
	}
	if l.Allow("c") {
		t.Fatal("idle time accumulated beyond burst")
	}
}

// TestLimiterPerClientIsolation: one client exhausting its bucket leaves
// every other client's untouched.
func TestLimiterPerClientIsolation(t *testing.T) {
	clk := newFakeClock()
	l := NewLimiter(1, 1, clk.now)
	if !l.Allow("greedy") {
		t.Fatal("first admission refused")
	}
	if l.Allow("greedy") {
		t.Fatal("exhausted client admitted")
	}
	if !l.Allow("other") {
		t.Fatal("an exhausted neighbour starved a fresh client")
	}
}

// TestLimiterDisabled: nil limiters and non-positive rates admit
// everything.
func TestLimiterDisabled(t *testing.T) {
	var nilLimiter *Limiter
	zero := NewLimiter(0, 5, newFakeClock().now)
	for i := 0; i < 100; i++ {
		if !nilLimiter.Allow("c") || !zero.Allow("c") {
			t.Fatal("disabled limiter refused an admission")
		}
	}
}

// TestLimiterMinimumBurst: burst < 1 is raised to 1 so a conforming
// client is never starved outright.
func TestLimiterMinimumBurst(t *testing.T) {
	clk := newFakeClock()
	l := NewLimiter(1, 0, clk.now)
	if !l.Allow("c") {
		t.Fatal("zero-burst limiter refused the first admission")
	}
	if l.Allow("c") {
		t.Fatal("zero-burst limiter admitted twice in one instant")
	}
}

// TestLimiterSweep: once the client map hits its cap, fully-refilled idle
// buckets are swept so active clients keep their (partial) state while
// the map stops growing without bound.
func TestLimiterSweep(t *testing.T) {
	clk := newFakeClock()
	l := NewLimiter(1, 2, clk.now)
	for i := 0; i < limiterMaxClients; i++ {
		l.Allow(fmt.Sprintf("idle%d", i)) // each idle bucket: 1 of 2 tokens left
	}
	l.Allow("active")        // map at cap; sweep finds nothing full yet
	l.Allow("active")        // active bucket fully depleted
	clk.advance(time.Second) // idles refill to full burst; active only to 1

	l.Allow("fresh") // at cap again: this admission sweeps the full buckets
	l.mu.Lock()
	n := len(l.buckets)
	_, activeKept := l.buckets["active"]
	l.mu.Unlock()
	if n != 2 || !activeKept {
		t.Errorf("sweep left %d buckets (active kept: %t), want exactly active+fresh", n, activeKept)
	}
}
