package serve

import (
	"sort"
	"sync"
	"time"
)

// metrics aggregates the service's operational counters. All updates go
// through methods holding mu; snapshot derives the rates. Wall-clock
// readings come from the injected clock so tests stay deterministic.
type metrics struct {
	mu    sync.Mutex
	now   func() time.Time
	start time.Time

	submissions  int64
	rateLimited  int64
	queueFull    int64
	coalesced    int64
	cacheHits    int64
	cacheMisses  int64
	jobsQueued   int64 // gauge
	jobsRunning  int64 // gauge
	jobsDone     int64
	jobsFailed   int64
	jobsCanceled int64

	engineCampaigns int64
	executedRuns    int64
	resumedRuns     int64
	busySeconds     float64

	scenarios map[string]*scenarioStats
}

// scenarioStats accumulates per-scenario job latency and throughput.
type scenarioStats struct {
	jobs    int64
	runs    int64
	seconds float64
}

// newMetrics starts the counter set at the injected clock's current time.
func newMetrics(now func() time.Time) *metrics {
	return &metrics{now: now, start: now(), scenarios: map[string]*scenarioStats{}}
}

// metricsSnapshot is the /metrics JSON document. Field order is fixed by
// the struct, map keys marshal sorted, so the document is byte-stable for
// a given counter state.
type metricsSnapshot struct {
	UptimeSeconds float64          `json:"uptime_seconds"`
	Jobs          jobCounters      `json:"jobs"`
	Cache         cacheCounters    `json:"cache"`
	Engine        engineCounters   `json:"engine"`
	Scenarios     []scenarioMetric `json:"scenarios,omitempty"`
}

// jobCounters reports the queue and job-lifecycle counters.
type jobCounters struct {
	Queued      int64 `json:"queued"`
	Running     int64 `json:"running"`
	Done        int64 `json:"done"`
	Failed      int64 `json:"failed"`
	Canceled    int64 `json:"canceled"`
	Submissions int64 `json:"submissions"`
	Coalesced   int64 `json:"coalesced"`
	RateLimited int64 `json:"rate_limited"`
	QueueFull   int64 `json:"queue_full"`
}

// cacheCounters reports aggregate-cache effectiveness.
type cacheCounters struct {
	Hits       int64   `json:"hits"`
	Misses     int64   `json:"misses"`
	HitRatePct float64 `json:"hit_rate_pct"`
	Entries    int     `json:"entries"`
}

// engineCounters reports Engine-level work: campaigns started, seeds
// actually executed vs reused from checkpoints, and throughput over the
// time the dispatcher was busy.
type engineCounters struct {
	Campaigns    int64   `json:"campaigns"`
	ExecutedRuns int64   `json:"executed_runs"`
	ResumedRuns  int64   `json:"resumed_runs"`
	BusySeconds  float64 `json:"busy_seconds"`
	RunsPerSec   float64 `json:"runs_per_sec"`
}

// scenarioMetric is one scenario's latency/throughput row, sorted by
// name in the snapshot.
type scenarioMetric struct {
	Scenario      string  `json:"scenario"`
	Jobs          int64   `json:"jobs"`
	Runs          int64   `json:"runs"`
	Seconds       float64 `json:"seconds"`
	AvgJobSeconds float64 `json:"avg_job_seconds"`
	RunsPerSec    float64 `json:"runs_per_sec"`
}

// snapshot freezes the counters into the /metrics document. cacheEntries
// is supplied by the cache, which owns its own lock.
func (m *metrics) snapshot(cacheEntries int) metricsSnapshot {
	m.mu.Lock()
	defer m.mu.Unlock()
	s := metricsSnapshot{
		UptimeSeconds: m.now().Sub(m.start).Seconds(),
		Jobs: jobCounters{
			Queued: m.jobsQueued, Running: m.jobsRunning,
			Done: m.jobsDone, Failed: m.jobsFailed, Canceled: m.jobsCanceled,
			Submissions: m.submissions, Coalesced: m.coalesced,
			RateLimited: m.rateLimited, QueueFull: m.queueFull,
		},
		Cache: cacheCounters{
			Hits: m.cacheHits, Misses: m.cacheMisses, Entries: cacheEntries,
		},
		Engine: engineCounters{
			Campaigns: m.engineCampaigns, ExecutedRuns: m.executedRuns,
			ResumedRuns: m.resumedRuns, BusySeconds: m.busySeconds,
		},
	}
	if lookups := m.cacheHits + m.cacheMisses; lookups > 0 {
		s.Cache.HitRatePct = 100 * float64(m.cacheHits) / float64(lookups)
	}
	if m.busySeconds > 0 {
		s.Engine.RunsPerSec = float64(m.executedRuns) / m.busySeconds
	}
	names := make([]string, 0, len(m.scenarios))
	for name := range m.scenarios {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		st := m.scenarios[name]
		row := scenarioMetric{Scenario: name, Jobs: st.jobs, Runs: st.runs, Seconds: st.seconds}
		if st.jobs > 0 {
			row.AvgJobSeconds = st.seconds / float64(st.jobs)
		}
		if st.seconds > 0 {
			row.RunsPerSec = float64(st.runs) / st.seconds
		}
		s.Scenarios = append(s.Scenarios, row)
	}
	return s
}

// locked runs fn holding the counter lock.
func (m *metrics) locked(fn func(*metrics)) {
	m.mu.Lock()
	defer m.mu.Unlock()
	fn(m)
}

// jobFinished folds one executed campaign into the engine and
// per-scenario counters. executed counts seeds actually run (not
// resumed), resumed the checkpoint-reused seeds, seconds the job's wall
// time on the dispatcher.
func (m *metrics) jobFinished(scenarioName string, executed, resumed int64, seconds float64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.executedRuns += executed
	m.resumedRuns += resumed
	m.busySeconds += seconds
	st := m.scenarios[scenarioName]
	if st == nil {
		st = &scenarioStats{}
		m.scenarios[scenarioName] = st
	}
	st.jobs++
	st.runs += executed
	st.seconds += seconds
}
