package serve

import (
	"sort"
	"time"

	"dnstime/internal/obs"
)

// metrics aggregates the service's operational counters on an
// obs.Registry, giving one set of instruments two synchronised views: the
// stable /metrics JSON document (snapshot) and the Prometheus text
// exposition (the registry itself, merged with obs.Default at scrape
// time). Counters are lock-free atomics; wall-clock readings come from
// the injected clock so tests stay deterministic.
type metrics struct {
	now   func() time.Time
	start time.Time
	reg   *obs.Registry

	submissions  *obs.Counter
	rateLimited  *obs.Counter
	queueFull    *obs.Counter
	coalesced    *obs.Counter
	cacheHits    *obs.Counter
	cacheMisses  *obs.Counter
	cacheEntries *obs.Gauge
	jobsQueued   *obs.Gauge
	jobsRunning  *obs.Gauge
	jobsDone     *obs.Counter
	jobsFailed   *obs.Counter
	jobsCanceled *obs.Counter

	engineCampaigns *obs.Counter
	executedRuns    *obs.Counter
	resumedRuns     *obs.Counter
	busySeconds     *obs.FloatCounter

	jobSeconds      *obs.HistogramVec
	scenarioJobs    *obs.CounterVec
	scenarioRuns    *obs.CounterVec
	scenarioSeconds *obs.FloatCounterVec
}

// newMetrics starts the counter set at the injected clock's current time.
// Each server owns a private registry so concurrent servers (tests) never
// share counters; process-wide engine metrics live in obs.Default and are
// merged at exposition time.
func newMetrics(now func() time.Time) *metrics {
	reg := obs.NewRegistry()
	return &metrics{
		now: now, start: now(), reg: reg,
		submissions: reg.Counter("dnstime_serve_submissions_total",
			"Job submissions accepted for spec validation."),
		rateLimited: reg.Counter("dnstime_serve_rate_limited_total",
			"Submissions rejected by the per-client rate limiter."),
		queueFull: reg.Counter("dnstime_serve_queue_full_total",
			"Submissions rejected because the bounded job queue was full."),
		coalesced: reg.Counter("dnstime_serve_coalesced_total",
			"Submissions coalesced onto an identical in-flight job."),
		cacheHits: reg.Counter("dnstime_serve_cache_hits_total",
			"Submissions served instantly from the aggregate cache."),
		cacheMisses: reg.Counter("dnstime_serve_cache_misses_total",
			"Submissions that missed the aggregate cache and enqueued a campaign."),
		cacheEntries: reg.Gauge("dnstime_serve_cache_entries",
			"Aggregates currently held by the cache."),
		jobsQueued: reg.Gauge("dnstime_serve_jobs_queued",
			"Jobs currently waiting in the FIFO queue."),
		jobsRunning: reg.Gauge("dnstime_serve_jobs_running",
			"Jobs currently executing on the dispatcher."),
		jobsDone: reg.Counter("dnstime_serve_jobs_done_total",
			"Jobs that completed successfully (including cache hits)."),
		jobsFailed: reg.Counter("dnstime_serve_jobs_failed_total",
			"Jobs that terminated with an error."),
		jobsCanceled: reg.Counter("dnstime_serve_jobs_canceled_total",
			"Jobs canceled by a client or a server drain."),
		engineCampaigns: reg.Counter("dnstime_serve_engine_campaigns_total",
			"Campaigns started on the embedded engine."),
		executedRuns: reg.Counter("dnstime_serve_executed_runs_total",
			"Seeds actually executed by the engine (checkpoint-resumed seeds excluded)."),
		resumedRuns: reg.Counter("dnstime_serve_resumed_runs_total",
			"Seeds reused byte-identically from campaign checkpoints."),
		busySeconds: reg.FloatCounter("dnstime_serve_busy_seconds_total",
			"Wall-clock seconds the dispatcher spent executing campaigns."),
		jobSeconds: reg.HistogramVec("dnstime_serve_job_seconds",
			"Wall-clock seconds one job spent on the dispatcher, by scenario.",
			"scenario", obs.DurationBuckets),
		scenarioJobs: reg.CounterVec("dnstime_serve_scenario_jobs_total",
			"Jobs finished, by scenario.", "scenario"),
		scenarioRuns: reg.CounterVec("dnstime_serve_scenario_runs_total",
			"Seeds executed, by scenario.", "scenario"),
		scenarioSeconds: reg.FloatCounterVec("dnstime_serve_scenario_seconds_total",
			"Wall-clock seconds spent, by scenario.", "scenario"),
	}
}

// metricsSnapshot is the /metrics JSON document. Field order is fixed by
// the struct, map keys marshal sorted, so the document is byte-stable for
// a given counter state.
type metricsSnapshot struct {
	UptimeSeconds float64          `json:"uptime_seconds"`
	Jobs          jobCounters      `json:"jobs"`
	Cache         cacheCounters    `json:"cache"`
	Engine        engineCounters   `json:"engine"`
	Scenarios     []scenarioMetric `json:"scenarios,omitempty"`
	Build         obs.Build        `json:"build"`
}

// jobCounters reports the queue and job-lifecycle counters.
type jobCounters struct {
	Queued      int64 `json:"queued"`
	Running     int64 `json:"running"`
	Done        int64 `json:"done"`
	Failed      int64 `json:"failed"`
	Canceled    int64 `json:"canceled"`
	Submissions int64 `json:"submissions"`
	Coalesced   int64 `json:"coalesced"`
	RateLimited int64 `json:"rate_limited"`
	QueueFull   int64 `json:"queue_full"`
}

// cacheCounters reports aggregate-cache effectiveness.
type cacheCounters struct {
	Hits       int64   `json:"hits"`
	Misses     int64   `json:"misses"`
	HitRatePct float64 `json:"hit_rate_pct"`
	Entries    int     `json:"entries"`
}

// engineCounters reports Engine-level work: campaigns started, seeds
// actually executed vs reused from checkpoints, and throughput over the
// time the dispatcher was busy.
type engineCounters struct {
	Campaigns    int64   `json:"campaigns"`
	ExecutedRuns int64   `json:"executed_runs"`
	ResumedRuns  int64   `json:"resumed_runs"`
	BusySeconds  float64 `json:"busy_seconds"`
	RunsPerSec   float64 `json:"runs_per_sec"`
}

// scenarioMetric is one scenario's latency/throughput row, sorted by
// name in the snapshot.
type scenarioMetric struct {
	Scenario      string  `json:"scenario"`
	Jobs          int64   `json:"jobs"`
	Runs          int64   `json:"runs"`
	Seconds       float64 `json:"seconds"`
	AvgJobSeconds float64 `json:"avg_job_seconds"`
	RunsPerSec    float64 `json:"runs_per_sec"`
}

// snapshot freezes the counters into the /metrics document. cacheEntries
// is supplied by the cache, which owns its own lock.
func (m *metrics) snapshot(cacheEntries int) metricsSnapshot {
	m.cacheEntries.Set(int64(cacheEntries))
	hits, misses := m.cacheHits.Value(), m.cacheMisses.Value()
	busy := m.busySeconds.Value()
	s := metricsSnapshot{
		UptimeSeconds: m.now().Sub(m.start).Seconds(),
		Jobs: jobCounters{
			Queued: m.jobsQueued.Value(), Running: m.jobsRunning.Value(),
			Done: m.jobsDone.Value(), Failed: m.jobsFailed.Value(), Canceled: m.jobsCanceled.Value(),
			Submissions: m.submissions.Value(), Coalesced: m.coalesced.Value(),
			RateLimited: m.rateLimited.Value(), QueueFull: m.queueFull.Value(),
		},
		Cache: cacheCounters{
			Hits: hits, Misses: misses, Entries: cacheEntries,
		},
		Engine: engineCounters{
			Campaigns: m.engineCampaigns.Value(), ExecutedRuns: m.executedRuns.Value(),
			ResumedRuns: m.resumedRuns.Value(), BusySeconds: busy,
		},
		Build: obs.BuildInfo(),
	}
	if lookups := hits + misses; lookups > 0 {
		s.Cache.HitRatePct = 100 * float64(hits) / float64(lookups)
	}
	if busy > 0 {
		s.Engine.RunsPerSec = float64(m.executedRuns.Value()) / busy
	}
	names := m.scenarioJobs.Labels()
	sort.Strings(names)
	for _, name := range names {
		jobs := m.scenarioJobs.With(name).Value()
		runs := m.scenarioRuns.With(name).Value()
		seconds := m.scenarioSeconds.With(name).Value()
		row := scenarioMetric{Scenario: name, Jobs: jobs, Runs: runs, Seconds: seconds}
		if jobs > 0 {
			row.AvgJobSeconds = seconds / float64(jobs)
		}
		if seconds > 0 {
			row.RunsPerSec = float64(runs) / seconds
		}
		s.Scenarios = append(s.Scenarios, row)
	}
	return s
}

// jobFinished folds one executed campaign into the engine and
// per-scenario counters. executed counts seeds actually run (not
// resumed), resumed the checkpoint-reused seeds, seconds the job's wall
// time on the dispatcher.
func (m *metrics) jobFinished(scenarioName string, executed, resumed int64, seconds float64) {
	m.executedRuns.Add(executed)
	m.resumedRuns.Add(resumed)
	m.busySeconds.Add(seconds)
	m.jobSeconds.With(scenarioName).Observe(seconds)
	m.scenarioJobs.With(scenarioName).Inc()
	m.scenarioRuns.With(scenarioName).Add(executed)
	m.scenarioSeconds.With(scenarioName).Add(seconds)
}
