package campaign

import (
	"encoding/json"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"dnstime/internal/core"
	"dnstime/internal/ntpclient"
)

func TestRunBootTimeAggregate(t *testing.T) {
	agg, err := Run(Spec{
		Kind:    BootTime,
		Profile: ntpclient.ProfileNTPd,
		Seeds:   8,
		Workers: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if agg.Runs != 8 {
		t.Fatalf("runs = %d, want 8", agg.Runs)
	}
	if agg.Errors != 0 {
		t.Fatalf("errors = %d: %+v", agg.Errors, agg.PerRun)
	}
	if agg.Successes != 8 {
		t.Errorf("successes = %d, want 8 (ntpd boot-time attack is deterministic)", agg.Successes)
	}
	if agg.SuccessRate != 100 {
		t.Errorf("success rate = %v, want 100", agg.SuccessRate)
	}
	if agg.SuccessCI.Lo <= 0 || agg.SuccessCI.Hi != 100 {
		t.Errorf("Wilson CI = %+v, want (0,100]", agg.SuccessCI)
	}
	if agg.MeanTTS <= 0 || agg.P95TTS < agg.MedianTTS {
		t.Errorf("bad time-to-shift stats: mean=%v median=%v p95=%v",
			agg.MeanTTS, agg.MedianTTS, agg.P95TTS)
	}
	for i, r := range agg.PerRun {
		if r.Seed != int64(1+i) {
			t.Fatalf("PerRun[%d].Seed = %d, want %d (seed order)", i, r.Seed, 1+i)
		}
		if r.ClockOffset > -400*time.Second || r.ClockOffset < -600*time.Second {
			t.Errorf("seed %d: offset %v, want ≈ −500 s", r.Seed, r.ClockOffset)
		}
	}
}

// TestRunDeterministicAcrossWorkers is the engine's core contract: the same
// seeds produce byte-identical aggregates at any worker count.
func TestRunDeterministicAcrossWorkers(t *testing.T) {
	spec := Spec{
		Kind:    BootTime,
		Profile: ntpclient.ProfileChrony,
		Seeds:   16,
		Lab:     core.LabConfig{EvilOffset: -300 * time.Second},
	}
	marshal := func(workers int) string {
		s := spec
		s.Workers = workers
		agg, err := Run(s)
		if err != nil {
			t.Fatal(err)
		}
		b, err := json.Marshal(agg)
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}
	serial := marshal(1)
	for _, w := range []int{2, 8} {
		if got := marshal(w); got != serial {
			t.Errorf("workers=%d output differs from workers=1:\n%s\nvs\n%s", w, got, serial)
		}
	}
}

// TestTableIDeterministicAcrossWorkers is the acceptance criterion: a
// 64-seed Table I campaign is byte-identical at -workers 1 and -workers 8.
func TestTableIDeterministicAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("64-seed campaign in -short mode")
	}
	marshal := func(workers int) string {
		rows, err := TableI(TableIOptions{Seeds: 64, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		b, err := json.Marshal(rows)
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}
	serial := marshal(1)
	if parallel := marshal(8); parallel != serial {
		t.Fatalf("workers=8 output differs from workers=1")
	}
}

func TestTableIRows(t *testing.T) {
	rows, err := TableI(TableIOptions{Seeds: 4, Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	profiles := ntpclient.AllProfiles()
	if len(rows) != len(profiles) {
		t.Fatalf("rows = %d, want %d", len(rows), len(profiles))
	}
	for i, row := range rows {
		if row.Client != profiles[i].Profile.Name {
			t.Errorf("row %d client = %q, want %q (paper order)", i, row.Client, profiles[i].Profile.Name)
		}
		if row.Boot.Runs != 4 {
			t.Errorf("%s: boot runs = %d, want 4", row.Client, row.Boot.Runs)
		}
	}
	// The paper's Table I: all seven clients are boot-time vulnerable,
	// four support run-time DNS lookups.
	boot, run := 0, 0
	for _, row := range rows {
		if row.Boot.Successes == row.Boot.Runs {
			boot++
		}
		if row.RunTime == core.Yes.String() {
			run++
		}
	}
	if boot != 7 {
		t.Errorf("boot-vulnerable clients = %d, want 7", boot)
	}
	if run != 4 {
		t.Errorf("runtime-vulnerable clients = %d, want 4", run)
	}
}

func TestRunChronosCampaign(t *testing.T) {
	agg, err := Run(Spec{Kind: Chronos, ChronosN: 5, Seeds: 3, Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	if agg.Errors != 0 {
		t.Fatalf("errors = %d: %+v", agg.Errors, agg.PerRun)
	}
	// N=5 ≤ bound 11: poisoning lands early enough, every seed shifts.
	if agg.Successes != agg.Runs {
		t.Errorf("successes = %d/%d, want all", agg.Successes, agg.Runs)
	}
	// Chronos has no time-to-shift metric; the aggregate must not invent
	// one from zero values.
	if agg.TTSRuns != 0 {
		t.Errorf("TTSRuns = %d, want 0 for chronos", agg.TTSRuns)
	}
	if strings.Contains(agg.String(), "time-to-shift") {
		t.Errorf("chronos aggregate renders a time-to-shift: %s", agg)
	}
}

func TestRunProgressReporting(t *testing.T) {
	var mu sync.Mutex
	var dones []int
	agg, err := Run(Spec{
		Kind:    BootTime,
		Profile: ntpclient.ProfileNtpdate,
		Seeds:   6,
		Workers: 3,
		Progress: func(done, total int) {
			mu.Lock()
			defer mu.Unlock()
			if total != 6 {
				t.Errorf("total = %d, want 6", total)
			}
			dones = append(dones, done)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if agg.Runs != 6 {
		t.Fatalf("runs = %d", agg.Runs)
	}
	if len(dones) != 6 {
		t.Fatalf("progress calls = %d, want 6", len(dones))
	}
	for i, d := range dones {
		if d != i+1 {
			t.Fatalf("progress counts = %v, want 1..6 in order", dones)
		}
	}
}

func TestRunBadSpec(t *testing.T) {
	if _, err := Run(Spec{}); err == nil {
		t.Error("Run(Spec{}) succeeded, want ErrBadSpec")
	}
	if _, err := Run(Spec{Kind: BootTime}); err == nil {
		t.Error("boot-time campaign without profile succeeded, want ErrBadSpec")
	}
	// The Spec shim translates the profile into a scenario param, so a
	// bespoke profile (not one of the Table I registrations) cannot be
	// expressed and must be rejected rather than silently replaced.
	custom := ntpclient.ProfileNTPd
	custom.PollInterval = 1 // no longer the registered profile
	if _, err := Run(Spec{Kind: BootTime, Profile: custom, Seeds: 1}); !errors.Is(err, ErrBadSpec) {
		t.Errorf("bespoke profile: err = %v, want ErrBadSpec", err)
	}
}
