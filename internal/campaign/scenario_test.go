package campaign

import (
	"encoding/json"
	"strings"
	"testing"

	"dnstime/internal/scenario"
)

// builtinScenarios returns every registered scenario except the "t-"
// doubles this package's engine tests register.
func builtinScenarios() []scenario.Scenario {
	var out []scenario.Scenario
	for _, s := range scenario.All() {
		if !strings.HasPrefix(s.Name, "t-") {
			out = append(out, s)
		}
	}
	return out
}

// TestScenarioRegistryComplete locks the catalogue the campaign engine
// fans out: every experiment of DESIGN.md §4 must be registered.
func TestScenarioRegistryComplete(t *testing.T) {
	want := []string{
		"boot", "runtime", "table1", "table2", "table3", "chronos",
		"chronosbound", "netsweep", "racemargin", "ratelimit", "nsfrag",
		"fig5", "table4", "fig6", "table5", "shared", "fig7",
	}
	names := map[string]bool{}
	for _, s := range builtinScenarios() {
		names[s.Name] = true
	}
	for _, n := range want {
		if !names[n] {
			t.Errorf("scenario %q not registered (have: %s)", n, strings.Join(scenario.Names(), ", "))
		}
	}
	if len(names) != len(want) {
		t.Errorf("registry has %d scenarios, want %d: %s", len(names), len(want), strings.Join(scenario.Names(), ", "))
	}
}

// TestScenarioRegistryHygiene: every built-in registration carries the
// full identification surface (no blank DESIGN.md §4 cells), a name the
// comma-separated CLI can select, a unique index position, and a
// well-formed param surface (override keys must not collide with the
// reserved Result fields and must be CLI-expressible).
func TestScenarioRegistryHygiene(t *testing.T) {
	orders := map[int]string{}
	for _, s := range builtinScenarios() {
		if s.Title == "" || s.Impl == "" || s.PaperRef == "" || s.CLI == "" {
			t.Errorf("%s: blank identification cell (Title=%q Impl=%q PaperRef=%q CLI=%q)",
				s.Name, s.Title, s.Impl, s.PaperRef, s.CLI)
		}
		if strings.ContainsAny(s.Name, ", |") {
			t.Errorf("%s: name not selectable via -only", s.Name)
		}
		if prev, dup := orders[s.Order]; dup {
			t.Errorf("%s: Order %d already used by %s (the §4 index position must be unique)",
				s.Name, s.Order, prev)
		}
		orders[s.Order] = s.Name
		seen := map[string]bool{}
		for _, k := range s.ParamKeys {
			if k == "" || strings.ContainsAny(k, "= ,") {
				t.Errorf("%s: param key %q not expressible as -param k=v", s.Name, k)
			}
			if seen[k] {
				t.Errorf("%s: duplicate param key %q", s.Name, k)
			}
			seen[k] = true
		}
	}
}

// TestRunScenarioDeterministicAcrossWorkers is the acceptance criterion
// for the registry rewrite: for EVERY registered scenario, a campaign's
// marshalled aggregate is byte-identical at -workers 1 and -workers 8.
func TestRunScenarioDeterministicAcrossWorkers(t *testing.T) {
	for _, sc := range scenario.All() {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			t.Parallel()
			marshal := func(workers int) string {
				agg, err := RunScenario(sc.Name, ScenarioOptions{
					Seeds:   2,
					Workers: workers,
					Fast:    true,
				})
				if err != nil {
					t.Fatal(err)
				}
				b, err := json.Marshal(agg)
				if err != nil {
					t.Fatal(err)
				}
				return string(b)
			}
			serial := marshal(1)
			if parallel := marshal(8); parallel != serial {
				t.Errorf("workers=8 output differs from workers=1:\n%s\nvs\n%s", parallel, serial)
			}
		})
	}
}

func TestRunScenarioAggregate(t *testing.T) {
	agg, err := RunScenario("boot", ScenarioOptions{Seeds: 6, Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	if agg.Runs != 6 || agg.Errors != 0 {
		t.Fatalf("runs=%d errors=%d: %+v", agg.Runs, agg.Errors, agg.PerRun)
	}
	if agg.OutcomeRuns != 6 || agg.Successes != 6 || agg.SuccessRate != 100 {
		t.Errorf("outcomes=%d successes=%d rate=%v, want 6/6 at 100%%",
			agg.OutcomeRuns, agg.Successes, agg.SuccessRate)
	}
	if agg.SuccessCI.Lo <= 0 || agg.SuccessCI.Hi != 100 {
		t.Errorf("Wilson CI = %+v, want (0,100]", agg.SuccessCI)
	}
	for i, r := range agg.PerRun {
		if r.Seed != int64(1+i) {
			t.Fatalf("PerRun[%d].Seed = %d, want %d (seed order)", i, r.Seed, 1+i)
		}
	}
	var tts *MetricSummary
	for i := range agg.Metrics {
		if agg.Metrics[i].Name == "tts_s" {
			tts = &agg.Metrics[i]
		}
		if i > 0 && agg.Metrics[i-1].Name >= agg.Metrics[i].Name {
			t.Errorf("metric summaries not sorted: %q before %q", agg.Metrics[i-1].Name, agg.Metrics[i].Name)
		}
	}
	if tts == nil {
		t.Fatalf("no tts_s metric summary: %+v", agg.Metrics)
	}
	if tts.Samples != 6 || tts.Mean <= 0 || tts.Min > tts.Median || tts.Median > tts.Max {
		t.Errorf("bad tts_s summary: %+v", *tts)
	}
}

// TestMetricSubsetDenominator is the regression test for metric keys
// present in only a subset of a campaign's seeds (racemargin emits
// tts_s/<margin> only on shifted seeds): the summary's statistics are
// computed over exactly the reporting runs, Samples records that
// denominator explicitly, and absent keys never enter the fold as
// zeros — which would silently drag the mean toward 0.
func TestMetricSubsetDenominator(t *testing.T) {
	sc := scenario.Scenario{Name: "subset"}
	results := []scenario.Result{
		{Seed: 1, Success: scenario.Bool(true), Metrics: map[string]float64{"always": 10, "sometimes": 4}},
		{Seed: 2, Success: scenario.Bool(false), Metrics: map[string]float64{"always": 20}},
		{Seed: 3, Success: scenario.Bool(true), Metrics: map[string]float64{"always": 30, "sometimes": 8}},
		{Seed: 4, Err: "lab exploded", Metrics: map[string]float64{"always": 999}},
	}
	agg := foldScenario(sc, results)
	if agg.Runs != 4 || agg.Errors != 1 || agg.OutcomeRuns != 3 {
		t.Fatalf("runs=%d errors=%d outcomes=%d", agg.Runs, agg.Errors, agg.OutcomeRuns)
	}
	byName := map[string]MetricSummary{}
	for _, m := range agg.Metrics {
		byName[m.Name] = m
	}
	always, ok := byName["always"]
	if !ok {
		t.Fatalf("no summary for always: %+v", agg.Metrics)
	}
	// The errored seed's metrics must not leak into the fold.
	if always.Samples != 3 || always.Mean != 20 || always.Max != 30 {
		t.Errorf("always = %+v, want Samples 3 (clean runs only), mean 20", always)
	}
	sometimes, ok := byName["sometimes"]
	if !ok {
		t.Fatalf("no summary for sometimes: %+v", agg.Metrics)
	}
	if sometimes.Samples != 2 {
		t.Errorf("sometimes.Samples = %d, want 2 (only the reporting runs)", sometimes.Samples)
	}
	if sometimes.Mean != 6 || sometimes.Median != 6 || sometimes.Min != 4 || sometimes.Max != 8 {
		t.Errorf("sometimes = %+v, want statistics over {4, 8}, not zero-filled", sometimes)
	}
	// The explicit denominator must survive into rendered and JSON output.
	if r := agg.Render(); !strings.Contains(r, "n") || !strings.Contains(r, "sometimes") {
		t.Errorf("Render() lost the sample column:\n%s", r)
	}
	b, err := json.Marshal(sometimes)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(b), `"samples":2`) {
		t.Errorf("marshalled summary lacks samples: %s", b)
	}
}

// TestRunScenarioNoOutcome: scenarios without a binary outcome (the
// closed-form table3) must not invent success statistics.
func TestRunScenarioNoOutcome(t *testing.T) {
	agg, err := RunScenario("table3", ScenarioOptions{Seeds: 3, Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	if agg.OutcomeRuns != 0 || agg.Successes != 0 {
		t.Errorf("table3 reports outcomes: %+v", agg)
	}
	if strings.Contains(agg.String(), "succeeded") {
		t.Errorf("outcome-free aggregate renders a success rate: %s", agg)
	}
	// Seed-independent closed form: identical samples, no spread beyond
	// float rounding in the mean CI.
	for _, m := range agg.Metrics {
		if m.Min != m.Max || m.CI.Hi-m.CI.Lo > 1e-9 {
			t.Errorf("metric %s varies across seeds: %+v", m.Name, m)
		}
	}
}

// TestTableIFastPathMatchesScenario: the profile-batched TableI fast
// path and the registry's generic table1 scenario must report the same
// statistics, so the two views of Table I cannot drift apart.
func TestTableIFastPathMatchesScenario(t *testing.T) {
	const seeds = 4
	rows, err := TableI(TableIOptions{Seeds: seeds, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	agg, err := RunScenario("table1", ScenarioOptions{Seeds: seeds, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	mean := func(name string) float64 {
		for _, m := range agg.Metrics {
			if m.Name == name {
				if m.Samples != seeds {
					t.Errorf("%s: %d samples, want %d", name, m.Samples, seeds)
				}
				return m.Mean
			}
		}
		t.Fatalf("table1 aggregate missing metric %q", name)
		return 0
	}
	for _, row := range rows {
		if got, want := row.Boot.SuccessRate, 100*mean("boot/"+row.Client); got != want {
			t.Errorf("%s: fast-path success rate %.2f, scenario %.2f", row.Client, got, want)
		}
		if got, want := row.Boot.MeanTTS, mean("tts_s/"+row.Client); !closeTo(got, want, 1e-6) {
			t.Errorf("%s: fast-path mean TTS %.6f, scenario %.6f", row.Client, got, want)
		}
	}
}

func closeTo(a, b, eps float64) bool {
	d := a - b
	return d < eps && d > -eps
}

func TestRunScenarioUnknown(t *testing.T) {
	if _, err := RunScenario("sundial", ScenarioOptions{}); err == nil {
		t.Error("unknown scenario accepted")
	}
}
