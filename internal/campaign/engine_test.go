package campaign

import (
	"context"
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"dnstime/internal/core"
	"dnstime/internal/ntpclient"
	"dnstime/internal/scenario"
)

// Test doubles, registered once at init so the registry's content is the
// same no matter which test runs first. Both behave as ordinary fast
// deterministic scenarios unless a test flips their package-level knobs,
// so registry-wide sweeps (TestRunScenarioDeterministicAcrossWorkers)
// can include them safely.
var (
	// engineGateFrom makes t-eng-gate block every run with seed >= the
	// stored value until its context is cancelled. Reset to MaxInt64
	// (never block) after use.
	engineGateFrom atomic.Int64
	// engineRunCount counts every t-eng-gate run that actually executed
	// (blocked runs included).
	engineRunCount atomic.Int64
)

func init() {
	engineGateFrom.Store(math.MaxInt64)
	scenario.Register(scenario.Scenario{
		Name:     "t-eng-gate",
		Title:    "Engine-test gated scenario",
		PaperRef: "§0",
		Impl:     "campaign_test.gate",
		CLI:      "none",
		Order:    1000,
		Run: func(ctx context.Context, seed int64, cfg scenario.Config) (scenario.Result, error) {
			engineRunCount.Add(1)
			if seed >= engineGateFrom.Load() {
				<-ctx.Done()
				return scenario.Result{}, ctx.Err()
			}
			return scenario.Result{
				Success: scenario.Bool(seed%2 == 0),
				Metrics: map[string]float64{"echo": float64(2 * seed)},
			}, nil
		},
	})
	scenario.Register(scenario.Scenario{
		Name:      "t-eng-echo",
		Title:     "Engine-test echo scenario",
		PaperRef:  "§0",
		Impl:      "campaign_test.echo",
		CLI:       "none",
		ParamKeys: []string{"bias"},
		Order:     1001,
		Run: func(_ context.Context, seed int64, cfg scenario.Config) (scenario.Result, error) {
			bias, err := cfg.Params.Int("bias", 0)
			if err != nil {
				return scenario.Result{}, err
			}
			return scenario.Result{
				Metrics: map[string]float64{"echo": float64(seed) + float64(bias)},
			}, nil
		},
	})
}

// marshalAgg runs the engine and marshals the aggregate.
func marshalAgg(t *testing.T, name string, opts ...Option) string {
	t.Helper()
	agg, err := NewEngine(opts...).Run(context.Background(), name)
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(agg)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestEngineMatchesRunScenario is the acceptance criterion: Engine.Run
// and Engine.Stream produce byte-identical aggregates to the deprecated
// RunScenario shim at any worker count.
func TestEngineMatchesRunScenario(t *testing.T) {
	for _, name := range []string{"boot", "table3", "chronosbound", "t-eng-gate"} {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			legacy, err := RunScenario(name, ScenarioOptions{Seeds: 4, Workers: 3, Fast: true})
			if err != nil {
				t.Fatal(err)
			}
			want, err := json.Marshal(legacy)
			if err != nil {
				t.Fatal(err)
			}
			for _, workers := range []int{1, 8} {
				got := marshalAgg(t, name,
					WithSeeds(4), WithWorkers(workers), WithFast(true))
				if got != string(want) {
					t.Errorf("Engine.Run (workers=%d) differs from RunScenario:\n%s\nvs\n%s",
						workers, got, want)
				}
				st, err := NewEngine(WithSeeds(4), WithWorkers(workers), WithFast(true)).
					Stream(context.Background(), name)
				if err != nil {
					t.Fatal(err)
				}
				streamed := 0
				for range st.Results() {
					streamed++
				}
				agg, err := st.Wait()
				if err != nil {
					t.Fatal(err)
				}
				if streamed != 4 {
					t.Errorf("streamed %d results, want 4", streamed)
				}
				b, _ := json.Marshal(agg)
				if string(b) != string(want) {
					t.Errorf("Engine.Stream (workers=%d) differs from RunScenario:\n%s\nvs\n%s",
						workers, b, want)
				}
			}
		})
	}
}

// TestEngineBaseSeedZero is the zero-value regression: WithBaseSeed(0)
// really runs seed 0 (the deprecated option structs treated 0 as unset,
// making seed 0 impossible to request).
func TestEngineBaseSeedZero(t *testing.T) {
	agg, err := NewEngine(WithSeeds(3), WithBaseSeed(0)).Run(context.Background(), "t-eng-echo")
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range agg.PerRun {
		if r.Seed != int64(i) {
			t.Fatalf("PerRun[%d].Seed = %d, want %d (base seed 0)", i, r.Seed, i)
		}
	}
	if agg.Metrics[0].Min != 0 {
		t.Errorf("echo metric min = %v, want 0 (seed 0 ran)", agg.Metrics[0].Min)
	}
	// Unset still defaults to 1.
	agg, err = NewEngine(WithSeeds(2)).Run(context.Background(), "t-eng-echo")
	if err != nil {
		t.Fatal(err)
	}
	if agg.PerRun[0].Seed != 1 {
		t.Errorf("default base seed = %d, want 1", agg.PerRun[0].Seed)
	}
}

// TestEngineCancellation cancels a campaign after K of N seeds complete:
// the workers must drain, the partial aggregate must cover exactly the
// completed seeds, and no goroutines may leak.
func TestEngineCancellation(t *testing.T) {
	const (
		seeds    = 8
		baseSeed = 1
		quick    = 3 // seeds 1..3 complete; every later seed blocks on ctx
	)
	engineGateFrom.Store(baseSeed + quick)
	defer engineGateFrom.Store(math.MaxInt64)
	before := runtime.NumGoroutine()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	st, err := NewEngine(WithSeeds(seeds), WithBaseSeed(baseSeed), WithWorkers(3)).
		Stream(ctx, "t-eng-gate")
	if err != nil {
		t.Fatal(err)
	}
	got := 0
	for range st.Results() {
		got++
		if got == quick {
			cancel() // unblocks the gated runs; workers drain
		}
	}
	agg, werr := st.Wait()
	if werr != context.Canceled {
		t.Errorf("Wait error = %v, want context.Canceled", werr)
	}
	if !agg.Partial {
		t.Error("cancelled aggregate not marked Partial")
	}
	if agg.Runs != quick || len(agg.PerRun) != quick {
		t.Fatalf("partial aggregate has %d runs (%d per-run), want exactly %d",
			agg.Runs, len(agg.PerRun), quick)
	}
	for i, r := range agg.PerRun {
		if r.Seed != int64(baseSeed+i) {
			t.Errorf("PerRun[%d].Seed = %d, want %d (completed seeds only, seed order)",
				i, r.Seed, baseSeed+i)
		}
		if r.Err != "" {
			t.Errorf("seed %d: cancelled run leaked into the aggregate as error %q", r.Seed, r.Err)
		}
	}
	// Workers must be gone: Wait already joined them, and the goroutine
	// count must return to its pre-campaign level (give the runtime a
	// moment to reap).
	for deadline := time.Now().Add(2 * time.Second); ; {
		if runtime.NumGoroutine() <= before {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before campaign, %d after drain",
				before, runtime.NumGoroutine())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestEngineCheckpointResume is the resume acceptance criterion: a
// campaign cancelled after K seeds and resumed from its checkpoint folds
// into the byte-identical aggregate of an uninterrupted run, re-executing
// only the missing seeds.
func TestEngineCheckpointResume(t *testing.T) {
	const seeds = 6
	path := filepath.Join(t.TempDir(), "campaign.jsonl")
	want := marshalAgg(t, "t-eng-gate", WithSeeds(seeds), WithWorkers(2))

	// Interrupted first attempt: seeds 1..3 complete, later seeds block.
	engineGateFrom.Store(4)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	st, err := NewEngine(
		WithSeeds(seeds), WithWorkers(2), WithCheckpoint(path),
	).Stream(ctx, "t-eng-gate")
	if err != nil {
		t.Fatal(err)
	}
	got := 0
	for range st.Results() {
		if got++; got == 3 {
			cancel()
		}
	}
	if agg, err := st.Wait(); err != context.Canceled || agg.Runs != 3 {
		t.Fatalf("interrupted run: %d runs, err %v", agg.Runs, err)
	}
	engineGateFrom.Store(math.MaxInt64)

	// The checkpoint holds the header plus one line per completed seed.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(strings.TrimSpace(string(data)), "\n") + 1; lines != 1+3 {
		t.Fatalf("checkpoint has %d lines, want header + 3 seeds:\n%s", lines, data)
	}

	// Resume: only the 3 missing seeds run; the aggregate is
	// byte-identical to the uninterrupted campaign.
	engineRunCount.Store(0)
	resumed := marshalAgg(t, "t-eng-gate",
		WithSeeds(seeds), WithWorkers(2), WithResume(path), WithCheckpoint(path))
	if resumed != want {
		t.Errorf("resumed aggregate differs from uninterrupted run:\n%s\nvs\n%s", resumed, want)
	}
	if n := engineRunCount.Load(); n != seeds-3 {
		t.Errorf("resume executed %d runs, want %d (checkpointed seeds must be skipped)", n, seeds-3)
	}

	// The extended checkpoint now covers every seed: a second resume
	// executes nothing and still folds the identical aggregate.
	engineRunCount.Store(0)
	again := marshalAgg(t, "t-eng-gate", WithSeeds(seeds), WithWorkers(2), WithResume(path))
	if again != want {
		t.Errorf("fully-checkpointed resume differs:\n%s\nvs\n%s", again, want)
	}
	if n := engineRunCount.Load(); n != 0 {
		t.Errorf("fully-checkpointed resume executed %d runs, want 0", n)
	}
}

// TestEngineResumeRejectsMismatch: a checkpoint can only seed the
// campaign its header describes.
func TestEngineResumeRejectsMismatch(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ck.jsonl")
	if _, err := NewEngine(WithSeeds(2), WithCheckpoint(path)).
		Run(context.Background(), "t-eng-echo"); err != nil {
		t.Fatal(err)
	}
	cases := map[string][]Option{
		"different scenario": {WithSeeds(2), WithResume(path)}, // resumed into t-eng-gate below
		"different params":   {WithSeeds(2), WithResume(path), WithParam("bias", "7")},
		"different fast":     {WithSeeds(2), WithResume(path), WithFast(true)},
	}
	for name, opts := range cases {
		target := "t-eng-echo"
		if name == "different scenario" {
			target = "t-eng-gate"
		}
		if _, err := NewEngine(opts...).Run(context.Background(), target); err == nil {
			t.Errorf("%s: incompatible checkpoint accepted", name)
		}
	}
	if _, err := NewEngine(WithResume(filepath.Join(t.TempDir(), "missing.jsonl"))).
		Run(context.Background(), "t-eng-echo"); err == nil {
		t.Error("missing resume file accepted")
	}
}

// TestEngineResumeRevisionGate: a checkpoint header records the writing
// build's VCS revision, and a build at a different revision refuses to
// resume it unless WithResumeForce is passed — recorded seeds are only
// reproducible under the simulator code that produced them. The gate is
// advisory where identity is unknowable: non-VCS builds ("unknown", the
// `go test` case) stamp nothing and compare nothing.
func TestEngineResumeRevisionGate(t *testing.T) {
	defer func(orig func() string) { buildRevision = orig }(buildRevision)
	path := filepath.Join(t.TempDir(), "ck.jsonl")

	buildRevision = func() string { return "aaaa00000000" }
	if _, err := NewEngine(WithSeeds(2), WithCheckpoint(path)).
		Run(context.Background(), "t-eng-echo"); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if hdr := strings.SplitN(string(data), "\n", 2)[0]; !strings.Contains(hdr, `"revision":"aaaa00000000"`) {
		t.Fatalf("header lacks the revision stamp: %s", hdr)
	}

	if _, err := NewEngine(WithSeeds(2), WithResume(path)).
		Run(context.Background(), "t-eng-echo"); err != nil {
		t.Errorf("same-revision resume refused: %v", err)
	}

	buildRevision = func() string { return "bbbb11111111" }
	if _, err := NewEngine(WithSeeds(2), WithResume(path)).
		Run(context.Background(), "t-eng-echo"); err == nil || !strings.Contains(err.Error(), "revision") {
		t.Errorf("cross-revision resume not refused: %v", err)
	}
	if _, err := NewEngine(WithSeeds(2), WithResume(path), WithResumeForce()).
		Run(context.Background(), "t-eng-echo"); err != nil {
		t.Errorf("forced cross-revision resume failed: %v", err)
	}

	// Current build unknown: nothing to compare against, resume allowed.
	buildRevision = func() string { return "unknown" }
	if _, err := NewEngine(WithSeeds(2), WithResume(path)).
		Run(context.Background(), "t-eng-echo"); err != nil {
		t.Errorf("resume under unknown current revision refused: %v", err)
	}

	// Non-VCS builds must omit the field entirely, and such revision-free
	// checkpoints (including every pre-gate file) stay resumable anywhere.
	path2 := filepath.Join(t.TempDir(), "ck2.jsonl")
	if _, err := NewEngine(WithSeeds(2), WithCheckpoint(path2)).
		Run(context.Background(), "t-eng-echo"); err != nil {
		t.Fatal(err)
	}
	if data, err := os.ReadFile(path2); err != nil || strings.Contains(string(data), "revision") {
		t.Errorf("non-VCS build stamped a revision (read err %v): %s", err, data)
	}
	buildRevision = func() string { return "cccc22222222" }
	if _, err := NewEngine(WithSeeds(2), WithResume(path2)).
		Run(context.Background(), "t-eng-echo"); err != nil {
		t.Errorf("resume of a revision-free checkpoint refused: %v", err)
	}
}

// TestEngineParams: overrides reach the runs, and unknown keys fail
// before any run starts.
func TestEngineParams(t *testing.T) {
	agg, err := NewEngine(WithSeeds(2), WithBaseSeed(5), WithParam("bias", "100")).
		Run(context.Background(), "t-eng-echo")
	if err != nil {
		t.Fatal(err)
	}
	if agg.Metrics[0].Min != 105 || agg.Metrics[0].Max != 106 {
		t.Errorf("echo with bias=100 over seeds 5,6 = [%v, %v], want [105, 106]",
			agg.Metrics[0].Min, agg.Metrics[0].Max)
	}
	if _, err := NewEngine(WithParam("bais", "1")).Stream(context.Background(), "t-eng-echo"); err == nil {
		t.Error("mistyped param key accepted")
	}
	if _, err := NewEngine(WithParam("client", "chrony")).Stream(context.Background(), "table4"); err == nil {
		t.Error("param accepted by a scenario that declares none")
	}
}

// TestEngineParameterisedAttack: the headline redesign goal — a
// boot-time attack against any client profile at any target shift is an
// ordinary parameterised campaign, and the deprecated Spec shim produces
// the matching legacy aggregate.
func TestEngineParameterisedAttack(t *testing.T) {
	agg, err := NewEngine(
		WithSeeds(4),
		WithParam("client", "chrony"),
		WithParam("offset", "-300s"),
	).Run(context.Background(), "boot")
	if err != nil {
		t.Fatal(err)
	}
	if agg.Errors != 0 || agg.OutcomeRuns != 4 {
		t.Fatalf("parameterised boot campaign: %+v", agg)
	}
	var offset *MetricSummary
	for i := range agg.Metrics {
		if agg.Metrics[i].Name == "offset_s" {
			offset = &agg.Metrics[i]
		}
	}
	if offset == nil || offset.Mean > -200 || offset.Mean < -400 {
		t.Fatalf("offset_s summary %+v, want ≈ -300", offset)
	}

	legacy, err := Run(Spec{
		Kind:    BootTime,
		Profile: ntpclient.ProfileChrony,
		Lab:     core.LabConfig{EvilOffset: -300 * time.Second},
		Seeds:   4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if legacy.Runs != 4 || legacy.Successes != agg.Successes {
		t.Errorf("Spec shim: %d/%d successes, engine %d", legacy.Successes, legacy.Runs, agg.Successes)
	}
	for i, r := range legacy.PerRun {
		if want := agg.PerRun[i].Metrics["offset_s"]; !closeTo(r.ClockOffset.Seconds(), want, 1e-6) {
			t.Errorf("seed %d: shim offset %v, engine %v s", r.Seed, r.ClockOffset, want)
		}
	}
}

// TestEngineFreshStartWithResumeAndCheckpoint: pointing WithResume and
// WithCheckpoint at the same (not yet existing) path is the documented
// append workflow — the first run starts fresh instead of erroring, so
// one invocation serves the initial run and every resumption.
func TestEngineFreshStartWithResumeAndCheckpoint(t *testing.T) {
	path := filepath.Join(t.TempDir(), "fresh.jsonl")
	agg, err := NewEngine(
		WithSeeds(2), WithResume(path), WithCheckpoint(path),
	).Run(context.Background(), "t-eng-echo")
	if err != nil {
		t.Fatal(err)
	}
	if agg.Runs != 2 || agg.Partial {
		t.Fatalf("fresh start aggregate: %+v", agg)
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("checkpoint not created: %v", err)
	}
}

// TestEngineResumeToleratesTornTail: a hard kill can tear the final
// checkpoint line mid-write. The unterminated fragment must be ignored on
// resume (it is the crash signature, not corruption), truncated away by
// the same-path append workflow, and the completed campaign must still
// fold the byte-identical aggregate.
func TestEngineResumeToleratesTornTail(t *testing.T) {
	const seeds = 4
	path := filepath.Join(t.TempDir(), "torn.jsonl")
	want := marshalAgg(t, "t-eng-echo", WithSeeds(seeds))

	// Checkpoint seeds 1–2, then tear the tail as a crash would.
	if _, err := NewEngine(WithSeeds(2), WithCheckpoint(path)).
		Run(context.Background(), "t-eng-echo"); err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"seed":3,"metr`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	engineRunCount.Store(0)
	resumed := marshalAgg(t, "t-eng-echo",
		WithSeeds(seeds), WithResume(path), WithCheckpoint(path))
	if resumed != want {
		t.Errorf("resume after torn tail differs from uninterrupted run:\n%s\nvs\n%s", resumed, want)
	}
	// The torn fragment is gone: the file re-parses cleanly end to end.
	if _, err := NewEngine(WithSeeds(seeds), WithResume(path)).
		Run(context.Background(), "t-eng-echo"); err != nil {
		t.Errorf("checkpoint still corrupt after append: %v", err)
	}
	// A malformed line *inside* the terminated prefix is real corruption
	// and must still be rejected.
	if err := os.WriteFile(path, []byte("{\"v\":1,\"scenario\":\"t-eng-echo\",\"base_seed\":1,\"seeds\":4}\nnot json\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := NewEngine(WithSeeds(seeds), WithResume(path)).
		Run(context.Background(), "t-eng-echo"); err == nil {
		t.Error("terminated malformed line accepted")
	}
}
