package campaign

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"dnstime/internal/scenario"
)

// fuzzCfg is the engine config every fuzzed load resumes into: the boot
// scenario over seeds 1–8.
var fuzzCfg = engineConfig{seeds: 8, baseSeed: 1}

// checkpointBytes renders a well-formed checkpoint for the fuzz corpus.
func checkpointBytes(hdr checkpointHeader, results ...scenario.Result) []byte {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	if err := enc.Encode(hdr); err != nil {
		panic(err)
	}
	for _, res := range results {
		if err := enc.Encode(res); err != nil {
			panic(err)
		}
	}
	return buf.Bytes()
}

// goodHeader is a header compatible with fuzzCfg.
func goodHeader() checkpointHeader {
	return checkpointHeader{V: checkpointVersion, Scenario: "boot", BaseSeed: 1, Seeds: 8}
}

// result builds one seed's recorded outcome.
func result(seed int64, success bool) scenario.Result {
	return scenario.Result{Seed: seed, Success: scenario.Bool(success),
		Metrics: map[string]float64{"tts_s": float64(seed) * 3}}
}

// FuzzLoadCheckpoint hammers the JSONL resume reader with torn tails,
// truncated headers, mixed-scenario lines and arbitrary corruption. The
// invariants: no panic; on success the valid prefix is newline-bounded
// within the file, every resumed seed is in the campaign range, and
// re-loading just the valid prefix reproduces the identical resume set
// (the idempotence the truncate-and-append checkpoint workflow relies
// on).
func FuzzLoadCheckpoint(f *testing.F) {
	full := checkpointBytes(goodHeader(), result(1, true), result(2, false), result(3, true))
	f.Add(full)                                     // happy path
	f.Add(full[:len(full)-7])                       // torn tail mid-record
	f.Add(full[:11])                                // truncated header, no newline
	f.Add([]byte("{\"v\":1,\"scenario\":\"boot\"")) // unterminated header
	f.Add(checkpointBytes(checkpointHeader{V: checkpointVersion, Scenario: "chronos", BaseSeed: 1, Seeds: 8},
		result(2, true))) // mixed-scenario checkpoint
	f.Add(checkpointBytes(checkpointHeader{V: 99, Scenario: "boot"}))                  // future version
	f.Add(checkpointBytes(goodHeader(), result(0, true), result(100, true)))           // out-of-range seeds
	f.Add([]byte{})                                                                    // empty file
	f.Add([]byte("\n\n\n"))                                                            // blank lines
	f.Add([]byte("not json at all\n"))                                                 // garbage header
	f.Add(append(append([]byte{}, full...), "{\"seed\":4,\"metrics\":{\"tts_s\":"...)) // torn append
	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		path := filepath.Join(dir, "ck.jsonl")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		resumed, validLen, err := loadCheckpoint(path, fuzzCfg, "boot")
		if err != nil {
			return // rejected input: fine, as long as it never panics
		}
		if validLen < 0 || validLen > int64(len(data)) {
			t.Fatalf("validLen %d outside [0, %d]", validLen, len(data))
		}
		if validLen > 0 && data[validLen-1] != '\n' {
			t.Errorf("valid prefix does not end on a newline (len %d)", validLen)
		}
		for seed := range resumed {
			if seed < fuzzCfg.baseSeed || seed >= fuzzCfg.baseSeed+int64(fuzzCfg.seeds) {
				t.Errorf("resumed out-of-range seed %d", seed)
			}
		}
		// Idempotence: the valid prefix alone loads to the same state.
		prefixPath := filepath.Join(dir, "prefix.jsonl")
		if err := os.WriteFile(prefixPath, data[:validLen], 0o644); err != nil {
			t.Fatal(err)
		}
		resumed2, validLen2, err := loadCheckpoint(prefixPath, fuzzCfg, "boot")
		if err != nil {
			t.Fatalf("valid prefix no longer loads: %v", err)
		}
		if validLen2 != validLen || !reflect.DeepEqual(resumed, resumed2) {
			t.Errorf("valid prefix loads differently: len %d vs %d, %v vs %v",
				validLen, validLen2, resumed, resumed2)
		}
	})
}

// TestLoadCheckpointTornTail: a trailing fragment without its newline —
// the signature of a torn write — is ignored, not treated as corruption,
// and the measured valid prefix excludes it.
func TestLoadCheckpointTornTail(t *testing.T) {
	full := checkpointBytes(goodHeader(), result(1, true), result(2, false))
	torn := append(append([]byte{}, full...), `{"seed":3,"succ`...)
	path := filepath.Join(t.TempDir(), "ck.jsonl")
	if err := os.WriteFile(path, torn, 0o644); err != nil {
		t.Fatal(err)
	}
	resumed, validLen, err := loadCheckpoint(path, fuzzCfg, "boot")
	if err != nil {
		t.Fatal(err)
	}
	if validLen != int64(len(full)) {
		t.Errorf("validLen = %d, want %d (the untorn prefix)", validLen, len(full))
	}
	if len(resumed) != 2 {
		t.Errorf("resumed %d seeds, want 2 (the torn record must not count)", len(resumed))
	}
}

// TestLoadCheckpointRejects: a truncated (never-terminated) header, a
// header for another scenario, mismatched fast/params settings and a
// malformed line inside the terminated prefix are hard errors — resuming
// would silently mix incompatible campaigns.
func TestLoadCheckpointRejects(t *testing.T) {
	cases := map[string]struct {
		data []byte
		want string
	}{
		"empty file":       {[]byte{}, "empty checkpoint"},
		"truncated header": {[]byte(`{"v":1,"scenario":"boot"`), "empty checkpoint"},
		"garbage header":   {[]byte("not json\n"), "bad header"},
		"other scenario": {checkpointBytes(
			checkpointHeader{V: checkpointVersion, Scenario: "chronos", BaseSeed: 1, Seeds: 8}),
			`scenario "chronos"`},
		"future version": {checkpointBytes(
			checkpointHeader{V: 99, Scenario: "boot", BaseSeed: 1, Seeds: 8}),
			"version 99"},
		"fast mismatch": {checkpointBytes(
			checkpointHeader{V: checkpointVersion, Scenario: "boot", BaseSeed: 1, Seeds: 8, Fast: true}),
			"fast"},
		"params mismatch": {checkpointBytes(
			checkpointHeader{V: checkpointVersion, Scenario: "boot", BaseSeed: 1, Seeds: 8,
				Params: scenario.Params{"client": "chrony"}}),
			"params"},
		"malformed record": {append(checkpointBytes(goodHeader()), "{oops}\n"...),
			"line 2"},
	}
	for name, tc := range cases {
		path := filepath.Join(t.TempDir(), "ck.jsonl")
		if err := os.WriteFile(path, tc.data, 0o644); err != nil {
			t.Fatal(err)
		}
		_, _, err := loadCheckpoint(path, fuzzCfg, "boot")
		if err == nil {
			t.Errorf("%s: accepted", name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", name, err, tc.want)
		}
	}
}

// TestLoadCheckpointSeedRange: only in-range seeds are resumed — the
// contract that lets one checkpoint extend a campaign to more seeds.
func TestLoadCheckpointSeedRange(t *testing.T) {
	data := checkpointBytes(goodHeader(),
		result(0, true), result(1, true), result(8, true), result(9, true))
	path := filepath.Join(t.TempDir(), "ck.jsonl")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	resumed, _, err := loadCheckpoint(path, fuzzCfg, "boot")
	if err != nil {
		t.Fatal(err)
	}
	if len(resumed) != 2 {
		t.Errorf("resumed %d seeds, want 2 (seeds 1 and 8)", len(resumed))
	}
	for _, seed := range []int64{1, 8} {
		if _, ok := resumed[seed]; !ok {
			t.Errorf("in-range seed %d not resumed", seed)
		}
	}
}
