package campaign

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strconv"
	"sync"
	"time"

	"dnstime/internal/core"
	"dnstime/internal/ntpclient"
	"dnstime/internal/scenario"
	"dnstime/internal/stats"
)

// Kind selects which attack experiment a campaign runs per seed.
type Kind int

// The three headline attacks.
const (
	// BootTime runs the §IV-A boot-time attack against Spec.Profile.
	BootTime Kind = iota + 1
	// Runtime runs the §IV-B run-time attack against Spec.Profile under
	// Spec.Scenario.
	Runtime
	// Chronos runs the §VI-C Chronos pool-poisoning attack.
	Chronos
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case BootTime:
		return "boot-time"
	case Runtime:
		return "runtime"
	case Chronos:
		return "chronos"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// measuresTTS reports whether the kind produces a time-to-shift duration.
// The Chronos attack has no meaningful one: success is decided at the end
// of the fixed 24-hour pool-generation window.
func (k Kind) measuresTTS() bool { return k == BootTime || k == Runtime }

// ErrBadSpec reports an unusable campaign spec.
var ErrBadSpec = errors.New("campaign: bad spec")

// Spec describes one campaign: the experiment to repeat and how to fan it
// out.
//
// Deprecated: use NewEngine with a parameterised scenario — the attack
// kinds are registered scenarios ("boot", "runtime", "chronos") whose
// client profile, run-time scenario, Chronos knobs and lab sizing are all
// ordinary params (WithParam("client", "chrony"), …). Spec remains as a
// thin shim that translates itself into such a parameterised campaign.
type Spec struct {
	// Kind selects the attack (required).
	Kind Kind
	// Profile is the NTP client profile (BootTime and Runtime kinds).
	Profile ntpclient.Profile
	// Scenario is the run-time scenario (Runtime kind; default P1).
	Scenario core.RuntimeScenario
	// ChronosN is the number of honest hourly pool queries completed
	// before poisoning lands (Chronos kind; default 5).
	ChronosN int
	// ChronosSpoofed is the address count of the poisoned response
	// (Chronos kind; default 89).
	ChronosSpoofed int
	// Lab is the LabConfig template; Seed is overwritten per run.
	Lab core.LabConfig
	// Seeds is the number of independent seeds (default 16). Run i uses
	// seed BaseSeed+i.
	Seeds int
	// BaseSeed is the first seed (default 1).
	BaseSeed int64
	// Workers caps concurrent runs (default GOMAXPROCS).
	Workers int
	// Progress, if set, is called after each completed run with the
	// number done so far. Calls are serialised but arrive in completion
	// order, not seed order.
	Progress func(done, total int)
}

func (s *Spec) applyDefaults() error {
	switch s.Kind {
	case BootTime, Runtime, Chronos:
	default:
		return fmt.Errorf("%w: unknown kind %d", ErrBadSpec, int(s.Kind))
	}
	if (s.Kind == BootTime || s.Kind == Runtime) && s.Profile.Name == "" {
		return fmt.Errorf("%w: %s campaign needs a client profile", ErrBadSpec, s.Kind)
	}
	if s.Scenario == 0 {
		s.Scenario = core.ScenarioP1
	}
	if s.ChronosN == 0 {
		s.ChronosN = 5
	}
	if s.ChronosSpoofed == 0 {
		s.ChronosSpoofed = 89
	}
	if s.Seeds <= 0 {
		s.Seeds = 16
	}
	if s.BaseSeed == 0 {
		s.BaseSeed = 1
	}
	if s.Workers <= 0 {
		s.Workers = runtime.GOMAXPROCS(0)
	}
	return nil
}

// Label names the campaign for progress reporting and rendered output.
func (s *Spec) Label() string {
	switch s.Kind {
	case Runtime:
		return fmt.Sprintf("%s/%s/%s", s.Kind, s.Profile.Name, s.Scenario)
	case Chronos:
		return fmt.Sprintf("%s/N=%d", s.Kind, s.ChronosN)
	default:
		return fmt.Sprintf("%s/%s", s.Kind, s.Profile.Name)
	}
}

// Result is one per-seed run outcome.
type Result struct {
	Seed int64 `json:"seed"`
	// Success: the victim clock accepted the attacker's shift.
	Success bool `json:"success"`
	// TimeToShift is attack start → malicious step (successful runs).
	TimeToShift time.Duration `json:"time_to_shift_ns"`
	// ClockOffset is the victim's final clock error.
	ClockOffset time.Duration `json:"clock_offset_ns"`
	// Err is the run error, if any ("" on clean runs).
	Err string `json:"err,omitempty"`
}

// Aggregate folds a campaign's per-run results, merged in seed order.
type Aggregate struct {
	Label     string `json:"label"`
	Runs      int    `json:"runs"`
	Errors    int    `json:"errors"`
	Successes int    `json:"successes"`
	// SuccessRate is the success fraction in percent, with its 95% Wilson
	// interval (also percent).
	SuccessRate float64        `json:"success_rate_pct"`
	SuccessCI   stats.Interval `json:"success_ci_pct"`
	// Time-to-shift statistics over the TTSRuns successful runs of a
	// kind that measures one, in seconds. TTSRuns is 0 (and the other
	// fields meaningless) for kinds without a time-to-shift, e.g.
	// Chronos.
	TTSRuns   int            `json:"tts_runs"`
	MeanTTS   float64        `json:"mean_tts_s"`
	MedianTTS float64        `json:"median_tts_s"`
	P95TTS    float64        `json:"p95_tts_s"`
	TTSCI     stats.Interval `json:"mean_tts_ci_s"`
	// PerRun lists every run in seed order.
	PerRun []Result `json:"per_run,omitempty"`
}

// String renders the aggregate as one human-readable line.
func (a Aggregate) String() string {
	tts := ""
	if a.TTSRuns > 0 {
		tts = fmt.Sprintf(", time-to-shift mean %.0fs median %.0fs p95 %.0fs",
			a.MeanTTS, a.MedianTTS, a.P95TTS)
	}
	return fmt.Sprintf(
		"%s: %d/%d shifted (%.1f%%, 95%% CI %.1f–%.1f%%)%s, errors %d",
		a.Label, a.Successes, a.Runs, a.SuccessRate, a.SuccessCI.Lo, a.SuccessCI.Hi,
		tts, a.Errors)
}

// Run executes the campaign: Spec.Seeds independent runs on Spec.Workers
// workers, folded into an Aggregate whose contents do not depend on the
// worker count.
//
// Deprecated: use NewEngine(...).Run(ctx, "boot"|"runtime"|"chronos")
// with WithParams — this shim translates the Spec into exactly such a
// parameterised scenario campaign and converts the aggregate back to the
// legacy shape. Spec.Profile must be one of the registered Table I
// profiles; bespoke Profile values cannot be expressed as params. Per-run
// durations are reconstructed from the scenario's seconds metrics, so
// they can differ from the pre-Engine values by ~1 ns of float rounding;
// the seconds-domain statistics are unaffected.
func Run(spec Spec) (Aggregate, error) {
	if err := spec.applyDefaults(); err != nil {
		return Aggregate{}, err
	}
	name, params, err := spec.scenarioVariant()
	if err != nil {
		return Aggregate{}, err
	}
	agg, err := NewEngine(
		WithSeeds(spec.Seeds),
		WithBaseSeed(spec.BaseSeed),
		WithWorkers(spec.Workers),
		WithParams(params),
		WithProgress(spec.Progress),
	).Run(context.Background(), name)
	if err != nil {
		return Aggregate{}, err
	}
	results := make([]Result, len(agg.PerRun))
	for i, r := range agg.PerRun {
		results[i] = legacyResult(spec.Kind, r)
	}
	return fold(spec.Label(), results, spec.Kind), nil
}

// scenarioVariant translates the Spec (kind, profile, run-time scenario,
// Chronos knobs, LabConfig template) into the registered scenario name
// and the params that reproduce it through the Engine.
func (s *Spec) scenarioVariant() (string, scenario.Params, error) {
	params := scenario.Params{}
	switch s.Kind {
	case BootTime, Runtime:
		prof, err := ntpclient.ProfileByName(s.Profile.Name)
		if err != nil || prof != s.Profile {
			return "", nil, fmt.Errorf(
				"%w: Spec.Profile %q is not a registered Table I profile; run a parameterised scenario via the Engine instead",
				ErrBadSpec, s.Profile.Name)
		}
		params["client"] = s.Profile.Name
		if s.Kind == Runtime {
			params["scenario"] = s.Scenario.String()
		}
	case Chronos:
		params["N"] = strconv.Itoa(s.ChronosN)
		params["spoofed"] = strconv.Itoa(s.ChronosSpoofed)
	}
	if s.Lab.EvilOffset != 0 {
		params["offset"] = s.Lab.EvilOffset.String()
	}
	if s.Lab.HonestServers != 0 {
		params["honest_servers"] = strconv.Itoa(s.Lab.HonestServers)
	}
	if s.Lab.EvilServers != 0 {
		params["evil_servers"] = strconv.Itoa(s.Lab.EvilServers)
	}
	if s.Lab.PadResponses != 0 {
		params["pad_b"] = strconv.Itoa(s.Lab.PadResponses)
	}
	if s.Lab.PoolTTL != 0 {
		params["pool_ttl_s"] = strconv.FormatUint(uint64(s.Lab.PoolTTL), 10)
	}
	if s.Lab.RateLimitHonest != nil {
		params["ratelimit"] = strconv.FormatBool(*s.Lab.RateLimitHonest)
	}
	if s.Lab.ResolverValidatesDNSSEC {
		params["dnssec"] = "true"
	}
	name := map[Kind]string{BootTime: "boot", Runtime: "runtime", Chronos: "chronos"}[s.Kind]
	return name, params, nil
}

// legacyResult converts a generic scenario Result back into the legacy
// per-run shape (durations reconstructed from the metric map).
func legacyResult(kind Kind, r scenario.Result) Result {
	out := Result{Seed: r.Seed, Err: r.Err}
	if r.Err != "" {
		return out
	}
	out.Success = r.Success != nil && *r.Success
	out.ClockOffset = secondsToDuration(r.Metrics["offset_s"])
	switch kind {
	case BootTime:
		out.TimeToShift = secondsToDuration(r.Metrics["tts_s"])
	case Runtime:
		out.TimeToShift = secondsToDuration(r.Metrics["duration_s"])
	}
	return out
}

// secondsToDuration converts a metric in seconds back to a Duration.
func secondsToDuration(s float64) time.Duration {
	return time.Duration(s * float64(time.Second))
}

// runPool runs fn(0..n-1) on the given number of workers and reports
// completion counts through progress (if non-nil). fn must only touch
// slot i of shared state.
func runPool(n, workers int, progress func(done, total int), fn func(i int)) {
	if workers > n {
		workers = n
	}
	jobs := make(chan int)
	var wg sync.WaitGroup
	var mu sync.Mutex
	done := 0
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				fn(i)
				if progress != nil {
					mu.Lock()
					done++
					progress(done, n)
					mu.Unlock()
				}
			}
		}()
	}
	for i := 0; i < n; i++ {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
}

// runOne executes one seed's experiment in a fresh Lab.
func runOne(spec *Spec, seed int64) Result {
	cfg := spec.Lab
	cfg.Seed = seed
	out := Result{Seed: seed}
	switch spec.Kind {
	case BootTime:
		res, err := core.RunBootTimeAttack(spec.Profile, cfg)
		if err != nil {
			out.Err = err.Error()
			return out
		}
		out.Success = res.Shifted
		out.TimeToShift = res.TimeToShift
		out.ClockOffset = res.ClockOffset
	case Runtime:
		res, err := core.RunRuntimeAttack(spec.Profile, spec.Scenario, cfg)
		if err != nil {
			out.Err = err.Error()
			return out
		}
		out.Success = res.Succeeded
		out.TimeToShift = res.Duration
		out.ClockOffset = res.ClockOffset
	case Chronos:
		res, err := core.RunChronosAttack(spec.ChronosN, spec.ChronosSpoofed, cfg)
		if err != nil {
			out.Err = err.Error()
			return out
		}
		out.Success = res.Shifted
		out.ClockOffset = res.ClockOffset
	}
	return out
}

// fold merges per-run results (already in seed order) into an Aggregate.
func fold(label string, results []Result, kind Kind) Aggregate {
	agg := Aggregate{Label: label, Runs: len(results), PerRun: results}
	var tts []float64
	for _, r := range results {
		if r.Err != "" {
			agg.Errors++
			continue
		}
		if r.Success {
			agg.Successes++
			if kind.measuresTTS() {
				tts = append(tts, r.TimeToShift.Seconds())
			}
		}
	}
	agg.TTSRuns = len(tts)
	if agg.Runs > 0 {
		agg.SuccessRate = 100 * float64(agg.Successes) / float64(agg.Runs)
	}
	ci := stats.Wilson(agg.Successes, agg.Runs)
	agg.SuccessCI = stats.Interval{Lo: 100 * ci.Lo, Hi: 100 * ci.Hi}
	if len(tts) > 0 {
		agg.MeanTTS = stats.Mean(tts)
		agg.MedianTTS = stats.Median(tts)
		agg.P95TTS = stats.PercentileOf(tts, 95)
		agg.TTSCI = stats.MeanCI(tts)
	}
	return agg
}
