package campaign

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"reflect"
	"sort"

	"dnstime/internal/obs"
	"dnstime/internal/scenario"
)

// checkpointVersion is bumped if the JSONL layout ever changes shape.
const checkpointVersion = 1

// buildRevision reports the VCS revision to stamp into checkpoint
// headers. It is a variable so tests can simulate resuming under a
// different build — obs.BuildInfo caches after the first call, and
// `go test` binaries carry no vcs.revision at all.
var buildRevision = func() string { return obs.BuildInfo().Revision }

// stampRevision returns the current build's VCS revision, or "" when the
// binary was not built from a VCS checkout ("unknown" is the BuildInfo
// placeholder, not an identity — stamping it would make every non-VCS
// build look like the same revision).
func stampRevision() string {
	if rev := buildRevision(); rev != "" && rev != "unknown" {
		return rev
	}
	return ""
}

// checkpointHeader is the first line of a checkpoint file: it pins the
// campaign identity so a checkpoint can never be resumed into a different
// experiment (or the same one at different fast/params settings), which
// would silently mix incompatible per-seed results.
type checkpointHeader struct {
	V        int             `json:"v"`
	Scenario string          `json:"scenario"`
	BaseSeed int64           `json:"base_seed"`
	Seeds    int             `json:"seeds"`
	Fast     bool            `json:"fast,omitempty"`
	Params   scenario.Params `json:"params,omitempty"`
	// Revision records the VCS revision of the binary that wrote the
	// checkpoint, when known. Per-seed results are only reproducible under
	// the same simulator code, so resuming under a different revision is
	// refused unless explicitly forced (WithResumeForce).
	Revision string `json:"revision,omitempty"`
}

// header builds the checkpoint header for one resolved engine config.
func header(cfg engineConfig, scenarioName string) checkpointHeader {
	return checkpointHeader{
		V:        checkpointVersion,
		Scenario: scenarioName,
		BaseSeed: cfg.baseSeed,
		Seeds:    cfg.seeds,
		Fast:     cfg.fast,
		Params:   cfg.params,
		Revision: stampRevision(),
	}
}

// compatible reports whether a checkpoint written under h can seed a
// campaign under the resolved config: same scenario, fast mode and
// params. The seed range may differ — the loader only reuses in-range
// seeds — so a checkpoint can also extend a campaign to more seeds.
func (h checkpointHeader) compatible(cfg engineConfig, scenarioName string) error {
	if h.V != checkpointVersion {
		return fmt.Errorf("campaign: checkpoint version %d, want %d", h.V, checkpointVersion)
	}
	if h.Scenario != scenarioName {
		return fmt.Errorf("campaign: checkpoint is for scenario %q, not %q", h.Scenario, scenarioName)
	}
	if h.Fast != cfg.fast {
		return fmt.Errorf("campaign: checkpoint fast=%t, engine fast=%t", h.Fast, cfg.fast)
	}
	if len(h.Params) != len(cfg.params) || (len(h.Params) > 0 && !reflect.DeepEqual(h.Params, cfg.params)) {
		return fmt.Errorf("campaign: checkpoint params (%s) differ from engine params (%s)",
			h.Params, cfg.params)
	}
	// The revision gate only fires when both sides are known: an old
	// checkpoint without the field, or a non-VCS build, has nothing to
	// compare — refusing there would break every `go test` resume.
	if cur := stampRevision(); h.Revision != "" && cur != "" && h.Revision != cur && !cfg.forceResume {
		return fmt.Errorf("campaign: checkpoint was written at revision %.12s, this build is %.12s — its seeds may not reproduce; pass -force (WithResumeForce) to resume anyway",
			h.Revision, cur)
	}
	return nil
}

// loadCheckpoint reads a checkpoint file and returns the recorded Results
// for seeds inside the campaign's range, keyed by seed, plus the byte
// length of the file's valid newline-terminated prefix. Results are
// reused exactly as recorded (scenario Results marshal byte-stably, so a
// resumed campaign's aggregate is byte-identical to an uninterrupted
// one).
//
// A trailing fragment with no terminating newline is the signature of a
// write torn by a hard kill or power loss — exactly the crashes
// checkpoints exist to survive — so it is ignored rather than treated as
// corruption (openCheckpoint truncates it away before appending). A
// malformed line inside the terminated prefix, or an incompatible
// header, is still an error, not a silent restart.
func loadCheckpoint(path string, cfg engineConfig, scenarioName string) (map[int64]scenario.Result, int64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, 0, fmt.Errorf("campaign: resume: %w", err)
	}
	resumed := map[int64]scenario.Result{}
	var validLen int64
	lineNo := 0
	for len(data) > 0 {
		nl := bytes.IndexByte(data, '\n')
		if nl < 0 {
			break // torn trailing fragment: not part of the checkpoint
		}
		line := data[:nl]
		lineNo++
		if lineNo == 1 {
			var h checkpointHeader
			if err := json.Unmarshal(line, &h); err != nil {
				return nil, 0, fmt.Errorf("campaign: resume %s: bad header: %w", path, err)
			}
			if err := h.compatible(cfg, scenarioName); err != nil {
				return nil, 0, fmt.Errorf("%w (resume %s)", err, path)
			}
		} else {
			var res scenario.Result
			if err := json.Unmarshal(line, &res); err != nil {
				return nil, 0, fmt.Errorf("campaign: resume %s line %d: %w", path, lineNo, err)
			}
			if res.Seed >= cfg.baseSeed && res.Seed < cfg.baseSeed+int64(cfg.seeds) {
				resumed[res.Seed] = res
			}
		}
		validLen += int64(nl + 1)
		data = data[nl+1:]
	}
	if lineNo == 0 {
		return nil, 0, fmt.Errorf("campaign: resume %s: empty checkpoint", path)
	}
	return resumed, validLen, nil
}

// checkpointWriter appends one JSONL line per completed seed. Writes are
// serialised by the engine's fold mutex.
type checkpointWriter struct {
	f *os.File
}

// openCheckpoint prepares the checkpoint file. When the file is also the
// resume source (same path, readable, compatible header already present),
// it is truncated to its valid prefix (discarding any write torn by a
// crash) and opened for append so one file keeps growing across
// interrupted runs; otherwise it is created fresh with a header line
// followed by a replay of any resumed results, so the new checkpoint is
// complete on its own.
func openCheckpoint(path string, cfg engineConfig, scenarioName string, resumed map[int64]scenario.Result, validLen int64) (*checkpointWriter, error) {
	if path == cfg.resume {
		if f, err := os.OpenFile(path, os.O_WRONLY, 0o644); err == nil {
			// loadCheckpoint already validated the header and measured the
			// newline-terminated prefix; drop anything torn beyond it.
			if err := f.Truncate(validLen); err != nil {
				f.Close()
				return nil, fmt.Errorf("campaign: checkpoint %s: %w", path, err)
			}
			if _, err := f.Seek(validLen, 0); err != nil {
				f.Close()
				return nil, fmt.Errorf("campaign: checkpoint %s: %w", path, err)
			}
			return &checkpointWriter{f: f}, nil
		}
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("campaign: checkpoint: %w", err)
	}
	w := &checkpointWriter{f: f}
	hdr, err := json.Marshal(header(cfg, scenarioName))
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("campaign: checkpoint: %w", err)
	}
	if _, err := f.Write(append(hdr, '\n')); err != nil {
		f.Close()
		return nil, fmt.Errorf("campaign: checkpoint %s: %w", path, err)
	}
	// Replay resumed seeds in seed order so a cross-file resume still
	// yields a self-contained checkpoint.
	seeds := make([]int64, 0, len(resumed))
	for seed := range resumed {
		seeds = append(seeds, seed)
	}
	sort.Slice(seeds, func(i, j int) bool { return seeds[i] < seeds[j] })
	for _, seed := range seeds {
		if err := w.write(resumed[seed]); err != nil {
			f.Close()
			return nil, err
		}
	}
	return w, nil
}

// write appends one completed seed's Result as a JSONL line.
func (w *checkpointWriter) write(res scenario.Result) error {
	b, err := json.Marshal(res)
	if err != nil {
		return fmt.Errorf("campaign: checkpoint: %w", err)
	}
	if _, err := w.f.Write(append(b, '\n')); err != nil {
		return fmt.Errorf("campaign: checkpoint %s: %w", w.f.Name(), err)
	}
	return nil
}

// close flushes and closes the checkpoint file.
func (w *checkpointWriter) close() error {
	if err := w.f.Close(); err != nil {
		return fmt.Errorf("campaign: checkpoint %s: %w", w.f.Name(), err)
	}
	return nil
}
