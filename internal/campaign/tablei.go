package campaign

import (
	"dnstime/internal/core"
	"dnstime/internal/ntpclient"
)

// TableIRow is one aggregated Table I row: the paper's per-client
// applicability cells plus boot-time success statistics over the whole
// seed range.
type TableIRow struct {
	// Client and UsagePct are the paper's identification columns.
	Client   string  `json:"client"`
	UsagePct float64 `json:"usage_pct"`
	// RunTime is the paper's run-time applicability cell (from the
	// profile's DNS-lookup behaviour, as in core.TableI).
	RunTime string `json:"run_time"`
	// Boot aggregates the boot-time attack across all seeds.
	Boot Aggregate `json:"boot"`
}

// TableIOptions sizes a Table I campaign.
type TableIOptions struct {
	// Seeds per profile (default 16); run i of every profile uses seed
	// BaseSeed+i.
	Seeds    int
	BaseSeed int64
	// Workers caps concurrency across the whole profile×seed job matrix
	// (default GOMAXPROCS).
	Workers int
	// Progress, if set, receives completion counts over all jobs.
	Progress func(done, total int)
}

// TableI fans the boot-time attack out over every client profile and
// TableIOptions.Seeds seeds on one shared worker pool, returning one
// aggregated row per profile in the paper's profile order. Output is
// independent of the worker count.
//
// This is the performance path for the campaign acceptance workload
// (BenchmarkCampaignTableI): one flat profile×seed job matrix, batched
// per profile. The registry's table1 scenario covers the same matrix
// behind the generic Scenario contract (RunScenario("table1", …) — what
// `experiments campaigns -only table1` runs) and keys its per-run
// metrics by client ("boot/NTPd", "tts_s/NTPd", …); this fast path folds
// into the same per-profile aggregates.
func TableI(opts TableIOptions) ([]TableIRow, error) {
	if opts.Seeds <= 0 {
		opts.Seeds = 16
	}
	if opts.BaseSeed == 0 {
		opts.BaseSeed = 1
	}
	profiles := ntpclient.AllProfiles()
	specs := make([]Spec, len(profiles))
	for p, pu := range profiles {
		specs[p] = Spec{
			Kind:     BootTime,
			Profile:  pu.Profile,
			Seeds:    opts.Seeds,
			BaseSeed: opts.BaseSeed,
			Workers:  opts.Workers,
		}
		if err := specs[p].applyDefaults(); err != nil {
			return nil, err
		}
	}

	// One flat job matrix so a slow profile cannot serialise the pool.
	results := make([][]Result, len(profiles))
	for p := range results {
		results[p] = make([]Result, opts.Seeds)
	}
	workers := specs[0].Workers
	runPool(len(profiles)*opts.Seeds, workers, opts.Progress, func(j int) {
		p, i := j/opts.Seeds, j%opts.Seeds
		results[p][i] = runOne(&specs[p], opts.BaseSeed+int64(i))
	})

	rows := make([]TableIRow, len(profiles))
	for p, pu := range profiles {
		row := TableIRow{
			Client:   pu.Profile.Name,
			UsagePct: pu.UsagePct,
			RunTime:  core.RuntimeApplicability(pu.Profile).String(),
		}
		row.Boot = fold(specs[p].Label(), results[p], BootTime)
		rows[p] = row
	}
	return rows, nil
}
