package campaign

import (
	"dnstime/internal/core"
	"dnstime/internal/ntpclient"
)

// TableIRow is one aggregated Table I row: the paper's per-client
// applicability cells plus boot-time success statistics over the whole
// seed range.
type TableIRow struct {
	Client   string  `json:"client"`
	UsagePct float64 `json:"usage_pct"`
	// RunTime is the paper's run-time applicability cell (from the
	// profile's DNS-lookup behaviour, as in core.TableI).
	RunTime string `json:"run_time"`
	// Boot aggregates the boot-time attack across all seeds.
	Boot Aggregate `json:"boot"`
}

// TableIOptions sizes a Table I campaign.
type TableIOptions struct {
	// Lab is the LabConfig template; Seed is overwritten per run.
	Lab core.LabConfig
	// Seeds per profile (default 16); run i of every profile uses seed
	// BaseSeed+i.
	Seeds    int
	BaseSeed int64
	// Workers caps concurrency across the whole profile×seed job matrix
	// (default GOMAXPROCS).
	Workers int
	// Progress, if set, receives completion counts over all jobs.
	Progress func(done, total int)
}

// TableI fans the boot-time attack out over every client profile and
// TableIOptions.Seeds seeds on one shared worker pool, returning one
// aggregated row per profile in the paper's profile order. Output is
// independent of the worker count.
func TableI(opts TableIOptions) ([]TableIRow, error) {
	if opts.Seeds <= 0 {
		opts.Seeds = 16
	}
	if opts.BaseSeed == 0 {
		opts.BaseSeed = 1
	}
	profiles := ntpclient.AllProfiles()
	specs := make([]Spec, len(profiles))
	for p, pu := range profiles {
		specs[p] = Spec{
			Kind:     BootTime,
			Profile:  pu.Profile,
			Lab:      opts.Lab,
			Seeds:    opts.Seeds,
			BaseSeed: opts.BaseSeed,
			Workers:  opts.Workers,
		}
		if err := specs[p].applyDefaults(); err != nil {
			return nil, err
		}
	}

	// One flat job matrix so a slow profile cannot serialise the pool.
	results := make([][]Result, len(profiles))
	for p := range results {
		results[p] = make([]Result, opts.Seeds)
	}
	workers := specs[0].Workers
	runPool(len(profiles)*opts.Seeds, workers, opts.Progress, func(j int) {
		p, i := j/opts.Seeds, j%opts.Seeds
		results[p][i] = runOne(&specs[p], opts.BaseSeed+int64(i))
	})

	rows := make([]TableIRow, len(profiles))
	for p, pu := range profiles {
		row := TableIRow{
			Client:   pu.Profile.Name,
			UsagePct: pu.UsagePct,
			RunTime:  core.RuntimeApplicability(pu.Profile).String(),
		}
		row.Boot = fold(specs[p].Label(), results[p], BootTime)
		rows[p] = row
	}
	return rows, nil
}
