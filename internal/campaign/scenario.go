package campaign

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"dnstime/internal/scenario"
	// Populate the scenario registry with every built-in experiment so
	// the Engine works for any caller of this package.
	_ "dnstime/internal/scenario/register"
	"dnstime/internal/stats"
)

// ScenarioOptions sizes a campaign over a registered scenario.
//
// Deprecated: use NewEngine with Options — the Option API distinguishes
// an unset base seed from an explicit seed 0, takes a context, and adds
// streaming, params and checkpoint/resume. ScenarioOptions remains as a
// thin shim over the Engine.
type ScenarioOptions struct {
	// Seeds is the number of independent seeds (default 16). Run i uses
	// seed BaseSeed+i.
	Seeds int
	// BaseSeed is the first seed (default 1).
	BaseSeed int64
	// Workers caps concurrent runs (default GOMAXPROCS).
	Workers int
	// Fast is passed through to every run's scenario.Config (shrinks the
	// slowest scenarios' populations).
	Fast bool
	// Progress, if set, is called after each completed run with the number
	// done so far. Calls are serialised but arrive in completion order,
	// not seed order.
	Progress func(done, total int)
}

// options lowers the deprecated struct onto the Engine's Option list,
// preserving its documented zero-value defaults (BaseSeed 0 means 1 —
// request seed 0 with WithBaseSeed(0) on the Engine instead).
func (o ScenarioOptions) options() []Option {
	opts := []Option{
		WithSeeds(o.Seeds),
		WithWorkers(o.Workers),
		WithFast(o.Fast),
		WithProgress(o.Progress),
	}
	if o.BaseSeed != 0 {
		opts = append(opts, WithBaseSeed(o.BaseSeed))
	}
	return opts
}

// MetricSummary aggregates one named metric across a campaign's clean
// runs. A scenario is free to report a metric on only some of its seeds
// (racemargin's tts_s/<margin> exists only where the clock shifted), so
// every statistic here is computed over exactly the runs that reported
// the key, and Samples is that denominator — a mean over 3 of 64 seeds
// must never be read as a mean over the campaign.
type MetricSummary struct {
	// Name is the metric key as reported by the scenario's runs.
	Name string `json:"name"`
	// Samples is how many clean runs reported the metric — the
	// denominator of every statistic below. It can be smaller than the
	// campaign's run count for conditionally emitted metrics.
	Samples int `json:"samples"`
	// Mean is the sample mean over the Samples reporting runs, with its
	// 95% normal-approximation CI.
	Mean float64        `json:"mean"`
	CI   stats.Interval `json:"mean_ci"`
	// Median, Min and Max describe the distribution over the Samples
	// reporting runs.
	Median float64 `json:"median"`
	Min    float64 `json:"min"`
	Max    float64 `json:"max"`
}

// ScenarioAggregate folds a scenario campaign's per-run results, merged
// in seed order: success statistics (when the scenario reports a binary
// outcome) plus one MetricSummary per metric name, sorted by name.
type ScenarioAggregate struct {
	// Scenario and PaperRef identify the experiment.
	Scenario string `json:"scenario"`
	PaperRef string `json:"paper_ref,omitempty"`
	// Runs counts all runs; Errors the runs that returned an error.
	Runs   int `json:"runs"`
	Errors int `json:"errors"`
	// OutcomeRuns counts the clean runs that reported a binary outcome;
	// zero for scenarios with no pass/fail notion (then the three success
	// fields are meaningless).
	OutcomeRuns int `json:"outcome_runs"`
	// Successes, SuccessRate (percent) and the 95% Wilson interval
	// (percent) summarise the binary outcomes over OutcomeRuns.
	Successes   int            `json:"successes"`
	SuccessRate float64        `json:"success_rate_pct"`
	SuccessCI   stats.Interval `json:"success_ci_pct"`
	// Metrics summarises every metric the runs reported, sorted by name.
	Metrics []MetricSummary `json:"metrics,omitempty"`
	// PerRun lists every run in seed order.
	PerRun []scenario.Result `json:"per_run,omitempty"`
	// Partial marks an aggregate folded from a cancelled campaign: it
	// covers exactly the seeds that completed before cancellation (the
	// field is omitted from complete aggregates, whose bytes therefore
	// stay identical to pre-Engine output).
	Partial bool `json:"partial,omitempty"`
}

// String renders the aggregate as one human-readable line.
func (a ScenarioAggregate) String() string {
	outcome := ""
	if a.OutcomeRuns > 0 {
		outcome = fmt.Sprintf(", %d/%d succeeded (%.1f%%, 95%% CI %.1f–%.1f%%)",
			a.Successes, a.OutcomeRuns, a.SuccessRate, a.SuccessCI.Lo, a.SuccessCI.Hi)
	}
	partial := ""
	if a.Partial {
		partial = " [partial: cancelled mid-campaign]"
	}
	return fmt.Sprintf("%s: %d runs%s, %d metrics, errors %d%s",
		a.Scenario, a.Runs, outcome, len(a.Metrics), a.Errors, partial)
}

// Render draws the aggregate as a per-metric table in the style of the
// paper's tables: sample count, mean with 95% CI, median and range per
// metric. The n column is each metric's own denominator — conditionally
// emitted metrics (racemargin's tts_s/<margin>, reported only by shifted
// seeds) summarise fewer runs than the campaign executed, and hiding
// that count would let a 3-seed mean masquerade as a 64-seed one.
func (a ScenarioAggregate) Render() string {
	var sb strings.Builder
	sb.WriteString(a.String())
	sb.WriteByte('\n')
	if len(a.Metrics) == 0 {
		return sb.String()
	}
	t := stats.NewTable("Metric", "n", "mean", "95% CI", "median", "min–max")
	for _, m := range a.Metrics {
		t.AddRow(m.Name,
			m.Samples,
			fmt.Sprintf("%.2f", m.Mean),
			fmt.Sprintf("%.2f–%.2f", m.CI.Lo, m.CI.Hi),
			fmt.Sprintf("%.2f", m.Median),
			fmt.Sprintf("%.2f–%.2f", m.Min, m.Max))
	}
	sb.WriteString(t.String())
	return sb.String()
}

// RunScenario executes a campaign over the named registered scenario:
// Seeds independent runs on Workers workers, folded into a
// ScenarioAggregate whose contents do not depend on the worker count.
//
// Deprecated: use NewEngine(...).Run(ctx, name) — this shim runs the
// Engine under context.Background(), so it cannot be cancelled, streamed,
// parameterised or checkpointed.
func RunScenario(name string, opts ScenarioOptions) (ScenarioAggregate, error) {
	return NewEngine(opts.options()...).Run(context.Background(), name)
}

// foldScenario merges per-run results (already in seed order) into a
// ScenarioAggregate.
func foldScenario(sc scenario.Scenario, results []scenario.Result) ScenarioAggregate {
	agg := ScenarioAggregate{
		Scenario: sc.Name,
		PaperRef: sc.PaperRef,
		Runs:     len(results),
		PerRun:   results,
	}
	samples := map[string][]float64{}
	for _, r := range results {
		if r.Err != "" {
			agg.Errors++
			continue
		}
		if r.Success != nil {
			agg.OutcomeRuns++
			if *r.Success {
				agg.Successes++
			}
		}
		for name, v := range r.Metrics {
			samples[name] = append(samples[name], v)
		}
	}
	if agg.OutcomeRuns > 0 {
		agg.SuccessRate = 100 * float64(agg.Successes) / float64(agg.OutcomeRuns)
		ci := stats.Wilson(agg.Successes, agg.OutcomeRuns)
		agg.SuccessCI = stats.Interval{Lo: 100 * ci.Lo, Hi: 100 * ci.Hi}
	}
	names := make([]string, 0, len(samples))
	for name := range samples {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		xs := samples[name]
		min, max := xs[0], xs[0]
		for _, x := range xs {
			if x < min {
				min = x
			}
			if x > max {
				max = x
			}
		}
		agg.Metrics = append(agg.Metrics, MetricSummary{
			Name:    name,
			Samples: len(xs),
			Mean:    stats.Mean(xs),
			CI:      stats.MeanCI(xs),
			Median:  stats.Median(xs),
			Min:     min,
			Max:     max,
		})
	}
	return agg
}
