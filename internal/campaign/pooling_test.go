package campaign

import (
	"context"
	"path/filepath"
	"runtime"
	"testing"
	"time"

	"dnstime/internal/core"
	"dnstime/internal/scenario"
)

// unpooledAgg computes the reference aggregate with lab pooling disabled:
// every seed builds its laboratory from scratch, exactly as the engine ran
// before pooling existed. Pooling is restored before returning.
func unpooledAgg(t *testing.T, name string, opts ...Option) string {
	t.Helper()
	core.SetLabPooling(false)
	defer core.SetLabPooling(true)
	return marshalAgg(t, name, opts...)
}

// TestEnginePooledBatchedEquivalence is the pooling/batching safety
// contract: for EVERY registered scenario, the pooled engine folds a
// byte-identical aggregate to the unpooled reference at every worker
// count × batch size combination. Any cross-seed state leaking through a
// recycled lab, or any scheduling effect of chunked seed claiming, shows
// up here as a byte diff.
func TestEnginePooledBatchedEquivalence(t *testing.T) {
	const seeds = 3
	refs := map[string]string{}
	for _, sc := range scenario.All() {
		refs[sc.Name] = unpooledAgg(t, sc.Name,
			WithSeeds(seeds), WithWorkers(2), WithFast(true))
	}
	for _, sc := range scenario.All() {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			t.Parallel()
			for _, workers := range []int{1, 4, 8} {
				for _, batch := range []int{1, 4, 16} {
					got := marshalAgg(t, sc.Name, WithSeeds(seeds),
						WithWorkers(workers), WithBatch(batch), WithFast(true))
					if got != refs[sc.Name] {
						t.Errorf("pooled workers=%d batch=%d differs from unpooled reference:\n%s\nvs\n%s",
							workers, batch, got, refs[sc.Name])
					}
				}
			}
		})
	}
}

// TestEnginePooledCancellationResume cancels a pooled+batched campaign
// mid-flight, then resumes it from its checkpoint with a different batch
// size: the final aggregate must be byte-identical to an uninterrupted
// unpooled run, and the cancelled campaign's workers must not leak.
func TestEnginePooledCancellationResume(t *testing.T) {
	const seeds = 6
	want := unpooledAgg(t, "boot", WithSeeds(seeds), WithWorkers(2), WithFast(true))

	before := runtime.NumGoroutine()
	path := filepath.Join(t.TempDir(), "ck.jsonl")
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	st, err := NewEngine(
		WithSeeds(seeds), WithWorkers(2), WithBatch(2), WithFast(true),
		WithCheckpoint(path),
	).Stream(ctx, "boot")
	if err != nil {
		t.Fatal(err)
	}
	completed := 0
	for range st.Results() {
		if completed++; completed == 2 {
			cancel() // in-flight seeds may still finish; queued ones drain
		}
	}
	agg, werr := st.Wait()
	if werr != nil && werr != context.Canceled {
		t.Fatalf("Wait error = %v, want nil or context.Canceled", werr)
	}
	if agg.Runs != completed {
		t.Fatalf("aggregate has %d runs, want %d (exactly the completed seeds)",
			agg.Runs, completed)
	}
	// Workers must be gone before the resume starts.
	for deadline := time.Now().Add(2 * time.Second); runtime.NumGoroutine() > before; {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before campaign, %d after drain",
				before, runtime.NumGoroutine())
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Resume pooled with a different batch size: only the missing seeds
	// run, and the fold must land on the uninterrupted reference bytes.
	resumed := marshalAgg(t, "boot",
		WithSeeds(seeds), WithWorkers(4), WithBatch(16), WithFast(true),
		WithResume(path), WithCheckpoint(path))
	if resumed != want {
		t.Errorf("resumed pooled aggregate differs from uninterrupted unpooled run:\n%s\nvs\n%s",
			resumed, want)
	}
}
