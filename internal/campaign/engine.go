package campaign

import (
	"context"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"time"

	"dnstime/internal/obs"
	"dnstime/internal/scenario"
)

// Option configures an Engine (functional-option style). Unlike the
// deprecated option structs, Options distinguish "unset" from an explicit
// zero value: WithBaseSeed(0) really runs seed 0.
type Option func(*engineConfig)

// engineConfig is the resolved option set an Engine runs with.
type engineConfig struct {
	seeds       int
	baseSeed    int64
	baseSeedSet bool
	workers     int
	batch       int
	fast        bool
	params      scenario.Params
	progress    func(done, total int)
	checkpoint  string
	resume      string
	forceResume bool
	traceDir    string
	tracerFor   func(seed int64) (obs.Tracer, error)
}

// seedSeconds is the per-scenario seed execution latency histogram every
// Engine feeds (obs.Default; exposed on the serve /metrics Prometheus
// view). It measures wall-clock run time only — virtual time and campaign
// output are unaffected by observation.
var seedSeconds = obs.Default.HistogramVec("dnstime_engine_seed_seconds",
	"Wall-clock seconds spent executing one campaign seed, by scenario.",
	"scenario", obs.DurationBuckets)

// WithSeeds sets the number of independent seeds (default 16). Run i uses
// seed BaseSeed+i.
func WithSeeds(n int) Option { return func(c *engineConfig) { c.seeds = n } }

// WithBaseSeed sets the first seed (default 1). Unlike the deprecated
// ScenarioOptions.BaseSeed, an explicit 0 is honoured: the campaign runs
// seeds 0, 1, 2, ….
func WithBaseSeed(s int64) Option {
	return func(c *engineConfig) { c.baseSeed = s; c.baseSeedSet = true }
}

// WithWorkers caps concurrent runs (default GOMAXPROCS).
func WithWorkers(n int) Option { return func(c *engineConfig) { c.workers = n } }

// WithBatch sets how many contiguous seeds a worker claims per scheduling
// round (default: seeds/(4·workers), at least 1). Larger batches cut
// channel round-trips and keep each worker's pooled lab hot across
// consecutive seeds; the aggregate is byte-identical at any batch size, so
// this is purely a throughput knob.
func WithBatch(n int) Option { return func(c *engineConfig) { c.batch = n } }

// WithFast passes Fast through to every run's scenario.Config (shrinks
// the slowest scenarios' populations).
func WithFast(fast bool) Option { return func(c *engineConfig) { c.fast = fast } }

// WithParams merges params into the scenario params every run receives.
// Keys are validated against the scenario's ParamKeys before any run
// starts.
func WithParams(p scenario.Params) Option {
	return func(c *engineConfig) {
		for k, v := range p {
			c.setParam(k, v)
		}
	}
}

// WithParam sets one scenario param (see WithParams).
func WithParam(key, value string) Option {
	return func(c *engineConfig) { c.setParam(key, value) }
}

func (c *engineConfig) setParam(k, v string) {
	if c.params == nil {
		c.params = scenario.Params{}
	}
	c.params[k] = v
}

// WithProgress installs a progress callback, called after each completed
// run with the number done so far (resumed seeds count as already done).
// Calls are serialised but arrive in completion order, not seed order.
func WithProgress(fn func(done, total int)) Option {
	return func(c *engineConfig) { c.progress = fn }
}

// WithCheckpoint makes the engine write a JSONL checkpoint to path: one
// header line identifying the campaign, then one line per completed seed
// in completion order. Unless path is also the WithResume source, an
// existing file is truncated. A checkpointing Engine is tied to the one
// campaign the header describes.
func WithCheckpoint(path string) Option {
	return func(c *engineConfig) { c.checkpoint = path }
}

// WithTraceDir makes every executed seed record a deterministic Chrome
// trace_event file (viewable in Perfetto or chrome://tracing) named
// <scenario>-seed<N>.trace.json under dir, which is created if missing.
// Trace timestamps are virtual (simclock) time, so a seed's trace bytes
// are identical at any worker count, pooled or fresh lab. Resumed seeds
// are not re-executed and produce no trace. Ignored when a
// WithTracerFactory is also installed.
func WithTraceDir(dir string) Option {
	return func(c *engineConfig) { c.traceDir = dir }
}

// WithTracerFactory installs a per-seed tracer source: the factory is
// called once per executed seed and the returned tracer observes that
// seed's run (scenario.Config.Tracer). A tracer that implements io.Closer
// is closed when its run completes. A factory or Close error fails that
// seed's run — the trace was requested, so a seed that cannot record one
// did not complete as asked. Takes precedence over WithTraceDir.
func WithTracerFactory(fn func(seed int64) (obs.Tracer, error)) Option {
	return func(c *engineConfig) { c.tracerFor = fn }
}

// WithResume skips every seed already recorded in the checkpoint at path:
// the recorded per-seed Results are reused byte-identically, so a
// cancelled campaign resumed from its checkpoint folds into the same
// final aggregate as an uninterrupted run. The header must match the
// engine's scenario, fast mode and params; the seed range may differ
// (only in-range seeds are reused). Pass the same path to WithCheckpoint
// to keep extending one file across interruptions — with both options on
// one path, a missing file is a fresh start rather than an error, so the
// same invocation works for the first run and every resumption.
func WithResume(path string) Option {
	return func(c *engineConfig) { c.resume = path }
}

// WithResumeForce lets WithResume accept a checkpoint written by a
// different VCS revision of this binary. By default such a resume is
// refused: per-seed results are only reproducible under the simulator
// code that produced them, so mixing revisions can fold incomparable
// seeds into one aggregate. Forcing is for when the caller knows the
// intervening changes cannot affect the scenario's results.
func WithResumeForce() Option {
	return func(c *engineConfig) { c.forceResume = true }
}

// Engine is the single execution surface for multi-seed campaigns: it
// fans a registered scenario (optionally parameterised) out across N
// independent seeds on a worker pool, streams per-seed Results in
// completion order, folds a deterministic seed-order aggregate, honours
// context cancellation by draining workers and returning a partial
// aggregate, and can checkpoint/resume itself across interruptions.
// An Engine is a reusable option set; each Run/Stream call executes one
// campaign.
type Engine struct {
	cfg engineConfig
}

// NewEngine builds an Engine from options. Defaults: 16 seeds, base seed
// 1, GOMAXPROCS workers, full-size populations, no params, no checkpoint.
func NewEngine(opts ...Option) *Engine {
	e := &Engine{}
	for _, opt := range opts {
		opt(&e.cfg)
	}
	return e
}

// resolved returns the engine config with defaults applied.
func (e *Engine) resolved() engineConfig {
	c := e.cfg
	if c.seeds <= 0 {
		c.seeds = DefaultSeeds
	}
	if !c.baseSeedSet {
		c.baseSeed = DefaultBaseSeed
	}
	if c.workers <= 0 {
		c.workers = runtime.GOMAXPROCS(0)
	}
	return c
}

// Run executes the campaign over the named registered scenario and blocks
// until every seed completes (or ctx is cancelled — then the returned
// aggregate is partial, marked Partial, covers exactly the completed
// seeds, and the error is ctx's). The aggregate's bytes do not depend on
// the worker count and match Stream's.
func (e *Engine) Run(ctx context.Context, scenarioName string) (ScenarioAggregate, error) {
	st, err := e.Stream(ctx, scenarioName)
	if err != nil {
		return ScenarioAggregate{}, err
	}
	return st.Wait()
}

// Stream starts the campaign and returns a Stream yielding per-seed
// Results in completion order (resumed seeds first, in seed order). The
// seed-order aggregate is folded incrementally as results arrive; call
// Wait for it after (or instead of) consuming Results.
func (e *Engine) Stream(ctx context.Context, scenarioName string) (*Stream, error) {
	sc, ok := scenario.Lookup(scenarioName)
	if !ok {
		return nil, fmt.Errorf("campaign: unknown scenario %q (have: %s)",
			scenarioName, strings.Join(scenario.Names(), ", "))
	}
	cfg := e.resolved()
	if err := sc.AcceptsParams(cfg.params); err != nil {
		return nil, fmt.Errorf("campaign: %w", err)
	}
	tracerFor := cfg.tracerFor
	if tracerFor == nil && cfg.traceDir != "" {
		if err := os.MkdirAll(cfg.traceDir, 0o755); err != nil {
			return nil, fmt.Errorf("campaign: trace dir: %w", err)
		}
		dir, name := cfg.traceDir, sc.Name
		tracerFor = func(seed int64) (obs.Tracer, error) {
			f, err := os.Create(filepath.Join(dir,
				fmt.Sprintf("%s-seed%d.trace.json", name, seed)))
			if err != nil {
				return nil, err
			}
			return &fileTracer{TraceWriter: obs.NewChrome(f, seed), f: f}, nil
		}
	}

	resumed := map[int64]scenario.Result{}
	var resumeLen int64
	if cfg.resume != "" {
		var err error
		resumed, resumeLen, err = loadCheckpoint(cfg.resume, cfg, sc.Name)
		switch {
		case err == nil:
		case cfg.resume == cfg.checkpoint && errors.Is(err, fs.ErrNotExist):
			// Fresh start of the append workflow (same path passed to
			// WithResume and WithCheckpoint): nothing to resume yet, the
			// checkpoint writer will create the file.
			resumed, resumeLen = map[int64]scenario.Result{}, 0
		default:
			return nil, err
		}
	}
	var ckpt *checkpointWriter
	if cfg.checkpoint != "" {
		var err error
		if ckpt, err = openCheckpoint(cfg.checkpoint, cfg, sc.Name, resumed, resumeLen); err != nil {
			return nil, err
		}
	}

	st := &Stream{
		results: make(chan scenario.Result, cfg.seeds),
		done:    make(chan struct{}),
	}
	slots := make([]*scenario.Result, cfg.seeds)
	var jobs []int
	for i := 0; i < cfg.seeds; i++ {
		if res, ok := resumed[cfg.baseSeed+int64(i)]; ok {
			res := res
			slots[i] = &res
			st.results <- res
		} else {
			jobs = append(jobs, i)
		}
	}

	var (
		mu      sync.Mutex
		done    = cfg.seeds - len(jobs)
		ckptErr error
	)
	workers := cfg.workers
	if workers > len(jobs) {
		workers = len(jobs)
	}
	// Workers claim contiguous chunks of the remaining seeds rather than one
	// seed per channel round-trip. Chunk size is a pure scheduling knob:
	// every per-seed effect (result slot, progress call, checkpoint line,
	// cancellation check) is unchanged, so output bytes cannot depend on it.
	batch := cfg.batch
	if batch <= 0 && workers > 0 {
		batch = len(jobs) / (4 * workers)
	}
	if batch < 1 {
		batch = 1
	}
	chunkCh := make(chan []int, (len(jobs)+batch-1)/batch)
	for start := 0; start < len(jobs); start += batch {
		end := start + batch
		if end > len(jobs) {
			end = len(jobs)
		}
		chunkCh <- jobs[start:end]
	}
	close(chunkCh)

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for chunk := range chunkCh {
				for _, i := range chunk {
					if ctx.Err() != nil {
						continue // drain remaining seeds without running them
					}
					seed := cfg.baseSeed + int64(i)
					res, err := runSeed(ctx, sc, seed,
						scenario.Config{Fast: cfg.fast, Params: cfg.params}, tracerFor)
					if err != nil {
						if ctx.Err() != nil && (errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)) {
							continue // cancelled mid-run: not a completed seed
						}
						res.Err = err.Error()
					}
					res.Seed = seed
					mu.Lock()
					slots[i] = &res
					done++
					if cfg.progress != nil {
						cfg.progress(done, cfg.seeds)
					}
					if ckpt != nil && ckptErr == nil {
						ckptErr = ckpt.write(res)
					}
					mu.Unlock()
					st.results <- res
				}
			}
		}()
	}

	go func() {
		wg.Wait()
		close(st.results)
		var results []scenario.Result
		for _, r := range slots {
			if r != nil {
				results = append(results, *r)
			}
		}
		foldStart := time.Now()
		st.agg = foldScenario(sc, results)
		obs.ObservePhase(obs.PhaseFold, time.Since(foldStart))
		if len(results) < cfg.seeds {
			st.agg.Partial = true
			st.err = ctx.Err()
		}
		if ckpt != nil {
			if err := ckpt.close(); err != nil && ckptErr == nil {
				ckptErr = err
			}
			// A checkpoint I/O failure must surface even when the campaign
			// was also cancelled — the resume hint would otherwise point at
			// a file that recorded almost nothing.
			switch {
			case ckptErr == nil:
			case st.err == nil:
				st.err = ckptErr
			default:
				st.err = errors.Join(st.err, ckptErr)
			}
		}
		close(st.done)
	}()
	return st, nil
}

// runSeed executes one seed: it materialises the per-seed tracer (when
// tracing is on), runs the scenario with it, closes the tracer, and feeds
// the obs run-phase and seed-latency instrumentation. Tracer creation or
// Close failures fail the run.
func runSeed(ctx context.Context, sc scenario.Scenario, seed int64, cfg scenario.Config, tracerFor func(seed int64) (obs.Tracer, error)) (scenario.Result, error) {
	var closeTracer io.Closer
	if tracerFor != nil {
		tr, err := tracerFor(seed)
		if err != nil {
			return scenario.Result{}, fmt.Errorf("campaign: tracer for seed %d: %w", seed, err)
		}
		cfg.Tracer = tr
		if c, ok := tr.(io.Closer); ok {
			closeTracer = c
		}
	}
	start := time.Now()
	res, err := sc.Run(ctx, seed, cfg)
	d := time.Since(start)
	obs.ObservePhase(obs.PhaseRun, d)
	seedSeconds.With(sc.Name).Observe(d.Seconds())
	if closeTracer != nil {
		if cerr := closeTracer.Close(); cerr != nil && err == nil {
			err = fmt.Errorf("campaign: trace for seed %d: %w", seed, cerr)
		}
	}
	return res, err
}

// fileTracer is the WithTraceDir tracer: a Chrome TraceWriter over an
// owned file, whose Close finalises the trace array and then the file.
type fileTracer struct {
	*obs.TraceWriter
	f *os.File
}

// Close terminates the trace and closes the backing file, reporting the
// first error.
func (t *fileTracer) Close() error {
	err := t.TraceWriter.Close()
	if cerr := t.f.Close(); err == nil {
		err = cerr
	}
	return err
}

// Stream is one running campaign: a channel of per-seed Results in
// completion order plus the deterministic seed-order aggregate once all
// workers have drained.
type Stream struct {
	results chan scenario.Result
	done    chan struct{}
	agg     ScenarioAggregate
	err     error
}

// Results yields every completed seed's Result in completion order and is
// closed once all workers have drained. The channel is buffered for the
// whole campaign, so a caller that only wants the aggregate may ignore it
// and call Wait directly.
func (s *Stream) Results() <-chan scenario.Result { return s.results }

// Wait blocks until every worker has drained (all seeds completed, or the
// context cancelled) and returns the seed-order aggregate. After
// cancellation the aggregate is marked Partial, covers exactly the
// completed seeds, and the error is the context's; a checkpoint I/O
// failure is also reported here.
func (s *Stream) Wait() (ScenarioAggregate, error) {
	<-s.done
	return s.agg, s.err
}
