package campaign

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"strings"

	"dnstime/internal/scenario"
)

// Engine defaults, shared between the Engine's option resolution and
// JobSpec normalisation so a job that leaves a field unset addresses the
// same campaign as an Engine built without the matching option.
const (
	// DefaultSeeds is the seed count an Engine (and a JobSpec) runs when
	// none is requested.
	DefaultSeeds = 16
	// DefaultBaseSeed is the first seed when none is requested; run i uses
	// DefaultBaseSeed+i.
	DefaultBaseSeed = 1
)

// jobKeyVersion is baked into every JobSpec.Key so the content address
// changes if the canonical layout ever does. Version 2 added the Trace
// flag to the key document.
const jobKeyVersion = 2

// JobSpec is the job-level wrapping of the Engine: the declarative
// identity of one campaign — which scenario, at which params, over which
// seed set, at which population scale. It deliberately excludes every
// execution knob that cannot change campaign output (workers, batch size,
// progress, checkpoint paths), so two specs with equal Key are guaranteed
// byte-identical campaigns and one cached aggregate can serve both. The
// zero values of Seeds and BaseSeed mean "engine default" (DefaultSeeds
// and DefaultBaseSeed); an explicit base seed 0 is expressed by pointing
// BaseSeed at 0, mirroring WithBaseSeed(0). JobSpec marshals to/from JSON
// as the submission body of the resident experiment service.
type JobSpec struct {
	// Scenario names the registered scenario to run.
	Scenario string `json:"scenario"`
	// Params overrides the scenario's defaults (validated against its
	// ParamKeys by Normalize).
	Params scenario.Params `json:"params,omitempty"`
	// Seeds is the number of independent seeds (0 = DefaultSeeds).
	Seeds int `json:"seeds,omitempty"`
	// BaseSeed is the first seed (nil = DefaultBaseSeed; an explicit 0
	// runs seeds 0, 1, …).
	BaseSeed *int64 `json:"base_seed,omitempty"`
	// Fast shrinks the slowest scenarios' populations (WithFast).
	Fast bool `json:"fast,omitempty"`
	// Trace requests a per-seed execution trace alongside the aggregate.
	// Tracing never changes campaign output, but a traced job carries a
	// deliverable an untraced one lacks, so Trace is part of the job's
	// identity (Key) and traced jobs bypass the aggregate cache. The spec
	// does not carry the tracer itself — the execution layer supplies one
	// (WithTracerFactory / WithTraceDir).
	Trace bool `json:"trace,omitempty"`
}

// Normalize validates the spec against the scenario registry and resolves
// engine defaults: the scenario must exist, every param key must be
// declared by it, Seeds must not be negative. The returned spec is
// canonical — Seeds and BaseSeed are materialised, Params is a private
// copy (nil when empty) — so equal campaigns normalise to specs with
// equal Keys regardless of how sparsely they were written.
func (s JobSpec) Normalize() (JobSpec, error) {
	sc, ok := scenario.Lookup(s.Scenario)
	if !ok {
		return JobSpec{}, fmt.Errorf("campaign: unknown scenario %q (have: %s)",
			s.Scenario, strings.Join(scenario.Names(), ", "))
	}
	if err := sc.AcceptsParams(s.Params); err != nil {
		return JobSpec{}, fmt.Errorf("campaign: %w", err)
	}
	if s.Seeds < 0 {
		return JobSpec{}, fmt.Errorf("campaign: job seeds must not be negative (got %d)", s.Seeds)
	}
	n := s
	if n.Seeds == 0 {
		n.Seeds = DefaultSeeds
	}
	if n.BaseSeed == nil {
		base := int64(DefaultBaseSeed)
		n.BaseSeed = &base
	} else {
		base := *n.BaseSeed
		n.BaseSeed = &base
	}
	if len(s.Params) == 0 {
		n.Params = nil
	} else {
		n.Params = make(scenario.Params, len(s.Params))
		for k, v := range s.Params {
			n.Params[k] = v
		}
	}
	return n, nil
}

// Key returns the campaign's canonical content address: a hex SHA-256
// over the normalised spec's stable JSON encoding (params marshal in
// sorted key order, so insertion order never matters; defaults are
// resolved first, so an explicit BaseSeed 1 or Seeds 16 addresses the
// same campaign as leaving them unset). Two specs share a Key exactly
// when the Engine is guaranteed to produce byte-identical aggregates for
// them at any worker count — the contract the serve-layer aggregate
// cache is built on. Fast flips the key: fast and full-size campaigns are
// different experiments.
func (s JobSpec) Key() (string, error) {
	n, err := s.Normalize()
	if err != nil {
		return "", err
	}
	doc := struct {
		V        int             `json:"v"`
		Scenario string          `json:"scenario"`
		BaseSeed int64           `json:"base_seed"`
		Seeds    int             `json:"seeds"`
		Fast     bool            `json:"fast"`
		Trace    bool            `json:"trace"`
		Params   scenario.Params `json:"params,omitempty"`
	}{jobKeyVersion, n.Scenario, *n.BaseSeed, n.Seeds, n.Fast, n.Trace, n.Params}
	b, err := json.Marshal(doc)
	if err != nil {
		return "", fmt.Errorf("campaign: job key: %w", err)
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:]), nil
}

// Options lowers the spec onto the Engine's option list, appending any
// execution-side extras (WithWorkers, WithProgress, WithCheckpoint, …) —
// the knobs a JobSpec deliberately does not carry because they cannot
// change campaign output.
func (s JobSpec) Options(extra ...Option) []Option {
	opts := []Option{
		WithSeeds(s.Seeds),
		WithFast(s.Fast),
		WithParams(s.Params),
	}
	if s.BaseSeed != nil {
		opts = append(opts, WithBaseSeed(*s.BaseSeed))
	}
	return append(opts, extra...)
}
