// Package campaign is the parallel multi-seed experiment engine: it fans
// an experiment out across N independent seeds on a pool of workers and
// folds the per-run outcomes into aggregate statistics (success rates
// with Wilson confidence intervals, per-metric mean/median distributions
// with normal-approximation intervals).
//
// The execution surface is one API, the Engine:
//
//	eng := campaign.NewEngine(
//	    campaign.WithSeeds(64),
//	    campaign.WithParam("client", "chrony"),
//	)
//	agg, err := eng.Run(ctx, "boot")   // blocking
//	st, err := eng.Stream(ctx, "boot") // per-seed results as they land
//
// Run blocks for the final aggregate; Stream yields typed per-seed
// Results in completion order while the deterministic seed-order
// aggregate folds behind it. Cancelling ctx drains the workers cleanly
// and yields a partial aggregate (marked Partial) covering exactly the
// completed seeds. WithParams parameterises any scenario that declares
// ParamKeys — the attack experiments accept client profile, run-time
// scenario, target shift and lab sizing, so every attack variant is an
// ordinary campaign. WithCheckpoint records one JSONL line per completed
// seed and WithResume skips recorded seeds byte-identically, so an
// interrupted campaign resumes into the same final aggregate as an
// uninterrupted run. See DESIGN.md §7 for the full Engine contract.
//
// The pre-Engine entry points remain as thin deprecated shims:
// RunScenario (option struct, no context) and Run (attack Spec,
// translated into a parameterised scenario campaign). TableI is the
// profile-batched fast path over the Table I matrix, pinned by test to
// the registry's table1 scenario.
//
// Each run builds its own Lab around its own simclock.Clock, so runs
// share no state and the fan-out is embarrassingly parallel. Results are
// merged in seed order regardless of completion order, so aggregate
// output is byte-identical at any worker count (see DESIGN.md
// "Concurrency contract").
package campaign
