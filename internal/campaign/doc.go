// Package campaign is the parallel multi-seed experiment engine: it fans
// an experiment out across N independent seeds on a pool of workers and
// folds the per-run outcomes into aggregate statistics (success rates
// with Wilson confidence intervals, per-metric mean/median distributions
// with normal-approximation intervals).
//
// Two front ends share one pool and one merge discipline:
//
//   - RunScenario fans out any experiment registered with
//     dnstime/internal/scenario — every table, figure and scan of the
//     paper — and aggregates its generic metric map. This is how
//     `experiments campaigns -only <name>` runs.
//   - Run fans out one attack Spec (kind, client profile, run-time
//     scenario, LabConfig template) for callers that need non-default
//     attack parameters; TableI aggregates the whole Table I client
//     matrix through the registry's table1 scenario.
//
// Each run builds its own Lab around its own simclock.Clock, so runs
// share no state and the fan-out is embarrassingly parallel. Results are
// merged in seed order regardless of completion order, so aggregate
// output is byte-identical at any worker count (see DESIGN.md
// "Concurrency contract").
package campaign
