package campaign

import (
	"context"
	"encoding/json"
	"strings"
	"testing"

	"dnstime/internal/scenario"
)

// key is a test helper: JobSpec.Key that fails the test on error.
func key(t *testing.T, spec JobSpec) string {
	t.Helper()
	k, err := spec.Key()
	if err != nil {
		t.Fatalf("Key(%+v): %v", spec, err)
	}
	return k
}

// TestJobSpecKeyCanonicalization is the cache-key satellite at the spec
// level: identical campaigns must share one content address no matter how
// the spec was written, and any field that changes campaign output must
// change it.
func TestJobSpecKeyCanonicalization(t *testing.T) {
	base := int64(DefaultBaseSeed)
	zero := int64(0)
	ref := key(t, JobSpec{Scenario: "boot"})

	hits := map[string]JobSpec{
		"explicit default seeds":     {Scenario: "boot", Seeds: DefaultSeeds},
		"explicit default base seed": {Scenario: "boot", BaseSeed: &base},
		"both defaults explicit":     {Scenario: "boot", Seeds: DefaultSeeds, BaseSeed: &base},
	}
	for name, spec := range hits {
		if got := key(t, spec); got != ref {
			t.Errorf("%s: key %s differs from default-spec key %s", name, got, ref)
		}
	}

	misses := map[string]JobSpec{
		"different scenario": {Scenario: "chronos"},
		"different seeds":    {Scenario: "boot", Seeds: DefaultSeeds + 1},
		"explicit seed zero": {Scenario: "boot", BaseSeed: &zero},
		"fast":               {Scenario: "boot", Fast: true},
		"with param":         {Scenario: "boot", Params: scenario.Params{"client": "chrony"}},
	}
	for name, spec := range misses {
		if got := key(t, spec); got == ref {
			t.Errorf("%s: key collides with the default boot spec", name)
		}
	}
}

// TestJobSpecKeyParamOrder: params are content, not order — maps built in
// different insertion orders (and specs decoded from differently-ordered
// JSON) share a key, while a changed param value does not.
func TestJobSpecKeyParamOrder(t *testing.T) {
	a := scenario.Params{}
	a["client"] = "chrony"
	a["offset"] = "-123s"
	b := scenario.Params{}
	b["offset"] = "-123s"
	b["client"] = "chrony"
	ka := key(t, JobSpec{Scenario: "boot", Params: a})
	if kb := key(t, JobSpec{Scenario: "boot", Params: b}); kb != ka {
		t.Errorf("param insertion order changed the key: %s vs %s", ka, kb)
	}

	var fromJSONAsc, fromJSONDesc JobSpec
	for doc, spec := range map[string]*JobSpec{
		`{"scenario":"boot","params":{"client":"chrony","offset":"-123s"}}`: &fromJSONAsc,
		`{"scenario":"boot","params":{"offset":"-123s","client":"chrony"}}`: &fromJSONDesc,
	} {
		if err := json.Unmarshal([]byte(doc), spec); err != nil {
			t.Fatal(err)
		}
	}
	if ja, jb := key(t, fromJSONAsc), key(t, fromJSONDesc); ja != jb || ja != ka {
		t.Errorf("JSON key order changed the key: %s vs %s (want %s)", ja, jb, ka)
	}

	changed := scenario.Params{"client": "ntpd", "offset": "-123s"}
	if kc := key(t, JobSpec{Scenario: "boot", Params: changed}); kc == ka {
		t.Error("changed param value did not change the key")
	}
}

// TestJobSpecNormalizeErrors: unknown scenarios, undeclared params and
// negative seed counts fail at normalisation, before any run could start.
func TestJobSpecNormalizeErrors(t *testing.T) {
	cases := map[string]struct {
		spec JobSpec
		want string
	}{
		"unknown scenario": {JobSpec{Scenario: "sundial"}, "unknown scenario"},
		"undeclared param": {JobSpec{Scenario: "table4", Params: scenario.Params{"client": "x"}}, "param"},
		"negative seeds":   {JobSpec{Scenario: "boot", Seeds: -2}, "negative"},
	}
	for name, tc := range cases {
		if _, err := tc.spec.Normalize(); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: Normalize err = %v, want mention of %q", name, err, tc.want)
		}
		if _, err := tc.spec.Key(); err == nil {
			t.Errorf("%s: Key did not propagate the normalisation error", name)
		}
	}
}

// TestJobSpecNormalizeCopiesParams: normalisation snapshots the params so
// a caller mutating its map afterwards cannot change the job's identity.
func TestJobSpecNormalizeCopiesParams(t *testing.T) {
	p := scenario.Params{"client": "chrony"}
	n, err := JobSpec{Scenario: "boot", Params: p}.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	p["client"] = "ntpd"
	if n.Params["client"] != "chrony" {
		t.Errorf("normalized params aliased the caller's map: %v", n.Params)
	}
	if n.Seeds != DefaultSeeds || n.BaseSeed == nil || *n.BaseSeed != DefaultBaseSeed {
		t.Errorf("defaults not materialised: %+v", n)
	}
}

// TestJobSpecOptionsMatchEngine: a spec lowered via Options drives the
// Engine to the same bytes as hand-built options — the wrapper adds no
// behaviour, only identity.
func TestJobSpecOptionsMatchEngine(t *testing.T) {
	spec := JobSpec{Scenario: "boot", Seeds: 3, Fast: true,
		Params: scenario.Params{"client": "chrony"}}
	viaSpec, err := NewEngine(spec.Options(WithWorkers(2))...).Run(context.Background(), "boot")
	if err != nil {
		t.Fatal(err)
	}
	direct, err := NewEngine(
		WithSeeds(3), WithFast(true), WithParam("client", "chrony"), WithWorkers(1),
	).Run(context.Background(), "boot")
	if err != nil {
		t.Fatal(err)
	}
	a, _ := json.Marshal(viaSpec)
	b, _ := json.Marshal(direct)
	if string(a) != string(b) {
		t.Errorf("spec-driven aggregate differs from direct options:\n%s\nvs\n%s", a, b)
	}
}
