package campaign

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"dnstime/internal/core"
	"dnstime/internal/obs"
)

// tracedCampaign runs the named scenario over seeds 0..seeds-1 with an
// in-memory Chrome tracer per seed and returns each seed's finalised
// trace bytes. Lab pooling is set as requested for the duration of the
// campaign and restored before returning.
func tracedCampaign(t *testing.T, name string, seeds, workers int, pooled bool) map[int64][]byte {
	t.Helper()
	core.SetLabPooling(pooled)
	defer core.SetLabPooling(true)
	var mu sync.Mutex
	bufs := map[int64]*bytes.Buffer{}
	eng := NewEngine(
		WithSeeds(seeds), WithBaseSeed(0), WithWorkers(workers), WithFast(true),
		WithTracerFactory(func(seed int64) (obs.Tracer, error) {
			buf := &bytes.Buffer{}
			mu.Lock()
			bufs[seed] = buf
			mu.Unlock()
			return obs.NewChrome(buf, seed), nil
		}),
	)
	agg, err := eng.Run(context.Background(), name)
	if err != nil {
		t.Fatalf("traced %s campaign: %v", name, err)
	}
	if agg.Runs != seeds {
		t.Fatalf("traced %s campaign: %d runs, want %d", name, agg.Runs, seeds)
	}
	out := map[int64][]byte{}
	for seed, buf := range bufs {
		out[seed] = buf.Bytes()
	}
	return out
}

// TestTraceDeterminism is the trace byte-identity contract from the
// observability design: for a fixed seed, the Chrome trace produced by a
// boot-attack run has exactly the same bytes at any worker count and
// whether the lab was recycled from the pool or built fresh.
func TestTraceDeterminism(t *testing.T) {
	const seeds = 3
	ref := tracedCampaign(t, "boot", seeds, 1, true)
	for seed, b := range ref {
		if len(b) == 0 {
			t.Fatalf("seed %d: empty trace", seed)
		}
		var events []map[string]any
		if err := json.Unmarshal(b, &events); err != nil {
			t.Fatalf("seed %d: trace is not a JSON array: %v", seed, err)
		}
		if len(events) == 0 {
			t.Fatalf("seed %d: no trace events", seed)
		}
		for _, e := range events {
			for _, key := range []string{"name", "cat", "ph", "ts", "pid", "tid"} {
				if _, ok := e[key]; !ok {
					t.Fatalf("seed %d: event %v missing %q", seed, e, key)
				}
			}
			if e["pid"] != float64(seed) {
				t.Fatalf("seed %d: event pid = %v, want %d", seed, e["pid"], seed)
			}
		}
	}
	for _, alt := range []struct {
		desc    string
		workers int
		pooled  bool
	}{
		{"workers=4 pooled", 4, true},
		{"workers=1 fresh", 1, false},
		{"workers=4 fresh", 4, false},
	} {
		got := tracedCampaign(t, "boot", seeds, alt.workers, alt.pooled)
		for seed, want := range ref {
			if !bytes.Equal(got[seed], want) {
				t.Errorf("%s: seed %d trace differs from workers=1 pooled reference", alt.desc, seed)
			}
		}
	}
}

// TestTraceDir exercises the file-backed trace path: WithTraceDir writes
// one valid Chrome trace file per executed seed, named after the scenario
// and seed.
func TestTraceDir(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "traces")
	eng := NewEngine(WithSeeds(2), WithBaseSeed(0), WithWorkers(2), WithFast(true),
		WithTraceDir(dir))
	if _, err := eng.Run(context.Background(), "boot"); err != nil {
		t.Fatalf("traced campaign: %v", err)
	}
	for seed := 0; seed < 2; seed++ {
		path := filepath.Join(dir, fmt.Sprintf("boot-seed%d.trace.json", seed))
		b, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("trace file: %v", err)
		}
		var events []map[string]any
		if err := json.Unmarshal(b, &events); err != nil {
			t.Fatalf("%s: not a JSON array: %v", path, err)
		}
		if len(events) == 0 {
			t.Fatalf("%s: no events", path)
		}
	}
}

// TestTracerFactoryError pins the failure contract: a factory error fails
// the affected seed's run (recorded on its Result) rather than being
// dropped.
func TestTracerFactoryError(t *testing.T) {
	boom := errors.New("no tracer for you")
	eng := NewEngine(WithSeeds(2), WithBaseSeed(0), WithWorkers(1), WithFast(true),
		WithTracerFactory(func(seed int64) (obs.Tracer, error) {
			if seed == 1 {
				return nil, boom
			}
			return obs.Nop, nil
		}))
	st, err := eng.Stream(context.Background(), "boot")
	if err != nil {
		t.Fatalf("stream: %v", err)
	}
	var failed int
	for res := range st.Results() {
		if res.Err != "" {
			failed++
			if res.Seed != 1 {
				t.Errorf("seed %d failed, want seed 1 (err %q)", res.Seed, res.Err)
			}
		}
	}
	if failed != 1 {
		t.Fatalf("%d failed seeds, want 1", failed)
	}
	if _, err := st.Wait(); err != nil {
		t.Fatalf("wait: %v", err)
	}
}
