// Package stats provides the statistics and rendering helpers used by
// the measurement harness and the campaign engine: histograms, empirical
// CDFs, means/medians/percentiles, binomial (Wilson) and mean confidence
// intervals, and fixed-width tables that mirror the layout of the paper's
// tables and figures.
package stats
