package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestHistogramBinning(t *testing.T) {
	h := NewHistogram(0, 10, 1)
	for _, v := range []float64{0, 0.5, 1, 5.9, 9.99} {
		h.Add(v)
	}
	if h.Bin(0) != 2 || h.Bin(1) != 1 || h.Bin(5) != 1 || h.Bin(9) != 1 {
		t.Errorf("bins wrong: %v %v %v %v", h.Bin(0), h.Bin(1), h.Bin(5), h.Bin(9))
	}
	if h.Total() != 5 {
		t.Errorf("total = %d", h.Total())
	}
}

func TestHistogramClampsTails(t *testing.T) {
	h := NewHistogram(-50, 200, 10)
	h.Add(-100)
	h.Add(500)
	h.Add(0)
	if h.Under() != 1 || h.Over() != 1 {
		t.Errorf("under/over = %d/%d", h.Under(), h.Over())
	}
}

func TestHistogramRender(t *testing.T) {
	h := NewHistogram(0, 3, 1)
	h.Add(0.5)
	h.Add(1.5)
	h.Add(1.6)
	out := h.Render(20)
	if !strings.Contains(out, "#") || len(strings.Split(out, "\n")) < 3 {
		t.Errorf("render output unexpected:\n%s", out)
	}
}

func TestCDFAt(t *testing.T) {
	var c CDF
	for _, v := range []float64{292, 548, 548, 548, 1500} {
		c.Add(v)
	}
	if got := c.At(291); got != 0 {
		t.Errorf("At(291) = %f", got)
	}
	if got := c.At(292); got != 0.2 {
		t.Errorf("At(292) = %f, want 0.2", got)
	}
	if got := c.At(548); got != 0.8 {
		t.Errorf("At(548) = %f, want 0.8", got)
	}
	if got := c.At(1500); got != 1 {
		t.Errorf("At(1500) = %f, want 1", got)
	}
}

func TestCDFPercentile(t *testing.T) {
	var c CDF
	for i := 1; i <= 100; i++ {
		c.Add(float64(i))
	}
	if got := c.Percentile(50); math.Abs(got-50.5) > 1 {
		t.Errorf("P50 = %f", got)
	}
	if got := c.Percentile(0); got != 1 {
		t.Errorf("P0 = %f", got)
	}
	if got := c.Percentile(100); got != 100 {
		t.Errorf("P100 = %f", got)
	}
}

func TestCDFPoints(t *testing.T) {
	var c CDF
	c.Add(1)
	c.Add(2)
	pts := c.Points([]float64{0, 1, 2})
	if pts[0][1] != 0 || pts[1][1] != 0.5 || pts[2][1] != 1 {
		t.Errorf("points = %v", pts)
	}
}

func TestCDFEmpty(t *testing.T) {
	var c CDF
	if c.At(5) != 0 {
		t.Error("empty CDF At != 0")
	}
	if !math.IsNaN(c.Percentile(50)) {
		t.Error("empty CDF percentile should be NaN")
	}
}

func TestMeanMedian(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	if Mean(xs) != 2.5 {
		t.Errorf("mean = %f", Mean(xs))
	}
	if Median(xs) != 2.5 {
		t.Errorf("median = %f", Median(xs))
	}
	if Median([]float64{1, 2, 9}) != 2 {
		t.Errorf("odd median = %f", Median([]float64{1, 2, 9}))
	}
	if !math.IsNaN(Mean(nil)) || !math.IsNaN(Median(nil)) {
		t.Error("empty mean/median should be NaN")
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("Client", "Scenario", "Duration")
	tb.AddRow("NTPd", "P2", "47 minutes")
	tb.AddRow("NTPd", "P1", "17 minutes")
	out := tb.String()
	if !strings.Contains(out, "NTPd") || !strings.Contains(out, "47 minutes") {
		t.Errorf("table output:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Errorf("lines = %d, want 4", len(lines))
	}
}

func TestTableFloatFormatting(t *testing.T) {
	tb := NewTable("x")
	tb.AddRow(38.0451)
	if !strings.Contains(tb.String(), "38.0") {
		t.Errorf("float not formatted: %s", tb.String())
	}
}

// Property: CDF.At is monotone and bounded in [0,1].
func TestPropertyCDFMonotone(t *testing.T) {
	f := func(samples []float64, a, b float64) bool {
		var c CDF
		for _, s := range samples {
			if !math.IsNaN(s) && !math.IsInf(s, 0) {
				c.Add(s)
			}
		}
		if a > b {
			a, b = b, a
		}
		pa, pb := c.At(a), c.At(b)
		return pa >= 0 && pb <= 1 && pa <= pb
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: histogram total equals adds.
func TestPropertyHistogramTotal(t *testing.T) {
	f := func(vals []float64) bool {
		h := NewHistogram(0, 100, 5)
		n := 0
		for _, v := range vals {
			if math.IsNaN(v) {
				continue
			}
			h.Add(v)
			n++
		}
		sum := h.Under() + h.Over()
		for i := 0; i < h.Bins(); i++ {
			sum += h.Bin(i)
		}
		return sum == n && h.Total() == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestStddev(t *testing.T) {
	if got := Stddev([]float64{2, 4, 4, 4, 5, 5, 7, 9}); math.Abs(got-2.138) > 0.01 {
		t.Errorf("Stddev = %v, want ≈2.138", got)
	}
	if got := Stddev([]float64{42}); got != 0 {
		t.Errorf("Stddev of one sample = %v, want 0", got)
	}
}

func TestPercentileOf(t *testing.T) {
	xs := []float64{5, 1, 3, 2, 4}
	if got := PercentileOf(xs, 50); got != 3 {
		t.Errorf("p50 = %v, want 3", got)
	}
	if got := PercentileOf(xs, 100); got != 5 {
		t.Errorf("p100 = %v, want 5", got)
	}
	if xs[0] != 5 {
		t.Error("PercentileOf mutated its input")
	}
	if !math.IsNaN(PercentileOf(nil, 50)) {
		t.Error("PercentileOf(nil) is not NaN")
	}
}

func TestWilson(t *testing.T) {
	// 8/10 successes: the 95% Wilson interval is ≈ [0.490, 0.943].
	ci := Wilson(8, 10)
	if math.Abs(ci.Lo-0.490) > 0.005 || math.Abs(ci.Hi-0.943) > 0.005 {
		t.Errorf("Wilson(8,10) = %+v, want ≈[0.490, 0.943]", ci)
	}
	// Degenerate cases stay inside [0,1] and keep uncertainty.
	if ci := Wilson(0, 20); ci.Lo != 0 || ci.Hi <= 0 || ci.Hi > 1 {
		t.Errorf("Wilson(0,20) = %+v", ci)
	}
	if ci := Wilson(20, 20); ci.Hi != 1 || ci.Lo >= 1 || ci.Lo < 0 {
		t.Errorf("Wilson(20,20) = %+v", ci)
	}
	if ci := Wilson(0, 0); ci.Lo != 0 || ci.Hi != 1 {
		t.Errorf("Wilson(0,0) = %+v, want [0,1]", ci)
	}
}

func TestMeanCI(t *testing.T) {
	xs := []float64{10, 12, 8, 11, 9}
	ci := MeanCI(xs)
	m := Mean(xs)
	if !(ci.Lo < m && m < ci.Hi) {
		t.Errorf("MeanCI = %+v does not bracket mean %v", ci, m)
	}
	if ci := MeanCI([]float64{7}); ci.Lo != 7 || ci.Hi != 7 {
		t.Errorf("MeanCI of one sample = %+v, want point interval", ci)
	}
}

// Property: the Wilson interval always brackets the point estimate.
func TestPropertyWilsonBrackets(t *testing.T) {
	f := func(s, n uint8) bool {
		k, m := int(s), int(n)
		if m == 0 {
			m = 1
		}
		k %= m + 1
		ci := Wilson(k, m)
		p := float64(k) / float64(m)
		return ci.Lo >= 0 && ci.Hi <= 1 && ci.Lo <= p && p <= ci.Hi
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
