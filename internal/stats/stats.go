package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Histogram is a fixed-bin histogram over float64 samples.
type Histogram struct {
	Min, Max float64
	BinWidth float64
	counts   []int
	under    int
	over     int
	total    int
}

// NewHistogram creates a histogram covering [min, max) with the given bin
// width.
func NewHistogram(min, max, binWidth float64) *Histogram {
	n := int(math.Ceil((max - min) / binWidth))
	if n < 1 {
		n = 1
	}
	return &Histogram{Min: min, Max: max, BinWidth: binWidth, counts: make([]int, n)}
}

// Add records one sample. Out-of-range samples are clamped into the under/
// over buckets (as Figure 7 does: "values below −50 ms and above 200 ms are
// summed up on the sides").
func (h *Histogram) Add(v float64) {
	h.total++
	switch {
	case v < h.Min:
		h.under++
	case v >= h.Max:
		h.over++
	default:
		h.counts[int((v-h.Min)/h.BinWidth)]++
	}
}

// Total returns the number of samples recorded.
func (h *Histogram) Total() int { return h.total }

// Bin returns the count of bin i (0-based); the under/over buckets are
// reported by Under and Over.
func (h *Histogram) Bin(i int) int { return h.counts[i] }

// Bins returns the number of regular bins.
func (h *Histogram) Bins() int { return len(h.counts) }

// Under and Over return the clamped-tail counts.
func (h *Histogram) Under() int { return h.under }

// Over returns the count of samples at or above Max.
func (h *Histogram) Over() int { return h.over }

// Render draws an ASCII bar chart with the given maximum bar width.
func (h *Histogram) Render(width int) string {
	var sb strings.Builder
	maxCount := 1
	for _, c := range h.counts {
		if c > maxCount {
			maxCount = c
		}
	}
	for i, c := range h.counts {
		lo := h.Min + float64(i)*h.BinWidth
		bar := strings.Repeat("#", c*width/maxCount)
		fmt.Fprintf(&sb, "%10.1f | %-*s %d\n", lo, width, bar, c)
	}
	return sb.String()
}

// CDF is an empirical cumulative distribution over float64 samples.
type CDF struct {
	samples []float64
	sorted  bool
}

// Add records one sample.
func (c *CDF) Add(v float64) {
	c.samples = append(c.samples, v)
	c.sorted = false
}

// Len returns the number of samples.
func (c *CDF) Len() int { return len(c.samples) }

func (c *CDF) sort() {
	if !c.sorted {
		sort.Float64s(c.samples)
		c.sorted = true
	}
}

// At returns P(X ≤ v).
func (c *CDF) At(v float64) float64 {
	if len(c.samples) == 0 {
		return 0
	}
	c.sort()
	i := sort.SearchFloat64s(c.samples, math.Nextafter(v, math.Inf(1)))
	return float64(i) / float64(len(c.samples))
}

// Percentile returns the p-th percentile (p in [0,100]).
func (c *CDF) Percentile(p float64) float64 {
	if len(c.samples) == 0 {
		return math.NaN()
	}
	c.sort()
	if p <= 0 {
		return c.samples[0]
	}
	if p >= 100 {
		return c.samples[len(c.samples)-1]
	}
	idx := p / 100 * float64(len(c.samples)-1)
	lo := int(idx)
	frac := idx - float64(lo)
	if lo+1 >= len(c.samples) {
		return c.samples[lo]
	}
	return c.samples[lo]*(1-frac) + c.samples[lo+1]*frac
}

// Points returns (x, P(X≤x)) pairs at the given x values — the series
// plotted in Figure 5.
func (c *CDF) Points(xs []float64) [][2]float64 {
	out := make([][2]float64, 0, len(xs))
	for _, x := range xs {
		out = append(out, [2]float64{x, c.At(x)})
	}
	return out
}

// Mean returns the sample mean.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Stddev returns the sample standard deviation (n−1 denominator).
func Stddev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(xs)-1))
}

// PercentileOf returns the p-th percentile (p in [0,100]) of xs by linear
// interpolation, without mutating xs.
func PercentileOf(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	var c CDF
	for _, x := range xs {
		c.Add(x)
	}
	return c.Percentile(p)
}

// Interval is a two-sided 95% confidence interval.
type Interval struct {
	Lo float64 `json:"lo"`
	Hi float64 `json:"hi"`
}

// z95 is the normal quantile for two-sided 95% intervals.
const z95 = 1.959963984540054

// Wilson returns the 95% Wilson score interval for a binomial proportion
// with the given success count out of n trials, as fractions in [0,1].
// With n = 0 the interval is [0,1] (no information).
func Wilson(successes, n int) Interval {
	if n <= 0 {
		return Interval{0, 1}
	}
	p := float64(successes) / float64(n)
	nf := float64(n)
	z2 := z95 * z95
	denom := 1 + z2/nf
	centre := p + z2/(2*nf)
	spread := z95 * math.Sqrt(p*(1-p)/nf+z2/(4*nf*nf))
	lo := (centre - spread) / denom
	hi := (centre + spread) / denom
	// At p = 0 (and symmetrically p = 1) centre and spread are equal in
	// exact arithmetic but can differ by an ulp in floating point,
	// leaving lo a hair above 0 (or hi below 1) and breaking the
	// invariant that the interval brackets p. Pin the exact endpoints.
	if successes == 0 {
		lo = 0
	}
	if successes == n {
		hi = 1
	}
	return Interval{math.Max(0, lo), math.Min(1, hi)}
}

// MeanCI returns the 95% normal-approximation confidence interval for the
// mean of xs. With fewer than two samples it collapses to the point value.
func MeanCI(xs []float64) Interval {
	if len(xs) == 0 {
		return Interval{math.NaN(), math.NaN()}
	}
	m := Mean(xs)
	if len(xs) < 2 {
		return Interval{m, m}
	}
	se := Stddev(xs) / math.Sqrt(float64(len(xs)))
	return Interval{m - z95*se, m + z95*se}
}

// Median returns the sample median.
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// Table renders fixed-width text tables in the style of the paper.
type Table struct {
	headers []string
	rows    [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(headers ...string) *Table {
	return &Table{headers: headers}
}

// AddRow appends a row; cells are formatted with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.1f", v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var sb strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], c)
		}
		sb.WriteByte('\n')
	}
	writeRow(t.headers)
	total := len(widths)*2 - 2
	for _, w := range widths {
		total += w
	}
	sb.WriteString(strings.Repeat("-", total))
	sb.WriteByte('\n')
	for _, row := range t.rows {
		writeRow(row)
	}
	return sb.String()
}
