// Campaign: fan experiments out across independent seeds on all cores
// through the Engine and report aggregate statistics — success rates with
// 95% Wilson intervals and per-metric distributions. Aggregates are
// byte-identical at any worker count; only the wall-clock time changes.
//
// One API covers every use:
//
//  1. Engine.Run blocks for the aggregate of any registered scenario
//     (every table, figure and scan — `dnstime.Scenarios()` lists them);
//  2. Engine.Stream yields per-seed results in completion order while the
//     seed-order aggregate folds behind it — and the context cancels a
//     campaign cleanly (workers drain, the partial aggregate is marked);
//  3. params make attack variants (any client profile, target shift,
//     Chronos knobs) ordinary campaign runs — no separate entry point;
//  4. WithCheckpoint/WithResume persist completed seeds as JSONL so an
//     interrupted campaign picks up where it left off, byte-identically.
package main

import (
	"context"
	"fmt"
	"log"

	"dnstime"
)

func main() {
	ctx := context.Background()

	// 1. Any registered scenario: the Table IV cache-snooping study over
	// 16 seeds, aggregated metric by metric.
	agg, err := dnstime.NewEngine(
		dnstime.WithSeeds(16),
		dnstime.WithFast(true), // 20k resolvers per run instead of 200k
	).Run(ctx, "table4")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(agg.Render())

	// 2. A parameterised attack campaign, streamed: the boot-time attack
	// against a chrony client with a −300 s target shift, 32 seeds.
	// Results arrive in completion order; the aggregate stays seed-order
	// deterministic.
	st, err := dnstime.NewEngine(
		dnstime.WithSeeds(32),
		dnstime.WithParam("client", "chrony"),
		dnstime.WithParam("offset", "-300s"),
		// Workers defaults to GOMAXPROCS; each run owns its Lab and
		// virtual clock, so the fan-out is embarrassingly parallel.
	).Stream(ctx, "boot")
	if err != nil {
		log.Fatal(err)
	}
	shown := 0
	for res := range st.Results() {
		if shown < 4 {
			shifted := res.Success != nil && *res.Success
			fmt.Printf("  seed %d: shifted=%t offset=%.0fs tts=%.0fs (completion order)\n",
				res.Seed, shifted, res.Metrics["offset_s"], res.Metrics["tts_s"])
		}
		shown++
	}
	attack, err := st.Wait()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(attack)

	// 3. The whole Table I client matrix: seven profiles × 8 seeds on one
	// shared worker pool.
	rows, err := dnstime.CampaignTableI(dnstime.CampaignTableIOptions{Seeds: 8})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Table I over 8 seeds per client:")
	for _, row := range rows {
		fmt.Printf("  %-18s boot %5.1f%%  run-time %s\n", row.Client, row.Boot.SuccessRate, row.RunTime)
	}
}
