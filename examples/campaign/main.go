// Campaign: fan the boot-time attack out across 32 independent seeds on
// all cores and report aggregate statistics — success rate with a 95%
// Wilson interval and the time-to-shift distribution. The aggregate is
// byte-identical at any worker count; only the wall-clock time changes.
package main

import (
	"fmt"
	"log"
	"time"

	"dnstime"
)

func main() {
	agg, err := dnstime.RunCampaign(dnstime.CampaignSpec{
		Kind:    dnstime.CampaignBootTime,
		Profile: dnstime.ProfileNTPd,
		Lab:     dnstime.LabConfig{EvilOffset: -500 * time.Second},
		Seeds:   32,
		// Workers defaults to GOMAXPROCS; each run owns its Lab and
		// virtual clock, so the fan-out is embarrassingly parallel.
		Progress: func(done, total int) {
			if done%8 == 0 || done == total {
				fmt.Printf("  %d/%d runs complete\n", done, total)
			}
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println(agg)
	fmt.Printf("per-seed (first 4, seed order):\n")
	for _, r := range agg.PerRun[:4] {
		fmt.Printf("  seed %d: shifted=%t offset=%v time-to-shift=%v\n",
			r.Seed, r.Success, r.ClockOffset, r.TimeToShift)
	}

	// CampaignTableI aggregates the whole Table I client matrix the same
	// way: seven profiles × N seeds on one shared worker pool.
	rows, err := dnstime.CampaignTableI(dnstime.CampaignTableIOptions{Seeds: 8})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nTable I over 8 seeds per client:")
	for _, row := range rows {
		fmt.Printf("  %-18s boot %5.1f%%  run-time %s\n", row.Client, row.Boot.SuccessRate, row.RunTime)
	}
}
