// Campaign: fan experiments out across independent seeds on all cores
// and report aggregate statistics — success rates with 95% Wilson
// intervals and per-metric distributions. Aggregates are byte-identical
// at any worker count; only the wall-clock time changes.
//
// Three ways to run a campaign, from most to least general:
//
//  1. RunScenarioCampaign over any scenario in the registry (every table,
//     figure and scan — `dnstime.Scenarios()` lists them);
//  2. CampaignTableI for the aggregated Table I client matrix;
//  3. RunCampaign with an attack Spec when non-default parameters are
//     needed (a different client profile, run-time scenario P2, …).
package main

import (
	"fmt"
	"log"
	"time"

	"dnstime"
)

func main() {
	// 1. Any registered scenario: the Table IV cache-snooping study over
	// 16 seeds, aggregated metric by metric.
	agg, err := dnstime.RunScenarioCampaign("table4", dnstime.ScenarioCampaignOptions{
		Seeds: 16,
		Fast:  true, // 20k resolvers per run instead of 200k
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(agg.Render())

	// 2. The whole Table I client matrix: seven profiles × 8 seeds on one
	// shared worker pool.
	rows, err := dnstime.CampaignTableI(dnstime.CampaignTableIOptions{Seeds: 8})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Table I over 8 seeds per client:")
	for _, row := range rows {
		fmt.Printf("  %-18s boot %5.1f%%  run-time %s\n", row.Client, row.Boot.SuccessRate, row.RunTime)
	}
	fmt.Println()

	// 3. A parameterised attack campaign: the boot-time attack against a
	// chrony client with a −300 s target shift, 32 seeds.
	attack, err := dnstime.RunCampaign(dnstime.CampaignSpec{
		Kind:    dnstime.CampaignBootTime,
		Profile: dnstime.ProfileChrony,
		Lab:     dnstime.LabConfig{EvilOffset: -300 * time.Second},
		Seeds:   32,
		// Workers defaults to GOMAXPROCS; each run owns its Lab and
		// virtual clock, so the fan-out is embarrassingly parallel.
		Progress: func(done, total int) {
			if done%8 == 0 || done == total {
				fmt.Printf("  %d/%d runs complete\n", done, total)
			}
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(attack)
	fmt.Println("per-seed (first 4, seed order):")
	for _, r := range attack.PerRun[:4] {
		fmt.Printf("  seed %d: shifted=%t offset=%v time-to-shift=%v\n",
			r.Seed, r.Success, r.ClockOffset, r.TimeToShift)
	}
}
