// Run-time attack walk-through (Section IV-B, Figure 3): the victim client
// is already synchronised to honest servers; the attacker abuses NTP
// server-side rate limiting with spoofed floods to break the existing
// associations, forcing a DNS re-query that hits the poisoned cache.
// Both discovery scenarios are shown: P1 (all upstreams known upfront) and
// P2 (one-at-a-time discovery via the client's RefID leak).
package main

import (
	"fmt"
	"log"
	"time"

	"dnstime"
)

func main() {
	fmt.Println("run-time attack against an ntpd-profile client (paper Table II)")
	fmt.Println()
	for _, sc := range []dnstime.RuntimeScenario{dnstime.ScenarioP1, dnstime.ScenarioP2} {
		res, err := dnstime.RunRuntimeAttack(dnstime.ProfileNTPd, sc, dnstime.LabConfig{Seed: 3})
		if err != nil {
			log.Fatal(err)
		}
		paper := map[string]string{"P1": "17 minutes", "P2": "47 minutes"}[sc.String()]
		fmt.Printf("scenario %s: succeeded=%t duration=%v (paper: %s) lookups=%d offset=%v\n",
			sc, res.Succeeded, res.Duration.Round(time.Second), paper, res.DNSLookups, res.ClockOffset)
	}

	fmt.Println()
	fmt.Println("openntpd does not re-resolve DNS at run-time; the same attack only")
	fmt.Println("disables synchronisation (Table I: no run-time vulnerability):")
	res, err := dnstime.RunRuntimeAttack(dnstime.ProfileOpenNTPD, dnstime.ScenarioP1, dnstime.LabConfig{Seed: 3})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("openntpd: succeeded=%t lookups=%d offset=%v\n", res.Succeeded, res.DNSLookups, res.ClockOffset)
}
