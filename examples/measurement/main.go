// Measurement-suite walk-through: runs the paper's attack-surface studies
// (Sections VII and VIII) on synthetic populations and prints the headline
// numbers next to the paper's.
package main

import (
	"fmt"
	"log"

	"dnstime"
)

func main() {
	// §VII-A — rate limiting of pool NTP servers (live protocol scan; a
	// reduced population keeps the example fast; use cmd/ntpscan for 2432).
	poolCfg := dnstime.DefaultPoolConfig()
	poolCfg.Servers = 400
	pool := dnstime.GeneratePool(poolCfg, 42)
	rl, err := dnstime.RateLimitScan(pool, dnstime.DefaultScanConfig(), 42)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("§VII-A rate limiting: %.0f%% stop replying (paper 38%%), %.0f%% send KoD (paper 33%%)\n",
		rl.RateLimitedPct(), rl.KoDPct())

	// §VII-B / Figure 5 — nameserver fragmentation.
	frag := dnstime.FragScan(dnstime.GenerateDomainNameservers(dnstime.DefaultDomainNameserverConfig(), 5), nil)
	fmt.Printf("§VII-B fragmentation: %.2f%% of domains fragment without DNSSEC (paper 7.66%%); CDF(548)=%.1f%% (paper 83.2%%)\n",
		frag.FragNoDNSSECPct(), 100*frag.CumAt(548))

	// Table IV / Figure 6 — open-resolver cache snooping.
	snoop := dnstime.CacheSnoop(dnstime.GenerateOpenResolvers(dnstime.DefaultOpenResolverConfig(), 11))
	fmt.Printf("Table IV snooping: pool.ntp.org A cached at %.1f%% of verified resolvers (paper 69.41%%)\n",
		snoop.Rows[1].CachedPct)

	// Table V — ad-network client study.
	ad := dnstime.AdStudy(dnstime.GenerateAdClients(dnstime.DefaultAdStudyConfig(), 9))
	for _, row := range ad.Rows {
		if row.Label == "ALL" {
			fmt.Printf("Table V ad study: tiny-fragment acceptance %.1f%% (paper 64.0%%), any size %.1f%% (paper 91.0%%)\n",
				row.TinyPct, row.AnyPct)
		}
	}
	fmt.Printf("DNSSEC validation range: %.1f%%–%.1f%% (paper 19.14%%–28.94%%)\n", ad.DNSSECMinPct, ad.DNSSECMaxPct)

	// §VIII-B3 — shared resolvers.
	sh := dnstime.SharedResolverStudy(dnstime.GenerateSharedResolvers(dnstime.DefaultSharedResolverConfig(), 21))
	fmt.Printf("§VIII-B3 shared resolvers: %.1f%% triggerable (paper 13.8%%)\n", sh.TriggerablePct())

	// Figure 7 — the timing side channel stays inconclusive.
	ts := dnstime.TimingSideChannel(dnstime.DefaultTimingProbeConfig(), 17)
	h := ts.Histogram()
	fmt.Printf("Figure 7 timing side channel: %d samples, smeared across [−50,200] ms — no usable threshold\n", h.Total())
}
