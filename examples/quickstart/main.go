// Quickstart: poison the victim resolver's pool.ntp.org entry via the
// off-path fragment-replacement attack, boot an ntpd-profile client, and
// watch its clock step to the attacker's time (−500 s).
package main

import (
	"fmt"
	"log"
	"time"

	"dnstime"
)

func main() {
	// A lab wires: victim resolver, pool.ntp.org nameserver, 8 honest NTP
	// servers, 4 attacker NTP servers serving −500 s, and the attacker.
	lab := dnstime.MustNewLab(dnstime.LabConfig{Seed: 1})

	// Off-path cache poisoning (Section III): ICMP-forced fragmentation,
	// IPID prediction, spoofed second fragment with fixed UDP checksum.
	if err := lab.PoisonResolver(86400); err != nil {
		log.Fatalf("poisoning failed: %v", err)
	}
	fmt.Println("resolver cache poisoned:", lab.CachePoisoned())

	// Boot the victim client; its boot-time DNS lookup returns the
	// attacker's NTP servers.
	client, err := lab.NewClient(dnstime.ProfileNTPd, 0)
	if err != nil {
		log.Fatal(err)
	}
	if err := client.Start(); err != nil {
		log.Fatal(err)
	}
	lab.Clock.RunFor(30 * time.Minute) // virtual time: finishes instantly

	fmt.Printf("client clock offset after boot: %v (attacker serves %v)\n",
		client.ClockOffset(), -500*time.Second)
	for _, ev := range client.Events {
		fmt.Println("  ", ev)
	}
}
