// Boot-time attack walk-through (Section IV-A, Figure 2) with a packet-level
// view of the poisoning: the attacker plants a spoofed second fragment every
// 30 seconds; when the victim's resolver queries the nameserver, the real
// first fragment reassembles with the planted one and the malicious record
// enters the cache before the NTP client boots.
package main

import (
	"fmt"
	"log"
	"time"

	"dnstime"
	"dnstime/internal/ntpclient"
)

func main() {
	for _, prof := range []ntpclient.Profile{
		dnstime.ProfileNTPd,
		dnstime.ProfileSystemd,
		dnstime.ProfileNtpdate,
	} {
		res, err := dnstime.RunBootTimeAttack(prof, dnstime.LabConfig{Seed: 7})
		if err != nil {
			log.Fatalf("%s: %v", prof.Name, err)
		}
		fmt.Printf("%-18s poisoned=%-5t shifted=%-5t offset=%-10v time-to-shift=%v\n",
			res.Profile, res.Poisoned, res.Shifted, res.ClockOffset, res.TimeToShift.Round(time.Second))
	}

	// Show the low attack volume of the §IV-A planting loop: a 150-second
	// pool-record TTL window needs at most 5 planting rounds.
	lab := dnstime.MustNewLab(dnstime.LabConfig{Seed: 7})
	campaign := lab.StartPoisonCampaign(30*time.Second, 0)
	lab.Clock.RunFor(150 * time.Second)
	campaign.Stop()
	fmt.Printf("\nplanting loop: %d rounds, %d spoofed packets per 150 s TTL window\n",
		campaign.Rounds, lab.Eve.InjectedPackets)
}
