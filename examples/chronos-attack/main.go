// Chronos attack walk-through (Section VI, Figure 4): Chronos builds its
// server pool from 24 hourly DNS queries; one poisoned response with 89
// attacker addresses and a TTL above 24 h dominates the pool whenever it
// lands before the 12th query (N ≤ 11). The attacker then controls ≥ 2/3 of
// the pool and the provably-secure selection algorithm converges on the
// attacker's time.
package main

import (
	"fmt"
	"log"

	"dnstime"
)

func main() {
	fmt.Println("analytic bound: 2/3·(89+4N) ≤ 89  ⇒  N ≤",
		dnstime.ChronosAttackBound(4, 89), "(the attacker has 12 tries in 24 hours)")
	fmt.Println()

	fmt.Println("sweep: poisoning lands after N honest hourly queries")
	for _, n := range []int{0, 5, 11} {
		res, err := dnstime.RunChronosAttack(n, 89, dnstime.LabConfig{Seed: 9})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  N=%-2d pool=%-3d evil=%-2d control=%t shifted=%t offset=%v\n",
			res.N, res.PoolSize, res.EvilInPool, res.ControlsPool, res.Shifted, res.ClockOffset)
	}

	fmt.Println()
	fmt.Println("beyond the bound the attack fails (large honest pool, late poisoning):")
	res, err := dnstime.RunChronosAttack(20, 89, dnstime.LabConfig{Seed: 10, HonestServers: 90})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  N=%-2d pool=%-3d evil=%-2d control=%t shifted=%t offset=%v\n",
		res.N, res.PoolSize, res.EvilInPool, res.ControlsPool, res.Shifted, res.ClockOffset)
}
