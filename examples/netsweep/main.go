// Netsweep: re-evaluate the paper's attacks under network conditions the
// testbed could not vary. Every lab link runs over a netem path model
// (DESIGN.md §8) — named profiles from same-site LAN to a congested
// trans-continental path — and the netsweep scenario fans one attack
// across the whole profile grid, so a multi-seed campaign yields a
// per-profile success-rate table.
package main

import (
	"context"
	"fmt"
	"log"

	"dnstime"
)

func main() {
	ctx := context.Background()

	// 1. The netsweep scenario: one boot-time attack per netem profile
	// per seed. The per-profile outcomes aggregate under metrics keyed
	// "shifted/<profile>" and "tts_s/<profile>".
	agg, err := dnstime.NewEngine(dnstime.WithSeeds(8)).Run(ctx, "netsweep")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("boot-time attack success by path profile (8 seeds):")
	means := map[string]float64{}
	for _, m := range agg.Metrics {
		means[m.Name] = m.Mean
	}
	for _, profile := range dnstime.NetProfileNames() {
		fmt.Printf("  %-18s shifted %5.1f%%  mean tts %6.1fs  — %s\n",
			profile, 100*means["shifted/"+profile], means["tts_s/"+profile],
			dnstime.NetProfileDescription(profile))
	}

	// 2. Any lab-backed scenario takes the same conditions as params —
	// the library spelling of `-param net=lossy-wifi -param loss=0.08`.
	lossy, err := dnstime.NewEngine(
		dnstime.WithSeeds(8),
		dnstime.WithParam("net", "lossy-wifi"),
		dnstime.WithParam("loss", "0.08"),
	).Run(ctx, "boot")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nboot on lossy-wifi at 8%% i.i.d. loss: %s\n", lossy)

	// 3. Or build a model directly for single-run experiments.
	path, err := dnstime.NetPathFromSpec("transcontinental", 0, dnstime.NetNoLossOverride)
	if err != nil {
		log.Fatal(err)
	}
	res, err := dnstime.RunBootTimeAttack(dnstime.ProfileNTPd, dnstime.LabConfig{Seed: 1, Path: path})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("single transcontinental run: shifted=%t offset=%v tts=%v\n",
		res.Shifted, res.ClockOffset, res.TimeToShift)
}
