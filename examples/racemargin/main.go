// Racemargin: the paper's off-path race in quantitative form. The
// attacker wins or loses on network position — racing the legitimate
// answer from a nearer (or farther) vantage point — so this example runs
// the racemargin campaign, which sweeps the attacker's latency advantage
// under the near-attacker topology preset (DESIGN.md §9), and prints the
// success-rate-vs-margin table, then shows the role-based topology API
// directly.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"dnstime"
)

func main() {
	ctx := context.Background()

	// 1. The racemargin campaign: one boot-time attack per margin per
	// seed. Margin m gives the attacker a one-way delay of 30ms − m while
	// the victim network stays at the preset's conditions; outcomes
	// aggregate under metrics keyed "shifted/<margin>".
	agg, err := dnstime.NewEngine(dnstime.WithSeeds(8)).Run(ctx, "racemargin")
	if err != nil {
		log.Fatal(err)
	}
	means := map[string]float64{}
	for _, m := range agg.Metrics {
		means[m.Name] = m.Mean
	}
	fmt.Println("boot-time attack success by attacker latency margin (8 seeds):")
	for _, margin := range []string{"-8s", "-4s", "-2s", "-1.5s", "-1.2s", "-1.1s", "-1s", "-500ms", "0s", "28ms"} {
		fmt.Printf("  margin %7s  shifted %5.1f%%\n", margin, 100*means["shifted/"+margin])
	}

	// 2. Topology presets position the attacker for any lab-backed
	// scenario — the library spelling of `-param topo=near-attacker`.
	near, err := dnstime.NewEngine(
		dnstime.WithSeeds(8),
		dnstime.WithParam("topo", "near-attacker"),
	).Run(ctx, "boot")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nboot under near-attacker (%s): %s\n",
		dnstime.NetTopologyDescription("near-attacker"), near)

	// 3. Or assemble a topology by role pair for single-run experiments:
	// a colo attacker beside the resolver while the client sits on a
	// lossy last hop. Link factories return a fresh model per compiled
	// link, so stateful loss never leaks between links.
	topo := dnstime.NewNetTopology()
	topo.SetPath(dnstime.NetRoleAttacker, dnstime.NetRoleResolver,
		func() dnstime.PathModel { return &dnstime.NetPath{Delay: dnstime.NetFixed(200 * time.Microsecond)} })
	topo.SetPath(dnstime.NetRoleClient, dnstime.NetRoleAny,
		func() dnstime.PathModel {
			lossy, err := dnstime.NetProfile("lossy-wifi")
			if err != nil {
				panic(err)
			}
			return lossy
		})
	res, err := dnstime.RunBootTimeAttack(dnstime.ProfileNTPd, dnstime.LabConfig{Seed: 1, Topology: topo})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("colo attacker vs lossy client: shifted=%t offset=%v tts=%v\n",
		res.Shifted, res.ClockOffset, res.TimeToShift)
}
