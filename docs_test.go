// Documentation enforcement: the DESIGN.md §4 experiment index must match
// the scenario registry, relative links in the top-level docs must
// resolve, and the packages named in ISSUE-tracked godoc passes must
// document every exported symbol. CI runs these in its docs job; they are
// ordinary tests so `go test ./...` catches drift locally too.
package dnstime_test

import (
	"go/ast"
	"go/doc"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"dnstime"
)

// Markers delimiting the generated experiment index inside DESIGN.md.
const (
	indexBegin = "<!-- scenario-index:begin"
	indexEnd   = "<!-- scenario-index:end"
)

// TestDesignExperimentIndexInSync: the §4 table embedded in DESIGN.md is
// exactly what the registry generates, so the documented index cannot
// drift from the code. Regenerate with:
//
//	go run ./cmd/experiments scenarios -markdown
func TestDesignExperimentIndexInSync(t *testing.T) {
	data, err := os.ReadFile("DESIGN.md")
	if err != nil {
		t.Fatal(err)
	}
	text := string(data)
	begin := strings.Index(text, indexBegin)
	end := strings.Index(text, indexEnd)
	if begin < 0 || end < 0 || end < begin {
		t.Fatalf("DESIGN.md is missing the %s / %s markers", indexBegin, indexEnd)
	}
	embedded := text[begin:end]
	// Drop the begin-marker line itself.
	if i := strings.Index(embedded, "\n"); i >= 0 {
		embedded = embedded[i+1:]
	}
	want := dnstime.ScenarioIndexMarkdown()
	if strings.TrimSpace(embedded) != strings.TrimSpace(want) {
		t.Errorf("DESIGN.md §4 experiment index is out of sync with the registry.\n"+
			"Regenerate with: go run ./cmd/experiments scenarios -markdown\n\n"+
			"embedded:\n%s\nregistry:\n%s", embedded, want)
	}
}

// TestDocsRelativeLinks: every relative markdown link in the top-level
// docs points at a file that exists.
func TestDocsRelativeLinks(t *testing.T) {
	linkRe := regexp.MustCompile(`\]\(([^)\s]+)\)`)
	for _, name := range []string{"README.md", "EXPERIMENTS.md", "DESIGN.md"} {
		data, err := os.ReadFile(name)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range linkRe.FindAllStringSubmatch(string(data), -1) {
			target := m[1]
			if strings.HasPrefix(target, "http://") || strings.HasPrefix(target, "https://") ||
				strings.HasPrefix(target, "#") {
				continue
			}
			target = strings.SplitN(target, "#", 2)[0]
			if _, err := os.Stat(filepath.FromSlash(target)); err != nil {
				t.Errorf("%s links to %q which does not resolve: %v", name, m[1], err)
			}
		}
	}
}

// TestGodocCoverage: internal/scenario, internal/campaign,
// internal/stats, internal/netem (including the topology layer),
// internal/simnet, internal/ntpclient, internal/core, internal/serve,
// internal/obs and internal/search must carry a package comment and a
// doc comment on every
// exported symbol (types, funcs, methods, and const/var groups).
func TestGodocCoverage(t *testing.T) {
	for _, dir := range []string{
		"internal/scenario", "internal/campaign", "internal/stats",
		"internal/netem", "internal/simnet", "internal/ntpclient",
		"internal/core", "internal/serve", "internal/obs", "internal/search",
	} {
		fset := token.NewFileSet()
		pkgs, err := parser.ParseDir(fset, dir, func(fi fs.FileInfo) bool {
			return !strings.HasSuffix(fi.Name(), "_test.go")
		}, parser.ParseComments)
		if err != nil {
			t.Fatal(err)
		}
		for _, pkg := range pkgs {
			p := doc.New(pkg, dir, 0)
			if strings.TrimSpace(p.Doc) == "" {
				t.Errorf("%s: missing package comment", dir)
			}
			check := func(kind, name, docText string) {
				if !ast.IsExported(strings.TrimPrefix(name, "*")) {
					return
				}
				if strings.TrimSpace(docText) == "" {
					t.Errorf("%s: exported %s %s has no doc comment", dir, kind, name)
				}
			}
			values := func(kind string, vs []*doc.Value) {
				for _, v := range vs {
					for _, name := range v.Names {
						check(kind, name, v.Doc)
					}
				}
			}
			values("const", p.Consts)
			values("var", p.Vars)
			for _, f := range p.Funcs {
				check("func", f.Name, f.Doc)
			}
			for _, typ := range p.Types {
				check("type", typ.Name, typ.Doc)
				values("const", typ.Consts)
				values("var", typ.Vars)
				for _, f := range typ.Funcs {
					check("func", f.Name, f.Doc)
				}
				for _, m := range typ.Methods {
					check("method", typ.Name+"."+m.Name, m.Doc)
				}
			}
		}
	}
}
