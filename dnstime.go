// Package dnstime reproduces "The Impact of DNS Insecurity on Time"
// (Jeitner, Shulman, Waidner — DSN 2020): practical off-path time-shifting
// attacks against NTP and Chronos-enhanced NTP via DNS cache poisoning, and
// the paper's measurement studies of the attack surface.
//
// The package is a facade over the internal implementation:
//
//   - Lab wires a deterministic simulated internetwork (virtual clock, IPv4
//     fragmentation and defragmentation caches, UDP checksums, DNS wire
//     format, caching resolver, authoritative nameserver, NTP servers with
//     rate limiting, behavioural NTP client profiles, a Chronos client and
//     an off-path attacker).
//   - RunBootTimeAttack, RunRuntimeAttack and RunChronosAttack execute the
//     paper's three headline attacks end to end.
//   - TableI / TableII / TableIII and the measurement runners regenerate
//     every table and figure of the evaluation (see EXPERIMENTS.md).
//   - Every experiment is also registered as a Scenario (Scenarios,
//     RunScenario), and the campaign Engine (NewEngine) fans any of them
//     out across many seeds with streaming per-seed results, context
//     cancellation, checkpoint/resume and aggregate statistics
//     (DESIGN.md §6–§7).
//
// Quickstart:
//
//	lab := dnstime.MustNewLab(dnstime.LabConfig{Seed: 1})
//	if err := lab.PoisonResolver(86400); err != nil { ... }
//	client, _ := lab.NewClient(dnstime.ProfileNTPd, 0)
//	client.Start()
//	lab.Clock.RunFor(30 * time.Minute)
//	fmt.Println(client.ClockOffset()) // ≈ −500 s
package dnstime

import (
	"dnstime/internal/analysis"
	"dnstime/internal/campaign"
	"dnstime/internal/chronos"
	"dnstime/internal/core"
	"dnstime/internal/measure"
	"dnstime/internal/netem"
	"dnstime/internal/ntpclient"
	"dnstime/internal/population"
	"dnstime/internal/scenario"
	"dnstime/internal/search"
	"dnstime/internal/serve"
)

// Lab types: the wired attack laboratory.
type (
	// Lab is a fully wired attack laboratory (victim resolver, pool
	// nameserver, honest and attacker NTP servers, off-path attacker).
	Lab = core.Lab
	// LabConfig sizes the laboratory.
	LabConfig = core.LabConfig
	// PoisonCampaign is a running §IV-A fragment-planting campaign
	// (from Lab.StartPoisonCampaign) — unrelated to the multi-seed
	// Campaign* experiment engine below.
	PoisonCampaign = core.Campaign
)

// Lab constructors.
var (
	// NewLab builds a laboratory.
	NewLab = core.NewLab
	// MustNewLab is NewLab that panics on error (examples, benchmarks).
	MustNewLab = core.MustNewLab
)

// Network-condition emulation (DESIGN.md §8): every lab link runs over a
// composable netem path model — latency distributions, loss models
// (i.i.d. and Gilbert–Elliott bursts), reordering, asymmetric legs and
// per-pair overrides — selected per lab via LabConfig.Path or per
// campaign via the net/rtt/loss scenario params.
type (
	// PathModel decides per-packet latency and loss on lab links.
	PathModel = netem.PathModel
	// NetPath is the basic composable path model (delay + loss + reorder).
	NetPath = netem.Path
	// NetFixed is the constant latency distribution (consumes no
	// randomness — the default-lab building block).
	NetFixed = netem.Fixed
)

// Role-based lab topology (DESIGN.md §9): instead of one uniform path, a
// NetTopology assigns path models by role pair — attacker↔resolver,
// client↔resolver, resolver↔nameserver, … — so the off-path attacker can
// race the legitimate answer from a better (or worse) network position.
// Select per lab via LabConfig.Topology or per campaign via the
// topo/atk-net/cli-net scenario params.
type (
	// NetTopology assigns path models by role pair; labs compile it to
	// per-directed-link overrides as hosts join.
	NetTopology = netem.Topology
	// NetRole names a host's network position (attacker, resolver, …).
	NetRole = netem.Role
	// NetRolePair is one directed role→role link class.
	NetRolePair = netem.RolePair
)

// The lab's built-in network roles.
const (
	// NetRoleAttacker is the off-path attacker's vantage point.
	NetRoleAttacker = netem.RoleAttacker
	// NetRoleEvilServer is an attacker-operated NTP server.
	NetRoleEvilServer = netem.RoleEvilServer
	// NetRoleResolver is the victim network's recursive resolver.
	NetRoleResolver = netem.RoleResolver
	// NetRoleNameserver is the pool.ntp.org authoritative nameserver.
	NetRoleNameserver = netem.RoleNameserver
	// NetRoleNTPServer is an honest pool NTP server.
	NetRoleNTPServer = netem.RoleNTPServer
	// NetRoleClient is a victim NTP (or Chronos) client.
	NetRoleClient = netem.RoleClient
	// NetRoleAny is the role wildcard for topology links.
	NetRoleAny = netem.RoleAny
)

// Topology entry points.
var (
	// NewNetTopology returns an empty topology (every link follows its
	// Default path).
	NewNetTopology = netem.NewTopology
	// NetTopologyPreset returns a fresh named topology preset
	// (uniform, near-attacker, far-attacker, colo).
	NetTopologyPreset = netem.TopologyPreset
	// NetTopologyNames lists the built-in topology presets, sorted.
	NetTopologyNames = netem.TopologyNames
	// NetTopologyDescription returns a preset's one-line description.
	NetTopologyDescription = netem.TopologyDescription
	// NetTopologyFromSpec builds a topology from a preset name plus
	// per-side profile overrides (the topo/atk-net/cli-net code path).
	NetTopologyFromSpec = netem.TopologyFromSpec
)

// Network-condition emulation entry points.
var (
	// NetProfile returns a fresh PathModel for a named profile
	// (lab, lan, wan, transcontinental, lossy-wifi, congested).
	NetProfile = netem.Profile
	// NetProfileNames lists the built-in profile names, sorted.
	NetProfileNames = netem.ProfileNames
	// NetProfileDescription returns a profile's one-line description.
	NetProfileDescription = netem.ProfileDescription
	// NetPathFromSpec builds a PathModel from a profile name plus
	// optional rtt/loss overrides (the `-param net=...` code path).
	NetPathFromSpec = netem.FromSpec
)

// NetNoLossOverride keeps a profile's own loss model when passed as
// NetPathFromSpec's loss argument.
const NetNoLossOverride = netem.NoLossOverride

// Attack experiment runners and results.
type (
	// BootTimeResult reports a §IV-A boot-time attack.
	BootTimeResult = core.BootTimeResult
	// RuntimeResult reports a §IV-B run-time attack.
	RuntimeResult = core.RuntimeResult
	// RuntimeScenario selects P1 (upstreams known) or P2 (RefID discovery).
	RuntimeScenario = core.RuntimeScenario
	// ChronosResult reports a §VI-C Chronos attack.
	ChronosResult = core.ChronosResult
	// TableIRow / TableIIRow are evaluation-table rows.
	TableIRow  = core.TableIRow
	TableIIRow = core.TableIIRow
)

// Attack runners.
var (
	// RunBootTimeAttack executes the boot-time attack (Figure 2).
	RunBootTimeAttack = core.RunBootTimeAttack
	// RunRuntimeAttack executes the run-time attack (Figure 3).
	RunRuntimeAttack = core.RunRuntimeAttack
	// RunChronosAttack executes the Chronos pool-poisoning attack
	// (Figure 4).
	RunChronosAttack = core.RunChronosAttack
	// TableI regenerates the client applicability matrix.
	TableI = core.TableI
	// TableII regenerates the run-time attack durations.
	TableII = core.TableII
)

// Run-time attack scenarios.
const (
	ScenarioP1 = core.ScenarioP1
	ScenarioP2 = core.ScenarioP2
)

// Scenario registry: the uniform catalogue of every experiment (DESIGN.md
// §6). Each table, figure and scan registers a Scenario whose Run(seed,
// cfg) returns a flat, JSON-stable metric map, so generic machinery — the
// campaign engine, the CLI, the DESIGN.md §4 index generator — operates
// on all of them.
type (
	// Scenario is one registered experiment.
	Scenario = scenario.Scenario
	// ScenarioResult is one seeded scenario run outcome.
	ScenarioResult = scenario.Result
	// ScenarioConfig tunes a run (Fast shrinks the largest populations;
	// Params overrides a parameterisable scenario's defaults).
	ScenarioConfig = scenario.Config
	// ScenarioParams parameterises a scenario variant (k=v overrides,
	// validated against the scenario's ParamKeys).
	ScenarioParams = scenario.Params
)

// Scenario registry access.
var (
	// Scenarios lists every registered scenario in paper order.
	Scenarios = scenario.All
	// LookupScenario finds a scenario by its registry name.
	LookupScenario = scenario.Lookup
	// ScenarioNames lists the registered names in paper order.
	ScenarioNames = scenario.Names
	// RunScenario executes one registered scenario at one seed.
	RunScenario = scenario.Run
	// ParseScenarioParams parses "key=value" pairs (repeated CLI -param
	// flags) into ScenarioParams.
	ParseScenarioParams = scenario.ParseParams
	// ScenarioIndexMarkdown renders the DESIGN.md §4 experiment index
	// from the registry.
	ScenarioIndexMarkdown = scenario.MarkdownIndex
)

// Campaign engine: parallel multi-seed experiment fan-out (see DESIGN.md
// §7 "Engine contract"). An Engine runs any registered scenario —
// optionally parameterised — across N independent seeds on a worker pool,
// streams per-seed results in completion order, folds a deterministic
// seed-order aggregate whose bytes do not depend on the worker count,
// honours context cancellation (partial aggregate, workers drained) and
// checkpoints/resumes itself across interruptions.
type (
	// Engine is the unified campaign execution surface.
	Engine = campaign.Engine
	// EngineOption configures an Engine (see the With* options).
	EngineOption = campaign.Option
	// CampaignStream is a running campaign's per-seed result stream.
	CampaignStream = campaign.Stream
	// ScenarioAggregate is a scenario campaign's folded statistics.
	ScenarioAggregate = campaign.ScenarioAggregate
	// MetricSummary aggregates one named metric across a campaign.
	MetricSummary = campaign.MetricSummary
	// CampaignTableIRow is one aggregated Table I row.
	CampaignTableIRow = campaign.TableIRow
	// CampaignTableIOptions sizes a Table I campaign.
	CampaignTableIOptions = campaign.TableIOptions

	// CampaignSpec describes one campaign (attack kind, client profile,
	// LabConfig template, seed range, worker count).
	//
	// Deprecated: express the attack as a parameterised scenario run via
	// NewEngine and WithParams.
	CampaignSpec = campaign.Spec
	// CampaignKind selects the attack a campaign repeats.
	CampaignKind = campaign.Kind
	// CampaignResult is one per-seed run outcome.
	CampaignResult = campaign.Result
	// CampaignAggregate is a campaign's folded statistics.
	CampaignAggregate = campaign.Aggregate
	// ScenarioCampaignOptions sizes a campaign over a registered scenario.
	//
	// Deprecated: use NewEngine with Options.
	ScenarioCampaignOptions = campaign.ScenarioOptions
)

// Campaign attack kinds.
const (
	CampaignBootTime = campaign.BootTime
	CampaignRuntime  = campaign.Runtime
	CampaignChronos  = campaign.Chronos
)

// Engine constructor and functional options.
var (
	// NewEngine builds a campaign Engine from options; Run(ctx, name)
	// blocks for the aggregate, Stream(ctx, name) yields per-seed results.
	NewEngine = campaign.NewEngine
	// WithSeeds sets the number of independent seeds (default 16).
	WithSeeds = campaign.WithSeeds
	// WithBaseSeed sets the first seed; an explicit 0 is honoured.
	WithBaseSeed = campaign.WithBaseSeed
	// WithWorkers caps concurrent runs (default GOMAXPROCS).
	WithWorkers = campaign.WithWorkers
	// WithFast shrinks the slowest scenarios' populations.
	WithFast = campaign.WithFast
	// WithParams merges scenario param overrides into every run.
	WithParams = campaign.WithParams
	// WithParam sets one scenario param override.
	WithParam = campaign.WithParam
	// WithProgress installs a completion-order progress callback.
	WithProgress = campaign.WithProgress
	// WithCheckpoint writes a JSONL line per completed seed to a file.
	WithCheckpoint = campaign.WithCheckpoint
	// WithResume skips seeds already recorded in a checkpoint file.
	WithResume = campaign.WithResume
	// WithResumeForce accepts a checkpoint written by a different VCS
	// revision (refused by default — the seeds may not reproduce).
	WithResumeForce = campaign.WithResumeForce
	// WithTraceDir writes one deterministic Chrome trace_event file per
	// executed seed (viewable in Perfetto) into a directory.
	WithTraceDir = campaign.WithTraceDir
	// WithTracerFactory installs a per-seed tracer source (see
	// internal/obs for the tracing contract).
	WithTracerFactory = campaign.WithTracerFactory
)

// Adaptive phase-boundary search (DESIGN.md §13): locate where a
// scenario's success collapses without sweeping exhaustive grids.
// SearchBisect brackets the threshold of a monotone success-vs-parameter
// axis in O(log) probe campaigns; SearchGrid sweeps a parameter matrix
// with Wilson-interval pruning and optional Latin-hypercube subsampling.
// Every probe runs through the campaign Engine, and search output is
// byte-identical at any worker count (`experiments search`).
type (
	// SearchAxis is one monotone success-vs-parameter dimension.
	SearchAxis = search.Axis
	// SearchKind selects an axis's unit system (duration or fraction).
	SearchKind = search.Kind
	// SearchOptions configures the probe campaigns of a search.
	SearchOptions = search.Options
	// SearchGridOptions configures a pruned grid sweep.
	SearchGridOptions = search.GridOptions
	// SearchDim is one dimension of a grid sweep.
	SearchDim = search.Dim
	// SearchProbe is one evaluated probe campaign.
	SearchProbe = search.Probe
	// SearchCell is one evaluated grid cell.
	SearchCell = search.Cell
	// SearchBisectResult is a completed threshold bisection.
	SearchBisectResult = search.BisectResult
	// SearchGridResult is a completed grid sweep.
	SearchGridResult = search.GridResult
)

// Search axis unit systems.
const (
	SearchKindDuration = search.KindDuration
	SearchKindFraction = search.KindFraction
)

// Search entry points.
var (
	// SearchBisect locates a monotone axis's collapse threshold.
	SearchBisect = search.Bisect
	// SearchGrid sweeps a parameter matrix with early pruning.
	SearchGrid = search.Grid
	// SearchDefaultAxis returns a scenario's built-in search axis.
	SearchDefaultAxis = search.DefaultAxis
	// SearchParseValue parses an axis value into native units.
	SearchParseValue = search.ParseValue
	// SearchParseKind parses an axis kind name.
	SearchParseKind = search.ParseKind
)

// Campaign runners.
var (
	// CampaignTableI aggregates Table I over a whole seed range.
	CampaignTableI = campaign.TableI

	// RunCampaign fans one attack spec out across N seeds.
	//
	// Deprecated: use NewEngine with WithParams ("boot", "runtime" and
	// "chronos" are parameterisable scenarios).
	RunCampaign = campaign.Run
	// RunScenarioCampaign fans any registered scenario out across N seeds.
	//
	// Deprecated: use NewEngine(...).Run(ctx, name).
	RunScenarioCampaign = campaign.RunScenario
)

// NTP client behaviour profiles (Table I).
type Profile = ntpclient.Profile

// The seven evaluated implementations.
var (
	ProfileNTPd      = ntpclient.ProfileNTPd
	ProfileChrony    = ntpclient.ProfileChrony
	ProfileOpenNTPD  = ntpclient.ProfileOpenNTPD
	ProfileNtpdate   = ntpclient.ProfileNtpdate
	ProfileAndroid   = ntpclient.ProfileAndroid
	ProfileNtpclient = ntpclient.ProfileNtpclient
	ProfileSystemd   = ntpclient.ProfileSystemd
	// AllProfiles lists every profile with its pool.ntp.org usage share.
	AllProfiles = ntpclient.AllProfiles
	// ProfileByName resolves a client-profile name as the CLIs and
	// parameterised scenarios spell it ("ntpd", "chrony", …).
	ProfileByName = ntpclient.ProfileByName
)

// Probability analysis (§V-B, Table III).
var (
	// P1 and P2 are the run-time attack success probabilities.
	P1 = analysis.P1
	P2 = analysis.P2
	// TableIII computes all Table III rows.
	TableIII = analysis.TableIII
	// RemovalThreshold is n(m), the associations to remove.
	RemovalThreshold = analysis.RemovalThreshold
)

// DefaultPRate is the measured rate-limiting fraction (38%).
const DefaultPRate = analysis.DefaultPRate

// Chronos analysis (§VI).
var (
	// ChronosAttackBound computes the N ≤ 11 bound.
	ChronosAttackBound = chronos.AttackBound
	// ChronosControlsPool checks the 2/3 control condition.
	ChronosControlsPool = chronos.ControlsPool
)

// Measurement harness (§VII, §VIII).
var (
	// RateLimitScan reproduces the §VII-A pool scan.
	RateLimitScan = measure.RateLimitScan
	// DefaultScanConfig is the paper's 64-queries-at-1/s methodology.
	DefaultScanConfig = measure.DefaultScanConfig
	// FragScan reproduces §VII-B / Figure 5.
	FragScan = measure.FragScan
	// CacheSnoop reproduces Table IV / Figure 6.
	CacheSnoop = measure.CacheSnoop
	// AdStudy reproduces Table V.
	AdStudy = measure.AdStudy
	// SharedResolverStudy reproduces §VIII-B3.
	SharedResolverStudy = measure.SharedResolverStudy
	// TimingSideChannel reproduces Figure 7.
	TimingSideChannel = measure.TimingSideChannel
)

// Synthetic populations backing the measurements.
var (
	GeneratePool                  = population.GeneratePool
	DefaultPoolConfig             = population.DefaultPoolConfig
	GeneratePoolNameservers       = population.GeneratePoolNameservers
	DefaultPoolNameserverConfig   = population.DefaultPoolNameserverConfig
	GenerateDomainNameservers     = population.GenerateDomainNameservers
	DefaultDomainNameserverConfig = population.DefaultDomainNameserverConfig
	GenerateOpenResolvers         = population.GenerateOpenResolvers
	DefaultOpenResolverConfig     = population.DefaultOpenResolverConfig
	GenerateAdClients             = population.GenerateAdClients
	DefaultAdStudyConfig          = population.DefaultAdStudyConfig
	GenerateSharedResolvers       = population.GenerateSharedResolvers
	DefaultSharedResolverConfig   = population.DefaultSharedResolverConfig
	DefaultTimingProbeConfig      = population.DefaultTimingProbeConfig
)

// Resident experiment service (DESIGN.md §11): a long-running HTTP API
// over the campaign Engine with a bounded job queue, streamed per-seed
// results, a content-addressed aggregate cache, per-client rate limiting
// and graceful drain (`experiments serve`).
type (
	// ExperimentServer is a resident experiment service instance.
	ExperimentServer = serve.Server
	// ExperimentServerConfig sizes a resident experiment service.
	ExperimentServerConfig = serve.Config
	// ExperimentRateLimiter is the service's per-client token bucket.
	ExperimentRateLimiter = serve.Limiter
	// CampaignJobSpec is one submitted campaign: scenario, params, seed
	// range and fast flag, with a canonical content-addressed Key.
	CampaignJobSpec = campaign.JobSpec
)

// Service constructors.
var (
	// NewExperimentServer builds a resident experiment service and starts
	// its dispatcher; mount Handler on an http.Server and drain with
	// Shutdown.
	NewExperimentServer = serve.New
	// NewExperimentRateLimiter builds a per-client token-bucket limiter
	// with an injectable clock.
	NewExperimentRateLimiter = serve.NewLimiter
)
