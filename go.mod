module dnstime

go 1.24
