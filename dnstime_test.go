// Integration tests exercising the public facade end to end.
package dnstime_test

import (
	"testing"
	"time"

	"dnstime"
)

func TestFacadeQuickstartFlow(t *testing.T) {
	lab := dnstime.MustNewLab(dnstime.LabConfig{Seed: 100})
	if err := lab.PoisonResolver(86400); err != nil {
		t.Fatalf("PoisonResolver: %v", err)
	}
	client, err := lab.NewClient(dnstime.ProfileNTPd, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := client.Start(); err != nil {
		t.Fatal(err)
	}
	lab.Clock.RunFor(30 * time.Minute)
	off := client.ClockOffset()
	if off > -400*time.Second || off < -600*time.Second {
		t.Errorf("offset = %v, want ≈ −500 s", off)
	}
}

func TestFacadeCampaign(t *testing.T) {
	agg, err := dnstime.RunCampaign(dnstime.CampaignSpec{
		Kind:    dnstime.CampaignBootTime,
		Profile: dnstime.ProfileNTPd,
		Seeds:   4,
		Workers: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if agg.Runs != 4 || agg.Successes != 4 {
		t.Errorf("campaign = %d/%d shifted, want 4/4", agg.Successes, agg.Runs)
	}
	if agg.Label != "boot-time/NTPd" {
		t.Errorf("label = %q", agg.Label)
	}
}

func TestFacadeTableIII(t *testing.T) {
	rows := dnstime.TableIII(dnstime.DefaultPRate)
	if len(rows) != 9 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0].P1 < 37.9 || rows[0].P1 > 38.1 {
		t.Errorf("P1(1) = %.2f%%, want 38%%", rows[0].P1)
	}
}

func TestFacadeChronosBound(t *testing.T) {
	if got := dnstime.ChronosAttackBound(4, 89); got != 11 {
		t.Errorf("bound = %d, want 11", got)
	}
	if !dnstime.ChronosControlsPool(89, 133) {
		t.Error("2/3 control not recognised")
	}
}

func TestFacadeProfiles(t *testing.T) {
	profiles := dnstime.AllProfiles()
	if len(profiles) != 7 {
		t.Fatalf("profiles = %d, want 7", len(profiles))
	}
	names := map[string]bool{}
	for _, pu := range profiles {
		names[pu.Profile.Name] = true
	}
	for _, want := range []string{"NTPd", "chrony", "openntpd", "ntpdate", "Android", "ntpclient", "systemd-timesyncd"} {
		if !names[want] {
			t.Errorf("missing profile %q", want)
		}
	}
}

func TestFacadeDeterminism(t *testing.T) {
	run := func() time.Duration {
		res, err := dnstime.RunBootTimeAttack(dnstime.ProfileSystemd, dnstime.LabConfig{Seed: 77})
		if err != nil {
			t.Fatal(err)
		}
		return res.TimeToShift
	}
	a, b := run(), run()
	if a != b {
		t.Errorf("same seed produced different outcomes: %v vs %v", a, b)
	}
}

func TestFacadeMeasurementsSmoke(t *testing.T) {
	poolCfg := dnstime.DefaultPoolConfig()
	poolCfg.Servers = 60
	res, err := dnstime.RateLimitScan(dnstime.GeneratePool(poolCfg, 1), dnstime.DefaultScanConfig(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Servers != 60 {
		t.Errorf("servers = %d", res.Servers)
	}
	orCfg := dnstime.DefaultOpenResolverConfig()
	orCfg.Total = 5000
	snoop := dnstime.CacheSnoop(dnstime.GenerateOpenResolvers(orCfg, 1))
	if len(snoop.Rows) != 6 {
		t.Errorf("snoop rows = %d, want 6", len(snoop.Rows))
	}
}
