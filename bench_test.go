// Benchmarks regenerating every table and figure of the paper's evaluation
// (see DESIGN.md §4 for the experiment index and EXPERIMENTS.md for
// paper-vs-measured values). Each benchmark reports the headline numbers as
// custom metrics so `go test -bench` output doubles as the results table.
// The measurement benchmarks run through the scenario registry
// (dnstime.RunScenario), exercising the same entry points as
// `experiments campaigns`.
package dnstime_test

import (
	"context"
	"runtime"
	"strings"
	"testing"
	"time"

	"dnstime"
	"dnstime/internal/attack"
	"dnstime/internal/chronos"
	"dnstime/internal/core"
	"dnstime/internal/dnswire"
	"dnstime/internal/ipv4"
	"dnstime/internal/simclock"
)

// campaignSeeds sizes the campaign benchmarks: the acceptance workload is
// 64 seeds (DESIGN.md §4).
const campaignSeeds = 64

// benchCampaignTableI runs a 64-seed Table I campaign at the given worker
// count and reports runs/sec plus the aggregate headline numbers. Compare
// BenchmarkCampaignTableI against BenchmarkCampaignTableISerial for the
// parallel speedup (>2× expected on a multi-core runner).
func benchCampaignTableI(b *testing.B, workers int) {
	profiles := len(dnstime.AllProfiles())
	var vulnerable int
	for i := 0; i < b.N; i++ {
		rows, err := dnstime.CampaignTableI(dnstime.CampaignTableIOptions{
			Seeds:   campaignSeeds,
			Workers: workers,
		})
		if err != nil {
			b.Fatal(err)
		}
		vulnerable = 0
		for _, r := range rows {
			if r.Boot.Successes == r.Boot.Runs {
				vulnerable++
			}
		}
	}
	b.ReportMetric(float64(vulnerable), "boot-vulnerable")
	b.ReportMetric(float64(b.N*campaignSeeds*profiles)/b.Elapsed().Seconds(), "runs/sec")
	b.ReportMetric(float64(workers), "workers")
}

// BenchmarkCampaignTableI runs the 64-seed Table I campaign on all cores.
func BenchmarkCampaignTableI(b *testing.B) {
	b.ReportAllocs()
	benchCampaignTableI(b, runtime.GOMAXPROCS(0))
}

// BenchmarkCampaignTableISerial is the same campaign at -workers 1: the
// serial baseline the parallel engine must beat.
func BenchmarkCampaignTableISerial(b *testing.B) {
	b.ReportAllocs()
	benchCampaignTableI(b, 1)
}

// BenchmarkCampaignRuntime fans the §IV-B run-time attack (ntpd, P1)
// across 64 seeds through the Engine and reports runs/sec and the
// aggregate statistics.
func BenchmarkCampaignRuntime(b *testing.B) {
	b.ReportAllocs()
	var agg dnstime.ScenarioAggregate
	eng := dnstime.NewEngine(dnstime.WithSeeds(campaignSeeds))
	for i := 0; i < b.N; i++ {
		var err error
		agg, err = eng.Run(context.Background(), "runtime")
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(agg.SuccessRate, "success-pct")
	b.ReportMetric(float64(b.N*campaignSeeds)/b.Elapsed().Seconds(), "runs/sec")
}

// BenchmarkCampaignAllScenarios fans every registered scenario out across
// 4 seeds each (fast populations) through the Engine — the whole-registry
// campaign smoke run CI executes at -benchtime 1x so no scenario can rot
// out of the engine.
func BenchmarkCampaignAllScenarios(b *testing.B) {
	b.ReportAllocs()
	eng := dnstime.NewEngine(dnstime.WithSeeds(4), dnstime.WithFast(true))
	for i := 0; i < b.N; i++ {
		for _, sc := range dnstime.Scenarios() {
			agg, err := eng.Run(context.Background(), sc.Name)
			if err != nil {
				b.Fatalf("%s: %v", sc.Name, err)
			}
			if agg.Errors > 0 {
				b.Fatalf("%s: %d errored runs", sc.Name, agg.Errors)
			}
		}
	}
	b.ReportMetric(float64(len(dnstime.Scenarios())), "scenarios")
}

// BenchmarkNetProfileSweep fans the boot-time attack across every netem
// path profile (the netsweep scenario, DESIGN.md §8) and reports the
// per-profile success rate — attack robustness against path conditions
// as a benchmark metric.
func BenchmarkNetProfileSweep(b *testing.B) {
	b.ReportAllocs()
	eng := dnstime.NewEngine(dnstime.WithSeeds(8))
	totalRuns := 0
	for i := 0; i < b.N; i++ {
		agg, err := eng.Run(context.Background(), "netsweep")
		if err != nil {
			b.Fatal(err)
		}
		if agg.Errors > 0 {
			b.Fatalf("%d errored runs", agg.Errors)
		}
		totalRuns += agg.Runs
		for _, m := range agg.Metrics {
			if strings.HasPrefix(m.Name, "shifted/") {
				b.ReportMetric(100*m.Mean, strings.TrimPrefix(m.Name, "shifted/")+"-pct")
			}
		}
	}
	b.ReportMetric(float64(totalRuns*len(dnstime.NetProfileNames()))/b.Elapsed().Seconds(), "attacks/sec")
}

// BenchmarkEngineStream measures the streaming front end: a 64-seed
// boot-time campaign consumed result by result in completion order. The
// per-seed channel costs nothing measurable next to the runs themselves —
// streaming and blocking campaigns have the same throughput.
func BenchmarkEngineStream(b *testing.B) {
	b.ReportAllocs()
	eng := dnstime.NewEngine(dnstime.WithSeeds(campaignSeeds))
	for i := 0; i < b.N; i++ {
		st, err := eng.Stream(context.Background(), "boot")
		if err != nil {
			b.Fatal(err)
		}
		streamed := 0
		for range st.Results() {
			streamed++
		}
		agg, err := st.Wait()
		if err != nil || streamed != campaignSeeds || agg.Runs != campaignSeeds {
			b.Fatalf("streamed %d runs, aggregate %d, err %v", streamed, agg.Runs, err)
		}
	}
	b.ReportMetric(float64(b.N*campaignSeeds)/b.Elapsed().Seconds(), "runs/sec")
}

// BenchmarkTableIClientMatrix regenerates Table I: boot-time attack runs
// against all seven client profiles plus the run-time applicability
// classification.
func BenchmarkTableIClientMatrix(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rows, err := dnstime.TableI(dnstime.LabConfig{Seed: int64(i) + 1})
		if err != nil {
			b.Fatal(err)
		}
		boot, run := 0, 0
		for _, r := range rows {
			if r.BootTime == core.Yes {
				boot++
			}
			if r.RunTime == core.Yes {
				run++
			}
		}
		b.ReportMetric(float64(boot), "boot-vulnerable")
		b.ReportMetric(float64(run), "runtime-vulnerable")
	}
}

// BenchmarkTableIIAttackDuration regenerates Table II: the four run-time
// attack duration experiments (NTPd P2/P1, systemd[paper: "openntpd"] P1,
// chrony P1).
func BenchmarkTableIIAttackDuration(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rows, err := dnstime.TableII(dnstime.LabConfig{Seed: int64(i) + 1})
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			b.ReportMetric(r.Duration.Minutes(), r.Client+"/"+r.Scenario.String()+"-min")
		}
	}
}

// BenchmarkTableIIIProbabilities regenerates Table III (closed form plus a
// Monte-Carlo cross-check).
func BenchmarkTableIIIProbabilities(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rows := dnstime.TableIII(dnstime.DefaultPRate)
		if len(rows) != 9 {
			b.Fatal("bad table")
		}
		b.ReportMetric(rows[3].P2, "P2(m=4)-pct") // paper: 15.7
		b.ReportMetric(rows[5].P1, "P1(m=6)-pct") // paper: 2.1
	}
}

// scenarioMetric runs a registered scenario once and returns its metric
// map. The run seed offsets match what the pre-registry benchmarks used,
// except Figure 6, which now deliberately reads TTLs from the same
// population as table4 (200k resolvers at seed+11; it used to draw its
// own 100k population at seed+12).
func scenarioMetric(b *testing.B, name string, seed int64) dnstime.ScenarioResult {
	b.Helper()
	res, err := dnstime.RunScenario(context.Background(), name, seed, dnstime.ScenarioConfig{})
	if err != nil {
		b.Fatal(err)
	}
	return res
}

// BenchmarkTableIVResolverCache regenerates Table IV: RD=0 cache snooping
// over the open-resolver population, via the table4 scenario.
func BenchmarkTableIVResolverCache(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res := scenarioMetric(b, "table4", int64(i))
		b.ReportMetric(res.Metrics["cached_pct/pool.ntp.org IN A"], "poolA-cached-pct") // paper: 69.41
		b.ReportMetric(res.Metrics["verified"], "verified")
	}
}

// BenchmarkTableVAdStudy regenerates Table V: the ad-network client study,
// via the table5 scenario.
func BenchmarkTableVAdStudy(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res := scenarioMetric(b, "table5", int64(i))
		b.ReportMetric(res.Metrics["tiny_pct/ALL"], "ALL-tiny-pct")     // paper: 64.00
		b.ReportMetric(res.Metrics["any_pct/ALL"], "ALL-any-pct")       // paper: 90.99
		b.ReportMetric(res.Metrics["dnssec_min_pct"], "dnssec-min-pct") // paper: 19.14
		b.ReportMetric(res.Metrics["dnssec_max_pct"], "dnssec-max-pct") // paper: 28.94
	}
}

// BenchmarkFigure5FragmentCDF regenerates Figure 5: the CDF of minimum
// fragment sizes over the popular-domain nameserver population, via the
// fig5 scenario.
func BenchmarkFigure5FragmentCDF(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res := scenarioMetric(b, "fig5", int64(i))
		b.ReportMetric(res.Metrics["cdf_pct/292B"], "cdf-292-pct")            // paper: 7.05
		b.ReportMetric(res.Metrics["cdf_pct/548B"], "cdf-548-pct")            // paper: 83.2
		b.ReportMetric(res.Metrics["frag_nodnssec_pct"], "frag-nodnssec-pct") // paper: 7.66
	}
}

// BenchmarkFigure6TTLDistribution regenerates Figure 6: remaining TTLs of
// cached pool records (uniform on [0,150]), via the fig6 scenario.
func BenchmarkFigure6TTLDistribution(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res := scenarioMetric(b, "fig6", int64(i))
		b.ReportMetric(res.Metrics["ttl_samples"], "ttl-samples")
		b.ReportMetric(res.Metrics["ttl_mean_s"], "ttl-mean-s")     // uniform on [0,150] → ≈75
		b.ReportMetric(res.Metrics["ttl_median_s"], "ttl-median-s") // ≈75
	}
}

// BenchmarkFigure7TimingSideChannel regenerates Figure 7: the t_first−t_avg
// latency-difference distribution and its lack of a clean threshold, via
// the fig7 scenario.
func BenchmarkFigure7TimingSideChannel(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res := scenarioMetric(b, "fig7", int64(i))
		b.ReportMetric(res.Metrics["samples"], "samples")
		b.ReportMetric(res.Metrics["clamped_under"]+res.Metrics["clamped_over"], "clamped-tails")
	}
}

// BenchmarkRateLimitScan regenerates §VII-A: the live 2432-server pool scan
// (33% KoD, 38% stop responding), via the ratelimit scenario.
func BenchmarkRateLimitScan(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res := scenarioMetric(b, "ratelimit", int64(i))
		b.ReportMetric(res.Metrics["rate_limited_pct"], "ratelimited-pct") // paper: 38
		b.ReportMetric(res.Metrics["kod_pct"], "kod-pct")                  // paper: 33
	}
}

// BenchmarkNameserverFragScan regenerates §VII-B: 16/30 pool nameservers
// fragment below 548 B, none signed, via the nsfrag scenario.
func BenchmarkNameserverFragScan(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res := scenarioMetric(b, "nsfrag", int64(i))
		b.ReportMetric(res.Metrics["frag_below_548"], "frag-below-548") // paper: 16
		b.ReportMetric(res.Metrics["dnssec"], "dnssec")                 // paper: 0
	}
}

// BenchmarkSharedResolverStudy regenerates §VIII-B3: the 13.8% of web-client
// resolvers whose queries the attacker can trigger, via the shared
// scenario.
func BenchmarkSharedResolverStudy(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res := scenarioMetric(b, "shared", int64(i))
		b.ReportMetric(res.Metrics["triggerable_pct"], "triggerable-pct") // paper: 13.8
	}
}

// BenchmarkChronosAttackBound regenerates §VI-C: the N ≤ 11 bound and a full
// pool-generation poisoning run, via the chronos scenario.
func BenchmarkChronosAttackBound(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if n := dnstime.ChronosAttackBound(4, 89); n != 11 {
			b.Fatalf("bound = %d", n)
		}
		res := scenarioMetric(b, "chronos", int64(i)+9)
		b.ReportMetric(res.Metrics["pool_size"], "pool-size")
		b.ReportMetric(boolMetric(res.Success != nil && *res.Success), "shifted")
	}
}

// BenchmarkRuntimeShift500s regenerates §V-A2: the −500 s run-time shift
// against an ntpd-profile client.
func BenchmarkRuntimeShift500s(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := dnstime.RunRuntimeAttack(dnstime.ProfileNTPd, dnstime.ScenarioP1, dnstime.LabConfig{Seed: int64(i) + 4})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.ClockOffset.Seconds(), "final-offset-s") // paper: −500
		b.ReportMetric(boolMetric(res.Succeeded), "succeeded")
	}
}

// BenchmarkBootTimePlanting regenerates §IV-A: the 30-second planting loop
// needs at most 5 spoofed fragments per 150 s TTL window and stays low
// volume.
func BenchmarkBootTimePlanting(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		lab := dnstime.MustNewLab(dnstime.LabConfig{Seed: int64(i) + 11})
		campaign := lab.StartPoisonCampaign(30*time.Second, 0)
		lab.Clock.RunFor(150 * time.Second)
		campaign.Stop()
		b.ReportMetric(float64(campaign.Rounds), "rounds-per-ttl") // paper: ≤5
		b.ReportMetric(float64(lab.Eve.InjectedPackets), "packets-per-ttl")
	}
}

// BenchmarkPoisoningPipeline measures the §III unit pipeline: template →
// malicious twin → spoofed fragments with fixed checksum.
func BenchmarkPoisoningPipeline(b *testing.B) {
	b.ReportAllocs()
	// Build a representative padded pool response template once.
	q := dnswire.NewQuery(1, "pool.ntp.org", dnswire.TypeA, true)
	r := dnswire.NewResponse(q)
	for i := 0; i < 8; i++ {
		r.Answers = append(r.Answers, dnswire.RR{
			Name: "pool.ntp.org", Type: dnswire.TypeA, TTL: 150,
			Addr: ipv4.Addr{10, 0, 0, byte(i + 1)},
		})
	}
	r.Additional = append(r.Additional, dnswire.RR{
		Name: "pool.ntp.org", Type: dnswire.TypeTXT, TTL: 0,
		Text: string(make([]byte, 0, 0)) + paddingText(240),
	})
	template, err := r.Marshal()
	if err != nil {
		b.Fatal(err)
	}
	evil := []ipv4.Addr{{6, 6, 6, 6}}
	ipids := []uint16{1, 2, 3, 4, 5, 6, 7, 8}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		frags, err := attack.BuildSpoofedFragments(attack.PoisonPlan{
			NS:       core.NSAddr,
			Resolver: core.ResolverAddr,
			Template: template, Malicious: evil, MTU: 68, IPIDs: ipids,
		})
		if err != nil {
			b.Fatal(err)
		}
		if len(frags) != len(ipids) {
			b.Fatal("wrong fragment count")
		}
	}
}

func paddingText(n int) string {
	buf := make([]byte, n)
	for i := range buf {
		buf[i] = 'p'
	}
	return string(buf)
}

// BenchmarkAblationDefragTimeout measures attack-relevant defrag-cache
// behaviour across reassembly timeouts (DESIGN.md §5): how long a planted
// fragment survives awaiting the real first fragment.
func BenchmarkAblationDefragTimeout(b *testing.B) {
	b.ReportAllocs()
	timeouts := []time.Duration{30 * time.Second, 60 * time.Second, 120 * time.Second}
	for i := 0; i < b.N; i++ {
		for _, to := range timeouts {
			clk := simclock.New(time.Date(2020, 1, 1, 0, 0, 0, 0, time.UTC))
			r := ipv4.NewReassembler(clk, ipv4.ReassemblyPolicy{Timeout: to, MaxPerPair: 64, Overlap: ipv4.FirstWins})
			frag := &ipv4.Packet{
				Src: core.NSAddr, Dst: core.ResolverAddr, ID: 1,
				Proto: ipv4.ProtoUDP, FragOff: 48,
				Payload: make([]byte, 64),
			}
			r.Add(frag)
			clk.RunFor(to - time.Second)
			alive := r.PendingBuckets(core.NSAddr, core.ResolverAddr, ipv4.ProtoUDP)
			b.ReportMetric(float64(alive), "alive-at-"+to.String())
		}
	}
}

// BenchmarkAblationIPIDAllocator compares poisoning success across IPID
// allocation strategies (sequential vs per-destination vs random): the
// probe-and-extrapolate predictor only works against sequential counters.
func BenchmarkAblationIPIDAllocator(b *testing.B) {
	b.ReportAllocs()
	allocators := []struct {
		name  string
		alloc func() ipv4.IDAllocator
	}{
		{"sequential", func() ipv4.IDAllocator { return &ipv4.SequentialAllocator{} }},
		{"perdest", func() ipv4.IDAllocator { return &ipv4.PerDestAllocator{} }},
		{"random", func() ipv4.IDAllocator { return &ipv4.RandomAllocator{State: 99} }},
	}
	for i := 0; i < b.N; i++ {
		for _, tc := range allocators {
			// Probe stream as the attacker would see it.
			a := tc.alloc()
			probeDst := core.AttackerAddr
			var probes []uint16
			for p := 0; p < 4; p++ {
				probes = append(probes, a.Next(core.NSAddr, probeDst))
			}
			window := attack.PredictIPIDs(probes, 1, 16)
			// The next allocation toward the victim.
			actual := a.Next(core.NSAddr, core.ResolverAddr)
			hit := 0.0
			for _, id := range window {
				if id == actual {
					hit = 1
					break
				}
			}
			b.ReportMetric(hit, "hit-"+tc.name)
		}
	}
}

// BenchmarkChronosSamplingRounds measures the Chronos client's sampling
// round over a large pool (throughput of the core algorithm).
func BenchmarkChronosSamplingRounds(b *testing.B) {
	b.ReportAllocs()
	bound := chronos.AttackBound
	for i := 0; i < b.N; i++ {
		// Sweep the attack bound across response capacities (DESIGN.md §5
		// ablation: tolerable N vs addresses per spoofed response).
		for _, spoofed := range []int{20, 45, 89, 120} {
			n := bound(4, spoofed)
			b.ReportMetric(float64(n), "maxN-"+itoa(spoofed))
		}
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

func boolMetric(v bool) float64 {
	if v {
		return 1
	}
	return 0
}
