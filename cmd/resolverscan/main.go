// Command resolverscan runs the client-side attack-surface measurements of
// Section VIII: open-resolver cache snooping (Table IV, Figure 6), the
// ad-network client study (Table V), the shared-resolver discovery
// (§VIII-B3) and the timing side channel (Figure 7).
//
// Usage:
//
//	resolverscan [-resolvers 200000] [-seed 11]
package main

import (
	"flag"
	"fmt"
	"os"

	"dnstime"
	"dnstime/internal/stats"
)

func main() {
	resolvers := flag.Int("resolvers", 200000, "open-resolver population size")
	seed := flag.Int64("seed", 11, "deterministic seed")
	flag.Parse()
	if err := run(*resolvers, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "resolverscan:", err)
		os.Exit(1)
	}
}

func run(resolvers int, seed int64) error {
	cfg := dnstime.DefaultOpenResolverConfig()
	cfg.Total = resolvers
	fmt.Printf("cache-snooping %d open resolvers (RD=0)...\n\n", resolvers)
	res := dnstime.CacheSnoop(dnstime.GenerateOpenResolvers(cfg, seed))
	t := stats.NewTable("Query", "Cached %", "Cached", "Not Cached")
	for _, row := range res.Rows {
		t.AddRow(string(row.Record), row.CachedPct, row.Cached, row.NotCached)
	}
	fmt.Println(t)
	fmt.Printf("probed=%d verified=%d\n\n", res.Probed, res.Verified)

	fmt.Println("Figure 6: TTLs of cached pool records (uniform on [0,150] expected)")
	fmt.Println(res.TTLHistogram().Render(40))

	fmt.Println("Table V: ad-network client study")
	ad := dnstime.AdStudy(dnstime.GenerateAdClients(dnstime.DefaultAdStudyConfig(), seed+9))
	fmt.Print(ad.Render())
	fmt.Printf("DNSSEC validation: %.2f%%–%.2f%% (paper: 19.14%%–28.94%%)\n\n", ad.DNSSECMinPct, ad.DNSSECMaxPct)

	fmt.Println("§VIII-B3: shared resolvers")
	sh := dnstime.SharedResolverStudy(dnstime.GenerateSharedResolvers(dnstime.DefaultSharedResolverConfig(), seed+21))
	fmt.Printf("  triggerable via SMTP/open queries: %.1f%% (paper: 13.8%%)\n\n", sh.TriggerablePct())

	fmt.Println("Figure 7: timing side channel t_first − t_avg (ms)")
	ts := dnstime.TimingSideChannel(dnstime.DefaultTimingProbeConfig(), seed+17)
	fmt.Println(ts.Histogram().Render(40))
	return nil
}
