// Command ntpscan runs the server-side attack-surface measurements of
// Section VII: the NTP rate-limiting scan and the nameserver fragmentation
// scan.
//
// Usage:
//
//	ntpscan [-servers 2432] [-seed 42]
package main

import (
	"flag"
	"fmt"
	"os"

	"dnstime"
)

func main() {
	servers := flag.Int("servers", 2432, "pool population size")
	seed := flag.Int64("seed", 42, "deterministic seed")
	flag.Parse()
	if err := run(*servers, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "ntpscan:", err)
		os.Exit(1)
	}
}

func run(servers int, seed int64) error {
	poolCfg := dnstime.DefaultPoolConfig()
	poolCfg.Servers = servers
	fmt.Printf("scanning %d pool.ntp.org servers (64 queries at 1/s each)...\n", servers)
	specs := dnstime.GeneratePool(poolCfg, seed)
	res, err := dnstime.RateLimitScan(specs, dnstime.DefaultScanConfig(), seed)
	if err != nil {
		return err
	}
	fmt.Printf("  KoD senders:      %4d (%5.1f%%, paper: 33%%)\n", res.KoDSenders, res.KoDPct())
	fmt.Printf("  stopped replying: %4d (%5.1f%%, paper: 38%%)\n", res.RateLimited, res.RateLimitedPct())

	fmt.Println("\nscanning pool.ntp.org nameservers for PMTUD/fragmentation...")
	ns := dnstime.GeneratePoolNameservers(dnstime.DefaultPoolNameserverConfig(), seed+3)
	f := dnstime.FragScan(ns, nil)
	fmt.Printf("  fragment below 548 B: %d of %d (paper: 16 of 30)\n", f.FragBelow548, f.Total)
	fmt.Printf("  DNSSEC-signed:        %d (paper: 0)\n", f.DNSSEC)

	fmt.Println("\nscanning popular-domain nameservers (Figure 5)...")
	dom := dnstime.GenerateDomainNameservers(dnstime.DefaultDomainNameserverConfig(), seed+5)
	fd := dnstime.FragScan(dom, nil)
	fmt.Printf("  fragmenting without DNSSEC: %.2f%% (paper: 7.66%%)\n", fd.FragNoDNSSECPct())
	for _, sz := range []float64{292, 548, 1276, 1500} {
		fmt.Printf("  CDF(%4.0f B) = %5.1f%%\n", sz, 100*fd.CumAt(sz))
	}
	return nil
}
