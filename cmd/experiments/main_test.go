package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"dnstime"
)

// TestRunFastTable1 smoke-tests the single-seed path the same way the CLI
// invokes it: experiments -fast -only table1.
func TestRunFastTable1(t *testing.T) {
	if err := run(1, true, "table1"); err != nil {
		t.Fatalf("run(-fast -only table1): %v", err)
	}
}

// TestRunCampaignsTable1 smoke-tests the campaigns subcommand and checks
// its rendered output names every client profile (the table1 scenario
// keys its metrics by client).
func TestRunCampaignsTable1(t *testing.T) {
	var out bytes.Buffer
	err := runCampaigns(context.Background(), []string{"-seeds", "4", "-workers", "8", "-only", "table1", "-q"}, &out)
	if err != nil {
		t.Fatalf("runCampaigns: %v", err)
	}
	for _, client := range []string{"NTPd", "chrony", "openntpd", "ntpdate", "Android", "ntpclient", "systemd-timesyncd"} {
		if !strings.Contains(out.String(), client) {
			t.Errorf("campaign output missing client %q:\n%s", client, out.String())
		}
	}
}

// TestRunCampaignsDeterministicForEveryScenario is the acceptance
// criterion at the CLI level: for every registered scenario,
// `experiments campaigns -only <name>` emits byte-identical output
// (including per-seed results) at -workers 1 and -workers 8.
func TestRunCampaignsDeterministicForEveryScenario(t *testing.T) {
	for _, name := range dnstime.ScenarioNames() {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			render := func(workers string) string {
				var out bytes.Buffer
				err := runCampaigns(context.Background(), []string{
					"-seeds", "2", "-fast", "-workers", workers,
					"-only", name, "-json", "-perrun", "-q",
				}, &out)
				if err != nil {
					t.Fatal(err)
				}
				return out.String()
			}
			if a, b := render("1"), render("8"); a != b {
				t.Errorf("output differs between -workers 1 and -workers 8:\n%s\nvs\n%s", a, b)
			}
		})
	}
}

// TestRunCampaignsAllScenariosByDefault: with no -only, the campaigns
// subcommand covers the whole registry in paper order.
func TestRunCampaignsAllScenariosByDefault(t *testing.T) {
	names, err := selectScenarios("")
	if err != nil {
		t.Fatal(err)
	}
	all := dnstime.ScenarioNames()
	if len(names) != len(all) {
		t.Fatalf("default selection = %v, want every registered scenario %v", names, all)
	}
	for i := range all {
		if names[i] != all[i] {
			t.Fatalf("default selection out of paper order: %v vs %v", names, all)
		}
	}
}

func TestRunCampaignsUnknownScenario(t *testing.T) {
	err := runCampaigns(context.Background(), []string{"-only", "sundial"}, io.Discard)
	if err == nil {
		t.Fatal("unknown scenario accepted")
	}
	if !strings.Contains(err.Error(), "sundial") {
		t.Errorf("error does not name the unknown scenario: %v", err)
	}
}

func TestRunCampaignsBadSeeds(t *testing.T) {
	for _, seeds := range []string{"0", "-3"} {
		if err := runCampaigns(context.Background(), []string{"-seeds", seeds}, nil); err == nil {
			t.Errorf("-seeds %s accepted", seeds)
		}
	}
	// A positional argument is almost always a forgotten -only; silently
	// ignoring it would run the entire registry.
	if err := runCampaigns(context.Background(), []string{"table4"}, nil); err == nil {
		t.Error("positional argument accepted")
	}
}

// TestRunCampaignsSeedZero: the Engine distinguishes an explicit -seed 0
// from the unset default, so campaign seed 0 is requestable (it used to
// be rejected because the old option struct could not express it).
func TestRunCampaignsSeedZero(t *testing.T) {
	var out bytes.Buffer
	err := runCampaigns(context.Background(), []string{
		"-seed", "0", "-seeds", "2", "-only", "boot", "-json", "-perrun", "-q",
	}, &out)
	if err != nil {
		t.Fatalf("runCampaigns -seed 0: %v", err)
	}
	if !strings.Contains(out.String(), `"base_seed": 0`) {
		t.Errorf("output does not echo base seed 0:\n%s", out.String())
	}
	if !strings.Contains(out.String(), `"seed": 0`) {
		t.Errorf("no per-run result for seed 0:\n%s", out.String())
	}
}

// TestRunBenchDocument: the bench subcommand emits a JSON document with
// one throughput entry per selected scenario and writes it to -o.
func TestRunBenchDocument(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	var stdout bytes.Buffer
	err := runBench(context.Background(), []string{
		"-seeds", "2", "-fast", "-only", "boot,table3", "-o", path,
	}, &stdout)
	if err != nil {
		t.Fatalf("runBench: %v", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var doc benchDoc
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("bench document does not parse: %v\n%s", err, data)
	}
	if doc.Seeds != 2 || len(doc.Scenarios) != 2 {
		t.Fatalf("doc = seeds %d, %d scenarios, want 2 and 2", doc.Seeds, len(doc.Scenarios))
	}
	for _, e := range doc.Scenarios {
		if e.Runs != 2 || e.Errors != 0 || e.RunsPerSec <= 0 {
			t.Errorf("%s: runs=%d errors=%d runs/sec=%f", e.Scenario, e.Runs, e.Errors, e.RunsPerSec)
		}
	}
	if doc.Scenarios[0].Scenario != "boot" || doc.Scenarios[0].SuccessRatePct == nil {
		t.Errorf("boot entry malformed: %+v", doc.Scenarios[0])
	}
	if doc.Scenarios[1].Scenario != "table3" || doc.Scenarios[1].SuccessRatePct != nil {
		t.Errorf("table3 entry malformed (closed-form scenarios report no success rate): %+v", doc.Scenarios[1])
	}
	if doc.TotalRunsPerSec <= 0 || doc.TotalSeconds <= 0 {
		t.Errorf("totals not reported: %+v", doc)
	}
}

// TestRunBenchBadArgs: the bench subcommand rejects unknown scenarios,
// bad seed counts and stray positional arguments.
func TestRunBenchBadArgs(t *testing.T) {
	for name, argv := range map[string][]string{
		"unknown scenario": {"-only", "sundial"},
		"zero seeds":       {"-seeds", "0"},
		"positional":       {"boot"},
	} {
		if err := runBench(context.Background(), argv, io.Discard); err == nil {
			t.Errorf("%s: accepted (argv %v)", name, argv)
		}
	}
}

// TestRunScenariosListsRegistry: the scenarios subcommand lists every
// registered scenario by name.
func TestRunScenariosListsRegistry(t *testing.T) {
	var out bytes.Buffer
	if err := runScenarios(nil, &out); err != nil {
		t.Fatal(err)
	}
	for _, name := range dnstime.ScenarioNames() {
		if !strings.Contains(out.String(), name) {
			t.Errorf("scenario listing missing %q:\n%s", name, out.String())
		}
	}
}

// TestRunScenariosMarkdown: -markdown emits exactly the registry index
// DESIGN.md embeds.
func TestRunScenariosMarkdown(t *testing.T) {
	var out bytes.Buffer
	if err := runScenarios([]string{"-markdown"}, &out); err != nil {
		t.Fatal(err)
	}
	if out.String() != dnstime.ScenarioIndexMarkdown() {
		t.Errorf("scenarios -markdown differs from ScenarioIndexMarkdown:\n%s", out.String())
	}
}

// TestReadmeCommandsParse extracts every `$ ...` command from README.md's
// code blocks and checks the experiments invocations against the real
// flag sets (and their -only lists against the registry), so documented
// commands cannot drift from the CLI.
func TestReadmeCommandsParse(t *testing.T) {
	data, err := os.ReadFile("../../README.md")
	if err != nil {
		t.Fatal(err)
	}
	cmds := shellCommands(string(data))
	if len(cmds) == 0 {
		t.Fatal("no `$ ...` commands found in README.md code blocks")
	}
	sawExperiments := false
	for _, cmd := range cmds {
		args := strings.Fields(cmd)
		switch args[0] {
		case "git", "cd", "ntpattack", "ntpscan", "resolverscan", "curl", "kill":
			// Other binaries (and setup lines, like the serve walkthrough's
			// curl session) are out of this checker's scope.
		case "go":
			if len(args) >= 3 && args[1] == "run" && strings.HasSuffix(args[2], "cmd/experiments") {
				sawExperiments = true
				checkExperimentsCommand(t, cmd, args[3:])
			}
		case "experiments":
			sawExperiments = true
			checkExperimentsCommand(t, cmd, args[1:])
		default:
			t.Errorf("README documents unknown command %q", cmd)
		}
	}
	if !sawExperiments {
		t.Error("README documents no experiments commands")
	}
}

// checkExperimentsCommand parses one documented experiments invocation
// with the CLI's own flag sets. Syntax summaries (lines with [optional]
// brackets or | alternatives) are skipped — only literal commands must
// parse.
func checkExperimentsCommand(t *testing.T, cmd string, args []string) {
	t.Helper()
	if strings.ContainsAny(cmd, "[|<>") {
		return
	}
	quietly := func(fs *flag.FlagSet) *flag.FlagSet {
		fs.SetOutput(io.Discard)
		return fs
	}
	var err error
	switch {
	case len(args) > 0 && args[0] == "campaigns":
		var cfg campaignConfig
		err = quietly(campaignFlagSet(&cfg)).Parse(args[1:])
		if err == nil {
			_, err = selectScenarios(cfg.only)
		}
	case len(args) > 0 && args[0] == "search":
		var cfg searchConfig
		err = quietly(searchFlagSet(&cfg)).Parse(args[1:])
		if err == nil && cfg.scenarioName != "" {
			if _, ok := dnstime.LookupScenario(cfg.scenarioName); !ok {
				err = fmt.Errorf("unknown scenario %q", cfg.scenarioName)
			}
		}
	case len(args) > 0 && args[0] == "scenarios":
		var markdown bool
		err = quietly(scenariosFlagSet(&markdown)).Parse(args[1:])
	case len(args) > 0 && args[0] == "serve":
		var cfg serveConfig
		err = quietly(serveFlagSet(&cfg)).Parse(args[1:])
	case len(args) > 0 && args[0] == "bench":
		var cfg benchConfig
		err = quietly(benchFlagSet(&cfg)).Parse(args[1:])
		if err == nil {
			_, err = selectScenarios(cfg.only)
		}
	default:
		var seed int64
		var fast bool
		var only string
		err = quietly(experimentsFlagSet(&seed, &fast, &only)).Parse(args)
	}
	if err != nil {
		t.Errorf("README command %q does not parse: %v", cmd, err)
	}
}

// shellCommands returns the `$ `-prefixed commands inside fenced code
// blocks, with trailing-backslash continuations joined.
func shellCommands(markdown string) []string {
	var cmds []string
	inFence := false
	cont := ""
	for _, line := range strings.Split(markdown, "\n") {
		trimmed := strings.TrimSpace(line)
		if strings.HasPrefix(trimmed, "```") {
			inFence = !inFence
			continue
		}
		if !inFence {
			continue
		}
		switch {
		case cont != "":
			joined := cont + " " + strings.TrimSpace(strings.TrimSuffix(trimmed, "\\"))
			if strings.HasSuffix(trimmed, "\\") {
				cont = joined
			} else {
				cmds = append(cmds, joined)
				cont = ""
			}
		case strings.HasPrefix(trimmed, "$ "):
			cmd := strings.TrimPrefix(trimmed, "$ ")
			if strings.HasSuffix(cmd, "\\") {
				cont = strings.TrimSpace(strings.TrimSuffix(cmd, "\\"))
			} else {
				cmds = append(cmds, cmd)
			}
		}
	}
	return cmds
}

// TestRunCampaignsParam: a -param override reaches the runs — a boot
// campaign at a −123 s target shift must report exactly that offset in
// its aggregate (the default campaign lands at −500 s).
func TestRunCampaignsParam(t *testing.T) {
	var out bytes.Buffer
	err := runCampaigns(context.Background(), []string{
		"-seeds", "2", "-only", "boot", "-param", "offset=-123s", "-q",
	}, &out)
	if err != nil {
		t.Fatalf("runCampaigns -param offset=-123s: %v", err)
	}
	if !strings.Contains(out.String(), "-123.00") {
		t.Errorf("offset_s metric does not reflect the -123 s param:\n%s", out.String())
	}
}

// TestRunCampaignsNetParamDeterministic: link randomness (loss bursts,
// latency jitter, reordering from a netem profile) derives from the
// campaign seed, never from worker scheduling — so a network-condition
// campaign is byte-identical at -workers 1 and -workers 8, per-seed
// results included.
func TestRunCampaignsNetParamDeterministic(t *testing.T) {
	for _, argv := range [][]string{
		{"-only", "boot", "-param", "net=lossy-wifi"},
		{"-only", "boot", "-param", "net=congested", "-param", "loss=0.05"},
		{"-only", "chronos", "-param", "net=transcontinental"},
		// Asymmetric role-based topologies: per-directed-link stateful
		// loss (cli-net=lossy-wifi) and the preset sweepers must stay
		// byte-identical across worker counts too.
		{"-only", "boot", "-param", "topo=near-attacker", "-param", "cli-net=lossy-wifi"},
		{"-only", "chronos", "-param", "topo=colo", "-param", "atk-net=lan"},
		{"-only", "racemargin", "-param", "vic-net=lossy-wifi"},
	} {
		argv := argv
		t.Run(strings.Join(argv, " "), func(t *testing.T) {
			t.Parallel()
			render := func(workers string) string {
				var out bytes.Buffer
				args := append([]string{"-seeds", "4", "-workers", workers, "-json", "-perrun", "-q"}, argv...)
				if err := runCampaigns(context.Background(), args, &out); err != nil {
					t.Fatal(err)
				}
				return out.String()
			}
			if a, b := render("1"), render("8"); a != b {
				t.Errorf("output differs between -workers 1 and -workers 8:\n%s\nvs\n%s", a, b)
			}
		})
	}
}

// TestRunCampaignsNetsweep: the netsweep campaign reports one success
// metric per netem profile — the per-profile success-rate table.
func TestRunCampaignsNetsweep(t *testing.T) {
	var out bytes.Buffer
	err := runCampaigns(context.Background(), []string{
		"-seeds", "2", "-only", "netsweep", "-q",
	}, &out)
	if err != nil {
		t.Fatalf("runCampaigns -only netsweep: %v", err)
	}
	for _, profile := range []string{"lab", "lan", "wan", "transcontinental", "lossy-wifi", "congested"} {
		if !strings.Contains(out.String(), "shifted/"+profile) {
			t.Errorf("netsweep output missing profile %q:\n%s", profile, out.String())
		}
	}
}

// TestRunCampaignsBadNetParam: an unknown profile or a malformed override
// is a per-run error, surfaced in the aggregate's error count (param
// *keys* are validated before the campaign; values are interpreted by the
// scenario's runs).
func TestRunCampaignsBadNetParam(t *testing.T) {
	for name, argv := range map[string][]string{
		"unknown profile":  {"-only", "boot", "-param", "net=dialup", "-seeds", "1"},
		"loss not a rate":  {"-only", "boot", "-param", "loss=2", "-seeds", "1"},
		"loss at sentinel": {"-only", "boot", "-param", "loss=-1", "-seeds", "1"},
		"rtt not a time":   {"-only", "boot", "-param", "rtt=fast", "-seeds", "1"},
	} {
		var out bytes.Buffer
		err := runCampaigns(context.Background(), argv, &out)
		if err == nil && !strings.Contains(out.String(), "errors 1") {
			t.Errorf("%s: run accepted without errors (argv %v):\n%s", name, argv, out.String())
		}
	}
}

// TestRunCampaignsTopoUniformByteIdentical is the tentpole's
// compatibility acceptance at the CLI level: a default-config campaign
// (no topology) and the same campaign under `topo=uniform` emit
// byte-identical per-seed results and aggregates at any worker count —
// the global Path really is the topology's uniform special case.
func TestRunCampaignsTopoUniformByteIdentical(t *testing.T) {
	render := func(workers string, params ...string) string {
		t.Helper()
		var out bytes.Buffer
		argv := append([]string{"-seeds", "4", "-workers", workers, "-only", "boot", "-json", "-perrun", "-q"}, params...)
		if err := runCampaigns(context.Background(), argv, &out); err != nil {
			t.Fatal(err)
		}
		// The -json envelope echoes the params; only the scenario
		// aggregates must match byte for byte.
		var doc campaignOutput
		if err := json.Unmarshal(out.Bytes(), &doc); err != nil {
			t.Fatal(err)
		}
		aggs, err := json.Marshal(doc.Scenarios)
		if err != nil {
			t.Fatal(err)
		}
		return string(aggs)
	}
	plain := render("1")
	for _, workers := range []string{"1", "8"} {
		if under := render(workers, "-param", "topo=uniform"); under != plain {
			t.Errorf("topo=uniform at -workers %s differs from the default campaign:\n%s\nvs\n%s",
				workers, under, plain)
		}
	}
}

// TestRunCampaignsTopoParam: a topology param reaches the runs — the
// netsweep topology axis reports preset-qualified metrics under
// topo=all, and an unknown preset is a per-run error.
func TestRunCampaignsTopoParam(t *testing.T) {
	var out bytes.Buffer
	err := runCampaigns(context.Background(), []string{
		"-seeds", "2", "-only", "netsweep", "-param", "topo=all", "-q",
	}, &out)
	if err != nil {
		t.Fatalf("netsweep topo=all: %v", err)
	}
	for _, key := range []string{"shifted/near-attacker/wan", "shifted/colo/lab", "shifted/far-attacker/congested"} {
		if !strings.Contains(out.String(), key) {
			t.Errorf("netsweep topo=all output missing %q:\n%s", key, out.String())
		}
	}
	// Param *keys* are validated up front; an unknown preset *value* is a
	// per-run error surfaced in the aggregate's error count.
	out.Reset()
	err = runCampaigns(context.Background(), []string{
		"-seeds", "1", "-only", "boot", "-param", "topo=backbone", "-q",
	}, &out)
	if err != nil {
		t.Fatalf("topo=backbone aborted the campaign instead of counting a per-run error: %v", err)
	}
	if !strings.Contains(out.String(), "errors 1") {
		t.Errorf("unknown preset not counted as a per-run error:\n%s", out.String())
	}
}

// TestRunCampaignsClientFlag: -client is shorthand for -param client=...
// (the parametrisation the campaigns CLI used to lack).
func TestRunCampaignsClientFlag(t *testing.T) {
	var out bytes.Buffer
	err := runCampaigns(context.Background(), []string{
		"-seeds", "2", "-only", "boot", "-client", "chrony", "-q",
	}, &out)
	if err != nil {
		t.Fatalf("runCampaigns -client chrony: %v", err)
	}
	if !strings.Contains(out.String(), "2/2 succeeded") {
		t.Errorf("chrony boot campaign output:\n%s", out.String())
	}
}

// TestRunCampaignsParamValidation: the param surface fails fast — on
// malformed pairs, on multi-scenario selections, on keys the scenario
// does not declare, and on -client colliding with -param client=.
func TestRunCampaignsParamValidation(t *testing.T) {
	cases := map[string][]string{
		"param without -only":      {"-param", "client=chrony"},
		"param with two scenarios": {"-only", "boot,chronos", "-param", "N=9"},
		"malformed pair":           {"-only", "boot", "-param", "client"},
		"undeclared key":           {"-only", "boot", "-param", "clinet=x", "-seeds", "1"},
		"param on no-param scenario": {
			"-only", "table4", "-param", "client=x", "-seeds", "1"},
		"client twice":             {"-only", "boot", "-client", "ntpd", "-param", "client=chrony"},
		"checkpoint without -only": {"-checkpoint", "x.jsonl"},
	}
	for name, argv := range cases {
		if err := runCampaigns(context.Background(), argv, io.Discard); err == nil {
			t.Errorf("%s: accepted (argv %v)", name, argv)
		}
	}
}

// TestRunCampaignsCheckpointResume: a checkpointed prefix campaign plus a
// -resume completion emits byte-identical -json output to one
// uninterrupted run.
func TestRunCampaignsCheckpointResume(t *testing.T) {
	path := filepath.Join(t.TempDir(), "boot.jsonl")
	render := func(argv ...string) string {
		t.Helper()
		var out bytes.Buffer
		argv = append(argv, "-only", "boot", "-json", "-perrun", "-q")
		if err := runCampaigns(context.Background(), argv, &out); err != nil {
			t.Fatal(err)
		}
		return out.String()
	}
	full := render("-seeds", "4")
	// Prefix run: seeds 1–2 recorded in the checkpoint.
	render("-seeds", "2", "-checkpoint", path)
	resumed := render("-seeds", "4", "-resume", path)
	if resumed != full {
		t.Errorf("resumed output differs from uninterrupted run:\n%s\nvs\n%s", resumed, full)
	}
}

// TestRunCampaignsInterrupted: a cancelled context (the CLI wires SIGINT
// to it) drains cleanly, prints the aggregate marked partial, and reports
// the interruption with a resume hint.
func TestRunCampaignsInterrupted(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	path := filepath.Join(t.TempDir(), "ck.jsonl")
	var out bytes.Buffer
	err := runCampaigns(ctx, []string{
		"-seeds", "4", "-only", "boot", "-checkpoint", path, "-q",
	}, &out)
	if err == nil || !strings.Contains(err.Error(), "interrupted") {
		t.Fatalf("err = %v, want interruption report", err)
	}
	if !strings.Contains(err.Error(), "-resume "+path) {
		t.Errorf("interruption report lacks resume hint: %v", err)
	}
	if !strings.Contains(out.String(), "partial") {
		t.Errorf("partial aggregate not rendered:\n%s", out.String())
	}
}
