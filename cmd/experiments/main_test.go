package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestRunFastTable1 smoke-tests the single-seed path the same way the CLI
// invokes it: experiments -fast -only table1.
func TestRunFastTable1(t *testing.T) {
	if err := run(1, true, "table1"); err != nil {
		t.Fatalf("run(-fast -only table1): %v", err)
	}
}

// TestRunCampaignsTable1 smoke-tests the campaigns subcommand and checks
// its rendered output names every client profile.
func TestRunCampaignsTable1(t *testing.T) {
	var out bytes.Buffer
	err := runCampaigns([]string{"-seeds", "4", "-workers", "8", "-only", "table1", "-q"}, &out)
	if err != nil {
		t.Fatalf("runCampaigns: %v", err)
	}
	for _, client := range []string{"NTPd", "chrony", "openntpd", "ntpdate", "Android", "ntpclient", "systemd-timesyncd"} {
		if !strings.Contains(out.String(), client) {
			t.Errorf("campaign output missing client %q:\n%s", client, out.String())
		}
	}
}

// TestRunCampaignsDeterministicOutput: the rendered campaign output is
// byte-identical across worker counts.
func TestRunCampaignsDeterministicOutput(t *testing.T) {
	render := func(workers string) string {
		var out bytes.Buffer
		err := runCampaigns([]string{"-seeds", "8", "-workers", workers, "-only", "table1,chronos", "-json", "-q"}, &out)
		if err != nil {
			t.Fatal(err)
		}
		return out.String()
	}
	if a, b := render("1"), render("8"); a != b {
		t.Errorf("output differs between -workers 1 and -workers 8:\n%s\nvs\n%s", a, b)
	}
}

func TestRunCampaignsBadClient(t *testing.T) {
	if err := runCampaigns([]string{"-client", "sundial"}, nil); err == nil {
		t.Error("unknown client accepted")
	}
}

func TestRunCampaignsBadSeeds(t *testing.T) {
	for _, seeds := range []string{"0", "-3"} {
		if err := runCampaigns([]string{"-seeds", seeds}, nil); err == nil {
			t.Errorf("-seeds %s accepted", seeds)
		}
	}
}
