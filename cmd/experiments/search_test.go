package main

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"testing"

	"dnstime"
)

// TestRunSearchRacemargin is the subsystem's acceptance criterion: the
// default racemargin search must land on the committed collapse bracket
// (EXPERIMENTS.md pins the threshold between −1.2s and −1.1s) within
// the ⌈log₂(bracket/resolution)⌉ = 5 probe budget, with byte-identical
// JSON at -workers 1 and -workers 4.
func TestRunSearchRacemargin(t *testing.T) {
	run := func(workers string) dnstime.SearchBisectResult {
		t.Helper()
		var out bytes.Buffer
		err := runSearch(context.Background(),
			[]string{"-scenario", "racemargin", "-workers", workers, "-json", "-q"}, &out)
		if err != nil {
			t.Fatal(err)
		}
		var res dnstime.SearchBisectResult
		if err := json.Unmarshal(out.Bytes(), &res); err != nil {
			t.Fatalf("search output is not JSON: %v\n%s", err, out.String())
		}
		return res
	}
	res := run("4")
	if res.Lo != "-1.2s" || res.Hi != "-1.1s" {
		t.Errorf("bracket (%s, %s], want (-1.2s, -1.1s]", res.Lo, res.Hi)
	}
	if res.Budget != 5 || len(res.Probes) > res.Budget {
		t.Errorf("%d probes against budget %d, want ≤5", len(res.Probes), res.Budget)
	}
	b4, _ := json.Marshal(res)
	b1, _ := json.Marshal(run("1"))
	if string(b1) != string(b4) {
		t.Errorf("-workers 1 and -workers 4 outputs differ:\n%s\nvs\n%s", b1, b4)
	}
}

// TestRunSearchGridCLI smoke-tests grid mode end to end: a margin ×
// client matrix over racemargin with staged pruning.
func TestRunSearchGridCLI(t *testing.T) {
	var out bytes.Buffer
	err := runSearch(context.Background(), []string{
		"-scenario", "racemargin",
		"-dim", "margin=-8s,28ms",
		"-dim", "client=ntpd,chrony",
		"-seeds", "4", "-prune-seeds", "2", "-json", "-q",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	var res dnstime.SearchGridResult
	if err := json.Unmarshal(out.Bytes(), &res); err != nil {
		t.Fatalf("grid output is not JSON: %v\n%s", err, out.String())
	}
	if len(res.Cells) != 4 {
		t.Fatalf("%d cells, want the 2×2 product", len(res.Cells))
	}
	for _, c := range res.Cells {
		// At −8s the attacker can never finish planting; at +28 ms the
		// near-attacker preset wins outright.
		if want := c.Params["margin"] == "28ms"; c.Success != want {
			t.Errorf("cell %v: success=%t, want %t", c.Params, c.Success, want)
		}
	}
}

// TestRunSearchTextOutput: the human rendering names the bracket and
// one row per probe.
func TestRunSearchTextOutput(t *testing.T) {
	var out bytes.Buffer
	err := runSearch(context.Background(), []string{
		"-scenario", "racemargin",
		"-lo", "-8s", "-hi", "0s", "-resolution", "4s",
		"-seeds", "2", "-q",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if s := out.String(); !strings.Contains(s, "collapse threshold inside (-4s, 0s]") {
		t.Errorf("text output lacks the bracket line:\n%s", s)
	}
}

// TestRunSearchErrors: flag-surface misuse fails before any campaign.
func TestRunSearchErrors(t *testing.T) {
	cases := map[string][]string{
		"no scenario":        {"-json"},
		"unknown scenario":   {"-scenario", "sundial"},
		"positional":         {"-scenario", "racemargin", "stray"},
		"zero seeds":         {"-scenario", "racemargin", "-seeds", "0"},
		"lhs without dim":    {"-scenario", "racemargin", "-lhs", "4"},
		"prune without dim":  {"-scenario", "racemargin", "-prune-seeds", "4"},
		"no built-in axis":   {"-scenario", "boot"},
		"bad dim":            {"-scenario", "racemargin", "-dim", "margins"},
		"bad lo":             {"-scenario", "racemargin", "-lo", "soon", "-hi", "0s", "-resolution", "1s"},
		"kind needs bracket": {"-scenario", "racemargin", "-kind", "fraction"},
		"bad target":         {"-scenario", "racemargin", "-target", "1.5", "-lo", "-2s", "-hi", "0s", "-resolution", "1s"},
		"client conflict":    {"-scenario", "racemargin", "-client", "ntpd", "-param", "client=chrony"},
	}
	for name, args := range cases {
		var out bytes.Buffer
		if err := runSearch(context.Background(), args, &out); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}
