package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"dnstime"
	"dnstime/internal/stats"
)

// searchConfig holds the parsed search-subcommand flags.
type searchConfig struct {
	scenarioName string
	key          string
	kind         string
	lo           string
	hi           string
	resolution   string
	falling      bool
	target       float64
	dims         repeatedFlag
	lhs          int
	pruneSeeds   int
	seeds        int
	workers      int
	baseSeed     int64
	fast         bool
	jsonOut      bool
	quiet        bool
	params       repeatedFlag
	client       string
	checkpoint   string
	resume       string
	force        bool
}

// searchFlagSet declares the search flag surface on a fresh FlagSet. The
// README command checker parses documented commands against the same
// set, so the docs cannot name flags the CLI does not have.
func searchFlagSet(cfg *searchConfig) *flag.FlagSet {
	fs := flag.NewFlagSet("search", flag.ContinueOnError)
	fs.StringVar(&cfg.scenarioName, "scenario", "", "registered scenario every probe campaign runs (required)")
	fs.StringVar(&cfg.key, "key", "", "swept scenario param (default: the scenario's built-in axis)")
	fs.StringVar(&cfg.kind, "kind", "", "axis unit system: duration or fraction (needs -lo/-hi/-resolution)")
	fs.StringVar(&cfg.lo, "lo", "", "bracket lower bound, where the scenario fails (e.g. -2s)")
	fs.StringVar(&cfg.hi, "hi", "", "bracket upper bound, where the scenario succeeds (e.g. 0s)")
	fs.StringVar(&cfg.resolution, "resolution", "", "stop once the bracket is this wide (e.g. 100ms)")
	fs.BoolVar(&cfg.falling, "falling", false, "success lies below the threshold instead of above")
	fs.Float64Var(&cfg.target, "target", 0.5, "success-rate threshold in (0,1) defining the boundary")
	fs.Var(&cfg.dims, "dim", "grid dimension as key=v1,v2,... (repeatable; selects grid mode)")
	fs.IntVar(&cfg.lhs, "lhs", 0, "Latin-hypercube subsample the grid to at most this many cells")
	fs.IntVar(&cfg.pruneSeeds, "prune-seeds", 0, "prune-stage seeds per grid cell (0 = no pruning)")
	fs.IntVar(&cfg.seeds, "seeds", 16, "seeds per probe campaign")
	fs.IntVar(&cfg.workers, "workers", 0, "concurrent workers per probe campaign (0 = GOMAXPROCS; output is identical at any count)")
	fs.Int64Var(&cfg.baseSeed, "seed", 1, "first seed of every probe campaign")
	fs.BoolVar(&cfg.fast, "fast", false, "shrink the slowest scenarios' populations")
	fs.BoolVar(&cfg.jsonOut, "json", false, "emit the search result as JSON")
	fs.BoolVar(&cfg.quiet, "q", false, "suppress per-probe progress on stderr")
	fs.Var(&cfg.params, "param", "fixed scenario param as key=value (repeatable)")
	fs.StringVar(&cfg.client, "client", "", "client profile param (shorthand for -param client=...)")
	fs.StringVar(&cfg.checkpoint, "checkpoint", "", "append every completed probe campaign to this JSONL file")
	fs.StringVar(&cfg.resume, "resume", "", "reuse probe campaigns recorded in this checkpoint file")
	fs.BoolVar(&cfg.force, "force", false, "resume a checkpoint written by a different build revision")
	return fs
}

// searchOptions lowers the parsed flags onto the search Options.
func (cfg *searchConfig) searchOptions() (dnstime.SearchOptions, error) {
	params, err := dnstime.ParseScenarioParams(cfg.params)
	if err != nil {
		return dnstime.SearchOptions{}, err
	}
	if cfg.client != "" {
		if _, dup := params["client"]; dup {
			return dnstime.SearchOptions{}, errors.New("-client and -param client=... are mutually exclusive")
		}
		if params == nil {
			params = dnstime.ScenarioParams{}
		}
		params["client"] = cfg.client
	}
	opt := dnstime.SearchOptions{
		Scenario:   cfg.scenarioName,
		Seeds:      cfg.seeds,
		BaseSeed:   cfg.baseSeed,
		Workers:    cfg.workers,
		Fast:       cfg.fast,
		Params:     params,
		Target:     cfg.target,
		Checkpoint: cfg.checkpoint,
		Resume:     cfg.resume,
		Force:      cfg.force,
	}
	if !cfg.quiet {
		opt.Progress = func(p dnstime.SearchProbe, done, total int) {
			from := "ran"
			if p.Cached {
				from = "resumed"
			}
			point := p.Value
			if point == "" {
				point = "cell"
			}
			fmt.Fprintf(os.Stderr, "probe %d/%d %s=%s: %d/%d succeeded (%s)\n",
				done, total, cfg.axisKeyLabel(), point, p.Successes, p.Runs, from)
		}
	}
	return opt, nil
}

// axisKeyLabel names the swept key for progress lines.
func (cfg *searchConfig) axisKeyLabel() string {
	if cfg.key != "" {
		return cfg.key
	}
	if ax, ok := dnstime.SearchDefaultAxis(cfg.scenarioName); ok {
		return ax.Key
	}
	return "value"
}

// searchAxis resolves the bisection axis: the scenario's built-in axis
// when one exists, overridden field-by-field from the flags. A -kind
// override changes the unit system, so it requires an explicit bracket.
func (cfg *searchConfig) searchAxis() (dnstime.SearchAxis, error) {
	ax, ok := dnstime.SearchDefaultAxis(cfg.scenarioName)
	explicit := cfg.lo != "" || cfg.hi != "" || cfg.resolution != ""
	if !ok && (cfg.key == "" || cfg.lo == "" || cfg.hi == "" || cfg.resolution == "") {
		return ax, fmt.Errorf("scenario %s has no built-in axis: -key, -lo, -hi and -resolution are required", cfg.scenarioName)
	}
	if cfg.kind != "" {
		k, err := dnstime.SearchParseKind(cfg.kind)
		if err != nil {
			return ax, err
		}
		if ok && !(cfg.lo != "" && cfg.hi != "" && cfg.resolution != "") {
			return ax, errors.New("-kind changes the axis units: -lo, -hi and -resolution are required with it")
		}
		ax.Kind = k
	}
	if cfg.key != "" {
		ax.Key = cfg.key
	}
	if explicit || !ok {
		var err error
		if ax.Lo, err = dnstime.SearchParseValue(ax.Kind, cfg.lo); err != nil {
			return ax, fmt.Errorf("-lo: %w", err)
		}
		if ax.Hi, err = dnstime.SearchParseValue(ax.Kind, cfg.hi); err != nil {
			return ax, fmt.Errorf("-hi: %w", err)
		}
		if ax.Step, err = dnstime.SearchParseValue(ax.Kind, cfg.resolution); err != nil {
			return ax, fmt.Errorf("-resolution: %w", err)
		}
	}
	ax.Falling = cfg.falling
	return ax, nil
}

// searchDims parses the repeated -dim flags into grid dimensions.
func (cfg *searchConfig) searchDims() ([]dnstime.SearchDim, error) {
	dims := make([]dnstime.SearchDim, 0, len(cfg.dims))
	for _, spec := range cfg.dims {
		key, list, ok := strings.Cut(spec, "=")
		if !ok || key == "" || list == "" {
			return nil, fmt.Errorf("-dim %q is not key=v1,v2,...", spec)
		}
		var values []string
		for _, v := range strings.Split(list, ",") {
			if v = strings.TrimSpace(v); v != "" {
				values = append(values, v)
			}
		}
		dims = append(dims, dnstime.SearchDim{Key: strings.TrimSpace(key), Values: values})
	}
	return dims, nil
}

// runSearch is the search subcommand: bisect a scenario's monotone
// success-vs-parameter axis to its collapse threshold (default), or —
// with -dim flags — sweep a parameter grid with Wilson-interval
// pruning. Every probe is a full multi-seed campaign through the
// Engine; output is byte-identical at any -workers count, and with
// -checkpoint/-resume an interrupted search skips completed probes.
func runSearch(ctx context.Context, argv []string, w io.Writer) error {
	var cfg searchConfig
	fs := searchFlagSet(&cfg)
	if err := fs.Parse(argv); err != nil {
		if err == flag.ErrHelp {
			return nil
		}
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected argument %q", fs.Arg(0))
	}
	if cfg.scenarioName == "" {
		return errors.New("-scenario is required")
	}
	if _, ok := dnstime.LookupScenario(cfg.scenarioName); !ok {
		return fmt.Errorf("unknown scenario %q (have: %s)",
			cfg.scenarioName, strings.Join(dnstime.ScenarioNames(), ", "))
	}
	if cfg.seeds <= 0 {
		return fmt.Errorf("-seeds must be positive (got %d)", cfg.seeds)
	}
	opt, err := cfg.searchOptions()
	if err != nil {
		return err
	}
	if len(cfg.dims) > 0 {
		dims, err := cfg.searchDims()
		if err != nil {
			return err
		}
		res, err := dnstime.SearchGrid(ctx, dims, dnstime.SearchGridOptions{
			Options:    opt,
			PruneSeeds: cfg.pruneSeeds,
			Samples:    cfg.lhs,
		})
		if err != nil {
			return err
		}
		return renderGrid(w, res, cfg.jsonOut)
	}
	if cfg.lhs > 0 || cfg.pruneSeeds > 0 {
		return errors.New("-lhs/-prune-seeds only apply to grid mode (add -dim)")
	}
	ax, err := cfg.searchAxis()
	if err != nil {
		return err
	}
	res, err := dnstime.SearchBisect(ctx, ax, opt)
	if err != nil {
		return err
	}
	return renderBisect(w, ax, res, cfg.jsonOut)
}

// renderBisect prints a bisection result as JSON or a probe table plus
// the bracket line.
func renderBisect(w io.Writer, ax dnstime.SearchAxis, res dnstime.SearchBisectResult, jsonOut bool) error {
	if jsonOut {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(res)
	}
	fmt.Fprintf(w, "== search %s: bisect %s over [%s, %s] at %s ==\n",
		res.Scenario, res.Key, ax.Format(ax.Lo), ax.Format(ax.Hi), ax.Format(ax.Step))
	t := stats.NewTable("probe", res.Key, "successes", "rate %", "95% CI %")
	for i, p := range res.Probes {
		t.AddRow(i+1, p.Value,
			fmt.Sprintf("%d/%d", p.Successes, p.Runs),
			fmt.Sprintf("%.1f", 100*p.Rate),
			fmt.Sprintf("%.1f–%.1f", 100*p.CI.Lo, 100*p.CI.Hi))
	}
	fmt.Fprintln(w, t)
	fmt.Fprintf(w, "collapse threshold inside (%s, %s]: %d probes (budget %d)\n",
		res.Lo, res.Hi, len(res.Probes), res.Budget)
	return nil
}

// renderGrid prints a sweep result as JSON or a cell table.
func renderGrid(w io.Writer, res dnstime.SearchGridResult, jsonOut bool) error {
	if jsonOut {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(res)
	}
	fmt.Fprintf(w, "== search %s: grid sweep, %d cells (%d pruned, %d subsampled away) ==\n",
		res.Scenario, len(res.Cells), res.PrunedCells, res.Dropped)
	t := stats.NewTable("cell", "successes", "rate %", "95% CI %", "pruned")
	for _, c := range res.Cells {
		keys := make([]string, 0, len(c.Params))
		for k, v := range c.Params {
			keys = append(keys, k+"="+v)
		}
		sort.Strings(keys)
		t.AddRow(strings.Join(keys, " "),
			fmt.Sprintf("%d/%d", c.Successes, c.Runs),
			fmt.Sprintf("%.1f", 100*c.Rate),
			fmt.Sprintf("%.1f–%.1f", 100*c.CI.Lo, 100*c.CI.Hi),
			c.Pruned)
	}
	fmt.Fprintln(w, t)
	return nil
}
