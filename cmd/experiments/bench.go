package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"dnstime"
)

// benchEntry is one scenario's campaign benchmark result: throughput plus
// the headline aggregate statistics the campaign reported.
type benchEntry struct {
	// Scenario names the registered scenario.
	Scenario string `json:"scenario"`
	// Runs and Errors count the campaign's seeded runs.
	Runs   int `json:"runs"`
	Errors int `json:"errors"`
	// Seconds is the campaign wall-clock time; RunsPerSec the throughput.
	Seconds    float64 `json:"seconds"`
	RunsPerSec float64 `json:"runs_per_sec"`
	// SuccessRatePct is present for scenarios with a binary outcome.
	SuccessRatePct *float64 `json:"success_rate_pct,omitempty"`
	// MetricMeans holds every aggregate metric mean, keyed by name.
	MetricMeans map[string]float64 `json:"metric_means,omitempty"`
}

// benchDoc is the bench subcommand's JSON document (BENCH_4.json in CI):
// one campaign benchmark entry per scenario, in registry order, plus the
// run configuration — the repo's performance trajectory across PRs.
type benchDoc struct {
	// Seeds, Workers and Fast echo the benchmark configuration.
	Seeds   int  `json:"seeds"`
	Workers int  `json:"workers"`
	Fast    bool `json:"fast,omitempty"`
	// GoMaxProcs records the parallelism available to the run.
	GoMaxProcs int `json:"gomaxprocs"`
	// TotalSeconds is the wall-clock time across all campaigns.
	TotalSeconds float64 `json:"total_seconds"`
	// TotalRunsPerSec is the whole-registry throughput.
	TotalRunsPerSec float64 `json:"total_runs_per_sec"`
	// Scenarios holds one entry per benchmarked scenario.
	Scenarios []benchEntry `json:"scenarios"`
}

// benchConfig holds the parsed bench-subcommand flags.
type benchConfig struct {
	seeds   int
	workers int
	fast    bool
	only    string
	out     string
}

// benchFlagSet declares the bench flag surface (the README command
// checker parses documented commands against it).
func benchFlagSet(cfg *benchConfig) *flag.FlagSet {
	fs := flag.NewFlagSet("bench", flag.ContinueOnError)
	fs.IntVar(&cfg.seeds, "seeds", 16, "independent seeds per scenario")
	fs.IntVar(&cfg.workers, "workers", 0, "concurrent workers (0 = GOMAXPROCS)")
	fs.BoolVar(&cfg.fast, "fast", false, "shrink the slowest scenarios' populations")
	fs.StringVar(&cfg.only, "only", "", "comma-separated scenario subset (default: all)")
	fs.StringVar(&cfg.out, "o", "", "write the JSON document to this file (default: stdout)")
	return fs
}

// runBench is the bench subcommand: run every selected scenario as one
// multi-seed campaign through the Engine, time it, and emit a JSON
// document of runs/sec plus headline metrics. CI runs this once per push
// and uploads the document as the BENCH_4.json artifact, so campaign
// throughput is tracked alongside correctness.
func runBench(ctx context.Context, argv []string, w io.Writer) error {
	var cfg benchConfig
	fs := benchFlagSet(&cfg)
	if err := fs.Parse(argv); err != nil {
		if err == flag.ErrHelp {
			return nil
		}
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected argument %q (scenarios are selected with -only name,...)", fs.Arg(0))
	}
	if cfg.seeds <= 0 {
		return fmt.Errorf("-seeds must be positive (got %d)", cfg.seeds)
	}
	names, err := selectScenarios(cfg.only)
	if err != nil {
		return err
	}

	doc := benchDoc{
		Seeds:      cfg.seeds,
		Workers:    cfg.workers,
		Fast:       cfg.fast,
		GoMaxProcs: runtime.GOMAXPROCS(0),
	}
	if doc.Workers == 0 {
		doc.Workers = doc.GoMaxProcs
	}
	totalRuns := 0
	start := time.Now()
	for _, name := range names {
		eng := dnstime.NewEngine(
			dnstime.WithSeeds(cfg.seeds),
			dnstime.WithWorkers(cfg.workers),
			dnstime.WithFast(cfg.fast),
		)
		campaignStart := time.Now()
		agg, err := eng.Run(ctx, name)
		if err != nil {
			return fmt.Errorf("bench %s: %w", name, err)
		}
		elapsed := time.Since(campaignStart).Seconds()
		entry := benchEntry{
			Scenario:   name,
			Runs:       agg.Runs,
			Errors:     agg.Errors,
			Seconds:    elapsed,
			RunsPerSec: float64(agg.Runs) / elapsed,
		}
		if agg.OutcomeRuns > 0 {
			rate := agg.SuccessRate
			entry.SuccessRatePct = &rate
		}
		if len(agg.Metrics) > 0 {
			entry.MetricMeans = make(map[string]float64, len(agg.Metrics))
			for _, m := range agg.Metrics {
				entry.MetricMeans[m.Name] = m.Mean
			}
		}
		doc.Scenarios = append(doc.Scenarios, entry)
		totalRuns += agg.Runs
		fmt.Fprintf(os.Stderr, "bench %-16s %3d runs in %6.2fs (%.1f runs/sec)\n",
			name, agg.Runs, elapsed, entry.RunsPerSec)
	}
	doc.TotalSeconds = time.Since(start).Seconds()
	doc.TotalRunsPerSec = float64(totalRuns) / doc.TotalSeconds

	if cfg.out != "" {
		f, err := os.Create(cfg.out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}
